package chl

// White-box tests for the router's traffic-shaping front door: the
// singleflight group, per-client token buckets, quota keying, the 429
// shed contract, the shape() HTTP gates, and the hedged-request path.
// Everything time-dependent runs on a FakeClock — no real sleeps, no
// wall-clock deadlines.

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/shard"
)

// --- singleflight ---

// One leader, many followers: followers arriving while the leader is in
// flight must not run fn, must all receive the leader's result, and the
// joined callback must fire once per follower (that is what the router
// counts as a collapse).
func TestFlightGroupCollapsesDuplicates(t *testing.T) {
	var g flightGroup
	key := flightKey{pair: 42, hub: false}
	const followers = 7

	var calls, joins atomic.Int64
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	results := make([]flightResult, followers+1)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0] = g.do(key, func() { joins.Add(1) }, func() flightResult {
			calls.Add(1)
			close(leaderIn)
			<-release
			return flightResult{dist: 7, hub: 3, ok: true}
		})
	}()
	<-leaderIn
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = g.do(key, func() { joins.Add(1) }, func() flightResult {
				calls.Add(1)
				return flightResult{dist: -1}
			})
		}(i)
	}
	// joined fires before a follower parks, so this converges without the
	// leader ever finishing.
	for joins.Load() < followers {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times for %d concurrent callers, want 1", got, followers+1)
	}
	if got := joins.Load(); got != followers {
		t.Fatalf("joined fired %d times, want %d", got, followers)
	}
	for i, res := range results {
		if res.dist != 7 || res.hub != 3 || !res.ok {
			t.Fatalf("caller %d got %+v, want the leader's result", i, res)
		}
	}

	// Completed flights are forgotten: the next caller for the same key
	// leads a fresh flight.
	res := g.do(key, nil, func() flightResult { calls.Add(1); return flightResult{dist: 3} })
	if res.dist != 3 || calls.Load() != 2 {
		t.Fatalf("post-flight caller got %+v after %d calls, want a fresh flight", res, calls.Load())
	}
}

// Key discipline: callers collapse exactly when their keys match — the
// same pair with and without the hub witness flies separately, and
// distinct pairs never share a flight.
func TestFlightGroupKeyDiscipline(t *testing.T) {
	cases := []struct {
		name         string
		a, b         flightKey
		wantCollapse bool
	}{
		{"same pair same kind", flightKey{pair: 9, hub: false}, flightKey{pair: 9, hub: false}, true},
		{"same pair hub vs plain", flightKey{pair: 9, hub: false}, flightKey{pair: 9, hub: true}, false},
		{"different pair", flightKey{pair: 9, hub: false}, flightKey{pair: 10, hub: false}, false},
		// /knn(u=3,k=5) packs the same pair bits as /dist(3,5): the kind
		// field is what keeps the two workloads in separate flights.
		{"same bits dist vs knn", flightKey{kind: flightDist, pair: 3<<32 | 5, hub: true},
			flightKey{kind: flightKNN, pair: 3<<32 | 5, hub: true}, false},
		{"same knn key collapses", flightKey{kind: flightKNN, pair: 3<<32 | 5},
			flightKey{kind: flightKNN, pair: 3<<32 | 5}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var g flightGroup
			leaderIn := make(chan struct{})
			release := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				g.do(tc.a, nil, func() flightResult {
					close(leaderIn)
					<-release
					return flightResult{dist: 1}
				})
			}()
			<-leaderIn

			var joins atomic.Int64
			second := make(chan flightResult, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				second <- g.do(tc.b, func() { joins.Add(1) }, func() flightResult {
					return flightResult{dist: 2}
				})
			}()
			if tc.wantCollapse {
				for joins.Load() == 0 {
					runtime.Gosched()
				}
				select {
				case res := <-second:
					t.Fatalf("follower returned %+v while its leader was still in flight", res)
				default:
				}
				close(release)
				if res := <-second; res.dist != 1 {
					t.Fatalf("collapsed follower got %+v, want the leader's result", res)
				}
			} else {
				// Independent keys never park: the second caller completes
				// its own flight while the first leader is still blocked.
				if res := <-second; res.dist != 2 || joins.Load() != 0 {
					t.Fatalf("independent flight got %+v (joins=%d), want its own result, 0 joins", res, joins.Load())
				}
				close(release)
			}
			wg.Wait()
		})
	}
}

// --- token buckets ---

func TestQuotaLimiterBurstAndRefill(t *testing.T) {
	clk := NewFakeClock(time.Unix(1_700_000_000, 0))
	q := newQuotaLimiter(clk, 2, 4) // 2 tokens/s, burst 4

	for i := 0; i < 4; i++ {
		if ok, _ := q.take("id:a"); !ok {
			t.Fatalf("take %d inside the burst was refused", i)
		}
	}
	ok, retry := q.take("id:a")
	if ok {
		t.Fatal("take beyond the burst was admitted")
	}
	if want := 500 * time.Millisecond; retry != want {
		t.Fatalf("empty bucket hinted retry after %v, want %v (1 token at 2/s)", retry, want)
	}

	// Half a token accrues in 250ms: still refused, hint shrinks.
	clk.Advance(250 * time.Millisecond)
	if ok, retry = q.take("id:a"); ok || retry != 250*time.Millisecond {
		t.Fatalf("after 250ms: ok=%v retry=%v, want refused with 250ms hint", ok, retry)
	}
	clk.Advance(250 * time.Millisecond)
	if ok, _ = q.take("id:a"); !ok {
		t.Fatal("a full second of refill did not admit one request")
	}
	if ok, _ = q.take("id:a"); ok {
		t.Fatal("the single refilled token admitted two requests")
	}

	// Idle time caps at the burst, never beyond it.
	clk.Advance(time.Hour)
	for i := 0; i < 4; i++ {
		if ok, _ := q.take("id:a"); !ok {
			t.Fatalf("take %d after a long idle was refused (burst not restored)", i)
		}
	}
	if ok, _ := q.take("id:a"); ok {
		t.Fatal("idle refill exceeded the burst cap")
	}

	// Buckets are per key.
	if ok, _ := q.take("id:b"); !ok {
		t.Fatal("a fresh client was refused because another client is over quota")
	}
}

func TestQuotaLimiterDefaultsAndBackwardsClock(t *testing.T) {
	if q := newQuotaLimiter(NewFakeClock(time.Unix(0, 0)), 0, 10); q != nil {
		t.Fatal("rate 0 should disable quotas (nil limiter)")
	}

	clk := NewFakeClock(time.Unix(1_700_000_000, 0))
	q := newQuotaLimiter(clk, 3, 0) // burst defaults to max(1, rate) = 3
	for i := 0; i < 3; i++ {
		if ok, _ := q.take("id:a"); !ok {
			t.Fatalf("take %d inside the default burst was refused", i)
		}
	}
	if ok, _ := q.take("id:a"); ok {
		t.Fatal("default burst admitted more than rate requests")
	}

	// A clock step backwards credits nothing and re-anchors: refill
	// resumes from the earlier instant.
	clk.Advance(-10 * time.Second)
	if ok, _ := q.take("id:a"); ok {
		t.Fatal("a backwards clock step minted tokens")
	}
	clk.Advance(time.Second) // 1s forward of the re-anchored instant: 3 tokens, capped... at burst
	for i := 0; i < 3; i++ {
		if ok, _ := q.take("id:a"); !ok {
			t.Fatalf("take %d after re-anchored refill was refused", i)
		}
	}
}

// At capacity the limiter sweeps fully refilled buckets; buckets holding
// live debt survive the sweep, so a hostile client minting keys cannot
// evict a real client's quota state.
func TestQuotaLimiterSweep(t *testing.T) {
	clk := NewFakeClock(time.Unix(1_700_000_000, 0))
	q := newQuotaLimiter(clk, 1, 1)
	for i := 0; i < quotaMaxBuckets; i++ {
		q.take(fmt.Sprintf("id:fill-%d", i))
	}
	// Every bucket just spent its token: nothing is sweepable, so the map
	// grows past the cap rather than forgetting live debt.
	q.take("id:straggler")
	q.mu.Lock()
	n := len(q.buckets)
	q.mu.Unlock()
	if n != quotaMaxBuckets+1 {
		t.Fatalf("sweep evicted un-refilled buckets: %d buckets, want %d", n, quotaMaxBuckets+1)
	}
	// The straggler's debt survived the failed sweep.
	if ok, _ := q.take("id:straggler"); ok {
		t.Fatal("straggler's empty bucket was forgotten at capacity")
	}

	// Once everyone refills, the next overflow sweeps them all away.
	clk.Advance(2 * time.Second)
	q.take("id:fresh")
	q.mu.Lock()
	n = len(q.buckets)
	q.mu.Unlock()
	if n != 1 {
		t.Fatalf("sweep left %d buckets, want 1 (only the fresh client)", n)
	}
}

// --- quota keying ---

func TestQuotaKey(t *testing.T) {
	long := strings.Repeat("x", maxClientIDLen+20)
	cases := []struct {
		name, clientID, remoteAddr, want string
	}{
		{"header wins", "alice", "1.2.3.4:5678", "id:alice"},
		{"header truncated", long, "1.2.3.4:5678", "id:" + long[:maxClientIDLen]},
		{"no header keys on host", "", "1.2.3.4:5678", "addr:1.2.3.4"},
		{"hostless addr kept whole", "", "10.9.8.7", "addr:10.9.8.7"},
		{"ipv6 host extracted", "", "[::1]:8080", "addr:::1"},
		{"inner space rejected", "a b", "1.2.3.4:1", "addr:1.2.3.4"},
		{"surrounding space rejected", " alice", "1.2.3.4:1", "addr:1.2.3.4"},
		{"control bytes rejected", "a\x00b", "1.2.3.4:1", "addr:1.2.3.4"},
		{"non-ascii rejected", "café", "1.2.3.4:1", "addr:1.2.3.4"},
		{"garbage everywhere", "\n", "\x01", "addr:unknown"},
		{"empty everything", "", "", "addr:unknown"},
	}
	for _, tc := range cases {
		if got := quotaKey(tc.clientID, tc.remoteAddr); got != tc.want {
			t.Errorf("%s: quotaKey(%q, %q) = %q, want %q", tc.name, tc.clientID, tc.remoteAddr, got, tc.want)
		}
	}
}

// --- the 429 contract ---

func TestClampRetryAfter(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want float64
	}{
		{0, 0},
		{-5 * time.Second, 0},
		{250 * time.Millisecond, 0.25},
		{2 * time.Hour, 3600},
		{math.MaxInt64, 3600},
	}
	for _, tc := range cases {
		if got := clampRetryAfter(tc.d); got != tc.want {
			t.Errorf("clampRetryAfter(%v) = %v, want %v", tc.d, got, tc.want)
		}
	}
}

func TestWriteShed(t *testing.T) {
	cases := []struct {
		secs       float64
		wantHeader string
	}{
		{0, "1"},   // Retry-After 0 reads as "now"; round up
		{0.2, "1"}, // sub-second rounds up to a whole second
		{3.5, "4"},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeShed(rec, shedBody{Error: "shed", Reason: shedReasonQuota, RetryAfterSeconds: tc.secs})
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("writeShed status %d, want 429", rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != tc.wantHeader {
			t.Fatalf("Retry-After %q for %vs, want %q", got, tc.secs, tc.wantHeader)
		}
		var body shedBody
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("429 body is not JSON: %v", err)
		}
		if body.Error != "shed" || body.Reason != shedReasonQuota || body.RetryAfterSeconds != tc.secs {
			t.Fatalf("429 body round-tripped to %+v", body)
		}
	}
}

// --- the shape() HTTP gates ---

// The concurrency gate: with MaxInFlight 1 and one request parked in the
// handler, the next request is shed with reason over_capacity — and the
// gate releases as soon as the parked request finishes.
func TestShapeShedsOverCapacity(t *testing.T) {
	r := &Router{clock: realClock{}, maxInFlight: 1}
	entered := make(chan struct{})
	release := make(chan struct{})
	h := r.shape(func(w http.ResponseWriter, req *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	req := httptest.NewRequest(http.MethodGet, "/dist?u=0&v=1", nil)

	first := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h(rec, req)
		first <- rec.Code
	}()
	<-entered

	rec := httptest.NewRecorder()
	h(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("request over the in-flight cap got %d, want 429", rec.Code)
	}
	var body shedBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("shed body is not JSON: %v", err)
	}
	if body.Reason != shedReasonCapacity || body.Error == "" {
		t.Fatalf("shed body %+v, want reason %q with an error string", body, shedReasonCapacity)
	}
	if body.RetryAfterSeconds <= 0 || body.RetryAfterSeconds > 1 {
		t.Fatalf("capacity shed hinted retry after %vs, want a short positive hint", body.RetryAfterSeconds)
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("Retry-After %q, want %q", rec.Header().Get("Retry-After"), "1")
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("parked request finished with %d, want 200", code)
	}
	// Both the shed request and the parked one released their slots.
	if n := r.shapeInFlight.Load(); n != 0 {
		t.Fatalf("in-flight gauge %d after all requests finished, want 0", n)
	}
	if got := r.shed.Load(); got != 1 {
		t.Fatalf("shed counter %d, want 1", got)
	}
}

// The quota gate: per-client buckets keyed on X-Client-ID, with the
// remote host as fallback, refilling on the fake clock.
func TestShapeShedsClientQuota(t *testing.T) {
	clk := NewFakeClock(time.Unix(1_700_000_000, 0))
	r := &Router{clock: clk, quota: newQuotaLimiter(clk, 1, 2)}
	h := r.shape(func(w http.ResponseWriter, req *http.Request) { w.WriteHeader(http.StatusOK) })

	do := func(clientID, remoteAddr string) (int, shedBody) {
		req := httptest.NewRequest(http.MethodGet, "/dist?u=0&v=1", nil)
		if clientID != "" {
			req.Header.Set(QuotaKeyHeader, clientID)
		}
		req.RemoteAddr = remoteAddr
		rec := httptest.NewRecorder()
		h(rec, req)
		var body shedBody
		if rec.Code == http.StatusTooManyRequests {
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("shed body is not JSON: %v", err)
			}
		}
		return rec.Code, body
	}

	// alice burns her burst of 2, then sheds with a refill-accurate hint.
	for i := 0; i < 2; i++ {
		if code, _ := do("alice", "1.1.1.1:10"); code != http.StatusOK {
			t.Fatalf("alice's request %d inside her burst got %d", i, code)
		}
	}
	code, body := do("alice", "1.1.1.1:10")
	if code != http.StatusTooManyRequests || body.Reason != shedReasonQuota {
		t.Fatalf("alice over quota got %d %+v, want 429 %s", code, body, shedReasonQuota)
	}
	if body.RetryAfterSeconds != 1 {
		t.Fatalf("over-quota retry hint %vs, want 1s (one token at 1/s)", body.RetryAfterSeconds)
	}

	// Other clients are unaffected — header-keyed or address-keyed.
	if code, _ := do("bob", "1.1.1.1:10"); code != http.StatusOK {
		t.Fatalf("bob shed because alice is over quota: %d", code)
	}
	if code, _ := do("", "2.2.2.2:10"); code != http.StatusOK {
		t.Fatalf("address-keyed client shed because alice is over quota: %d", code)
	}
	// Same host, different port: same bucket (one token left from burst 2).
	if code, _ := do("", "2.2.2.2:99"); code != http.StatusOK {
		t.Fatalf("same-host second request inside burst got %d", code)
	}
	if code, body := do("", "2.2.2.2:7"); code != http.StatusTooManyRequests || body.Reason != shedReasonQuota {
		t.Fatalf("same-host third request got %d %+v, want 429 (port must not split the bucket)", code, body)
	}

	// The fake clock refills alice.
	clk.Advance(time.Second)
	if code, _ := do("alice", "1.1.1.1:10"); code != http.StatusOK {
		t.Fatalf("alice still shed after her bucket refilled: %d", code)
	}

	if got := r.shed.Load(); got != 2 {
		t.Fatalf("shed counter %d, want 2", got)
	}
}

// TestWriteShedRetryContract pins the full 429 contract end to end
// through shape(), for both shed reasons, at refill times that land on
// fractional seconds: retry_after_seconds is always strictly positive
// (a zero hint reads as "retry immediately" and turns backoff loops
// into busy loops), and the Retry-After header is its ceiling, never
// below one whole second. The fractional cases are the regression
// surface: a truncating header (int(secs)) would serve "0" for every
// sub-second hint and pass the whole-second cases above.
func TestWriteShedRetryContract(t *testing.T) {
	cases := []struct {
		name       string
		rate       float64       // quota tokens/second (0 = capacity shed instead)
		burn       int           // requests to burn before the shed probe
		advance    time.Duration // partial refill between burn and probe
		wantReason string
		wantSecs   float64 // exact expected retry_after_seconds
		wantHeader string  // ceil(wantSecs), min 1
	}{
		{"capacity/50ms-constant", 0, 0, 0, shedReasonCapacity, 0.05, "1"},
		{"quota/fractional-sub-second", 2.5, 1, 0, shedReasonQuota, 0.4, "1"},
		{"quota/fractional-multi-second", 0.4, 1, 0, shedReasonQuota, 2.5, "3"},
		{"quota/partial-refill", 1, 1, 300 * time.Millisecond, shedReasonQuota, 0.7, "1"},
		{"quota/whole-second", 1, 1, 0, shedReasonQuota, 1, "1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := NewFakeClock(time.Unix(1_700_000_000, 0))
			r := &Router{clock: clk}
			var park chan struct{}
			if tc.rate > 0 {
				r.quota = newQuotaLimiter(clk, tc.rate, 1)
			} else {
				// Capacity shed: park one request in the handler so the
				// probe finds the single slot taken.
				r.maxInFlight = 1
				park = make(chan struct{})
			}
			entered := make(chan struct{}, 1)
			h := r.shape(func(w http.ResponseWriter, req *http.Request) {
				entered <- struct{}{}
				if park != nil {
					<-park
				}
				w.WriteHeader(http.StatusOK)
			})
			req := httptest.NewRequest(http.MethodGet, "/dist?u=0&v=1", nil)
			req.Header.Set(QuotaKeyHeader, "carol")
			if park != nil {
				go func() { h(httptest.NewRecorder(), req) }()
				<-entered
				defer close(park)
			}
			for i := 0; i < tc.burn; i++ {
				rec := httptest.NewRecorder()
				h(rec, req)
				if rec.Code != http.StatusOK {
					t.Fatalf("burn request %d got %d, want 200", i, rec.Code)
				}
			}
			if tc.advance > 0 {
				clk.Advance(tc.advance)
			}
			rec := httptest.NewRecorder()
			h(rec, req)
			if rec.Code != http.StatusTooManyRequests {
				t.Fatalf("shed probe got %d, want 429", rec.Code)
			}
			var body shedBody
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("429 body is not JSON: %v", err)
			}
			if body.Reason != tc.wantReason || body.Error == "" {
				t.Fatalf("shed body %+v, want reason %q with an error string", body, tc.wantReason)
			}
			if body.RetryAfterSeconds <= 0 {
				t.Fatalf("retry_after_seconds = %v, must be strictly positive", body.RetryAfterSeconds)
			}
			//chlvet:allow floatexact -- retry_after_seconds is a duration that survives a JSON float round trip, not a distance answer under the bit-exact contract
			if math.Abs(body.RetryAfterSeconds-tc.wantSecs) > 1e-9 {
				t.Fatalf("retry_after_seconds = %v, want %v", body.RetryAfterSeconds, tc.wantSecs)
			}
			if got := rec.Header().Get("Retry-After"); got != tc.wantHeader {
				t.Fatalf("Retry-After header %q, want %q (ceil of %v, min 1)", got, tc.wantHeader, body.RetryAfterSeconds)
			}
			if hdr, _ := strconv.Atoi(rec.Header().Get("Retry-After")); float64(hdr) < body.RetryAfterSeconds || hdr < 1 {
				t.Fatalf("Retry-After %d rounds down below the %vs hint", hdr, body.RetryAfterSeconds)
			}
		})
	}
}

// --- hedging ---

// The hedge path end to end: the first attempt parks, the FakeClock
// advances past the hedge delay, the hedge fires at the sibling and wins,
// and the loser is canceled — health-neutral: no error counts, no
// ejection, no failover.
func TestHedgeFiresAndCancelsLoser(t *testing.T) {
	g := GenerateScaleFree(200, 3, 9)
	ix, err := Build(g, Options{Algorithm: AlgoSeqPLL})
	if err != nil {
		t.Fatal(err)
	}
	fx, err := ix.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m, err := fx.SaveShards(dir, 1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	part, err := m.Partition()
	if err != nil {
		t.Fatal(err)
	}
	path, err := ShardFilePath(filepath.Join(dir, shard.ManifestName), m, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.SetShard(0, part); err != nil {
		t.Fatal(err)
	}
	inner := srv.Handler()

	// Both replicas share one handler: the first /dist to arrive parks
	// until its context is canceled; everything else is served for real.
	var distCalls atomic.Int64
	arrived := make(chan struct{}, 1)
	parked := make(chan struct{}, 1)
	h := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/dist" && distCalls.Add(1) == 1 {
			arrived <- struct{}{}
			<-req.Context().Done()
			parked <- struct{}{}
			return
		}
		inner.ServeHTTP(w, req)
	})
	ts1 := httptest.NewServer(h)
	defer ts1.Close()
	ts2 := httptest.NewServer(h)
	defer ts2.Close()

	clk := NewFakeClock(time.Unix(1_700_000_000, 0))
	r, err := NewRouter(RouterConfig{
		Manifest:     m,
		ReplicaAddrs: [][]string{{ts1.URL, ts2.URL}},
		HedgeDelay:   2 * time.Millisecond,
		Clock:        clk,
	})
	if err != nil {
		t.Fatal(err)
	}

	want := fx.Query(0, 1)
	done := make(chan struct{})
	var got float64
	var qerr error
	go func() {
		got, qerr = r.Query(0, 1)
		close(done)
	}()
	// The hedge timer is registered before the first attempt launches, so
	// once that attempt has observably arrived, Advance reliably fires it.
	<-arrived
	clk.Advance(5 * time.Millisecond)
	<-done
	if qerr != nil {
		t.Fatalf("hedged query failed: %v", qerr)
	}
	if got != want {
		t.Fatalf("hedged query = %v, want %v", got, want)
	}
	// The loser's context was canceled on the winner's return.
	<-parked

	st := r.Stats()
	if st.Hedges != 1 {
		t.Fatalf("hedges counter %d, want 1", st.Hedges)
	}
	if st.Failovers != 0 {
		t.Fatalf("a canceled hedge loser was counted as a failover (%d)", st.Failovers)
	}
	var reqs int64
	for _, rs := range st.Shards[0].Replicas {
		reqs += rs.Requests
		if rs.Errors != 0 || rs.Ejected {
			t.Fatalf("canceled hedge loser dinged replica health: %+v", rs)
		}
	}
	if reqs != 2 {
		t.Fatalf("replicas saw %d requests for one hedged query, want 2", reqs)
	}
}

// --- fuzz: quota keying and the 429 body ---

// FuzzQuotaKey throws arbitrary header/address bytes at the quota key
// parser and arbitrary durations at the 429 writer, checking the
// invariants the shaping layer relies on: keys are non-empty, bounded,
// printable, namespaced, and deterministic; 429 bodies always carry a
// finite non-negative retry hint that survives a JSON round trip with a
// whole-second header of at least 1.
func FuzzQuotaKey(f *testing.F) {
	f.Add("alice", "1.2.3.4:5678", int64(0))
	f.Add("", "[::1]:8080", int64(time.Second))
	f.Add(strings.Repeat("k", 100), "host-no-port", int64(-5))
	f.Add("a b", "\x00", int64(math.MaxInt64))
	f.Add("\xff\xfe", "", int64(7*time.Hour))
	f.Fuzz(func(t *testing.T, clientID, remoteAddr string, retryNanos int64) {
		key := quotaKey(clientID, remoteAddr)
		if key == "" {
			t.Fatal("empty quota key")
		}
		id := strings.HasPrefix(key, "id:")
		if !id && !strings.HasPrefix(key, "addr:") {
			t.Fatalf("key %q carries no namespace prefix", key)
		}
		if len(key) > maxClientIDLen+len("addr:") {
			t.Fatalf("key %q exceeds the length bound", key)
		}
		for i := 0; i < len(key); i++ {
			if c := key[i]; c < '!' || c > '~' {
				t.Fatalf("key %q contains non-printable byte %#x", key, c)
			}
		}
		// Namespacing: the header wins exactly when it sanitizes cleanly,
		// so an address can never mint an id-keyed bucket.
		if sane := sanitizeClientID(clientID); (sane != "") != id {
			t.Fatalf("key %q namespace disagrees with sanitizeClientID(%q) = %q", key, clientID, sane)
		} else if id && key != "id:"+sane {
			t.Fatalf("key %q != id:%s", key, sane)
		}
		if again := quotaKey(clientID, remoteAddr); again != key {
			t.Fatalf("quotaKey is not deterministic: %q then %q", key, again)
		}

		// The 429 contract under arbitrary retry hints.
		secs := clampRetryAfter(time.Duration(retryNanos))
		if math.IsNaN(secs) || math.IsInf(secs, 0) || secs < 0 || secs > 3600 {
			t.Fatalf("clampRetryAfter(%d) = %v, want finite in [0,3600]", retryNanos, secs)
		}
		rec := httptest.NewRecorder()
		writeShed(rec, shedBody{Error: "shed", Reason: shedReasonQuota, RetryAfterSeconds: secs})
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("writeShed status %d", rec.Code)
		}
		ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
		if err != nil || ra < 1 {
			t.Fatalf("Retry-After %q, want a whole second >= 1", rec.Header().Get("Retry-After"))
		}
		var body shedBody
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("429 body is not JSON: %v", err)
		}
		if body.RetryAfterSeconds != secs || body.Reason != shedReasonQuota || body.Error != "shed" {
			t.Fatalf("429 body %+v does not round-trip (want retry %v)", body, secs)
		}
	})
}

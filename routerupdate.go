package chl

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"

	"repro/internal/delta"
	"repro/internal/label"
)

// Dynamic edge updates at the router tier. The shards stay frozen —
// they serve the mmap'd index files they were built from and never see
// a patch — so the router owns the whole correction: it keeps the
// accumulated patch log, builds a delta overlay against the base graph
// (RouterConfig.BaseGraph), pins the label rows of every patch vertex
// at patch-apply time, and corrects each query locally by joining the
// endpoints' fetched rows against the pinned rows. The math is the one
// the single-process engine uses (delta.Overlay.Correct — see
// ARCHITECTURE.md "Dynamic updates"); only the frozen-distance plumbing
// differs: where the engine calls FlatIndex.QueryHub, the router calls
// label.JoinPacked on packed runs it fetched over the shard protocol.
//
// The overlay rides the routerState pointer, so a patch batch swaps
// overlay and answer cache in one atomic publish, and the overlay epoch
// discriminates singleflight keys (flightKey.pepoch): a flight computed
// before a batch can never feed a query arriving after it.
//
// Pinned rows assume the cluster keeps serving the index built from
// BaseGraph. A shard /reload that changes content while updates are
// outstanding invalidates them — the same operator contract as the flat
// server, which refuses to reload under outstanding patches; the router
// cannot refuse (shards reload out from under it), so this is a
// documented operator rule instead.

// routerPatch is the router's per-patch-batch correction state: the
// overlay plus the pinned packed label rows of every patch vertex,
// keyed by original vertex id. bwd aliases fwd on undirected clusters.
type routerPatch struct {
	ov  *delta.Overlay
	fwd map[int][]uint64
	bwd map[int][]uint64
}

// errRouterUpdatesDisabled distinguishes "no base graph configured"
// (409) from a bad patch (400) in handleUpdate.
var errRouterUpdatesDisabled = errors.New("chl: router updates disabled — configure RouterConfig.BaseGraph (cmd/chlrouter: -graph) to accept /update")

// ensurePatch replays the update journal once, lazily, on the first
// query or update after construction — NewRouter must never contact
// shards, and replay pins patch-vertex rows. Failed replays are
// retried by the next caller; nothing is marked loaded until the
// journal has been applied in full.
func (r *Router) ensurePatch() error {
	if r.journalLoaded.Load() {
		return nil
	}
	r.patchMu.Lock()
	defer r.patchMu.Unlock()
	if r.journalLoaded.Load() {
		return nil
	}
	ops, err := delta.ReadJournal(r.journal)
	if err != nil {
		return fmt.Errorf("chl: replaying update journal %s: %w", r.journal, err)
	}
	if len(ops) > 0 {
		if _, err := r.applyPatchOpsLocked(ops, false); err != nil {
			return fmt.Errorf("chl: replaying update journal %s: %w", r.journal, err)
		}
	}
	r.journalLoaded.Store(true)
	return nil
}

// Update applies one batch of edge operations to the cluster's served
// graph without touching the shards, journaling it first when a
// journal is configured. The returned stats describe the accumulated
// overlay after the batch.
func (r *Router) Update(ops []EdgeOp) (delta.Stats, error) {
	if r.baseGraph == nil {
		return delta.Stats{}, errRouterUpdatesDisabled
	}
	if len(ops) == 0 {
		return delta.Stats{}, fmt.Errorf("chl: empty patch")
	}
	if err := r.ensurePatch(); err != nil {
		return delta.Stats{}, err
	}
	r.patchMu.Lock()
	defer r.patchMu.Unlock()
	return r.applyPatchOpsLocked(ops, true)
}

// applyPatchOpsLocked validates ops against the accumulated log, builds
// the new overlay (fetching and pinning patch-vertex rows from the
// shards), journals, and publishes the new state. Callers hold patchMu.
// The journal append happens after validation but before any state
// changes — a batch is observable iff it is durable.
func (r *Router) applyPatchOpsLocked(ops []EdgeOp, journal bool) (delta.Stats, error) {
	combined := make([]EdgeOp, 0, len(r.patchOps)+len(ops))
	combined = append(append(combined, r.patchOps...), ops...)
	red, err := delta.Reduce(r.baseGraph, combined)
	if err != nil {
		return delta.Stats{}, err
	}
	fwd, bwd, err := r.fetchPatchRows(red.Verts())
	if err != nil {
		return delta.Stats{}, err
	}
	q := func(a, b int) float64 {
		d, _, ok := label.JoinPacked(fwd[a], bwd[b])
		if !ok {
			return Infinity
		}
		return d
	}
	ov, err := delta.NewOverlay(red, combined, r.patchBatches+1, q)
	if err != nil {
		return delta.Stats{}, err
	}
	if journal && r.journal != "" {
		if err := delta.AppendJournal(r.journal, ops); err != nil {
			return delta.Stats{}, fmt.Errorf("chl: journaling update: %w", err)
		}
	}
	r.patchOps = combined
	r.patchBatches++
	var rp *routerPatch
	if !ov.Empty() {
		rp = &routerPatch{ov: ov, fwd: fwd, bwd: bwd}
	}
	for {
		st := r.state.Load()
		next := &routerState{
			idents: make([][]genObs, len(st.idents)),
			cache:  r.newAnswerCache(), // the patch batch retires every pre-patch answer
			patch:  rp,
		}
		for i, group := range st.idents {
			next.idents[i] = append([]genObs(nil), group...)
		}
		if r.state.CompareAndSwap(st, next) {
			break
		}
	}
	r.cacheResets.Add(1)
	r.updates.Add(1)
	return ov.Stat(), nil
}

// fetchPatchRows fetches the packed label rows of every patch vertex —
// forward always, backward too on directed clusters — one /shardquery
// per owning shard. On undirected clusters the returned bwd map aliases
// fwd (symmetric labels, one copy).
func (r *Router) fetchPatchRows(verts []int) (fwd, bwd map[int][]uint64, err error) {
	byShard := map[int][]int{}
	for _, v := range verts {
		sid := r.part.Owner(v)
		byShard[sid] = append(byShard[sid], v)
	}
	sids := make([]int, 0, len(byShard))
	for sid := range byShard {
		sids = append(sids, sid)
	}
	sort.Ints(sids)
	fwd = make(map[int][]uint64, len(verts))
	bwd = fwd
	if r.directed {
		bwd = make(map[int][]uint64, len(verts))
	}
	for _, sid := range sids {
		vs := byShard[sid]
		var bvs []int
		if r.directed {
			bvs = vs
		}
		gotF, gotB, rep, o, serr := r.fetchRows(sid, vs, bvs)
		if serr != nil {
			return nil, nil, &ClusterError{Failed: []*ShardError{serr}}
		}
		for v, run := range gotF {
			fwd[v] = run
		}
		for v, run := range gotB {
			bwd[v] = run
		}
		r.noteGenerations(map[repRef]genObs{{sid, rep.id}: o})
	}
	return fwd, bwd, nil
}

// routePatchedQueryHub is the leader's half of queryHub under a delta
// overlay: fetch the endpoints' rows, join them against each other and
// against the pinned patch-vertex rows for the correction seeds, and
// run the same Correct/fallback bracket the engine tier runs. Even
// same-shard pairs take this path — the shard's own /dist would answer
// from frozen labels, which is exactly what the overlay must correct.
// The witness hub is served only when the overlay certifies the frozen
// answer intact (frozen); a corrected distance has no label witness and
// reports hub -1 (see BatchEngine.queryHubPatched — same contract).
func (r *Router) routePatchedQueryHub(st *routerState, u, v int, needHub bool) flightResult {
	p := st.patch
	su, sv := r.part.Owner(u), r.part.Owner(v)
	obs := map[repRef]genObs{}

	// Fetch u's forward row and v's backward (directed) or forward
	// (undirected) row — one /shardquery when one shard owns everything.
	needF := map[int][]int{su: {u}}
	needB := map[int][]int{}
	if r.directed {
		needB[sv] = []int{v}
	} else if v != u {
		needF[sv] = append(needF[sv], v)
	}
	rowShards := map[int]struct{}{su: {}, sv: {}}
	rowsF := map[int][]uint64{}
	rowsB := map[int][]uint64{}
	var repU *replica
	for sid := range rowShards {
		fvs, bvs := needF[sid], needB[sid]
		sort.Ints(fvs)
		gotF, gotB, rep, o, serr := r.fetchRows(sid, fvs, bvs)
		if serr != nil {
			return flightResult{err: &ClusterError{Failed: []*ShardError{serr}}}
		}
		for vert, run := range gotF {
			rowsF[vert] = run
		}
		for vert, run := range gotB {
			rowsB[vert] = run
		}
		if sid == su {
			repU = rep
		}
		obs[repRef{sid, rep.id}] = o
	}
	rowU := rowsF[u]
	rowV := rowsF[v]
	if r.directed {
		rowV = rowsB[v]
	}

	d0, rank0, ok0 := label.JoinPacked(rowU, rowV)
	if !ok0 {
		d0 = Infinity
	}
	if u == v {
		d0, ok0 = 0, true
	}
	verts := p.ov.Verts()
	du := make([]float64, len(verts))
	dv := make([]float64, len(verts))
	for i, pv := range verts {
		du[i] = Infinity
		if pv == u {
			du[i] = 0
		} else if d, _, ok := label.JoinPacked(rowU, p.bwd[pv]); ok {
			du[i] = d
		}
		dv[i] = Infinity
		if pv == v {
			dv[i] = 0
		} else if d, _, ok := label.JoinPacked(p.fwd[pv], rowV); ok {
			dv[i] = d
		}
	}
	dist, frozen, exact := p.ov.Correct(d0, du, dv)
	if !exact {
		dist = mustOverlayDist(p.ov, u, v)
		frozen = false
	}
	if dist >= Infinity {
		r.cachePut(st, obs, u, v, Answer{Dist: Infinity, Hub: hubUnknown, Reachable: false})
		return flightResult{dist: Infinity, hub: 0, ok: false}
	}
	// Hub contract: -1 (no label witness) unless the overlay certified
	// the frozen answer, in which case the frozen witness still lies on
	// a patched shortest path. Its rank is resolved to an original id
	// only when the caller needs it; hub-less answers cache under
	// hubUnknown (== -1) so a later hub-needing query recomputes — the
	// same collision the engine tier documents on its cache.
	hub := -1
	if frozen && ok0 {
		switch {
		case u == v:
			hub = u
		case needHub:
			h, o, serr := r.resolveRankOn(repU, int(rank0))
			if serr != nil {
				return flightResult{err: &ClusterError{Failed: []*ShardError{serr}}}
			}
			key := repRef{repU.shard, repU.id}
			if prev, seen := obs[key]; seen && prev != o {
				// The shard reloaded between the row fetch and the rank
				// resolution; the hub is not attributable to the rows that
				// produced the distance.
				return flightResult{err: &ClusterError{Failed: []*ShardError{{
					Shard: repU.shard, Replica: repU.id, Addr: repU.addr,
					Err: fmt.Errorf("snapshot changed during witness resolution"),
				}}}}
			}
			obs[key] = o
			hub = h
		}
	}
	r.cachePut(st, obs, u, v, Answer{Dist: dist, Hub: hub, Reachable: true})
	return flightResult{dist: dist, hub: hub, ok: true}
}

// handleUpdate is POST /update at the router: the same text patch-log
// body the flat server accepts, applied to the cluster without touching
// the shards. 409 when the router has no base graph, 400 on a malformed
// or invalid patch, 502 when pinning patch-vertex rows failed.
func (r *Router) handleUpdate(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a text patch log (add/del/set lines) to /update")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxPatchBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("reading patch body: %v", err))
		return
	}
	ops, err := ParsePatchLog(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(ops) == 0 {
		httpError(w, http.StatusBadRequest, "empty patch: no add/del/set lines")
		return
	}
	stat, err := r.Update(ops)
	if err != nil {
		switch {
		case errors.Is(err, errRouterUpdatesDisabled):
			httpError(w, http.StatusConflict, err.Error())
		default:
			var ce *ClusterError
			if errors.As(err, &ce) {
				routeError(w, err)
				return
			}
			httpError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"applied": len(ops), "patch": stat})
}

package chl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/label"
	"repro/internal/shard"
)

// Router fronts a cluster of shard servers and answers the same query API
// a single-process Server does, over an index too large for one process.
// Routing is QDOL-style (internal/query, §6 of the paper): every query is
// sent point-to-point to the shards owning its endpoints, never broadcast.
//
//   - Both endpoints on one shard: the router forwards the query whole;
//     the shard answers it alone from its local label runs (and its own
//     per-snapshot answer cache), exactly QDOL's owner-node case.
//   - Endpoints on two shards: where QDOL would have pre-replicated the
//     partition pair onto a common node, the router instead fetches the
//     two packed label rows (POST /shardquery) and hub-joins them locally
//     with the same scratch kernels BatchEngine serves with — one join,
//     two small messages, Θ(1/N) memory per shard instead of QDOL's
//     Θ(1/√q).
//
// Answers are bit-identical to a single-process FlatIndex over the
// unsharded file: the fetched rows are byte-identical slices of the
// shards' entry arrays and the join kernels are shared (label.JoinPacked
// / JoinPackedWith).
//
// Directed clusters (a v3 manifest with directed=true, split from a
// directed index) serve the same API with ordered semantics: /dist?u=&v=
// is the u→v distance. Same-shard queries forward unchanged (the shard's
// engine joins forward(u) × backward(v) locally); cross-shard queries
// fetch u's forward row from u's shard and v's BACKWARD row from v's,
// and the answer cache keys on ordered pairs so d(u→v) can never serve
// for d(v→u).
//
// Each shard may be served by a replica group — several processes over
// the same slice file (a v2 manifest's replica_addrs, or
// RouterConfig.ReplicaAddrs). The router load-balances every shard
// request across the group's healthy replicas with power-of-two-choices
// on in-flight counts, and fails over: a request that dies on one
// replica is retried on the next, so a query only fails when every
// replica of a shard is down. Per-replica health is tracked by
// consecutive failures — past ejectAfter of them the replica is ejected
// and sits out a probation window, after which exactly one request is
// routed to it as a probe (success rejoins it, failure re-ejects it).
// Ejection only steers; it never turns a reachable replica into a
// failure: when a whole group is ejected the router still tries them.
//
// The router keeps its own sharded LRU answer cache (the PR-2 Cache).
// Every shard response carries the answering replica's snapshot identity
// — its generation, a per-process epoch, and the snapshot's content hash
// (FlatIndex.ContentHash), so restarts are as visible as reloads;
// identities are tracked per replica (two replicas of one shard are
// different processes with different epochs). When any replica's
// identity moves to different content — it reloaded or restarted over
// changed bytes, possibly before its siblings — the router retires the
// whole cache: the same "a cache never outlives its index" rule the
// single-process tier enforces per Snapshot, lifted to the cluster. An
// identity that moved over the SAME content — a restart or no-op reload,
// even a coordinated whole-cluster restart — keeps the cache, because
// the durable content hash vouches for every cached answer. A sibling
// that did not change keeps validating against its own unchanged
// identity, so its answers re-enter a fresh cache immediately.
//
// The front door is traffic-shaped (see shaping.go and the "Traffic
// shaping" chapter of ARCHITECTURE.md): identical in-flight queries are
// collapsed to one backend round trip, slow shard calls are hedged at a
// second replica after HedgeDelay, overload is shed with 429s (global
// concurrency gate + per-client token buckets), and cross-shard witness
// resolutions are conflated into batched calls. All of its timers read
// the injected Clock, so every behavior is testable under a FakeClock.
//
// Failures degrade per shard: a query touching only shards with at least
// one live replica is unaffected, and one touching a fully-down shard
// gets a 502 whose JSON body names the shard and each replica's failure
// (see ClusterError). Use Health for the per-replica view the /healthz
// endpoint serves.
type Router struct {
	n    int
	part *shard.Partition
	// directed mirrors the manifest's flag: the cluster serves a
	// directed index, so the answer cache keys on ordered pairs and
	// cross-shard joins fetch forward(u) from u's shard and backward(v)
	// from v's. Every /shardquery response echoes the shard's own
	// directedness and a mismatch is a terminal error — manifest drift
	// must be loud, not silently wrong joins.
	directed bool
	shards   []*shardClient
	client   *http.Client

	cacheSize int
	state     atomic.Pointer[routerState]

	ejectAfter int64
	probation  time.Duration

	// Traffic shaping (see shaping.go and ARCHITECTURE.md): every time
	// source below goes through clock so the hedging/ejection/quota
	// machinery is deterministic under a FakeClock.
	clock       Clock
	hedgeDelay  time.Duration // 0 disables hedging
	maxInFlight int64         // 0 disables the concurrency gate
	flights     flightGroup   // collapses identical in-flight pairs
	quota       *quotaLimiter // nil disables per-client quotas

	metrics        *httpMetrics
	queries        atomic.Int64
	crossJoins     atomic.Int64
	failovers      atomic.Int64
	cacheResets    atomic.Int64
	hedges         atomic.Int64 // hedge attempts actually launched
	collapsed      atomic.Int64 // queries collapsed into another's flight
	shed           atomic.Int64 // HTTP requests answered 429
	shapeInFlight  atomic.Int64 // /dist + /batch currently being served
	resolveRanks   atomic.Int64 // witness ranks resolved (batched or not)
	resolveBatches atomic.Int64 // /shardquery resolve round trips
	start          time.Time

	// Dynamic-update state (RouterConfig.BaseGraph / UpdateJournal):
	// baseGraph is the graph the cluster's shard files were built from;
	// patchOps is the patch log accumulated so far, guarded by patchMu
	// along with patchBatches. journalLoaded flips once the journal has
	// been replayed — lazily, on the first query or update, because
	// NewRouter must not contact shards (replay pins patch-vertex rows).
	baseGraph     *Graph
	journal       string
	patchMu       sync.Mutex
	patchOps      []EdgeOp
	patchBatches  uint64
	journalLoaded atomic.Bool
	updates       atomic.Int64

	// Per-replica witness-resolution batchers (resolveRankOn): conflates
	// concurrent rank resolutions pinned to one replica into single
	// batched /shardquery calls. Keyed by replica pointer, so the map is
	// bounded by the cluster size.
	resolveMu sync.Mutex
	resolvers map[*replica]*resolveBatcher

	scratch sync.Pool // *label.QueryScratch sized n, for cross-shard joins
}

// routerState pairs the answer cache with the per-replica snapshot
// identities it was built against. Identity is the (epoch, generation,
// content-hash) triple each shard replica stamps its responses with:
// generations restart at 1 in every process, so the per-process epoch
// makes a replica restart as visible as a reload, and the content hash
// (FlatIndex.ContentHash, durable across processes and hosts) says
// whether the bytes behind the new identity actually changed.
// Identities are totally ordered — generations within one process, and
// epochs across processes (an epoch leads with its process start time in
// milliseconds; see Server) — which lets noteGenerations ignore any
// stale observation from a request that raced a reload or restart
// instead of mistaking it for another change. The zero genObs means
// "not yet observed". The state is swapped atomically whenever a
// replica's identity moves, so answers computed against a retired
// snapshot can never enter the live cache — but the cache itself is
// only retired when the content hash changed: a coordinated restart
// over the same slice files moves every epoch and costs nothing.
type routerState struct {
	idents [][]genObs // [shard][replica]
	cache  *Cache
	// patch is the outstanding delta overlay plus its pinned patch-vertex
	// label rows (nil when no edge updates are outstanding). It rides the
	// state pointer so a patch batch swaps overlay and cache in one
	// atomic publish: every query sees a coherent (overlay, cache) pair,
	// and the fresh cache instance is the patch-epoch discriminant that
	// retires pre-patch answers exactly once per batch.
	patch *routerPatch
}

// patchEpoch returns the state's overlay epoch (0 = no outstanding
// patches) — the discriminant mixed into singleflight keys so a flight
// computed before a patch batch cannot feed a query arriving after it.
func (st *routerState) patchEpoch() uint64 {
	if st.patch == nil {
		return 0
	}
	return st.patch.ov.Epoch()
}

// genObs is one observed snapshot identity. hash is the snapshot's
// content hash (0 = backend predates stamping / unknown, treated as
// always-changed for safety).
type genObs struct {
	epoch, gen uint64
	hash       uint64
}

// repRef names one replica of one shard — the key identity observations
// are tracked under.
type repRef struct {
	shard, rep int
}

// errNotShardBackend rejects a 200 response without a snapshot identity:
// the backend is a plain server, not a shard (started without
// -manifest/-shard). Its answers may be right today, but its reloads
// would be invisible to the router's cache retirement — loud refusal
// beats silent staleness.
var errNotShardBackend = errors.New("backend did not stamp a snapshot identity — is it a shard server (started with -manifest and -shard)?")

// Replica health states.
const (
	replicaHealthy = int32(iota)
	replicaEjected
)

// replica tracks one serving process of one shard's replica group.
type replica struct {
	shard int
	id    int
	addr  string // base URL, no trailing slash

	inflight  atomic.Int64 // requests currently outstanding (p2c load signal)
	requests  atomic.Int64
	errors    atomic.Int64
	ejections atomic.Int64

	// Ejection state machine: consecFails counts consecutive failures;
	// at ejectAfter the replica is ejected and retryAt names the end of
	// its probation, after which one request (the probing-flag holder)
	// probes it — success rejoins, failure re-ejects for another window.
	consecFails atomic.Int64
	state       atomic.Int32
	retryAt     atomic.Int64 // unix nanos; valid while ejected
	probing     atomic.Bool

	lastGen atomic.Uint64 // last generation this replica reported, for /stats
	mu      sync.Mutex
	lastErr string

	// Clock-step self-heal (see noteGenerations): an epoch older than
	// the adopted one is normally a delayed response from a dead
	// process, but a host clock stepped backwards across a restart makes
	// the *live* process look old. staleSeen counts consecutive
	// responses bearing the same older epoch; past a small threshold it
	// must be the live process and is adopted.
	staleEpoch atomic.Uint64
	staleSeen  atomic.Int64
}

// staleAdoptThreshold is how many consecutive responses under the same
// older epoch convince the router it is the live process (a backwards
// clock step at restart) rather than stragglers from a dead one.
const staleAdoptThreshold = 3

func (rep *replica) setErr(err error) {
	rep.mu.Lock()
	rep.lastErr = err.Error()
	rep.mu.Unlock()
}

// succeed records a completed request: the replica is healthy, whatever
// its state said, and any probe it was holding is done.
func (rep *replica) succeed() {
	rep.consecFails.Store(0)
	rep.state.Store(replicaHealthy)
	rep.probing.Store(false)
	rep.mu.Lock()
	rep.lastErr = ""
	rep.mu.Unlock()
}

// fail records a replica-level failure (transport error or 5xx) at time
// now (the router's clock — fake in tests): it counts toward ejection,
// and a failure while ejected — a probe, or a desperation attempt with
// every sibling down — pushes the next probe a full probation window
// out.
func (rep *replica) fail(err error, ejectAfter int64, probation time.Duration, now time.Time) {
	rep.errors.Add(1)
	rep.setErr(err)
	fails := rep.consecFails.Add(1)
	if rep.state.Load() == replicaEjected {
		rep.retryAt.Store(now.Add(probation).UnixNano())
		rep.probing.Store(false)
		return
	}
	if fails >= ejectAfter && rep.state.CompareAndSwap(replicaHealthy, replicaEjected) {
		rep.ejections.Add(1)
		rep.retryAt.Store(now.Add(probation).UnixNano())
	}
}

// terminalFail records a request-level failure — a 4xx or a malformed
// payload — at time now. It counts as an error but not toward ejection
// (the transport worked; a sibling would answer the same). An ejected
// replica whose probe ends here must release the probe flag and wait out
// another probation window: the probe proved the process answers, but
// not that it serves — and a held flag would lock the replica out of
// re-probing forever.
func (rep *replica) terminalFail(err error, probation time.Duration, now time.Time) {
	rep.errors.Add(1)
	rep.setErr(err)
	if rep.state.Load() == replicaEjected {
		rep.retryAt.Store(now.Add(probation).UnixNano())
		rep.probing.Store(false)
	}
}

// hedgeCanceled records an attempt the router itself canceled (its hedge
// sibling answered first). Health-neutral — the replica did nothing
// wrong — but a held probe flag must be released, or a probe attempt
// that lost a hedge race would lock its replica out of rotation forever.
func (rep *replica) hedgeCanceled() {
	rep.probing.Store(false)
}

// shardClient is one shard's replica group.
type shardClient struct {
	id   int
	reps []*replica
}

func (c *shardClient) addrList() string {
	addrs := make([]string, len(c.reps))
	for i, rep := range c.reps {
		addrs[i] = rep.addr
	}
	return strings.Join(addrs, ",")
}

// pick chooses the next replica to try for one request, skipping those
// already tried by this request's earlier attempts. Selection order:
//
//  1. An ejected replica whose probation has expired, if this request
//     wins the probe flag — exactly one in-flight request probes a
//     recovering replica, everyone else keeps using its siblings.
//  2. A healthy replica, by power-of-two-choices on in-flight counts:
//     two random candidates, the less loaded one wins. Random pairing
//     keeps a slow replica from capturing all traffic decisions; the
//     in-flight comparison steers around it.
//  3. Desperation: every untried replica is ejected (probation pending
//     or probe held elsewhere). Try the least loaded anyway — ejection
//     must steer traffic, never fail a query a live replica could have
//     answered.
//
// Returns nil once every replica has been tried. now is the caller's
// clock reading in unix nanos (the router's injected clock, so probation
// expiry is testable without real sleeps).
func (c *shardClient) pick(tried []bool, now int64) *replica {
	for _, rep := range c.reps {
		if tried[rep.id] || rep.state.Load() != replicaEjected {
			continue
		}
		if now >= rep.retryAt.Load() && rep.probing.CompareAndSwap(false, true) {
			return rep
		}
	}
	var healthy []*replica
	for _, rep := range c.reps {
		if !tried[rep.id] && rep.state.Load() == replicaHealthy {
			healthy = append(healthy, rep)
		}
	}
	switch len(healthy) {
	case 0:
	case 1:
		return healthy[0]
	default:
		i := rand.Intn(len(healthy))
		j := rand.Intn(len(healthy) - 1)
		if j >= i {
			j++
		}
		if healthy[j].inflight.Load() < healthy[i].inflight.Load() {
			return healthy[j]
		}
		return healthy[i]
	}
	var best *replica
	for _, rep := range c.reps {
		if tried[rep.id] {
			continue
		}
		if best == nil || rep.inflight.Load() < best.inflight.Load() {
			best = rep
		}
	}
	return best
}

// ShardError reports a failed request to one shard. Replica names the
// replica that produced a request-level error, or -1 when the whole
// replica group failed (Err then lists each replica's failure).
type ShardError struct {
	Shard   int
	Replica int
	Addr    string
	Err     error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// ClusterError aggregates the shard failures of one routed request — the
// partial-failure error body: shards not listed answered fine, but the
// request needed the listed ones, and every replica of each listed shard
// failed.
type ClusterError struct {
	Failed []*ShardError
}

func (e *ClusterError) Error() string {
	parts := make([]string, len(e.Failed))
	for i, f := range e.Failed {
		parts[i] = f.Error()
	}
	return "cluster degraded: " + strings.Join(parts, "; ")
}

// VertexRangeError reports a query for an id outside the cluster's vertex
// space; the HTTP layer turns it into a 400.
type VertexRangeError struct {
	ID, N int
}

func (e *VertexRangeError) Error() string {
	return fmt.Sprintf("vertex id %d out of range [0,%d)", e.ID, e.N)
}

// RouterConfig configures NewRouter.
type RouterConfig struct {
	// Manifest describes the cluster (vertex count and ring); usually
	// shard.ReadManifest of the splitter's cluster.json.
	Manifest *shard.Manifest
	// Addrs are the shard servers' base URLs, indexed by shard id — the
	// unreplicated form, equivalent to one-element replica groups.
	Addrs []string
	// ReplicaAddrs are the per-shard replica groups, indexed by shard id:
	// every address in group i serves shard i's slice file. Takes
	// precedence over Addrs; when both are empty the manifest's
	// replica_addrs (v2) are used.
	ReplicaAddrs [][]string
	// CacheSize bounds the router's answer cache; <= 0 disables it.
	CacheSize int
	// Timeout bounds each shard request (default 5s).
	Timeout time.Duration
	// EjectAfter is how many consecutive failures eject a replica from
	// rotation (default 3).
	EjectAfter int
	// Probation is how long an ejected replica sits out before the
	// router probes it with one request (default 2s).
	Probation time.Duration
	// HedgeDelay is how long a shard request waits before hedging: firing
	// the same call at a second replica and taking whichever answers
	// first (the loser is canceled). 0 disables hedging. Only shards with
	// more than one replica hedge; witness-rank resolution never does
	// (it is pinned to one process by construction).
	HedgeDelay time.Duration
	// MaxInFlight caps concurrently served /dist and /batch HTTP
	// requests; excess requests are shed with a 429 (reason
	// "over_capacity"). 0 disables the gate. Only shapes the HTTP front
	// door — direct Query/Batch calls are never shed.
	MaxInFlight int
	// ClientQPS is the per-client sustained request rate on /dist and
	// /batch, keyed on the X-Client-ID header (falling back to the remote
	// host). Clients over quota are shed with a 429 (reason
	// "client_quota"). 0 disables quotas.
	ClientQPS float64
	// ClientBurst is the per-client burst on top of ClientQPS; <= 0
	// defaults to max(1, ClientQPS).
	ClientBurst int
	// BaseGraph enables dynamic edge updates (POST /update): it must be
	// the exact graph the cluster's shard files were built from. The
	// router corrects queries locally against a delta overlay — shards
	// stay frozen and never see updates. Nil disables updates.
	BaseGraph *Graph
	// UpdateJournal names the router's patch journal: accepted batches
	// are appended (and fsynced) before they serve, and journaled ops
	// are replayed on the first query after a restart. "" disables
	// journaling. Requires BaseGraph.
	UpdateJournal string
	// Clock overrides the router's time source — hedging, ejection,
	// probation, quotas, and uptime all read it. Nil means the real
	// clock; tests inject a FakeClock.
	Clock Clock
	// Client overrides the HTTP client (tests, custom transports);
	// Timeout is ignored when set.
	Client *http.Client
}

// NewRouter validates the cluster description and returns a router.
// Shards are not contacted — a router starts (and serves what it can)
// even while part of the cluster is down.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Manifest == nil {
		return nil, fmt.Errorf("chl: router needs a manifest")
	}
	if err := cfg.Manifest.Validate(); err != nil {
		return nil, err
	}
	groups := cfg.ReplicaAddrs
	if groups == nil && len(cfg.Addrs) > 0 {
		groups = make([][]string, len(cfg.Addrs))
		for i, a := range cfg.Addrs {
			groups[i] = []string{a}
		}
	}
	if groups == nil {
		groups = cfg.Manifest.ReplicaAddrs
	}
	if groups == nil {
		return nil, fmt.Errorf("chl: router needs shard addresses: Addrs, ReplicaAddrs, or a v2 manifest with replica_addrs")
	}
	if len(groups) != cfg.Manifest.Shards {
		return nil, fmt.Errorf("chl: manifest has %d shards but %d address groups given", cfg.Manifest.Shards, len(groups))
	}
	part, err := cfg.Manifest.Partition()
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 5 * time.Second
		}
		client = &http.Client{Timeout: timeout}
	}
	ejectAfter := int64(cfg.EjectAfter)
	if ejectAfter <= 0 {
		ejectAfter = 3
	}
	probation := cfg.Probation
	if probation <= 0 {
		probation = 2 * time.Second
	}
	clock := cfg.Clock
	if clock == nil {
		clock = realClock{}
	}
	hedgeDelay := cfg.HedgeDelay
	if hedgeDelay < 0 {
		hedgeDelay = 0
	}
	if cfg.UpdateJournal != "" && cfg.BaseGraph == nil {
		return nil, fmt.Errorf("chl: UpdateJournal requires BaseGraph — the journal is replayed against it")
	}
	if cfg.BaseGraph != nil {
		if cfg.BaseGraph.NumVertices() != cfg.Manifest.Vertices {
			return nil, fmt.Errorf("chl: base graph has %d vertices but the manifest says %d — not the graph this cluster was built from?", cfg.BaseGraph.NumVertices(), cfg.Manifest.Vertices)
		}
		if cfg.BaseGraph.Directed() != cfg.Manifest.Directed {
			return nil, fmt.Errorf("chl: base graph directedness (%v) does not match the manifest (%v)", cfg.BaseGraph.Directed(), cfg.Manifest.Directed)
		}
	}
	r := &Router{
		n:           cfg.Manifest.Vertices,
		part:        part,
		directed:    cfg.Manifest.Directed,
		client:      client,
		cacheSize:   cfg.CacheSize,
		ejectAfter:  ejectAfter,
		probation:   probation,
		clock:       clock,
		hedgeDelay:  hedgeDelay,
		maxInFlight: int64(cfg.MaxInFlight),
		quota:       newQuotaLimiter(clock, cfg.ClientQPS, cfg.ClientBurst),
		metrics:     newHTTPMetrics(clock, "/dist", "/batch", "/paths", "/knn", "/matrix", "/stats", "/reload", "/update", "/healthz"),
		start:       clock.Now(),
		baseGraph:   cfg.BaseGraph,
		journal:     cfg.UpdateJournal,
	}
	if r.journal == "" {
		r.journalLoaded.Store(true) // nothing to replay; skip the mutex fast path
	}
	idents := make([][]genObs, len(groups))
	for i, group := range groups {
		if len(group) == 0 {
			return nil, fmt.Errorf("chl: shard %d has an empty replica group", i)
		}
		c := &shardClient{id: i}
		for j, a := range group {
			if a == "" {
				return nil, fmt.Errorf("chl: shard %d replica %d has an empty address", i, j)
			}
			c.reps = append(c.reps, &replica{shard: i, id: j, addr: strings.TrimRight(a, "/")})
		}
		r.shards = append(r.shards, c)
		idents[i] = make([]genObs, len(group))
	}
	r.state.Store(&routerState{
		idents: idents,
		cache:  r.newAnswerCache(),
	})
	r.scratch.New = func() any { return label.NewQueryScratch(r.n) }
	return r, nil
}

// newAnswerCache builds a cluster-level answer cache matching the
// cluster's directedness (ordered keys for directed clusters).
func (r *Router) newAnswerCache() *Cache { return newCache(r.cacheSize, r.directed) }

// NumVertices returns the vertex-id space the cluster serves.
func (r *Router) NumVertices() int { return r.n }

// Directed reports whether the cluster serves a directed index.
func (r *Router) Directed() bool { return r.directed }

// hubUnknown marks a cached answer whose witness hub was never computed
// (batch paths only need distances). QueryHub treats such hits as misses.
const hubUnknown = -1

// Query answers one point-to-point query through the cluster. Unlike
// QueryHub it never pays the witness-resolution round trip.
func (r *Router) Query(u, v int) (float64, error) {
	d, _, _, err := r.queryHub(u, v, false)
	return d, err
}

// QueryHub answers one query with its witness hub (an original vertex
// id), exactly as Server.QueryHub does on the unsharded index.
func (r *Router) QueryHub(u, v int) (dist float64, hub int, ok bool, err error) {
	return r.queryHub(u, v, true)
}

// queryHub is the shared single-query path. needHub=false (Query) skips
// the witness-rank resolution round trip on cross-shard misses — the
// hub would be discarded anyway, and Batch already caches hub-less
// answers the same way.
//
// Concurrent duplicate misses are collapsed (flightGroup): the first
// caller for a pair routes it, everyone else arriving before it returns
// waits for that answer — under hot-pair traffic a thundering herd
// costs one backend round trip. The flight key follows the cache's
// pairKey discipline (ordered for directed clusters), split by needHub
// because a hub-less flight cannot feed a hub-needing caller.
func (r *Router) queryHub(u, v int, needHub bool) (dist float64, hub int, ok bool, err error) {
	if u < 0 || u >= r.n {
		return 0, 0, false, &VertexRangeError{ID: u, N: r.n}
	}
	if v < 0 || v >= r.n {
		return 0, 0, false, &VertexRangeError{ID: v, N: r.n}
	}
	if err := r.ensurePatch(); err != nil {
		return 0, 0, false, err
	}
	st := r.state.Load()
	if st.cache != nil {
		if a, hit := st.cache.Get(u, v); hit && (!needHub || a.Hub != hubUnknown || !a.Reachable) {
			r.queries.Add(1)
			return a.Dist, a.Hub, a.Reachable, nil
		}
	}
	r.queries.Add(1)
	key := flightKeyFor(flightDist, r.directed, u, v, needHub, st.patchEpoch())
	res := r.flights.do(key, func() { r.collapsed.Add(1) }, func() flightResult {
		if st.patch != nil {
			return r.routePatchedQueryHub(st, u, v, needHub)
		}
		return r.routeQueryHub(st, u, v, needHub)
	})
	if res.err != nil {
		return 0, 0, false, res.err
	}
	return res.dist, res.hub, res.ok, nil
}

// routeQueryHub is the leader's half of queryHub: route the miss to the
// owning shard(s) and feed the answer to the cache.
func (r *Router) routeQueryHub(st *routerState, u, v int, needHub bool) flightResult {
	su, sv := r.part.Owner(u), r.part.Owner(v)
	obs := map[repRef]genObs{}
	var (
		dist float64
		hub  int
		ok   bool
		err  error
	)
	if su == sv {
		dist, hub, ok, err = r.fetchDist(su, u, v, obs)
	} else {
		dist, hub, ok, err = r.crossQueryHub(su, sv, u, v, obs, needHub)
	}
	if err != nil {
		return flightResult{err: err}
	}
	r.cachePut(st, obs, u, v, Answer{Dist: dist, Hub: hub, Reachable: ok})
	return flightResult{dist: dist, hub: hub, ok: ok}
}

// Batch answers a batch of queries through the cluster, returning the
// distances in order (Infinity for unreachable pairs). Same-shard pairs
// are forwarded whole, one sub-batch per shard; cross-shard pairs are
// answered by fetching each involved vertex's label row once per shard
// and hub-joining at the router. All shard traffic for a batch runs
// concurrently; each shard request load-balances and fails over within
// the shard's replica group independently.
func (r *Router) Batch(pairs []QueryPair) ([]float64, error) {
	if err := r.ensurePatch(); err != nil {
		return nil, err
	}
	dists := make([]float64, len(pairs))
	st := r.state.Load()

	// Under a delta overlay every pair needs the seeded correction; the
	// batch row-join fast path below answers from frozen labels only, so
	// it is bypassed — each pair runs the (cached, collapsed) corrected
	// single-query path instead.
	if st.patch != nil {
		for i, p := range pairs {
			d, _, _, err := r.queryHub(p.U, p.V, false)
			if err != nil {
				return nil, err
			}
			dists[i] = d
		}
		return dists, nil
	}

	// Cache pass; pending collects the misses.
	pending := make([]int, 0, len(pairs))
	for i, p := range pairs {
		if p.U < 0 || p.U >= r.n {
			return nil, &VertexRangeError{ID: p.U, N: r.n}
		}
		if p.V < 0 || p.V >= r.n {
			return nil, &VertexRangeError{ID: p.V, N: r.n}
		}
		if st.cache != nil {
			if a, hit := st.cache.Get(p.U, p.V); hit {
				dists[i] = a.Dist
				continue
			}
		}
		pending = append(pending, i)
	}
	r.queries.Add(int64(len(pairs)))
	if len(pending) == 0 {
		return dists, nil
	}

	// Group the misses: same-shard sub-batches and cross-shard row needs.
	// On a directed cluster a cross pair (u,v) needs u's forward row and
	// v's backward row; undirected clusters need only (symmetric) forward
	// rows for both endpoints.
	direct := map[int][]int{} // shard id -> indexes into pairs
	cross := make([]int, 0)
	needF := map[int]map[int]struct{}{} // shard id -> forward-row vertex set
	needB := map[int]map[int]struct{}{} // shard id -> backward-row vertex set (directed)
	addNeed := func(m map[int]map[int]struct{}, s, v int) {
		if m[s] == nil {
			m[s] = map[int]struct{}{}
		}
		m[s][v] = struct{}{}
	}
	for _, i := range pending {
		p := pairs[i]
		su, sv := r.part.Owner(p.U), r.part.Owner(p.V)
		if su == sv {
			direct[su] = append(direct[su], i)
			continue
		}
		cross = append(cross, i)
		addNeed(needF, su, p.U)
		if r.directed {
			addNeed(needB, sv, p.V)
		} else {
			addNeed(needF, sv, p.V)
		}
	}

	// Fan out: one /batch per direct shard, one /shardquery per row shard
	// (carrying that shard's forward and backward needs together).
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		fails    []*ShardError
		rowsF    = map[int][]uint64{}  // vertex -> decoded forward packed run
		rowsB    = map[int][]uint64{}  // vertex -> decoded backward packed run
		obs      = map[repRef]genObs{} // replica -> observed snapshot identity
		conflict bool                  // one replica answered under two identities
	)
	observe := func(k repRef, o genObs, err *ShardError) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			fails = append(fails, err)
			return
		}
		// A batch may hit the same replica twice (direct sub-batch + row
		// fetch). If a reload lands between the two responses, part of
		// this batch was computed on the retired snapshot, and no single
		// identity can vouch for all of its answers — skip caching. Two
		// *different* replicas of one shard answering is not a conflict:
		// each identity is validated on its own.
		if prev, seen := obs[k]; seen && prev != o {
			conflict = true
		}
		obs[k] = o
	}
	for sid, idxs := range direct {
		wg.Add(1)
		go func(sid int, idxs []int) {
			defer wg.Done()
			sub := make([]QueryPair, len(idxs))
			for k, i := range idxs {
				sub[k] = pairs[i]
			}
			ds, rep, o, err := r.fetchBatch(sid, sub)
			if err != nil {
				observe(repRef{}, genObs{}, err)
				return
			}
			for k, i := range idxs {
				dists[i] = ds[k]
			}
			observe(repRef{sid, rep.id}, o, nil)
		}(sid, idxs)
	}
	rowShards := map[int]struct{}{}
	for sid := range needF {
		rowShards[sid] = struct{}{}
	}
	for sid := range needB {
		rowShards[sid] = struct{}{}
	}
	sortedVerts := func(verts map[int]struct{}) []int {
		vs := make([]int, 0, len(verts))
		for v := range verts {
			vs = append(vs, v)
		}
		sort.Ints(vs)
		return vs
	}
	for sid := range rowShards {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			gotF, gotB, rep, o, err := r.fetchRows(sid, sortedVerts(needF[sid]), sortedVerts(needB[sid]))
			if err != nil {
				observe(repRef{}, genObs{}, err)
				return
			}
			mu.Lock()
			for v, run := range gotF {
				rowsF[v] = run
			}
			for v, run := range gotB {
				rowsB[v] = run
			}
			mu.Unlock()
			observe(repRef{sid, rep.id}, o, nil)
		}(sid)
	}
	wg.Wait()
	if len(fails) > 0 {
		sort.Slice(fails, func(i, j int) bool { return fails[i].Shard < fails[j].Shard })
		return nil, &ClusterError{Failed: fails}
	}

	// Hub-join the cross-shard pairs locally, with the same scratch
	// kernel and size policy the single-process BatchEngine serves with.
	useScratch := r.n <= hashServeMaxVertices
	var s *label.QueryScratch
	if useScratch && len(cross) > 0 {
		s = r.scratch.Get().(*label.QueryScratch)
		defer r.scratch.Put(s)
	}
	for _, i := range cross {
		p := pairs[i]
		a, b := rowsF[p.U], rowsF[p.V]
		if r.directed {
			b = rowsB[p.V]
		}
		var (
			d  float64
			ok bool
		)
		if useScratch {
			d, _, ok = label.JoinPackedWith(s, a, b)
		} else {
			d, _, ok = label.JoinPacked(a, b)
		}
		if !ok {
			d = Infinity
		}
		dists[i] = d
	}
	r.crossJoins.Add(int64(len(cross)))

	// Populate the cache (hub unknown on this path — /batch never needs
	// witnesses; QueryHub will recompute and upgrade the entry). A batch
	// that observed one replica under two identities raced a reload: its
	// answers are correct for the snapshots that computed them but not
	// attributable to a single identity, so they are not cached. The
	// identity validation runs once for the whole batch, then the
	// answers are inserted directly.
	if !conflict && r.cacheValid(st, obs) {
		for _, i := range pending {
			p := pairs[i]
			st.cache.Put(p.U, p.V, Answer{Dist: dists[i], Hub: hubUnknown, Reachable: dists[i] != Infinity})
		}
	} else if conflict {
		r.noteGenerations(obs)
	}
	return dists, nil
}

// cacheValid folds the observations into the router state and reports
// whether answers computed under them may enter st's cache: the cache
// instance the request started with must still be the live one, and
// every replica identity observed while computing must match the live
// state — an answer that raced a replica reload is simply not cached.
// First observations (which adopt identities into the state but keep
// the cache instance) therefore do not lose their answers. The check is
// per request, not per answer: callers validate once and Put in bulk.
func (r *Router) cacheValid(st *routerState, obs map[repRef]genObs) bool {
	r.noteGenerations(obs)
	if st.cache == nil {
		return false
	}
	cur := r.state.Load()
	if cur.cache != st.cache {
		return false // cache retired by an observed reload/restart
	}
	for k, o := range obs {
		if cur.idents[k.shard][k.rep] != o {
			return false
		}
	}
	return true
}

// cachePut is cacheValid plus one insertion — the single-query path.
func (r *Router) cachePut(st *routerState, obs map[repRef]genObs, u, v int, a Answer) {
	if r.cacheValid(st, obs) {
		st.cache.Put(u, v, a)
	}
}

// noteGenerations folds freshly observed replica snapshot identities into
// the router state. First observations are adopted, keeping the current
// cache. An identity move — a reload (same epoch, higher generation) or
// a restart (new epoch) — is classified by the snapshot content hash:
// when the hash is unchanged (a process restart over the same slice
// file, or a reload of identical bytes) the new identity is adopted
// with the cache kept, because every cached answer is still an answer
// the new snapshot would give; only a hash change retires the cache —
// the cluster-level equivalent of the per-snapshot caches below. A
// coordinated whole-cluster restart therefore costs zero cache resets.
// A stale observation (same epoch, generation at or below the known one
// — a slow response that started before a reload) is ignored rather
// than treated as another change, so a content change under concurrent
// traffic retires the cache exactly once. Identities are per replica: a
// replica that reloads new content before its siblings retires the
// cache once, without making the unchanged siblings look stale.
func (r *Router) noteGenerations(obs map[repRef]genObs) {
	// Clock-step pre-pass, once per call (not per CAS retry): count
	// consecutive sightings of the same older epoch; past the threshold
	// it is the live process answering under a stepped-back clock, and
	// must be adopted or the replica would be ignored forever.
	adoptStale := map[repRef]bool{}
	if pre := r.state.Load(); pre != nil {
		for k, o := range obs {
			E := pre.idents[k.shard][k.rep].epoch
			if o.gen == 0 || E == 0 || o.epoch >= E {
				continue
			}
			rep := r.shards[k.shard].reps[k.rep]
			if rep.staleEpoch.Swap(o.epoch) == o.epoch {
				if rep.staleSeen.Add(1) >= staleAdoptThreshold {
					adoptStale[k] = true
					rep.staleSeen.Store(0)
				}
			} else {
				rep.staleSeen.Store(1)
			}
		}
	}
	for {
		st := r.state.Load()
		changed := false
		adopted := false
		apply := func(k repRef, o genObs) bool {
			cur := st.idents[k.shard][k.rep]
			switch {
			case o.gen == 0: // no observation
				return false
			case cur.epoch == 0 && cur.gen == 0: // first sighting of this replica
				return true
			case o.epoch == cur.epoch: // same process: generations are ordered
				return o.gen > cur.gen
			default:
				// Epochs lead with process start time: a larger one is a
				// restart, a smaller one a delayed response from a dead
				// process, which must not regress the state — unless it
				// keeps answering (clock step; see adoptStale).
				return o.epoch > cur.epoch || adoptStale[k]
			}
		}
		for k, o := range obs {
			if !apply(k, o) {
				continue
			}
			cur := st.idents[k.shard][k.rep]
			switch {
			case cur.epoch == 0 && cur.gen == 0:
				adopted = true
			case o.hash != 0 && o.hash == cur.hash:
				// The identity moved but the bytes behind it did not: a
				// restart or no-op reload over the same content. Track the
				// new identity, keep the cache.
				adopted = true
			default:
				changed = true
			}
		}
		if !changed && !adopted {
			return
		}
		next := &routerState{
			idents: make([][]genObs, len(st.idents)),
			cache:  st.cache,
			patch:  st.patch,
		}
		for i, group := range st.idents {
			next.idents[i] = append([]genObs(nil), group...)
		}
		for k, o := range obs {
			if apply(k, o) {
				next.idents[k.shard][k.rep] = o
			}
		}
		if changed {
			next.cache = r.newAnswerCache()
		}
		if r.state.CompareAndSwap(st, next) {
			if changed {
				r.cacheResets.Add(1)
			}
			return
		}
	}
}

// --- shard protocol clients ---

// terminalError marks a request-level failure — a 4xx or a payload the
// router cannot use. Retrying a sibling replica would produce the same
// answer, so withReplica fails the request instead of failing over.
type terminalError struct {
	err error
}

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// terminalErr folds a request-level failure into rep's health state (see
// replica.terminalFail) and wraps it for the caller. Also used after a
// successful round trip whose payload turns out unusable (missing rows,
// vertex-space mismatch) — the accounting is the same.
func (r *Router) terminalErr(rep *replica, err error) *ShardError {
	rep.terminalFail(err, r.probation, r.clock.Now())
	return &ShardError{Shard: rep.shard, Replica: rep.id, Addr: rep.addr, Err: err}
}

// tryReplica runs one request attempt against rep with the full health
// accounting every caller must agree on: request/in-flight counters
// around call, success resetting the ejection state and releasing any
// held probe, a terminal failure counted without feeding ejection (but
// still releasing the probe — terminalFail), and a replica-level
// failure feeding the ejection/probation machinery. terminal reports
// which kind of failure occurred: terminal ones must not be retried on
// a sibling.
func (r *Router) tryReplica(rep *replica, call func(rep *replica) error) (serr *ShardError, terminal bool) {
	rep.requests.Add(1)
	rep.inflight.Add(1)
	err := call(rep)
	rep.inflight.Add(-1)
	if err == nil {
		rep.succeed()
		return nil, false
	}
	var term *terminalError
	if errors.As(err, &term) {
		return r.terminalErr(rep, term.err), true
	}
	rep.fail(err, r.ejectAfter, r.probation, r.clock.Now())
	return &ShardError{Shard: rep.shard, Replica: rep.id, Addr: rep.addr, Err: err}, false
}

// attemptOutcome is one withReplica attempt's result. canceled marks an
// attempt the router itself canceled (hedge loser): health-neutral, no
// error, no answer.
type attemptOutcome[T any] struct {
	rep      *replica
	out      *T
	serr     *ShardError
	terminal bool
	canceled bool
}

// runAttempt runs one request attempt against rep under ctx with the
// full health accounting: request/in-flight counters around call,
// success resetting the ejection state and releasing any held probe, a
// cancellation (the attempt lost a hedge race) health-neutral but still
// releasing the probe, a terminal failure counted without feeding
// ejection, and a replica-level failure feeding the ejection/probation
// machinery.
func runAttempt[T any](r *Router, ctx context.Context, rep *replica, call func(ctx context.Context, rep *replica) (*T, error)) attemptOutcome[T] {
	rep.requests.Add(1)
	rep.inflight.Add(1)
	out, err := call(ctx, rep)
	rep.inflight.Add(-1)
	if err == nil {
		rep.succeed()
		return attemptOutcome[T]{rep: rep, out: out}
	}
	if ctx.Err() != nil {
		rep.hedgeCanceled()
		return attemptOutcome[T]{rep: rep, canceled: true}
	}
	var term *terminalError
	if errors.As(err, &term) {
		return attemptOutcome[T]{rep: rep, serr: r.terminalErr(rep, term.err), terminal: true}
	}
	rep.fail(err, r.ejectAfter, r.probation, r.clock.Now())
	return attemptOutcome[T]{rep: rep, serr: &ShardError{Shard: rep.shard, Replica: rep.id, Addr: rep.addr, Err: err}}
}

// withReplica runs one logical shard request against shard sid's replica
// group: pick a replica (see shardClient.pick), run call against it, and
// on a replica-level failure fail over to the next untried replica. The
// request fails only when every replica failed (one ShardError listing
// each attempt) or a replica produced a terminal error.
//
// When the router hedges (hedgeDelay > 0 and the group has siblings), an
// attempt that has not answered within hedgeDelay gets a second attempt
// launched at another replica — picked by the same probe/p2c/desperation
// policy — and the first answer wins; the loser's context is canceled on
// return and its outcome discarded as health-neutral. At most one hedge
// fires per logical request (a hedge of a hedge just multiplies load
// when the cluster is slow), and failover keeps working underneath: a
// replica-level failure with no attempt still in flight launches the
// next untried replica immediately, hedged or not.
//
// A package-level generic (methods cannot have type parameters): each
// attempt decodes into its own *T, so a canceled loser can never tear
// the winner's decoded response.
func withReplica[T any](r *Router, sid int, call func(ctx context.Context, rep *replica) (*T, error)) (*T, *replica, *ShardError) {
	c := r.shards[sid]
	tried := make([]bool, len(c.reps))
	// Buffered to the attempt cap: a loser finishing after return must
	// never block on a channel nobody reads.
	outcomes := make(chan attemptOutcome[T], len(c.reps))
	var cancels []context.CancelFunc
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	outstanding := 0
	launch := func() bool {
		rep := c.pick(tried, r.clock.Now().UnixNano())
		if rep == nil {
			return false
		}
		tried[rep.id] = true
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		outstanding++
		go func() { outcomes <- runAttempt(r, ctx, rep, call) }()
		return true
	}
	// The hedge timer is registered before the first attempt launches, so
	// once a backend has observably received a request the timer already
	// exists — what lets a FakeClock test Advance past the delay without
	// racing the registration.
	var hedgeC <-chan time.Time
	if r.hedgeDelay > 0 && len(c.reps) > 1 {
		t := r.clock.NewTimer(r.hedgeDelay)
		defer t.Stop()
		hedgeC = t.C()
	}
	launch()
	var attempts []string
	for outstanding > 0 {
		select {
		case o := <-outcomes:
			outstanding--
			if o.canceled {
				continue
			}
			if o.serr == nil {
				return o.out, o.rep, nil
			}
			if o.terminal {
				return nil, nil, o.serr
			}
			attempts = append(attempts, fmt.Sprintf("replica %d (%s): %v", o.rep.id, o.rep.addr, o.serr.Err))
			if outstanding == 0 && launch() {
				r.failovers.Add(1)
			}
		case <-hedgeC:
			hedgeC = nil
			if launch() {
				r.hedges.Add(1)
			}
		}
	}
	return nil, nil, &ShardError{
		Shard: sid, Replica: -1, Addr: c.addrList(),
		Err: fmt.Errorf("all %d replicas failed: %s", len(c.reps), strings.Join(attempts, "; ")),
	}
}

// getJSON GETs path on one replica of shard sid (with failover and
// hedging) and decodes the response body into a fresh *T per attempt,
// returning the replica that answered.
func getJSON[T any](r *Router, sid int, path string) (*T, *replica, *ShardError) {
	return withReplica(r, sid, func(ctx context.Context, rep *replica) (*T, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.addr+path, nil)
		if err != nil {
			return nil, err
		}
		resp, err := r.client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		out := new(T)
		if err := decodeReplicaResponse(resp, out); err != nil {
			return nil, err
		}
		return out, nil
	})
}

// postJSON POSTs a JSON body to path on one replica of shard sid (with
// failover and hedging), returning the replica that answered.
func postJSON[T any](r *Router, sid int, path string, body any) (*T, *replica, *ShardError) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, nil, &ShardError{Shard: sid, Replica: -1, Addr: r.shards[sid].addrList(), Err: err}
	}
	return withReplica(r, sid, func(ctx context.Context, rep *replica) (*T, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.addr+path, bytes.NewReader(b))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		out := new(T)
		if err := decodeReplicaResponse(resp, out); err != nil {
			return nil, err
		}
		return out, nil
	})
}

// decodeReplicaResponse turns one replica's HTTP response into out or an
// error: 4xx is terminal (the request is wrong — a sibling would say the
// same), everything else — 5xx, undecodable bodies — is a replica
// failure the caller may retry elsewhere.
func decodeReplicaResponse(resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
		if json.Unmarshal(msg, &eb) == nil && eb.Error != "" {
			err = fmt.Errorf("status %d: %s", resp.StatusCode, eb.Error)
		}
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return &terminalError{err: err}
		}
		return err
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("undecodable response: %w", err)
	}
	return nil
}

// checkDirected rejects a shard response whose slice directedness
// disagrees with the manifest — on every routed path, same-shard
// forwards included: a directed router accepting an undirected shard's
// symmetric answer would cache d(u,v) as d(u→v), silently wrong.
func (r *Router) checkDirected(rep *replica, directed bool) *ShardError {
	if directed == r.directed {
		return nil
	}
	return r.terminalErr(rep, fmt.Errorf("shard serves directed=%v but the manifest says directed=%v — mismatched index files?", directed, r.directed))
}

// distWire is the shard /dist response as the router reads it.
type distWire struct {
	Reachable  bool    `json:"reachable"`
	Dist       float64 `json:"dist"`
	Hub        int     `json:"hub"`
	Generation uint64  `json:"generation"`
	Epoch      uint64  `json:"epoch"`
	Ident      uint64  `json:"ident"`
	Directed   bool    `json:"directed"`
}

// batchWire is the shard /batch response as the router reads it.
type batchWire struct {
	Dists      []float64 `json:"dists"`
	Generation uint64    `json:"generation"`
	Epoch      uint64    `json:"epoch"`
	Ident      uint64    `json:"ident"`
	Directed   bool      `json:"directed"`
}

// fetchDist forwards a same-shard query whole; the shard answers from its
// local runs and cache, witness hub included.
func (r *Router) fetchDist(sid, u, v int, obs map[repRef]genObs) (float64, int, bool, error) {
	resp, rep, serr := getJSON[distWire](r, sid, fmt.Sprintf("/dist?u=%d&v=%d", u, v))
	if serr != nil {
		return 0, 0, false, &ClusterError{Failed: []*ShardError{serr}}
	}
	if resp.Generation == 0 {
		return 0, 0, false, &ClusterError{Failed: []*ShardError{r.terminalErr(rep, errNotShardBackend)}}
	}
	if serr := r.checkDirected(rep, resp.Directed); serr != nil {
		return 0, 0, false, &ClusterError{Failed: []*ShardError{serr}}
	}
	rep.lastGen.Store(resp.Generation)
	obs[repRef{sid, rep.id}] = genObs{epoch: resp.Epoch, gen: resp.Generation, hash: resp.Ident}
	if !resp.Reachable {
		return Infinity, 0, false, nil
	}
	return resp.Dist, resp.Hub, true, nil
}

// fetchBatch forwards a same-shard sub-batch, translating the wire's -1
// back to Infinity.
func (r *Router) fetchBatch(sid int, pairs []QueryPair) ([]float64, *replica, genObs, *ShardError) {
	body := make([][2]int, len(pairs))
	for i, p := range pairs {
		body[i] = [2]int{p.U, p.V}
	}
	resp, rep, serr := postJSON[batchWire](r, sid, "/batch", body)
	if serr != nil {
		return nil, nil, genObs{}, serr
	}
	if len(resp.Dists) != len(pairs) {
		return nil, nil, genObs{}, r.terminalErr(rep, fmt.Errorf("batch of %d pairs answered with %d distances", len(pairs), len(resp.Dists)))
	}
	if resp.Generation == 0 {
		return nil, nil, genObs{}, r.terminalErr(rep, errNotShardBackend)
	}
	if serr := r.checkDirected(rep, resp.Directed); serr != nil {
		return nil, nil, genObs{}, serr
	}
	for i, d := range resp.Dists {
		if d == -1 {
			resp.Dists[i] = Infinity
		}
	}
	rep.lastGen.Store(resp.Generation)
	return resp.Dists, rep, genObs{epoch: resp.Epoch, gen: resp.Generation, hash: resp.Ident}, nil
}

// fetchRows fetches and validates packed label rows from shard sid —
// forward runs for fwd, backward runs for bwd (directed clusters only) —
// returning the replica that served them (witness-rank resolution must
// go back to that exact process; see crossQueryHub).
func (r *Router) fetchRows(sid int, fwd, bwd []int) (rowsF, rowsB map[int][]uint64, rep *replica, o genObs, serr *ShardError) {
	resp, rep, serr := postJSON[shardQueryResponse](r, sid, "/shardquery", shardQueryRequest{Vertices: fwd, Backward: bwd})
	if serr != nil {
		return nil, nil, nil, genObs{}, serr
	}
	if resp.Generation == 0 {
		return nil, nil, nil, genObs{}, r.terminalErr(rep, errNotShardBackend)
	}
	// A shard serving a file over the wrong vertex space or the wrong
	// directedness (manifest drift) must be a loud error, not silently
	// wrong joins.
	if resp.Vertices != r.n {
		return nil, nil, nil, genObs{}, r.terminalErr(rep, fmt.Errorf("shard serves %d vertices but the manifest says %d — mismatched index files?", resp.Vertices, r.n))
	}
	if serr := r.checkDirected(rep, resp.Directed); serr != nil {
		return nil, nil, nil, genObs{}, serr
	}
	decode := func(vs []int, got map[string]string, side string) (map[int][]uint64, *ShardError) {
		rows := make(map[int][]uint64, len(vs))
		for _, v := range vs {
			enc, found := got[strconv.Itoa(v)]
			if !found {
				return nil, r.terminalErr(rep, fmt.Errorf("%s row for vertex %d missing from response", side, v))
			}
			run, err := decodePackedRun(enc, r.n)
			if err != nil {
				return nil, r.terminalErr(rep, err)
			}
			rows[v] = run
		}
		return rows, nil
	}
	if rowsF, serr = decode(fwd, resp.Rows, "forward"); serr != nil {
		return nil, nil, nil, genObs{}, serr
	}
	if rowsB, serr = decode(bwd, resp.BackRows, "backward"); serr != nil {
		return nil, nil, nil, genObs{}, serr
	}
	rep.lastGen.Store(resp.Generation)
	return rowsF, rowsB, rep, genObs{epoch: resp.Epoch, gen: resp.Generation, hash: resp.Ident}, nil
}

// resolveReply is one waiter's share of a batched resolution.
type resolveReply struct {
	orig int
	obs  genObs
	serr *ShardError
}

// resolveWaiter is one queued rank resolution: the rank and the channel
// its answer is delivered on (buffered — delivery never blocks the
// drainer).
type resolveWaiter struct {
	rank int
	ch   chan resolveReply
}

// resolveBatcher conflates concurrent witness-rank resolutions pinned to
// one replica: while one batched /shardquery call is in flight, newly
// arriving ranks queue up and ride the next call together. Under a
// thundering herd of cross-shard QueryHub misses this folds what used to
// be one round trip per query into one round trip per drain cycle.
type resolveBatcher struct {
	mu    sync.Mutex
	queue []resolveWaiter
	busy  bool // a drain loop is running
}

// resolveRankOn translates a rank-space hub to its original vertex id on
// one specific replica — the one whose snapshot produced the rank. No
// load balancing, no failover, and no hedging: a sibling replica is a
// different process whose identity can never match the row's, and a
// rebuilt index may permute ranks differently. The replica's snapshot
// identity is returned so the caller can verify the resolution used the
// same snapshot the rank came from.
//
// Resolutions for one replica are batched (see resolveBatcher): the
// calling goroutine queues its rank and either starts the drain loop or
// waits for the running one to carry it.
func (r *Router) resolveRankOn(rep *replica, rank int) (int, genObs, *ShardError) {
	r.resolveMu.Lock()
	if r.resolvers == nil {
		r.resolvers = make(map[*replica]*resolveBatcher)
	}
	rb := r.resolvers[rep]
	if rb == nil {
		rb = &resolveBatcher{}
		r.resolvers[rep] = rb
	}
	r.resolveMu.Unlock()
	w := resolveWaiter{rank: rank, ch: make(chan resolveReply, 1)}
	rb.mu.Lock()
	rb.queue = append(rb.queue, w)
	if !rb.busy {
		rb.busy = true
		rb.mu.Unlock()
		go r.drainResolves(rep, rb)
	} else {
		rb.mu.Unlock()
	}
	reply := <-w.ch
	return reply.orig, reply.obs, reply.serr
}

// drainResolves services one replica's resolution queue until it is
// empty: grab everything queued, resolve the deduplicated rank set in
// one pinned /shardquery call, deliver each waiter its answer, repeat.
func (r *Router) drainResolves(rep *replica, rb *resolveBatcher) {
	for {
		rb.mu.Lock()
		waiters := rb.queue
		rb.queue = nil
		if len(waiters) == 0 {
			rb.busy = false
			rb.mu.Unlock()
			return
		}
		rb.mu.Unlock()
		seen := make(map[int]struct{}, len(waiters))
		ranks := make([]int, 0, len(waiters))
		for _, w := range waiters {
			if _, dup := seen[w.rank]; !dup {
				seen[w.rank] = struct{}{}
				ranks = append(ranks, w.rank)
			}
		}
		sort.Ints(ranks)
		r.resolveBatches.Add(1)
		r.resolveRanks.Add(int64(len(waiters)))
		resp, serr := r.resolveOn(rep, ranks)
		for _, w := range waiters {
			if serr != nil {
				w.ch <- resolveReply{serr: serr}
				continue
			}
			orig, found := resp.Resolved[strconv.Itoa(w.rank)]
			if !found {
				w.ch <- resolveReply{serr: r.terminalErr(rep, fmt.Errorf("rank %d missing from resolution response", w.rank))}
				continue
			}
			w.ch <- resolveReply{orig: orig, obs: genObs{epoch: resp.Epoch, gen: resp.Generation, hash: resp.Ident}}
		}
	}
}

// resolveOn runs one pinned, batched rank resolution against rep.
func (r *Router) resolveOn(rep *replica, ranks []int) (*shardQueryResponse, *ShardError) {
	b, err := json.Marshal(shardQueryRequest{Resolve: ranks})
	if err != nil {
		return nil, &ShardError{Shard: rep.shard, Replica: rep.id, Addr: rep.addr, Err: err}
	}
	var resp shardQueryResponse
	serr, _ := r.tryReplica(rep, func(rep *replica) error {
		hresp, err := r.client.Post(rep.addr+"/shardquery", "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer hresp.Body.Close()
		return decodeReplicaResponse(hresp, &resp)
	})
	if serr != nil {
		return nil, serr
	}
	rep.lastGen.Store(resp.Generation)
	return &resp, nil
}

// crossQueryHub answers a cross-shard query: fetch the two rows
// concurrently, join locally and — when the caller needs the witness —
// resolve the winning rank to an original id. The witness rank is
// meaningful only in the permutation of the snapshot the rows came
// from, so the resolution is pinned to the replica that served u's row,
// and a resolution that lands on a different snapshot (that replica
// hot-swapped between the two requests — a rebuilt index may permute
// ranks differently) is retried from the row fetch; queries never block
// a reload, they just redo the work. A resolution whose pinned replica
// died retries the same way — the refetched row comes from a sibling,
// which then serves the resolution too. With needHub=false the
// resolution (and with it the retry loop) is skipped and the hub is
// hubUnknown.
func (r *Router) crossQueryHub(su, sv, u, v int, obs map[repRef]genObs, needHub bool) (float64, int, bool, error) {
	const attempts = 3
	var lastErr error
	for try := 0; try < attempts; try++ {
		var (
			wg    sync.WaitGroup
			mu    sync.Mutex
			fails []*ShardError
			rowU  []uint64
			rowV  []uint64
			repU  *replica
			repV  *replica
			obsU  genObs
			obsV  genObs
		)
		fetch := func(sid, vertex int, backward bool, dst *[]uint64, dstRep **replica, rowObs *genObs) {
			defer wg.Done()
			var fwd, bwd []int
			if backward {
				bwd = []int{vertex}
			} else {
				fwd = []int{vertex}
			}
			rowsF, rowsB, rep, o, err := r.fetchRows(sid, fwd, bwd)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				fails = append(fails, err)
				return
			}
			if backward {
				*dst = rowsB[vertex]
			} else {
				*dst = rowsF[vertex]
			}
			*dstRep = rep
			*rowObs = o
			obs[repRef{sid, rep.id}] = o
		}
		// Directed clusters join forward(u) with backward(v); undirected
		// ones use the (symmetric) forward runs for both sides.
		wg.Add(2)
		go fetch(su, u, false, &rowU, &repU, &obsU)
		go fetch(sv, v, r.directed, &rowV, &repV, &obsV)
		wg.Wait()
		if len(fails) > 0 {
			sort.Slice(fails, func(i, j int) bool { return fails[i].Shard < fails[j].Shard })
			return 0, 0, false, &ClusterError{Failed: fails}
		}
		r.crossJoins.Add(1)
		d, rank, ok := label.JoinPacked(rowU, rowV)
		if !ok {
			return Infinity, 0, false, nil
		}
		if !needHub {
			return d, hubUnknown, true, nil
		}
		hub, resolveObs, serr := r.resolveRankOn(repU, int(rank))
		if serr != nil {
			// The pinned replica died between row fetch and resolution;
			// refetch (a sibling will serve both) rather than fail.
			lastErr = serr
			continue
		}
		if resolveObs == obsU {
			return d, hub, true, nil
		}
		// The replica swapped snapshots between row fetch and resolution;
		// the rank may not mean the same vertex anymore. Retry cleanly.
		lastErr = fmt.Errorf("shard %d replica %d reloaded mid-query %d times in a row", su, repU.id, try+1)
	}
	return 0, 0, false, &ClusterError{Failed: []*ShardError{{
		Shard: su, Replica: -1, Addr: r.shards[su].addrList(), Err: lastErr,
	}}}
}

// --- health, stats, HTTP ---

// ReplicaHealth is one replica's state as seen by the router.
type ReplicaHealth struct {
	ID         int    `json:"id"`
	Addr       string `json:"addr"`
	OK         bool   `json:"ok"`
	Ejected    bool   `json:"ejected"`
	Generation uint64 `json:"generation,omitempty"`
	Error      string `json:"error,omitempty"`
}

// ShardHealth is one shard's state as seen by the router: the shard is
// OK while at least one of its replicas answers.
type ShardHealth struct {
	ID         int             `json:"id"`
	Addr       string          `json:"addr"` // first replica, for the unreplicated view
	OK         bool            `json:"ok"`
	Generation uint64          `json:"generation,omitempty"`
	Error      string          `json:"error,omitempty"`
	Replicas   []ReplicaHealth `json:"replicas"`
}

// Health probes every replica's /healthz concurrently and reports each
// one's state; the router serves (degraded) regardless of the outcome.
// Probes feed the same ejection/probation machinery as query traffic, so
// a recovered replica noticed here rejoins rotation immediately.
func (r *Router) Health() []ShardHealth {
	out := make([]ShardHealth, len(r.shards))
	var wg sync.WaitGroup
	for i, c := range r.shards {
		out[i] = ShardHealth{ID: c.id, Addr: c.reps[0].addr, Replicas: make([]ReplicaHealth, len(c.reps))}
		for j, rep := range c.reps {
			wg.Add(1)
			go func(i, j int, rep *replica) {
				defer wg.Done()
				out[i].Replicas[j] = r.probeReplica(rep)
			}(i, j, rep)
		}
	}
	wg.Wait()
	for i := range out {
		for _, rh := range out[i].Replicas {
			if rh.OK {
				out[i].OK = true
				if rh.Generation > out[i].Generation {
					out[i].Generation = rh.Generation
				}
			} else if out[i].Error == "" {
				out[i].Error = fmt.Sprintf("replica %d: %s", rh.ID, rh.Error)
			}
		}
		if out[i].OK {
			out[i].Error = ""
		}
	}
	return out
}

// probeReplica GETs one replica's /healthz, folding the result into the
// replica's health state and the router's identity tracking.
func (r *Router) probeReplica(rep *replica) ReplicaHealth {
	h := ReplicaHealth{ID: rep.id, Addr: rep.addr}
	var resp struct {
		OK         bool   `json:"ok"`
		Generation uint64 `json:"generation"`
		Epoch      uint64 `json:"epoch"`
		Ident      uint64 `json:"ident"`
	}
	serr, _ := r.tryReplica(rep, func(rep *replica) error {
		hresp, err := r.client.Get(rep.addr + "/healthz")
		if err != nil {
			return err
		}
		defer hresp.Body.Close()
		return decodeReplicaResponse(hresp, &resp)
	})
	if serr != nil {
		h.Error = serr.Err.Error()
		h.Ejected = rep.state.Load() == replicaEjected
		return h
	}
	h.OK = resp.OK
	h.Generation = resp.Generation
	rep.lastGen.Store(resp.Generation)
	r.noteGenerations(map[repRef]genObs{{rep.shard, rep.id}: {epoch: resp.Epoch, gen: resp.Generation, hash: resp.Ident}})
	return h
}

// RouterReplicaStats is the per-replica block of RouterShardStats.
type RouterReplicaStats struct {
	ID         int    `json:"id"`
	Addr       string `json:"addr"`
	Requests   int64  `json:"requests_total"`
	Errors     int64  `json:"errors_total"`
	Ejections  int64  `json:"ejections_total"`
	Ejected    bool   `json:"ejected"`
	InFlight   int64  `json:"in_flight"`
	LastError  string `json:"last_error,omitempty"`
	Generation uint64 `json:"generation"` // last observed; 0 = never seen
}

// RouterShardStats is the per-shard block of RouterStats. The counters
// aggregate the shard's replica group; Replicas breaks them down.
type RouterShardStats struct {
	ID         int                  `json:"id"`
	Addr       string               `json:"addr"` // first replica, for the unreplicated view
	Requests   int64                `json:"requests_total"`
	Errors     int64                `json:"errors_total"`
	Ejections  int64                `json:"ejections_total"`
	LastError  string               `json:"last_error,omitempty"`
	Generation uint64               `json:"generation"` // highest observed; 0 = never seen
	Replicas   []RouterReplicaStats `json:"replicas"`
}

// RouterStats is the router's /stats response.
type RouterStats struct {
	Vertices       int                `json:"vertices"`
	Directed       bool               `json:"directed"`
	Shards         []RouterShardStats `json:"shards"`
	Queries        int64              `json:"queries_total"`
	CrossJoins     int64              `json:"cross_joins_total"`
	Failovers      int64              `json:"failovers_total"`
	CacheResets    int64              `json:"cache_resets_total"`
	Hedges         int64              `json:"hedges_total"`
	Collapsed      int64              `json:"collapsed_total"`
	Shed           int64              `json:"shed_total"`
	ResolveBatches int64              `json:"resolve_batches_total"`
	ResolveRanks   int64              `json:"resolve_ranks_total"`
	Updates        int64              `json:"updates_total"`
	UptimeSeconds  float64            `json:"uptime_seconds"`
	Cache          *CacheStats        `json:"cache,omitempty"`
	Patch          *PatchStats        `json:"patch,omitempty"` // outstanding delta overlay, nil when none
}

// Stats reports the router's counters and its view of the cluster.
func (r *Router) Stats() RouterStats {
	out := RouterStats{
		Vertices:       r.n,
		Directed:       r.directed,
		Queries:        r.queries.Load(),
		CrossJoins:     r.crossJoins.Load(),
		Failovers:      r.failovers.Load(),
		CacheResets:    r.cacheResets.Load(),
		Hedges:         r.hedges.Load(),
		Collapsed:      r.collapsed.Load(),
		Shed:           r.shed.Load(),
		ResolveBatches: r.resolveBatches.Load(),
		ResolveRanks:   r.resolveRanks.Load(),
		Updates:        r.updates.Load(),
		UptimeSeconds:  r.clock.Now().Sub(r.start).Seconds(),
	}
	if p := r.state.Load().patch; p != nil {
		ps := p.ov.Stat()
		out.Patch = &ps
	}
	for _, c := range r.shards {
		ss := RouterShardStats{ID: c.id, Addr: c.reps[0].addr}
		for _, rep := range c.reps {
			rep.mu.Lock()
			lastErr := rep.lastErr
			rep.mu.Unlock()
			rs := RouterReplicaStats{
				ID:         rep.id,
				Addr:       rep.addr,
				Requests:   rep.requests.Load(),
				Errors:     rep.errors.Load(),
				Ejections:  rep.ejections.Load(),
				Ejected:    rep.state.Load() == replicaEjected,
				InFlight:   rep.inflight.Load(),
				LastError:  lastErr,
				Generation: rep.lastGen.Load(),
			}
			ss.Requests += rs.Requests
			ss.Errors += rs.Errors
			ss.Ejections += rs.Ejections
			if ss.LastError == "" {
				ss.LastError = rs.LastError
			}
			if rs.Generation > ss.Generation {
				ss.Generation = rs.Generation
			}
			ss.Replicas = append(ss.Replicas, rs)
		}
		out.Shards = append(out.Shards, ss)
	}
	if c := r.state.Load().cache; c != nil {
		cs := c.Stats()
		out.Cache = &cs
	}
	return out
}

// Handler returns the router's HTTP API — the same public surface as a
// single-process Server (GET /dist, POST /batch, GET /paths, GET /knn,
// POST /matrix, GET /stats, GET /healthz, GET /metrics) plus POST
// /reload?shard=I[&replica=J][&path=P], which proxies a hot reload to
// one shard replica. Errors are JSON bodies; shard failures are 502s
// listing the failed shards; shed requests are 429s with a retry-after
// body (see shape).
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/dist", r.metrics.wrap("/dist", r.shape(r.handleDist)))
	mux.HandleFunc("/batch", r.metrics.wrap("/batch", r.shape(r.handleBatch)))
	mux.HandleFunc("/paths", r.metrics.wrap("/paths", r.shape(r.handlePaths)))
	mux.HandleFunc("/knn", r.metrics.wrap("/knn", r.shape(r.handleKNN)))
	mux.HandleFunc("/matrix", r.metrics.wrap("/matrix", r.shape(r.handleMatrix)))
	mux.HandleFunc("/stats", r.metrics.wrap("/stats", r.handleStats))
	mux.HandleFunc("/healthz", r.metrics.wrap("/healthz", r.handleHealthz))
	mux.HandleFunc("/reload", r.metrics.wrap("/reload", r.handleReload))
	mux.HandleFunc("/update", r.metrics.wrap("/update", r.handleUpdate))
	mux.HandleFunc("/metrics", r.handleMetrics)
	return mux
}

// shape is the admission-control middleware on the query endpoints
// (/dist, /batch, /paths, /knn, and /matrix only — health, stats, and
// operator endpoints must keep answering under overload, that's what
// they are for). Two gates,
// cheapest first: a global concurrency limit, then the per-client token
// bucket. Both shed with a 429 whose JSON body carries the machine-
// usable reason and retry-after (shedBody); shed requests never touch
// the routing layer.
func (r *Router) shape(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if r.maxInFlight > 0 {
			if n := r.shapeInFlight.Add(1); n > r.maxInFlight {
				r.shapeInFlight.Add(-1)
				r.shed.Add(1)
				writeShed(w, shedBody{
					Error:             fmt.Sprintf("router over capacity (%d requests in flight)", r.maxInFlight),
					Reason:            shedReasonCapacity,
					RetryAfterSeconds: clampRetryAfter(shedCapacityRetry),
				})
				return
			}
			defer r.shapeInFlight.Add(-1)
		}
		if r.quota != nil {
			key := quotaKey(req.Header.Get(QuotaKeyHeader), req.RemoteAddr)
			if ok, retry := r.quota.take(key); !ok {
				r.shed.Add(1)
				writeShed(w, shedBody{
					Error:             "client over quota",
					Reason:            shedReasonQuota,
					RetryAfterSeconds: clampRetryAfter(retry),
				})
				return
			}
		}
		h(w, req)
	}
}

// routeError maps a routing failure to its HTTP response.
func routeError(w http.ResponseWriter, err error) {
	var vr *VertexRangeError
	if errors.As(err, &vr) {
		// Same body, byte for byte, as the shard tier's /dist range check
		// (see Server.handleDist): clients must see one error schema no
		// matter which tier rejected them.
		httpError(w, http.StatusBadRequest, fmt.Sprintf("vertex ids must be in [0,%d)", vr.N))
		return
	}
	var ce *ClusterError
	if errors.As(err, &ce) {
		failed := make([]map[string]any, len(ce.Failed))
		for i, f := range ce.Failed {
			failed[i] = map[string]any{"shard": f.Shard, "replica": f.Replica, "addr": f.Addr, "error": f.Err.Error()}
		}
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":         ce.Error(),
			"failed_shards": failed,
		})
		return
	}
	httpError(w, http.StatusBadGateway, err.Error())
}

func (r *Router) handleDist(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /dist?u=&v=")
		return
	}
	u, err1 := strconv.Atoi(req.URL.Query().Get("u"))
	v, err2 := strconv.Atoi(req.URL.Query().Get("v"))
	if err1 != nil || err2 != nil {
		httpError(w, http.StatusBadRequest, "u and v must be integer vertex ids")
		return
	}
	d, hub, ok, err := r.QueryHub(u, v)
	if err != nil {
		routeError(w, err)
		return
	}
	resp := map[string]any{"u": u, "v": v, "reachable": ok}
	if ok {
		resp["dist"] = d
		resp["hub"] = hub
	}
	writeJSON(w, http.StatusOK, resp)
}

func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON array of [u,v] pairs")
		return
	}
	pairs, ok := decodeBatchBody(w, req, r.n)
	if !ok {
		return
	}
	dists, err := r.Batch(pairs)
	if err != nil {
		routeError(w, err)
		return
	}
	for i, d := range dists {
		if d == Infinity {
			dists[i] = -1 // JSON has no +Inf
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"dists": dists})
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /stats")
		return
	}
	writeJSON(w, http.StatusOK, r.Stats())
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /healthz")
		return
	}
	shards := r.Health()
	ok := true
	degraded := false
	for _, h := range shards {
		ok = ok && h.OK
		for _, rh := range h.Replicas {
			degraded = degraded || !rh.OK
		}
	}
	code := http.StatusOK
	if !ok {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"ok": ok, "degraded": degraded, "shards": shards})
}

// handleReload proxies POST /reload?shard=I[&replica=J][&path=P] to one
// shard replica (replica 0 when J is omitted), so an operator can
// hot-swap any serving process through the router. The response is the
// replica's own /reload response.
func (r *Router) handleReload(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST /reload?shard=I&replica=J&path=P")
		return
	}
	sid, err := strconv.Atoi(req.URL.Query().Get("shard"))
	if err != nil || sid < 0 || sid >= len(r.shards) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("shard must name a shard in [0,%d)", len(r.shards)))
		return
	}
	c := r.shards[sid]
	rid := 0
	if rq := req.URL.Query().Get("replica"); rq != "" {
		rid, err = strconv.Atoi(rq)
		if err != nil || rid < 0 || rid >= len(c.reps) {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("replica must name a replica of shard %d in [0,%d)", sid, len(c.reps)))
			return
		}
	}
	path := "/reload"
	if p := req.URL.Query().Get("path"); p != "" {
		path += "?path=" + url.QueryEscape(p)
	}
	rep := c.reps[rid]
	rep.requests.Add(1)
	resp, err := r.client.Post(rep.addr+path, "application/json", strings.NewReader("{}"))
	if err != nil {
		// Transport failure: the replica really is unreachable.
		rep.fail(err, r.ejectAfter, r.probation, r.clock.Now())
		routeError(w, &ClusterError{Failed: []*ShardError{{Shard: sid, Replica: rid, Addr: rep.addr, Err: err}}})
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		// The replica spoke; an operator error (bad path → 400) is relayed
		// verbatim, not dressed up as a shard failure — it must not trip
		// error counters or health dashboards.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
		return
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		routeError(w, &ClusterError{Failed: []*ShardError{r.terminalErr(rep, fmt.Errorf("undecodable reload response: %w", err))}})
		return
	}
	// Successful round trip: the replica is healthy again as far as the
	// router can tell (mirrors withReplica's success path).
	rep.succeed()
	// A successful reload bumped the replica's generation; fold it in now
	// so the next query doesn't serve one answer from the retired cache.
	// The ident says whether the reloaded content actually changed —
	// reloading the same file keeps the cache (see noteGenerations).
	g, gok := out["generation"].(float64)
	e, eok := out["epoch"].(float64)
	id, _ := out["ident"].(float64)
	if gok && eok {
		rep.lastGen.Store(uint64(g))
		r.noteGenerations(map[repRef]genObs{{sid, rid}: {epoch: uint64(e), gen: uint64(g), hash: uint64(id)}})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics exposes the router in Prometheus text format.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /metrics")
		return
	}
	st := r.Stats()
	w.Header().Set("Content-Type", promContentType)
	r.metrics.writeTo(w, "chl_router")
	promGauge(w, "chl_router_vertices", "Vertex-id space served by the cluster.", float64(st.Vertices))
	promGauge(w, "chl_router_directed", "1 when the cluster serves a directed index.", boolGauge(st.Directed))
	promGauge(w, "chl_router_shard_count", "Shards behind this router.", float64(len(st.Shards)))
	promGauge(w, "chl_router_uptime_seconds", "Seconds since the router started.", st.UptimeSeconds)
	promCounter(w, "chl_router_queries_total", "Queries routed.", st.Queries)
	promCounter(w, "chl_router_cross_joins_total", "Cross-shard hub joins performed at the router.", st.CrossJoins)
	promCounter(w, "chl_router_failovers_total", "Requests retried on another replica after a replica failure.", st.Failovers)
	promCounter(w, "chl_router_cache_resets_total", "Answer-cache resets after observed shard content changes.", st.CacheResets)
	promCounter(w, "chl_router_hedges_total", "Hedge attempts launched at a second replica after the hedge delay.", st.Hedges)
	promCounter(w, "chl_router_collapsed_total", "Queries collapsed into an identical in-flight query (singleflight).", st.Collapsed)
	promCounter(w, "chl_router_shed_total", "HTTP requests shed with a 429 (capacity or client quota).", st.Shed)
	promCounter(w, "chl_router_resolve_batches_total", "Batched witness-rank resolution round trips.", st.ResolveBatches)
	promCounter(w, "chl_router_resolve_ranks_total", "Witness ranks resolved through the batcher.", st.ResolveRanks)
	if st.Cache != nil {
		promGauge(w, "chl_router_cache_entries", "Answers currently cached at the router.", float64(st.Cache.Entries))
		promGauge(w, "chl_router_cache_capacity", "Router answer cache capacity.", float64(st.Cache.Capacity))
		promCounter(w, "chl_router_cache_hits_total", "Router answer cache hits.", st.Cache.Hits)
		promCounter(w, "chl_router_cache_misses_total", "Router answer cache misses.", st.Cache.Misses)
	}
	fmt.Fprintf(w, "# HELP chl_router_shard_requests_total Requests sent to each shard (all replicas).\n# TYPE chl_router_shard_requests_total counter\n")
	for _, sh := range st.Shards {
		fmt.Fprintf(w, "chl_router_shard_requests_total{shard=\"%d\"} %d\n", sh.ID, sh.Requests)
	}
	fmt.Fprintf(w, "# HELP chl_router_shard_errors_total Failed requests per shard (all replicas).\n# TYPE chl_router_shard_errors_total counter\n")
	for _, sh := range st.Shards {
		fmt.Fprintf(w, "chl_router_shard_errors_total{shard=\"%d\"} %d\n", sh.ID, sh.Errors)
	}
	fmt.Fprintf(w, "# HELP chl_router_shard_generation Highest observed snapshot generation per shard (0 = never seen).\n# TYPE chl_router_shard_generation gauge\n")
	for _, sh := range st.Shards {
		fmt.Fprintf(w, "chl_router_shard_generation{shard=\"%d\"} %d\n", sh.ID, sh.Generation)
	}
	promReplicaCounter(w, st, "chl_router_replica_requests_total", "Requests sent to each shard replica.",
		func(rs RouterReplicaStats) int64 { return rs.Requests })
	promReplicaCounter(w, st, "chl_router_replica_errors_total", "Failed requests per shard replica.",
		func(rs RouterReplicaStats) int64 { return rs.Errors })
	promReplicaCounter(w, st, "chl_router_replica_ejections_total", "Times each replica was ejected after consecutive failures.",
		func(rs RouterReplicaStats) int64 { return rs.Ejections })
	fmt.Fprintf(w, "# HELP chl_router_replica_ejected 1 while the replica is ejected from rotation.\n# TYPE chl_router_replica_ejected gauge\n")
	for _, sh := range st.Shards {
		for _, rs := range sh.Replicas {
			fmt.Fprintf(w, "chl_router_replica_ejected{shard=\"%d\",replica=\"%d\"} %g\n", sh.ID, rs.ID, boolGauge(rs.Ejected))
		}
	}
	fmt.Fprintf(w, "# HELP chl_router_replica_generation Last observed snapshot generation per replica (0 = never seen).\n# TYPE chl_router_replica_generation gauge\n")
	for _, sh := range st.Shards {
		for _, rs := range sh.Replicas {
			fmt.Fprintf(w, "chl_router_replica_generation{shard=\"%d\",replica=\"%d\"} %d\n", sh.ID, rs.ID, rs.Generation)
		}
	}
}

// promReplicaCounter writes one {shard,replica}-labelled counter family
// from the per-replica stats blocks.
func promReplicaCounter(w io.Writer, st RouterStats, name, help string, get func(RouterReplicaStats) int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for _, sh := range st.Shards {
		for _, rs := range sh.Replicas {
			fmt.Fprintf(w, "%s{shard=\"%d\",replica=\"%d\"} %d\n", name, sh.ID, rs.ID, get(rs))
		}
	}
}

package chl

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/label"
	"repro/internal/shard"
)

// Router fronts a cluster of shard servers and answers the same query API
// a single-process Server does, over an index too large for one process.
// Routing is QDOL-style (internal/query, §6 of the paper): every query is
// sent point-to-point to the shards owning its endpoints, never broadcast.
//
//   - Both endpoints on one shard: the router forwards the query whole;
//     the shard answers it alone from its local label runs (and its own
//     per-snapshot answer cache), exactly QDOL's owner-node case.
//   - Endpoints on two shards: where QDOL would have pre-replicated the
//     partition pair onto a common node, the router instead fetches the
//     two packed label rows (POST /shardquery) and hub-joins them locally
//     with the same scratch kernels BatchEngine serves with — one join,
//     two small messages, Θ(1/N) memory per shard instead of QDOL's
//     Θ(1/√q).
//
// Answers are bit-identical to a single-process FlatIndex over the
// unsharded file: the fetched rows are byte-identical slices of the
// shards' entry arrays and the join kernels are shared (label.JoinPacked
// / JoinPackedWith).
//
// The router keeps its own sharded LRU answer cache (the PR-2 Cache).
// Every shard response carries the shard's snapshot identity — its
// generation plus a per-process epoch, so restarts are as visible as
// reloads; when any shard's identity advances, the router retires the
// whole cache — the same "a cache never outlives its index" rule the
// single-process tier enforces per Snapshot, lifted to the cluster.
//
// Failures degrade per shard: a query touching only healthy shards is
// unaffected, and one touching a failed shard gets a 502 whose JSON body
// names each failed shard (see ClusterError). Use Health for the
// per-shard view the /healthz endpoint serves.
type Router struct {
	n      int
	part   *shard.Partition
	shards []*shardClient
	client *http.Client

	cacheSize int
	state     atomic.Pointer[routerState]

	metrics     *httpMetrics
	queries     atomic.Int64
	crossJoins  atomic.Int64
	cacheResets atomic.Int64
	start       time.Time

	scratch sync.Pool // *label.QueryScratch sized n, for cross-shard joins
}

// routerState pairs the answer cache with the per-shard snapshot
// identities it was built against. Identity is the (epoch, generation)
// pair each shard stamps its responses with: generations restart at 1
// in every process, so the random per-process epoch makes a shard
// restart (possibly over different content) as visible as a reload.
// Identities are totally ordered — generations within one process, and
// epochs across processes (a shard's epoch leads with its start time in
// milliseconds; see Server) — which lets noteGenerations ignore any
// stale observation from a request that raced a reload or restart
// instead of mistaking it for another change. (0,0) means "not yet
// observed". The state is swapped atomically whenever a shard's
// identity advances, so answers computed against a retired snapshot
// can never enter the live cache.
type routerState struct {
	epochs []uint64
	gens   []uint64
	cache  *Cache
}

// genObs is one observed shard snapshot identity.
type genObs struct {
	epoch, gen uint64
}

// errNotShardBackend rejects a 200 response without a snapshot identity:
// the backend is a plain server, not a shard (started without
// -manifest/-shard). Its answers may be right today, but its reloads
// would be invisible to the router's cache retirement — loud refusal
// beats silent staleness.
var errNotShardBackend = errors.New("backend did not stamp a snapshot identity — is it a shard server (started with -manifest and -shard)?")

// shardClient tracks one shard server.
type shardClient struct {
	id       int
	addr     string // base URL, no trailing slash
	requests atomic.Int64
	errors   atomic.Int64
	lastGen  atomic.Uint64 // last generation the shard reported, for /stats
	mu       sync.Mutex
	lastErr  string

	// Clock-step self-heal (see noteGenerations): an epoch older than
	// the adopted one is normally a delayed response from a dead
	// process, but a host clock stepped backwards across a restart makes
	// the *live* process look old. staleSeen counts consecutive
	// responses bearing the same older epoch; past a small threshold it
	// must be the live process and is adopted.
	staleEpoch atomic.Uint64
	staleSeen  atomic.Int64
}

// staleAdoptThreshold is how many consecutive responses under the same
// older epoch convince the router it is the live process (a backwards
// clock step at restart) rather than stragglers from a dead one.
const staleAdoptThreshold = 3

func (c *shardClient) fail(err error) *ShardError {
	c.errors.Add(1)
	c.mu.Lock()
	c.lastErr = err.Error()
	c.mu.Unlock()
	return &ShardError{Shard: c.id, Addr: c.addr, Err: err}
}

// ShardError reports a failed request to one shard.
type ShardError struct {
	Shard int
	Addr  string
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// ClusterError aggregates the shard failures of one routed request — the
// partial-failure error body: shards not listed answered fine, but the
// request needed the listed ones.
type ClusterError struct {
	Failed []*ShardError
}

func (e *ClusterError) Error() string {
	parts := make([]string, len(e.Failed))
	for i, f := range e.Failed {
		parts[i] = f.Error()
	}
	return "cluster degraded: " + strings.Join(parts, "; ")
}

// VertexRangeError reports a query for an id outside the cluster's vertex
// space; the HTTP layer turns it into a 400.
type VertexRangeError struct {
	ID, N int
}

func (e *VertexRangeError) Error() string {
	return fmt.Sprintf("vertex id %d out of range [0,%d)", e.ID, e.N)
}

// RouterConfig configures NewRouter.
type RouterConfig struct {
	// Manifest describes the cluster (vertex count and ring); usually
	// shard.ReadManifest of the splitter's cluster.json.
	Manifest *shard.Manifest
	// Addrs are the shard servers' base URLs, indexed by shard id.
	Addrs []string
	// CacheSize bounds the router's answer cache; <= 0 disables it.
	CacheSize int
	// Timeout bounds each shard request (default 5s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests, custom transports);
	// Timeout is ignored when set.
	Client *http.Client
}

// NewRouter validates the cluster description and returns a router.
// Shards are not contacted — a router starts (and serves what it can)
// even while part of the cluster is down.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Manifest == nil {
		return nil, fmt.Errorf("chl: router needs a manifest")
	}
	if err := cfg.Manifest.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Addrs) != cfg.Manifest.Shards {
		return nil, fmt.Errorf("chl: manifest has %d shards but %d addresses given", cfg.Manifest.Shards, len(cfg.Addrs))
	}
	part, err := cfg.Manifest.Partition()
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 5 * time.Second
		}
		client = &http.Client{Timeout: timeout}
	}
	r := &Router{
		n:         cfg.Manifest.Vertices,
		part:      part,
		client:    client,
		cacheSize: cfg.CacheSize,
		metrics:   newHTTPMetrics("/dist", "/batch", "/stats", "/reload", "/healthz"),
		start:     time.Now(),
	}
	for i, a := range cfg.Addrs {
		r.shards = append(r.shards, &shardClient{id: i, addr: strings.TrimRight(a, "/")})
	}
	r.state.Store(&routerState{
		epochs: make([]uint64, len(r.shards)),
		gens:   make([]uint64, len(r.shards)),
		cache:  NewCache(cfg.CacheSize),
	})
	r.scratch.New = func() any { return label.NewQueryScratch(r.n) }
	return r, nil
}

// NumVertices returns the vertex-id space the cluster serves.
func (r *Router) NumVertices() int { return r.n }

// hubUnknown marks a cached answer whose witness hub was never computed
// (batch paths only need distances). QueryHub treats such hits as misses.
const hubUnknown = -1

// Query answers one point-to-point query through the cluster. Unlike
// QueryHub it never pays the witness-resolution round trip.
func (r *Router) Query(u, v int) (float64, error) {
	d, _, _, err := r.queryHub(u, v, false)
	return d, err
}

// QueryHub answers one query with its witness hub (an original vertex
// id), exactly as Server.QueryHub does on the unsharded index.
func (r *Router) QueryHub(u, v int) (dist float64, hub int, ok bool, err error) {
	return r.queryHub(u, v, true)
}

// queryHub is the shared single-query path. needHub=false (Query) skips
// the witness-rank resolution round trip on cross-shard misses — the
// hub would be discarded anyway, and Batch already caches hub-less
// answers the same way.
func (r *Router) queryHub(u, v int, needHub bool) (dist float64, hub int, ok bool, err error) {
	if u < 0 || u >= r.n {
		return 0, 0, false, &VertexRangeError{ID: u, N: r.n}
	}
	if v < 0 || v >= r.n {
		return 0, 0, false, &VertexRangeError{ID: v, N: r.n}
	}
	st := r.state.Load()
	if st.cache != nil {
		if a, hit := st.cache.Get(u, v); hit && (!needHub || a.Hub != hubUnknown || !a.Reachable) {
			r.queries.Add(1)
			return a.Dist, a.Hub, a.Reachable, nil
		}
	}
	r.queries.Add(1)
	su, sv := r.part.Owner(u), r.part.Owner(v)
	obs := map[int]genObs{}
	if su == sv {
		dist, hub, ok, err = r.fetchDist(su, u, v, obs)
	} else {
		dist, hub, ok, err = r.crossQueryHub(su, sv, u, v, obs, needHub)
	}
	if err != nil {
		return 0, 0, false, err
	}
	r.cachePut(st, obs, u, v, Answer{Dist: dist, Hub: hub, Reachable: ok})
	return dist, hub, ok, nil
}

// Batch answers a batch of queries through the cluster, returning the
// distances in order (Infinity for unreachable pairs). Same-shard pairs
// are forwarded whole, one sub-batch per shard; cross-shard pairs are
// answered by fetching each involved vertex's label row once per shard
// and hub-joining at the router. All shard traffic for a batch runs
// concurrently.
func (r *Router) Batch(pairs []QueryPair) ([]float64, error) {
	dists := make([]float64, len(pairs))
	st := r.state.Load()

	// Cache pass; pending collects the misses.
	pending := make([]int, 0, len(pairs))
	for i, p := range pairs {
		if p.U < 0 || p.U >= r.n {
			return nil, &VertexRangeError{ID: p.U, N: r.n}
		}
		if p.V < 0 || p.V >= r.n {
			return nil, &VertexRangeError{ID: p.V, N: r.n}
		}
		if st.cache != nil {
			if a, hit := st.cache.Get(p.U, p.V); hit {
				dists[i] = a.Dist
				continue
			}
		}
		pending = append(pending, i)
	}
	r.queries.Add(int64(len(pairs)))
	if len(pending) == 0 {
		return dists, nil
	}

	// Group the misses: same-shard sub-batches and cross-shard row needs.
	direct := map[int][]int{} // shard id -> indexes into pairs
	cross := make([]int, 0)
	needed := map[int]map[int]struct{}{} // shard id -> vertex set
	for _, i := range pending {
		p := pairs[i]
		su, sv := r.part.Owner(p.U), r.part.Owner(p.V)
		if su == sv {
			direct[su] = append(direct[su], i)
			continue
		}
		cross = append(cross, i)
		for _, need := range []struct{ s, v int }{{su, p.U}, {sv, p.V}} {
			if needed[need.s] == nil {
				needed[need.s] = map[int]struct{}{}
			}
			needed[need.s][need.v] = struct{}{}
		}
	}

	// Fan out: one /batch per direct shard, one /shardquery per row shard.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		fails    []*ShardError
		rows     = map[int][]uint64{} // vertex -> decoded packed run
		obs      = map[int]genObs{}   // shard -> observed snapshot identity
		conflict bool                 // one shard answered under two identities
	)
	observe := func(sid int, o genObs, err *ShardError) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			fails = append(fails, err)
			return
		}
		// A batch may hit the same shard twice (direct sub-batch + row
		// fetch). If a reload lands between the two responses, part of
		// this batch was computed on the retired snapshot, and no single
		// identity can vouch for all of its answers — skip caching.
		if prev, seen := obs[sid]; seen && prev != o {
			conflict = true
		}
		obs[sid] = o
	}
	for sid, idxs := range direct {
		wg.Add(1)
		go func(sid int, idxs []int) {
			defer wg.Done()
			sub := make([]QueryPair, len(idxs))
			for k, i := range idxs {
				sub[k] = pairs[i]
			}
			ds, o, err := r.fetchBatch(sid, sub)
			if err != nil {
				observe(sid, genObs{}, err)
				return
			}
			for k, i := range idxs {
				dists[i] = ds[k]
			}
			observe(sid, o, nil)
		}(sid, idxs)
	}
	for sid, verts := range needed {
		wg.Add(1)
		go func(sid int, verts map[int]struct{}) {
			defer wg.Done()
			vs := make([]int, 0, len(verts))
			for v := range verts {
				vs = append(vs, v)
			}
			sort.Ints(vs)
			got, o, err := r.fetchRows(sid, vs)
			if err != nil {
				observe(sid, genObs{}, err)
				return
			}
			mu.Lock()
			for v, run := range got {
				rows[v] = run
			}
			mu.Unlock()
			observe(sid, o, nil)
		}(sid, verts)
	}
	wg.Wait()
	if len(fails) > 0 {
		sort.Slice(fails, func(i, j int) bool { return fails[i].Shard < fails[j].Shard })
		return nil, &ClusterError{Failed: fails}
	}

	// Hub-join the cross-shard pairs locally, with the same scratch
	// kernel and size policy the single-process BatchEngine serves with.
	useScratch := r.n <= hashServeMaxVertices
	var s *label.QueryScratch
	if useScratch && len(cross) > 0 {
		s = r.scratch.Get().(*label.QueryScratch)
		defer r.scratch.Put(s)
	}
	for _, i := range cross {
		p := pairs[i]
		var (
			d  float64
			ok bool
		)
		if useScratch {
			d, _, ok = label.JoinPackedWith(s, rows[p.U], rows[p.V])
		} else {
			d, _, ok = label.JoinPacked(rows[p.U], rows[p.V])
		}
		if !ok {
			d = Infinity
		}
		dists[i] = d
	}
	r.crossJoins.Add(int64(len(cross)))

	// Populate the cache (hub unknown on this path — /batch never needs
	// witnesses; QueryHub will recompute and upgrade the entry). A batch
	// that observed one shard under two identities raced a reload: its
	// answers are correct for the snapshots that computed them but not
	// attributable to a single identity, so they are not cached. The
	// identity validation runs once for the whole batch, then the
	// answers are inserted directly.
	if !conflict && r.cacheValid(st, obs) {
		for _, i := range pending {
			p := pairs[i]
			st.cache.Put(p.U, p.V, Answer{Dist: dists[i], Hub: hubUnknown, Reachable: dists[i] != Infinity})
		}
	} else if conflict {
		r.noteGenerations(obs)
	}
	return dists, nil
}

// cacheValid folds the observations into the router state and reports
// whether answers computed under them may enter st's cache: the cache
// instance the request started with must still be the live one, and
// every shard identity observed while computing must match the live
// state — an answer that raced a shard reload is simply not cached.
// First observations (which adopt identities into the state but keep
// the cache instance) therefore do not lose their answers. The check is
// per request, not per answer: callers validate once and Put in bulk.
func (r *Router) cacheValid(st *routerState, obs map[int]genObs) bool {
	r.noteGenerations(obs)
	if st.cache == nil {
		return false
	}
	cur := r.state.Load()
	if cur.cache != st.cache {
		return false // cache retired by an observed reload/restart
	}
	for sid, o := range obs {
		if cur.epochs[sid] != o.epoch || cur.gens[sid] != o.gen {
			return false
		}
	}
	return true
}

// cachePut is cacheValid plus one insertion — the single-query path.
func (r *Router) cachePut(st *routerState, obs map[int]genObs, u, v int, a Answer) {
	if r.cacheValid(st, obs) {
		st.cache.Put(u, v, a)
	}
}

// noteGenerations folds freshly observed shard snapshot identities into
// the router state. First observations are adopted, keeping the current
// cache; an advance — a reload (same epoch, higher generation) or a
// restart (new epoch) — swaps in a fresh state with an empty cache, the
// cluster-level equivalent of the per-snapshot caches below. A stale
// observation (same epoch, generation at or below the known one — a
// slow response that started before a reload) is ignored rather than
// treated as another change, so a reload under concurrent traffic
// retires the cache exactly once.
func (r *Router) noteGenerations(obs map[int]genObs) {
	// Clock-step pre-pass, once per call (not per CAS retry): count
	// consecutive sightings of the same older epoch; past the threshold
	// it is the live process answering under a stepped-back clock, and
	// must be adopted or the shard would be ignored forever.
	adoptStale := map[int]bool{}
	if pre := r.state.Load(); pre != nil {
		for sid, o := range obs {
			E := pre.epochs[sid]
			if o.gen == 0 || E == 0 || o.epoch >= E {
				continue
			}
			c := r.shards[sid]
			if c.staleEpoch.Swap(o.epoch) == o.epoch {
				if c.staleSeen.Add(1) >= staleAdoptThreshold {
					adoptStale[sid] = true
					c.staleSeen.Store(0)
				}
			} else {
				c.staleSeen.Store(1)
			}
		}
	}
	for {
		st := r.state.Load()
		changed := false
		adopted := false
		apply := func(sid int, o genObs) bool {
			E, G := st.epochs[sid], st.gens[sid]
			switch {
			case o.gen == 0: // no observation
				return false
			case E == 0 && G == 0: // first sighting of this shard
				return true
			case o.epoch == E: // same process: generations are ordered
				return o.gen > G
			default:
				// Epochs lead with process start time: a larger one is a
				// restart, a smaller one a delayed response from a dead
				// process, which must not regress the state — unless it
				// keeps answering (clock step; see adoptStale).
				return o.epoch > E || adoptStale[sid]
			}
		}
		for sid, o := range obs {
			if !apply(sid, o) {
				continue
			}
			if st.epochs[sid] == 0 && st.gens[sid] == 0 {
				adopted = true
			} else {
				changed = true
			}
		}
		if !changed && !adopted {
			return
		}
		next := &routerState{
			epochs: append([]uint64(nil), st.epochs...),
			gens:   append([]uint64(nil), st.gens...),
			cache:  st.cache,
		}
		for sid, o := range obs {
			if apply(sid, o) {
				next.epochs[sid], next.gens[sid] = o.epoch, o.gen
			}
		}
		if changed {
			next.cache = NewCache(r.cacheSize)
		}
		if r.state.CompareAndSwap(st, next) {
			if changed {
				r.cacheResets.Add(1)
			}
			return
		}
	}
}

// --- shard protocol clients ---

// getJSON GETs path on a shard and decodes the response body into out.
// Non-2xx responses surface the shard's JSON error string.
func (r *Router) getJSON(c *shardClient, path string, out any) *ShardError {
	c.requests.Add(1)
	resp, err := r.client.Get(c.addr + path)
	if err != nil {
		return c.fail(err)
	}
	defer resp.Body.Close()
	return r.decodeShardResponse(c, resp, out)
}

// postJSON POSTs a JSON body to path on a shard.
func (r *Router) postJSON(c *shardClient, path string, body, out any) *ShardError {
	c.requests.Add(1)
	b, err := json.Marshal(body)
	if err != nil {
		return c.fail(err)
	}
	resp, err := r.client.Post(c.addr+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return c.fail(err)
	}
	defer resp.Body.Close()
	return r.decodeShardResponse(c, resp, out)
}

func (r *Router) decodeShardResponse(c *shardClient, resp *http.Response, out any) *ShardError {
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &eb) == nil && eb.Error != "" {
			return c.fail(fmt.Errorf("status %d: %s", resp.StatusCode, eb.Error))
		}
		return c.fail(fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg)))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return c.fail(fmt.Errorf("undecodable response: %w", err))
	}
	c.mu.Lock()
	c.lastErr = ""
	c.mu.Unlock()
	return nil
}

// fetchDist forwards a same-shard query whole; the shard answers from its
// local runs and cache, witness hub included.
func (r *Router) fetchDist(sid, u, v int, obs map[int]genObs) (float64, int, bool, error) {
	var resp struct {
		Reachable  bool    `json:"reachable"`
		Dist       float64 `json:"dist"`
		Hub        int     `json:"hub"`
		Generation uint64  `json:"generation"`
		Epoch      uint64  `json:"epoch"`
	}
	c := r.shards[sid]
	if err := r.getJSON(c, fmt.Sprintf("/dist?u=%d&v=%d", u, v), &resp); err != nil {
		return 0, 0, false, &ClusterError{Failed: []*ShardError{err}}
	}
	if resp.Generation == 0 {
		return 0, 0, false, &ClusterError{Failed: []*ShardError{c.fail(errNotShardBackend)}}
	}
	c.lastGen.Store(resp.Generation)
	obs[sid] = genObs{epoch: resp.Epoch, gen: resp.Generation}
	if !resp.Reachable {
		return Infinity, 0, false, nil
	}
	return resp.Dist, resp.Hub, true, nil
}

// fetchBatch forwards a same-shard sub-batch, translating the wire's -1
// back to Infinity.
func (r *Router) fetchBatch(sid int, pairs []QueryPair) ([]float64, genObs, *ShardError) {
	body := make([][2]int, len(pairs))
	for i, p := range pairs {
		body[i] = [2]int{p.U, p.V}
	}
	var resp struct {
		Dists      []float64 `json:"dists"`
		Generation uint64    `json:"generation"`
		Epoch      uint64    `json:"epoch"`
	}
	c := r.shards[sid]
	if err := r.postJSON(c, "/batch", body, &resp); err != nil {
		return nil, genObs{}, err
	}
	if len(resp.Dists) != len(pairs) {
		return nil, genObs{}, c.fail(fmt.Errorf("batch of %d pairs answered with %d distances", len(pairs), len(resp.Dists)))
	}
	if resp.Generation == 0 {
		return nil, genObs{}, c.fail(errNotShardBackend)
	}
	for i, d := range resp.Dists {
		if d == -1 {
			resp.Dists[i] = Infinity
		}
	}
	c.lastGen.Store(resp.Generation)
	return resp.Dists, genObs{epoch: resp.Epoch, gen: resp.Generation}, nil
}

// fetchRows fetches and validates the packed label rows of vs from shard
// sid.
func (r *Router) fetchRows(sid int, vs []int) (map[int][]uint64, genObs, *ShardError) {
	var resp shardQueryResponse
	c := r.shards[sid]
	if err := r.postJSON(c, "/shardquery", shardQueryRequest{Vertices: vs}, &resp); err != nil {
		return nil, genObs{}, err
	}
	if resp.Generation == 0 {
		return nil, genObs{}, c.fail(errNotShardBackend)
	}
	// A shard serving a file over the wrong vertex space (manifest drift)
	// must be a loud error, not silently wrong joins.
	if resp.Vertices != r.n {
		return nil, genObs{}, c.fail(fmt.Errorf("shard serves %d vertices but the manifest says %d — mismatched index files?", resp.Vertices, r.n))
	}
	rows := make(map[int][]uint64, len(vs))
	for _, v := range vs {
		enc, found := resp.Rows[strconv.Itoa(v)]
		if !found {
			return nil, genObs{}, c.fail(fmt.Errorf("row for vertex %d missing from response", v))
		}
		run, err := decodePackedRun(enc, r.n)
		if err != nil {
			return nil, genObs{}, c.fail(err)
		}
		rows[v] = run
	}
	c.lastGen.Store(resp.Generation)
	return rows, genObs{epoch: resp.Epoch, gen: resp.Generation}, nil
}

// resolveRank translates a rank-space hub to its original vertex id via
// any shard holding the (global) permutation — shard sid is used since a
// request to it is already warm. The shard's snapshot identity is
// returned so the caller can verify the resolution used the same
// snapshot the rank came from.
func (r *Router) resolveRank(sid int, rank int) (int, genObs, *ShardError) {
	var resp shardQueryResponse
	c := r.shards[sid]
	if err := r.postJSON(c, "/shardquery", shardQueryRequest{Resolve: []int{rank}}, &resp); err != nil {
		return 0, genObs{}, err
	}
	orig, found := resp.Resolved[strconv.Itoa(rank)]
	if !found {
		return 0, genObs{}, c.fail(fmt.Errorf("rank %d missing from resolution response", rank))
	}
	c.lastGen.Store(resp.Generation)
	return orig, genObs{epoch: resp.Epoch, gen: resp.Generation}, nil
}

// crossQueryHub answers a cross-shard query: fetch the two rows
// concurrently, join locally and — when the caller needs the witness —
// resolve the winning rank to an original id. The witness rank is
// meaningful only in the permutation of the snapshot the rows came
// from, so a resolution that lands on a different snapshot (the shard
// hot-swapped between the two requests — a rebuilt index may permute
// ranks differently) is retried from the row fetch; queries never block
// a reload, they just redo the work. With needHub=false the resolution
// (and with it the retry loop) is skipped and the hub is hubUnknown.
func (r *Router) crossQueryHub(su, sv, u, v int, obs map[int]genObs, needHub bool) (float64, int, bool, error) {
	const attempts = 3
	var lastErr error
	for try := 0; try < attempts; try++ {
		var (
			wg    sync.WaitGroup
			mu    sync.Mutex
			fails []*ShardError
			rowU  []uint64
			rowV  []uint64
			obsU  genObs
		)
		fetch := func(sid, vertex int, dst *[]uint64, rowObs *genObs) {
			defer wg.Done()
			rows, o, err := r.fetchRows(sid, []int{vertex})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				fails = append(fails, err)
				return
			}
			*dst = rows[vertex]
			*rowObs = o
			obs[sid] = o
		}
		var obsV genObs
		wg.Add(2)
		go fetch(su, u, &rowU, &obsU)
		go fetch(sv, v, &rowV, &obsV)
		wg.Wait()
		if len(fails) > 0 {
			sort.Slice(fails, func(i, j int) bool { return fails[i].Shard < fails[j].Shard })
			return 0, 0, false, &ClusterError{Failed: fails}
		}
		r.crossJoins.Add(1)
		d, rank, ok := label.JoinPacked(rowU, rowV)
		if !ok {
			return Infinity, 0, false, nil
		}
		if !needHub {
			return d, hubUnknown, true, nil
		}
		hub, resolveObs, serr := r.resolveRank(su, int(rank))
		if serr != nil {
			return 0, 0, false, &ClusterError{Failed: []*ShardError{serr}}
		}
		if resolveObs == obsU {
			return d, hub, true, nil
		}
		// Shard su swapped snapshots between row fetch and resolution;
		// the rank may not mean the same vertex anymore. Retry cleanly.
		lastErr = fmt.Errorf("shard %d reloaded mid-query %d times in a row", su, try+1)
	}
	return 0, 0, false, &ClusterError{Failed: []*ShardError{{
		Shard: su, Addr: r.shards[su].addr, Err: lastErr,
	}}}
}

// --- health, stats, HTTP ---

// ShardHealth is one shard's state as seen by the router.
type ShardHealth struct {
	ID         int    `json:"id"`
	Addr       string `json:"addr"`
	OK         bool   `json:"ok"`
	Generation uint64 `json:"generation,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Health probes every shard's /healthz concurrently and reports each
// one's state; the router serves (degraded) regardless of the outcome.
func (r *Router) Health() []ShardHealth {
	out := make([]ShardHealth, len(r.shards))
	var wg sync.WaitGroup
	for i, c := range r.shards {
		wg.Add(1)
		go func(i int, c *shardClient) {
			defer wg.Done()
			h := ShardHealth{ID: c.id, Addr: c.addr}
			var resp struct {
				OK         bool   `json:"ok"`
				Generation uint64 `json:"generation"`
				Epoch      uint64 `json:"epoch"`
			}
			if err := r.getJSON(c, "/healthz", &resp); err != nil {
				h.Error = err.Error()
			} else {
				h.OK = resp.OK
				h.Generation = resp.Generation
				c.lastGen.Store(resp.Generation)
				r.noteGenerations(map[int]genObs{c.id: {epoch: resp.Epoch, gen: resp.Generation}})
			}
			out[i] = h
		}(i, c)
	}
	wg.Wait()
	return out
}

// RouterShardStats is the per-shard block of RouterStats.
type RouterShardStats struct {
	ID         int    `json:"id"`
	Addr       string `json:"addr"`
	Requests   int64  `json:"requests_total"`
	Errors     int64  `json:"errors_total"`
	LastError  string `json:"last_error,omitempty"`
	Generation uint64 `json:"generation"` // last observed; 0 = never seen
}

// RouterStats is the router's /stats response.
type RouterStats struct {
	Vertices      int                `json:"vertices"`
	Shards        []RouterShardStats `json:"shards"`
	Queries       int64              `json:"queries_total"`
	CrossJoins    int64              `json:"cross_joins_total"`
	CacheResets   int64              `json:"cache_resets_total"`
	UptimeSeconds float64            `json:"uptime_seconds"`
	Cache         *CacheStats        `json:"cache,omitempty"`
}

// Stats reports the router's counters and its view of the cluster.
func (r *Router) Stats() RouterStats {
	out := RouterStats{
		Vertices:      r.n,
		Queries:       r.queries.Load(),
		CrossJoins:    r.crossJoins.Load(),
		CacheResets:   r.cacheResets.Load(),
		UptimeSeconds: time.Since(r.start).Seconds(),
	}
	for _, c := range r.shards {
		c.mu.Lock()
		lastErr := c.lastErr
		c.mu.Unlock()
		out.Shards = append(out.Shards, RouterShardStats{
			ID:         c.id,
			Addr:       c.addr,
			Requests:   c.requests.Load(),
			Errors:     c.errors.Load(),
			LastError:  lastErr,
			Generation: c.lastGen.Load(),
		})
	}
	if c := r.state.Load().cache; c != nil {
		cs := c.Stats()
		out.Cache = &cs
	}
	return out
}

// Handler returns the router's HTTP API — the same public surface as a
// single-process Server (GET /dist, POST /batch, GET /stats, GET
// /healthz, GET /metrics) plus POST /reload?shard=I[&path=P], which
// proxies a hot reload to one shard. Errors are JSON bodies; shard
// failures are 502s listing the failed shards.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/dist", r.metrics.wrap("/dist", r.handleDist))
	mux.HandleFunc("/batch", r.metrics.wrap("/batch", r.handleBatch))
	mux.HandleFunc("/stats", r.metrics.wrap("/stats", r.handleStats))
	mux.HandleFunc("/healthz", r.metrics.wrap("/healthz", r.handleHealthz))
	mux.HandleFunc("/reload", r.metrics.wrap("/reload", r.handleReload))
	mux.HandleFunc("/metrics", r.handleMetrics)
	return mux
}

// routeError maps a routing failure to its HTTP response.
func routeError(w http.ResponseWriter, err error) {
	var vr *VertexRangeError
	if errors.As(err, &vr) {
		httpError(w, http.StatusBadRequest, vr.Error())
		return
	}
	var ce *ClusterError
	if errors.As(err, &ce) {
		failed := make([]map[string]any, len(ce.Failed))
		for i, f := range ce.Failed {
			failed[i] = map[string]any{"shard": f.Shard, "addr": f.Addr, "error": f.Err.Error()}
		}
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":         ce.Error(),
			"failed_shards": failed,
		})
		return
	}
	httpError(w, http.StatusBadGateway, err.Error())
}

func (r *Router) handleDist(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /dist?u=&v=")
		return
	}
	u, err1 := strconv.Atoi(req.URL.Query().Get("u"))
	v, err2 := strconv.Atoi(req.URL.Query().Get("v"))
	if err1 != nil || err2 != nil {
		httpError(w, http.StatusBadRequest, "u and v must be integer vertex ids")
		return
	}
	d, hub, ok, err := r.QueryHub(u, v)
	if err != nil {
		routeError(w, err)
		return
	}
	resp := map[string]any{"u": u, "v": v, "reachable": ok}
	if ok {
		resp["dist"] = d
		resp["hub"] = hub
	}
	writeJSON(w, http.StatusOK, resp)
}

func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON array of [u,v] pairs")
		return
	}
	pairs, ok := decodeBatchBody(w, req, r.n)
	if !ok {
		return
	}
	dists, err := r.Batch(pairs)
	if err != nil {
		routeError(w, err)
		return
	}
	for i, d := range dists {
		if d == Infinity {
			dists[i] = -1 // JSON has no +Inf
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"dists": dists})
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /stats")
		return
	}
	writeJSON(w, http.StatusOK, r.Stats())
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /healthz")
		return
	}
	shards := r.Health()
	ok := true
	for _, h := range shards {
		ok = ok && h.OK
	}
	code := http.StatusOK
	if !ok {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"ok": ok, "shards": shards})
}

// handleReload proxies POST /reload?shard=I[&path=P] to one shard server,
// so an operator can hot-swap any shard through the router. The response
// is the shard's own /reload response.
func (r *Router) handleReload(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST /reload?shard=I&path=P")
		return
	}
	sid, err := strconv.Atoi(req.URL.Query().Get("shard"))
	if err != nil || sid < 0 || sid >= len(r.shards) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("shard must name a shard in [0,%d)", len(r.shards)))
		return
	}
	path := "/reload"
	if p := req.URL.Query().Get("path"); p != "" {
		path += "?path=" + url.QueryEscape(p)
	}
	c := r.shards[sid]
	c.requests.Add(1)
	resp, err := r.client.Post(c.addr+path, "application/json", strings.NewReader("{}"))
	if err != nil {
		// Transport failure: the shard really is unreachable.
		routeError(w, &ClusterError{Failed: []*ShardError{c.fail(err)}})
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		// The shard spoke; an operator error (bad path → 400) is relayed
		// verbatim, not dressed up as a shard failure — it must not trip
		// error counters or health dashboards.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
		return
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		routeError(w, &ClusterError{Failed: []*ShardError{c.fail(fmt.Errorf("undecodable reload response: %w", err))}})
		return
	}
	// Successful round trip: the shard is healthy again as far as the
	// router can tell (mirrors decodeShardResponse's success path).
	c.mu.Lock()
	c.lastErr = ""
	c.mu.Unlock()
	// A successful reload bumped the shard's generation; fold it in now
	// so the next query doesn't serve one answer from the retired cache.
	g, gok := out["generation"].(float64)
	e, eok := out["epoch"].(float64)
	if gok && eok {
		c.lastGen.Store(uint64(g))
		r.noteGenerations(map[int]genObs{sid: {epoch: uint64(e), gen: uint64(g)}})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics exposes the router in Prometheus text format.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /metrics")
		return
	}
	st := r.Stats()
	w.Header().Set("Content-Type", promContentType)
	r.metrics.writeTo(w, "chl_router")
	promGauge(w, "chl_router_vertices", "Vertex-id space served by the cluster.", float64(st.Vertices))
	promGauge(w, "chl_router_shard_count", "Shards behind this router.", float64(len(st.Shards)))
	promGauge(w, "chl_router_uptime_seconds", "Seconds since the router started.", st.UptimeSeconds)
	promCounter(w, "chl_router_queries_total", "Queries routed.", st.Queries)
	promCounter(w, "chl_router_cross_joins_total", "Cross-shard hub joins performed at the router.", st.CrossJoins)
	promCounter(w, "chl_router_cache_resets_total", "Answer-cache resets after observed shard reloads.", st.CacheResets)
	if st.Cache != nil {
		promGauge(w, "chl_router_cache_entries", "Answers currently cached at the router.", float64(st.Cache.Entries))
		promGauge(w, "chl_router_cache_capacity", "Router answer cache capacity.", float64(st.Cache.Capacity))
		promCounter(w, "chl_router_cache_hits_total", "Router answer cache hits.", st.Cache.Hits)
		promCounter(w, "chl_router_cache_misses_total", "Router answer cache misses.", st.Cache.Misses)
	}
	fmt.Fprintf(w, "# HELP chl_router_shard_requests_total Requests sent to each shard.\n# TYPE chl_router_shard_requests_total counter\n")
	for _, sh := range st.Shards {
		fmt.Fprintf(w, "chl_router_shard_requests_total{shard=\"%d\"} %d\n", sh.ID, sh.Requests)
	}
	fmt.Fprintf(w, "# HELP chl_router_shard_errors_total Failed requests per shard.\n# TYPE chl_router_shard_errors_total counter\n")
	for _, sh := range st.Shards {
		fmt.Fprintf(w, "chl_router_shard_errors_total{shard=\"%d\"} %d\n", sh.ID, sh.Errors)
	}
	fmt.Fprintf(w, "# HELP chl_router_shard_generation Last observed snapshot generation per shard (0 = never seen).\n# TYPE chl_router_shard_generation gauge\n")
	for _, sh := range st.Shards {
		fmt.Fprintf(w, "chl_router_shard_generation{shard=\"%d\"} %d\n", sh.ID, sh.Generation)
	}
}

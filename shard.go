package chl

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/shard"
)

// Sharded serving: a flat index too large (or too hot) for one process is
// sliced into per-shard CHFX files, each holding only the label runs of
// the vertices a shard owns under a consistent-hash ring
// (internal/shard). Every slice is a structurally complete flat index
// over the full vertex-id space — empty runs for foreign vertices, the
// full rank permutation, the same binary format — so a shard server is
// the ordinary Server (mmap loading, snapshot hot swap, answer cache)
// pointed at its slice, plus an ownership check and the /shardquery
// row-fetch endpoint the Router joins across. See ARCHITECTURE.md
// ("Sharded serving") for the full topology and protocol.

// Shard returns a copy of fx that keeps only the label runs of vertices
// owned by shard id under partition p. The slice spans the full vertex-id
// space and carries the full rank permutation, so every saver, loader and
// serving component treats it as an ordinary flat index.
func (fx *FlatIndex) Shard(p *shard.Partition, id int) (*FlatIndex, error) {
	if id < 0 || id >= p.Shards() {
		return nil, fmt.Errorf("chl: shard id %d out of range [0,%d)", id, p.Shards())
	}
	keep := func(v int) bool { return p.Owner(v) == id }
	return fx.slice(keep), nil
}

// slice carves out a copy of fx keeping only the label runs keep selects,
// in fx's own format — compressed indexes slice blockwise without
// re-encoding (label.CompressedIndex.Slice), so compressed shard files
// inherit the format of the index they were cut from.
func (fx *FlatIndex) slice(keep func(v int) bool) *FlatIndex {
	out := &FlatIndex{perm: append([]int(nil), fx.perm...)}
	if fx.cflat != nil {
		out.cflat = fx.cflat.Slice(keep)
		if fx.cbwd != nil {
			out.cbwd = fx.cbwd.Slice(keep)
		}
		return out
	}
	out.flat = fx.flat.Slice(keep)
	if fx.bwd != nil {
		// A directed slice keeps both label halves of its owned vertices:
		// the router joins forward(u) from u's shard with backward(v)
		// from v's.
		out.bwd = fx.bwd.Slice(keep)
	}
	return out
}

// SaveShards slices fx into a cluster of shards per-shard flat index
// files under dir (shard-000.flat, shard-001.flat, ...) and writes the
// cluster manifest (cluster.json) describing the consistent-hash ring
// next to them. replicas and seed parameterize the ring (see
// shard.NewPartition); 64 replicas is a good default. The returned
// manifest is what shard servers and the router load to agree on
// ownership.
func (fx *FlatIndex) SaveShards(dir string, shards, replicas int, seed uint64) (*shard.Manifest, error) {
	p, err := shard.NewPartition(shards, replicas, seed)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// One ring lookup per vertex, shared across all slices — Shard's
	// keep-function form would re-hash every vertex twice per shard.
	owners := make([]int32, fx.NumVertices())
	counts := make([]int, shards)
	for v := range owners {
		owners[v] = int32(p.Owner(v))
		counts[owners[v]]++
	}
	files := make([]string, shards)
	for id := 0; id < shards; id++ {
		keep := func(v int) bool { return owners[v] == int32(id) }
		slice := fx.slice(keep)
		files[id] = fmt.Sprintf("shard-%03d.flat", id)
		if err := slice.SaveFile(filepath.Join(dir, files[id])); err != nil {
			return nil, fmt.Errorf("chl: writing shard %d: %w", id, err)
		}
	}
	m, err := shard.NewManifest(fx.NumVertices(), shards, replicas, seed, files)
	if err != nil {
		return nil, err
	}
	m.Directed = fx.Directed()
	m.VertexCounts = counts
	if err := shard.WriteManifest(filepath.Join(dir, shard.ManifestName), m); err != nil {
		return nil, err
	}
	return m, nil
}

// ShardFilePath resolves the path of shard id's index file relative to
// the manifest's location, the layout SaveShards writes.
func ShardFilePath(manifestPath string, m *shard.Manifest, id int) (string, error) {
	if id < 0 || id >= len(m.Files) {
		return "", fmt.Errorf("chl: shard id %d out of range [0,%d)", id, len(m.Files))
	}
	f := m.Files[id]
	if filepath.IsAbs(f) {
		return f, nil
	}
	return filepath.Join(filepath.Dir(manifestPath), f), nil
}

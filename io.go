package chl

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/label"
)

// Index file format:
//
//	magic   "CHIX"
//	flags   1 byte (bit 0: directed)
//	perm    (label.WritePerm)
//	index   (label.WriteIndex) — forward index for directed graphs
//	index   backward index, directed only
var indexMagic = [4]byte{'C', 'H', 'I', 'X'}

// Save serializes the index (labels + ranking) to w. Build metrics and
// per-node partitions are not persisted.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(indexMagic[:]); err != nil {
		return err
	}
	var flags byte
	if ix.directed != nil {
		flags |= 1
	}
	if err := bw.WriteByte(flags); err != nil {
		return err
	}
	if err := label.WritePerm(bw, ix.perm); err != nil {
		return err
	}
	if ix.directed != nil {
		if err := label.WriteIndex(bw, ix.directed.Forward); err != nil {
			return err
		}
		if err := label.WriteIndex(bw, ix.directed.Backward); err != nil {
			return err
		}
	} else {
		if err := label.WriteIndex(bw, ix.ranked); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFile writes the index to a file.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load deserializes an index written by Save.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("chl: reading magic: %w", err)
	}
	if hdr != indexMagic {
		return nil, fmt.Errorf("chl: bad index magic %q", hdr[:])
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("chl: reading flags: %w", err)
	}
	perm, err := label.ReadPerm(br)
	if err != nil {
		return nil, err
	}
	rank := make([]int, len(perm))
	for pos, v := range perm {
		rank[v] = pos
	}
	ix := &Index{n: len(perm), perm: perm, rank: rank}
	if flags&1 != 0 {
		fwd, err := label.ReadIndex(br)
		if err != nil {
			return nil, err
		}
		bwd, err := label.ReadIndex(br)
		if err != nil {
			return nil, err
		}
		ix.directed = &label.DirectedIndex{Forward: fwd, Backward: bwd}
	} else {
		ix.ranked, err = label.ReadIndex(br)
		if err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// LoadFile reads an index from a file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

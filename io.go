package chl

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/label"
)

// Index file format:
//
//	magic   "CHIX"
//	flags   1 byte (bit 0: directed)
//	perm    (label.WritePerm)
//	index   (label.WriteIndex) — forward index for directed graphs
//	index   backward index, directed only
var indexMagic = [4]byte{'C', 'H', 'I', 'X'}

// Save serializes the index (labels + ranking) to w. Build metrics and
// per-node partitions are not persisted.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(indexMagic[:]); err != nil {
		return err
	}
	var flags byte
	if ix.directed != nil {
		flags |= 1
	}
	if err := bw.WriteByte(flags); err != nil {
		return err
	}
	if err := label.WritePerm(bw, ix.perm); err != nil {
		return err
	}
	if ix.directed != nil {
		if err := label.WriteIndex(bw, ix.directed.Forward); err != nil {
			return err
		}
		if err := label.WriteIndex(bw, ix.directed.Backward); err != nil {
			return err
		}
	} else {
		if err := label.WriteIndex(bw, ix.ranked); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFile writes the index to a file.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load deserializes an index written by Save.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("chl: reading magic: %w", err)
	}
	if hdr != indexMagic {
		return nil, fmt.Errorf("chl: bad index magic %q", hdr[:])
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("chl: reading flags: %w", err)
	}
	perm, err := label.ReadPerm(br)
	if err != nil {
		return nil, err
	}
	rank := make([]int, len(perm))
	for pos, v := range perm {
		rank[v] = pos
	}
	ix := &Index{n: len(perm), perm: perm, rank: rank}
	if flags&1 != 0 {
		fwd, err := label.ReadIndex(br)
		if err != nil {
			return nil, err
		}
		bwd, err := label.ReadIndex(br)
		if err != nil {
			return nil, err
		}
		ix.directed = &label.DirectedIndex{Forward: fwd, Backward: bwd}
	} else {
		ix.ranked, err = label.ReadIndex(br)
		if err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// LoadFile reads an index from a file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Flat serving format:
//
//	magic   "CHFX"
//	version 1 byte (currently 1)
//	perm    (label.WritePerm) — rank → original id
//	flat    packed label store (label.FlatIndex CHLF payload); runs are
//	        ordered by original vertex id, hub ids are in rank space
//
// See ARCHITECTURE.md for the byte-level layout of the CHLF payload.
var flatMagic = [4]byte{'C', 'H', 'F', 'X'}

const flatVersion = 1

// Save serializes the flat index (packed labels + ranking) to w.
func (fx *FlatIndex) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(flatMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(flatVersion); err != nil {
		return err
	}
	if err := label.WritePerm(bw, fx.perm); err != nil {
		return err
	}
	if _, err := fx.flat.WriteTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveFile writes the flat index to a file.
func (fx *FlatIndex) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fx.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFlat deserializes a flat index written by FlatIndex.Save.
func LoadFlat(r io.Reader) (*FlatIndex, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("chl: reading flat magic: %w", err)
	}
	if hdr != flatMagic {
		return nil, fmt.Errorf("chl: bad flat index magic %q", hdr[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("chl: reading flat version: %w", err)
	}
	if ver != flatVersion {
		return nil, fmt.Errorf("chl: unsupported flat index version %d (want %d)", ver, flatVersion)
	}
	perm, err := label.ReadPerm(br)
	if err != nil {
		return nil, err
	}
	flat, err := label.ReadFlat(br)
	if err != nil {
		return nil, err
	}
	if flat.NumVertices() != len(perm) {
		return nil, fmt.Errorf("chl: flat index covers %d vertices but permutation has %d", flat.NumVertices(), len(perm))
	}
	return &FlatIndex{flat: flat, perm: perm}, nil
}

// LoadFlatFile reads a flat index from a file.
func LoadFlatFile(path string) (*FlatIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadFlat(f)
}

package chl

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"repro/internal/label"
)

// Index file format:
//
//	magic   "CHIX"
//	flags   1 byte (bit 0: directed)
//	perm    (label.WritePerm)
//	index   (label.WriteIndex) — forward index for directed graphs
//	index   backward index, directed only
var indexMagic = [4]byte{'C', 'H', 'I', 'X'}

// Save serializes the index (labels + ranking) to w. Build metrics and
// per-node partitions are not persisted.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(indexMagic[:]); err != nil {
		return err
	}
	var flags byte
	if ix.directed != nil {
		flags |= 1
	}
	if err := bw.WriteByte(flags); err != nil {
		return err
	}
	if err := label.WritePerm(bw, ix.perm); err != nil {
		return err
	}
	if ix.directed != nil {
		if err := label.WriteIndex(bw, ix.directed.Forward); err != nil {
			return err
		}
		if err := label.WriteIndex(bw, ix.directed.Backward); err != nil {
			return err
		}
	} else {
		if err := label.WriteIndex(bw, ix.ranked); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFile writes the index to a file.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load deserializes an index written by Save.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("chl: reading magic: %w", err)
	}
	if hdr != indexMagic {
		return nil, fmt.Errorf("chl: bad index magic %q", hdr[:])
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("chl: reading flags: %w", err)
	}
	perm, err := label.ReadPerm(br)
	if err != nil {
		return nil, err
	}
	rank := make([]int, len(perm))
	for pos, v := range perm {
		rank[v] = pos
	}
	ix := &Index{n: len(perm), perm: perm, rank: rank}
	if flags&1 != 0 {
		fwd, err := label.ReadIndex(br)
		if err != nil {
			return nil, err
		}
		bwd, err := label.ReadIndex(br)
		if err != nil {
			return nil, err
		}
		ix.directed = &label.DirectedIndex{Forward: fwd, Backward: bwd}
	} else {
		ix.ranked, err = label.ReadIndex(br)
		if err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// LoadFile reads an index from a file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Flat serving format:
//
//	magic   "CHFX"
//	version 1 byte (2 for undirected, 3 for directed)
//	padlen  1 byte            version ≥ 2 only
//	pad     padlen zero bytes version ≥ 2 only
//	perm    (label.WritePerm) — rank → original id
//	flat    packed label store; runs are ordered by original vertex id,
//	        hub ids are in rank space. Version ≤ 2: one CHLF payload
//	        (label.FlatIndex). Version 3: one CHLD payload packing the
//	        forward and backward runs of a directed index
//	        (label.WriteDirectedFlat). Version 4: one CHLC payload of
//	        compressed label blocks, one or two halves
//	        (label.WriteCompressedFlat).
//
// Versions 2 and 3 insert pad bytes sized so that the payload's entry
// array(s) land on an 8-byte boundary within the file, which lets
// LoadFlatMapped serve the arrays zero-copy straight from a memory
// mapping; version 4 needs (and pads to) only a 4-byte boundary, since a
// CHLC payload holds no 8-byte words. Version 1 files (unpadded,
// undirected) are still read by the copying loader. Version 4 is written
// only when the caller compresses explicitly (FlatIndex.Compress, the
// -compress CLI flag): v2/v3 remain the defaults, so existing outputs
// stay byte-identical across this change.
//
// See ARCHITECTURE.md for the byte-level layout of the CHLF and CHLD
// payloads.
var flatMagic = [4]byte{'C', 'H', 'F', 'X'}

const (
	flatVersionCompressed = 4 // compressed label blocks (either directedness); CHLC payload
	flatVersionDirected   = 3 // written for directed indexes; CHLD payload
	flatVersion           = 2 // written for undirected; entries 8-byte aligned for mmap
	flatVersionLegacy     = 1 // still read: identical to 2 but unpadded
)

// flatPad returns the pad length for an undirected flat file over n
// vertices: the bytes between the pad-length byte and the permutation
// that bring the CHLF entries array to an 8-byte file offset. Everything
// before the entries — 6 header bytes, the pad, the 4+4n permutation,
// the 17-byte CHLF header, the 4(n+1) offsets — sums to 31+pad (mod 8),
// so the pad is the same for every n; the formula keeps the writer and
// the mapped loader honest about why.
func flatPad(n int) int {
	pre := 6 + (4 + 4*n) + 17 + 4*(n+1)
	return (8 - pre%8) % 8
}

// flatPadDirected is flatPad for the version-3 directed layout: the
// 25-byte CHLD header and the two 4(n+1)-byte offset arrays precede the
// entry arrays, so everything before them sums to 43+12n+pad; both entry
// arrays start 8-aligned when that total is a multiple of 8 (the
// backward array follows the forward one at a multiple of 8 bytes).
func flatPadDirected(n int) int {
	pre := 6 + (4 + 4*n) + label.DirectedFlatHeaderBytes + 2*4*(n+1)
	return (8 - pre%8) % 8
}

// flatPadCompressed is flatPad for the version-4 compressed layout. A
// CHLC payload holds only uint32 arrays and raw bytes, so 4-byte
// alignment of the payload base suffices (its header is a multiple of 4
// and all word arrays precede the byte payloads): the 6 framing bytes
// plus the 4+4n permutation leave the base at 2 (mod 4), so the pad is a
// constant 2.
func flatPadCompressed(n int) int {
	pre := 6 + (4 + 4*n)
	return (4 - pre%4) % 4
}

// Save serializes the flat index (packed labels + ranking) to w —
// version 2 for undirected indexes, version 3 (both label halves) for
// directed ones.
func (fx *FlatIndex) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(flatMagic[:]); err != nil {
		return err
	}
	ver, pad := byte(flatVersion), flatPad(len(fx.perm))
	switch {
	case fx.cflat != nil:
		ver, pad = flatVersionCompressed, flatPadCompressed(len(fx.perm))
	case fx.bwd != nil:
		ver, pad = flatVersionDirected, flatPadDirected(len(fx.perm))
	}
	if err := bw.WriteByte(ver); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(pad)); err != nil {
		return err
	}
	if _, err := bw.Write(make([]byte, pad)); err != nil {
		return err
	}
	if err := label.WritePerm(bw, fx.perm); err != nil {
		return err
	}
	switch {
	case fx.cflat != nil:
		if _, err := label.WriteCompressedFlat(bw, fx.cflat, fx.cbwd); err != nil {
			return err
		}
	case fx.bwd != nil:
		if _, err := label.WriteDirectedFlat(bw, fx.flat, fx.bwd); err != nil {
			return err
		}
	default:
		if _, err := fx.flat.WriteTo(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ContentHash returns a durable identity for the index's content: an
// FNV-1a hash of its serialized (Save) byte stream, truncated to 53 bits
// (so it survives the float64 round trip JSON consumers impose — the
// router's /reload proxy decodes identities from JSON numbers) and never
// zero (zero means "no identity observed" on the wire). Two processes
// serving byte-identical snapshots — e.g. a coordinated restart over the
// same shard file — report the same ContentHash, which is what lets the
// router keep its answer cache across restarts that changed nothing.
func (fx *FlatIndex) ContentHash() uint64 {
	h := fnv.New64a()
	_ = fx.Save(h) // writes to a hash.Hash64 cannot fail
	v := h.Sum64() & (1<<53 - 1)
	if v == 0 {
		v = 1
	}
	return v
}

// SaveFile writes the flat index to a file.
func (fx *FlatIndex) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fx.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFlat deserializes a flat index written by FlatIndex.Save.
func LoadFlat(r io.Reader) (*FlatIndex, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("chl: reading flat magic: %w", err)
	}
	if hdr != flatMagic {
		return nil, fmt.Errorf("chl: bad flat index magic %q", hdr[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("chl: reading flat version: %w", err)
	}
	switch ver {
	case flatVersionLegacy:
		// No alignment pad.
	case flatVersion, flatVersionDirected, flatVersionCompressed:
		pad, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("chl: reading flat pad length: %w", err)
		}
		if _, err := io.CopyN(io.Discard, br, int64(pad)); err != nil {
			return nil, fmt.Errorf("chl: skipping flat pad: %w", err)
		}
	default:
		return nil, fmt.Errorf("chl: unsupported flat index version %d (want ≤ %d)", ver, flatVersionCompressed)
	}
	perm, err := label.ReadPerm(br)
	if err != nil {
		return nil, err
	}
	if ver == flatVersionCompressed {
		cf, cb, err := label.ReadCompressedFlat(br)
		if err != nil {
			return nil, err
		}
		if cf.NumVertices() != len(perm) {
			return nil, fmt.Errorf("chl: flat index covers %d vertices but permutation has %d", cf.NumVertices(), len(perm))
		}
		return &FlatIndex{cflat: cf, cbwd: cb, perm: perm}, nil
	}
	if ver == flatVersionDirected {
		fwd, bwd, err := label.ReadDirectedFlat(br)
		if err != nil {
			return nil, err
		}
		if fwd.NumVertices() != len(perm) {
			return nil, fmt.Errorf("chl: flat index covers %d vertices but permutation has %d", fwd.NumVertices(), len(perm))
		}
		return &FlatIndex{flat: fwd, bwd: bwd, perm: perm}, nil
	}
	flat, err := label.ReadFlat(br)
	if err != nil {
		return nil, err
	}
	if flat.NumVertices() != len(perm) {
		return nil, fmt.Errorf("chl: flat index covers %d vertices but permutation has %d", flat.NumVertices(), len(perm))
	}
	return &FlatIndex{flat: flat, perm: perm}, nil
}

// LoadFlatFile reads a flat index from a file into the heap. It accepts
// every CHFX version; for the zero-copy serving path use OpenFlat, which
// prefers LoadFlatMapped and falls back to this loader.
func LoadFlatFile(path string) (*FlatIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadFlat(f)
}

// LoadFlatMapped memory-maps the flat index file at path and serves the
// label arrays zero-copy from the mapping: loading is O(validation)
// rather than O(copy), the kernel pages label data in on demand, and
// concurrent serving processes of the same file share one physical copy.
// Only the small rank permutation is materialized on the heap.
//
// The returned index holds the mapping until Close is called; the file
// must not be modified or truncated while mapped (replace index files by
// writing a new file and reloading, never in place — Server.Reload
// encapsulates that discipline). Errors wrapping label.ErrNotMappable
// mean the file is valid but cannot be mapped on this host (no mmap
// support, big-endian, or an unpadded version-1 file); OpenFlat handles
// the fallback.
func LoadFlatMapped(path string) (*FlatIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Parse the CHFX framing with exact reads (no buffering) so the byte
	// offset of the CHLF payload is known precisely.
	var hdr [6]byte
	if _, err := io.ReadFull(f, hdr[:6]); err != nil {
		return nil, fmt.Errorf("chl: reading flat header: %w", err)
	}
	if [4]byte(hdr[:4]) != flatMagic {
		return nil, fmt.Errorf("chl: bad flat index magic %q", hdr[:4])
	}
	off := int64(6)
	directed, compressed := false, false
	switch ver := hdr[4]; ver {
	case flatVersionLegacy:
		// Version 1 has no pad byte: hdr[5] was the first permutation
		// byte. Its arrays are unaligned anyway, so don't bother
		// rewinding — report not-mappable and let OpenFlat fall back.
		return nil, fmt.Errorf("%w: CHFX version 1 predates alignment padding", label.ErrNotMappable)
	case flatVersion, flatVersionDirected, flatVersionCompressed:
		directed = ver == flatVersionDirected
		compressed = ver == flatVersionCompressed
		off += int64(hdr[5])
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			return nil, fmt.Errorf("chl: seeking past flat pad: %w", err)
		}
	default:
		return nil, fmt.Errorf("chl: unsupported flat index version %d (want ≤ %d)", ver, flatVersionCompressed)
	}
	var cnt [4]byte
	if _, err := io.ReadFull(f, cnt[:]); err != nil {
		return nil, fmt.Errorf("chl: reading perm length: %w", err)
	}
	n := int64(binary.LittleEndian.Uint32(cnt[:]))
	// Bound the perm allocation by the file's actual size before trusting
	// the count — a corrupt or hostile header must not be able to demand
	// gigabytes (this loader feeds POST /reload).
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if off+4+4*n > st.Size() {
		return nil, fmt.Errorf("chl: perm of %d entries does not fit in file of %d bytes", n, st.Size())
	}
	// Replay the already-consumed length prefix, then let ReadPerm parse
	// straight from the file (its internal buffering may read past the
	// perm; the payload below is re-addressed by offset, not by reading
	// on).
	perm, err := label.ReadPerm(io.MultiReader(bytes.NewReader(cnt[:]), f))
	if err != nil {
		return nil, err
	}
	off += 4 + 4*n
	// Map from the SAME open descriptor the framing was read from: an
	// atomic-rename deploy racing this load must not pair one inode's
	// permutation with another's label arrays.
	if compressed {
		cf, cb, closer, err := label.MapCompressedFlatFile(f, off)
		if err != nil {
			return nil, err
		}
		if cf.NumVertices() != len(perm) {
			closer()
			return nil, fmt.Errorf("chl: flat index covers %d vertices but permutation has %d", cf.NumVertices(), len(perm))
		}
		return &FlatIndex{cflat: cf, cbwd: cb, perm: perm, close: closer, mapped: true}, nil
	}
	if directed {
		fwd, bwd, closer, err := label.MapDirectedFlatFile(f, off)
		if err != nil {
			return nil, err
		}
		if fwd.NumVertices() != len(perm) {
			closer()
			return nil, fmt.Errorf("chl: flat index covers %d vertices but permutation has %d", fwd.NumVertices(), len(perm))
		}
		return &FlatIndex{flat: fwd, bwd: bwd, perm: perm, close: closer, mapped: true}, nil
	}
	flat, closer, err := label.MapFlatFile(f, off)
	if err != nil {
		return nil, err
	}
	if flat.NumVertices() != len(perm) {
		closer()
		return nil, fmt.Errorf("chl: flat index covers %d vertices but permutation has %d", flat.NumVertices(), len(perm))
	}
	return &FlatIndex{flat: flat, perm: perm, close: closer, mapped: true}, nil
}

// OpenFlat opens a flat index file for serving: memory-mapped when the
// host and file allow it, otherwise copied to the heap. This is the
// loader the serving tier (Server, cmd/chlquery -serve) uses; check
// Mapped to see which path was taken, and Close the index when done.
func OpenFlat(path string) (*FlatIndex, error) {
	fx, err := LoadFlatMapped(path)
	if err == nil {
		return fx, nil
	}
	if !errors.Is(err, label.ErrNotMappable) {
		return nil, err
	}
	return LoadFlatFile(path)
}

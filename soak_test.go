package chl_test

// The chaos soak: a 3-shard × 2-replica cluster under continuous mixed
// load with every traffic-shaping feature live at once — one replica
// artificially slow (hedging's reason to exist), one replica killed and
// revived mid-soak (failover and ejection), duplicate-query barrier
// waves (singleflight), and a greedy HTTP client drawing 429s (quotas).
// Not a single query may fail or diverge from the single-process
// engine, hedged tail latency must beat unhedged on the same cluster,
// and the shaping counters must all show up in /stats and /metrics.
//
// This is the one test allowed to use real time: it exercises the
// router's production clock path end to end. Every unit-level timing
// assertion lives in shaping_test.go on a FakeClock.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	chl "repro"
)

func TestRouterChaosSoak(t *testing.T) {
	g := chl.GenerateScaleFree(400, 3, 21)
	fx, _ := buildFlat(t, g)
	c := startReplicatedCluster(t, fx, 3, 2, 1<<12, func(cfg *chl.RouterConfig) {
		cfg.HedgeDelay = 2 * time.Millisecond
		cfg.EjectAfter = 3
		cfg.Probation = 50 * time.Millisecond
		cfg.ClientQPS = 5
		cfg.ClientBurst = 2
	})
	defer c.close()
	n := fx.NumVertices()

	// Replica (0,1) is pathologically slow — every response stalls far
	// past the hedge delay, so shard 0 traffic that picks it only makes
	// its latency target through the hedge to its sibling.
	const slowDelay = 25 * time.Millisecond
	c.flaky[0][1].delay.Store(int64(slowDelay))

	// Phase 1: continuous mixed load (single queries + batches), every
	// answer checked against the single-process engine.
	var (
		stop    atomic.Bool
		ops     atomic.Int64
		dropped atomic.Int64
		wrong   atomic.Int64
		wg      sync.WaitGroup
	)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			pairs := make([]chl.QueryPair, 32)
			for !stop.Load() {
				u, v := rng.Intn(n), rng.Intn(n)
				d, err := c.router.Query(u, v)
				if err != nil {
					dropped.Add(1)
					continue
				}
				if d != fx.Query(u, v) {
					wrong.Add(1)
				}
				for i := range pairs {
					pairs[i] = chl.QueryPair{U: rng.Intn(n), V: rng.Intn(n)}
				}
				ds, err := c.router.Batch(pairs)
				if err != nil {
					dropped.Add(int64(len(pairs)))
					continue
				}
				for i, p := range pairs {
					if ds[i] != fx.Query(p.U, p.V) {
						wrong.Add(1)
					}
				}
				ops.Add(1)
			}
		}(w)
	}
	waitOps := func(target int64) {
		t.Helper()
		for deadline := time.Now().Add(30 * time.Second); ops.Load() < target; {
			if time.Now().After(deadline) {
				t.Fatal("soak workers made no progress")
			}
			//chlvet:allow clockcheck -- 1ms poll inside a real-goroutine soak; the workers run on the wall clock, so a FakeClock cannot step them
			time.Sleep(time.Millisecond)
		}
	}

	// Kill a healthy (non-slow) replica mid-soak with requests in flight,
	// keep loading until its failures eject it (its sibling and the hedge
	// path must absorb every query meanwhile), then bring it back through
	// probation. Note failovers are NOT asserted here: under hedging, a
	// dead replica is mostly reached by hedge attempts whose primary is
	// still in flight, which is rescue-by-hedge, not failover — the
	// deterministic failover assertion lives in the probation test, which
	// runs hedge-free.
	waitOps(20)
	c.kill(2, 1)
	for deadline := time.Now().Add(30 * time.Second); c.router.Stats().Shards[2].Ejections == 0; {
		if time.Now().After(deadline) {
			t.Fatal("the killed replica was never ejected despite sustained failures")
		}
		//chlvet:allow clockcheck -- 1ms poll for ejection driven by real backend goroutines; nothing here advances on a FakeClock
		time.Sleep(time.Millisecond)
	}
	c.revive(2, 1)
	waitOps(ops.Load() + 40)
	stop.Store(true)
	wg.Wait()

	if d := dropped.Load(); d > 0 {
		t.Fatalf("%d queries failed during the soak (failover or hedging broken)", d)
	}
	if w := wrong.Load(); w > 0 {
		t.Fatalf("%d answers diverged from the single-process engine", w)
	}
	st := c.router.Stats()
	if st.Hedges == 0 {
		t.Fatal("no hedges fired despite a 25ms-slow replica and a 2ms hedge delay")
	}

	// Phase 2: duplicate load. Barrier waves of identical hub-needing
	// queries must collapse into shared flights.
	var waveErrs atomic.Int64
	rng := rand.New(rand.NewSource(99))
	for wave := 0; wave < 50 && c.router.Stats().Collapsed == 0; wave++ {
		u, v := rng.Intn(n), rng.Intn(n)
		start := make(chan struct{})
		var wwg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wwg.Add(1)
			go func() {
				defer wwg.Done()
				<-start
				if _, _, _, err := c.router.QueryHub(u, v); err != nil {
					waveErrs.Add(1)
				}
			}()
		}
		close(start)
		wwg.Wait()
	}
	if e := waveErrs.Load(); e > 0 {
		t.Fatalf("%d duplicate-wave queries failed", e)
	}
	if got := c.router.Stats().Collapsed; got == 0 {
		t.Fatal("no queries collapsed under 50 waves of 8 identical in-flight requests")
	}

	// Phase 3: tail latency. Two fresh routers over the same (still slow
	// on (0,1)) backends, identical except for hedging: on same-shard
	// shard-0 queries, the hedged p99 must beat the unhedged p99, which
	// is pinned at the slow replica's delay.
	groups := make([][]string, len(c.backends))
	for sid := range c.backends {
		for _, ts := range c.backends[sid] {
			groups[sid] = append(groups[sid], ts.URL)
		}
	}
	mkRouter := func(hedge time.Duration) *chl.Router {
		t.Helper()
		r, err := chl.NewRouter(chl.RouterConfig{Manifest: c.manifest, ReplicaAddrs: groups, HedgeDelay: hedge})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	unhedged, hedged := mkRouter(0), mkRouter(2*time.Millisecond)
	own0 := verticesByOwner(c.part, n)[0]
	p99 := func(r *chl.Router) time.Duration {
		t.Helper()
		mrng := rand.New(rand.NewSource(33))
		lat := make([]time.Duration, 50)
		for i := range lat {
			u, v := own0[mrng.Intn(len(own0))], own0[mrng.Intn(len(own0))]
			t0 := time.Now()
			if _, err := r.Query(u, v); err != nil {
				t.Fatalf("latency probe failed: %v", err)
			}
			lat[i] = time.Since(t0)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)*99/100]
	}
	p99Unhedged := p99(unhedged)
	p99Hedged := p99(hedged)
	if p99Hedged >= p99Unhedged {
		t.Fatalf("hedged p99 %v did not beat unhedged p99 %v (slow replica delay %v)", p99Hedged, p99Unhedged, slowDelay)
	}
	if hedged.Stats().Hedges == 0 {
		t.Fatal("the hedged measurement router never hedged")
	}

	// Phase 4: a greedy HTTP client (QPS 5, burst 2) must draw 429s that
	// honor the shed contract, without disturbing anyone else.
	routerTS := httptest.NewServer(c.router.Handler())
	defer routerTS.Close()
	okCount, shedCount := 0, 0
	for i := 0; i < 15; i++ {
		req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/dist?u=%d&v=%d", routerTS.URL, i%n, (i*7)%n), nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(chl.QuotaKeyHeader, "greedy")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			okCount++
		case http.StatusTooManyRequests:
			shedCount++
			var shed struct {
				Error             string  `json:"error"`
				Reason            string  `json:"reason"`
				RetryAfterSeconds float64 `json:"retry_after_seconds"`
			}
			if err := json.Unmarshal(body, &shed); err != nil {
				t.Fatalf("429 body is not JSON: %v (%s)", err, body)
			}
			if shed.Reason != "client_quota" || shed.Error == "" || shed.RetryAfterSeconds <= 0 {
				t.Fatalf("429 body %+v violates the shed contract", shed)
			}
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
				t.Fatalf("429 Retry-After %q, want a whole second >= 1", resp.Header.Get("Retry-After"))
			}
		default:
			t.Fatalf("greedy client got %d: %s", resp.StatusCode, body)
		}
	}
	if okCount == 0 || shedCount == 0 {
		t.Fatalf("greedy client saw %d OKs and %d sheds, want both (burst admits, quota sheds)", okCount, shedCount)
	}

	// Final: every shaping counter surfaces in /stats and /metrics.
	st = c.router.Stats()
	if st.Hedges == 0 || st.Collapsed == 0 || st.Shed == 0 {
		t.Fatalf("stats counters hedges=%d collapsed=%d shed=%d, want all nonzero", st.Hedges, st.Collapsed, st.Shed)
	}
	resp, err := http.Get(routerTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{"chl_router_hedges_total", "chl_router_collapsed_total", "chl_router_shed_total"} {
		val := -1.0
		for _, line := range strings.Split(string(metrics), "\n") {
			if strings.HasPrefix(line, name+" ") {
				if v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64); err == nil {
					val = v
				}
			}
		}
		if val <= 0 {
			t.Fatalf("metric %s missing or zero in /metrics:\n%s", name, metrics)
		}
	}
}

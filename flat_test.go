package chl_test

// Tests for the flat packed label store and the parallel batch serving
// engine: freeze/thaw parity against the slice-based index, the versioned
// binary round trip, and the save-once/serve-many flow of cmd/chlquery.

import (
	"bytes"
	"math/rand"
	"testing"

	chl "repro"
)

func buildFrozen(t *testing.T, g *chl.Graph) (*chl.Index, *chl.FlatIndex) {
	t.Helper()
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fx, err := ix.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return ix, fx
}

// The acceptance check of the flat store: 1k random pairs answered
// identically by FlatIndex.Query and Index.Query on a generated graph.
func TestFlatQueryParity(t *testing.T) {
	for name, g := range map[string]*chl.Graph{
		"scalefree": chl.GenerateScaleFree(600, 3, 1),
		"road":      chl.GenerateRoadGrid(24, 24, 2),
		"sparse":    chl.GenerateRandom(300, 200, 9, 3), // disconnected pairs exercise Infinity
	} {
		t.Run(name, func(t *testing.T) {
			ix, fx := buildFrozen(t, g)
			n := g.NumVertices()
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 1000; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if got, want := fx.Query(u, v), ix.Query(u, v); got != want {
					t.Fatalf("flat query(%d,%d) = %v, slice index says %v", u, v, got, want)
				}
				fd, fh, fok := fx.QueryHub(u, v)
				d, h, ok := ix.QueryHub(u, v)
				if fd != d || fok != ok || (ok && fh != h) {
					t.Fatalf("flat QueryHub(%d,%d) = (%v,%d,%v), want (%v,%d,%v)", u, v, fd, fh, fok, d, h, ok)
				}
			}
		})
	}
}

func TestFlatSaveLoadAnswersIdentically(t *testing.T) {
	g := chl.GenerateScaleFree(400, 3, 4)
	ix, fx := buildFrozen(t, g)
	path := t.TempDir() + "/ix.flat"
	if err := fx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := chl.LoadFlatFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalLabels() != fx.TotalLabels() || back.NumVertices() != fx.NumVertices() {
		t.Fatalf("shape changed: %d/%d labels, %d/%d vertices",
			back.TotalLabels(), fx.TotalLabels(), back.NumVertices(), fx.NumVertices())
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		u, v := rng.Intn(400), rng.Intn(400)
		if back.Query(u, v) != ix.Query(u, v) {
			t.Fatalf("reloaded flat index disagrees with the build at (%d,%d)", u, v)
		}
	}
	// Thaw reproduces a queryable slice-based index.
	th := back.Thaw()
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(400), rng.Intn(400)
		if th.Query(u, v) != ix.Query(u, v) {
			t.Fatalf("thawed index disagrees at (%d,%d)", u, v)
		}
	}
}

func TestLoadFlatRejectsGarbage(t *testing.T) {
	g := chl.GenerateRoadGrid(5, 5, 1)
	_, fx := buildFrozen(t, g)
	var buf bytes.Buffer
	if err := fx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cases := map[string][]byte{
		"empty":       nil,
		"wrong magic": append([]byte("CHIX"), full[4:]...), // CHIX is the slice format
		"bad version": append([]byte("CHFX\xff"), full[5:]...),
		"truncated":   full[:len(full)-9],
	}
	for name, c := range cases {
		if _, err := chl.LoadFlat(bytes.NewReader(c)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBatchEngineMatchesSequential(t *testing.T) {
	g := chl.GenerateScaleFree(500, 3, 9)
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chl.NewBatchEngine(ix)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	pairs := make([]chl.QueryPair, 5000)
	for i := range pairs {
		pairs[i] = chl.QueryPair{U: rng.Intn(500), V: rng.Intn(500)}
	}
	dists := eng.Batch(pairs)
	for i, p := range pairs {
		if dists[i] != ix.Query(p.U, p.V) {
			t.Fatalf("batch query %d (%d,%d) = %v, want %v", i, p.U, p.V, dists[i], ix.Query(p.U, p.V))
		}
	}
	// BatchInto reuses the caller's buffer.
	dst := make([]float64, len(pairs))
	eng.BatchInto(dst, pairs)
	for i := range dst {
		if dst[i] != dists[i] {
			t.Fatalf("BatchInto diverges at %d", i)
		}
	}
	// Empty batch is fine.
	if out := eng.Batch(nil); len(out) != 0 {
		t.Fatal("empty batch returned distances")
	}
}

// Directed freeze/serve coverage lives in directed_test.go; this file
// keeps asserting that undirected CHFX files are unchanged by the
// directed format extension.
func TestUndirectedFlatFileStaysVersion2(t *testing.T) {
	g := chl.GenerateRoadGrid(6, 6, 3)
	_, fx := buildFrozen(t, g)
	var buf bytes.Buffer
	if err := fx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if ver := buf.Bytes()[4]; ver != 2 {
		t.Fatalf("undirected flat file written as CHFX version %d, want 2 (byte compatibility)", ver)
	}
	if fx.Directed() {
		t.Fatal("undirected index reports Directed")
	}
}

package chl

// White-box tests for the path-expansion engine: expandPath must
// terminate with an error — never loop, recurse unboundedly, or panic —
// when its querier misbehaves. The queriers here are hostile by
// construction: witness cycles sustained by exactly-halving legs,
// inconsistent leg sums, out-of-range hubs, and (in the fuzz target)
// arbitrary byte-driven nonsense.

import (
	"errors"
	"strings"
	"testing"
)

// TestExpandPathBudgetOnHalvingCycle drives the one adversary that
// satisfies every local invariant — legs strictly positive and summing
// exactly to the parent — yet never terminates: each segment's legs are
// exactly half its distance, forever, cycling through the same three
// vertices. Only the query budget can stop it, and it must, with an
// error rather than a stack overflow.
func TestExpandPathBudgetOnHalvingCycle(t *testing.T) {
	const n = 3
	expect := map[[2]int]float64{{0, 1}: 1}
	q := func(a, b int) (float64, int, bool, error) {
		d, known := expect[[2]int{a, b}]
		if !known {
			d = 1
		}
		h := 3 - a - b // the third vertex: never an endpoint
		expect[[2]int{a, h}] = d / 2
		expect[[2]int{h, b}] = d / 2
		return d, h, true, nil
	}
	_, _, _, err := expandPath(0, 1, n, q)
	if err == nil {
		t.Fatal("halving-cycle adversary expanded without error")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("halving-cycle adversary failed with %q, want the budget error", err)
	}
}

// TestExpandPathRejectsInconsistentLegs: a witness whose legs do not
// sum to the segment distance (or are not strictly positive) is a label
// contradiction and must error, not recurse.
func TestExpandPathRejectsInconsistentLegs(t *testing.T) {
	cases := map[string]func(a, b int) (float64, int, bool, error){
		"legs do not sum": func(a, b int) (float64, int, bool, error) {
			if a == 0 && b == 1 {
				return 10, 2, true, nil
			}
			return 3, a, true, nil // 3 + 3 != 10
		},
		"zero-length leg": func(a, b int) (float64, int, bool, error) {
			if a == 0 && b == 1 {
				return 10, 2, true, nil
			}
			if a == 0 && b == 2 {
				return 0, 0, true, nil // d(u,h) == 0 with h != u
			}
			return 10, 1, true, nil
		},
		"unreachable leg": func(a, b int) (float64, int, bool, error) {
			if a == 0 && b == 1 {
				return 10, 2, true, nil
			}
			return 0, 0, false, nil
		},
		"hub out of range": func(a, b int) (float64, int, bool, error) {
			return 10, 99, true, nil
		},
	}
	for name, q := range cases {
		t.Run(name, func(t *testing.T) {
			_, _, _, err := expandPath(0, 1, 3, q)
			if err == nil {
				t.Fatal("inconsistent querier expanded without error")
			}
		})
	}
}

// TestExpandPathPropagatesQuerierErrors: a transport-level failure from
// the querier (the router's shard errors) surfaces verbatim.
func TestExpandPathPropagatesQuerierErrors(t *testing.T) {
	boom := errors.New("shard down")
	q := func(a, b int) (float64, int, bool, error) { return 0, 0, false, boom }
	if _, _, _, err := expandPath(0, 1, 3, q); !errors.Is(err, boom) {
		t.Fatalf("querier error not propagated: %v", err)
	}
	// The top-level query failing is an error; but u == v never queries.
	if _, path, ok, err := expandPath(2, 2, 3, q); err != nil || !ok || len(path) != 1 || path[0] != 2 {
		t.Fatalf("u == v must not consult the querier: (%v, %v, %v)", path, ok, err)
	}
}

// FuzzPathExpand feeds expandPath a byte-driven querier — arbitrary
// distances, hubs (in and out of range), unreachability, and errors —
// and requires that it always terminates with either an error or a
// structurally sound walk. Termination itself is the main assertion:
// a cyclic or non-contracting witness chain that escaped the budget
// would hang the fuzz worker.
func FuzzPathExpand(f *testing.F) {
	f.Add(uint8(8), uint8(0), uint8(5), []byte{})
	f.Add(uint8(16), uint8(3), uint8(3), []byte{0x1f, 0x22, 0x80, 0x07})
	f.Add(uint8(40), uint8(0), uint8(39), []byte{0xff, 0xfe, 0xfd, 0x08, 0x10, 0x20})
	f.Add(uint8(4), uint8(1), uint8(2), []byte{0x09, 0x09, 0x09, 0x09, 0x09})
	f.Fuzz(func(t *testing.T, nRaw, uRaw, vRaw uint8, data []byte) {
		n := int(nRaw%48) + 2
		u, v := int(uRaw)%n, int(vRaw)%n
		i := 0
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[i%len(data)]
			i++
			return b
		}
		q := func(a, b int) (float64, int, bool, error) {
			x := next()
			switch {
			case x&7 == 6:
				return 0, 0, false, errors.New("hostile backend")
			case x&7 == 7:
				return 0, 0, false, nil
			}
			d := float64(x >> 3)
			if x&1 == 1 {
				d /= 4 // fractional legs
			}
			h := int(next())%(n+4) - 2 // sometimes out of [0,n)
			return d, h, true, nil
		}
		d, path, ok, err := expandPath(u, v, n, q)
		if err != nil {
			return // rejected: fine, as long as it returned
		}
		if u == v {
			if !ok || d != 0 || len(path) != 1 || path[0] != u {
				t.Fatalf("u == v: got (%v, %v, %v)", d, path, ok)
			}
			return
		}
		if !ok {
			if path != nil {
				t.Fatalf("unreachable with a path: %v", path)
			}
			return
		}
		if len(path) < 2 || path[0] != u || path[len(path)-1] != v {
			t.Fatalf("accepted walk %v does not run %d→%d", path, u, v)
		}
		if len(path) > 2*n+10 {
			t.Fatalf("accepted walk of %d vertices on an n=%d index", len(path), n)
		}
		for _, w := range path {
			if w < 0 || w >= n {
				t.Fatalf("accepted walk %v leaves [0,%d)", path, n)
			}
		}
	})
}

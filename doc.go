// Package chl is a Go implementation of Canonical Hub Labeling (CHL)
// construction and point-to-point shortest-distance (PPSD) querying for
// weighted graphs, reproducing "Planting Trees for scalable and efficient
// Canonical Hub Labeling" (Lakhotia, Dong, Kannan, Prasanna — VLDB 2019,
// arXiv:1907.00140).
//
// # Overview
//
// A hub labeling assigns every vertex v a small set of (hub, distance)
// pairs such that any PPSD query can be answered by intersecting two label
// sets. Given a vertex ranking R (a "network hierarchy"), the Canonical Hub
// Labeling is the unique minimal labeling that respects R: for every
// connected pair (u,v), exactly the highest-ranked vertex on their shortest
// paths is a hub of both.
//
// The package implements every construction algorithm from the paper:
//
//   - AlgoSeqPLL — sequential pruned landmark labeling (Akiba et al.), the
//     reference CHL constructor.
//   - AlgoSParaPLL — shared-memory paraPLL (Qiu et al.): fast, parallel,
//     but NOT canonical (redundant labels grow with the thread count).
//   - AlgoLCC — parallel Label Construction and Cleaning (§4.1): rank
//     queries make optimistic parallel mistakes recoverable; a cleaning
//     pass deletes them. Output: the CHL.
//   - AlgoGLL — Global Local Labeling (§4.2): interleaved cleaning against
//     a small local table, lock-free global reads. Output: the CHL.
//   - AlgoPLaNT — "Prune Labels and (do) Not (prune) Trees" (§5.2):
//     embarrassingly parallel canonical labeling via ancestor-tracking
//     unpruned Dijkstras. Output: the CHL, with no dependence on other
//     trees' labels.
//   - AlgoDParaPLL, AlgoDGLL, AlgoDPLaNT, AlgoHybrid — the distributed
//     algorithms of §3/§5, executed on a simulated message-passing cluster
//     that meters every byte (see below).
//
// and the three distributed query modes of §6 (QLSN, QFDL, QDOL).
//
// # Quick start
//
//	g := chl.GenerateRoadGrid(64, 64, 1)            // or chl.ReadDIMACSFile(...)
//	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL})
//	if err != nil { ... }
//	d := ix.Query(17, 3942)                         // exact shortest distance
//
// # Serving
//
// Build once, freeze, serve many times. Freeze packs the labeling into a
// FlatIndex — CSR offsets plus one contiguous (hub, dist) entry array —
// which queries ~2× faster than the slice-based Index, persists to a
// versioned binary format (FlatIndex.Save / LoadFlat), and fans batches
// out over all cores through NewBatchEngine:
//
//	fx, _ := ix.Freeze()
//	fx.SaveFile("road.flat")                        // once
//	fx, _ = chl.OpenFlat("road.flat")               // every serving process, mmap-backed
//	eng := chl.NewBatchEngineFlat(fx)
//	dists := eng.Batch(pairs)                       // parallel, zero-alloc hot path
//
// OpenFlat serves the file's label arrays zero-copy from a memory
// mapping when the host allows (LoadFlatMapped), falling back to the
// copying loader (LoadFlatFile) otherwise — the kernel pages labels in
// on demand and serving processes of the same file share one physical
// copy.
//
// Directed indexes (AlgoSeqPLL / AlgoPLaNT over a directed graph) freeze
// and serve through the same stack: Freeze packs both label halves —
// forward runs (hubs reachable from v) and backward runs (hubs that
// reach v) — into a CHFX version-3 file, every kernel answers u→v as
// the forward(u) × backward(v) hub join, and the answer caches key on
// ordered pairs (NewDirectedCache) so d(u→v) and d(v→u) never alias.
// Undirected files stay version 2, byte-identical.
//
// # Compressed labels
//
// FlatIndex.Compress converts either directedness to the compressed
// label format (CHFX version 4): labels split into blocks whose hub ids
// are delta+varint coded and whose distances pack as small integers
// where the float32 bits allow. Files shrink 59–71% on the benchmark
// fixtures and every query kernel answers bit-identically through a
// block-skipping merge join, at roughly 2–2.5× the fixed-width query
// cost. Compress is explicit — Save writes v4 only for a compressed
// index, so existing v2/v3 outputs stay byte-identical — and Decompress
// inverts it exactly. Index.FreezeCompressed is Freeze+Compress;
// cmd/chlquery exposes the conversion as -compress; cmd/chlbench is the
// standing harness comparing both kernels and both serving formats
// (BENCH_chl.json). The whole serving stack below — Server, shard
// slicing, replicated clusters, the router — serves either format;
// FlatIndex.Compressed reports which one an index holds.
//
// The production tier on top is Server: a hot-swappable Snapshot of the
// index behind an atomic pointer, an optional sharded LRU Cache of full
// answers (NewCache / NewDirectedCache, per snapshot — a swap can never
// serve stale distances), and an HTTP Handler. Server.Reload publishes
// a new index file with zero dropped in-flight queries: old queries
// drain on their generation, whose mapping is unmapped by the last one
// out.
//
//	s, _ := chl.NewServer("road.flat", 1<<16)       // mmap + 64k-answer cache
//	http.ListenAndServe(":8080", s.Handler())       // /dist /batch /stats /reload /healthz
//	s.Reload("road-v2.flat")                        // hot swap, no downtime
//
// cmd/chlquery wraps this flow (-save / -load / -serve / -cache /
// -prefault) and additionally reloads on SIGHUP; README.md documents the
// HTTP API's request and response schemas. Both the server and the
// router below export Prometheus text-format metrics (per-endpoint
// latency histograms, cache and index gauges) at GET /metrics.
//
// # Sharded serving
//
// An index too large or too hot for one process is sliced across a
// cluster: SaveShards partitions the vertex set with a consistent-hash
// ring (internal/shard) and writes one ordinary flat index file per
// shard — each holding only its owned vertices' label runs — plus a
// cluster.json manifest. Every shard file is served by the ordinary
// Server (SetShard adds the ownership checks and the internal
// /shardquery row-fetch endpoint), and a Router in front answers the
// same API as a single server, with bit-identical answers:
//
//	m, _ := fx.SaveShards("cluster", 3, 64, 1)       // 3 shard files + cluster.json
//	// per shard process: chlquery -serve :808N -manifest cluster/cluster.json -shard N
//	r, _ := chl.NewRouter(chl.RouterConfig{Manifest: m, Addrs: addrs, CacheSize: 1 << 16})
//	http.ListenAndServe(":8080", r.Handler())
//
// Routing is QDOL-style (§6): a query whose endpoints share a shard is
// forwarded whole and answered there; a cross-shard query fetches the
// two packed label rows and hub-joins them at the router with the same
// kernels BatchEngine serves with. Each shard keeps its own snapshot
// hot-swap and answer cache; the router watches shard generations and
// retires its cluster-level cache whenever a shard reloads, and degrades
// per shard — failures 502 with a body naming exactly the shards that
// failed. Any shard may be served by a replica group (several processes
// over the same slice file, RouterConfig.ReplicaAddrs or a v2
// manifest's replica_addrs): the router load-balances across healthy
// replicas with power-of-two-choices, retries failed requests on the
// next replica — a query fails only when every replica of a shard is
// down — and ejects repeatedly failing replicas until a timed probation
// probe readmits them. Directed clusters work end to end: the manifest
// records directedness, shards slice both label halves, cross-shard
// joins fetch u's forward and v's backward row, and /dist?u=&v= is the
// u→v distance on every tier. cmd/chlrouter is the standalone router;
// ARCHITECTURE.md ("Sharded serving", "Replicated serving", "Directed
// serving") has the topology, file layout, and protocol.
//
// # Traffic shaping
//
// The router's front door is shaped (all knobs default to off).
// Identical in-flight (u,v) queries collapse into one backend round
// trip — duplicate suppression behind the answer cache, keyed by the
// cache's pair discipline plus a needs-witness-hub bit. With
// RouterConfig.HedgeDelay set, a shard request that has not answered in
// time fires once more at a second replica and the first answer wins;
// the canceled loser is health-neutral. RouterConfig.MaxInFlight and
// ClientQPS/ClientBurst shed excess HTTP load with a 429 whose JSON
// body carries reason ("over_capacity" or "client_quota") and
// retry_after_seconds, plus a whole-second Retry-After header; clients
// are keyed on the X-Client-ID header (QuotaKeyHeader) with the remote
// host as fallback, and operator endpoints are never shed. Cache
// identity is content-addressed: responses carry a hash of the
// snapshot's bytes, so restarts and same-content reloads keep the
// router's cache while real content changes retire it exactly once.
// Everything time-driven — hedge timers, ejection, probation, token
// buckets — reads RouterConfig.Clock, so tests inject FakeClock and
// step it deterministically. ARCHITECTURE.md ("Traffic shaping") has
// the design.
//
// # Query workloads
//
// Three richer workloads run over the same labels, on every storage
// format and deployment shape, with no new file formats. Path
// reconstruction (FlatIndex.Path, Server.Path, Router.Path, GET
// /paths) recursively expands witness hubs into the actual vertex
// walk; consecutive waypoints are segments whose own Query distances
// sum to the total exactly, and a bounded query budget guarantees
// termination even against inconsistent labels. K-nearest neighbors
// (BatchEngine.KNN, Router.KNN, GET /knn) runs a k-way merge over a
// label-inverted index derived lazily at load time — never serialized,
// so the pinned file formats are untouched — returning exactly the
// (dist, hub) pairs QueryHub would answer. Distance matrices
// (FlatIndex.MatrixRows, Router.Matrix, POST /matrix) scatter each
// source run once and probe every target in a single pass, streamed
// as NDJSON one row at a time so neither end materializes the matrix.
// On the router, /paths fills the answer cache with its segments,
// /knn deposits its results as pair answers, and /matrix bypasses the
// cache; a parity harness pins all three bit-identical to an
// in-memory Dijkstra oracle across every cell of the deployment
// matrix. ARCHITECTURE.md ("Query workloads") has the design.
//
// # Dynamic updates
//
// Server.EnableUpdates(graph, journal) layers a delta overlay
// (internal/delta) over the frozen index so POST /update serves exact
// answers for a mutated graph without a rebuild: edge patches ("add u v
// w" / "del u v" / "set u v w" lines, ParsePatchLog) reduce against the
// base graph, and every query becomes the min of the frozen label join
// and a corrected path — a Dijkstra over the patch vertices seeded by
// frozen distances, falling back to an exact search whenever a frozen
// seed might thread a removed edge. Untouched pairs stay bit-identical;
// corrected answers that lose the frozen witness report hub -1. Each
// accepted batch is journaled-ahead (replayed on restart), advances the
// overlay epoch, and retires the answer caches exactly once — the epoch
// extends the snapshot identity and the router's singleflight keys the
// same way content hashes do. In a cluster the router owns the overlay
// (RouterConfig.BaseGraph / UpdateJournal): shards stay frozen and the
// router corrects locally against pinned patch-vertex label rows, even
// for same-shard pairs. POST /compact folds the patches into a fresh
// snapshot — rebuild over the patched graph, rename, hot-swap with zero
// dropped queries, truncate the journal. ARCHITECTURE.md ("Dynamic
// updates") has the correction math and the operator rules.
//
// # Distributed execution
//
// The paper runs on a 64-node MPI cluster. This package simulates that
// cluster with one goroutine per node and collectives that copy and meter
// all traffic, so the quantities the paper's distributed evaluation is
// about — label traffic, synchronizations, per-node memory, label-size
// growth — are reproduced exactly; see DESIGN.md for the substitution
// rationale. Use Options.Nodes > 1 with a distributed algorithm, then
// NewQueryEngine to query under QLSN/QFDL/QDOL.
//
// # Rankings
//
// Rankings are chl.Order values: RankByDegree (the paper's choice for
// scale-free graphs), RankByBetweenness (sampled approximate betweenness,
// the paper's choice for road networks), RankAuto (picks between them),
// or any custom permutation via RankFromPerm.
//
// # Static analysis
//
// The serving stack's invariants — the injectable Clock discipline, the
// centralized pairKey/flightKeyFor key construction, the JSON error
// contract, distance bit-exactness, and the snapshot acquire/release
// pairing — are enforced mechanically by cmd/chlvet, the repository's
// own vet tool (five analyzers in internal/analysis, run clean by CI on
// every change). A justified //chlvet:allow annotation exempts a line;
// see ARCHITECTURE.md ("Static analysis").
package chl

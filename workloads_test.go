package chl_test

// Black-box tests for the rich query workloads: cache-keyspace
// discipline (/knn and /matrix must never collide with /dist pair
// keys), the directed ordered-pair regression for /paths, the
// bounded-buffer streaming contract of /matrix, and shard-tier
// rejection of workloads that need the whole vertex space.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	chl "repro"
)

// TestRichWorkloadCacheKeying: after /knn(u,k) and a /matrix sweep, the
// pair (u,k) and every (source,target) pair must still answer /dist
// with the true distance — a workload parameter leaking into the pair
// keyspace (k cached as a vertex id, say) would surface here as a wrong
// cached answer. Also pins the deliberate caching asymmetry: /knn seeds
// the pair cache (its results are complete pair answers), /matrix stays
// out of it.
func TestRichWorkloadCacheKeying(t *testing.T) {
	g := chl.GenerateScaleFree(300, 3, 17)
	fx, _ := buildFlat(t, g)
	tc := newTestCluster(t, fx, clusterSpec{shards: 3, cacheSize: 1 << 12})
	defer tc.close()
	ts := httptest.NewServer(tc.router.Handler())
	defer ts.Close()

	// /knn for (u, k) pairs where k is itself a valid vertex id, so a
	// keyspace collision would be silent, not a range error.
	for _, p := range [][2]int{{3, 5}, {5, 3}, {10, 250}, {250, 10}} {
		u, k := p[0], p[1]
		var knn knnParityResp
		getParity(t, fmt.Sprintf("%s/knn?u=%d&k=%d", ts.URL, u, k), &knn)
		var d distParityResp
		getParity(t, fmt.Sprintf("%s/dist?u=%d&v=%d", ts.URL, u, k), &d)
		wd, wh, wok := fx.QueryHub(u, k)
		if d.Reachable != wok || (wok && (d.Dist != wd || d.Hub != wh)) {
			t.Fatalf("/dist(%d,%d) after /knn(u=%d,k=%d) = (%v,%v,hub %d), index says (%v,%v,hub %d)",
				u, k, u, k, d.Dist, d.Reachable, d.Hub, wd, wok, wh)
		}
		// The seeding direction: every /knn result must already be the
		// /dist answer for its pair.
		for _, nb := range knn.Neighbors {
			var nd distParityResp
			getParity(t, fmt.Sprintf("%s/dist?u=%d&v=%d", ts.URL, u, nb.V), &nd)
			if !nd.Reachable || nd.Dist != nb.Dist || nd.Hub != nb.Hub {
				t.Fatalf("/dist(%d,%d) = (%v,%v,hub %d) disagrees with the /knn seed (%v,hub %d)",
					u, nb.V, nd.Dist, nd.Reachable, nd.Hub, nb.Dist, nb.Hub)
			}
		}
	}

	// /knn seeded the cache: a fresh identical /knn plus the /dist
	// re-checks above must have produced hits.
	st := tc.router.Stats()
	if st.Cache == nil || st.Cache.Hits == 0 {
		t.Fatalf("no cache hits after /knn seeding and /dist re-reads: %+v", st.Cache)
	}

	// /matrix must not grow the pair cache.
	entriesBefore := tc.router.Stats().Cache.Entries
	body, _ := json.Marshal(map[string]any{"sources": []int{1, 2, 60}, "targets": []int{7, 8, 9, 200}})
	resp, err := http.Post(ts.URL+"/matrix", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/matrix status %d", resp.StatusCode)
	}
	if after := tc.router.Stats().Cache.Entries; after != entriesBefore {
		t.Fatalf("/matrix changed the pair cache: %d entries -> %d", entriesBefore, after)
	}
	// And the swept pairs still answer /dist correctly.
	for _, u := range []int{1, 2, 60} {
		for _, v := range []int{7, 8, 9, 200} {
			var d distParityResp
			getParity(t, fmt.Sprintf("%s/dist?u=%d&v=%d", ts.URL, u, v), &d)
			if want := fx.Query(u, v); (d.Reachable && d.Dist != want) || (!d.Reachable) != (want == chl.Infinity) {
				t.Fatalf("/dist(%d,%d) after /matrix = (%v,%v), index says %v", u, v, d.Dist, d.Reachable, want)
			}
		}
	}
}

// TestDirectedPathsOrderedPairs: on a directed cluster, /paths(u,v) and
// /paths(v,u) are different questions with different answers, and
// asking one must never pollute the cache for the other — the classic
// unordered-pairKey regression, pinned on a provably asymmetric pair.
func TestDirectedPathsOrderedPairs(t *testing.T) {
	g := chl.GenerateRandomDirected(240, 1200, 9, 31)
	ix, fx := buildDirectedFrozen(t, g)
	u, v := findAsymmetricPair(t, ix)
	tc := newTestCluster(t, fx, clusterSpec{shards: 2, cacheSize: 1 << 12})
	defer tc.close()
	ts := httptest.NewServer(tc.router.Handler())
	defer ts.Close()

	duv, dvu := ix.Query(u, v), ix.Query(v, u)
	if duv == dvu {
		t.Fatalf("fixture self-check: pair (%d,%d) is not asymmetric", u, v)
	}
	// Forward first (fills the cache with the u→v segments), then the
	// reverse — each must match its own direction of the index.
	for _, ord := range [][2]float64{{float64(u), duv}, {float64(v), dvu}} {
		a, b := u, v
		if int(ord[0]) == v {
			a, b = v, u
		}
		var r pathsParityResp
		getParity(t, fmt.Sprintf("%s/paths?u=%d&v=%d", ts.URL, a, b), &r)
		if !r.Reachable || r.Dist != ord[1] {
			t.Fatalf("/paths(%d,%d) = (%v,%v), directed index says %v", a, b, r.Dist, r.Reachable, ord[1])
		}
		if r.Path[0] != a || r.Path[len(r.Path)-1] != b {
			t.Fatalf("/paths(%d,%d) walk %v runs the wrong way", a, b, r.Path)
		}
		// Segments re-sum in the asked direction.
		var sum float64
		for i := 0; i+1 < len(r.Path); i++ {
			sum += ix.Query(r.Path[i], r.Path[i+1])
		}
		if sum != r.Dist {
			t.Fatalf("/paths(%d,%d): directed segments re-sum to %v, total says %v", a, b, sum, r.Dist)
		}
	}
}

// flushSpy is a ResponseWriter that measures streaming discipline: the
// largest number of body bytes ever buffered between two flushes.
type flushSpy struct {
	header  http.Header
	status  int
	cur     int
	max     int
	total   int
	flushes int
}

func newFlushSpy() *flushSpy { return &flushSpy{header: http.Header{}, status: http.StatusOK} }

func (s *flushSpy) Header() http.Header { return s.header }

func (s *flushSpy) WriteHeader(code int) { s.status = code }

func (s *flushSpy) Write(b []byte) (int, error) {
	s.cur += len(b)
	s.total += len(b)
	if s.cur > s.max {
		s.max = s.cur
	}
	return len(b), nil
}

func (s *flushSpy) Flush() { s.flushes++; s.cur = 0 }

// TestMatrixStreamsBounded: a many-to-many /matrix response is flushed
// row by row — the peak buffered span between flushes stays at one row
// (header included), a small fraction of the whole body, no matter how
// large the matrix. Runs through Server.Handler(), so it also proves
// the metrics middleware forwards Flush to the underlying writer.
func TestMatrixStreamsBounded(t *testing.T) {
	g := chl.GenerateScaleFree(400, 3, 19)
	fx, _ := buildFlat(t, g)
	s := chl.NewServerFromFlat(fx, 0)
	defer s.Close()
	h := s.Handler()

	var sources, targets []int
	for i := 0; i < 120; i++ {
		sources = append(sources, i)
		targets = append(targets, 399-i)
	}
	body, _ := json.Marshal(map[string]any{"sources": sources, "targets": targets})
	req := httptest.NewRequest(http.MethodPost, "/matrix", bytes.NewReader(body))
	spy := newFlushSpy()
	h.ServeHTTP(spy, req)
	if spy.status != http.StatusOK {
		t.Fatalf("/matrix status %d", spy.status)
	}
	if spy.flushes < len(sources)+1 {
		t.Fatalf("/matrix flushed %d times for %d rows — not streaming per row", spy.flushes, len(sources))
	}
	if spy.max*8 > spy.total {
		t.Fatalf("/matrix buffered up to %d of %d body bytes between flushes — response is being materialized", spy.max, spy.total)
	}
}

// TestServerWorkloadGoAPI: the Server-level Path and KNN methods answer
// identically to the flat index they snapshot — the HTTP handlers are
// thin shells over these, so this pins the Go API surface directly.
func TestServerWorkloadGoAPI(t *testing.T) {
	g := chl.GenerateScaleFree(180, 3, 29)
	fx, _ := buildFlat(t, g)
	s := chl.NewServerFromFlat(fx, 1<<10)
	defer s.Close()
	for _, p := range [][2]int{{0, 99}, {17, 3}, {5, 5}} {
		wd, wp, wok, werr := fx.Path(p[0], p[1])
		gd, gp, gok, gerr := s.Path(p[0], p[1])
		if gd != wd || gok != wok || (gerr == nil) != (werr == nil) || len(gp) != len(wp) {
			t.Fatalf("Server.Path(%d,%d) = (%v,%v,%v,%v), FlatIndex.Path says (%v,%v,%v,%v)",
				p[0], p[1], gd, gp, gok, gerr, wd, wp, wok, werr)
		}
		for i := range wp {
			if gp[i] != wp[i] {
				t.Fatalf("Server.Path(%d,%d) walk %v != %v", p[0], p[1], gp, wp)
			}
		}
	}
	nbs := s.KNN(7, 5)
	if len(nbs) == 0 {
		t.Fatal("Server.KNN(7,5) returned nothing on a connected scale-free fixture")
	}
	for _, nb := range nbs {
		if d, h, ok := fx.QueryHub(7, nb.V); !ok || d != nb.Dist || h != nb.Hub {
			t.Fatalf("Server.KNN neighbor (%d,%v,hub %d) disagrees with QueryHub (%v,%v,hub %d)",
				nb.V, nb.Dist, nb.Hub, d, ok, h)
		}
	}
}

// TestWorkloadEndpointErrors: every malformed request draws the right
// status with a JSON error body, on both the single-process server and
// the router — bad ids and parameters must never reach a kernel.
func TestWorkloadEndpointErrors(t *testing.T) {
	g := chl.GenerateScaleFree(120, 3, 37)
	fx, _ := buildFlat(t, g)
	flatTS := httptest.NewServer(chl.NewServerFromFlat(fx, 0).Handler())
	defer flatTS.Close()
	tc := newTestCluster(t, fx, clusterSpec{shards: 2, cacheSize: 0})
	defer tc.close()
	routerTS := httptest.NewServer(tc.router.Handler())
	defer routerTS.Close()

	for _, base := range []string{flatTS.URL, routerTS.URL} {
		probes := []struct {
			method, path, body string
			want               int
		}{
			{http.MethodGet, "/paths", "", http.StatusBadRequest},           // missing params
			{http.MethodGet, "/paths?u=0&v=120", "", http.StatusBadRequest}, // v out of range
			{http.MethodGet, "/paths?u=-1&v=0", "", http.StatusBadRequest},  // u out of range
			{http.MethodPost, "/paths?u=0&v=1", "", http.StatusMethodNotAllowed},
			{http.MethodGet, "/knn?u=0", "", http.StatusBadRequest},         // missing k
			{http.MethodGet, "/knn?u=0&k=0", "", http.StatusBadRequest},     // k too small
			{http.MethodGet, "/knn?u=0&k=bogus", "", http.StatusBadRequest}, // k not a number
			{http.MethodGet, "/knn?u=120&k=3", "", http.StatusBadRequest},   // u out of range
			{http.MethodPost, "/knn?u=0&k=3", "", http.StatusMethodNotAllowed},
			{http.MethodGet, "/matrix", "", http.StatusMethodNotAllowed},
			{http.MethodPost, "/matrix", "not json", http.StatusBadRequest},
			{http.MethodPost, "/matrix", `{"sources":[],"targets":[1]}`, http.StatusBadRequest},
			{http.MethodPost, "/matrix", `{"sources":[1],"targets":[]}`, http.StatusBadRequest},
			{http.MethodPost, "/matrix", `{"sources":[500],"targets":[1]}`, http.StatusBadRequest},
			{http.MethodPost, "/matrix", `{"sources":[1],"targets":[-3]}`, http.StatusBadRequest},
		}
		for _, p := range probes {
			req, err := http.NewRequest(p.method, base+p.path, bytes.NewReader([]byte(p.body)))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			var body struct {
				Error string `json:"error"`
			}
			dec := json.NewDecoder(resp.Body)
			decErr := dec.Decode(&body)
			resp.Body.Close()
			if resp.StatusCode != p.want {
				t.Fatalf("%s %s (%q) on %s: status %d, want %d", p.method, p.path, p.body, base, resp.StatusCode, p.want)
			}
			if decErr != nil || body.Error == "" {
				t.Fatalf("%s %s on %s: no JSON error body (%v)", p.method, p.path, base, decErr)
			}
		}
	}
}

// TestRichWorkloadsRejectedOnShards: a shard server owns only its slice
// of the vertex space, so /paths, /knn, and /matrix sent directly to it
// must 421 (route through the router); /shardscan, the internal scan
// protocol, conversely 404s on a plain unsharded server.
func TestRichWorkloadsRejectedOnShards(t *testing.T) {
	g := chl.GenerateScaleFree(200, 3, 23)
	fx, _ := buildFlat(t, g)
	tc := newTestCluster(t, fx, clusterSpec{shards: 2, cacheSize: 0})
	defer tc.close()
	shardURL := tc.backends[0][0].URL

	for _, probe := range []struct {
		method, path string
	}{
		{http.MethodGet, "/paths?u=0&v=1"},
		{http.MethodGet, "/knn?u=0&k=3"},
		{http.MethodPost, "/matrix"},
	} {
		var resp *http.Response
		var err error
		if probe.method == http.MethodGet {
			resp, err = http.Get(shardURL + probe.path)
		} else {
			resp, err = http.Post(shardURL+probe.path, "application/json",
				bytes.NewReader([]byte(`{"sources":[0],"targets":[1]}`)))
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("%s %s on a shard server: status %d, want 421", probe.method, probe.path, resp.StatusCode)
		}
	}

	flat := chl.NewServerFromFlat(fx, 0)
	defer flat.Close()
	flatTS := httptest.NewServer(flat.Handler())
	defer flatTS.Close()
	resp, err := http.Post(flatTS.URL+"/shardscan", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/shardscan on an unsharded server: status %d, want 404", resp.StatusCode)
	}
}

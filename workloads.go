package chl

import (
	"fmt"
	"sort"

	"repro/internal/delta"
	"repro/internal/label"
)

// Rich query workloads over the packed-label substrate: shortest-path
// reconstruction (/paths), top-k nearest targets (/knn), and
// one-to-many/many-to-many distance matrices (/matrix). Every workload
// reuses the pairwise join kernels — same float64 summation, same
// smallest-hub tie-break — so its numbers agree bit-for-bit with /dist
// on every tier and storage format. ARCHITECTURE.md ("Query workloads")
// walks through each one.

// hubQuerier answers one distance-with-witness query during path
// expansion. The three tiers plug in their own: FlatIndex.QueryHub
// (never errs), BatchEngine.QueryHub (cache-through), and the router's
// queryHub (cross-shard rows joined at the router, witness ranks
// resolved through the resolve batcher).
type hubQuerier func(u, v int) (dist float64, hub int, ok bool, err error)

// expandPath reconstructs the witness chain between u and v by
// recursive hub expansion: the witness hub h of (u,v) lies on a
// shortest u→v path, so the chain of (u,v) is the chain of (u,h)
// followed by the chain of (h,v); a segment whose witness is one of
// its own endpoints cannot be refined further from labels alone and
// stays atomic. The result is the maximally refined via-vertex
// sequence — every returned vertex provably lies on one shortest u→v
// path, in order, and consecutive pairs' label distances sum to the
// total bit-for-bit (each leg's distance is itself the /dist answer
// for that pair).
//
// n bounds the work: a shortest path over positive weights visits each
// vertex once, so a well-formed chain makes at most ~2n queries. A
// querier that misbehaves — witness cycles, legs that do not sum, zero
// or negative legs, out-of-range hubs — is detected and reported as an
// error before the budget can loop; FuzzPathExpand drives this with
// hostile queriers.
func expandPath(u, v, n int, q hubQuerier) (dist float64, path []int, reachable bool, err error) {
	if u == v {
		return 0, []int{u}, true, nil
	}
	d, h, ok, err := q(u, v)
	if err != nil {
		return 0, nil, false, err
	}
	if !ok {
		return Infinity, nil, false, nil
	}
	budget := 2*n + 8
	path, err = appendChain(make([]int, 0, 8), u, v, d, h, n, q, &budget)
	if err != nil {
		return 0, nil, false, err
	}
	return d, append(path, v), true, nil
}

// appendChain appends the refined chain of the segment u→v — known to
// have distance d and witness hub h — to dst, including u and
// excluding v.
func appendChain(dst []int, u, v int, d float64, h int, n int, q hubQuerier, budget *int) ([]int, error) {
	if h == u || h == v {
		return append(dst, u), nil
	}
	if h < 0 || h >= n {
		return nil, fmt.Errorf("chl: witness hub %d of segment %d→%d outside [0,%d) — corrupt labels?", h, u, v, n)
	}
	dl, hl, okl, err := chainQuery(u, h, q, budget)
	if err != nil {
		return nil, err
	}
	dr, hr, okr, err := chainQuery(h, v, q, budget)
	if err != nil {
		return nil, err
	}
	// The witness proves d(u,h)+d(h,v) == d with both legs strictly
	// inside (0,d); anything else means the labels (or a hostile
	// querier) contradict themselves, and recursing on such legs could
	// fail to shrink the problem.
	if !okl || !okr || dl+dr != d || !(dl > 0) || !(dr > 0) {
		return nil, fmt.Errorf("chl: witness %d of segment %d→%d has inconsistent legs (%g + %g vs %g) — corrupt labels?", h, u, v, dl, dr, d)
	}
	if dst, err = appendChain(dst, u, h, dl, hl, n, q, budget); err != nil {
		return nil, err
	}
	return appendChain(dst, h, v, dr, hr, n, q, budget)
}

// chainQuery is one budgeted querier call during chain refinement.
func chainQuery(u, v int, q hubQuerier, budget *int) (float64, int, bool, error) {
	if *budget--; *budget < 0 {
		return 0, 0, false, fmt.Errorf("chl: path expansion exceeded its query budget — cyclic witness chain?")
	}
	return q(u, v)
}

// Path reconstructs the shortest-path witness chain between u and v
// (original ids): the distance, the maximally refined via-vertex
// sequence from u to v inclusive, and reachability. Consecutive
// vertices of the sequence are segments whose own Query distances sum
// to dist exactly. Unreachable pairs return (Infinity, nil, false,
// nil); an error means the labels are inconsistent.
func (fx *FlatIndex) Path(u, v int) (dist float64, path []int, reachable bool, err error) {
	return expandPath(u, v, fx.NumVertices(), func(a, b int) (float64, int, bool, error) {
		d, h, ok := fx.QueryHub(a, b)
		return d, h, ok, nil
	})
}

// Path is FlatIndex.Path through the engine's cache: every segment
// query fills (and is served from) the pair cache when one is
// attached. Under a delta overlay witness-hub expansion is unavailable
// (frozen hubs need not lie on patched shortest paths), so the chain
// comes from an exact predecessor Dijkstra on the patched graph; each
// leg is a patched edge, so consecutive Query distances still sum to
// dist exactly.
func (e *BatchEngine) Path(u, v int) (dist float64, path []int, reachable bool, err error) {
	if e.ov != nil {
		path, dist, err := e.ov.ShortestPath(u, v)
		if err != nil {
			return 0, nil, false, err
		}
		if path == nil {
			return Infinity, nil, false, nil
		}
		return dist, path, true, nil
	}
	return expandPath(u, v, e.fx.NumVertices(), func(a, b int) (float64, int, bool, error) {
		d, h, ok := e.QueryHub(a, b)
		return d, h, ok, nil
	})
}

// Neighbor is one top-k result: a target vertex, its exact distance
// from the source, and the witness hub (original id) that proved it —
// the same triple /dist answers for the pair.
type Neighbor struct {
	V    int     `json:"v"`
	Dist float64 `json:"dist"`
	Hub  int     `json:"hub"`
}

// KNN returns up to k nearest targets from u (original ids), excluding
// u itself, sorted by (distance, vertex). Distances and witness hubs
// are bit-identical to QueryHub on each (u, target) pair; on directed
// indexes targets are vertices reachable *from* u. The first call
// builds the index's inverted half (see FlatIndex.inverted).
func (fx *FlatIndex) KNN(u, k int) []Neighbor {
	return fx.KNNFromRun(fx.forwardRun(u), k, u)
}

// KNNFromRun is KNN for a source label run that need not live in this
// index — the shard-scan case, where the router ships the source's
// forward run to every shard and each shard scans only its own
// vertices' postings. exclude names a vertex to omit (the source), or
// -1.
func (fx *FlatIndex) KNNFromRun(run []uint64, k, exclude int) []Neighbor {
	raw := fx.inverted().TopK(run, k, exclude)
	out := make([]Neighbor, len(raw))
	for i, nb := range raw {
		out[i] = Neighbor{V: nb.V, Dist: nb.Dist, Hub: fx.perm[nb.Hub]}
	}
	return out
}

// KNN is FlatIndex.KNN plus cache seeding: each result is a complete
// (distance, witness) pair answer, so it is deposited into the
// engine's pair cache — later /dist queries for those pairs hit
// without touching the label arrays. Only true pair answers enter the
// cache; the k parameter never leaks into the pair keyspace. Under a
// delta overlay the inverted-index scan would rank by frozen
// distances, so candidates come from an exact patched-graph row
// instead; each winner is re-answered through QueryHub so distance,
// witness, and the cache deposit agree bit-for-bit with /dist.
func (e *BatchEngine) KNN(u, k int) []Neighbor {
	if e.ov != nil {
		return topKFromRow(mustOverlayRow(e.ov, u), u, k, func(v int) (float64, int, bool) {
			return e.QueryHub(u, v)
		})
	}
	out := e.fx.KNN(u, k)
	if e.cache != nil {
		for _, nb := range out {
			e.cache.Put(u, nb.V, Answer{Dist: nb.Dist, Hub: nb.Hub, Reachable: true})
		}
	}
	return out
}

// topKFromRow selects the k nearest targets from a full distance row —
// ordered by (distance, vertex), excluding the source — and answers
// each winner through the tier's own pair querier so the reported
// (distance, hub) triple is exactly the tier's /dist answer for that
// pair. Both overlay-serving tiers (engine and router) funnel their
// /knn through this so their outputs stay identical.
func topKFromRow(row []float64, source, k int, pairQ func(v int) (float64, int, bool)) []Neighbor {
	if k <= 0 {
		return []Neighbor{}
	}
	cand := make([]int, 0, len(row))
	for v, d := range row {
		if v != source && d < Infinity {
			cand = append(cand, v)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if row[cand[i]] != row[cand[j]] {
			return row[cand[i]] < row[cand[j]]
		}
		return cand[i] < cand[j]
	})
	if len(cand) > k {
		cand = cand[:k]
	}
	out := make([]Neighbor, len(cand))
	for i, v := range cand {
		d, h, _ := pairQ(v)
		out[i] = Neighbor{V: v, Dist: d, Hub: h}
	}
	return out
}

// MatrixRowInto fills dst[j] with the distance from the source whose
// forward run is run to targets[j] (Infinity when unreachable) — one
// scatter of the source run, then one probe per target, instead of a
// fresh two-sided join per pair. Compressed targets are probed
// blockwise, skipping blocks whose hub interval cannot intersect the
// source's (the CHFX v4 header summaries). dst must have
// len(targets); the scratch is the caller's (one per goroutine).
func (fx *FlatIndex) MatrixRowInto(s *QueryScratch, dst []float64, run []uint64, targets []int) {
	rs := label.ScatterRun(s, run)
	if fx.cflat != nil {
		cb := fx.cbackward()
		for j, t := range targets {
			dst[j], _, _ = rs.ProbeCompressed(cb.Run(t))
		}
		return
	}
	b := fx.backward()
	for j, t := range targets {
		dst[j], _, _ = rs.Probe(b.PackedRun(t))
	}
}

// MatrixRows streams the sources × targets distance matrix row by row:
// emit is called once per source, in order, with a row of
// len(targets) distances (Infinity for unreachable). The row slice is
// reused between calls — emit must consume it before returning (the
// streaming discipline that keeps a many-to-many query's memory at one
// row, not the full matrix). A non-nil error from emit aborts the
// scan.
func (fx *FlatIndex) MatrixRows(sources, targets []int, emit func(u int, dists []float64) error) error {
	s := fx.NewScratch()
	row := make([]float64, len(targets))
	for _, u := range sources {
		fx.MatrixRowInto(s, row, fx.forwardRun(u), targets)
		if err := emit(u, row); err != nil {
			return err
		}
	}
	return nil
}

// MatrixRows streams the matrix through the engine: the frozen
// scatter-probe kernel when no overlay is attached, exact patched
// single-source rows under one. The patched rows are whole-graph
// Dijkstras projected onto the target set — every cell is the exact
// patched distance, bit-identical to /dist on the same pair, and the
// one-row-at-a-time streaming discipline is preserved.
func (e *BatchEngine) MatrixRows(sources, targets []int, emit func(u int, dists []float64) error) error {
	if e.ov == nil {
		return e.fx.MatrixRows(sources, targets, emit)
	}
	row := make([]float64, len(targets))
	for _, u := range sources {
		full := mustOverlayRow(e.ov, u)
		for j, t := range targets {
			row[j] = full[t]
		}
		if err := emit(u, row); err != nil {
			return err
		}
	}
	return nil
}

// mustOverlayRow is Overlay.Row for overlays past construction — like
// mustOverlayDist, failure means a corrupted overlay, not bad input.
func mustOverlayRow(ov *delta.Overlay, u int) []float64 {
	row, err := ov.Row(u)
	if err != nil {
		panic(fmt.Sprintf("chl: overlay epoch %d failed its patched row for %d: %v", ov.Epoch(), u, err))
	}
	return row
}

package chl_test

// Shared cluster fixture for the serving-tier tests. Every sharded
// topology in this package — plain shards (router_test.go,
// directed_test.go, compressed_root_test.go), replicated shards with
// kill switches (replica_test.go, soak_test.go), and the parity matrix
// (parity_test.go) — goes through newTestCluster: SaveShards under a
// temp dir → Partition → one serving process per replica behind its own
// httptest listener → Router. startCluster and startReplicatedCluster
// are thin adapters over it, kept so their many call sites read the
// same as before.

import (
	"net/http"
	"net/http/httptest"
	"testing"

	chl "repro"
	"repro/internal/shard"
)

// clusterSpec describes the topology newTestCluster builds.
type clusterSpec struct {
	shards    int
	replicas  int // serving processes per shard; 0 means 1
	cacheSize int
	flaky     bool                    // wrap every replica in a flakyBackend kill switch
	tweak     func(*chl.RouterConfig) // optional config adjustment before the router starts
}

// testCluster is the running topology: every serving process, its
// listener, and the router fronting them. backends and flaky are
// indexed [shard][replica]; flaky is nil unless the spec asked for kill
// switches.
type testCluster struct {
	router   *chl.Router
	servers  []*chl.Server
	backends [][]*httptest.Server
	flaky    [][]*flakyBackend
	manifest *shard.Manifest
	part     *shard.Partition
	dir      string
}

func (c *testCluster) close() {
	for _, group := range c.backends {
		for _, ts := range group {
			ts.Close()
		}
	}
	for _, s := range c.servers {
		s.Close()
	}
}

// newShardProcess starts one serving process over shard sid's slice
// file.
func newShardProcess(t *testing.T, dir string, m *shard.Manifest, part *shard.Partition, sid, cacheSize int) *chl.Server {
	t.Helper()
	path, err := chl.ShardFilePath(dir+"/"+shard.ManifestName, m, sid)
	if err != nil {
		t.Fatal(err)
	}
	s, err := chl.NewServer(path, cacheSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetShard(sid, part); err != nil {
		t.Fatal(err)
	}
	return s
}

// newTestCluster splits fx per spec under a temp dir and starts the full
// serving topology.
func newTestCluster(t *testing.T, fx *chl.FlatIndex, spec clusterSpec) *testCluster {
	t.Helper()
	if spec.replicas < 1 {
		spec.replicas = 1
	}
	dir := t.TempDir()
	m, err := fx.SaveShards(dir, spec.shards, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	part, err := m.Partition()
	if err != nil {
		t.Fatal(err)
	}
	c := &testCluster{manifest: m, part: part, dir: dir}
	if spec.flaky {
		c.flaky = make([][]*flakyBackend, spec.shards)
	}
	groups := make([][]string, spec.shards)
	for sid := 0; sid < spec.shards; sid++ {
		c.backends = append(c.backends, nil)
		for rid := 0; rid < spec.replicas; rid++ {
			s := newShardProcess(t, dir, m, part, sid, spec.cacheSize)
			c.servers = append(c.servers, s)
			var h http.Handler = s.Handler()
			if spec.flaky {
				f := newFlakyBackend(h)
				c.flaky[sid] = append(c.flaky[sid], f)
				h = f
			}
			ts := httptest.NewServer(h)
			c.backends[sid] = append(c.backends[sid], ts)
			groups[sid] = append(groups[sid], ts.URL)
		}
	}
	cfg := chl.RouterConfig{Manifest: m, ReplicaAddrs: groups, CacheSize: spec.cacheSize}
	if spec.tweak != nil {
		spec.tweak(&cfg)
	}
	r, err := chl.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.router = r
	return c
}

// Command chl builds a hub labeling index for a graph and reports the
// paper's key preprocessing metrics (construction time, average label size,
// label traffic for distributed builds).
//
// Usage:
//
//	chl -graph road.gr -algo gll -out road.chl
//	chl -dataset SKIT -algo hybrid -nodes 16
//	chl -graph web.gr -directed -algo seqpll
//
// The graph comes either from a DIMACS .gr file (-graph) or a named
// synthetic dataset (-dataset, see -list).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	chl "repro"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "DIMACS .gr file to label")
		dataset   = flag.String("dataset", "", "named synthetic dataset (see -list)")
		scale     = flag.Float64("scale", 1, "scale factor for -dataset")
		directed  = flag.Bool("directed", false, "treat the input graph as directed")
		algo      = flag.String("algo", "gll", "algorithm: seqpll|sparapll|lcc|gll|plant|dparapll|dgll|dplant|hybrid")
		ranking   = flag.String("rank", "auto", "ranking: auto|degree|betweenness|identity")
		workers   = flag.Int("workers", 0, "shared-memory workers (0 = GOMAXPROCS)")
		nodes     = flag.Int("nodes", 4, "cluster nodes q for distributed algorithms")
		wpn       = flag.Int("workers-per-node", 1, "threads per cluster node")
		alpha     = flag.Float64("alpha", 0, "GLL synchronization threshold α (0 = 4)")
		eta       = flag.Int("eta", 0, "common label table size η (0 = default, -1 = off)")
		psi       = flag.Float64("psi", 0, "Hybrid switch threshold Ψth (0 = 100)")
		seed      = flag.Int64("seed", 1, "seed for generation and ranking")
		out       = flag.String("out", "", "write the index to this file")
		list      = flag.Bool("list", false, "list dataset and algorithm names")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fatal(fmt.Errorf("unexpected arguments %q (chl takes flags only)", flag.Args()))
	}

	if *list {
		fmt.Println("datasets: ", strings.Join(chl.DatasetNames(), " "))
		fmt.Print("algorithms:")
		for _, a := range chl.Algorithms() {
			fmt.Printf(" %s", a)
		}
		fmt.Println()
		return
	}

	g, err := loadGraph(*graphPath, *dataset, *scale, *directed, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d directed=%v\n", g.NumVertices(), g.NumEdges(), g.Directed())

	var ord *chl.Order
	switch *ranking {
	case "auto":
		// leave nil: Build picks per topology
	case "degree":
		ord = chl.RankByDegree(g)
	case "betweenness":
		ord = chl.RankByBetweenness(g, 16, *seed)
	case "identity":
		ord = chl.RankIdentity(g.NumVertices())
	default:
		fatal(fmt.Errorf("unknown ranking %q", *ranking))
	}

	ix, err := chl.Build(g, chl.Options{
		Algorithm:      chl.Algorithm(*algo),
		Order:          ord,
		Workers:        *workers,
		Alpha:          *alpha,
		Nodes:          *nodes,
		WorkersPerNode: *wpn,
		Eta:            *eta,
		PsiThreshold:   *psi,
		Seed:           *seed,
	})
	if err != nil {
		fatal(err)
	}

	st := ix.Stats()
	m := ix.Metrics()
	fmt.Printf("index: labels=%d ALS=%.2f max=%d bytes=%d\n", st.TotalLabels, st.ALS, st.MaxLabels, st.Bytes)
	if m != nil {
		fmt.Printf("build: %s\n", m)
		if m.Nodes > 0 {
			fmt.Printf("cluster: traffic=%d bytes, syncs=%d, peak node storage=%d bytes\n",
				m.BytesSent, m.Synchronizations, m.MaxNodeBytes)
		}
	}
	if *out != "" {
		if err := ix.SaveFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("saved index to %s\n", *out)
	}
}

func loadGraph(path, dataset string, scale float64, directed bool, seed int64) (*chl.Graph, error) {
	switch {
	case path != "" && dataset != "":
		return nil, fmt.Errorf("pass either -graph or -dataset, not both")
	case path != "":
		return chl.ReadDIMACSFile(path, directed)
	case dataset != "":
		return chl.GenerateDataset(dataset, scale, seed)
	default:
		return nil, fmt.Errorf("pass -graph FILE or -dataset NAME (try -list)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chl:", err)
	os.Exit(1)
}

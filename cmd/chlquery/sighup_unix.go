//go:build unix

package main

import (
	"log"
	"os"
	"os/signal"
	"syscall"

	chl "repro"
)

// installReload hot-swaps the served index on SIGHUP, re-opening the
// file the current snapshot came from — the classic "replace the file,
// kill -HUP the server" deploy, with zero dropped in-flight queries.
func installReload(s *chl.Server) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	go func() {
		for range ch {
			gen, err := s.Reload("")
			if err != nil {
				log.Printf("chlquery: SIGHUP reload failed, keeping current index: %v", err)
				continue
			}
			log.Printf("chlquery: reloaded index, generation %d", gen)
		}
	}()
}

//go:build !unix

package main

import chl "repro"

// installReload is a no-op where SIGHUP does not exist; POST /reload
// remains available.
func installReload(s *chl.Server) {}

// Command chlquery loads a hub-labeling index built by cmd/chl and answers
// point-to-point shortest distance queries — interactively ("u v" per line
// on stdin), as a random-batch benchmark in any of the paper's three
// distributed query modes, or as an HTTP serving process over the flat
// packed label store.
//
// Usage:
//
//	chlquery -index road.chl 17 3942
//	chlquery -index road.chl                 # interactive: one "u v" per line
//	chlquery -index road.chl -bench 100000 -mode qdol -nodes 16
//	chlquery -index road.chl -save road.flat # freeze once ...
//	chlquery -load road.flat -serve :8080    # ... serve many times
//
// For indexes too large (or too hot) for one process, -split slices the
// flat index into per-shard files plus a cluster manifest, and -shard
// serves one slice; cmd/chlrouter fronts the shard servers (README.md
// "Running a cluster"):
//
//	chlquery -load road.flat -split 3 -shards-dir ./cluster
//	chlquery -serve :8081 -manifest ./cluster/cluster.json -shard 0
//
// Any shard may be served by several replica processes (same -manifest
// and -shard, different ports) for read scaling and failover; -split
// -addrs records the replica topology in the manifest for the router.
//
// Directed indexes (built by cmd/chl over a directed graph) serve
// through the same flags end to end: -save writes a CHFX v3 file packing
// both label halves, -split marks the manifest directed so the router
// keys its cache on ordered pairs, and /dist?u=&v= answers the u→v
// distance. Only the simulated -bench modes (qlsn/qfdl/qdol) remain
// undirected-only.
//
// -compress switches -save and -split to the compressed label format
// (CHFX v4, delta+varint block encoding — typically 25–65% smaller on
// disk); queries over compressed indexes use the block-skipping merge
// kernel and answer bit-identically. Without the flag every output stays
// v2/v3, byte-for-byte:
//
//	chlquery -index road.chl -compress -save road.cflat
//	chlquery -load road.flat -compress -save road.cflat -serve :8080
//	chlquery -load road.cflat -compress -split 3 -shards-dir ./cluster
//
// Serving loads the flat file through chl.OpenFlat — memory-mapped and
// zero-copy on platforms that support it — and hot-swaps index files
// without dropping in-flight queries, via POST /reload or SIGHUP. The
// serving API (JSON error bodies and schemas documented in README.md):
//
//	GET  /dist?u=17&v=3942      → {"u":17,"v":3942,"reachable":true,"dist":42,"hub":106}
//	POST /batch  [[u,v],...]    → {"dists":[...]}   (-1 marks unreachable pairs)
//	GET  /paths?u=17&v=3942     → {"dist":42,"path":[17,106,...,3942]} actual vertex walk via witness hubs
//	GET  /knn?u=17&k=8          → {"neighbors":[{"v":...,"dist":...,"hub":...},...]} k nearest by label scan
//	POST /matrix {"sources":[...],"targets":[...]} → NDJSON stream, one distance row per source
//	GET  /stats                 → index shape, generation, cache hit/miss counters
//	POST /reload?path=new.flat  → hot-swap to a new flat file (empty path: re-open the current file)
//	GET  /healthz               → {"ok":true,"generation":N}
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	chl "repro"
	"repro/internal/shard"
)

func main() {
	var (
		indexPath = flag.String("index", "", "index file written by cmd/chl")
		loadPath  = flag.String("load", "", "flat index file written by -save")
		savePath  = flag.String("save", "", "freeze the index and write it to this flat file")
		serveAddr = flag.String("serve", "", "serve queries over HTTP on this address (e.g. :8080)")
		bench     = flag.Int("bench", 0, "run a random batch of this many queries")
		mode      = flag.String("mode", "qlsn", "query mode for -bench: qlsn|qfdl|qdol|local")
		nodes     = flag.Int("nodes", 16, "simulated cluster size for -bench")
		seed      = flag.Int64("seed", 1, "seed for -bench query generation; also the consistent-hash ring seed for -split")
		cacheCap  = flag.Int("cache", 1<<16, "answer cache capacity for -serve (0 disables)")
		prefault  = flag.Bool("prefault", false, "fault mapped indexes fully in before serving them (and before each hot swap)")
		comp      = flag.Bool("compress", false, "use the compressed label format (CHFX v4) for -save, -split and in-process serving")

		graphPath = flag.String("graph", "", "for -serve: the graph the index was built from (.gr DIMACS or edge list) — enables POST /update (delta overlay) and /compact")
		journal   = flag.String("journal", "", "for -serve with -graph: update journal file — accepted patches are appended before serving and replayed on restart")

		splitK    = flag.Int("split", 0, "slice the index into this many shard files plus a cluster manifest")
		shardsDir = flag.String("shards-dir", "cluster", "output directory for -split")
		replicas  = flag.Int("replicas", 64, "virtual ring points per shard for -split")
		addrs     = flag.String("addrs", "", "for -split: record the serving topology in the manifest — comma-separated shard slots in shard-id order, replicas of one shard joined with |")
		shardID   = flag.Int("shard", -1, "serve as this shard of the cluster described by -manifest")
		manifest  = flag.String("manifest", "", "cluster manifest (cluster.json) for -shard")
	)
	flag.Parse()

	// The only positional form is "u v" (one point-to-point query); one
	// stray argument or three used to fall silently into interactive
	// mode, which reads as a hang when the user mistyped a flag.
	if n := flag.NArg(); n != 0 && n != 2 {
		fatal(fmt.Errorf("expected no positional arguments or exactly two vertex ids, got %d: %q", n, flag.Args()))
	}

	if *serveAddr != "" {
		runServe(*serveAddr, *indexPath, *loadPath, *savePath, *cacheCap, *prefault, *comp, *shardID, *manifest, *graphPath, *journal)
		return
	}
	if *graphPath != "" || *journal != "" {
		fatal(fmt.Errorf("-graph/-journal enable dynamic updates on the serving tier; pass them with -serve"))
	}

	fx, ix, err := loadIndex(*indexPath, *loadPath)
	if err != nil {
		fatal(err)
	}
	if *comp {
		// Compress is idempotent: re-saving an already-compressed flat
		// file with -compress is a no-op, not an error.
		if fx, err = fx.Compress(); err != nil {
			fatal(err)
		}
	}

	if *splitK > 0 {
		runSplit(fx, *splitK, *shardsDir, *replicas, uint64(*seed), *addrs)
		return
	}
	fmt.Printf("index: n=%d labels=%d flat=%.2f MiB directed=%v compressed=%v\n",
		fx.NumVertices(), fx.TotalLabels(), float64(fx.TotalMemory())/(1<<20), fx.Directed(), fx.Compressed())

	if *savePath != "" {
		if err := fx.SaveFile(*savePath); err != nil {
			fatal(err)
		}
		fmt.Printf("saved flat index to %s\n", *savePath)
		if *bench == 0 && flag.NArg() == 0 {
			return
		}
	}
	if *bench > 0 {
		runBench(fx, ix, *bench, *mode, *nodes, *seed)
		return
	}
	if flag.NArg() == 2 {
		u, err1 := strconv.Atoi(flag.Arg(0))
		v, err2 := strconv.Atoi(flag.Arg(1))
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("bad vertex ids %q %q", flag.Arg(0), flag.Arg(1)))
		}
		answer(fx, u, v)
		return
	}
	// Interactive mode.
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) != 2 {
			fmt.Println("enter: u v")
			continue
		}
		u, err1 := strconv.Atoi(f[0])
		v, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= fx.NumVertices() || v >= fx.NumVertices() {
			fmt.Printf("vertex ids must be in [0,%d)\n", fx.NumVertices())
			continue
		}
		answer(fx, u, v)
	}
	// A read error (closed terminal, piped file going away) is not the
	// same as a clean EOF; surface it instead of exiting 0.
	if err := sc.Err(); err != nil {
		fatal(fmt.Errorf("reading queries: %w", err))
	}
}

// loadIndex resolves the two input flavours. The slice-based index is only
// materialized when it came from -index (the distributed -bench modes need
// it); a flat load stays flat. Directed indexes freeze like undirected
// ones — both label halves are packed — so every downstream consumer
// (-save, -split, -serve, -mode local) takes directed input; only the
// simulated distributed -bench modes are undirected-only, and runBench
// rejects those up front with an actionable message.
func loadIndex(indexPath, loadPath string) (*chl.FlatIndex, *chl.Index, error) {
	switch {
	case indexPath != "" && loadPath != "":
		return nil, nil, fmt.Errorf("pass either -index or -load, not both")
	case indexPath != "":
		ix, err := chl.LoadFile(indexPath)
		if err != nil {
			return nil, nil, err
		}
		fx, err := ix.Freeze()
		if err != nil {
			return nil, nil, err
		}
		return fx, ix, nil
	case loadPath != "":
		fx, err := chl.LoadFlatFile(loadPath)
		if err != nil {
			return nil, nil, err
		}
		return fx, nil, nil
	default:
		return nil, nil, fmt.Errorf("pass -index FILE or -load FILE")
	}
}

func answer(fx *chl.FlatIndex, u, v int) {
	// Ordered notation for directed indexes: d(u→v) and d(v→u) differ.
	pair := fmt.Sprintf("d(%d,%d)", u, v)
	if fx.Directed() {
		pair = fmt.Sprintf("d(%d→%d)", u, v)
	}
	d, hub, ok := fx.QueryHub(u, v)
	if !ok || math.IsInf(d, 1) || d == math.MaxFloat64 {
		fmt.Printf("%s = unreachable\n", pair)
		return
	}
	fmt.Printf("%s = %g (via hub %d)\n", pair, d, hub)
}

// runSplit slices fx into k per-shard flat files plus the cluster
// manifest cmd/chlrouter and -shard serving consume. A non-empty addrs
// spec ("http://a|http://a2,http://b,...": one slot per shard, replicas
// joined with |) is recorded in the manifest as the cluster's serving
// topology, so the router can be pointed at the manifest alone.
func runSplit(fx *chl.FlatIndex, k int, dir string, replicas int, seed uint64, addrs string) {
	m, err := fx.SaveShards(dir, k, replicas, seed)
	if err != nil {
		fatal(err)
	}
	manifestPath := filepath.Join(dir, shard.ManifestName)
	if addrs != "" {
		for _, slot := range strings.Split(addrs, ",") {
			m.ReplicaAddrs = append(m.ReplicaAddrs, strings.Split(slot, "|"))
		}
		if err := shard.WriteManifest(manifestPath, m); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d shards + %s to %s (directed=%v)\n", k, shard.ManifestName, dir, m.Directed)
	for i, f := range m.Files {
		fmt.Printf("  shard %d: %s (%d vertices)", i, f, m.VertexCounts[i])
		if m.ReplicaAddrs != nil {
			fmt.Printf(" @ %s", strings.Join(m.ReplicaAddrs[i], ", "))
		}
		fmt.Println()
	}
	fmt.Printf("serve each with: chlquery -serve :PORT -manifest %s -shard I  (every replica of shard I uses the same -shard I)\n",
		manifestPath)
}

// runServe builds the hot-swappable serving tier and blocks on HTTP. The
// -load path opens the flat file mmap-backed (chl.OpenFlat); -index
// freezes in process; -index plus -save freezes, persists, then serves
// the saved file so /reload and SIGHUP have a file to re-open. With
// -manifest and -shard the process serves one slice of a split cluster.
// -compress converts in-process indexes (and -load files being re-saved
// via -save) to the compressed label format before serving; a plain
// -load serves whatever format the file already holds.
func runServe(addr, indexPath, loadPath, savePath string, cacheCap int, prefault, comp bool, shardID int, manifestPath, graphPath, journal string) {
	var (
		s   *chl.Server
		err error
	)
	if manifestPath != "" || shardID >= 0 {
		if indexPath != "" || loadPath != "" {
			// The manifest names the shard's file; a conflicting -index
			// or -load must not be silently discarded.
			fatal(fmt.Errorf("shard serving takes its file from the manifest; drop -index/-load"))
		}
		if graphPath != "" || journal != "" {
			// Shards are frozen by design; the router owns the overlay.
			fatal(fmt.Errorf("shard servers do not take updates (-graph/-journal); point them at chlrouter -graph instead"))
		}
		runShardServe(addr, cacheCap, prefault, shardID, manifestPath)
		return
	}
	if journal != "" && graphPath == "" {
		fatal(fmt.Errorf("-journal needs -graph GRAPH to replay against"))
	}
	switch {
	case indexPath != "" && loadPath != "":
		fatal(fmt.Errorf("pass either -index or -load, not both"))
	case loadPath != "":
		if comp && savePath == "" {
			// A bare -load serves the file as-is (possibly mmapped); the
			// format conversion needs a file to write.
			fatal(fmt.Errorf("-compress with -load needs -save FILE to write the converted index"))
		}
		if savePath != "" { // copy the flat file, then serve the copy
			var fx *chl.FlatIndex
			if fx, err = chl.LoadFlatFile(loadPath); err != nil {
				break
			}
			if comp {
				if fx, err = fx.Compress(); err != nil {
					break
				}
			}
			if err = fx.SaveFile(savePath); err != nil {
				break
			}
			fmt.Printf("saved flat index to %s\n", savePath)
			loadPath = savePath
		}
		s, err = chl.NewServer(loadPath, cacheCap)
	case indexPath != "":
		var ix *chl.Index
		ix, err = chl.LoadFile(indexPath)
		if err != nil {
			break
		}
		var fx *chl.FlatIndex
		fx, err = ix.Freeze()
		if err != nil {
			break
		}
		if comp {
			if fx, err = fx.Compress(); err != nil {
				break
			}
		}
		if savePath != "" {
			if err = fx.SaveFile(savePath); err != nil {
				break
			}
			fmt.Printf("saved flat index to %s\n", savePath)
			s, err = chl.NewServer(savePath, cacheCap)
		} else {
			s = chl.NewServerFromFlat(fx, cacheCap)
		}
	default:
		fatal(fmt.Errorf("pass -index FILE or -load FILE"))
	}
	if err != nil {
		fatal(err)
	}
	if prefault {
		s.SetPrefault(true)
	}
	if graphPath != "" {
		g, err := loadGraph(graphPath, s.Stats().Directed)
		if err != nil {
			fatal(err)
		}
		if err := s.EnableUpdates(g, journal); err != nil {
			fatal(err)
		}
		if st := s.Stats(); st.Patch != nil {
			fmt.Printf("updates: enabled (graph %s, journal %s) — replayed %d ops, overlay epoch %d\n",
				graphPath, journal, st.Patch.Ops, st.Patch.Epoch)
		} else {
			fmt.Printf("updates: enabled (graph %s, journal %s)\n", graphPath, journal)
		}
	}
	st := s.Stats()
	fmt.Printf("index: n=%d labels=%d flat=%.2f MiB mapped=%v directed=%v compressed=%v cache=%d\n",
		st.Vertices, st.Labels, float64(st.MemoryBytes)/(1<<20), st.Mapped, st.Directed, st.Compressed, cacheCap)
	installReload(s)
	endpoints := "GET /dist?u=&v=, POST /batch, GET /paths?u=&v=, GET /knn?u=&k=, POST /matrix, GET /stats, POST /reload, GET /healthz, GET /metrics"
	if graphPath != "" {
		endpoints += ", POST /update, POST /compact"
	}
	fmt.Printf("serving on %s (%s)\n", addr, endpoints)
	log.Fatal(http.ListenAndServe(addr, s.Handler()))
}

// loadGraph reads the base graph for dynamic updates: DIMACS .gr by
// extension, 0-indexed edge list otherwise, with the directedness the
// served index was built with.
func loadGraph(path string, directed bool) (*chl.Graph, error) {
	if strings.HasSuffix(path, ".gr") {
		return chl.ReadDIMACSFile(path, directed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return chl.ReadEdgeList(f, directed)
}

// runShardServe serves one shard of a split cluster: the shard's slice
// file (resolved from the manifest), the shard ownership checks, and the
// /shardquery endpoint the router joins across. Hot reload (POST /reload,
// SIGHUP) re-opens the shard's own file — e.g. after the splitter
// re-published the cluster in place.
func runShardServe(addr string, cacheCap int, prefault bool, shardID int, manifestPath string) {
	if manifestPath == "" || shardID < 0 {
		fatal(fmt.Errorf("shard serving needs both -manifest FILE and -shard ID"))
	}
	m, err := shard.ReadManifest(manifestPath)
	if err != nil {
		fatal(err)
	}
	p, err := m.Partition()
	if err != nil {
		fatal(err)
	}
	file, err := chl.ShardFilePath(manifestPath, m, shardID)
	if err != nil {
		fatal(err)
	}
	s, err := chl.NewServer(file, cacheCap)
	if err != nil {
		fatal(err)
	}
	if err := s.SetShard(shardID, p); err != nil {
		fatal(err)
	}
	if prefault {
		s.SetPrefault(true)
	}
	st := s.Stats()
	if st.Vertices != m.Vertices {
		fatal(fmt.Errorf("shard file %s covers %d vertices but the manifest says %d — mismatched cluster build?",
			file, st.Vertices, m.Vertices))
	}
	if st.Directed != m.Directed {
		fatal(fmt.Errorf("shard file %s is directed=%v but the manifest says directed=%v — mismatched cluster build?",
			file, st.Directed, m.Directed))
	}
	fmt.Printf("shard %d/%d: file=%s n=%d labels=%d flat=%.2f MiB mapped=%v directed=%v cache=%d\n",
		shardID, m.Shards, file, st.Vertices, st.Labels, float64(st.MemoryBytes)/(1<<20), st.Mapped, st.Directed, cacheCap)
	installReload(s)
	fmt.Printf("serving on %s (router-facing POST /shardquery, POST /shardscan; GET /dist?u=&v=, POST /batch, GET /stats, POST /reload, GET /healthz, GET /metrics)\n", addr)
	log.Fatal(http.ListenAndServe(addr, s.Handler()))
}

func runBench(fx *chl.FlatIndex, ix *chl.Index, count int, modeName string, nodes int, seed int64) {
	// Directed indexes bench on the real serving path only; fail before
	// any work rather than deep inside the query-engine constructor.
	if fx.Directed() && !strings.EqualFold(modeName, "local") {
		fatal(fmt.Errorf("mode %q simulates the paper's undirected query cluster; directed indexes bench with -mode local (or serve via -serve / a shard cluster)", modeName))
	}
	rng := rand.New(rand.NewSource(seed))
	n := fx.NumVertices()
	pairs := make([]chl.QueryPair, count)
	for i := range pairs {
		pairs[i] = chl.QueryPair{U: rng.Intn(n), V: rng.Intn(n)}
	}

	if strings.EqualFold(modeName, "local") {
		// The real serving path: parallel batch over the flat store,
		// measured in wall-clock time on this machine.
		eng := chl.NewBatchEngineFlat(fx)
		start := time.Now()
		dists := eng.Batch(pairs)
		elapsed := time.Since(start).Seconds()
		var reach int
		for _, d := range dists {
			if d != chl.Infinity {
				reach++
			}
		}
		fmt.Printf("local batch: %d queries in %.3fs = %.2f Mq/s (wall clock), %d reachable\n",
			count, elapsed, float64(count)/elapsed/1e6, reach)
		fmt.Printf("  memory: %.2f MiB flat\n", float64(fx.TotalMemory())/(1<<20))
		return
	}

	if ix == nil {
		fatal(fmt.Errorf("mode %q needs the slice-based index: pass -index (not -load), or use -mode local", modeName))
	}
	var mode chl.QueryMode
	switch strings.ToLower(modeName) {
	case "qlsn":
		mode = chl.ModeQLSN
	case "qfdl":
		mode = chl.ModeQFDL
	case "qdol":
		mode = chl.ModeQDOL
	default:
		fatal(fmt.Errorf("unknown mode %q", modeName))
	}
	qe, err := chl.NewQueryEngine(ix, mode, nodes)
	if err != nil {
		fatal(err)
	}
	r := qe.Batch(pairs)
	fmt.Printf("%s on %d nodes: %d queries\n", mode, nodes, count)
	fmt.Printf("  throughput: %.2f Mq/s (modeled)\n", r.Throughput/1e6)
	fmt.Printf("  mean latency: %v (modeled)\n", r.MeanLatency)
	fmt.Printf("  traffic: %d bytes, %d messages\n", r.BytesSent, r.MessagesSent)
	var peak int64
	for _, b := range qe.MemoryPerNode() {
		if b > peak {
			peak = b
		}
	}
	fmt.Printf("  memory: %.2f MiB total, %.2f MiB peak node\n",
		float64(qe.TotalMemory())/(1<<20), float64(peak)/(1<<20))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chlquery:", err)
	os.Exit(1)
}

// Command chlquery loads a hub-labeling index built by cmd/chl and answers
// point-to-point shortest distance queries, either interactively ("u v" per
// line on stdin) or as a random-batch benchmark in any of the paper's three
// distributed query modes.
//
// Usage:
//
//	chlquery -index road.chl 17 3942
//	chlquery -index road.chl            # interactive: one "u v" per line
//	chlquery -index road.chl -bench 100000 -mode qdol -nodes 16
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	chl "repro"
)

func main() {
	var (
		indexPath = flag.String("index", "", "index file written by cmd/chl")
		bench     = flag.Int("bench", 0, "run a random batch of this many queries")
		mode      = flag.String("mode", "qlsn", "query mode for -bench: qlsn|qfdl|qdol")
		nodes     = flag.Int("nodes", 16, "simulated cluster size for -bench")
		seed      = flag.Int64("seed", 1, "seed for -bench query generation")
	)
	flag.Parse()
	if *indexPath == "" {
		fatal(fmt.Errorf("pass -index FILE"))
	}
	ix, err := chl.LoadFile(*indexPath)
	if err != nil {
		fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("index: n=%d labels=%d ALS=%.2f directed=%v\n", st.Vertices, st.TotalLabels, st.ALS, ix.Directed())

	if *bench > 0 {
		runBench(ix, *bench, *mode, *nodes, *seed)
		return
	}
	if flag.NArg() == 2 {
		u, err1 := strconv.Atoi(flag.Arg(0))
		v, err2 := strconv.Atoi(flag.Arg(1))
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("bad vertex ids %q %q", flag.Arg(0), flag.Arg(1)))
		}
		answer(ix, u, v)
		return
	}
	// Interactive mode.
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) != 2 {
			fmt.Println("enter: u v")
			continue
		}
		u, err1 := strconv.Atoi(f[0])
		v, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= ix.NumVertices() || v >= ix.NumVertices() {
			fmt.Printf("vertex ids must be in [0,%d)\n", ix.NumVertices())
			continue
		}
		answer(ix, u, v)
	}
}

func answer(ix *chl.Index, u, v int) {
	d, hub, ok := ix.QueryHub(u, v)
	if !ok || math.IsInf(d, 1) || d == math.MaxFloat64 {
		fmt.Printf("d(%d,%d) = unreachable\n", u, v)
		return
	}
	fmt.Printf("d(%d,%d) = %g (via hub %d)\n", u, v, d, hub)
}

func runBench(ix *chl.Index, count int, modeName string, nodes int, seed int64) {
	var mode chl.QueryMode
	switch strings.ToLower(modeName) {
	case "qlsn":
		mode = chl.ModeQLSN
	case "qfdl":
		mode = chl.ModeQFDL
	case "qdol":
		mode = chl.ModeQDOL
	default:
		fatal(fmt.Errorf("unknown mode %q", modeName))
	}
	qe, err := chl.NewQueryEngine(ix, mode, nodes)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	n := ix.NumVertices()
	pairs := make([]chl.QueryPair, count)
	for i := range pairs {
		pairs[i] = chl.QueryPair{U: rng.Intn(n), V: rng.Intn(n)}
	}
	r := qe.Batch(pairs)
	fmt.Printf("%s on %d nodes: %d queries\n", mode, nodes, count)
	fmt.Printf("  throughput: %.2f Mq/s (modeled)\n", r.Throughput/1e6)
	fmt.Printf("  mean latency: %v (modeled)\n", r.MeanLatency)
	fmt.Printf("  traffic: %d bytes, %d messages\n", r.BytesSent, r.MessagesSent)
	var peak int64
	for _, b := range qe.MemoryPerNode() {
		if b > peak {
			peak = b
		}
	}
	fmt.Printf("  memory: %.2f MiB total, %.2f MiB peak node\n",
		float64(qe.TotalMemory())/(1<<20), float64(peak)/(1<<20))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chlquery:", err)
	os.Exit(1)
}

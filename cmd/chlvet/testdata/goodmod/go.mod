module goodmod

go 1.22

// Package goodmod is the clean end-to-end fixture: chlvet over it must
// exit 0 with no output.
package goodmod

// Add is the most invariant-respecting function ever written.
func Add(a, b int) int { return a + b }

package badmod

import "net/http"

// errcontract: naked http.Error in a handler-bearing file.
func serveErr(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "text/plain error", http.StatusInternalServerError)
}

// Package badmod violates every chlvet invariant once, so the
// end-to-end test can assert the built binary reports each analyzer
// with file:line positions and fix hints, and exits non-zero.
package badmod

import (
	"math"
	"time"
)

// clockcheck: wall-clock read in a library package.
func uptime(start time.Time) float64 {
	return time.Since(start).Seconds()
}

// pairkey: hand-rolled pair packing.
func packed(u, v int) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// floatexact: epsilon-tolerance comparison.
func close(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// snapshotref: acquired reference discarded.
type handle struct{}

func (h *handle) Acquire() *handle { return h }
func (h *handle) Release()         {}

func leak(h *handle) {
	h.Acquire()
}

// A justified allow must suppress e2e exactly as it does in-process.
func allowed() time.Time {
	//chlvet:allow clockcheck -- e2e fixture: proves suppression through the binary
	return time.Now()
}

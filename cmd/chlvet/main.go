// Command chlvet is the repository's own vet tool: a multichecker over
// the five project-specific analyzers in internal/analysis, enforcing
// the invariants nine PRs of serving work established (the Clock
// discipline, pairKey/flightKeyFor key construction, the JSON error
// contract, distance bit-exactness, and the snapshot refcount rule).
//
// Usage:
//
//	go run ./cmd/chlvet ./...          # whole module (what CI runs)
//	go run ./cmd/chlvet ./internal/... # a subtree
//	go run ./cmd/chlvet -only clockcheck,pairkey ./...
//	go run ./cmd/chlvet -list          # analyzer names + docs
//
// Diagnostics print as file:line:col: [analyzer] message (fix: hint).
// The exit status is 0 when the tree is clean, 1 when any finding
// survives //chlvet:allow filtering, and 2 when the tool itself fails
// (bad flags, unparseable source, type errors).
//
// A finding is suppressed — with a mandatory justification — by
// annotating the line (or the line above) with:
//
//	//chlvet:allow <analyzer> -- <why this line is exempt>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its edges injectable so the end-to-end tests can
// drive the tool in-process as well as through the built binary.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chlvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only = fs.String("only", "", "comma-separated analyzer subset (default: all)")
		list = fs.Bool("list", false, "list analyzers and exit")
		dir  = fs.String("C", ".", "change to this directory before resolving patterns")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: chlvet [-C dir] [-only names] [package patterns]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*only)
	if err != nil {
		fmt.Fprintln(stderr, "chlvet:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "chlvet:", err)
		return 2
	}
	paths, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "chlvet:", err)
		return 2
	}

	findings := 0
	failed := false
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(stderr, "chlvet:", err)
			failed = true
			continue
		}
		for _, d := range analysis.Run(pkg, analyzers) {
			fmt.Fprintln(stdout, shortenPath(d, loader.ModDir))
			findings++
		}
	}
	switch {
	case failed:
		return 2
	case findings > 0:
		fmt.Fprintf(stderr, "chlvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// shortenPath renders a diagnostic with the filename relative to the
// module root, the way compilers and vets conventionally print.
func shortenPath(d analysis.Diagnostic, modDir string) string {
	s := d.String()
	if rel, ok := strings.CutPrefix(s, modDir+"/"); ok {
		return rel
	}
	return s
}

package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildChlvet builds the real binary once per test run: the e2e
// contract (exit codes, diagnostic format) is what CI and developers
// see, so the test drives the same artifact they do.
func buildChlvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "chlvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/chlvet: %v\n%s", err, out)
	}
	return bin
}

func runChlvet(t *testing.T, bin string, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	var outBuf, errBuf bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	err := cmd.Run()
	switch e := err.(type) {
	case nil:
	case *exec.ExitError:
		exit = e.ExitCode()
	default:
		t.Fatalf("running chlvet %v: %v", args, err)
	}
	return outBuf.String(), errBuf.String(), exit
}

// diagLine is the documented diagnostic shape:
// file:line:col: [analyzer] message (fix: hint).
var diagLine = regexp.MustCompile(`^[\w./]+\.go:\d+:\d+: \[(\w+)\] .+ \(fix: .+\)$`)

func TestEndToEndViolatingModule(t *testing.T) {
	bin := buildChlvet(t)
	stdout, stderr, exit := runChlvet(t, bin, "-C", "testdata/badmod", "./...")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d diagnostics, want 5 (one per analyzer):\n%s", len(lines), stdout)
	}
	seen := map[string]bool{}
	for _, line := range lines {
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("diagnostic %q does not match file:line:col: [analyzer] message (fix: hint)", line)
			continue
		}
		seen[m[1]] = true
	}
	for _, want := range []string{"clockcheck", "pairkey", "errcontract", "floatexact", "snapshotref"} {
		if !seen[want] {
			t.Errorf("no diagnostic from %s in:\n%s", want, stdout)
		}
	}
	// The justified //chlvet:allow in the fixture must suppress through
	// the binary: the allowed() wall-clock read never surfaces.
	if strings.Contains(stdout, "e2e fixture") || strings.Contains(stdout, "allowed") {
		t.Errorf("allow-annotated violation leaked into output:\n%s", stdout)
	}
	if !strings.Contains(stderr, "chlvet: 5 finding(s)") {
		t.Errorf("stderr = %q, want the finding count summary", stderr)
	}
}

// TestOnlySubsetKeepsAllowNames pins a bug found driving the binary:
// allow names must validate against the full analyzer registry, not
// the -only subset, or every //chlvet:allow clockcheck in the tree
// turns into an "unknown analyzer" finding under -only pairkey.
func TestOnlySubsetKeepsAllowNames(t *testing.T) {
	bin := buildChlvet(t)
	stdout, stderr, exit := runChlvet(t, bin, "-C", "testdata/badmod", "-only", "pairkey", "./...")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	if strings.Contains(stdout, "unknown analyzer") {
		t.Errorf("-only pairkey rejected an allow naming an unselected analyzer:\n%s", stdout)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "[pairkey]") {
		t.Errorf("want exactly the pairkey finding, got:\n%s", stdout)
	}
}

func TestEndToEndCleanModule(t *testing.T) {
	bin := buildChlvet(t)
	stdout, stderr, exit := runChlvet(t, bin, "-C", "testdata/goodmod", "./...")
	if exit != 0 || stdout != "" {
		t.Fatalf("clean module: exit = %d, stdout = %q, stderr = %q; want silent success", exit, stdout, stderr)
	}
}

func TestEndToEndToolFailure(t *testing.T) {
	bin := buildChlvet(t)
	_, stderr, exit := runChlvet(t, bin, "-only", "nosuch", "./...")
	if exit != 2 {
		t.Fatalf("unknown analyzer: exit = %d, want 2 (stderr: %s)", exit, stderr)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr = %q, want an unknown-analyzer error", stderr)
	}
}

func TestListFlag(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list: exit %d (stderr: %s)", code, errw.String())
	}
	for _, name := range []string{"clockcheck", "pairkey", "errcontract", "floatexact", "snapshotref"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// Command experiments regenerates every table and figure of the paper's
// evaluation section (§7) on the synthetic dataset suite and writes a text
// report. This is the reproduction entry point: compare its output against
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments                     # quick suite, report to stdout
//	experiments -o report.txt       # write to a file
//	experiments -full -scale 2      # all 12 datasets, larger graphs
//	experiments -only table3,fig8   # a subset of experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	var (
		scale   = flag.Float64("scale", 1, "dataset scale factor")
		seed    = flag.Int64("seed", 1, "generation seed")
		workers = flag.Int("workers", 0, "shared-memory workers (0 = GOMAXPROCS)")
		full    = flag.Bool("full", false, "include the large datasets (CTR, USA, POK, LIJ) and q up to 64")
		batch   = flag.Int("queries", 100_000, "query batch size for Table 4")
		only    = flag.String("only", "", "comma-separated subset: intro,table3,table4,fig2..fig9,x2,x3,x4")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	cfg := exp.Config{
		Scale:      *scale,
		Seed:       *seed,
		Workers:    *workers,
		Full:       *full,
		QueryBatch: *batch,
	}.Defaults()

	if *only == "" {
		exp.RunAll(w, cfg)
		return
	}
	for _, name := range strings.Split(*only, ",") {
		switch strings.TrimSpace(strings.ToLower(name)) {
		case "intro":
			exp.WriteQueryBaselines(w, exp.QueryBaselines(cfg))
		case "table3":
			exp.WriteTable3(w, exp.Table3(cfg))
		case "table4":
			exp.WriteTable4(w, exp.Table4(cfg))
		case "fig2":
			exp.WriteFigure2(w, exp.Figure2(cfg))
		case "fig3":
			exp.WriteFigure3(w, exp.Figure3(cfg))
		case "fig4":
			exp.WriteFigure4(w, exp.Figure4(cfg))
		case "fig5":
			exp.WriteFigure5(w, exp.Figure5(cfg))
		case "fig6":
			exp.WriteFigure6(w, exp.Figure6(cfg))
		case "fig7":
			exp.WriteFigure7(w, exp.Figure7(cfg))
		case "fig8":
			exp.WriteFigure8(w, exp.Figure8(cfg))
		case "fig9":
			exp.WriteFigure9(w, exp.Figure9(cfg))
		case "x2":
			exp.WriteAblationCommonTable(w, exp.AblationCommonTable(cfg))
		case "x3":
			exp.WriteAblationTwoTables(w, exp.AblationTwoTables(cfg))
		case "x4":
			exp.WriteAblationPlantFirst(w, exp.AblationPlantFirst(cfg))
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(1)
		}
	}
}

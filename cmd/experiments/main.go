// Command experiments regenerates every table and figure of the paper's
// evaluation section (§7) on the synthetic dataset suite and writes a text
// report. This is the reproduction entry point: compare its output against
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments                     # quick suite, report to stdout
//	experiments -o report.txt       # write to a file
//	experiments -full -scale 2      # all 12 datasets, larger graphs
//	experiments -only table3,fig8   # a subset of experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	var (
		scale   = flag.Float64("scale", 1, "dataset scale factor")
		seed    = flag.Int64("seed", 1, "generation seed")
		workers = flag.Int("workers", 0, "shared-memory workers (0 = GOMAXPROCS)")
		full    = flag.Bool("full", false, "include the large datasets (CTR, USA, POK, LIJ) and q up to 64")
		batch   = flag.Int("queries", 100_000, "query batch size for Table 4")
		only    = flag.String("only", "", "comma-separated subset: intro,table3,table4,fig2..fig9,x2,x3,x4")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fatal(fmt.Errorf("unexpected arguments %q (experiments takes flags only)", flag.Args()))
	}

	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "" {
		var err error
		if f, err = os.Create(*out); err != nil {
			fatal(err)
		}
		w = f
	}

	cfg := exp.Config{
		Scale:      *scale,
		Seed:       *seed,
		Workers:    *workers,
		Full:       *full,
		QueryBatch: *batch,
	}.Defaults()

	if err := runReport(w, cfg, *only); err != nil {
		fatal(err)
	}
	// A report that took an hour to compute must not lose its tail to a
	// swallowed close error (a full disk often only surfaces here).
	if f != nil {
		if err := f.Close(); err != nil {
			fatal(fmt.Errorf("writing %s: %w", *out, err))
		}
	}
}

func runReport(w io.Writer, cfg exp.Config, only string) error {
	if only == "" {
		exp.RunAll(w, cfg)
		return nil
	}
	for _, name := range strings.Split(only, ",") {
		switch strings.TrimSpace(strings.ToLower(name)) {
		case "intro":
			exp.WriteQueryBaselines(w, exp.QueryBaselines(cfg))
		case "table3":
			exp.WriteTable3(w, exp.Table3(cfg))
		case "table4":
			exp.WriteTable4(w, exp.Table4(cfg))
		case "fig2":
			exp.WriteFigure2(w, exp.Figure2(cfg))
		case "fig3":
			exp.WriteFigure3(w, exp.Figure3(cfg))
		case "fig4":
			exp.WriteFigure4(w, exp.Figure4(cfg))
		case "fig5":
			exp.WriteFigure5(w, exp.Figure5(cfg))
		case "fig6":
			exp.WriteFigure6(w, exp.Figure6(cfg))
		case "fig7":
			exp.WriteFigure7(w, exp.Figure7(cfg))
		case "fig8":
			exp.WriteFigure8(w, exp.Figure8(cfg))
		case "fig9":
			exp.WriteFigure9(w, exp.Figure9(cfg))
		case "x2":
			exp.WriteAblationCommonTable(w, exp.AblationCommonTable(cfg))
		case "x3":
			exp.WriteAblationTwoTables(w, exp.AblationTwoTables(cfg))
		case "x4":
			exp.WriteAblationPlantFirst(w, exp.AblationPlantFirst(cfg))
		default:
			return fmt.Errorf("unknown experiment %q (have intro, table3, table4, fig2..fig9, x2, x3, x4)", name)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// Command chlrouter fronts a cluster of chlquery shard servers and serves
// the same query API a single chlquery -serve process does, over an index
// sliced across many machines.
//
// Split an index and start the cluster (see README.md "Running a
// cluster" for the full walkthrough):
//
//	chlquery -load cal.flat -split 3 -shards-dir ./cluster
//	chlquery -serve :8081 -manifest ./cluster/cluster.json -shard 0
//	chlquery -serve :8082 -manifest ./cluster/cluster.json -shard 1
//	chlquery -serve :8083 -manifest ./cluster/cluster.json -shard 2
//	chlrouter -serve :8080 -manifest ./cluster/cluster.json \
//	    -shards http://localhost:8081,http://localhost:8082,http://localhost:8083
//
// Each shard may be served by a replica group — several processes over
// the same slice file, listed with | inside the shard's slot — and the
// router load-balances across them (power-of-two-choices) and fails
// over when a replica dies: a query only fails when every replica of a
// shard is down. Start a second process per shard and list both:
//
//	chlquery -serve :9081 -manifest ./cluster/cluster.json -shard 0   # replica 1 of shard 0
//	chlrouter -serve :8080 -manifest ./cluster/cluster.json \
//	    -shards 'http://localhost:8081|http://localhost:9081,http://localhost:8082,http://localhost:8083'
//
// With -shards omitted the router uses the replica_addrs recorded in a
// v2 manifest (chlquery -split -addrs). The router then answers:
//
//	GET  /dist?u=17&v=3942      → same schema as a single server, bit-identical answers
//	POST /batch  [[u,v],...]    → {"dists":[...]}   (-1 marks unreachable pairs)
//	GET  /paths?u=17&v=3942     → witness-hub vertex walk, segments resolved cross-shard
//	GET  /knn?u=17&k=8          → k nearest targets, merged from per-shard inverted-index scans
//	POST /matrix {"sources":[...],"targets":[...]} → NDJSON distance rows, streamed per source
//	GET  /stats                 → per-replica request/error/ejection counters, router cache, generations
//	GET  /healthz               → per-replica health; 503 only when some shard has no live replica
//	GET  /metrics               → Prometheus text format, per-endpoint latency histograms
//	POST /reload?shard=1&replica=0&path=… → proxy a hot swap to one shard replica
//
// Same-shard queries are forwarded whole; cross-shard queries fetch the
// two label rows and hub-join at the router (QDOL-style point-to-point
// routing — see ARCHITECTURE.md "Sharded serving" and "Replicated
// serving").
//
// A cluster split from a directed index (the manifest records
// directed=true) serves ordered queries: /dist?u=&v= is the u→v
// distance, the router's answer cache keys on ordered pairs, and
// cross-shard joins fetch u's forward row and v's backward row. No extra
// flags are needed — directedness travels with the manifest.
//
// The front door is traffic-shaped: identical in-flight (u,v) queries
// always collapse into one backend round trip (singleflight);
// -hedge-after fires a slow shard request at a second replica and takes
// whichever answers first; -max-inflight and -client-qps/-client-burst
// shed excess load with a 429 whose JSON body is {"error", "reason",
// "retry_after_seconds"} (reason "over_capacity" or "client_quota",
// clients keyed on the X-Client-ID header with the remote host as
// fallback) plus a whole-second Retry-After header. Hedge, collapse,
// and shed counts surface in /stats and as
// chl_router_{hedges,collapsed,shed}_total in /metrics.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	chl "repro"
	"repro/internal/shard"
)

func main() {
	var (
		manifestPath = flag.String("manifest", "", "cluster manifest written by chlquery -split (cluster.json)")
		shardAddrs   = flag.String("shards", "", "comma-separated shard slots in shard-id order; replicas of one shard joined with | (default: the manifest's replica_addrs)")
		serveAddr    = flag.String("serve", ":8080", "address to serve the router API on")
		cacheCap     = flag.Int("cache", 1<<16, "router answer cache capacity (0 disables)")
		timeout      = flag.Duration("timeout", 5*time.Second, "per-shard request timeout")
		ejectAfter   = flag.Int("eject-after", 3, "consecutive failures before a replica is ejected from rotation")
		probation    = flag.Duration("probation", 2*time.Second, "how long an ejected replica sits out before one request probes it")
		hedgeAfter   = flag.Duration("hedge-after", 0, "fire a shard request at a second replica after this delay, first answer wins (0 disables hedging)")
		maxInFlight  = flag.Int("max-inflight", 0, "max concurrently served /dist and /batch requests; excess shed with 429 (0 disables)")
		clientQPS    = flag.Float64("client-qps", 0, "per-client sustained requests/second on /dist and /batch, keyed on X-Client-ID or remote host; over-quota requests shed with 429 (0 disables)")
		clientBurst  = flag.Int("client-burst", 0, "per-client burst on top of -client-qps (default max(1, -client-qps))")
		graphPath    = flag.String("graph", "", "the graph the cluster's index was built from (.gr DIMACS or edge list) — enables POST /update: the router corrects queries against a delta overlay, shards stay frozen")
		journalPath  = flag.String("update-journal", "", "with -graph: update journal file — accepted patches are appended before serving and replayed on restart")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fatal(fmt.Errorf("unexpected arguments %q (chlrouter takes flags only)", flag.Args()))
	}

	if *manifestPath == "" {
		fatal(fmt.Errorf("pass -manifest FILE (and -shards URL[|URL...],... unless the manifest records replica_addrs)"))
	}
	m, err := shard.ReadManifest(*manifestPath)
	if err != nil {
		fatal(err)
	}
	var groups [][]string
	if *shardAddrs != "" {
		for _, slot := range strings.Split(*shardAddrs, ",") {
			groups = append(groups, strings.Split(slot, "|"))
		}
	}
	var baseGraph *chl.Graph
	if *graphPath != "" {
		if baseGraph, err = loadGraph(*graphPath, m.Directed); err != nil {
			fatal(err)
		}
	} else if *journalPath != "" {
		fatal(fmt.Errorf("-update-journal needs -graph GRAPH to replay against"))
	}
	r, err := chl.NewRouter(chl.RouterConfig{
		Manifest:      m,
		ReplicaAddrs:  groups,
		CacheSize:     *cacheCap,
		Timeout:       *timeout,
		EjectAfter:    *ejectAfter,
		Probation:     *probation,
		HedgeDelay:    *hedgeAfter,
		MaxInFlight:   *maxInFlight,
		ClientQPS:     *clientQPS,
		ClientBurst:   *clientBurst,
		BaseGraph:     baseGraph,
		UpdateJournal: *journalPath,
	})
	if err != nil {
		fatal(err)
	}
	if baseGraph != nil {
		fmt.Printf("updates: enabled (graph %s, journal %s) — POST /update corrects queries at the router; shards stay frozen\n",
			*graphPath, *journalPath)
	}
	fmt.Printf("cluster: n=%d shards=%d ring-replicas=%d directed=%v cache=%d eject-after=%d probation=%v\n",
		m.Vertices, m.Shards, m.Replicas, m.Directed, *cacheCap, *ejectAfter, *probation)
	fmt.Printf("shaping: hedge-after=%v max-inflight=%d client-qps=%g client-burst=%d (0 = disabled)\n",
		*hedgeAfter, *maxInFlight, *clientQPS, *clientBurst)
	for _, h := range r.Health() {
		states := make([]string, len(h.Replicas))
		for j, rh := range h.Replicas {
			state := "up"
			if !rh.OK {
				state = "DOWN (" + rh.Error + ")"
			}
			states[j] = fmt.Sprintf("%s %s", rh.Addr, state)
		}
		fmt.Printf("  shard %d: %s\n", h.ID, strings.Join(states, ", "))
	}
	endpoints := "GET /dist?u=&v=, POST /batch, GET /paths?u=&v=, GET /knn?u=&k=, POST /matrix, GET /stats, GET /healthz, GET /metrics, POST /reload?shard=&replica="
	if baseGraph != nil {
		endpoints += ", POST /update"
	}
	fmt.Printf("routing on %s (%s)\n", *serveAddr, endpoints)
	log.Fatal(http.ListenAndServe(*serveAddr, r.Handler()))
}

// loadGraph reads the base graph for dynamic updates: DIMACS .gr by
// extension, 0-indexed edge list otherwise, with the cluster's
// directedness from the manifest.
func loadGraph(path string, directed bool) (*chl.Graph, error) {
	if strings.HasSuffix(path, ".gr") {
		return chl.ReadDIMACSFile(path, directed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return chl.ReadEdgeList(f, directed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chlrouter:", err)
	os.Exit(1)
}

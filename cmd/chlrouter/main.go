// Command chlrouter fronts a cluster of chlquery shard servers and serves
// the same query API a single chlquery -serve process does, over an index
// sliced across many machines.
//
// Split an index and start the cluster (see README.md "Running a
// cluster" for the full walkthrough):
//
//	chlquery -load cal.flat -split 3 -shards-dir ./cluster
//	chlquery -serve :8081 -manifest ./cluster/cluster.json -shard 0
//	chlquery -serve :8082 -manifest ./cluster/cluster.json -shard 1
//	chlquery -serve :8083 -manifest ./cluster/cluster.json -shard 2
//	chlrouter -serve :8080 -manifest ./cluster/cluster.json \
//	    -shards http://localhost:8081,http://localhost:8082,http://localhost:8083
//
// The router then answers:
//
//	GET  /dist?u=17&v=3942      → same schema as a single server, bit-identical answers
//	POST /batch  [[u,v],...]    → {"dists":[...]}   (-1 marks unreachable pairs)
//	GET  /stats                 → per-shard request/error counters, router cache, generations
//	GET  /healthz               → per-shard health; 503 (with detail) when any shard is down
//	GET  /metrics               → Prometheus text format, per-endpoint latency histograms
//	POST /reload?shard=1&path=… → proxy a hot swap to one shard
//
// Same-shard queries are forwarded whole; cross-shard queries fetch the
// two label rows and hub-join at the router (QDOL-style point-to-point
// routing — see ARCHITECTURE.md "Sharded serving").
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	chl "repro"
	"repro/internal/shard"
)

func main() {
	var (
		manifestPath = flag.String("manifest", "", "cluster manifest written by chlquery -split (cluster.json)")
		shardAddrs   = flag.String("shards", "", "comma-separated shard base URLs, in shard-id order")
		serveAddr    = flag.String("serve", ":8080", "address to serve the router API on")
		cacheCap     = flag.Int("cache", 1<<16, "router answer cache capacity (0 disables)")
		timeout      = flag.Duration("timeout", 5*time.Second, "per-shard request timeout")
	)
	flag.Parse()

	if *manifestPath == "" || *shardAddrs == "" {
		fatal(fmt.Errorf("pass -manifest FILE and -shards URL,URL,..."))
	}
	m, err := shard.ReadManifest(*manifestPath)
	if err != nil {
		fatal(err)
	}
	addrs := strings.Split(*shardAddrs, ",")
	r, err := chl.NewRouter(chl.RouterConfig{
		Manifest:  m,
		Addrs:     addrs,
		CacheSize: *cacheCap,
		Timeout:   *timeout,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cluster: n=%d shards=%d replicas=%d cache=%d\n", m.Vertices, m.Shards, m.Replicas, *cacheCap)
	for i, h := range r.Health() {
		state := "up"
		if !h.OK {
			state = "DOWN (" + h.Error + ")"
		}
		fmt.Printf("  shard %d @ %s: %s\n", i, addrs[i], state)
	}
	fmt.Printf("routing on %s (GET /dist?u=&v=, POST /batch, GET /stats, GET /healthz, GET /metrics, POST /reload?shard=)\n", *serveAddr)
	log.Fatal(http.ListenAndServe(*serveAddr, r.Handler()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chlrouter:", err)
	os.Exit(1)
}

// Command graphgen writes synthetic benchmark graphs in DIMACS .gr or edge
// list format, with reproducible seeds. The named datasets are the
// laptop-scale twins of the paper's Table 2 (see DESIGN.md §4).
//
// Usage:
//
//	graphgen -dataset CAL -o cal.gr
//	graphgen -kind road -rows 128 -cols 128 -o grid.gr
//	graphgen -kind scalefree -n 10000 -k 4 -format edgelist -o ba.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	chl "repro"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "named dataset (see cmd/chl -list)")
		scale   = flag.Float64("scale", 1, "scale factor for -dataset")
		kind    = flag.String("kind", "", "custom generator: road|scalefree|random|directed")
		rows    = flag.Int("rows", 64, "road: grid rows")
		cols    = flag.Int("cols", 64, "road: grid columns")
		n       = flag.Int("n", 4096, "scalefree/random: vertex count")
		k       = flag.Int("k", 3, "scalefree: edges per new vertex")
		m       = flag.Int("m", 0, "random: edge count (0 = 4n)")
		maxW    = flag.Int("maxw", 16, "random: maximum weight")
		seed    = flag.Int64("seed", 1, "generator seed")
		format  = flag.String("format", "dimacs", "output format: dimacs|edgelist")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fatal(fmt.Errorf("unexpected arguments %q (graphgen takes flags only)", flag.Args()))
	}

	var g *chl.Graph
	var err error
	switch {
	case *dataset != "":
		g, err = chl.GenerateDataset(*dataset, *scale, *seed)
	case *kind != "":
		if *m == 0 {
			*m = 4 * *n
		}
		switch strings.ToLower(*kind) {
		case "road":
			g = chl.GenerateRoadGrid(*rows, *cols, *seed)
		case "scalefree":
			g = chl.GenerateScaleFree(*n, *k, *seed)
		case "random":
			g = chl.GenerateRandom(*n, *m, *maxW, *seed)
		case "directed":
			g = chl.GenerateRandomDirected(*n, *m, *maxW, *seed)
		default:
			err = fmt.Errorf("unknown kind %q", *kind)
		}
	default:
		err = fmt.Errorf("pass -dataset NAME or -kind KIND")
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	var f *os.File
	if *out != "" {
		if f, err = os.Create(*out); err != nil {
			fatal(err)
		}
		w = f
	}
	switch *format {
	case "dimacs":
		err = chl.WriteDIMACS(w, g)
	case "edgelist":
		err = chl.WriteEdgeList(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	// Close errors on the write path are data loss (a full disk often
	// only surfaces here); a deferred close would swallow them.
	if f != nil {
		if err := f.Close(); err != nil {
			fatal(fmt.Errorf("writing %s: %w", *out, err))
		}
	}
	fmt.Fprintf(os.Stderr, "graphgen: n=%d m=%d directed=%v\n", g.NumVertices(), g.NumEdges(), g.Directed())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}

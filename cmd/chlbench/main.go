// Command chlbench is the standing performance harness for the two query
// kernels: the fixed-width packed merge-join and the block-skipping join
// over compressed (CHFX v4) labels. It builds the agreement fixtures
// in-process, gates on every kernel answering bit-identically to the
// in-memory index, micro-benchmarks both kernels over the same query
// pairs, measures end-to-end /dist and /batch latency through the HTTP
// serving tier for both storage formats, times the rich workloads
// (/paths, /knn, /matrix) with their own agreement gate (path walks
// must re-sum to the /dist answer bit for bit), and writes the whole
// report as JSON.
//
// Usage:
//
//	chlbench                       # full run, writes BENCH_chl.json
//	chlbench -smoke                # reduced scale for CI (seconds, not minutes)
//	chlbench -out report.json -queries 50000 -seed 7
//
// The process exits non-zero if any kernel disagrees with the in-memory
// index on any fixture, or if the compressed file fails the 25% on-disk
// savings bar — so CI can run it as a regression gate, not just a report.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	chl "repro"
	"repro/internal/shard"
	"repro/internal/sssp"
)

// KernelStats is one kernel's micro-benchmark over the fixture's pairs.
type KernelStats struct {
	NsPerQuery float64 `json:"ns_per_query"`
	Mqps       float64 `json:"mqps"`
}

// HTTPStats is the end-to-end serving latency for one storage format.
type HTTPStats struct {
	DistMeanUs float64 `json:"dist_mean_us"`
	DistP99Us  float64 `json:"dist_p99_us"`
	BatchMs    float64 `json:"batch_ms"` // one POST /batch with all pairs
}

// WorkloadStats is the rich-workload serving latency for one storage
// format, with its own agreement gate: every /paths walk must re-sum to
// the /dist answer bit for bit, every /knn neighbor and /matrix cell
// must match the pairwise kernel exactly.
type WorkloadStats struct {
	PathsMeanUs   float64 `json:"paths_mean_us"`
	KNNMeanUs     float64 `json:"knn_mean_us"`
	MatrixRowUs   float64 `json:"matrix_row_us"` // per streamed NDJSON row
	Disagreements int     `json:"disagreements"`
	Agree         bool    `json:"agree"`
}

// FixtureReport is everything measured on one agreement fixture.
type FixtureReport struct {
	Name            string                   `json:"name"`
	Vertices        int                      `json:"vertices"`
	Labels          int64                    `json:"labels"`
	Directed        bool                     `json:"directed"`
	BytesFixed      int                      `json:"bytes_fixed"`
	BytesCompressed int                      `json:"bytes_compressed"`
	SavingsPct      float64                  `json:"savings_pct"`
	Kernels         map[string]KernelStats   `json:"kernels"`
	HTTP            map[string]HTTPStats     `json:"http"`
	Workloads       map[string]WorkloadStats `json:"workloads"`
	Disagreements   int                      `json:"disagreements"`
	Agree           bool                     `json:"agree"`
}

// RouterSmoke is the traffic-shaping gate: a small replicated cluster
// served through the router with hedging and per-client quotas on must
// export live chl_router_{hedges,collapsed,shed}_total metrics.
type RouterSmoke struct {
	Hedges    float64 `json:"hedges_total"`
	Collapsed float64 `json:"collapsed_total"`
	Shed      float64 `json:"shed_total"`
	OK        bool    `json:"ok"`
}

// UpdateStats is the dynamic-update section: /dist latency on the same
// server before and after a patch batch lands (frozen join vs delta
// overlay correction), the batch apply and compaction wall times, and
// an agreement gate — every corrected and post-compaction answer must
// equal a fresh Dijkstra on the patched graph, bit for bit.
type UpdateStats struct {
	PatchOps          int     `json:"patch_ops"`
	FrozenDistMeanUs  float64 `json:"frozen_dist_mean_us"`
	PatchedDistMeanUs float64 `json:"patched_dist_mean_us"`
	UpdateApplyMs     float64 `json:"update_apply_ms"`
	CompactMs         float64 `json:"compact_ms"`
	PostCompactMeanUs float64 `json:"post_compact_dist_mean_us"`
	Disagreements     int     `json:"disagreements"`
	Agree             bool    `json:"agree"`
}

// Report is the BENCH_chl.json schema.
type Report struct {
	Generated time.Time       `json:"generated"`
	Smoke     bool            `json:"smoke"`
	Queries   int             `json:"queries"`
	Seed      int64           `json:"seed"`
	Fixtures  []FixtureReport `json:"fixtures"`
	Router    *RouterSmoke    `json:"router,omitempty"`
	Updates   *UpdateStats    `json:"updates,omitempty"`
	OK        bool            `json:"ok"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_chl.json", "report output path")
		smoke   = flag.Bool("smoke", false, "reduced scale for CI")
		queries = flag.Int("queries", 0, "query pairs per fixture (0: 20000, or 2000 with -smoke)")
		httpQ   = flag.Int("http-queries", 0, "sequential /dist requests per format (0: 2000, or 300 with -smoke)")
		seed    = flag.Int64("seed", 1, "build and query-generation seed")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fatal(fmt.Errorf("unexpected arguments %q (chlbench takes flags only)", flag.Args()))
	}
	if *queries == 0 {
		*queries = 20000
		if *smoke {
			*queries = 2000
		}
	}
	if *httpQ == 0 {
		*httpQ = 2000
		if *smoke {
			*httpQ = 300
		}
	}

	type fixture struct {
		name string
		g    *chl.Graph
	}
	scale := func(full, small int) int {
		if *smoke {
			return small
		}
		return full
	}
	fixtures := []fixture{
		{"scalefree", chl.GenerateScaleFree(scale(8192, 1024), 3, *seed)},
		{"road", chl.GenerateRoadGrid(scale(64, 20), scale(64, 20), *seed+1)},
		{"directed", chl.GenerateRandomDirected(scale(2048, 512), scale(12288, 3072), 9, *seed+2)},
	}

	rep := Report{Generated: time.Now().UTC(), Smoke: *smoke, Queries: *queries, Seed: *seed, OK: true}
	for _, f := range fixtures {
		fr := benchFixture(f.name, f.g, *queries, *httpQ, *seed)
		rep.Fixtures = append(rep.Fixtures, fr)
		if !fr.Agree || fr.SavingsPct < 25 {
			rep.OK = false
		}
	}

	rs := routerSmoke(fixtures[0].g, *seed)
	rep.Router = &rs
	if !rs.OK {
		rep.OK = false
	}

	us := updatesBench(fixtures[0].g, *httpQ, *seed)
	rep.Updates = &us
	if !us.Agree {
		rep.OK = false
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d fixtures)\n", *out, len(rep.Fixtures))
	if !rep.OK {
		fatal(fmt.Errorf("kernel disagreement or <25%% compression savings — see %s", *out))
	}
}

func benchFixture(name string, g *chl.Graph, queries, httpQ int, seed int64) FixtureReport {
	algo := chl.AlgoGLL
	if g.Directed() {
		algo = chl.AlgoSeqPLL // GLL is undirected-only
	}
	ix, err := chl.Build(g, chl.Options{Algorithm: algo, Seed: seed})
	if err != nil {
		fatal(err)
	}
	fx, err := ix.Freeze()
	if err != nil {
		fatal(err)
	}
	cfx, err := fx.Compress()
	if err != nil {
		fatal(err)
	}
	fr := FixtureReport{
		Name:      name,
		Vertices:  fx.NumVertices(),
		Labels:    fx.TotalLabels(),
		Directed:  fx.Directed(),
		Kernels:   map[string]KernelStats{},
		HTTP:      map[string]HTTPStats{},
		Workloads: map[string]WorkloadStats{},
	}

	// On-disk footprint of both formats for the same labels.
	var plain, comp bytes.Buffer
	if err := fx.Save(&plain); err != nil {
		fatal(err)
	}
	if err := cfx.Save(&comp); err != nil {
		fatal(err)
	}
	fr.BytesFixed = plain.Len()
	fr.BytesCompressed = comp.Len()
	fr.SavingsPct = 100 * (1 - float64(comp.Len())/float64(plain.Len()))

	n := fx.NumVertices()
	rng := rand.New(rand.NewSource(seed))
	us := make([]int, queries)
	vs := make([]int, queries)
	for i := range us {
		us[i], vs[i] = rng.Intn(n), rng.Intn(n)
	}

	// Agreement gate: both kernels (and the hash-join serving path)
	// against the in-memory index, bit for bit.
	scratch := fx.NewScratch()
	for i := range us {
		want := ix.Query(us[i], vs[i])
		if fx.Query(us[i], vs[i]) != want ||
			fx.QueryWith(scratch, us[i], vs[i]) != want ||
			cfx.Query(us[i], vs[i]) != want {
			fr.Disagreements++
		}
	}
	fr.Agree = fr.Disagreements == 0

	fr.Kernels["packed"] = timeKernel(fx, us, vs)
	fr.Kernels["compressed"] = timeKernel(cfx, us, vs)

	fr.HTTP["fixed"] = timeHTTP(fx, us, vs, httpQ)
	fr.HTTP["compressed"] = timeHTTP(cfx, us, vs, httpQ)

	fr.Workloads["fixed"] = timeWorkloads(fx, us, vs, httpQ/4)
	fr.Workloads["compressed"] = timeWorkloads(cfx, us, vs, httpQ/4)
	if !fr.Workloads["fixed"].Agree || !fr.Workloads["compressed"].Agree {
		fr.Agree = false
	}

	fmt.Printf("%-10s n=%-6d labels=%-8d saved=%5.1f%%  packed=%6.0f ns/q  compressed=%6.0f ns/q  paths=%5.0f µs  knn=%5.0f µs  row=%5.0f µs  agree=%v\n",
		name, fr.Vertices, fr.Labels, fr.SavingsPct,
		fr.Kernels["packed"].NsPerQuery, fr.Kernels["compressed"].NsPerQuery,
		fr.Workloads["fixed"].PathsMeanUs, fr.Workloads["fixed"].KNNMeanUs,
		fr.Workloads["fixed"].MatrixRowUs, fr.Agree)
	return fr
}

// timeWorkloads measures /paths, /knn, and /matrix over the real HTTP
// tier and gates on agreement: every path walk must re-sum through the
// pairwise kernel to exactly the distance it claims (which is the /dist
// answer, bit for bit — same kernel, same store), every /knn neighbor
// and /matrix cell must equal the pairwise join for its pair.
func timeWorkloads(fx *chl.FlatIndex, us, vs []int, wq int) WorkloadStats {
	srv := httptest.NewServer(chl.NewServerFromFlat(fx, 0).Handler())
	defer srv.Close()
	client := srv.Client()
	if wq < 16 {
		wq = 16
	}
	var ws WorkloadStats

	start := time.Now()
	for i := 0; i < wq; i++ {
		u, v := us[i%len(us)], vs[i%len(vs)]
		resp, err := client.Get(fmt.Sprintf("%s/paths?u=%d&v=%d", srv.URL, u, v))
		if err != nil {
			fatal(err)
		}
		var body struct {
			Dist      float64 `json:"dist"`
			Path      []int   `json:"path"`
			Reachable bool    `json:"reachable"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			fatal(err)
		}
		resp.Body.Close()
		want := fx.Query(u, v)
		if !body.Reachable {
			if want != chl.Infinity {
				ws.Disagreements++
			}
			continue
		}
		var sum float64
		for j := 0; j+1 < len(body.Path); j++ {
			sum += fx.Query(body.Path[j], body.Path[j+1])
		}
		if body.Dist != want || sum != want {
			ws.Disagreements++
		}
	}
	ws.PathsMeanUs = float64(time.Since(start).Microseconds()) / float64(wq)

	const k = 8
	start = time.Now()
	for i := 0; i < wq; i++ {
		u := us[i%len(us)]
		resp, err := client.Get(fmt.Sprintf("%s/knn?u=%d&k=%d", srv.URL, u, k))
		if err != nil {
			fatal(err)
		}
		var body struct {
			Neighbors []struct {
				V    int     `json:"v"`
				Dist float64 `json:"dist"`
			} `json:"neighbors"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			fatal(err)
		}
		resp.Body.Close()
		for _, nb := range body.Neighbors {
			if fx.Query(u, nb.V) != nb.Dist {
				ws.Disagreements++
			}
		}
	}
	ws.KNNMeanUs = float64(time.Since(start).Microseconds()) / float64(wq)

	side := 32
	if side > fx.NumVertices() {
		side = fx.NumVertices()
	}
	sources := make([]int, side)
	targets := make([]int, side)
	for i := 0; i < side; i++ {
		sources[i], targets[i] = us[i%len(us)], vs[i%len(vs)]
	}
	mbody, err := json.Marshal(map[string]any{"sources": sources, "targets": targets})
	if err != nil {
		fatal(err)
	}
	start = time.Now()
	resp, err := client.Post(srv.URL+"/matrix", "application/json", bytes.NewReader(mbody))
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("/matrix status %d", resp.StatusCode))
	}
	dec := json.NewDecoder(resp.Body)
	var head struct {
		Targets []int `json:"targets"`
		Rows    int   `json:"rows"`
	}
	if err := dec.Decode(&head); err != nil {
		fatal(err)
	}
	for r := 0; r < head.Rows; r++ {
		var row struct {
			U     int       `json:"u"`
			Dists []float64 `json:"dists"`
		}
		if err := dec.Decode(&row); err != nil {
			fatal(err)
		}
		for j, d := range row.Dists {
			want := fx.Query(row.U, head.Targets[j])
			if d == -1 {
				d = chl.Infinity
			}
			if d != want {
				ws.Disagreements++
			}
		}
	}
	resp.Body.Close()
	ws.MatrixRowUs = float64(time.Since(start).Microseconds()) / float64(side)

	ws.Agree = ws.Disagreements == 0
	return ws
}

// timeKernel measures fx.Query over the pair set. The merge path is
// scratch-free for both formats, so this is a direct kernel comparison:
// JoinPacked under a fixed-width index, JoinCompressed under a v4 one.
func timeKernel(fx *chl.FlatIndex, us, vs []int) KernelStats {
	var sink float64
	start := time.Now()
	for i := range us {
		sink += fx.Query(us[i], vs[i])
	}
	elapsed := time.Since(start)
	_ = sink
	q := float64(len(us))
	return KernelStats{
		NsPerQuery: float64(elapsed.Nanoseconds()) / q,
		Mqps:       q / elapsed.Seconds() / 1e6,
	}
}

// timeHTTP serves fx through the real HTTP tier (cache disabled so every
// request does kernel work) and measures sequential /dist latency plus
// one /batch round trip carrying every pair.
func timeHTTP(fx *chl.FlatIndex, us, vs []int, httpQ int) HTTPStats {
	srv := httptest.NewServer(chl.NewServerFromFlat(fx, 0).Handler())
	defer srv.Close()
	client := srv.Client()

	lat := make([]float64, 0, httpQ)
	for i := 0; i < httpQ; i++ {
		u, v := us[i%len(us)], vs[i%len(vs)]
		start := time.Now()
		resp, err := client.Get(fmt.Sprintf("%s/dist?u=%d&v=%d", srv.URL, u, v))
		if err != nil {
			fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("/dist status %d", resp.StatusCode))
		}
		var body struct {
			Dist float64 `json:"dist"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			fatal(err)
		}
		resp.Body.Close()
		lat = append(lat, float64(time.Since(start).Microseconds()))
	}
	sort.Float64s(lat)
	var mean float64
	for _, l := range lat {
		mean += l
	}
	mean /= float64(len(lat))
	p99 := lat[len(lat)*99/100]

	pairs := make([][2]int, len(us))
	for i := range us {
		pairs[i] = [2]int{us[i], vs[i]}
	}
	body, err := json.Marshal(pairs)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	resp, err := client.Post(srv.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("/batch status %d", resp.StatusCode))
	}
	var out struct {
		Dists []float64 `json:"dists"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fatal(err)
	}
	resp.Body.Close()
	batch := time.Since(start)
	if len(out.Dists) != len(pairs) {
		fatal(fmt.Errorf("/batch returned %d dists for %d pairs", len(out.Dists), len(pairs)))
	}

	return HTTPStats{
		DistMeanUs: mean,
		DistP99Us:  p99,
		BatchMs:    float64(batch.Microseconds()) / 1000,
	}
}

// routerSmoke runs the traffic-shaping gate: a 2-shard × 2-replica
// in-process cluster with one deliberately slow replica, served through
// a router with hedging and per-client quotas enabled. Direct query load
// must fire hedges, a duplicate-query wave must collapse, a greedy HTTP
// client must be shed with a 429, and all three counters must show up in
// /metrics with their live values.
func routerSmoke(g *chl.Graph, seed int64) RouterSmoke {
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: seed})
	if err != nil {
		fatal(err)
	}
	fx, err := ix.Freeze()
	if err != nil {
		fatal(err)
	}
	dir, err := os.MkdirTemp("", "chlbench-router-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	m, err := fx.SaveShards(dir, 2, 64, 1)
	if err != nil {
		fatal(err)
	}
	part, err := m.Partition()
	if err != nil {
		fatal(err)
	}

	const slowDelay = 5 * time.Millisecond
	groups := make([][]string, m.Shards)
	for sid := 0; sid < m.Shards; sid++ {
		path, err := chl.ShardFilePath(filepath.Join(dir, shard.ManifestName), m, sid)
		if err != nil {
			fatal(err)
		}
		for rid := 0; rid < 2; rid++ {
			s, err := chl.NewServer(path, 0)
			if err != nil {
				fatal(err)
			}
			defer s.Close()
			if err := s.SetShard(sid, part); err != nil {
				fatal(err)
			}
			h := s.Handler()
			if sid == 0 && rid == 1 { // the hedging target
				inner := h
				h = http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
					time.Sleep(slowDelay)
					inner.ServeHTTP(w, req)
				})
			}
			ts := httptest.NewServer(h)
			defer ts.Close()
			groups[sid] = append(groups[sid], ts.URL)
		}
	}
	r, err := chl.NewRouter(chl.RouterConfig{
		Manifest:     m,
		ReplicaAddrs: groups,
		HedgeDelay:   time.Millisecond,
		ClientQPS:    1,
		ClientBurst:  1,
	})
	if err != nil {
		fatal(err)
	}

	// Load: plain queries fire hedges off the slow replica; concurrent
	// duplicate waves collapse into shared flights.
	n := fx.NumVertices()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 100; i++ {
		if _, err := r.Query(rng.Intn(n), rng.Intn(n)); err != nil {
			fatal(err)
		}
	}
	for wave := 0; wave < 50 && r.Stats().Collapsed == 0; wave++ {
		u, v := rng.Intn(n), rng.Intn(n)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				_, _, _, _ = r.QueryHub(u, v)
			}()
		}
		close(start)
		wg.Wait()
	}

	// A greedy client (QPS 1, burst 1) must draw at least one 429.
	routerTS := httptest.NewServer(r.Handler())
	defer routerTS.Close()
	for i := 0; i < 5; i++ {
		req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/dist?u=0&v=%d", routerTS.URL, i+1), nil)
		if err != nil {
			fatal(err)
		}
		req.Header.Set(chl.QuotaKeyHeader, "chlbench-greedy")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(routerTS.URL + "/metrics")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	metric := func(name string) float64 {
		for _, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(line, name+" ") {
				v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
				if err != nil {
					fatal(fmt.Errorf("metric %s: %w", name, err))
				}
				return v
			}
		}
		return -1 // family missing entirely
	}
	rs := RouterSmoke{
		Hedges:    metric("chl_router_hedges_total"),
		Collapsed: metric("chl_router_collapsed_total"),
		Shed:      metric("chl_router_shed_total"),
	}
	rs.OK = rs.Hedges > 0 && rs.Collapsed > 0 && rs.Shed > 0
	fmt.Printf("router     hedges=%g collapsed=%g shed=%g ok=%v\n", rs.Hedges, rs.Collapsed, rs.Shed, rs.OK)
	return rs
}

// benchPatchOps derives a deterministic patch batch from g: deletions
// and reweights of existing edges spread across the vertex range, plus
// insertions of absent ones, all with small integer weights so patched
// distances stay float32-exact and the agreement gate can assert ==.
func benchPatchOps(g *chl.Graph) []chl.EdgeOp {
	n := g.NumVertices()
	var ops []chl.EdgeOp
	for step := 0; step < n && len(ops) < 8; step++ {
		u := (step * 131) % n
		heads, _ := g.Neighbors(u)
		for _, h := range heads {
			v := int(h)
			if u == v || (!g.Directed() && v < u) {
				continue
			}
			if len(ops)%2 == 0 {
				ops = append(ops, chl.EdgeOp{Kind: chl.EdgeOpDel, U: u, V: v})
			} else {
				ops = append(ops, chl.EdgeOp{Kind: chl.EdgeOpSet, U: u, V: v, W: float64(2 + step%7)})
			}
			break
		}
	}
	taken := map[[2]int]bool{}
	for _, op := range ops {
		taken[[2]int{op.U, op.V}] = true
		taken[[2]int{op.V, op.U}] = true
	}
	for i := 1; len(ops) < 12 && i < 8*n; i++ {
		u, v := (i*101)%n, (i*211+37)%n
		if u == v || taken[[2]int{u, v}] {
			continue
		}
		if _, has := g.HasEdge(u, v); has {
			continue
		}
		if !g.Directed() {
			if _, has := g.HasEdge(v, u); has {
				continue
			}
		}
		taken[[2]int{u, v}] = true
		taken[[2]int{v, u}] = true
		ops = append(ops, chl.EdgeOp{Kind: chl.EdgeOpAdd, U: u, V: v, W: float64(1 + i%6)})
	}
	if len(ops) == 0 {
		fatal(fmt.Errorf("benchPatchOps: fixture graph yielded no ops"))
	}
	return ops
}

// updatesBench measures the dynamic-update tier on the first fixture:
// /dist latency through the frozen join, the wall time to accept a
// patch batch (POST /update), /dist latency through the delta overlay
// correction on the same pairs, and the wall time to recompact (POST
// /compact). Every patched-era and post-compaction answer is gated
// against a fresh Dijkstra on the patched graph — the corrected path is
// only worth measuring if it is exact.
func updatesBench(g *chl.Graph, httpQ int, seed int64) UpdateStats {
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: seed})
	if err != nil {
		fatal(err)
	}
	fx, err := ix.Freeze()
	if err != nil {
		fatal(err)
	}
	dir, err := os.MkdirTemp("", "chlbench-updates-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.flat")
	if err := fx.SaveFile(path); err != nil {
		fatal(err)
	}
	s, err := chl.NewServer(path, 0)
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	if err := s.EnableUpdates(g, ""); err != nil {
		fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	n := fx.NumVertices()
	rng := rand.New(rand.NewSource(seed + 9))
	type pair struct{ u, v int }
	pairs := make([]pair, httpQ)
	for i := range pairs {
		pairs[i] = pair{rng.Intn(n), rng.Intn(n)}
	}
	var st UpdateStats
	sweep := func(check func(u, v int, reachable bool, dist float64)) float64 {
		start := time.Now()
		for _, p := range pairs {
			resp, err := client.Get(fmt.Sprintf("%s/dist?u=%d&v=%d", srv.URL, p.u, p.v))
			if err != nil {
				fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				fatal(fmt.Errorf("/dist status %d", resp.StatusCode))
			}
			var body struct {
				Reachable bool    `json:"reachable"`
				Dist      float64 `json:"dist"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				fatal(err)
			}
			resp.Body.Close()
			if check != nil {
				check(p.u, p.v, body.Reachable, body.Dist)
			}
		}
		return float64(time.Since(start).Microseconds()) / float64(len(pairs))
	}

	st.FrozenDistMeanUs = sweep(nil)

	ops := benchPatchOps(g)
	st.PatchOps = len(ops)
	start := time.Now()
	resp, err := client.Post(srv.URL+"/update", "text/plain", bytes.NewReader(chl.FormatPatchLog(ops)))
	if err != nil {
		fatal(err)
	}
	// The drain is inside the timed window: a transfer error here means
	// the measurement is of a broken request, not a slow one.
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		fatal(fmt.Errorf("draining /update response: %w", err))
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("/update status %d", resp.StatusCode))
	}
	st.UpdateApplyMs = float64(time.Since(start).Microseconds()) / 1000

	// Agreement oracle: exact Dijkstra rows on the patched graph.
	patched, err := chl.ApplyPatch(g, ops)
	if err != nil {
		fatal(err)
	}
	rows := map[int][]float64{}
	check := func(u, v int, reachable bool, dist float64) {
		row, ok := rows[u]
		if !ok {
			row = sssp.Dijkstra(patched, u)
			rows[u] = row
		}
		want := row[v]
		if reachable != (want != chl.Infinity) || (reachable && dist != want) {
			st.Disagreements++
		}
	}
	st.PatchedDistMeanUs = sweep(check)

	start = time.Now()
	resp, err = client.Post(srv.URL+"/compact", "application/json", nil)
	if err != nil {
		fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		fatal(fmt.Errorf("draining /compact response: %w", err))
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("/compact status %d", resp.StatusCode))
	}
	st.CompactMs = float64(time.Since(start).Microseconds()) / 1000

	st.PostCompactMeanUs = sweep(check)
	st.Agree = st.Disagreements == 0
	fmt.Printf("updates    ops=%d frozen=%5.0f µs patched=%5.0f µs apply=%6.1f ms compact=%6.1f ms post=%5.0f µs agree=%v\n",
		st.PatchOps, st.FrozenDistMeanUs, st.PatchedDistMeanUs, st.UpdateApplyMs, st.CompactMs, st.PostCompactMeanUs, st.Agree)
	return st
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chlbench:", err)
	os.Exit(1)
}

package chl_test

// One benchmark per table and figure of the paper's evaluation (§7), plus
// micro-benchmarks for the primitives. Each experiment benchmark runs the
// corresponding internal/exp driver at a reduced scale and reports the
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in miniature; cmd/experiments produces
// the full-size text report.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	chl "repro"
	"repro/internal/exp"
	"repro/internal/query"
)

// benchCfg keeps one benchmark iteration to roughly a second.
func benchCfg() exp.Config {
	return exp.Config{Scale: 0.15, Seed: 1, Workers: 2, QueryBatch: 20_000, LatencyQueries: 1_000}.Defaults()
}

// BenchmarkTable3SharedMemory reproduces Table 3: GLL vs LCC vs SparaPLL vs
// seqPLL construction time and average label size.
func BenchmarkTable3SharedMemory(b *testing.B) {
	cfg := benchCfg()
	var rows []exp.Table3Row
	for i := 0; i < b.N; i++ {
		rows = exp.Table3(cfg)
	}
	var chlALS, spALS float64
	for _, r := range rows {
		chlALS += r.CHLALS
		spALS += r.SparaALS
	}
	b.ReportMetric(chlALS/float64(len(rows)), "CHL-ALS")
	b.ReportMetric(spALS/float64(len(rows)), "SparaPLL-ALS")
	b.ReportMetric(100*(1-chlALS/spALS), "label-reduction-%")
}

// BenchmarkTable4QueryModes reproduces Table 4: QLSN/QFDL/QDOL throughput,
// latency and memory at q=16.
func BenchmarkTable4QueryModes(b *testing.B) {
	cfg := benchCfg()
	var rows []exp.Table4Row
	for i := 0; i < b.N; i++ {
		rows = exp.Table4(cfg)
	}
	var qdol, qfdl float64
	var count int
	for _, r := range rows {
		if !r.Skipped[query.QDOL] && !r.Skipped[query.QFDL] {
			qdol += r.Throughput[query.QDOL]
			qfdl += r.Throughput[query.QFDL]
			count++
		}
	}
	if count > 0 {
		b.ReportMetric(qdol/qfdl, "QDOL/QFDL-throughput")
	}
}

// BenchmarkFigure2LabelsPerSPT reproduces Figure 2's decay series.
func BenchmarkFigure2LabelsPerSPT(b *testing.B) {
	cfg := benchCfg()
	var series []exp.FigureSeries
	for i := 0; i < b.N; i++ {
		series = exp.Figure2(cfg)
	}
	first := series[0].Points
	b.ReportMetric(first[0].Value/maxf(first[len(first)-1].Value, 1), "first/last-bucket")
}

// BenchmarkFigure3Psi reproduces Figure 3's Ψ-per-tree series.
func BenchmarkFigure3Psi(b *testing.B) {
	cfg := benchCfg()
	var series []exp.FigureSeries
	for i := 0; i < b.N; i++ {
		series = exp.Figure3(cfg)
	}
	var peak float64
	for _, s := range series {
		for _, p := range s.Points {
			if p.Value > peak {
				peak = p.Value
			}
		}
	}
	b.ReportMetric(peak, "max-psi")
}

// BenchmarkFigure4RestrictedPruning reproduces Figure 4: labels vs pruning
// hub budget.
func BenchmarkFigure4RestrictedPruning(b *testing.B) {
	cfg := benchCfg()
	var series []exp.Figure4Series
	for i := 0; i < b.N; i++ {
		series = exp.Figure4(cfg)
	}
	s := series[0]
	b.ReportMetric(float64(s.Points[0].Labels)/float64(s.CHL), "rankonly/CHL-labels")
}

// BenchmarkFigure5AlphaSweep reproduces Figure 5: GLL time vs α.
func BenchmarkFigure5AlphaSweep(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		exp.Figure5(cfg)
	}
}

// BenchmarkFigure6PsiSweep reproduces Figure 6: Hybrid time vs Ψth at q=16.
func BenchmarkFigure6PsiSweep(b *testing.B) {
	cfg := benchCfg()
	var pts []exp.Figure6Point
	for i := 0; i < b.N; i++ {
		pts = exp.Figure6(cfg)
	}
	b.ReportMetric(float64(len(pts)), "points")
}

// BenchmarkFigure7Breakdown reproduces Figure 7: LCC vs GLL phase split.
func BenchmarkFigure7Breakdown(b *testing.B) {
	cfg := benchCfg()
	var rows []exp.Figure7Row
	for i := 0; i < b.N; i++ {
		rows = exp.Figure7(cfg)
	}
	var ratio float64
	for _, r := range rows {
		ratio += float64(r.LCCCleanEntries) / maxf(float64(r.GLLCleanEntries), 1)
	}
	b.ReportMetric(ratio/float64(len(rows)), "LCC/GLL-clean-entries")
}

// BenchmarkFigure8StrongScaling reproduces Figure 8 on a reduced q grid.
func BenchmarkFigure8StrongScaling(b *testing.B) {
	cfg := benchCfg()
	cfg.Scale = 0.3
	var pts []exp.Figure8Point
	for i := 0; i < b.N; i++ {
		pts = exp.Figure8(cfg)
	}
	// Report PLaNT's modeled speedup on the first dataset.
	var t1, tq float64
	maxQ := 0
	for _, p := range pts {
		if p.Dataset == "CAL" && p.Algorithm == "PLaNT" && !p.OOM {
			if p.Nodes == 1 {
				t1 = p.Modeled
			}
			if p.Nodes > maxQ {
				maxQ, tq = p.Nodes, p.Modeled
			}
		}
	}
	if tq > 0 {
		b.ReportMetric(t1/tq, "PLaNT-speedup")
	}
}

// BenchmarkFigure9ALSGrowth reproduces Figure 9: ALS vs q.
func BenchmarkFigure9ALSGrowth(b *testing.B) {
	cfg := benchCfg()
	var pts []exp.Figure9Point
	for i := 0; i < b.N; i++ {
		pts = exp.Figure9(cfg)
	}
	// DparaPLL ALS inflation at the largest q relative to canonical.
	var dp, hy float64
	maxQ := 0
	for _, p := range pts {
		if p.Nodes > maxQ {
			maxQ = p.Nodes
		}
	}
	for _, p := range pts {
		if p.Nodes == maxQ && !p.OOM {
			if p.Algorithm == "DparaPLL" {
				dp += p.ALS
			} else {
				hy += p.ALS
			}
		}
	}
	if hy > 0 {
		b.ReportMetric(dp/hy, "DparaPLL/CHL-ALS")
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the primitives.

func benchGraph(b *testing.B) *chl.Graph {
	b.Helper()
	return chl.GenerateScaleFree(2048, 4, 1)
}

func BenchmarkBuildSeqPLL(b *testing.B) {
	g := benchGraph(b)
	ord := chl.RankByDegree(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoSeqPLL, Order: ord}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildGLL(b *testing.B) {
	g := benchGraph(b)
	ord := chl.RankByDegree(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Order: ord, Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildPLaNT(b *testing.B) {
	g := benchGraph(b)
	ord := chl.RankByDegree(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoPLaNT, Order: ord, Workers: 2, CommonHubs: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildHybridQ8(b *testing.B) {
	g := benchGraph(b)
	ord := chl.RankByDegree(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoHybrid, Order: ord, Nodes: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// The query benchmarks run at serving scale (a 32k-vertex scale-free
// graph) rather than on the small construction benchmark graph: an index
// that fits L2 whole hides exactly the layout effects the flat store is
// for. The index is built once and shared.
var serveBench struct {
	once   sync.Once
	ix     *chl.Index
	fx     *chl.FlatIndex
	cfx    *chl.FlatIndex // compressed sibling of fx, same labels
	us, vs []int
}

func benchServeIndex(b *testing.B) (*chl.Index, *chl.FlatIndex, []int, []int) {
	b.Helper()
	serveBench.once.Do(func() {
		g := chl.GenerateScaleFree(32768, 4, 1)
		ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL})
		if err != nil {
			panic(err)
		}
		fx, err := ix.Freeze()
		if err != nil {
			panic(err)
		}
		cfx, err := fx.Compress()
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(2))
		us := make([]int, 4096)
		vs := make([]int, 4096)
		for i := range us {
			us[i], vs[i] = rng.Intn(32768), rng.Intn(32768)
		}
		serveBench.ix, serveBench.fx, serveBench.cfx = ix, fx, cfx
		serveBench.us, serveBench.vs = us, vs
	})
	return serveBench.ix, serveBench.fx, serveBench.us, serveBench.vs
}

// benchServeCompressed returns the compressed sibling of the shared
// serving fixture.
func benchServeCompressed(b *testing.B) (*chl.FlatIndex, []int, []int) {
	b.Helper()
	_, _, us, vs := benchServeIndex(b)
	return serveBench.cfx, us, vs
}

func BenchmarkQuery(b *testing.B) {
	ix, _, us, vs := benchServeIndex(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += ix.Query(us[i%4096], vs[i%4096])
	}
	_ = sink
}

// BenchmarkFlatQuery is BenchmarkQuery on the frozen packed store through
// the serving path: same pairs, 8-byte packed entries instead of 16-byte
// slice elements behind two pointer chases, and a per-worker scratch
// buffer that replaces the mispredicting merge-join with a hash-join.
func BenchmarkFlatQuery(b *testing.B) {
	_, fx, us, vs := benchServeIndex(b)
	scratch := fx.NewScratch()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += fx.QueryWith(scratch, us[i%4096], vs[i%4096])
	}
	_ = sink
}

// BenchmarkFlatQueryMerge is the allocation- and scratch-free flat query
// (the path big-graph serving uses).
func BenchmarkFlatQueryMerge(b *testing.B) {
	_, fx, us, vs := benchServeIndex(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += fx.Query(us[i%4096], vs[i%4096])
	}
	_ = sink
}

// BenchmarkFlatQueryParallel is the hash-join flat query across all
// available cores. Each RunParallel goroutine allocates its own
// QueryScratch inside the closure — the scratch carries a generation
// counter and a versioned bitmap, so sharing one across goroutines
// would race and silently corrupt answers.
func BenchmarkFlatQueryParallel(b *testing.B) {
	_, fx, us, vs := benchServeIndex(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		scratch := fx.NewScratch() // per goroutine, never shared
		var sink float64
		i := 0
		for pb.Next() {
			sink += fx.QueryWith(scratch, us[i%4096], vs[i%4096])
			i++
		}
		_ = sink
	})
}

// BenchmarkCompressedQuery is BenchmarkFlatQueryMerge on the compressed
// (CHFX v4) sibling of the same index: block-skipping merge-join over
// delta+varint label blocks instead of fixed-width packed entries.
func BenchmarkCompressedQuery(b *testing.B) {
	cfx, us, vs := benchServeCompressed(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += cfx.Query(us[i%4096], vs[i%4096])
	}
	_ = sink
}

// BenchmarkCompressedQueryParallel runs the compressed kernel across all
// cores. The compressed path is scratch-free (block buffers live on the
// stack), so there is no per-goroutine state to allocate.
func BenchmarkCompressedQueryParallel(b *testing.B) {
	cfx, us, vs := benchServeCompressed(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var sink float64
		i := 0
		for pb.Next() {
			sink += cfx.Query(us[i%4096], vs[i%4096])
			i++
		}
		_ = sink
	})
}

// TestParallelQueryScratchRace drives the same pattern as the parallel
// benchmarks under plain `go test`, so the CI -race job proves the
// per-goroutine-scratch discipline (and the scratch-free compressed
// kernel) actually is data-race-free rather than trusting the comment.
func TestParallelQueryScratchRace(t *testing.T) {
	g := chl.GenerateScaleFree(400, 3, 2)
	ix, fx := buildFrozen(t, g)
	cfx, err := fx.Compress()
	if err != nil {
		t.Fatal(err)
	}
	n := fx.NumVertices()
	const workers, perWorker = 8, 400
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			scratch := fx.NewScratch() // own scratch per goroutine
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				want := ix.Query(u, v)
				if got := fx.QueryWith(scratch, u, v); got != want {
					errc <- fmt.Errorf("flat QueryWith(%d,%d) = %v, want %v", u, v, got, want)
					return
				}
				if got := cfx.Query(u, v); got != want {
					errc <- fmt.Errorf("compressed Query(%d,%d) = %v, want %v", u, v, got, want)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// BenchmarkBatchParallel measures the parallel batch serving engine
// against the same batch answered one query at a time on one goroutine.
func BenchmarkBatchParallel(b *testing.B) {
	_, fx, _, _ := benchServeIndex(b)
	eng := chl.NewBatchEngineFlat(fx)
	n := fx.NumVertices()
	rng := rand.New(rand.NewSource(3))
	pairs := make([]chl.QueryPair, 65536)
	for i := range pairs {
		pairs[i] = chl.QueryPair{U: rng.Intn(n), V: rng.Intn(n)}
	}
	dst := make([]float64, len(pairs))
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.BatchInto(dst, pairs)
		}
		b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mq/s")
	})
	b.Run("sequential", func(b *testing.B) {
		fx := eng.Index()
		for i := 0; i < b.N; i++ {
			for j, p := range pairs {
				dst[j] = fx.Query(p.U, p.V)
			}
		}
		b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mq/s")
	})
}

func BenchmarkSaveLoad(b *testing.B) {
	g := benchGraph(b)
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.SaveFile(b.TempDir() + "/ix.chl"); err != nil {
			b.Fatal(err)
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

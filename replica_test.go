package chl_test

// Failover tests for the replicated serving tier: ejected replicas must
// rejoin after probation (driven by a FakeClock — no real sleeps), and a
// replica restart over the same content must keep the router's cache
// (the content hash vouches for it) without poisoning its sibling.
// The real-traffic chaos soak lives in soak_test.go.

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	chl "repro"
	"repro/internal/shard"
)

// flakyBackend fronts one replica's handler with a kill switch: while
// down, every request aborts its connection (the client sees a transport
// error, exactly like a dead process); while sick, every request gets a
// JSON 400 (a terminal, request-level failure — the process answers but
// serves nothing useful); while delay is set, every request stalls that
// long first (an artificially slow replica, the hedging target). The
// inner handler is swappable under traffic, which is how a test
// "restarts" a replica in-process.
type flakyBackend struct {
	down  atomic.Bool
	sick  atomic.Bool
	delay atomic.Int64 // nanoseconds added before every response
	inner atomic.Pointer[http.Handler]
}

func newFlakyBackend(h http.Handler) *flakyBackend {
	f := &flakyBackend{}
	f.inner.Store(&h)
	return f
}

func (f *flakyBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		panic(http.ErrAbortHandler)
	}
	if d := f.delay.Load(); d > 0 {
		//chlvet:allow clockcheck -- simulated slow backend inside the fake shard handler, not test synchronization
		time.Sleep(time.Duration(d)) // simulated slow backend, not test synchronization
	}
	if f.sick.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"sick replica"}`))
		return
	}
	(*f.inner.Load()).ServeHTTP(w, r)
}

// replicatedCluster is an in-process cluster of shards × replicas: every
// replica of shard i is its own chl.Server over shard i's slice file,
// behind its own listener and kill switch.
type replicatedCluster struct {
	router   *chl.Router
	servers  []*chl.Server        // every serving process, for cleanup
	backends [][]*httptest.Server // [shard][replica]
	flaky    [][]*flakyBackend    // [shard][replica]
	manifest *shard.Manifest
	part     *shard.Partition
	dir      string
}

func (c *replicatedCluster) close() {
	for _, group := range c.backends {
		for _, ts := range group {
			ts.Close()
		}
	}
	for _, s := range c.servers {
		s.Close()
	}
}

// kill simulates the death of one replica: new requests abort their
// connections and every connection currently carrying a request is
// severed mid-flight.
func (c *replicatedCluster) kill(sid, rid int) {
	c.flaky[sid][rid].down.Store(true)
	c.backends[sid][rid].CloseClientConnections()
}

// revive brings a killed replica back (same process: same epoch and
// generation as before).
func (c *replicatedCluster) revive(sid, rid int) {
	c.flaky[sid][rid].down.Store(false)
}

// newShardServer starts one serving process for shard sid of the cluster.
func (c *replicatedCluster) newShardServer(t *testing.T, sid, cacheSize int) *chl.Server {
	t.Helper()
	s := newShardProcess(t, c.dir, c.manifest, c.part, sid, cacheSize)
	c.servers = append(c.servers, s)
	return s
}

// restart replaces replica (sid,rid)'s serving process with a brand-new
// one over the same file — a fresh epoch with generations starting over,
// exactly what a process restart looks like to the router.
func (c *replicatedCluster) restart(t *testing.T, sid, rid, cacheSize int) {
	t.Helper()
	h := c.newShardServer(t, sid, cacheSize).Handler()
	c.flaky[sid][rid].inner.Store(&h)
}

// startReplicatedCluster splits fx into shards×replicas serving processes
// under a temp dir and starts the full replicated topology — an adapter
// over the shared newTestCluster fixture with kill switches on. tweak
// (may be nil) adjusts the router config before the router starts.
func startReplicatedCluster(t *testing.T, fx *chl.FlatIndex, shards, replicasPer, cacheSize int, tweak func(*chl.RouterConfig)) *replicatedCluster {
	t.Helper()
	tc := newTestCluster(t, fx, clusterSpec{
		shards: shards, replicas: replicasPer, cacheSize: cacheSize,
		flaky: true, tweak: tweak,
	})
	return &replicatedCluster{
		router: tc.router, servers: tc.servers, backends: tc.backends,
		flaky: tc.flaky, manifest: tc.manifest, part: tc.part, dir: tc.dir,
	}
}

// verticesByOwner groups [0,n) by owning shard.
func verticesByOwner(part *shard.Partition, n int) map[int][]int {
	byOwner := map[int][]int{}
	for v := 0; v < n; v++ {
		byOwner[part.Owner(v)] = append(byOwner[part.Owner(v)], v)
	}
	return byOwner
}

// Ejection and probation: a replica that dies is ejected after a few
// consecutive failures (queries keep succeeding via its sibling the
// whole time), and once it recovers, the timed re-probe routes traffic
// back to it. The probation window runs on a FakeClock, so the test
// asserts the window both ways: zero traffic before it expires, a probe
// on the very next query after Advance.
func TestRouterReplicaProbationAndReprobe(t *testing.T) {
	g := chl.GenerateScaleFree(300, 3, 12)
	fx, _ := buildFlat(t, g)
	clk := chl.NewFakeClock(time.Unix(1_700_000_000, 0))
	c := startReplicatedCluster(t, fx, 2, 2, 0, func(cfg *chl.RouterConfig) {
		cfg.EjectAfter = 2
		cfg.Probation = time.Minute
		cfg.Clock = clk
	})
	defer c.close()
	byOwner := verticesByOwner(c.part, fx.NumVertices())
	own0 := byOwner[0]
	if len(own0) < 2 {
		t.Fatal("shard 0 owns too few vertices; fixture degenerate")
	}

	// query runs one same-shard query on shard 0 and requires it to
	// succeed with the exact single-process answer.
	rng := rand.New(rand.NewSource(1))
	query := func() {
		t.Helper()
		u, v := own0[rng.Intn(len(own0))], own0[rng.Intn(len(own0))]
		d, err := c.router.Query(u, v)
		if err != nil {
			t.Fatalf("query failed with one replica down: %v", err)
		}
		if want := fx.Query(u, v); d != want {
			t.Fatalf("query(%d,%d) = %v, want %v", u, v, d, want)
		}
	}
	replicaStats := func(sid, rid int) chl.RouterReplicaStats {
		return c.router.Stats().Shards[sid].Replicas[rid]
	}

	// Kill replica (0,1); traffic must keep succeeding and the replica
	// must get ejected once enough of it has failed over.
	c.kill(0, 1)
	for i := 0; !replicaStats(0, 1).Ejected; i++ {
		if i > 1000 {
			t.Fatal("dead replica was never ejected")
		}
		query()
	}
	if rs := replicaStats(0, 1); rs.Errors == 0 || rs.Ejections == 0 {
		t.Fatalf("ejected replica reports errors=%d ejections=%d", rs.Errors, rs.Ejections)
	}
	// Hedge-free cluster: every error above was a pick that failed and was
	// retried on the sibling — the failover counter must have moved.
	if st := c.router.Stats(); st.Failovers == 0 {
		t.Fatal("queries survived a dead replica but no failovers were recorded")
	}

	// Revive it. Until the probation window expires on the fake clock, no
	// request may touch the ejected replica — not even a probe.
	c.revive(0, 1)
	reqsAtRevival := replicaStats(0, 1).Requests
	for i := 0; i < 25; i++ {
		query()
	}
	if got := replicaStats(0, 1).Requests; got != reqsAtRevival {
		t.Fatalf("ejected replica saw %d requests inside its probation window, want 0", got-reqsAtRevival)
	}

	// Advance past probation: the re-probe must pull it back into
	// rotation and real traffic must reach it again.
	clk.Advance(time.Minute + time.Second)
	for i := 0; ; i++ {
		query()
		rs := replicaStats(0, 1)
		if !rs.Ejected && rs.Requests > reqsAtRevival {
			break
		}
		if i > 1000 {
			t.Fatalf("recovered replica never rejoined rotation: %+v", rs)
		}
	}
	// Once healthy again it takes its share of load, not just the probe.
	reqsAfterRejoin := replicaStats(0, 1).Requests
	for i := 0; i < 50; i++ {
		query()
	}
	if got := replicaStats(0, 1).Requests; got == reqsAfterRejoin {
		t.Fatal("rejoined replica received no traffic after recovery")
	}
}

// Regression: an ejected replica whose probation probe draws a terminal
// (4xx) response must release the probe flag — otherwise the replica can
// never be probed again and stays out of rotation even after it fully
// recovers.
func TestRouterProbeSurvivesTerminalResponse(t *testing.T) {
	g := chl.GenerateScaleFree(300, 3, 18)
	fx, _ := buildFlat(t, g)
	clk := chl.NewFakeClock(time.Unix(1_700_000_000, 0))
	c := startReplicatedCluster(t, fx, 2, 2, 0, func(cfg *chl.RouterConfig) {
		cfg.EjectAfter = 2
		cfg.Probation = time.Minute
		cfg.Clock = clk
	})
	defer c.close()
	byOwner := verticesByOwner(c.part, fx.NumVertices())
	own0 := byOwner[0]
	rng := rand.New(rand.NewSource(2))
	query := func() error {
		u, v := own0[rng.Intn(len(own0))], own0[rng.Intn(len(own0))]
		_, err := c.router.Query(u, v)
		return err
	}
	replicaStats := func() chl.RouterReplicaStats {
		return c.router.Stats().Shards[0].Replicas[1]
	}

	// Phase 1: transport failures until ejected.
	c.kill(0, 1)
	for i := 0; !replicaStats().Ejected; i++ {
		if i > 1000 {
			t.Fatal("dead replica was never ejected")
		}
		if err := query(); err != nil {
			t.Fatalf("query failed with a healthy sibling: %v", err)
		}
	}

	// Phase 2: the replica answers again, but with 400s. Probes burn on
	// the terminal response (the probing query itself fails — terminal
	// errors are not retried on siblings, by design) but must keep being
	// re-issued after each probation window expires on the fake clock.
	c.revive(0, 1)
	c.flaky[0][1].sick.Store(true)
	sawTerminal := false
	for i := 0; !sawTerminal; i++ {
		if i > 1000 {
			t.Fatal("no probe ever reached the sick replica")
		}
		clk.Advance(time.Minute + time.Second)
		if err := query(); err != nil {
			sawTerminal = true // a probe drew the 400
		}
	}

	// Phase 3: fully healthy again. The next probe (the flag must be
	// free for it) pulls the replica back into rotation.
	c.flaky[0][1].sick.Store(false)
	for i := 0; replicaStats().Ejected; i++ {
		if i > 1000 {
			t.Fatal("replica never rejoined after its probe drew a terminal response (probe flag leaked)")
		}
		clk.Advance(time.Minute + time.Second)
		if err := query(); err != nil {
			// A lingering probe may still draw the tail of phase 2.
			continue
		}
	}
}

// A replica that restarts (new process over the same file: fresh epoch,
// generations back to 1) answers under a new identity but an unchanged
// content hash, so the router adopts the new identity WITHOUT retiring
// its answer cache — a clean restart is free — and the sibling keeps
// validating throughout, with answers byte-identical the whole time.
func TestRouterReplicaRestartKeepsCacheSameContent(t *testing.T) {
	g := chl.GenerateScaleFree(300, 3, 13)
	fx, _ := buildFlat(t, g)
	c := startReplicatedCluster(t, fx, 2, 2, 1<<12, nil)
	defer c.close()
	n := fx.NumVertices()

	check := func(seed int64) {
		t.Helper()
		pairs := make([]chl.QueryPair, 150)
		rng := rand.New(rand.NewSource(seed))
		for i := range pairs {
			pairs[i] = chl.QueryPair{U: rng.Intn(n), V: rng.Intn(n)}
		}
		ds, err := c.router.Batch(pairs)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pairs {
			if want := fx.Query(p.U, p.V); ds[i] != want {
				t.Fatalf("batch (%d,%d) = %v, want %v", p.U, p.V, ds[i], want)
			}
		}
	}
	check(1)
	check(1) // second pass is served from the cache
	st := c.router.Stats()
	if st.Cache == nil || st.Cache.Hits < 150 {
		t.Fatalf("second identical batch should be all cache hits, stats: %+v", st.Cache)
	}
	resetsBefore := st.CacheResets

	// Restart replica (0,1) in place. Detection is lazy — the restarted
	// process must answer something — so drive fresh traffic until the
	// restarted replica has served real requests (p2c spreads requests
	// over both replicas), proving the router has seen its new identity.
	c.restart(t, 0, 1, 0)
	reqsAtRestart := c.router.Stats().Shards[0].Replicas[1].Requests
	for seed := int64(2); c.router.Stats().Shards[0].Replicas[1].Requests == reqsAtRestart; seed++ {
		if seed > 200 {
			t.Fatal("restarted replica never served traffic")
		}
		check(seed)
	}
	if got := c.router.Stats().CacheResets; got != resetsBefore {
		t.Fatalf("same-content restart retired the cache %d times, want 0", got-resetsBefore)
	}

	// The cache stayed warm and the sibling was not poisoned: the warmed
	// batch from before the restart still hits, fresh answers keep
	// re-entering the cache, and repeated batches hit again — with zero
	// resets and full parity.
	hitsBefore := c.router.Stats().Cache.Hits
	check(1) // warmed before the restart; must still be cached
	check(99)
	check(99)
	st = c.router.Stats()
	if st.CacheResets != resetsBefore {
		t.Fatalf("stable cluster retired the cache: %d resets", st.CacheResets-resetsBefore)
	}
	if st.Cache.Hits < hitsBefore+200 {
		t.Fatalf("cache stopped serving after a same-content restart (hits %d -> %d)", hitsBefore, st.Cache.Hits)
	}
	for _, rs := range st.Shards[0].Replicas {
		if rs.Ejected {
			t.Fatalf("replica %d ejected by a clean restart: %+v", rs.ID, rs)
		}
	}
}

// A v1 (unreplicated) manifest — no replica_addrs, version 1 — still
// loads and serves through the replicated router unchanged.
func TestRouterV1ManifestStillServes(t *testing.T) {
	g := chl.GenerateRoadGrid(12, 12, 3)
	fx, _ := buildFlat(t, g)
	dir := t.TempDir()
	m, err := fx.SaveShards(dir, 2, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the manifest as the v1 schema and reload it from disk.
	m.Version = 1
	m.ReplicaAddrs = nil
	if err := shard.WriteManifest(dir+"/"+shard.ManifestName, m); err != nil {
		t.Fatal(err)
	}
	m, err = shard.ReadManifest(dir + "/" + shard.ManifestName)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 {
		t.Fatalf("manifest round-tripped as version %d, want 1", m.Version)
	}
	part, err := m.Partition()
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 2)
	var servers []*chl.Server
	for sid := 0; sid < 2; sid++ {
		path, err := chl.ShardFilePath(dir+"/"+shard.ManifestName, m, sid)
		if err != nil {
			t.Fatal(err)
		}
		s, err := chl.NewServer(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetShard(sid, part); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer s.Close()
		servers = append(servers, s)
		addrs[sid] = ts.URL
	}
	_ = servers
	r, err := chl.NewRouter(chl.RouterConfig{Manifest: m, Addrs: addrs, CacheSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	n := fx.NumVertices()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		d, err := r.Query(u, v)
		if err != nil {
			t.Fatalf("v1 cluster query(%d,%d): %v", u, v, err)
		}
		if want := fx.Query(u, v); d != want {
			t.Fatalf("v1 cluster query(%d,%d) = %v, want %v", u, v, d, want)
		}
	}
}

// A v2 manifest with replica_addrs is a complete cluster description:
// the router starts from it alone (no Addrs) and serves.
func TestRouterFromManifestReplicaAddrs(t *testing.T) {
	g := chl.GenerateScaleFree(200, 3, 14)
	fx, _ := buildFlat(t, g)
	c := startReplicatedCluster(t, fx, 2, 2, 0, nil)
	defer c.close()

	m := *c.manifest
	m.ReplicaAddrs = make([][]string, 2)
	for sid, group := range c.backends {
		for _, ts := range group {
			m.ReplicaAddrs[sid] = append(m.ReplicaAddrs[sid], ts.URL)
		}
	}
	r, err := chl.NewRouter(chl.RouterConfig{Manifest: &m, CacheSize: 0})
	if err != nil {
		t.Fatal(err)
	}
	n := fx.NumVertices()
	for i := 0; i < 50; i++ {
		u, v := (i*37)%n, (i*91)%n
		d, err := r.Query(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if want := fx.Query(u, v); d != want {
			t.Fatalf("query(%d,%d) = %v, want %v", u, v, d, want)
		}
	}
}

// /stats and /metrics expose the per-replica request/error/ejection
// breakdown the replicated tier is operated by.
func TestRouterPerReplicaStatsAndMetrics(t *testing.T) {
	g := chl.GenerateScaleFree(200, 3, 15)
	fx, _ := buildFlat(t, g)
	c := startReplicatedCluster(t, fx, 2, 2, 0, func(cfg *chl.RouterConfig) {
		cfg.EjectAfter = 2
		cfg.Probation = time.Hour // stay ejected for the duration of the test
	})
	defer c.close()
	routerTS := httptest.NewServer(c.router.Handler())
	defer routerTS.Close()
	n := fx.NumVertices()

	// Healthy traffic, then a dead replica plus enough traffic to eject it.
	c.kill(1, 0)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 60; i++ {
		if _, err := c.router.Query(rng.Intn(n), rng.Intn(n)); err != nil {
			t.Fatalf("query with one replica down: %v", err)
		}
	}

	resp, err := http.Get(routerTS.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Failovers int64 `json:"failovers_total"`
		Shards    []struct {
			ID       int `json:"id"`
			Replicas []struct {
				ID        int   `json:"id"`
				Requests  int64 `json:"requests_total"`
				Errors    int64 `json:"errors_total"`
				Ejections int64 `json:"ejections_total"`
				Ejected   bool  `json:"ejected"`
			} `json:"replicas"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 2 || len(st.Shards[1].Replicas) != 2 {
		t.Fatalf("/stats misses the replica breakdown: %+v", st)
	}
	dead := st.Shards[1].Replicas[0]
	if dead.Errors == 0 || dead.Ejections == 0 || !dead.Ejected {
		t.Fatalf("/stats does not report the dead replica's failure counters: %+v", dead)
	}
	if st.Failovers == 0 {
		t.Fatal("/stats reports no failovers despite a dead replica under load")
	}

	mresp, err := http.Get(routerTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	b, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(b)
	for _, want := range []string{
		`chl_router_replica_requests_total{shard="0",replica="1"}`,
		`chl_router_replica_errors_total{shard="1",replica="0"}`,
		`chl_router_replica_ejections_total{shard="1",replica="0"} 1`,
		`chl_router_replica_ejected{shard="1",replica="0"} 1`,
		`chl_router_replica_generation{shard="0",replica="0"}`,
		"chl_router_failovers_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("router /metrics missing %q", want)
		}
	}

	// /healthz shows the degradation per replica while the shard (one
	// replica alive) stays ok.
	hresp, err := http.Get(routerTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(hresp.Body)
		t.Fatalf("one dead replica of two must leave the cluster serving, got %d %s", hresp.StatusCode, body)
	}
	var hb struct {
		OK       bool `json:"ok"`
		Degraded bool `json:"degraded"`
		Shards   []struct {
			OK       bool `json:"ok"`
			Replicas []struct {
				OK bool `json:"ok"`
			} `json:"replicas"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if !hb.OK || !hb.Degraded {
		t.Fatalf("healthz ok=%v degraded=%v, want ok with degradation flagged", hb.OK, hb.Degraded)
	}
	if hb.Shards[1].OK != true || hb.Shards[1].Replicas[0].OK != false || hb.Shards[1].Replicas[1].OK != true {
		t.Fatalf("healthz replica detail wrong: %+v", hb)
	}
}

// The /reload proxy reaches a specific replica and the router folds the
// reported identity (including the content hash) in, exactly like an
// observed one — a same-content reload keeps the cache.
func TestRouterReloadProxyTargetsReplica(t *testing.T) {
	g := chl.GenerateScaleFree(200, 3, 16)
	fx, _ := buildFlat(t, g)
	c := startReplicatedCluster(t, fx, 2, 2, 1<<10, nil)
	defer c.close()
	routerTS := httptest.NewServer(c.router.Handler())
	defer routerTS.Close()

	resetsBefore := c.router.Stats().CacheResets
	resp, err := http.Post(routerTS.URL+"/reload?shard=0&replica=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("proxied replica reload: %d %s", resp.StatusCode, b)
	}
	// The reload bumped replica (0,1)'s generation past the adopted one…
	// but adoption requires a prior observation; either way the stats
	// must track the replica's new generation.
	if got := c.router.Stats().Shards[0].Replicas[1].Generation; got < 2 {
		t.Fatalf("proxied reload left replica generation at %d, want >= 2", got)
	}
	// The reload served the same shard file, so the reported content hash
	// matches and the cache survives.
	if got := c.router.Stats().CacheResets; got != resetsBefore {
		t.Fatalf("same-content proxied reload retired the cache %d times, want 0", got-resetsBefore)
	}

	// Out-of-range replica ids are 400s.
	bad, err := http.Post(routerTS.URL+"/reload?shard=0&replica=9", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("reload of unknown replica: %d, want 400", bad.StatusCode)
	}
}

// Same-shard traffic spreads across a replica group (power-of-two-choices
// never starves a healthy replica), and answers stay byte-identical no
// matter which replica serves them.
func TestRouterBalancesAcrossReplicas(t *testing.T) {
	g := chl.GenerateScaleFree(300, 3, 17)
	fx, _ := buildFlat(t, g)
	c := startReplicatedCluster(t, fx, 1, 3, 0, nil) // one shard: all traffic same-shard
	defer c.close()
	n := fx.NumVertices()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		d, err := c.router.Query(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if want := fx.Query(u, v); d != want {
			t.Fatalf("query(%d,%d) = %v, want %v", u, v, d, want)
		}
	}
	st := c.router.Stats()
	for _, rs := range st.Shards[0].Replicas {
		if rs.Requests == 0 {
			t.Fatalf("replica %d starved by the balancer: %+v", rs.ID, st.Shards[0].Replicas)
		}
	}
}

package chl_test

// Tests for the sharded serving tier: shard-split/merge parity (the
// router + N in-process shard servers must answer byte-identically to the
// single-process engine on the agreement fixtures), reload-under-load on
// one shard, partial-failure degradation, shard ownership enforcement,
// and the Prometheus /metrics endpoints.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	chl "repro"
	"repro/internal/shard"
)

// cluster is an in-process shard cluster: N shard Servers behind httptest
// listeners, plus the Router fronting them.
type cluster struct {
	router   *chl.Router
	servers  []*chl.Server
	backends []*httptest.Server
	manifest *shard.Manifest
	dir      string
}

func (c *cluster) close() {
	for _, ts := range c.backends {
		ts.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
}

// buildFlat builds and freezes an index over g.
func buildFlat(t *testing.T, g *chl.Graph) (*chl.FlatIndex, *chl.Index) {
	t.Helper()
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fx, err := ix.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return fx, ix
}

// startCluster splits fx into k shards under a temp dir and starts the
// full serving topology — an adapter over the shared newTestCluster
// fixture, flattening its per-shard replica groups (one replica each
// here) into the flat slices this file's tests index.
func startCluster(t *testing.T, fx *chl.FlatIndex, k, cacheSize int) *cluster {
	t.Helper()
	tc := newTestCluster(t, fx, clusterSpec{shards: k, cacheSize: cacheSize})
	c := &cluster{router: tc.router, servers: tc.servers, manifest: tc.manifest, dir: tc.dir}
	for _, group := range tc.backends {
		c.backends = append(c.backends, group...)
	}
	return c
}

// The tentpole acceptance: the router over 3 shard servers answers
// byte-identically to the single-process flat index on the agreement
// fixtures, for both single queries (with witness hubs) and batches.
func TestRouterParityWithSingleProcess(t *testing.T) {
	for name, g := range map[string]*chl.Graph{
		"scalefree": chl.GenerateScaleFree(500, 3, 1),
		"road":      chl.GenerateRoadGrid(22, 22, 2),
		"sparse":    chl.GenerateRandom(300, 200, 9, 3), // disconnected pairs exercise Infinity
	} {
		t.Run(name, func(t *testing.T) {
			fx, ix := buildFlat(t, g)
			c := startCluster(t, fx, 3, 1<<12)
			defer c.close()
			n := fx.NumVertices()
			rng := rand.New(rand.NewSource(5))

			var cross int
			for i := 0; i < 1500; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				got, err := c.router.Query(u, v)
				if err != nil {
					t.Fatalf("router query(%d,%d): %v", u, v, err)
				}
				if want := fx.Query(u, v); got != want {
					t.Fatalf("router query(%d,%d) = %v, want %v", u, v, got, want)
				}
				gd, gh, gok, err := c.router.QueryHub(u, v)
				if err != nil {
					t.Fatal(err)
				}
				wd, wh, wok := fx.QueryHub(u, v)
				if gd != wd || gok != wok || (gok && gh != wh) {
					t.Fatalf("router QueryHub(%d,%d) = (%v,%d,%v), want (%v,%d,%v)", u, v, gd, gh, gok, wd, wh, wok)
				}
				if ix.Query(u, v) != fx.Query(u, v) {
					t.Fatalf("fixture self-check failed at (%d,%d)", u, v)
				}
			}

			// Batches, sized to mix cache hits, direct routes and joins.
			for round := 0; round < 5; round++ {
				pairs := make([]chl.QueryPair, 400)
				for i := range pairs {
					pairs[i] = chl.QueryPair{U: rng.Intn(n), V: rng.Intn(n)}
				}
				dists, err := c.router.Batch(pairs)
				if err != nil {
					t.Fatal(err)
				}
				for i, p := range pairs {
					if want := fx.Query(p.U, p.V); dists[i] != want {
						t.Fatalf("round %d batch (%d,%d) = %v, want %v", round, p.U, p.V, dists[i], want)
					}
				}
			}
			if st := c.router.Stats(); st.CrossJoins == 0 {
				t.Fatal("no cross-shard joins exercised; fixture or partition degenerate")
			} else {
				cross += int(st.CrossJoins)
			}
			_ = cross
		})
	}
}

// The router's HTTP surface must return the same bodies as a
// single-process server for /batch (modulo the routing-internal
// generation field), including the -1 encoding of unreachable pairs.
func TestRouterHTTPParity(t *testing.T) {
	g := chl.GenerateRandom(250, 150, 9, 3)
	fx, _ := buildFlat(t, g)
	c := startCluster(t, fx, 3, 1024)
	defer c.close()

	single := chl.NewServerFromFlat(fx, 1024)
	// Note: fx is now owned by single; c's shard files are independent.
	defer single.Close()
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()
	routerTS := httptest.NewServer(c.router.Handler())
	defer routerTS.Close()

	rng := rand.New(rand.NewSource(9))
	var body strings.Builder
	body.WriteString("[")
	for i := 0; i < 300; i++ {
		if i > 0 {
			body.WriteString(",")
		}
		fmt.Fprintf(&body, "[%d,%d]", rng.Intn(250), rng.Intn(250))
	}
	body.WriteString("]")

	post := func(url string) []any {
		resp, err := http.Post(url+"/batch", "application/json", strings.NewReader(body.String()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST %s/batch: %d %s", url, resp.StatusCode, b)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m["dists"].([]any)
	}
	got, want := post(routerTS.URL), post(singleTS.URL)
	if len(got) != len(want) {
		t.Fatalf("router answered %d dists, single process %d", len(got), len(want))
	}
	for i := range got {
		if got[i].(float64) != want[i].(float64) {
			t.Fatalf("dist %d: router %v, single %v", i, got[i], want[i])
		}
	}
}

// Reload-under-load on one shard: workers hammer the router while shard 1
// hot-swaps its (identical) file repeatedly. Zero dropped queries, every
// answer byte-identical to the single-process engine — and zero cache
// resets: the generations move but the snapshot content hash does not,
// so retiring the cache would be pure waste (the deferred PR 2/3
// durable-identity item).
func TestRouterReloadUnderLoad(t *testing.T) {
	g := chl.GenerateScaleFree(400, 3, 4)
	fx, _ := buildFlat(t, g)
	c := startCluster(t, fx, 3, 1<<12)
	defer c.close()
	n := fx.NumVertices()

	var (
		stop    atomic.Bool
		dropped atomic.Int64
		wrong   atomic.Int64
		wg      sync.WaitGroup
	)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			pairs := make([]chl.QueryPair, 24)
			for !stop.Load() {
				u, v := rng.Intn(n), rng.Intn(n)
				d, err := c.router.Query(u, v)
				if err != nil {
					dropped.Add(1)
					continue
				}
				if d != fx.Query(u, v) {
					wrong.Add(1)
				}
				for i := range pairs {
					pairs[i] = chl.QueryPair{U: rng.Intn(n), V: rng.Intn(n)}
				}
				ds, err := c.router.Batch(pairs)
				if err != nil {
					dropped.Add(int64(len(pairs)))
					continue
				}
				for i, p := range pairs {
					if ds[i] != fx.Query(p.U, p.V) {
						wrong.Add(1)
					}
				}
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.servers[1].Reload(""); err != nil {
			t.Errorf("shard reload %d: %v", i, err)
		}
	}
	// A couple more through the router's proxy endpoint.
	routerTS := httptest.NewServer(c.router.Handler())
	defer routerTS.Close()
	for i := 0; i < 2; i++ {
		resp, err := http.Post(routerTS.URL+"/reload?shard=1", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Errorf("proxied reload: %d %s", resp.StatusCode, b)
		}
		resp.Body.Close()
	}
	stop.Store(true)
	wg.Wait()
	if d := dropped.Load(); d > 0 {
		t.Fatalf("%d queries dropped during shard reloads", d)
	}
	if w := wrong.Load(); w > 0 {
		t.Fatalf("%d answers diverged from the single-process engine", w)
	}
	if st := c.servers[1].Stats(); st.Reloads != 22 {
		t.Fatalf("shard 1 reports %d reloads, want 22", st.Reloads)
	}
	if st := c.router.Stats(); st.CacheResets != 0 {
		t.Fatalf("router retired its cache %d times on same-content reloads; the content hash should have kept it", st.CacheResets)
	}
}

// A shard process restart is invisible to generation counters (they
// start over at 1), but not to the per-process epoch — and the content
// hash then decides what the restart costs. Same slice file: the router
// adopts the new identity and keeps its cache (a coordinated restart
// must not flush the cluster's cache). Different content: the cache
// retires exactly once.
func TestRouterDetectsShardRestart(t *testing.T) {
	g := chl.GenerateScaleFree(300, 3, 5)
	fx, _ := buildFlat(t, g)
	c := startCluster(t, fx, 2, 1<<12)
	defer c.close()
	n := fx.NumVertices()

	warm := func(seed int64) {
		pairs := make([]chl.QueryPair, 200)
		rng := rand.New(rand.NewSource(seed))
		for i := range pairs {
			pairs[i] = chl.QueryPair{U: rng.Intn(n), V: rng.Intn(n)}
		}
		ds, err := c.router.Batch(pairs)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pairs {
			if ds[i] != fx.Query(p.U, p.V) {
				t.Fatalf("batch (%d,%d) = %v, want %v", p.U, p.V, ds[i], fx.Query(p.U, p.V))
			}
		}
	}
	warm(1)
	warm(1) // second pass serves from cache
	st := c.router.Stats()
	// First-contact observations adopt shard identities without retiring
	// the cache, so the very first batch's answers must have been cached.
	if st.Cache == nil || st.Cache.Hits < 200 {
		t.Fatalf("second identical batch should be all cache hits, stats: %+v", st.Cache)
	}
	before := st.CacheResets

	// "Restart" shard 1: a brand-new Server process over the same file
	// (fresh epoch, generation back to 1) behind the same address.
	part, _ := c.manifest.Partition()
	path, _ := chl.ShardFilePath(c.dir+"/"+shard.ManifestName, c.manifest, 1)
	fresh, err := chl.NewServer(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.SetShard(1, part); err != nil {
		t.Fatal(err)
	}
	c.backends[1].Config.Handler = fresh.Handler()

	// Fresh pairs force real shard contact (identity tracking is lazy: a
	// request served entirely from the router cache touches no shard).
	// The restarted process answers under a new epoch but the same
	// content hash, so the router adopts the identity WITHOUT retiring
	// the cache.
	warm(2)
	if after := c.router.Stats().CacheResets; after != before {
		t.Fatalf("router cache resets %d -> %d on a same-content restart; the content hash should have kept the cache", before, after)
	}
	// And the cache is genuinely alive: the warmed answers still hit.
	hits := c.router.Stats().Cache.Hits
	warm(2)
	if got := c.router.Stats().Cache.Hits; got < hits+200 {
		t.Fatalf("cache hits %d -> %d; the kept cache should have served the repeat batch", hits, got)
	}

}

// The other half of content-hash identity: a reload that really does
// change the bytes must retire the router cache — exactly once, however
// much traffic races it. One shard, so the swap to a different labeling
// of the same graph keeps every answer exact while changing the hash.
func TestRouterContentChangeRetiresCache(t *testing.T) {
	g := chl.GenerateScaleFree(300, 3, 5)
	fx, _ := buildFlat(t, g)
	c := startCluster(t, fx, 1, 1<<12)
	defer c.close()
	n := fx.NumVertices()

	warm := func(seed int64) {
		pairs := make([]chl.QueryPair, 200)
		rng := rand.New(rand.NewSource(seed))
		for i := range pairs {
			pairs[i] = chl.QueryPair{U: rng.Intn(n), V: rng.Intn(n)}
		}
		ds, err := c.router.Batch(pairs)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pairs {
			if ds[i] != fx.Query(p.U, p.V) {
				t.Fatalf("batch (%d,%d) = %v, want %v", p.U, p.V, ds[i], fx.Query(p.U, p.V))
			}
		}
	}
	warm(1)
	before := c.router.Stats().CacheResets

	// The same graph labeled under a different hierarchy: identical
	// distances (any CHL is exact), different label bytes, different
	// content hash.
	ix2, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoSeqPLL, Order: chl.RankRandom(n, 7)})
	if err != nil {
		t.Fatal(err)
	}
	fx2, err := ix2.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if fx2.ContentHash() == fx.ContentHash() {
		t.Fatal("test needs two builds with different bytes; got identical content hashes")
	}
	dir2 := t.TempDir()
	if _, err := fx2.SaveShards(dir2, 1, 64, 1); err != nil {
		t.Fatal(err)
	}
	path2, err := chl.ShardFilePath(dir2+"/"+shard.ManifestName, c.manifest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.servers[0].Reload(path2); err != nil {
		t.Fatal(err)
	}
	warm(2) // fresh pairs force shard contact; answers stay exact
	if after := c.router.Stats().CacheResets; after != before+1 {
		t.Fatalf("router cache resets %d -> %d after a content change; want exactly one retirement", before, after)
	}
}

// The /reload proxy must escape the path it forwards: a file name with
// URL metacharacters reaches the shard intact.
func TestRouterReloadProxyEscapesPath(t *testing.T) {
	g := chl.GenerateScaleFree(150, 3, 7)
	fx, _ := buildFlat(t, g)
	c := startCluster(t, fx, 2, 0)
	defer c.close()
	routerTS := httptest.NewServer(c.router.Handler())
	defer routerTS.Close()

	// Copy shard 0's file to a name full of query metacharacters.
	src, _ := chl.ShardFilePath(c.dir+"/"+shard.ManifestName, c.manifest, 0)
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	tricky := filepath.Join(t.TempDir(), "new&v2 #1.flat")
	if err := os.WriteFile(tricky, b, 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(routerTS.URL+"/reload?shard=0&path="+url.QueryEscape(tricky), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload with tricky path: %d %v", resp.StatusCode, m)
	}
	if got := m["path"]; got != tricky {
		t.Fatalf("shard reloaded %q, want %q", got, tricky)
	}
}

// One shard down: queries needing it fail with a 502 naming the shard;
// queries fully inside healthy shards keep answering; /healthz reports
// the degradation per shard.
func TestRouterPartialFailure(t *testing.T) {
	g := chl.GenerateScaleFree(300, 3, 6)
	fx, _ := buildFlat(t, g)
	c := startCluster(t, fx, 3, 0)
	defer c.close()
	part, _ := c.manifest.Partition()
	n := fx.NumVertices()

	const dead = 2
	c.backends[dead].Close()

	// Find vertices by owner.
	byOwner := map[int][]int{}
	for v := 0; v < n; v++ {
		o := part.Owner(v)
		byOwner[o] = append(byOwner[o], v)
	}
	for o := 0; o < 3; o++ {
		if len(byOwner[o]) < 2 {
			t.Fatalf("shard %d owns %d vertices; fixture too small", o, len(byOwner[o]))
		}
	}

	// Healthy same-shard and healthy cross-shard queries still answer.
	u0, v0 := byOwner[0][0], byOwner[0][1]
	if d, err := c.router.Query(u0, v0); err != nil || d != fx.Query(u0, v0) {
		t.Fatalf("healthy same-shard query failed: %v (%v)", d, err)
	}
	u1 := byOwner[1][0]
	if d, err := c.router.Query(u0, u1); err != nil || d != fx.Query(u0, u1) {
		t.Fatalf("healthy cross-shard query failed: %v (%v)", d, err)
	}

	// A query touching the dead shard degrades with a named failure.
	w := byOwner[dead][0]
	_, err := c.router.Query(u0, w)
	if err == nil {
		t.Fatal("query through a dead shard succeeded")
	}
	var ce *chl.ClusterError
	if !asClusterError(err, &ce) || len(ce.Failed) == 0 || ce.Failed[0].Shard != dead {
		t.Fatalf("expected a ClusterError naming shard %d, got %v", dead, err)
	}

	// And over HTTP: 502 with the failed shard in the body.
	routerTS := httptest.NewServer(c.router.Handler())
	defer routerTS.Close()
	resp, err := http.Get(fmt.Sprintf("%s/dist?u=%d&v=%d", routerTS.URL, u0, w))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead-shard query returned %d, want 502", resp.StatusCode)
	}
	var eb map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	failed, ok := eb["failed_shards"].([]any)
	if !ok || len(failed) == 0 {
		t.Fatalf("502 body lacks failed_shards: %v", eb)
	}
	if sid := failed[0].(map[string]any)["shard"].(float64); int(sid) != dead {
		t.Fatalf("failed_shards names shard %v, want %d", sid, dead)
	}

	// /healthz: 503 with per-shard detail.
	hresp, err := http.Get(routerTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz returned %d, want 503", hresp.StatusCode)
	}
	var hb map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if hb["ok"] != false {
		t.Fatalf("degraded cluster reports ok: %v", hb)
	}
	shards := hb["shards"].([]any)
	okCount := 0
	for _, sh := range shards {
		if sh.(map[string]any)["ok"] == true {
			okCount++
		}
	}
	if okCount != 2 {
		t.Fatalf("healthz reports %d healthy shards, want 2: %v", okCount, hb)
	}
}

// asClusterError is errors.As without importing errors in every call
// site's type dance.
func asClusterError(err error, target **chl.ClusterError) bool {
	for err != nil {
		if ce, ok := err.(*chl.ClusterError); ok {
			*target = ce
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// A shard server must refuse direct queries for vertices it does not own
// — misrouted traffic gets 421, not a silently-empty answer.
func TestShardServerRejectsMisroutedQueries(t *testing.T) {
	g := chl.GenerateScaleFree(200, 3, 8)
	fx, _ := buildFlat(t, g)
	c := startCluster(t, fx, 3, 0)
	defer c.close()
	part, _ := c.manifest.Partition()

	// A vertex shard 0 does not own.
	foreign := -1
	for v := 0; v < fx.NumVertices(); v++ {
		if part.Owner(v) != 0 {
			foreign = v
			break
		}
	}
	if foreign < 0 {
		t.Fatal("shard 0 owns everything; fixture degenerate")
	}
	resp, err := http.Get(fmt.Sprintf("%s/dist?u=%d&v=%d", c.backends[0].URL, foreign, foreign))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("misrouted /dist returned %d, want 421", resp.StatusCode)
	}
	var eb map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb["error"] == nil {
		t.Fatalf("421 body lacks error: %v", eb)
	}
}

// /metrics on both tiers: Prometheus text format with per-endpoint
// latency histograms whose counters move with traffic.
func TestMetricsEndpoints(t *testing.T) {
	g := chl.GenerateScaleFree(200, 3, 2)
	fx, _ := buildFlat(t, g)
	c := startCluster(t, fx, 2, 1024)
	defer c.close()
	routerTS := httptest.NewServer(c.router.Handler())
	defer routerTS.Close()

	// Traffic through the full stack.
	if _, err := c.router.Query(0, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(routerTS.URL + "/dist?u=1&v=2"); err != nil {
		t.Fatal(err)
	}

	scrape := func(url string) string {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s/metrics: %d", url, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("metrics Content-Type %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	shardMetrics := scrape(c.backends[0].URL)
	for _, want := range []string{
		"chl_http_request_duration_seconds_bucket{endpoint=\"/dist\",le=\"+Inf\"}",
		"chl_http_request_duration_seconds_bucket{endpoint=\"/shardquery\",le=",
		"chl_http_requests_total{endpoint=",
		"chl_index_vertices 200",
		"chl_shard_id 0",
		"chl_shard_count 2",
		"chl_cache_hits_total",
		"# TYPE chl_http_request_duration_seconds histogram",
	} {
		if !strings.Contains(shardMetrics, want) {
			t.Errorf("shard /metrics missing %q", want)
		}
	}

	routerMetrics := scrape(routerTS.URL)
	for _, want := range []string{
		"chl_router_http_request_duration_seconds_bucket{endpoint=\"/dist\",le=",
		"chl_router_queries_total",
		"chl_router_cross_joins_total",
		"chl_router_shard_requests_total{shard=\"0\"}",
		"chl_router_shard_generation{shard=\"1\"}",
		"chl_router_vertices 200",
	} {
		if !strings.Contains(routerMetrics, want) {
			t.Errorf("router /metrics missing %q", want)
		}
	}
}

// Router request validation: bad ids and malformed bodies are 400s with
// JSON error bodies, exactly like the single-process API.
func TestRouterBadRequests(t *testing.T) {
	g := chl.GenerateScaleFree(100, 3, 3)
	fx, _ := buildFlat(t, g)
	c := startCluster(t, fx, 2, 0)
	defer c.close()
	routerTS := httptest.NewServer(c.router.Handler())
	defer routerTS.Close()

	for _, url := range []string{"/dist", "/dist?u=a&v=2", "/dist?u=1&v=100", "/dist?u=-1&v=2"} {
		resp, err := http.Get(routerTS.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || m["error"] == nil {
			t.Errorf("%s: status %d body %v, want 400 with error", url, resp.StatusCode, m)
		}
	}
	for _, body := range []string{`[[1,2,3]]`, `[[1,1000]]`, `{"no":"pairs"}`} {
		resp, err := http.Post(routerTS.URL+"/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || m["error"] == nil {
			t.Errorf("batch %q: status %d body %v, want 400 with error", body, resp.StatusCode, m)
		}
	}
	// /reload without a valid shard id.
	resp, err := http.Post(routerTS.URL+"/reload?shard=9", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("reload of unknown shard: %d, want 400", resp.StatusCode)
	}
}

// A shard server pins its cluster's vertex space: reloading a file from
// a different cluster build is a loud 400, relayed verbatim by the
// router's proxy (not dressed up as a 502 shard failure), and the shard
// keeps serving its current snapshot.
func TestShardReloadRejectsWrongClusterFile(t *testing.T) {
	g := chl.GenerateScaleFree(300, 3, 9)
	fx, _ := buildFlat(t, g)
	c := startCluster(t, fx, 2, 0)
	defer c.close()

	// A flat file over a different vertex space.
	other, _ := buildFlat(t, chl.GenerateRoadGrid(10, 10, 1))
	otherPath := filepath.Join(t.TempDir(), "other.flat")
	if err := other.SaveFile(otherPath); err != nil {
		t.Fatal(err)
	}
	if _, err := c.servers[0].Reload(otherPath); err == nil {
		t.Fatal("shard server reloaded a file from a different cluster")
	}

	routerTS := httptest.NewServer(c.router.Handler())
	defer routerTS.Close()
	errsBefore := c.router.Stats().Shards[0].Errors
	resp, err := http.Post(routerTS.URL+"/reload?shard=0&path="+url.QueryEscape(otherPath), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || m["error"] == nil {
		t.Fatalf("proxied wrong-cluster reload: %d %v, want a relayed 400", resp.StatusCode, m)
	}
	if errsAfter := c.router.Stats().Shards[0].Errors; errsAfter != errsBefore {
		t.Fatalf("operator error counted as shard failure: errors_total %d -> %d", errsBefore, errsAfter)
	}
	// The shard still serves.
	if d, err := c.router.Query(0, 299); err != nil || d != fx.Query(0, 299) {
		t.Fatalf("cluster broken after rejected reload: %v (%v)", d, err)
	}
}

// The sliced shard files round-trip through the ordinary loaders: each is
// a valid CHFX file whose owned runs match the full index exactly.
func TestShardFilesAreOrdinaryFlatIndexes(t *testing.T) {
	g := chl.GenerateRoadGrid(15, 15, 2)
	fx, _ := buildFlat(t, g)
	dir := t.TempDir()
	m, err := fx.SaveShards(dir, 3, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := m.Partition()
	n := fx.NumVertices()
	if m.Vertices != n {
		t.Fatalf("manifest records %d vertices, want %d", m.Vertices, n)
	}
	var totalLabels int64
	for i := 0; i < 3; i++ {
		path, _ := chl.ShardFilePath(dir+"/"+shard.ManifestName, m, i)
		sl, err := chl.OpenFlat(path)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		defer sl.Close()
		if sl.NumVertices() != n {
			t.Fatalf("shard %d covers %d vertices, want %d", i, sl.NumVertices(), n)
		}
		totalLabels += sl.TotalLabels()
		// Same-shard pairs answer identically straight off the slice.
		for u := 0; u < n; u++ {
			if part.Owner(u) != i {
				continue
			}
			for v := u; v < n; v += 17 {
				if part.Owner(v) != i {
					continue
				}
				if got, want := sl.Query(u, v), fx.Query(u, v); got != want {
					t.Fatalf("shard %d query(%d,%d) = %v, want %v", i, u, v, got, want)
				}
			}
		}
	}
	if totalLabels != fx.TotalLabels() {
		t.Fatalf("shards hold %d labels in total, want %d (split lost or duplicated runs)", totalLabels, fx.TotalLabels())
	}
}

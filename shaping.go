package chl

// Traffic shaping for the Router's front door: singleflight collapsing of
// identical in-flight pairs, per-client token-bucket quotas, and the 429
// load-shedding contract. The hedging half of the shaping layer lives in
// router.go (withReplica) because it is woven into replica selection; the
// pieces here are self-contained and unit-tested against a FakeClock.

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// --- singleflight ---

// flightKind separates the workload keyspaces collapsible work lives
// in. Pair queries and top-k scans both pack two integers into
// flightKey.pair, so without the kind a /knn for (u=3, k=5) would
// collapse into an in-flight /dist for the pair (3,5) — a different
// question with the same bits. Same discipline as the answer cache,
// which never lets a non-pair workload mint pair keys (see Cache).
type flightKind uint8

const (
	flightDist flightKind = iota // pair query: pair = u<<32|v under the cache's pairKey rule
	flightKNN                    // top-k scan: pair = u<<32|k
)

// flightKey identifies one collapsible unit of in-flight work: a vertex
// pair under the cache's key discipline (canonicalized when the cluster
// is undirected, ordered when directed — the same pairKey rule, so two
// requests collapse exactly when the cache would have given one the
// other's answer) plus whether the caller needs the witness hub. A
// hub-less leader cannot feed a hub-needing follower, so the two kinds
// fly separately.
type flightKey struct {
	kind flightKind
	pair uint64
	hub  bool
	// pepoch is the delta-overlay patch epoch the flight was keyed under
	// (0 = no outstanding patches). A patch batch changes every answer's
	// provenance, so a flight led before the batch must not feed a query
	// arriving after it — the epoch splits their keyspaces the same way
	// the fresh answer cache splits cached answers.
	pepoch uint64
}

// flightKeyFor builds the singleflight key for one collapsible unit of
// work. It is the only place outside Cache.pairKey that packs a vertex
// pair into 64 bits: pair flights canonicalize (u,v) under the same
// rule as the answer cache (ordered when the cluster is directed,
// sorted when not — PR 5's aliasing fix), so two requests collapse
// exactly when the cache would share their answer. /knn flights pack
// (u,k), which is ordered by construction and never canonicalized.
func flightKeyFor(kind flightKind, directed bool, u, v int, hub bool, pepoch uint64) flightKey {
	if kind == flightDist && !directed && u > v {
		u, v = v, u
	}
	return flightKey{
		kind:   kind,
		pair:   uint64(uint32(u))<<32 | uint64(uint32(v)),
		hub:    hub,
		pepoch: pepoch,
	}
}

// flightResult is what a flight's leader hands every collapsed follower.
// Pair flights fill dist/hub/ok; /knn flights fill neighbors.
type flightResult struct {
	dist      float64
	hub       int
	ok        bool
	neighbors []Neighbor
	err       error
}

type flight struct {
	done chan struct{}
	res  flightResult
}

// flightGroup collapses concurrent duplicate work: the first caller for a
// key becomes the leader and runs fn; callers arriving while the leader
// is in flight wait for its result instead of repeating the backend
// round trip. Completed flights are forgotten immediately — this is
// duplicate suppression, not a cache (the answer cache sits in front).
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flight
}

// do runs fn under key, collapsing duplicates. joined (optional) is
// called when this caller collapses into an existing flight, before
// blocking — the router counts collapses there, and tests use the count
// to know followers are parked.
func (g *flightGroup) do(key flightKey, joined func(), fn func() flightResult) flightResult {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[flightKey]*flight)
	}
	if f, dup := g.m[key]; dup {
		g.mu.Unlock()
		if joined != nil {
			joined()
		}
		<-f.done
		return f.res
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()
	f.res = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.res
}

// --- per-client quotas ---

// QuotaKeyHeader names the request header the router keys per-client
// quotas on; requests without it are keyed on the remote address's host.
const QuotaKeyHeader = "X-Client-ID"

// maxClientIDLen bounds the client id kept from the header; longer ids
// are truncated (clients sharing a 64-byte prefix share a bucket, which
// is an accepted degradation — the alternative is unbounded keys from
// hostile headers).
const maxClientIDLen = 64

// quotaKey derives the per-client quota key for a request: the sanitized
// X-Client-ID header value when one is usable, else the host half of the
// remote address. The two namespaces are prefixed so a header can never
// impersonate an address key (or vice versa), and the result is always
// non-empty printable ASCII of bounded length.
func quotaKey(clientID, remoteAddr string) string {
	if id := sanitizeClientID(clientID); id != "" {
		return "id:" + id
	}
	host := remoteAddr
	if h, _, err := net.SplitHostPort(remoteAddr); err == nil {
		host = h
	}
	host = sanitizeClientID(host)
	if host == "" {
		return "addr:unknown"
	}
	return "addr:" + host
}

// sanitizeClientID truncates s to maxClientIDLen bytes and rejects it
// entirely (returning "") if what remains is empty, has surrounding
// space, or contains anything outside printable ASCII — a header full of
// control bytes falls back to address keying rather than minting a
// garbage bucket key.
func sanitizeClientID(s string) string {
	if len(s) > maxClientIDLen {
		s = s[:maxClientIDLen]
	}
	if s == "" || strings.TrimSpace(s) != s {
		return ""
	}
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < '!' || c > '~' {
			return ""
		}
	}
	return s
}

// quotaMaxBuckets bounds the limiter's bucket map; when a new client
// would exceed it, fully refilled (idle) buckets are swept first. A
// hostile client minting keys can therefore hold at most this many
// buckets, each a few words.
const quotaMaxBuckets = 4096

// tokenBucket is one client's quota state: a token count refilled at the
// limiter's rate, capped at its burst.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// refill credits tokens for the time since last at rate, capping at
// burst. A clock step backwards credits nothing and re-anchors.
func (b *tokenBucket) refill(now time.Time, rate, burst float64) {
	if now.After(b.last) {
		b.tokens = math.Min(burst, b.tokens+now.Sub(b.last).Seconds()*rate)
	}
	b.last = now
}

// quotaLimiter admits requests against per-client token buckets: each
// client sustains rate requests per second with bursts up to burst.
// Clients are lazily materialized with a full bucket. Time comes from
// the injected Clock, never the real one.
type quotaLimiter struct {
	clock Clock
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

// newQuotaLimiter returns a limiter at rate requests/second per client
// with the given burst (<= 0 defaults to max(1, rate)); a rate <= 0
// disables quotas and returns nil.
func newQuotaLimiter(clock Clock, rate float64, burst int) *quotaLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, rate)
	}
	return &quotaLimiter{clock: clock, rate: rate, burst: b, buckets: make(map[string]*tokenBucket)}
}

// take spends one token from key's bucket. When the bucket is empty it
// reports false plus how long until a token accrues — the Retry-After
// hint for the 429.
func (q *quotaLimiter) take(key string) (ok bool, retryAfter time.Duration) {
	now := q.clock.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[key]
	if b == nil {
		if len(q.buckets) >= quotaMaxBuckets {
			q.sweep(now)
		}
		b = &tokenBucket{tokens: q.burst, last: now}
		q.buckets[key] = b
	} else {
		b.refill(now, q.rate, q.burst)
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	return false, time.Duration(need / q.rate * float64(time.Second))
}

// sweep drops buckets that have refilled completely — a full bucket is
// indistinguishable from a fresh one, so forgetting it changes nothing
// for that client. Called under q.mu when the map is at capacity.
func (q *quotaLimiter) sweep(now time.Time) {
	for k, b := range q.buckets {
		b.refill(now, q.rate, q.burst)
		if b.tokens >= q.burst {
			delete(q.buckets, k)
		}
	}
}

// --- the 429 contract ---

// Shed reasons, echoed in the 429 body so clients and dashboards can
// tell "the router is saturated" from "you, specifically, are over
// quota".
const (
	shedReasonCapacity = "over_capacity"
	shedReasonQuota    = "client_quota"
)

// shedCapacityRetry is the retry hint on concurrency-limit sheds: there
// is no bucket to predict from, so a short constant backoff.
const shedCapacityRetry = 50 * time.Millisecond

// shedBody is the JSON body of every 429 the router sheds — the same
// {"error": ...} contract as every other error body, plus machine-usable
// retry fields.
type shedBody struct {
	Error             string  `json:"error"`
	Reason            string  `json:"reason"`
	RetryAfterSeconds float64 `json:"retry_after_seconds"`
}

// clampRetryAfter turns a retry hint into a finite, non-negative number
// of seconds JSON can carry (json.Marshal rejects NaN/Inf).
func clampRetryAfter(d time.Duration) float64 {
	s := d.Seconds()
	if math.IsNaN(s) || s < 0 {
		return 0
	}
	const max = 3600
	if s > max || math.IsInf(s, 1) {
		return max
	}
	return s
}

// writeShed writes the 429: the JSON body plus a whole-second Retry-After
// header (rounded up — an HTTP Retry-After of 0 reads as "now").
func writeShed(w http.ResponseWriter, body shedBody) {
	secs := int(math.Ceil(body.RetryAfterSeconds))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, body)
}

package vheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	h := New(10)
	if !h.Empty() || h.Len() != 0 {
		t.Fatalf("new heap not empty: len=%d", h.Len())
	}
	if h.Contains(3) {
		t.Fatal("empty heap claims to contain an item")
	}
}

func TestPushPopOrdered(t *testing.T) {
	h := New(5)
	keys := []float64{3.5, 1.25, 9, 0.5, 7}
	for i, k := range keys {
		h.Push(i, k)
	}
	want := []int{3, 1, 0, 4, 2}
	for _, wi := range want {
		item, key := h.Pop()
		if item != wi {
			t.Fatalf("pop got %d (key %v), want %d", item, key, wi)
		}
	}
	if !h.Empty() {
		t.Fatal("heap not empty after draining")
	}
}

func TestDecreaseKey(t *testing.T) {
	h := New(4)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	if !h.Push(2, 5) {
		t.Fatal("decrease-key reported no change")
	}
	if item, key := h.Peek(); item != 2 || key != 5 {
		t.Fatalf("peek = (%d,%v), want (2,5)", item, key)
	}
	// Increasing the key must be a no-op (Dijkstra semantics).
	if h.Push(2, 50) {
		t.Fatal("increase-key unexpectedly changed the heap")
	}
	if item, _ := h.Peek(); item != 2 {
		t.Fatalf("peek = %d after no-op push, want 2", item)
	}
}

func TestRemove(t *testing.T) {
	h := New(6)
	for i := 0; i < 6; i++ {
		h.Push(i, float64(10-i))
	}
	h.Remove(5) // current minimum
	h.Remove(0) // current maximum
	h.Remove(0) // double remove is a no-op
	var got []int
	for !h.Empty() {
		item, _ := h.Pop()
		got = append(got, item)
	}
	want := []int{4, 3, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestClearReuse(t *testing.T) {
	h := New(8)
	for i := 0; i < 8; i++ {
		h.Push(i, float64(i))
	}
	h.Clear()
	if !h.Empty() {
		t.Fatal("heap not empty after Clear")
	}
	for i := 0; i < 8; i++ {
		if h.Contains(i) {
			t.Fatalf("item %d still present after Clear", i)
		}
	}
	h.Push(3, 1)
	h.Push(4, 0.5)
	if item, _ := h.Pop(); item != 4 {
		t.Fatalf("heap broken after Clear: popped %d, want 4", item)
	}
}

func TestResize(t *testing.T) {
	h := New(2)
	h.Push(1, 5)
	h.Resize(10)
	h.Push(9, 1)
	if item, _ := h.Pop(); item != 9 {
		t.Fatalf("popped %d after resize, want 9", item)
	}
	if item, _ := h.Pop(); item != 1 {
		t.Fatalf("popped %d, want 1", item)
	}
}

// TestHeapSortProperty: pushing arbitrary keys and draining must yield the
// keys in non-decreasing order — the heap invariant, via testing/quick.
func TestHeapSortProperty(t *testing.T) {
	prop := func(keys []float64) bool {
		const cap = 257
		if len(keys) > cap {
			keys = keys[:cap]
		}
		for i, k := range keys {
			if k != k { // NaN keys are rejected by the algorithms upstream
				keys[i] = 0
			}
		}
		h := New(cap)
		for i, k := range keys {
			h.Push(i, k)
		}
		prev := -1.0
		first := true
		for !h.Empty() {
			_, k := h.Pop()
			if !first && k < prev {
				return false
			}
			prev, first = k, false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomOperationsAgainstModel drives the heap with a random op
// sequence and checks every observation against a naive model.
func TestRandomOperationsAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 64
	h := New(n)
	model := map[int]float64{}

	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(4); {
		case op == 0 || len(model) == 0: // push / decrease
			item := rng.Intn(n)
			key := float64(rng.Intn(1000)) / 7
			old, ok := model[item]
			changed := h.Push(item, key)
			wantChanged := !ok || key < old
			if changed != wantChanged {
				t.Fatalf("step %d: Push(%d,%v) changed=%v, want %v", step, item, key, changed, wantChanged)
			}
			if wantChanged {
				model[item] = key
			}
		case op == 1: // pop
			item, key := h.Pop()
			for mi, mk := range model {
				if mk < key || (mk == key && false) {
					t.Fatalf("step %d: popped key %v but model holds (%d,%v)", step, key, mi, mk)
				}
			}
			if model[item] != key {
				t.Fatalf("step %d: popped (%d,%v), model says %v", step, item, key, model[item])
			}
			delete(model, item)
		case op == 2: // remove
			item := rng.Intn(n)
			h.Remove(item)
			delete(model, item)
		case op == 3: // contains / key
			item := rng.Intn(n)
			_, ok := model[item]
			if h.Contains(item) != ok {
				t.Fatalf("step %d: Contains(%d)=%v, model %v", step, item, h.Contains(item), ok)
			}
			if ok && h.Key(item) != model[item] {
				t.Fatalf("step %d: Key(%d)=%v, model %v", step, item, h.Key(item), model[item])
			}
		}
		if h.Len() != len(model) {
			t.Fatalf("step %d: len %d, model %d", step, h.Len(), len(model))
		}
	}
}

func TestDuplicateKeysStable(t *testing.T) {
	h := New(100)
	for i := 0; i < 100; i++ {
		h.Push(i, 7)
	}
	seen := make(map[int]bool)
	keys := make([]float64, 0, 100)
	for !h.Empty() {
		item, k := h.Pop()
		if seen[item] {
			t.Fatalf("item %d popped twice", item)
		}
		seen[item] = true
		keys = append(keys, k)
	}
	if len(seen) != 100 {
		t.Fatalf("popped %d items, want 100", len(seen))
	}
	if !sort.Float64sAreSorted(keys) {
		t.Fatal("equal keys popped out of order")
	}
}

// Package vheap implements an indexed 4-ary min-heap keyed by float64
// priorities over dense integer items. It is the priority queue behind every
// Dijkstra variant in this repository (pruned PLL Dijkstra, PLaNT Dijkstra,
// the reference SSSP) and supports the decrease-key operation those
// algorithms rely on: each vertex appears in the queue at most once.
//
// A 4-ary layout is used instead of binary because Dijkstra performs many
// more DecreaseKey (sift-up) operations than Pop (sift-down), and the
// shallower tree makes sift-up cheaper while keeping sift-down competitive —
// the standard choice in shortest-path codes.
package vheap

// Heap is an indexed min-heap over items 0..n-1. The zero value is not
// usable; call New. A Heap is not safe for concurrent use: every algorithm
// here owns one heap per worker.
type Heap struct {
	keys []float64 // keys[item] = current priority, valid while pos[item] != absent
	pos  []int32   // pos[item] = index into heap, or absent
	heap []int32   // heap of items, heap[0] = min
}

const absent = int32(-1)

// New returns an empty heap capable of holding items in [0, n).
func New(n int) *Heap {
	h := &Heap{
		keys: make([]float64, n),
		pos:  make([]int32, n),
		heap: make([]int32, 0, 64),
	}
	for i := range h.pos {
		h.pos[i] = absent
	}
	return h
}

// Len returns the number of items currently queued.
func (h *Heap) Len() int { return len(h.heap) }

// Empty reports whether the heap holds no items.
func (h *Heap) Empty() bool { return len(h.heap) == 0 }

// Contains reports whether item is currently queued.
func (h *Heap) Contains(item int) bool { return h.pos[item] != absent }

// Key returns the current priority of a queued item. It must only be called
// when Contains(item) is true.
func (h *Heap) Key(item int) float64 { return h.keys[item] }

// Push inserts item with the given key, or decreases its key if the item is
// already queued with a larger key. Pushing a queued item with a key that is
// not smaller is a no-op, matching Dijkstra's relaxation semantics. It
// reports whether the heap changed.
func (h *Heap) Push(item int, key float64) bool {
	if p := h.pos[item]; p != absent {
		if key >= h.keys[item] {
			return false
		}
		h.keys[item] = key
		h.up(p)
		return true
	}
	h.keys[item] = key
	h.pos[item] = int32(len(h.heap))
	h.heap = append(h.heap, int32(item))
	h.up(int32(len(h.heap) - 1))
	return true
}

// Pop removes and returns the item with the minimum key.
// It must only be called on a non-empty heap.
func (h *Heap) Pop() (item int, key float64) {
	top := h.heap[0]
	item, key = int(top), h.keys[top]
	last := int32(len(h.heap) - 1)
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[top] = absent
	if last > 0 {
		h.down(0)
	}
	return item, key
}

// Peek returns the minimum item and key without removing it.
// It must only be called on a non-empty heap.
func (h *Heap) Peek() (item int, key float64) {
	top := h.heap[0]
	return int(top), h.keys[top]
}

// Remove deletes a queued item from the heap.
func (h *Heap) Remove(item int) {
	p := h.pos[item]
	if p == absent {
		return
	}
	last := int32(len(h.heap) - 1)
	h.swap(p, last)
	h.heap = h.heap[:last]
	h.pos[item] = absent
	if p < last {
		h.down(p)
		h.up(p)
	}
}

// Clear empties the heap in O(size) time, leaving capacity in place so a
// worker can reuse one heap across many SPT constructions (the
// initialization-touches-only-modified-state trick of Algorithm 1's
// footnote).
func (h *Heap) Clear() {
	for _, item := range h.heap {
		h.pos[item] = absent
	}
	h.heap = h.heap[:0]
}

// Resize grows the item universe to n, preserving contents. Shrinking is not
// supported.
func (h *Heap) Resize(n int) {
	for len(h.pos) < n {
		h.pos = append(h.pos, absent)
		h.keys = append(h.keys, 0)
	}
}

func (h *Heap) swap(i, j int32) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

func (h *Heap) up(i int32) {
	item := h.heap[i]
	key := h.keys[item]
	for i > 0 {
		parent := (i - 1) >> 2
		pitem := h.heap[parent]
		if h.keys[pitem] <= key {
			break
		}
		h.heap[i] = pitem
		h.pos[pitem] = i
		i = parent
	}
	h.heap[i] = item
	h.pos[item] = i
}

func (h *Heap) down(i int32) {
	n := int32(len(h.heap))
	item := h.heap[i]
	key := h.keys[item]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		bestKey := h.keys[h.heap[first]]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if k := h.keys[h.heap[c]]; k < bestKey {
				best, bestKey = c, k
			}
		}
		if key <= bestKey {
			break
		}
		child := h.heap[best]
		h.heap[i] = child
		h.pos[child] = i
		i = best
	}
	h.heap[i] = item
	h.pos[item] = i
}

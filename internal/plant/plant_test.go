package plant

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/pll"
	"repro/internal/sssp"
)

// TestFigure1cGolden replays the PLaNT trace of Figure 1c step by step:
// building SPT_v2 (root id 1) after SPT_v1, PLaNT pops v2, v1, v4, v3, v5;
// the final ancestors are a(v1)=v1, a(v3)=v2, a(v4)=v1, a(v5)=v1 (the
// equal-length path through v1 wins the tie at v5), and labels are emitted
// exactly for v2 and v3 — identical to PLL's output in Figure 1b.
func TestFigure1cGolden(t *testing.T) {
	g := graph.Figure1()
	s := NewScratch(5)
	var got []label.L
	st := Tree(g, 1, s, nil, 0, func(v int, d float64) {
		got = append(got, label.L{Hub: uint32(v), Dist: d}) // Hub field reused as "vertex"
	})
	if len(got) != 2 || got[0] != (label.L{Hub: 1, Dist: 0}) || got[1] != (label.L{Hub: 2, Dist: 10}) {
		t.Fatalf("labels = %v, want [(v2,0) (v3,10)]", got)
	}
	if st.Labels != 2 {
		t.Fatalf("stats labels = %d", st.Labels)
	}
	// v2, v1, v4 and v3 are popped; before v5 can pop, every queued vertex
	// (just v5, with ancestor v1) outranks the root, so early termination
	// cuts the last pop that Figure 1c's unoptimized trace still shows.
	if st.Explored != 4 {
		t.Fatalf("explored = %d, want 4 (early termination after v3)", st.Explored)
	}
	// Final ancestor state of Figure 1c.
	wantAnc := []int32{0, 1, 1, 0, 0} // a(v1)=v1, a(v2)=v2, a(v3)=v2, a(v4)=v1, a(v5)=v1
	for v, w := range wantAnc {
		if s.anc[v] != w {
			t.Fatalf("a(v%d) = v%d, want v%d", v+1, s.anc[v]+1, w+1)
		}
	}
	// The tie at v5: d = 12 via both {v2,v1,v4,v5} and {v2,v3,v5}; the
	// ancestor must be v1 (the higher-ranked path), which blocks the label.
	if s.dist[4] != 12 {
		t.Fatalf("d(v5) = %v", s.dist[4])
	}
}

func TestTreeEqualsMaxRankSemantics(t *testing.T) {
	// PLaNT's label condition is exactly "root is the max-rank vertex on
	// any shortest path" — cross-check against sssp.MaxRankOnPath.
	for seed := int64(0); seed < 6; seed++ {
		g := graph.ErdosRenyi(40, 90, 5, seed)
		n := g.NumVertices()
		s := NewScratch(n)
		for h := 0; h < n; h += 3 {
			labeled := map[int]float64{}
			Tree(g, h, s, nil, 0, func(v int, d float64) { labeled[v] = d })
			best, dist := sssp.MaxRankOnPath(g, h)
			for v := 0; v < n; v++ {
				_, got := labeled[v]
				want := dist[v] != graph.Infinity && int(best[v]) == h
				if got != want {
					t.Fatalf("seed %d root %d vertex %d: labeled=%v, canonical=%v", seed, h, v, got, want)
				}
				if want && labeled[v] != dist[v] {
					t.Fatalf("seed %d root %d vertex %d: label dist %v, true %v", seed, h, v, labeled[v], dist[v])
				}
			}
		}
	}
}

func TestEarlyTermination(t *testing.T) {
	// On a path ranked along its length, the tree rooted at the far end
	// must stop quickly: once the frontier's ancestors outrank the root,
	// no labels can follow.
	g := graph.Path(100, 1)
	s := NewScratch(100)
	st := Tree(g, 99, s, nil, 0, func(int, float64) {})
	if st.Labels != 1 {
		t.Fatalf("tail tree labels = %d, want 1 (self)", st.Labels)
	}
	// Without early termination it would explore all 100 vertices.
	if st.Explored > 3 {
		t.Fatalf("explored %d vertices, early termination failed", st.Explored)
	}
	// The top-ranked root must explore (and label) everything.
	st0 := Tree(g, 0, s, nil, 0, func(int, float64) {})
	if st0.Labels != 100 || st0.Explored != 100 {
		t.Fatalf("root tree: labels=%d explored=%d", st0.Labels, st0.Explored)
	}
}

func TestPsiStats(t *testing.T) {
	g := graph.RoadGrid(6, 6, 1)
	s := NewScratch(g.NumVertices())
	st := Tree(g, g.NumVertices()-1, s, nil, 0, func(int, float64) {})
	if st.Psi() < 1 {
		t.Fatalf("Ψ = %v < 1", st.Psi())
	}
	zero := TreeStats{Explored: 7}
	if zero.Psi() != 7 {
		t.Fatalf("Ψ of label-free tree = %v, want Explored", zero.Psi())
	}
}

func TestRunMatchesSequentialPLL(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.BarabasiAlbert(70, 3, seed)
		want, _ := pll.Sequential(g, pll.Options{})
		for _, workers := range []int{1, 4} {
			got, m := Run(g, Options{Workers: workers})
			if diff := want.Diff(got); diff != "" {
				t.Fatalf("seed %d workers %d: %s", seed, workers, diff)
			}
			if m.Trees != int64(g.NumVertices()) {
				t.Fatalf("trees = %d", m.Trees)
			}
		}
	}
}

func TestCommonHubPruningReducesExploration(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, 7)
	plain, mPlain := Run(g, Options{Workers: 1})
	pruned, mPruned := Run(g, Options{Workers: 1, CommonHubs: 16})
	if diff := plain.Diff(pruned); diff != "" {
		t.Fatalf("common-hub pruning changed the labeling: %s", diff)
	}
	if mPruned.VerticesExplored >= mPlain.VerticesExplored {
		t.Fatalf("common-hub pruning did not reduce exploration: %d vs %d",
			mPruned.VerticesExplored, mPlain.VerticesExplored)
	}
}

func TestCommonHubsClamped(t *testing.T) {
	g := graph.Path(5, 1)
	ix, _ := Run(g, Options{CommonHubs: 100}) // η > n must clamp
	want, _ := pll.Sequential(g, pll.Options{})
	if diff := want.Diff(ix); diff != "" {
		t.Fatal(diff)
	}
}

func TestDirectedPlantMatchesDirectedPLL(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.RandomDirected(45, 140, 7, seed)
		want, _ := pll.SequentialDirected(g, pll.Options{})
		got, _ := RunDirected(g, Options{Workers: 2})
		if diff := want.Forward.Diff(got.Forward); diff != "" {
			t.Fatalf("seed %d forward: %s", seed, diff)
		}
		if diff := want.Backward.Diff(got.Backward); diff != "" {
			t.Fatalf("seed %d backward: %s", seed, diff)
		}
	}
}

func TestScratchReuseAcrossTrees(t *testing.T) {
	// Reusing one scratch across trees must give the same labels as fresh
	// scratch per tree (dirty-list reset correctness).
	g := graph.ErdosRenyi(30, 70, 4, 11)
	shared := NewScratch(30)
	for h := 0; h < 30; h++ {
		var a, b []label.L
		Tree(g, h, shared, nil, 0, func(v int, d float64) { a = append(a, label.L{Hub: uint32(v), Dist: d}) })
		fresh := NewScratch(30)
		Tree(g, h, fresh, nil, 0, func(v int, d float64) { b = append(b, label.L{Hub: uint32(v), Dist: d}) })
		if len(a) != len(b) {
			t.Fatalf("root %d: %d labels with shared scratch, %d with fresh", h, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("root %d label %d differs: %v vs %v", h, i, a[i], b[i])
			}
		}
	}
}

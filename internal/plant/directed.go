package plant

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
)

// RunDirected executes PLaNT on a directed graph, producing the directed
// CHL as forward/backward label sets (footnote 1 of the paper). For every
// root h two PLaNTed trees are built: one over G whose labels (h, d(h→v))
// go to the backward sets Lin(v), and one over Gᵀ whose labels (h, d(u→h))
// go to the forward sets Lout(u). The ancestor argument is direction-local,
// so each tree is Algorithm 3 verbatim on its orientation.
func RunDirected(g *graph.Graph, opts Options) (*label.DirectedIndex, *metrics.Build) {
	opts = opts.normalize()
	n := g.NumVertices()
	m := &metrics.Build{Algorithm: "PLaNT-directed", Workers: opts.Workers}
	if opts.RecordPerTree {
		m.LabelsPerTree = make([]int64, n)
		m.ExploredPerTree = make([]int64, n)
	}
	gt := g.Transpose()
	lin := label.NewConcurrentStore(n)
	lout := label.NewConcurrentStore(n)
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	start := time.Now()

	var next int64 = -1
	var explored, relaxed int64
	var wg sync.WaitGroup
	for t := 0; t < opts.Workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewScratch(n)
			var ex, rx int64
			for {
				h := int(atomic.AddInt64(&next, 1))
				if h >= n {
					break
				}
				fwd := Tree(g, h, s, nil, 0, func(v int, d float64) {
					lin.Append(v, label.L{Hub: uint32(h), Dist: d})
				})
				bwd := Tree(gt, h, s, nil, 0, func(v int, d float64) {
					lout.Append(v, label.L{Hub: uint32(h), Dist: d})
				})
				ex += fwd.Explored + bwd.Explored
				rx += fwd.Relaxed + bwd.Relaxed
				if opts.RecordPerTree {
					m.LabelsPerTree[h] = fwd.Labels + bwd.Labels
					m.ExploredPerTree[h] = fwd.Explored + bwd.Explored
				}
			}
			atomic.AddInt64(&explored, ex)
			atomic.AddInt64(&relaxed, rx)
		}()
	}
	wg.Wait()
	dx := &label.DirectedIndex{Forward: lout.Seal(), Backward: lin.Seal()}
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.TotalTime = time.Since(start)
	m.ConstructTime = m.TotalTime
	m.Trees = 2 * int64(n)
	m.VerticesExplored = explored
	m.EdgesRelaxed = relaxed
	m.Labels = dx.Forward.TotalLabels() + dx.Backward.TotalLabels()
	m.LabelsGenerated = m.Labels
	return dx, m
}

// Package plant implements PLaNT — "Prune Labels and (do) Not (prune)
// Trees" (§5.2, Algorithm 3), the paper's key contribution.
//
// A PLaNTed shortest path tree is a full (unpruned) Dijkstra from the root h
// that propagates, alongside distances, the highest-ranked *ancestor* seen
// on (any) shortest path from h: a[v] = argmax-rank over the vertices of
// the best shortest path from h to v, endpoints included. When v is popped,
// the label (h, δ_v) is emitted iff neither v nor a[v] outranks h — i.e.
// iff h is the maximum-rank vertex on every... precisely, on the
// highest-ancestor shortest path, which after the tie-breaking rule of
// Algorithm 3 line 12 equals the maximum over ALL shortest h–v paths. That
// is exactly the membership condition of the Canonical Hub Labeling, so
// PLaNT emits canonical labels using information intrinsic to its own tree:
// no distance queries against previously generated labels, hence no
// inter-node communication when trees are distributed across a cluster.
//
// Two optimizations from the paper are included:
//
//   - Early termination: a counter tracks how many queued vertices still
//     have the root as their best ancestor; when it reaches zero no future
//     pop can produce a label, and the traversal stops (§5.2).
//   - Common-label pruning (§5.3): given the complete label sets of the η
//     top-ranked hubs (the Common Label Table, replicated on every node), a
//     distance query against those hubs alone can prune the PLaNTed tree
//     without risking redundant or distance-inflated labels — see the
//     soundness argument in DESIGN.md.
//
// The package operates in rank space (vertex 0 = highest rank); with
// positive edge weights every shortest-path predecessor settles before its
// successor pops, so ancestors are exact at pop time.
package plant

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/vheap"
)

// Scratch holds the per-worker state of PLaNT Dijkstra, reusable across
// trees (reset costs O(touched), not O(n)).
type Scratch struct {
	dist    []float64
	anc     []int32 // a[v]: best (minimum-id) ancestor on current best path
	settled []bool
	dirty   []int32
	heap    *vheap.Heap
}

// NewScratch allocates scratch for graphs with n vertices.
func NewScratch(n int) *Scratch {
	s := &Scratch{
		dist:    make([]float64, n),
		anc:     make([]int32, n),
		settled: make([]bool, n),
		heap:    vheap.New(n),
	}
	for i := range s.dist {
		s.dist[i] = graph.Infinity
	}
	return s
}

func (s *Scratch) reset() {
	for _, v := range s.dirty {
		s.dist[v] = graph.Infinity
		s.settled[v] = false
	}
	s.dirty = s.dirty[:0]
	s.heap.Clear()
}

// Sink receives the labels emitted by one PLaNTed tree, in ascending
// distance order. v is the labeled vertex; the hub is the tree root.
type Sink func(v int, dist float64)

// TreeStats reports what one PLaNTed tree did.
type TreeStats struct {
	Explored int64 // vertices popped
	Relaxed  int64 // edges relaxed
	Labels   int64 // labels emitted
	Pruned   int64 // vertices cut by common-label pruning
}

// Psi is the Ψ ratio of this tree: vertices explored per label generated
// (Figure 3). A tree that generated no labels reports Ψ = Explored.
func (t TreeStats) Psi() float64 {
	if t.Labels == 0 {
		return float64(t.Explored)
	}
	return float64(t.Explored) / float64(t.Labels)
}

// Tree runs Algorithm 3 (PLaNTDijkstra) from root h over g, emitting labels
// into sink. If common is non-nil it is the Common Label Table — the
// complete label sets of hubs ranked above commonBound (= η, or the number
// of hubs whose trees have completed) — and is used to prune the traversal
// per §5.3.
//
// Differences from the paper's pseudo-code, both deliberate (DESIGN.md §3):
// edge relaxation happens even when the popped vertex produces no label
// (Figure 1c shows this; otherwise ancestors would not propagate past
// high-ranked vertices), and settled vertices are never re-relaxed.
func Tree(g *graph.Graph, h int, s *Scratch, common *label.Index, commonBound uint32, sink Sink) TreeStats {
	var st TreeStats
	s.reset()
	s.dist[h] = 0
	s.anc[h] = int32(h)
	s.dirty = append(s.dirty, int32(h))
	s.heap.Push(h, 0)
	cnt := 1 // queued vertices whose best ancestor is the root

	var commonH label.Set
	if common != nil {
		commonH = common.Labels(h)
	}

	for !s.heap.Empty() {
		if cnt == 0 {
			break // early termination: no queued vertex can yield a label
		}
		v, dv := s.heap.Pop()
		s.settled[v] = true
		st.Explored++
		av := s.anc[v]
		if av == int32(h) {
			cnt--
		}
		// nA = argmax rank over {v, a[v]} = min id.
		nA := av
		if int32(v) < nA {
			nA = int32(v)
		}
		// Common-label pruning (§5.3): if a hub ranked above the root
		// covers (h, v) at distance ≤ δv, neither v nor anything whose
		// shortest paths run through v can take h as a hub — cut the
		// subtree. Sound only because the table holds the *complete*
		// canonical labels of those top hubs.
		if common != nil && v != h {
			bound := commonBound
			if uint32(h) < bound {
				bound = uint32(h)
			}
			if d, _, ok := label.QueryMergeBounded(common.Labels(v), commonH, bound); ok && d <= dv {
				st.Pruned++
				continue
			}
		}
		if nA >= int32(h) { // R[nA] ≤ R[h]: the root is the path maximum
			sink(v, dv)
			st.Labels++
		}
		heads, wts := g.Neighbors(v)
		for i, uu := range heads {
			u := int(uu)
			if s.settled[u] {
				continue
			}
			nd := dv + wts[i]
			st.Relaxed++
			du := s.dist[u]
			if nd < du {
				if du == graph.Infinity {
					s.dirty = append(s.dirty, int32(uu))
				}
				// a[u] = argmax rank over {nA, u} (Alg. 3 line 11).
				na := nA
				if int32(u) < na {
					na = int32(u)
				}
				prev := du != graph.Infinity && s.anc[u] == int32(h)
				now := na == int32(h)
				if now && !prev {
					cnt++
				} else if !now && prev {
					cnt--
				}
				s.anc[u] = na
				s.dist[u] = nd
				s.heap.Push(u, nd)
			} else if nd == du {
				// Equal-length path: keep the higher-ranked ancestor
				// (Alg. 3 line 12) so the emitted labels reflect the
				// maximum over ALL shortest paths.
				pa := s.anc[u]
				na := nA
				if int32(u) < na {
					na = int32(u)
				}
				if pa < na {
					na = pa
				}
				if na != pa {
					prev := pa == int32(h)
					now := na == int32(h)
					if now && !prev {
						cnt++
					} else if !now && prev {
						cnt--
					}
					s.anc[u] = na
				}
			}
		}
	}
	return st
}

// Options configures a shared-memory PLaNT run.
type Options struct {
	// Workers is the number of goroutines. Zero means GOMAXPROCS.
	Workers int
	// RecordPerTree enables the per-tree series for Figure 3.
	RecordPerTree bool
	// CommonHubs (η) enables common-label pruning: the labels of the η
	// top-ranked hubs are gathered first and used to prune later trees.
	// Zero disables pruning (pure Algorithm 3).
	CommonHubs int
}

func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Run executes shared-memory PLaNT: every root's tree is embarrassingly
// parallel, so workers simply split the roots dynamically. The output is
// the CHL — PLaNT needs no cleaning.
func Run(g *graph.Graph, opts Options) (*label.Index, *metrics.Build) {
	opts = opts.normalize()
	n := g.NumVertices()
	m := &metrics.Build{Algorithm: "PLaNT", Workers: opts.Workers}
	if opts.RecordPerTree {
		m.LabelsPerTree = make([]int64, n)
		m.ExploredPerTree = make([]int64, n)
	}
	store := label.NewConcurrentStore(n)
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	start := time.Now()

	var common *label.Index
	eta := opts.CommonHubs
	if eta > n {
		eta = n
	}
	if eta > 0 {
		// Phase 1: PLaNT the top-η trees unpruned, collect their labels
		// into the common table.
		common = label.NewIndex(n)
		var mu sync.Mutex
		runTrees(g, 0, eta, opts.Workers, nil, 0, m, opts, func(h int) Sink {
			return func(v int, d float64) {
				store.Append(v, label.L{Hub: uint32(h), Dist: d})
				mu.Lock()
				common.Append(v, label.L{Hub: uint32(h), Dist: d})
				mu.Unlock()
			}
		})
	}
	runTrees(g, eta, n, opts.Workers, common, uint32(eta), m, opts, func(h int) Sink {
		return func(v int, d float64) {
			store.Append(v, label.L{Hub: uint32(h), Dist: d})
		}
	})

	ix := store.Seal()
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.TotalTime = time.Since(start)
	m.ConstructTime = m.TotalTime
	m.Trees = int64(n)
	m.Labels = ix.TotalLabels()
	m.LabelsGenerated = m.Labels
	return ix, m
}

// runTrees builds the PLaNTed trees for roots in [lo, hi) across workers.
func runTrees(g *graph.Graph, lo, hi, workers int, common *label.Index, bound uint32, m *metrics.Build, opts Options, mkSink func(h int) Sink) {
	n := g.NumVertices()
	next := int64(lo) - 1
	var explored, relaxed, labels int64
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewScratch(n)
			var ex, rx, lb int64
			for {
				h := int(atomic.AddInt64(&next, 1))
				if h >= hi {
					break
				}
				st := Tree(g, h, s, common, bound, mkSink(h))
				ex += st.Explored
				rx += st.Relaxed
				lb += st.Labels
				if opts.RecordPerTree {
					m.LabelsPerTree[h] = st.Labels
					m.ExploredPerTree[h] = st.Explored
				}
			}
			atomic.AddInt64(&explored, ex)
			atomic.AddInt64(&relaxed, rx)
			atomic.AddInt64(&labels, lb)
		}()
	}
	wg.Wait()
	atomic.AddInt64(&m.VerticesExplored, explored)
	atomic.AddInt64(&m.EdgesRelaxed, relaxed)
}

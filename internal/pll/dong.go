package pll

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/vheap"
)

// DongHybrid implements the inter-/intra-tree hybrid of Dong et al. [9]
// (§3 of the paper): the initial, very large SPTs are built one at a time
// with an intra-tree parallel pruned Bellman-Ford (all workers cooperate on
// one tree, roots strictly in rank order), and once trees shrink the
// algorithm switches to inter-tree parallelism (concurrent pruned Dijkstras
// à la SparaPLL). The paper notes two facts about it that this
// implementation reproduces and the tests assert:
//
//   - its labeling keeps "average label size close to that of CHL" but is
//     not exactly canonical (the inter-tree phase races), and — unlike
//     paraPLL — it CAN be repaired: "it can be used to clean the output of
//     inter-tree parallel algorithm by Dong et al" (§4.1). We make that
//     precise by running the inter-tree phase with rank queries, so the
//     output respects R and lcc.Clean turns it into the CHL.
//   - Bellman-Ford's work explodes on high-diameter graphs ("fails to
//     accelerate high-diameter graphs, such as road networks, due to the
//     high complexity of Bellman Ford"), visible in the EdgesRelaxed
//     counter.
//
// bfTrees fixes how many initial trees use Bellman-Ford; zero uses the
// paper's observation that only the biggest (top-ranked) trees benefit and
// defaults to 32.
func DongHybrid(g *graph.Graph, opts Options, bfTrees int) (*label.Index, *metrics.Build) {
	opts = opts.normalize()
	n := g.NumVertices()
	if bfTrees <= 0 {
		bfTrees = 32
	}
	if bfTrees > n {
		bfTrees = n
	}
	m := &metrics.Build{Algorithm: "DongHybrid", Workers: opts.Workers}
	store := label.NewConcurrentStore(n)
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	start := time.Now()

	// ---- Phase 1: intra-tree parallel pruned Bellman-Ford, sequential
	// root order (exactly the PLL prefix, so this phase is canonical).
	bf := newBellmanFord(n, opts.Workers)
	for h := 0; h < bfTrees; h++ {
		bf.tree(g, store, h, m)
	}

	// ---- Phase 2: inter-tree parallel pruned Dijkstras with rank
	// queries (concurrent roots in rank order).
	var next = int64(bfTrees) - 1
	var explored, relaxed, dqs, dprunes, rprunes int64
	var wg sync.WaitGroup
	for t := 0; t < opts.Workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newWorker(n)
			var ex, rx, dq, dp, rp int64
			for {
				h := int(atomic.AddInt64(&next, 1))
				if h >= n {
					break
				}
				w.dongTree(g, store, h, &ex, &rx, &dq, &dp, &rp)
			}
			atomic.AddInt64(&explored, ex)
			atomic.AddInt64(&relaxed, rx)
			atomic.AddInt64(&dqs, dq)
			atomic.AddInt64(&dprunes, dp)
			atomic.AddInt64(&rprunes, rp)
		}()
	}
	wg.Wait()
	m.VerticesExplored += explored
	m.EdgesRelaxed += relaxed
	m.DistanceQueries += dqs
	m.DistPrunes += dprunes
	m.RankPrunes += rprunes

	ix := store.Seal()
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.ConstructTime = time.Since(start)
	m.TotalTime = m.ConstructTime
	m.Trees = int64(n)
	m.Labels = ix.TotalLabels()
	m.LabelsGenerated = m.Labels
	return ix, m
}

// dongTree is the phase-2 tree: pruned Dijkstra with rank queries against
// the live store (the LCC construction regime).
func (w *worker) dongTree(g *graph.Graph, store *label.ConcurrentStore, h int, explored, relaxed, dqs, dprunes, rprunes *int64) {
	w.reset()
	w.hd.Reset()
	for _, l := range store.CopyLabels(h) {
		w.hd.Add(l.Hub, l.Dist)
	}
	w.dist[h] = 0
	w.dirty = append(w.dirty, int32(h))
	w.heap.Push(h, 0)
	for !w.heap.Empty() {
		v, dv := w.heap.Pop()
		*explored++
		if v < h {
			*rprunes++
			continue
		}
		if v != h {
			*dqs++
			if store.QueryAgainst(w.hd, v, dv) {
				*dprunes++
				continue
			}
		}
		store.Append(v, label.L{Hub: uint32(h), Dist: dv})
		heads, wts := g.Neighbors(v)
		for i, uu := range heads {
			u := int(uu)
			nd := dv + wts[i]
			*relaxed++
			if nd < w.dist[u] {
				if w.dist[u] == graph.Infinity {
					w.dirty = append(w.dirty, int32(uu))
				}
				w.dist[u] = nd
				w.heap.Push(u, nd)
			}
		}
	}
}

// bellmanFord holds the frontier-parallel Bellman-Ford state of phase 1.
type bellmanFord struct {
	n       int
	workers int
	dist    []float64
	dirty   []int32
	active  []int32
	nextAct []int32
	inNext  []bool
	hd      *label.HashDist
	heapBuf *vheap.Heap // used only to order label emission by distance
}

func newBellmanFord(n, workers int) *bellmanFord {
	bf := &bellmanFord{
		n: n, workers: workers,
		dist:    make([]float64, n),
		inNext:  make([]bool, n),
		hd:      label.NewHashDist(n),
		heapBuf: vheap.New(n),
	}
	for i := range bf.dist {
		bf.dist[i] = graph.Infinity
	}
	return bf
}

// tree builds SPT_h with round-synchronous parallel Bellman-Ford, then
// filters labels with distance queries. Labels are exact (full SPT, no
// exploration pruning), so this phase emits precisely the PLL labels.
func (bf *bellmanFord) tree(g *graph.Graph, store *label.ConcurrentStore, h int, m *metrics.Build) {
	// reset
	for _, v := range bf.dirty {
		bf.dist[v] = graph.Infinity
	}
	bf.dirty = bf.dirty[:0]
	bf.dist[h] = 0
	bf.dirty = append(bf.dirty, int32(h))
	bf.active = append(bf.active[:0], int32(h))

	var mu sync.Mutex
	for len(bf.active) > 0 {
		bf.nextAct = bf.nextAct[:0]
		// Parallel relaxation of the frontier in chunks.
		chunk := (len(bf.active) + bf.workers - 1) / bf.workers
		var wg sync.WaitGroup
		for t := 0; t < bf.workers; t++ {
			lo := t * chunk
			if lo >= len(bf.active) {
				break
			}
			hi := lo + chunk
			if hi > len(bf.active) {
				hi = len(bf.active)
			}
			wg.Add(1)
			go func(part []int32) {
				defer wg.Done()
				var localNext []int32
				var localDirty []int32
				var relaxed int64
				for _, vv := range part {
					v := int(vv)
					mu.Lock()
					dv := bf.dist[v]
					mu.Unlock()
					heads, wts := g.Neighbors(v)
					for i, uu := range heads {
						u := int(uu)
						nd := dv + wts[i]
						relaxed++
						// Benign race on dist: Bellman-Ford tolerates
						// stale reads (monotone improvements re-enqueue),
						// but we serialize the update to keep -race clean.
						mu.Lock()
						if nd < bf.dist[u] {
							if bf.dist[u] == graph.Infinity {
								localDirty = append(localDirty, int32(uu))
							}
							bf.dist[u] = nd
							if !bf.inNext[u] {
								bf.inNext[u] = true
								localNext = append(localNext, int32(uu))
							}
						}
						mu.Unlock()
					}
				}
				mu.Lock()
				bf.nextAct = append(bf.nextAct, localNext...)
				bf.dirty = append(bf.dirty, localDirty...)
				atomic.AddInt64(&m.EdgesRelaxed, relaxed)
				mu.Unlock()
			}(bf.active[lo:hi])
		}
		wg.Wait()
		for _, u := range bf.nextAct {
			bf.inNext[u] = false
		}
		bf.active, bf.nextAct = bf.nextAct, bf.active
		m.VerticesExplored += int64(len(bf.active))
	}

	// Label filter: in rank order of distance (ascending), apply rank +
	// distance queries. Ascending distance guarantees witness labels from
	// this same tree are never needed (PLL never uses same-tree labels).
	bf.hd.Reset()
	for _, l := range store.CopyLabels(h) {
		bf.hd.Add(l.Hub, l.Dist)
	}
	bf.heapBuf.Clear()
	for _, vv := range bf.dirty {
		bf.heapBuf.Push(int(vv), bf.dist[vv])
	}
	for !bf.heapBuf.Empty() {
		v, dv := bf.heapBuf.Pop()
		if v < h {
			m.RankPrunes++
			continue
		}
		if v != h {
			m.DistanceQueries++
			if store.QueryAgainst(bf.hd, v, dv) {
				m.DistPrunes++
				continue
			}
		}
		store.Append(v, label.L{Hub: uint32(h), Dist: dv})
	}
	m.Trees++
}

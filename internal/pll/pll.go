// Package pll implements Pruned Landmark Labeling: the sequential algorithm
// of Akiba et al. (the paper's seqPLL baseline, which outputs the Canonical
// Hub Labeling), and the shared-memory paraPLL of Qiu et al. (SparaPLL — the
// state-of-the-art baseline the paper compares against, which satisfies the
// cover property but NOT minimality because concurrent trees are built
// without rank queries).
//
// All functions operate in rank space: the input graph must already be
// permuted so vertex 0 is the highest-ranked vertex.
package pll

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/vheap"
)

// Options configures a PLL run.
type Options struct {
	// Workers is the number of construction goroutines for SparaPLL
	// (ignored by Sequential). Zero means GOMAXPROCS.
	Workers int
	// PruneHubBound restricts pruning distance queries to hubs ranked in
	// the top PruneHubBound positions (hub id < bound). Zero means
	// unrestricted. This drives the Figure 4 experiment.
	PruneHubBound uint32
	// DisableDistanceQueries turns off distance-query pruning entirely
	// (Figure 4's x = 0 point: rank queries only).
	DisableDistanceQueries bool
	// RecordPerTree enables the per-tree label/exploration series used by
	// Figures 2 and 3.
	RecordPerTree bool
}

func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.DisableDistanceQueries {
		o.PruneHubBound = 0
	} else if o.PruneHubBound == 0 {
		o.PruneHubBound = math.MaxUint32
	}
	return o
}

// UnrestrictedPruning is the PruneHubBound value meaning "use all hubs".
const UnrestrictedPruning = math.MaxUint32

// Sequential runs sequential pruned landmark labeling and returns the
// Canonical Hub Labeling for the identity rank order of g, together with
// instrumentation. With a restricted PruneHubBound the output is a (larger)
// labeling that still satisfies the cover property but is only canonical for
// bound = MaxUint32 (Figure 4 measures exactly this growth).
func Sequential(g *graph.Graph, opts Options) (*label.Index, *metrics.Build) {
	opts = opts.normalize()
	n := g.NumVertices()
	m := &metrics.Build{Algorithm: "seqPLL", Workers: 1}
	if opts.RecordPerTree {
		m.LabelsPerTree = make([]int64, n)
		m.ExploredPerTree = make([]int64, n)
	}
	ix := label.NewIndex(n)
	w := newWorker(n)
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	start := time.Now()
	for h := 0; h < n; h++ {
		labels, explored := w.prunedDijkstra(g, ix, h, opts.PruneHubBound, m)
		m.Trees++
		if opts.RecordPerTree {
			m.LabelsPerTree[h] = labels
			m.ExploredPerTree[h] = explored
		}
	}
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.ConstructTime = time.Since(start)
	m.TotalTime = m.ConstructTime
	m.Labels = ix.TotalLabels()
	m.LabelsGenerated = m.Labels
	return ix, m
}

// worker owns the per-thread scratch state of pruned Dijkstra. The distance
// array is reset via the dirty list (only elements touched by the previous
// run are reinitialized — the trick in Algorithm 1's footnote 2).
type worker struct {
	dist  []float64
	dirty []int32
	heap  *vheap.Heap
	hd    *label.HashDist
}

func newWorker(n int) *worker {
	w := &worker{
		dist: make([]float64, n),
		heap: vheap.New(n),
		hd:   label.NewHashDist(n),
	}
	for i := range w.dist {
		w.dist[i] = graph.Infinity
	}
	return w
}

func (w *worker) reset() {
	for _, v := range w.dirty {
		w.dist[v] = graph.Infinity
	}
	w.dirty = w.dirty[:0]
	w.heap.Clear()
}

// prunedDijkstra builds the pruned SPT rooted at h against (and into) ix.
// Labels are appended in ascending root order so Index.Append stays O(1).
// Since Sequential is single-threaded, reads and writes to ix need no locks.
func (w *worker) prunedDijkstra(g *graph.Graph, ix *label.Index, h int, bound uint32, m *metrics.Build) (labels, explored int64) {
	w.reset()
	w.hd.Load(ix.Labels(h))
	w.dist[h] = 0
	w.dirty = append(w.dirty, int32(h))
	w.heap.Push(h, 0)
	for !w.heap.Empty() {
		v, dv := w.heap.Pop()
		explored++
		m.VerticesExplored++
		// Rank query: a vertex ranked above the root can never take the
		// root as a hub (sequentially, the distance query would prune here
		// too — see DESIGN.md; the explicit check is faster).
		if v < h {
			m.RankPrunes++
			continue
		}
		// Distance query DQ(v, h, δ): prune if a previously discovered
		// common hub already covers the pair at distance ≤ δ.
		if v != h && bound > 0 {
			m.DistanceQueries++
			if w.hd.QueryAgainstBounded(ix.Labels(v), dv, bound) {
				m.DistPrunes++
				continue
			}
		}
		labels++
		ix.Append(v, label.L{Hub: uint32(h), Dist: dv})
		heads, wts := g.Neighbors(v)
		for i, uu := range heads {
			u := int(uu)
			nd := dv + wts[i]
			m.EdgesRelaxed++
			if nd < w.dist[u] {
				if w.dist[u] == graph.Infinity {
					w.dirty = append(w.dirty, int32(uu))
				}
				w.dist[u] = nd
				w.heap.Push(u, nd)
			}
		}
	}
	return labels, explored
}

// SParaPLL runs the shared-memory paraPLL baseline: Workers goroutines pop
// the highest-ranked unprocessed root from a shared counter (dynamic task
// assignment) and run pruned Dijkstra concurrently, with the root's label
// set hashed prior to the traversal and per-vertex locking on label reads
// and appends. No rank queries are performed, so concurrently built trees
// may label vertices ranked above their root: the output satisfies the
// cover property but contains redundant labels (it is not the CHL), and the
// redundancy grows with Workers — the effect Table 3 and Figure 9 quantify.
func SParaPLL(g *graph.Graph, opts Options) (*label.Index, *metrics.Build) {
	opts = opts.normalize()
	n := g.NumVertices()
	m := &metrics.Build{Algorithm: "SparaPLL", Workers: opts.Workers}
	store := label.NewConcurrentStore(n)
	var next int64 = -1
	var explored, relaxed, dqs, prunes int64

	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < opts.Workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newWorker(n)
			var ex, rx, dq, pr int64
			for {
				h := int(atomic.AddInt64(&next, 1))
				if h >= n {
					break
				}
				w.sparaTree(g, store, h, opts.PruneHubBound, &ex, &rx, &dq, &pr)
			}
			atomic.AddInt64(&explored, ex)
			atomic.AddInt64(&relaxed, rx)
			atomic.AddInt64(&dqs, dq)
			atomic.AddInt64(&prunes, pr)
		}()
	}
	wg.Wait()
	ix := store.Seal()
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.ConstructTime = time.Since(start)
	m.TotalTime = m.ConstructTime
	m.Trees = int64(n)
	m.VerticesExplored = explored
	m.EdgesRelaxed = relaxed
	m.DistanceQueries = dqs
	m.DistPrunes = prunes
	m.Labels = ix.TotalLabels()
	m.LabelsGenerated = m.Labels
	return ix, m
}

// sparaTree is one concurrent pruned Dijkstra of SparaPLL: distance queries
// against the live concurrent store, no rank queries.
func (w *worker) sparaTree(g *graph.Graph, store *label.ConcurrentStore, h int, bound uint32, explored, relaxed, dqs, prunes *int64) {
	w.reset()
	// "Hashing root labels prior to launching an SPT construction" (§3):
	// snapshot L_h once; concurrent additions to L_h are not consulted.
	w.hd.Reset()
	for _, l := range store.CopyLabels(h) {
		if l.Hub < bound {
			w.hd.Add(l.Hub, l.Dist)
		}
	}
	w.dist[h] = 0
	w.dirty = append(w.dirty, int32(h))
	w.heap.Push(h, 0)
	for !w.heap.Empty() {
		v, dv := w.heap.Pop()
		*explored++
		if v != h && bound > 0 {
			*dqs++
			if w.sparaQuery(store, v, dv, bound) {
				*prunes++
				continue
			}
		}
		store.Append(v, label.L{Hub: uint32(h), Dist: dv})
		heads, wts := g.Neighbors(v)
		for i, uu := range heads {
			u := int(uu)
			nd := dv + wts[i]
			*relaxed++
			if nd < w.dist[u] {
				if w.dist[u] == graph.Infinity {
					w.dirty = append(w.dirty, int32(uu))
				}
				w.dist[u] = nd
				w.heap.Push(u, nd)
			}
		}
	}
}

func (w *worker) sparaQuery(store *label.ConcurrentStore, v int, delta float64, bound uint32) bool {
	if bound == 0 {
		return false
	}
	// The store's per-vertex lock guards the read (cf. §4.2 on locking).
	if bound == math.MaxUint32 {
		return store.QueryAgainst(w.hd, v, delta)
	}
	for _, l := range store.CopyLabels(v) {
		if l.Hub >= bound {
			continue
		}
		if d, ok := w.hd.Get(l.Hub); ok && l.Dist+d <= delta {
			return true
		}
	}
	return false
}

package pll

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/lcc"
	"repro/internal/sssp"
)

func TestDongHybridCoversAndCleansToCHL(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.ErdosRenyi(70, 170, 6, seed)
		want, _ := Sequential(g, Options{})
		for _, workers := range []int{1, 4} {
			ix, m := DongHybrid(g, Options{Workers: workers}, 8)
			// Cover property holds before cleaning.
			for s := 0; s < g.NumVertices(); s += 9 {
				dist := sssp.Dijkstra(g, s)
				for v := 0; v < g.NumVertices(); v++ {
					if ix.Query(s, v) != dist[v] {
						t.Fatalf("seed %d workers %d: cover broken at (%d,%d)", seed, workers, s, v)
					}
				}
			}
			if ix.TotalLabels() < want.TotalLabels() {
				t.Fatalf("fewer labels than CHL: %d < %d", ix.TotalLabels(), want.TotalLabels())
			}
			// §4.1: LCC's cleaner repairs Dong's output into the CHL.
			cleaned := lcc.Clean(ix, workers, nil)
			if diff := want.Diff(ix); diff != "" {
				t.Fatalf("seed %d workers %d (cleaned %d): %s", seed, workers, cleaned, diff)
			}
			if m.Trees != int64(g.NumVertices()) {
				t.Fatalf("trees = %d", m.Trees)
			}
		}
	}
}

func TestDongHybridSequentialPrefixIsCanonical(t *testing.T) {
	// With a single worker the whole run is sequential and must equal
	// seqPLL exactly — phase-1 Bellman-Ford label filtering included.
	g := graph.RoadGrid(8, 8, 3)
	want, _ := Sequential(g, Options{})
	ix, m := DongHybrid(g, Options{Workers: 1}, 16)
	if diff := want.Diff(ix); diff != "" {
		t.Fatal(diff)
	}
	if m.EdgesRelaxed == 0 {
		t.Fatal("no Bellman-Ford work recorded")
	}
}

func TestDongHybridBFTreeClamp(t *testing.T) {
	g := graph.Path(5, 2)
	want, _ := Sequential(g, Options{})
	ix, _ := DongHybrid(g, Options{Workers: 2}, 100) // bfTrees > n clamps
	if diff := want.Diff(ix); diff != "" {
		t.Fatal(diff)
	}
}

// TestBellmanFordRelaxationExplosion quantifies the §3 observation that
// pruned Bellman-Ford does far more edge relaxations than pruned Dijkstra
// on high-diameter graphs.
func TestBellmanFordRelaxationExplosion(t *testing.T) {
	g := graph.RoadGrid(16, 16, 1) // diameter ~30
	_, dijM := Sequential(g, Options{})
	_, bfM := DongHybrid(g, Options{Workers: 2}, 16)
	// Compare relaxations attributable to the same top-16 trees: Dijkstra
	// relaxes each explored vertex's edges once; BF re-relaxes per round.
	if bfM.EdgesRelaxed <= dijM.EdgesRelaxed {
		t.Fatalf("BF relaxations %d not above Dijkstra's %d on a road grid",
			bfM.EdgesRelaxed, dijM.EdgesRelaxed)
	}
}

package pll

import (
	"time"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
)

// SequentialDirected runs sequential pruned landmark labeling on a directed
// graph, producing forward and backward label sets (footnote 1 of the
// paper: "all labeling approaches described here can be easily extended to
// directed graphs by using forward and backward labels for each vertex").
//
// Forward labels Lout(u) hold hubs reachable FROM u with d(u→h); backward
// labels Lin(v) hold hubs that REACH v with d(h→v). A query u→v joins
// Lout(u) with Lin(v). For every root h in rank order two pruned Dijkstras
// run: a forward one over G inserting (h, d(h→v)) into Lin(v) — pruned by
// joining the snapshot of Lout(h) against Lin(v) — and a backward one over
// Gᵀ inserting (h, d(u→h)) into Lout(u), pruned symmetrically.
func SequentialDirected(g *graph.Graph, opts Options) (*label.DirectedIndex, *metrics.Build) {
	opts = opts.normalize()
	n := g.NumVertices()
	m := &metrics.Build{Algorithm: "seqPLL-directed", Workers: 1}
	if opts.RecordPerTree {
		m.LabelsPerTree = make([]int64, n)
		m.ExploredPerTree = make([]int64, n)
	}
	lout := label.NewIndex(n) // forward labels, d(v→h)
	lin := label.NewIndex(n)  // backward labels, d(h→v)
	gt := g.Transpose()
	w := newWorker(n)
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	start := time.Now()
	for h := 0; h < n; h++ {
		// Forward tree: distances d(h→v); prune via Lout(h) ⋈ Lin(v).
		l1, e1 := w.prunedDijkstraDirected(g, lout.Labels(h), lin, h, m)
		// Backward tree: distances d(u→h); prune via Lin(h) ⋈ Lout(u).
		l2, e2 := w.prunedDijkstraDirected(gt, lin.Labels(h), lout, h, m)
		m.Trees += 2
		if opts.RecordPerTree {
			m.LabelsPerTree[h] = l1 + l2
			m.ExploredPerTree[h] = e1 + e2
		}
	}
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.ConstructTime = time.Since(start)
	m.TotalTime = m.ConstructTime
	m.Labels = lout.TotalLabels() + lin.TotalLabels()
	m.LabelsGenerated = m.Labels
	return &label.DirectedIndex{Forward: lout, Backward: lin}, m
}

// prunedDijkstraDirected builds one directed pruned SPT rooted at h over
// dir (G for forward trees, Gᵀ for backward), pruning against rootLabels
// (the root's opposite-side labels) joined with into.Labels(v), and
// inserting labels into `into`.
func (w *worker) prunedDijkstraDirected(dir *graph.Graph, rootLabels label.Set, into *label.Index, h int, m *metrics.Build) (labels, explored int64) {
	w.reset()
	w.hd.Load(rootLabels)
	w.dist[h] = 0
	w.dirty = append(w.dirty, int32(h))
	w.heap.Push(h, 0)
	for !w.heap.Empty() {
		v, dv := w.heap.Pop()
		explored++
		m.VerticesExplored++
		if v < h {
			m.RankPrunes++
			continue
		}
		if v != h {
			m.DistanceQueries++
			if w.hd.QueryAgainst(into.Labels(v), dv) {
				m.DistPrunes++
				continue
			}
		}
		labels++
		into.Append(v, label.L{Hub: uint32(h), Dist: dv})
		heads, wts := dir.Neighbors(v)
		for i, uu := range heads {
			u := int(uu)
			nd := dv + wts[i]
			m.EdgesRelaxed++
			if nd < w.dist[u] {
				if w.dist[u] == graph.Infinity {
					w.dirty = append(w.dirty, int32(uu))
				}
				w.dist[u] = nd
				w.heap.Push(u, nd)
			}
		}
	}
	return labels, explored
}

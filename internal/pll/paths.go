package pll

import (
	"time"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
)

// SequentialWithPaths runs sequential PLL recording, for every label, the
// labeled vertex's parent in the hub's shortest path tree — the §5.4
// extension that upgrades distance queries to full shortest-path retrieval.
// Parent chains only traverse labeled vertices: a pruned vertex never
// relaxes its edges, so every tree path to a labeled vertex passes through
// labeled vertices exclusively, and the canonical max-rank property is
// closed under subpaths.
func SequentialWithPaths(g *graph.Graph, opts Options) (*label.PathIndex, *metrics.Build) {
	opts = opts.normalize()
	n := g.NumVertices()
	m := &metrics.Build{Algorithm: "seqPLL+paths", Workers: 1}
	ix := label.NewIndex(n)
	px := label.NewPathIndex(ix)
	parents := make([][]uint32, n) // built per vertex in hub order

	w := newWorker(n)
	parent := make([]int32, n)
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	start := time.Now()
	for h := 0; h < n; h++ {
		w.reset()
		w.hd.Load(ix.Labels(h))
		w.dist[h] = 0
		parent[h] = int32(h)
		w.dirty = append(w.dirty, int32(h))
		w.heap.Push(h, 0)
		for !w.heap.Empty() {
			v, dv := w.heap.Pop()
			m.VerticesExplored++
			if v < h {
				m.RankPrunes++
				continue
			}
			if v != h {
				m.DistanceQueries++
				if w.hd.QueryAgainst(ix.Labels(v), dv) {
					m.DistPrunes++
					continue
				}
			}
			ix.Append(v, label.L{Hub: uint32(h), Dist: dv})
			parents[v] = append(parents[v], uint32(parent[v]))
			heads, wts := g.Neighbors(v)
			for i, uu := range heads {
				u := int(uu)
				nd := dv + wts[i]
				m.EdgesRelaxed++
				if nd < w.dist[u] {
					if w.dist[u] == graph.Infinity {
						w.dirty = append(w.dirty, int32(uu))
					}
					w.dist[u] = nd
					parent[u] = int32(v)
					w.heap.Push(u, nd)
				}
			}
		}
		m.Trees++
	}
	for v := 0; v < n; v++ {
		px.SetParents(v, parents[v])
	}
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.ConstructTime = time.Since(start)
	m.TotalTime = m.ConstructTime
	m.Labels = ix.TotalLabels()
	m.LabelsGenerated = m.Labels
	return px, m
}

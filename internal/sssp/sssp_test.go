package sssp

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// bellmanFord is an independent O(nm) reference used to cross-check
// Dijkstra.
func bellmanFord(g *graph.Graph, src int) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = graph.Infinity
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if dist[u] == graph.Infinity {
				continue
			}
			heads, wts := g.Neighbors(u)
			for i, v := range heads {
				if nd := dist[u] + wts[i]; nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestDijkstraAgainstBellmanFord(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Figure1(),
		graph.Path(10, 3),
		graph.RoadGrid(6, 6, 1),
		graph.BarabasiAlbert(60, 3, 2),
		graph.ErdosRenyi(40, 60, 9, 3), // may be disconnected
		graph.RandomDirected(40, 120, 9, 4),
	}
	for gi, g := range graphs {
		for src := 0; src < g.NumVertices(); src += 7 {
			want := bellmanFord(g, src)
			got := Dijkstra(g, src)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("graph %d src %d vertex %d: dijkstra %v, bellman-ford %v", gi, src, v, got[v], want[v])
				}
			}
		}
	}
}

func TestDijkstraFigure1(t *testing.T) {
	g := graph.Figure1()
	// From v2 (id 1), the worked example of Figure 1b: d1=3, d3=10, d4=8,
	// d5=12.
	d := Dijkstra(g, 1)
	want := []float64{3, 0, 10, 8, 12}
	for v, w := range want {
		if d[v] != w {
			t.Fatalf("d(v2,v%d) = %v, want %v", v+1, d[v], w)
		}
	}
}

func TestDijkstraReverseDirected(t *testing.T) {
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	g := b.MustFinish()
	fwd := Dijkstra(g, 0)
	if fwd[2] != 5 {
		t.Fatalf("forward d(0→2) = %v", fwd[2])
	}
	rev := DijkstraReverse(g, 2)
	if rev[0] != 5 || rev[1] != 3 {
		t.Fatalf("reverse distances %v", rev)
	}
	if fwdBack := Dijkstra(g, 2); fwdBack[0] != graph.Infinity {
		t.Fatal("directed graph should not reach 0 from 2 forwards")
	}
}

func TestMaxRankOnPathFigure1(t *testing.T) {
	g := graph.Figure1()
	// From v2 (id 1): ancestors per Figure 1c's final state: a(v1)=v1,
	// a(v3)=v2, a(v4)=v1, a(v5)=v1 (the tie at v5 resolves to the path
	// through v1).
	best, dist := MaxRankOnPath(g, 1)
	want := []int32{0, 1, 1, 0, 0}
	for v, w := range want {
		if best[v] != w {
			t.Fatalf("maxrank(v2→v%d) = v%d, want v%d", v+1, best[v]+1, w+1)
		}
	}
	if dist[4] != 12 {
		t.Fatalf("dist to v5 = %v", dist[4])
	}
}

// TestMaxRankOnPathBrute cross-checks against exhaustive path enumeration
// on small random graphs.
func TestMaxRankOnPathBrute(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := graph.ErdosRenyi(12, 22, 4, seed)
		n := g.NumVertices()
		for src := 0; src < n; src++ {
			best, dist := MaxRankOnPath(g, src)
			wantDist := Dijkstra(g, src)
			for v := 0; v < n; v++ {
				if dist[v] != wantDist[v] {
					t.Fatalf("seed %d: dist(%d,%d) = %v want %v", seed, src, v, dist[v], wantDist[v])
				}
				if dist[v] == graph.Infinity {
					if best[v] != -1 {
						t.Fatalf("unreachable vertex %d has ancestor %d", v, best[v])
					}
					continue
				}
				want := bruteMaxRank(g, src, v, wantDist)
				if int(best[v]) != want {
					t.Fatalf("seed %d: maxrank(%d→%d) = %d, want %d", seed, src, v, best[v], want)
				}
			}
		}
	}
}

// bruteMaxRank finds the minimum id over vertices on ANY shortest src–v
// path: u is on one iff d(src,u) + d(u,v) == d(src,v).
func bruteMaxRank(g *graph.Graph, src, v int, distSrc []float64) int {
	best := g.NumVertices()
	for u := 0; u < g.NumVertices(); u++ {
		if distSrc[u] == graph.Infinity {
			continue
		}
		dUV := Dijkstra(g, u)[v]
		if dUV == graph.Infinity {
			continue
		}
		if distSrc[u]+dUV == distSrc[v] && u < best {
			best = u
		}
	}
	return best
}

func TestPointToPoint(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.ErdosRenyi(40, 90, 7, seed)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 30; i++ {
			s, v := rng.Intn(40), rng.Intn(40)
			want := Dijkstra(g, s)[v]
			if got := PointToPoint(g, s, v); got != want {
				t.Fatalf("seed %d: ptp(%d,%d) = %v, want %v", seed, s, v, got, want)
			}
		}
	}
	// Directed asymmetry.
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.MustFinish()
	if d := PointToPoint(g, 0, 2); d != 2 {
		t.Fatalf("directed ptp = %v", d)
	}
	if d := PointToPoint(g, 2, 0); d != graph.Infinity {
		t.Fatalf("reverse directed ptp = %v, want Infinity", d)
	}
	if d := PointToPoint(g, 1, 1); d != 0 {
		t.Fatalf("self ptp = %v", d)
	}
}

func TestAllPairsAndEccentricity(t *testing.T) {
	g := graph.Path(5, 2)
	ap := AllPairs(g)
	if ap[0][4] != 8 || ap[4][0] != 8 || ap[2][2] != 0 {
		t.Fatalf("all pairs wrong: %v", ap)
	}
	if ecc := Eccentricity(g, 0); ecc != 8 {
		t.Fatalf("eccentricity = %v", ecc)
	}
	if ecc := Eccentricity(g, 2); ecc != 4 {
		t.Fatalf("centre eccentricity = %v", ecc)
	}
}

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Figure1(),
		graph.Path(20, 3),
		graph.RoadGrid(8, 8, 1),
		graph.BarabasiAlbert(80, 3, 2),
		graph.ErdosRenyi(50, 80, 9, 3), // disconnected
	}
	for gi, g := range graphs {
		for src := 0; src < g.NumVertices(); src += 5 {
			want := Dijkstra(g, src)
			for _, delta := range []float64{0, 1, 2.5, 100} {
				got := DeltaStepping(g, src, delta)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("graph %d src %d δ=%v vertex %d: %v want %v",
							gi, src, delta, v, got[v], want[v])
					}
				}
			}
		}
	}
}

func TestDeltaSteppingEmptyGraph(t *testing.T) {
	g := graph.Path(0, 1)
	if d := DeltaStepping(g, 0, 1); len(d) != 0 {
		t.Fatalf("empty graph returned %v", d)
	}
}

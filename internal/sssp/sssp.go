// Package sssp provides reference single-source shortest path routines:
// plain Dijkstra (the gold standard every labeling is verified against),
// a Dijkstra variant that also computes the maximum-rank vertex on any
// shortest path (the quantity Canonical Hub Labeling is defined by), and a
// bidirectional point-to-point Dijkstra used as the traversal baseline the
// paper's introduction compares hub labeling to.
package sssp

import (
	"repro/internal/graph"
	"repro/internal/vheap"
)

// Dijkstra computes shortest-path distances from source over g (following
// outgoing arcs) and returns the distance array; unreachable vertices get
// graph.Infinity.
func Dijkstra(g *graph.Graph, source int) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = graph.Infinity
	}
	dist[source] = 0
	h := vheap.New(n)
	h.Push(source, 0)
	for !h.Empty() {
		u, du := h.Pop()
		if du > dist[u] {
			continue
		}
		heads, wts := g.Neighbors(u)
		for i, v := range heads {
			if nd := du + wts[i]; nd < dist[v] {
				dist[v] = nd
				h.Push(int(v), nd)
			}
		}
	}
	return dist
}

// DijkstraReverse computes shortest-path distances *to* target following
// arcs backwards (equal to Dijkstra on the transpose). For undirected graphs
// it is identical to Dijkstra.
func DijkstraReverse(g *graph.Graph, target int) []float64 {
	return Dijkstra(g.Transpose(), target)
}

// MaxRankOnPath computes, for every vertex v reachable from source, the
// highest-ranked vertex that appears on ANY shortest path from source to v
// (endpoints included). Rank is position: vertex 0 is the highest ranked, so
// "highest-ranked" means minimum id. This is exactly the quantity that
// defines the Canonical Hub Labeling (Definition 3 / Lemma 1): hub h belongs
// to L_v iff h == MaxRankOnPath(h→v). The verifier uses it as independent
// ground truth for PLaNT's ancestor propagation.
//
// The returned slice holds, per vertex, the id of that maximum-rank vertex,
// or -1 if unreachable. dist receives the distances (may be nil).
func MaxRankOnPath(g *graph.Graph, source int) (best []int32, dist []float64) {
	n := g.NumVertices()
	dist = make([]float64, n)
	best = make([]int32, n)
	for i := range dist {
		dist[i] = graph.Infinity
		best[i] = -1
	}
	dist[source] = 0
	best[source] = int32(source)
	h := vheap.New(n)
	h.Push(source, 0)
	order := make([]int, 0, n) // settle order
	for !h.Empty() {
		u, du := h.Pop()
		if du > dist[u] {
			continue
		}
		order = append(order, u)
		heads, wts := g.Neighbors(u)
		for i, v := range heads {
			if nd := du + wts[i]; nd < dist[v] {
				dist[v] = nd
				h.Push(int(v), nd)
			}
		}
	}
	// With positive weights, predecessors on shortest paths settle strictly
	// before their successors, so one pass in settle order computes the
	// max-rank (minimum id) over all shortest paths exactly.
	for _, u := range order {
		if u == source {
			continue
		}
		tails, wts := g.InNeighbors(u)
		bu := int32(u)
		for i, t := range tails {
			if dist[t] != graph.Infinity && dist[t]+wts[i] == dist[u] {
				if bt := best[t]; bt >= 0 && bt < bu {
					bu = bt
				}
			}
		}
		best[u] = bu
	}
	return best, dist
}

// PointToPoint runs bidirectional Dijkstra between s and t and returns the
// shortest-path distance, or graph.Infinity if t is unreachable from s. It
// is the "traversal algorithm" baseline of the paper's introduction: correct
// but orders of magnitude slower per query than a hub labeling lookup.
func PointToPoint(g *graph.Graph, s, t int) float64 {
	if s == t {
		return 0
	}
	n := g.NumVertices()
	gt := g.Transpose()

	distF := make(map[int]float64, 64)
	distB := make(map[int]float64, 64)
	doneF := make(map[int]bool, 64)
	doneB := make(map[int]bool, 64)
	hf := vheap.New(n)
	hb := vheap.New(n)
	hf.Push(s, 0)
	hb.Push(t, 0)
	distF[s] = 0
	distB[t] = 0
	bestMu := graph.Infinity

	relax := func(dir *graph.Graph, h *vheap.Heap, dist map[int]float64, done, otherDone map[int]bool, otherDist map[int]float64) {
		u, du := h.Pop()
		if done[u] {
			return
		}
		done[u] = true
		if otherDist != nil {
			if db, ok := otherDist[u]; ok {
				if du+db < bestMu {
					bestMu = du + db
				}
			}
		}
		heads, wts := dir.Neighbors(u)
		for i, v := range heads {
			nd := du + wts[i]
			if old, ok := dist[int(v)]; !ok || nd < old {
				dist[int(v)] = nd
				h.Push(int(v), nd)
			}
		}
	}

	for !hf.Empty() && !hb.Empty() {
		_, kf := hf.Peek()
		_, kb := hb.Peek()
		if kf+kb >= bestMu {
			break
		}
		if kf <= kb {
			relax(g, hf, distF, doneF, doneB, distB)
		} else {
			relax(gt, hb, distB, doneB, doneF, distF)
		}
	}
	return bestMu
}

// AllPairs computes the full distance matrix by running Dijkstra from every
// vertex. It is O(n·(m + n log n)) and intended only for verification on
// small graphs.
func AllPairs(g *graph.Graph) [][]float64 {
	n := g.NumVertices()
	d := make([][]float64, n)
	for s := 0; s < n; s++ {
		d[s] = Dijkstra(g, s)
	}
	return d
}

// Eccentricity returns the maximum finite distance from source, i.e. the
// depth of the shortest path tree. Used by diameter estimates in the
// experiment harness.
func Eccentricity(g *graph.Graph, source int) float64 {
	dist := Dijkstra(g, source)
	ecc := 0.0
	for _, d := range dist {
		if d != graph.Infinity && d > ecc {
			ecc = d
		}
	}
	return ecc
}

package sssp

import (
	"repro/internal/graph"
)

// DeltaStepping computes single-source shortest paths with the
// delta-stepping bucket algorithm — one of the "state-of-the-art traversal
// algorithms" the paper's introduction compares hub labeling against
// (Meyer & Sanders; the paper cites its parallel descendants [8,11,18,20]).
// Distances are exact for positive weights; delta ≤ 0 picks a heuristic
// bucket width (max edge weight / average degree, the standard choice).
//
// It exists here as a query-time baseline: internal/exp measures how many
// microseconds a traversal-based PPSD query costs versus a label
// merge-join.
func DeltaStepping(g *graph.Graph, source int, delta float64) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = graph.Infinity
	}
	if n == 0 {
		return dist
	}
	if delta <= 0 {
		maxW := g.MaxWeight()
		avgDeg := float64(g.NumArcs()) / float64(n)
		if avgDeg < 1 {
			avgDeg = 1
		}
		delta = maxW / avgDeg
		if delta <= 0 {
			delta = 1
		}
	}

	buckets := make(map[int][]int32)
	inBucket := make([]int, n) // current bucket index of a vertex, -1 = none
	for i := range inBucket {
		inBucket[i] = -1
	}
	place := func(v int, d float64) {
		b := int(d / delta)
		buckets[b] = append(buckets[b], int32(v))
		inBucket[v] = b
	}
	dist[source] = 0
	place(source, 0)
	cur := 0

	relaxInto := func(v int, nd float64) {
		if nd < dist[v] {
			dist[v] = nd
			place(v, nd)
		}
	}

	for len(buckets) > 0 {
		bucket, ok := buckets[cur]
		if !ok {
			// advance to the next non-empty bucket
			next := -1
			for b := range buckets {
				if next == -1 || b < next {
					next = b
				}
			}
			cur = next
			continue
		}
		delete(buckets, cur)
		// Phase 1: settle light edges, re-collecting vertices that fall
		// back into the current bucket.
		var settled []int32
		for len(bucket) > 0 {
			frontier := bucket
			bucket = nil
			for _, vv := range frontier {
				v := int(vv)
				if inBucket[v] != cur || int(dist[v]/delta) != cur {
					continue // moved to an earlier bucket meanwhile
				}
				inBucket[v] = -1
				settled = append(settled, vv)
				heads, wts := g.Neighbors(v)
				for i, u := range heads {
					if wts[i] <= delta { // light edge
						nd := dist[v] + wts[i]
						if nd < dist[int(u)] {
							dist[int(u)] = nd
							b := int(nd / delta)
							if b == cur {
								bucket = append(bucket, int32(u))
								inBucket[u] = cur
							} else {
								buckets[b] = append(buckets[b], int32(u))
								inBucket[u] = b
							}
						}
					}
				}
			}
		}
		// Phase 2: heavy edges from everything settled in this bucket.
		for _, vv := range settled {
			v := int(vv)
			heads, wts := g.Neighbors(v)
			for i, u := range heads {
				if wts[i] > delta {
					relaxInto(int(u), dist[v]+wts[i])
				}
			}
		}
	}
	return dist
}

package dist

import (
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
)

// Hybrid runs the paper's Hybrid algorithm (§5.3): PLaNT the high-ranked
// trees — where unpruned traversal is cheap relative to the labels it
// emits — while monitoring the per-tree Ψ ratio (vertices explored per
// label generated); as soon as a tree's Ψ exceeds PsiThreshold, gather the
// PLaNTed labels into a replicated global table and finish the long tail
// of roots under DGLL, whose pruning makes the cheap trees cheaper still.
// Output: the CHL, identical at every q.
func Hybrid(g *graph.Graph, o Options) (*Result, error) {
	o = o.normalize()
	n := guard(g)
	m := &metrics.Build{Algorithm: "Hybrid", Workers: o.WorkersPerNode, Nodes: o.Nodes, Trees: int64(n)}
	if o.RecordPerTree {
		m.LabelsPerTree = make([]int64, n)
		m.ExploredPerTree = make([]int64, n)
	}
	eta := o.eta(DefaultEta, n)
	bounds := schedule(0, n, o.Beta, o.Supersteps)
	// Switch votes are taken once per batch of trees; the batch size only
	// trades monitoring granularity against collective rounds.
	batchSize := 4 * o.Nodes * o.WorkersPerNode
	if batchSize < 8 {
		batchSize = 8
	}

	cl := cluster.New(o.Nodes)
	counters := make([]perNodeCounters, o.Nodes)
	rootOwner := make([]int32, n)
	perNodeSets := make([][]label.Set, o.Nodes)
	var finalSets []label.Set
	var common *label.Index
	plantEnd, switchedAt := n, int64(-1)
	pureplant, oom := false, false

	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	start := time.Now()
	st := cl.Run(func(nd *cluster.Node) {
		c := &counters[nd.Rank()]
		global := make([]label.Set, n)
		com, myCommon := plantPhase(nd, g, global, 0, eta, o, rootOwner, m.LabelsPerTree, m.ExploredPerTree, c)

		store := label.NewConcurrentStore(n)
		cur, sw := eta, int64(math.MaxInt64)
		for cur < n {
			end := cur + batchSize
			if end > n {
				end = n
			}
			stats := plantRoots(nd, g, store, com, uint32(eta), cur, end, o.WorkersPerNode,
				rootOwner, m.LabelsPerTree, m.ExploredPerTree, c)
			myBad := int64(math.MaxInt64)
			for _, ts := range stats {
				if ts.psi() > o.PsiThreshold && int64(ts.root) < myBad {
					myBad = int64(ts.root)
				}
			}
			bad := allReduceMin0(nd, myBad)
			cur = end
			if bad < math.MaxInt64 {
				sw = bad
				break
			}
		}

		mine := store.Drain()
		for _, s := range mine {
			s.Sort()
		}
		for v, s := range myCommon {
			if len(s) > 0 {
				mine[v] = mine[v].Merge(s)
			}
		}

		if sw == math.MaxInt64 {
			// Ψ never tripped: the run is pure PLaNT, labels stay
			// partitioned.
			perNodeSets[nd.Rank()] = mine
			var commonBytes int64
			if com != nil {
				commonBytes = com.TotalLabels() * label.Bytes
			}
			c.storedBytes = totalLabels(mine)*label.Bytes + commonBytes
			if nd.Rank() == 0 {
				common = com
				pureplant = true
			}
			return
		}

		// Switch: replicate the PLaNTed labels (the global table DGLL's
		// pruning and cleaning correctness depend on), then run the
		// remaining roots on the same absolute superstep grid.
		batch := batchOf(mine)
		merged := mergeBatches(n, nd.AllGather(batch, batch.count*label.Bytes))
		for v, s := range merged {
			if len(s) > 0 {
				global[v] = global[v].Merge(s)
			}
		}
		if !dgllSupersteps(nd, g, global, clip(bounds, cur, n), o, true, rootOwner, c) {
			if nd.Rank() == 0 {
				oom = true
			}
			return
		}
		if nd.Rank() == 0 {
			finalSets = global
			common = com
			plantEnd = cur
			switchedAt = sw
		}
	})
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.TotalTime = time.Since(start)
	m.ConstructTime = m.TotalTime
	m.BytesSent = st.BytesSent
	m.MessagesSent = st.MessagesSent
	m.Synchronizations = st.Barriers
	fold(m, counters)
	if oom {
		return nil, ErrOutOfMemory
	}
	if o.MemoryLimitBytes > 0 && m.MaxNodeBytes > o.MemoryLimitBytes {
		return nil, ErrOutOfMemory
	}
	m.SwitchedAtTree = switchedAt
	m.PlantTrees = int64(plantEnd)
	if pureplant {
		ix, perNode := assemblePartitioned(n, perNodeSets)
		m.Labels = ix.TotalLabels()
		return &Result{Index: ix, PerNode: perNode, Common: common, Metrics: m}, nil
	}
	ix := label.FromSets(finalSets)
	m.Labels = ix.TotalLabels()
	return &Result{Index: ix, PerNode: assemble(ix, rootOwner, o.Nodes), Common: common, Metrics: m}, nil
}

package dist

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/pll"
)

func TestScheduleCoversRange(t *testing.T) {
	for _, tc := range []struct{ lo, hi, supersteps int }{
		{0, 1, 0}, {0, 2, 0}, {0, 100, 0}, {0, 100, 3}, {16, 100, 0}, {0, 5000, 0}, {7, 8, 0},
	} {
		b := schedule(tc.lo, tc.hi, 8, tc.supersteps)
		if b[0] != tc.lo || b[len(b)-1] != tc.hi {
			t.Fatalf("schedule(%d,%d,%d) = %v does not span the range", tc.lo, tc.hi, tc.supersteps, b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("schedule(%d,%d,%d) = %v not strictly increasing", tc.lo, tc.hi, tc.supersteps, b)
			}
		}
		if tc.supersteps > 0 && len(b)-1 > tc.supersteps {
			t.Fatalf("schedule produced %d supersteps, asked for %d", len(b)-1, tc.supersteps)
		}
	}
	// Geometric growth: later supersteps are at least as large as earlier
	// ones.
	b := schedule(0, 5000, 8, 0)
	for i := 2; i < len(b); i++ {
		if b[i]-b[i-1] < b[i-1]-b[i-2] {
			t.Fatalf("superstep sizes not non-decreasing: %v", b)
		}
	}
}

// Every distributed algorithm must hand each label to exactly one node:
// the per-node partitions have to tile the assembled index.
func TestPerNodePartitionsTileIndex(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 1)
	for name, run := range map[string]func() (*Result, error){
		"DParaPLL": func() (*Result, error) { return DParaPLL(g, Options{Nodes: 4}) },
		"DGLL":     func() (*Result, error) { return DGLL(g, Options{Nodes: 4}) },
		"PLaNT":    func() (*Result, error) { return PLaNT(g, Options{Nodes: 4}) },
		"Hybrid":   func() (*Result, error) { return Hybrid(g, Options{Nodes: 4}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.PerNode) != 4 {
			t.Fatalf("%s: %d partitions, want 4", name, len(res.PerNode))
		}
		var sum int64
		for _, p := range res.PerNode {
			sum += p.TotalLabels()
		}
		if sum != res.Index.TotalLabels() {
			t.Fatalf("%s: partitions hold %d labels, index has %d", name, sum, res.Index.TotalLabels())
		}
		for v := 0; v < 200; v++ {
			var got int
			for _, p := range res.PerNode {
				got += len(p.Labels(v))
			}
			if got != len(res.Index.Labels(v)) {
				t.Fatalf("%s: vertex %d has %d partitioned labels, index has %d", name, v, got, len(res.Index.Labels(v)))
			}
		}
	}
}

func TestMemoryLimitOOM(t *testing.T) {
	g := graph.BarabasiAlbert(150, 4, 2)
	if _, err := DParaPLL(g, Options{Nodes: 4, MemoryLimitBytes: 1024}); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("DParaPLL err = %v, want ErrOutOfMemory", err)
	}
	if _, err := DGLL(g, Options{Nodes: 4, MemoryLimitBytes: 1024}); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("DGLL err = %v, want ErrOutOfMemory", err)
	}
	// A partitioned PLaNT node stores ~1/q of the labels plus the common
	// table; a generous limit must not trip.
	chl, _ := pll.Sequential(g, pll.Options{})
	if _, err := PLaNT(g, Options{Nodes: 4, MemoryLimitBytes: chl.TotalLabels() * 12}); err != nil {
		t.Fatalf("PLaNT tripped a full-labeling-sized limit: %v", err)
	}
}

func TestCommonTablePrunesExploration(t *testing.T) {
	g := graph.RoadGrid(20, 20, 3)
	without, err := PLaNT(g, Options{Nodes: 4, Eta: -1})
	if err != nil {
		t.Fatal(err)
	}
	with, err := PLaNT(g, Options{Nodes: 4, Eta: DefaultEta})
	if err != nil {
		t.Fatal(err)
	}
	if with.Metrics.VerticesExplored >= without.Metrics.VerticesExplored {
		t.Fatalf("η=16 explored %d, η=0 explored %d — no pruning",
			with.Metrics.VerticesExplored, without.Metrics.VerticesExplored)
	}
	if without.Common != nil || with.Common == nil {
		t.Fatal("Common table presence wrong")
	}
	// Identical output either way.
	if diff := without.Index.Diff(with.Index); diff != "" {
		t.Fatalf("η changed the labeling: %s", diff)
	}
}

func TestHybridSwitchMetrics(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, 4)
	res, err := Hybrid(g, Options{Nodes: 3, PsiThreshold: 1.01})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.SwitchedAtTree < 0 {
		t.Fatal("Ψth=1.01 never switched")
	}
	if m.PlantTrees <= 0 || m.PlantTrees >= 300 {
		t.Fatalf("PlantTrees = %d out of range", m.PlantTrees)
	}
	// A huge threshold must stay pure PLaNT.
	pure, err := Hybrid(g, Options{Nodes: 3, PsiThreshold: 1e18})
	if err != nil {
		t.Fatal(err)
	}
	if pure.Metrics.SwitchedAtTree != -1 || pure.Metrics.PlantTrees != 300 {
		t.Fatalf("pure-PLaNT run reports switch at %d, %d plant trees",
			pure.Metrics.SwitchedAtTree, pure.Metrics.PlantTrees)
	}
	if diff := res.Index.Diff(pure.Index); diff != "" {
		t.Fatalf("switch point changed the labeling: %s", diff)
	}
}

func TestPLaNTHasNoLabelTrafficWithoutCommonTable(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 5)
	res, err := PLaNT(g, Options{Nodes: 4, Eta: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.BytesSent != 0 {
		t.Fatalf("PLaNT without η sent %d bytes", res.Metrics.BytesSent)
	}
	dg, err := DGLL(g, Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dg.Metrics.BytesSent <= res.Metrics.BytesSent {
		t.Fatal("DGLL reported no more traffic than PLaNT")
	}
}

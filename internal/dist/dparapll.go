package dist

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
)

// DParaPLL runs the distributed paraPLL baseline (§3): every node builds
// pruned SPTs for its round-robin share of each superstep's roots, pruning
// only by distance queries against the replicated global table and its own
// in-progress local labels — no rank queries, no cleaning. Each superstep
// ends with an AllGather that replicates the new labels on every node.
//
// Labels generated concurrently on different nodes cannot prune each
// other, so the output satisfies the cover property but grows with q
// (Figure 9), and because every node stores the whole (inflated) labeling
// the per-node memory is what trips Options.MemoryLimitBytes first
// (Figure 8's OOM rows).
func DParaPLL(g *graph.Graph, o Options) (*Result, error) {
	o = o.normalize()
	n := guard(g)
	m := &metrics.Build{Algorithm: "DparaPLL", Workers: o.WorkersPerNode, Nodes: o.Nodes, Trees: int64(n)}

	cl := cluster.New(o.Nodes)
	counters := make([]perNodeCounters, o.Nodes)
	rootOwner := make([]int32, n)
	var finalSets []label.Set
	oom := false
	bounds := schedule(0, n, o.Beta, o.Supersteps)

	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	start := time.Now()
	st := cl.Run(func(nd *cluster.Node) {
		c := &counters[nd.Rank()]
		global := make([]label.Set, n)
		if !dgllSupersteps(nd, g, global, bounds, o, false, rootOwner, c) {
			if nd.Rank() == 0 {
				oom = true
			}
			return
		}
		if nd.Rank() == 0 {
			finalSets = global
		}
	})
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.TotalTime = time.Since(start)
	m.ConstructTime = m.TotalTime
	m.BytesSent = st.BytesSent
	m.MessagesSent = st.MessagesSent
	m.Synchronizations = st.Barriers
	fold(m, counters)
	if oom {
		return nil, ErrOutOfMemory
	}
	ix := label.FromSets(finalSets)
	m.Labels = ix.TotalLabels()
	return &Result{Index: ix, PerNode: assemble(ix, rootOwner, o.Nodes), Metrics: m}, nil
}

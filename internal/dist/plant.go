package dist

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/plant"
)

// rootStat is one PLaNTed tree's Ψ inputs, for Hybrid's switch monitor.
type rootStat struct {
	root     int
	explored int64
	labels   int64
}

func (r rootStat) psi() float64 {
	if r.labels == 0 {
		return float64(r.explored)
	}
	return float64(r.explored) / float64(r.labels)
}

// plantRoots builds the PLaNTed trees this node owns in [lo, hi)
// (round-robin) into the node-local store, pruning against the Common
// Label Table when common is non-nil. It returns per-root stats for the
// roots this node grew.
func plantRoots(nd *cluster.Node, g *graph.Graph, store *label.ConcurrentStore,
	common *label.Index, bound uint32, lo, hi, wpn int,
	rootOwner []int32, perTreeLabels, perTreeExplored []int64, c *perNodeCounters) []rootStat {
	q, r := nd.Size(), nd.Rank()
	var mine []int
	for h := lo + r; h < hi; h += q {
		rootOwner[h] = int32(r)
		mine = append(mine, h)
	}
	stats := make([]rootStat, len(mine))
	if len(mine) == 0 {
		return stats
	}
	n := g.NumVertices()
	var next int64 = -1
	var wg sync.WaitGroup
	workers := wpn
	if workers > len(mine) {
		workers = len(mine)
	}
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := plant.NewScratch(n)
			var ex, rx, gen int64
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(mine) {
					break
				}
				h := mine[i]
				ts := plant.Tree(g, h, s, common, bound, func(v int, d float64) {
					store.Append(v, label.L{Hub: uint32(h), Dist: d})
				})
				stats[i] = rootStat{root: h, explored: ts.Explored, labels: ts.Labels}
				ex += ts.Explored
				rx += ts.Relaxed
				gen += ts.Labels
				if perTreeLabels != nil {
					perTreeLabels[h] = ts.Labels
					perTreeExplored[h] = ts.Explored
				}
			}
			atomic.AddInt64(&c.explored, ex)
			atomic.AddInt64(&c.relaxed, rx)
			atomic.AddInt64(&c.generated, gen)
		}()
	}
	wg.Wait()
	return stats
}

// plantPhase grows the trees of the top-ranked roots [lo, hi) unpruned,
// allgathers their (canonical, complete) labels — the one label broadcast
// PLaNT ever pays — merges them into the node's replicated global table,
// and returns the resulting Common Label Table plus this node's own
// contribution (its share of the label partition).
func plantPhase(nd *cluster.Node, g *graph.Graph, global []label.Set, lo, hi int,
	o Options, rootOwner []int32, perTreeLabels, perTreeExplored []int64,
	c *perNodeCounters) (*label.Index, []label.Set) {
	n := g.NumVertices()
	if hi <= lo {
		return nil, make([]label.Set, n)
	}
	store := label.NewConcurrentStore(n)
	plantRoots(nd, g, store, nil, 0, lo, hi, o.WorkersPerNode, rootOwner, perTreeLabels, perTreeExplored, c)
	mine := store.Drain()
	for _, s := range mine {
		s.Sort()
	}
	batch := batchOf(mine)
	merged := mergeBatches(n, nd.AllGather(batch, batch.count*label.Bytes))
	for v, s := range merged {
		if len(s) > 0 {
			global[v] = global[v].Merge(s)
		}
	}
	return label.FromSets(merged), mine
}

// allReduceMin0 is an AllReduce MIN metered as control traffic (zero
// payload bytes): Hybrid's switch votes are a few bytes against the
// megabytes of label collectives.
func allReduceMin0(nd *cluster.Node, x int64) int64 {
	vals := nd.AllGather(x, 0)
	min := vals[0].(int64)
	for _, v := range vals[1:] {
		if y := v.(int64); y < min {
			min = y
		}
	}
	return min
}

// PLaNT runs distributed PLaNT (§5.2): every node grows the trees of its
// round-robin root share with zero label traffic; with Eta ≥ 0 (default
// DefaultEta) the top-η trees are grown first and broadcast once as the
// Common Label Table (§5.3) to prune the rest. Labels stay partitioned by
// growing node; Result.Index is their union — the CHL.
func PLaNT(g *graph.Graph, o Options) (*Result, error) {
	o = o.normalize()
	n := guard(g)
	m := &metrics.Build{Algorithm: "PLaNT", Workers: o.WorkersPerNode, Nodes: o.Nodes, Trees: int64(n)}
	if o.RecordPerTree {
		m.LabelsPerTree = make([]int64, n)
		m.ExploredPerTree = make([]int64, n)
	}
	eta := o.eta(DefaultEta, n)

	cl := cluster.New(o.Nodes)
	counters := make([]perNodeCounters, o.Nodes)
	rootOwner := make([]int32, n)
	perNodeSets := make([][]label.Set, o.Nodes)
	var common *label.Index

	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	start := time.Now()
	st := cl.Run(func(nd *cluster.Node) {
		c := &counters[nd.Rank()]
		global := make([]label.Set, n)
		com, myCommon := plantPhase(nd, g, global, 0, eta, o, rootOwner, m.LabelsPerTree, m.ExploredPerTree, c)
		store := label.NewConcurrentStore(n)
		plantRoots(nd, g, store, com, uint32(eta), eta, n, o.WorkersPerNode, rootOwner, m.LabelsPerTree, m.ExploredPerTree, c)
		mine := store.Drain()
		for _, s := range mine {
			s.Sort()
		}
		for v, s := range myCommon {
			if len(s) > 0 {
				mine[v] = mine[v].Merge(s)
			}
		}
		perNodeSets[nd.Rank()] = mine
		var commonBytes int64
		if com != nil {
			commonBytes = com.TotalLabels() * label.Bytes
		}
		c.storedBytes = totalLabels(mine)*label.Bytes + commonBytes
		if nd.Rank() == 0 {
			common = com
		}
	})
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.TotalTime = time.Since(start)
	m.ConstructTime = m.TotalTime
	m.BytesSent = st.BytesSent
	m.MessagesSent = st.MessagesSent
	m.Synchronizations = st.Barriers
	fold(m, counters)
	if o.MemoryLimitBytes > 0 && m.MaxNodeBytes > o.MemoryLimitBytes {
		return nil, ErrOutOfMemory
	}
	ix, perNode := assemblePartitioned(n, perNodeSets)
	m.Labels = ix.TotalLabels()
	m.LabelsGenerated = m.Labels
	return &Result{Index: ix, PerNode: perNode, Common: common, Metrics: m}, nil
}

// assemblePartitioned unions per-node label partitions into a full index
// (hubs are disjoint across nodes, so this is a pure sorted merge).
func assemblePartitioned(n int, perNodeSets [][]label.Set) (*label.Index, []*label.Index) {
	full := make([]label.Set, n)
	perNode := make([]*label.Index, len(perNodeSets))
	for r, sets := range perNodeSets {
		for v, s := range sets {
			if len(s) > 0 {
				full[v] = full[v].Merge(s)
			}
		}
		perNode[r] = label.FromSets(sets)
	}
	return label.FromSets(full), perNode
}

package dist

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/vheap"
)

// worker owns one intra-node thread's pruned-Dijkstra scratch state.
type worker struct {
	dist  []float64
	dirty []int32
	heap  *vheap.Heap
	hd    *label.HashDist
}

func newWorker(n int) *worker {
	w := &worker{
		dist: make([]float64, n),
		heap: vheap.New(n),
		hd:   label.NewHashDist(n),
	}
	for i := range w.dist {
		w.dist[i] = graph.Infinity
	}
	return w
}

func (w *worker) reset() {
	for _, v := range w.dirty {
		w.dist[v] = graph.Infinity
	}
	w.dirty = w.dirty[:0]
	w.heap.Clear()
}

// tree builds the pruned SPT rooted at h for one cluster node: distance
// queries consult the replicated global table (lock-free — it is immutable
// during a construction phase) and the node's own local store. rankQuery
// distinguishes DGLL (true) from DparaPLL (false, per §3).
func (w *worker) tree(g *graph.Graph, global []label.Set, local *label.ConcurrentStore, h int, rankQuery bool, c *perNodeCounters) int64 {
	w.reset()
	w.hd.Reset()
	for _, l := range global[h] {
		w.hd.Add(l.Hub, l.Dist)
	}
	for _, l := range local.CopyLabels(h) {
		w.hd.Add(l.Hub, l.Dist)
	}
	// Counters accumulate in locals and fold into the shared record once
	// per tree — an atomic per pop/relaxation would serialize the
	// node's workers on one cache line.
	var generated, explored, relaxed, dqs, rprunes, dprunes int64
	w.dist[h] = 0
	w.dirty = append(w.dirty, int32(h))
	w.heap.Push(h, 0)
	for !w.heap.Empty() {
		v, dv := w.heap.Pop()
		explored++
		if rankQuery && v < h {
			rprunes++
			continue
		}
		if v != h {
			dqs++
			if w.hd.QueryAgainst(global[v], dv) || local.QueryAgainst(w.hd, v, dv) {
				dprunes++
				continue
			}
		}
		local.Append(v, label.L{Hub: uint32(h), Dist: dv})
		generated++
		heads, wts := g.Neighbors(v)
		for i, uu := range heads {
			u := int(uu)
			nd := dv + wts[i]
			relaxed++
			if nd < w.dist[u] {
				if w.dist[u] == graph.Infinity {
					w.dirty = append(w.dirty, int32(uu))
				}
				w.dist[u] = nd
				w.heap.Push(u, nd)
			}
		}
	}
	atomic.AddInt64(&c.explored, explored)
	atomic.AddInt64(&c.relaxed, relaxed)
	atomic.AddInt64(&c.dqs, dqs)
	atomic.AddInt64(&c.rprunes, rprunes)
	atomic.AddInt64(&c.dprunes, dprunes)
	return generated
}

// buildMyRoots constructs the trees this node owns within [lo, hi)
// (round-robin assignment) across WorkersPerNode threads, appending into
// the node's local store and recording ownership.
func buildMyRoots(nd *cluster.Node, g *graph.Graph, global []label.Set, local *label.ConcurrentStore,
	lo, hi, wpn int, rankQuery bool, rootOwner []int32, c *perNodeCounters) {
	q, r := nd.Size(), nd.Rank()
	var mine []int
	for h := lo + r; h < hi; h += q {
		rootOwner[h] = int32(r)
		mine = append(mine, h)
	}
	if len(mine) == 0 {
		return
	}
	n := g.NumVertices()
	var next int64 = -1
	var gen int64
	var wg sync.WaitGroup
	workers := wpn
	if workers > len(mine) {
		workers = len(mine)
	}
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newWorker(n)
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(mine) {
					return
				}
				atomic.AddInt64(&gen, w.tree(g, global, local, mine[i], rankQuery, c))
			}
		}()
	}
	wg.Wait()
	atomic.AddInt64(&c.generated, gen)
}

// cleanShare runs the distributed cleaning pass over the vertices this node
// owns (v ≡ rank mod q): for every superstep label of an owned vertex, a
// DQ_Clean merge-join over the allgathered superstep tables decides
// redundancy. Survivors are returned per vertex; merged is never mutated,
// so every node sees identical inputs and the pass is deterministic.
func cleanShare(nd *cluster.Node, merged []label.Set, wpn int, c *perNodeCounters) []label.Set {
	q, r := nd.Size(), nd.Rank()
	n := len(merged)
	surv := make([]label.Set, n)
	var mine []int
	for v := r; v < n; v += q {
		if len(merged[v]) > 0 {
			mine = append(mine, v)
		}
	}
	var next int64 = -1
	var wg sync.WaitGroup
	workers := wpn
	if workers > len(mine) {
		workers = len(mine)
	}
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var qs, es, cl int64
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(mine) {
					break
				}
				v := mine[i]
				lv := merged[v]
				out := make(label.Set, 0, len(lv))
				for _, l := range lv {
					if int(l.Hub) != v {
						qs++
						redundant, e := firstWitness(merged[v], merged[l.Hub], l.Hub, l.Dist)
						es += e
						if redundant {
							cl++
							continue
						}
					}
					out = append(out, l)
				}
				surv[v] = out
			}
			atomic.AddInt64(&c.cleanQs, qs)
			atomic.AddInt64(&c.cleanEntries, es)
			atomic.AddInt64(&c.cleaned, cl)
		}()
	}
	wg.Wait()
	return surv
}

// firstWitness merge-joins two sorted label sets looking for a common hub
// ranked strictly above bound whose distance sum is ≤ delta (identical to
// GLL's shared-memory cleaning query).
func firstWitness(a, b label.Set, bound uint32, delta float64) (found bool, entries int64) {
	i, j := 0, 0
	for i < len(a) && j < len(b) && a[i].Hub < bound && b[j].Hub < bound {
		entries++
		switch {
		case a[i].Hub < b[j].Hub:
			i++
		case a[i].Hub > b[j].Hub:
			j++
		default:
			if a[i].Dist+b[j].Dist <= delta {
				return true, entries
			}
			i++
			j++
		}
	}
	return false, entries
}

// dgllSupersteps runs DGLL's construction+cleaning supersteps over the
// roots in bounds, mutating the node's replicated global table in place.
// clean=false gives DparaPLL's exchange-without-cleaning behaviour. It
// returns false if the per-node memory limit was exceeded (the decision is
// replicated-deterministic, so every node returns together).
func dgllSupersteps(nd *cluster.Node, g *graph.Graph, global []label.Set, bounds []int,
	o Options, clean bool, rootOwner []int32, c *perNodeCounters) bool {
	n := g.NumVertices()
	local := label.NewConcurrentStore(n)
	rankQuery := clean // DGLL rank-queries and cleans; DparaPLL does neither (§3)
	for si := 0; si+1 < len(bounds); si++ {
		lo, hi := bounds[si], bounds[si+1]
		buildMyRoots(nd, g, global, local, lo, hi, o.WorkersPerNode, rankQuery, rootOwner, c)

		mine := local.Drain()
		for _, s := range mine {
			s.Sort()
		}
		batch := batchOf(mine)
		merged := mergeBatches(n, nd.AllGather(batch, batch.count*label.Bytes))

		commit := merged
		if clean {
			surv := cleanShare(nd, merged, o.WorkersPerNode, c)
			sb := batchOf(surv)
			commit = mergeBatches(n, nd.AllGather(sb, sb.count*label.Bytes))
		}
		for v, s := range commit {
			if len(s) > 0 {
				global[v] = global[v].Merge(s)
			}
		}
		if o.MemoryLimitBytes > 0 && totalLabels(global)*label.Bytes > o.MemoryLimitBytes {
			return false
		}
	}
	c.storedBytes = totalLabels(global) * label.Bytes
	return true
}

// DGLL runs distributed GLL (§5.1) and returns the CHL for the identity
// rank order of g. With Eta > 0 the top-η roots are PLaNTed first and their
// complete labels broadcast as the Common Label Table, removing the
// pathological redundancy of the earliest supersteps.
func DGLL(g *graph.Graph, o Options) (*Result, error) {
	o = o.normalize()
	n := guard(g)
	m := &metrics.Build{Algorithm: "DGLL", Workers: o.WorkersPerNode, Nodes: o.Nodes, Trees: int64(n)}
	eta := o.eta(0, n)

	cl := cluster.New(o.Nodes)
	counters := make([]perNodeCounters, o.Nodes)
	rootOwner := make([]int32, n)
	var finalSets []label.Set
	var common *label.Index
	oom := false
	bounds := clip(schedule(0, n, o.Beta, o.Supersteps), eta, n)

	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	start := time.Now()
	st := cl.Run(func(nd *cluster.Node) {
		c := &counters[nd.Rank()]
		global := make([]label.Set, n)
		var com *label.Index
		if eta > 0 {
			com, _ = plantPhase(nd, g, global, 0, eta, o, rootOwner, nil, nil, c)
		}
		if !dgllSupersteps(nd, g, global, bounds, o, true, rootOwner, c) {
			if nd.Rank() == 0 {
				oom = true
			}
			return
		}
		if nd.Rank() == 0 {
			finalSets = global
			common = com
		}
	})
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.TotalTime = time.Since(start)
	m.ConstructTime = m.TotalTime
	m.BytesSent = st.BytesSent
	m.MessagesSent = st.MessagesSent
	m.Synchronizations = st.Barriers
	fold(m, counters)
	if oom {
		return nil, ErrOutOfMemory
	}
	ix := label.FromSets(finalSets)
	m.Labels = ix.TotalLabels()
	return &Result{Index: ix, PerNode: assemble(ix, rootOwner, o.Nodes), Common: common, Metrics: m}, nil
}

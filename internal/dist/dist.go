// Package dist implements the paper's distributed labeling algorithms on
// the simulated message-passing cluster of internal/cluster:
//
//   - DParaPLL — distributed paraPLL (§3): roots are split round-robin
//     across nodes, every node prunes against a fully replicated label
//     table, and each superstep's new labels are exchanged with an
//     AllGather. No rank queries and no cleaning, so the output satisfies
//     the cover property but inflates with q (Figure 9) and the replicated
//     table is what OOMs in Figure 8.
//   - DGLL — distributed GLL (§5.1): the same superstep structure, but
//     construction performs rank queries, and every superstep ends with a
//     distributed cleaning pass (each node cleans the vertices it owns
//     against the allgathered superstep labels, then the survivors are
//     rebroadcast into the replicated global table). Output: the CHL.
//   - PLaNT (§5.2): trees are embarrassingly parallel and exchange *no*
//     label traffic; the only communication is the one-time broadcast of
//     the Common Label Table (§5.3). Labels stay partitioned by the node
//     that grew the tree. Output: the CHL.
//   - Hybrid (§5.3): PLaNT while trees are productive, monitored by the
//     per-tree Ψ ratio; once Ψ exceeds PsiThreshold the remaining roots run
//     under DGLL (seeded with the PLaNTed labels). Output: the CHL.
//
// All functions operate in rank space (vertex 0 = highest rank) and return
// per-node label partitions alongside the assembled index, which is what
// the QFDL query mode deploys.
package dist

import (
	"errors"
	"math"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
)

// DefaultEta is the Common Label Table size the paper settles on ("we use
// η = 16 for all experiments", §7.1).
const DefaultEta = 16

// DefaultBeta is the DGLL superstep growth factor.
const DefaultBeta = 8.0

// DefaultPsiThreshold is the Hybrid switch threshold Ψth (§7.1 uses 100
// for scale-free networks; road networks pass 500 explicitly).
const DefaultPsiThreshold = 100.0

// ErrOutOfMemory is returned when a node's label storage exceeds
// Options.MemoryLimitBytes — the OOM failures of Figure 8.
var ErrOutOfMemory = errors.New("dist: per-node label storage exceeds the memory limit")

// Options configures a distributed build.
type Options struct {
	// Nodes is the simulated cluster size q (0 or 1 = one node).
	Nodes int
	// WorkersPerNode is the intra-node thread count (0 = 1).
	WorkersPerNode int
	// Beta is the superstep growth factor (0 = DefaultBeta).
	Beta float64
	// Supersteps fixes the superstep count (0 = ceil(log_β n)).
	Supersteps int
	// Eta is the Common Label Table size. 0 means the per-algorithm
	// default (DefaultEta for PLaNT and Hybrid, off for DParaPLL/DGLL);
	// negative disables the table everywhere.
	Eta int
	// PsiThreshold is Hybrid's switch threshold (0 = DefaultPsiThreshold).
	PsiThreshold float64
	// MemoryLimitBytes caps per-node label storage (0 = unlimited).
	MemoryLimitBytes int64
	// RecordPerTree keeps per-tree label/exploration counts where the
	// algorithm builds whole trees (PLaNT and Hybrid's PLaNT phase).
	RecordPerTree bool
}

func (o Options) normalize() Options {
	if o.Nodes < 1 {
		o.Nodes = 1
	}
	if o.WorkersPerNode < 1 {
		o.WorkersPerNode = 1
	}
	if o.Beta <= 1 {
		o.Beta = DefaultBeta
	}
	if o.PsiThreshold <= 0 {
		o.PsiThreshold = DefaultPsiThreshold
	}
	return o
}

// eta resolves the Common Label Table size for an algorithm whose default
// is def, clamped to the vertex count.
func (o Options) eta(def, n int) int {
	e := o.Eta
	if e == 0 {
		e = def
	}
	if e < 0 {
		e = 0
	}
	if e > n {
		e = n
	}
	return e
}

// Result is the output of a distributed build.
type Result struct {
	// Index is the assembled labeling over all vertices.
	Index *label.Index
	// PerNode holds each node's label partition (labels of the trees the
	// node grew — every label appears on exactly one node). QFDL deploys
	// these directly.
	PerNode []*label.Index
	// Common is the Common Label Table (labels of the top-η hubs), nil
	// when the table was disabled.
	Common *label.Index
	// Metrics is the instrumentation record of the build.
	Metrics *metrics.Build
}

// schedule returns rank-space superstep boundaries covering [lo, hi):
// schedule[k] ≤ root < schedule[k+1] is superstep k. Superstep sizes grow
// geometrically by beta — the top-ranked roots generate the most labels per
// tree and need the tightest synchronization; the long tail of cheap trees
// runs in a few large steps. With supersteps > 0 the count is fixed;
// otherwise it is ceil(log_beta(hi-lo)).
func schedule(lo, hi int, beta float64, supersteps int) []int {
	n := hi - lo
	if n <= 0 {
		return []int{lo}
	}
	s := supersteps
	if s <= 0 {
		s = int(math.Ceil(math.Log(float64(n)) / math.Log(beta)))
		if s < 1 {
			s = 1
		}
	}
	if s > n {
		s = n
	}
	total := (math.Pow(beta, float64(s)) - 1) / (beta - 1)
	bounds := make([]int, 0, s+1)
	bounds = append(bounds, lo)
	cum := 0.0
	for k := 0; k < s; k++ {
		cum += math.Pow(beta, float64(k))
		next := lo + int(math.Round(float64(n)*cum/total))
		if next <= bounds[len(bounds)-1] {
			next = bounds[len(bounds)-1] + 1
		}
		if next > hi || k == s-1 {
			next = hi
		}
		bounds = append(bounds, next)
		if next == hi {
			break
		}
	}
	return bounds
}

// clip drops the boundaries of a full-range schedule that fall at or below
// start, keeping the remaining roots on the same absolute superstep grid
// (Hybrid and the η-seeded variants resume mid-schedule this way, so a
// root's superstep does not depend on where the earlier phase stopped).
func clip(bounds []int, start, hi int) []int {
	out := []int{start}
	for _, b := range bounds {
		if b > start && b <= hi {
			out = append(out, b)
		}
	}
	if out[len(out)-1] != hi {
		out = append(out, hi)
	}
	return out
}

// labelBatch is one node's per-vertex label contribution to an AllGather.
// Received batches are read-only, per the cluster collective contract.
type labelBatch struct {
	sets  []label.Set
	count int64
}

func batchOf(sets []label.Set) labelBatch {
	var c int64
	for _, s := range sets {
		c += int64(len(s))
	}
	return labelBatch{sets: sets, count: c}
}

// mergeBatches folds allgathered batches into one per-vertex table of
// freshly allocated sorted sets (never aliasing a received payload).
func mergeBatches(n int, batches []any) []label.Set {
	merged := make([]label.Set, n)
	for _, b := range batches {
		lb := b.(labelBatch)
		if lb.sets == nil {
			continue
		}
		for v, s := range lb.sets {
			if len(s) > 0 {
				merged[v] = merged[v].Merge(s)
			}
		}
	}
	// Single-contributor vertices come back as clones from Merge's
	// nil-receiver path, so everything here is node-private.
	return merged
}

func totalLabels(sets []label.Set) int64 {
	var t int64
	for _, s := range sets {
		t += int64(len(s))
	}
	return t
}

// perNodeCounters is one node's share of the build metrics; each node
// writes only its own slot of the shared slice.
type perNodeCounters struct {
	explored, relaxed     int64
	dqs, rprunes, dprunes int64
	generated             int64
	cleanQs, cleanEntries int64
	cleaned               int64
	storedBytes           int64 // final label storage on this node
}

// fold sums per-node counters into the build record and fills the per-node
// maxima the cost model needs.
func fold(m *metrics.Build, cs []perNodeCounters) {
	for _, c := range cs {
		m.VerticesExplored += c.explored
		m.EdgesRelaxed += c.relaxed
		m.DistanceQueries += c.dqs
		m.RankPrunes += c.rprunes
		m.DistPrunes += c.dprunes
		m.LabelsGenerated += c.generated
		m.CleanQueries += c.cleanQs
		m.CleanEntries += c.cleanEntries
		m.LabelsCleaned += c.cleaned
		if c.explored > m.MaxNodeExplored {
			m.MaxNodeExplored = c.explored
		}
		if dq := c.dqs + c.cleanQs; dq > m.MaxNodeQueries {
			m.MaxNodeQueries = dq
		}
		if c.storedBytes > m.MaxNodeBytes {
			m.MaxNodeBytes = c.storedBytes
		}
	}
}

// assemble builds the per-node partitions from the final index and the
// root→node ownership map (a label belongs to the node that grew its hub's
// tree).
func assemble(ix *label.Index, rootOwner []int32, q int) []*label.Index {
	per := make([]*label.Index, q)
	for r := range per {
		per[r] = label.NewIndex(ix.NumVertices())
	}
	for v := 0; v < ix.NumVertices(); v++ {
		for _, l := range ix.Labels(v) {
			per[rootOwner[l.Hub]].Append(v, l)
		}
	}
	return per
}

// indexFromSets wraps per-vertex sets, sorting each (PLaNT sinks append in
// distance order, not hub order).
func indexFromSets(sets []label.Set) *label.Index {
	ix := label.FromSets(sets)
	ix.SortAll()
	return ix
}

// guard panics on nil graphs the same way the shared-memory packages do.
func guard(g *graph.Graph) int { return g.NumVertices() }

package order

import (
	"testing"

	"repro/internal/graph"
)

func checkPermutation(t *testing.T, o *Order, n int) {
	t.Helper()
	if len(o.Perm) != n || len(o.Rank) != n {
		t.Fatalf("order sizes %d/%d, want %d", len(o.Perm), len(o.Rank), n)
	}
	for pos, v := range o.Perm {
		if o.Rank[v] != pos {
			t.Fatalf("Rank[Perm[%d]] = %d", pos, o.Rank[v])
		}
	}
}

func TestFromPerm(t *testing.T) {
	o, err := FromPerm([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, o, 3)
	if o.Rank[2] != 0 {
		t.Fatalf("vertex 2 should rank highest, got %d", o.Rank[2])
	}
	for _, bad := range [][]int{{0, 0, 1}, {0, 1, 5}, {-1, 0, 1}} {
		if _, err := FromPerm(bad); err == nil {
			t.Errorf("perm %v accepted", bad)
		}
	}
}

func TestIdentityAndRandom(t *testing.T) {
	o := Identity(5)
	checkPermutation(t, o, 5)
	for i := 0; i < 5; i++ {
		if o.Rank[i] != i {
			t.Fatalf("identity broken at %d", i)
		}
	}
	r1 := Random(64, 1)
	r2 := Random(64, 1)
	checkPermutation(t, r1, 64)
	for i := range r1.Perm {
		if r1.Perm[i] != r2.Perm[i] {
			t.Fatal("same seed produced different random orders")
		}
	}
}

func TestByDegree(t *testing.T) {
	g := graph.Star(10, 1) // vertex 0 has degree 9
	o := ByDegree(g)
	checkPermutation(t, o, 10)
	if o.Perm[0] != 0 {
		t.Fatalf("star centre not top ranked: %v", o.Perm[0])
	}
	// Leaves tie on degree; ties break by id.
	for i := 1; i < 10; i++ {
		if o.Perm[i] != i {
			t.Fatalf("tie break by id violated at %d: %d", i, o.Perm[i])
		}
	}
}

func TestByDegreeDirected(t *testing.T) {
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 2, 1) // vertex 2: in-degree 2, out 0 → total 2, highest
	g := b.MustFinish()
	o := ByDegree(g)
	if o.Perm[0] != 2 {
		t.Fatalf("directed degree should count in-arcs; top = %d", o.Perm[0])
	}
}

func TestByApproxBetweenness(t *testing.T) {
	// A barbell: two cliques joined by a bridge through vertex 4 and 5.
	b := graph.NewBuilder(10, false)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v, 1)
		}
	}
	for u := 6; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			b.AddEdge(u, v, 1)
		}
	}
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	b.AddEdge(5, 6, 1)
	g := b.MustFinish()
	o := ByApproxBetweenness(g, 10, 1)
	checkPermutation(t, o, 10)
	// The bridge vertices 4 and 5 carry all cross-clique shortest paths;
	// together with the clique gateways (3 and 6) they must fill the top
	// ranks, ahead of every clique-interior vertex.
	top3 := map[int]bool{o.Perm[0]: true, o.Perm[1]: true, o.Perm[2]: true}
	if !top3[4] || !top3[5] {
		t.Fatalf("bridge vertices not top-ranked: %v", o.Perm[:4])
	}
	for _, interior := range []int{0, 1, 2, 7, 8, 9} {
		if o.Rank[interior] < 4 {
			t.Fatalf("clique-interior vertex %d ranked %d, above the bridge structure", interior, o.Rank[interior])
		}
	}
}

func TestByApproxBetweennessDeterministic(t *testing.T) {
	g := graph.RoadGrid(8, 8, 3)
	a := ByApproxBetweenness(g, 12, 7)
	b := ByApproxBetweenness(g, 12, 7)
	for i := range a.Perm {
		if a.Perm[i] != b.Perm[i] {
			t.Fatal("same seed produced different betweenness orders")
		}
	}
}

func TestForGraphPicksByTopology(t *testing.T) {
	road := graph.RoadGrid(12, 12, 1)
	ba := graph.BarabasiAlbert(400, 3, 1)
	ro := ForGraph(road, 1)
	bo := ForGraph(ba, 1)
	checkPermutation(t, ro, road.NumVertices())
	checkPermutation(t, bo, ba.NumVertices())
	// For the scale-free graph the pick must equal the pure degree order.
	deg := ByDegree(ba)
	for i := range deg.Perm {
		if bo.Perm[i] != deg.Perm[i] {
			t.Fatalf("scale-free graph did not get degree order (pos %d)", i)
		}
	}
	if g0 := ForGraph(graph.Path(0, 1), 1); len(g0.Perm) != 0 {
		t.Fatal("empty graph order not empty")
	}
}

// Package order computes ranking functions (network hierarchies) R over a
// graph's vertices. The labeling algorithms consume an Order as the total
// order of SPT roots; a good order ranks central vertices first so that few
// hubs cover many shortest paths (§1). Following §7.1.1 of the paper, degree
// ordering is used for scale-free networks and sampled approximate
// betweenness for road networks; both are inexpensive to compute.
package order

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/vheap"
)

// Order is a total order on vertices. Perm lists vertex ids from highest
// rank to lowest (Perm[0] is the top-ranked vertex); Rank is the inverse
// (Rank[v] = position of v, 0 = highest). R(u) > R(v) ⇔ Rank[u] < Rank[v].
type Order struct {
	Perm []int
	Rank []int
}

// FromPerm builds an Order from a permutation listing vertices by
// decreasing rank. It validates that perm is a permutation of [0,n).
func FromPerm(perm []int) (*Order, error) {
	n := len(perm)
	rank := make([]int, n)
	for i := range rank {
		rank[i] = -1
	}
	for pos, v := range perm {
		if v < 0 || v >= n || rank[v] != -1 {
			return nil, fmt.Errorf("order: perm[%d]=%d is not a permutation of [0,%d)", pos, v, n)
		}
		rank[v] = pos
	}
	return &Order{Perm: append([]int(nil), perm...), Rank: rank}, nil
}

// MustFromPerm is FromPerm for inputs correct by construction.
func MustFromPerm(perm []int) *Order {
	o, err := FromPerm(perm)
	if err != nil {
		panic(err)
	}
	return o
}

// Identity returns the order in which vertex 0 ranks highest.
func Identity(n int) *Order {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return MustFromPerm(perm)
}

// Random returns a uniformly random order (useful for adversarial tests —
// the CHL is defined for *any* R).
func Random(n int, seed int64) *Order {
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	return MustFromPerm(perm)
}

// ByDegree ranks vertices by decreasing degree (in+out for directed graphs),
// breaking ties by vertex id. This is the ordering the paper uses for
// scale-free networks (after Akiba et al.).
func ByDegree(g *graph.Graph) *Order {
	n := g.NumVertices()
	score := make([]float64, n)
	for v := 0; v < n; v++ {
		score[v] = float64(g.Degree(v))
		if g.Directed() {
			score[v] += float64(g.InDegree(v))
		}
	}
	return byScore(score)
}

// ByApproxBetweenness ranks vertices by an approximation of betweenness
// centrality obtained from `samples` shortest path trees (Brandes'
// dependency accumulation on sampled roots). This is the ordering the paper
// uses for road networks ("Betweenness is approximated by sampling a few
// shortest path trees", §7.1.1). Degree is the tie breaker so the order is
// deterministic for a given seed.
func ByApproxBetweenness(g *graph.Graph, samples int, seed int64) *Order {
	n := g.NumVertices()
	if samples > n {
		samples = n
	}
	if samples < 1 {
		samples = 1
	}
	rng := rand.New(rand.NewSource(seed))
	score := make([]float64, n)

	dist := make([]float64, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	settled := make([]int, 0, n)
	h := vheap.New(n)

	for s := 0; s < samples; s++ {
		src := rng.Intn(n)
		for i := range dist {
			dist[i] = graph.Infinity
			sigma[i] = 0
			delta[i] = 0
		}
		settled = settled[:0]
		h.Clear()
		dist[src] = 0
		sigma[src] = 1
		h.Push(src, 0)
		for !h.Empty() {
			u, du := h.Pop()
			if du > dist[u] {
				continue
			}
			settled = append(settled, u)
			heads, wts := g.Neighbors(u)
			for i, vv := range heads {
				v := int(vv)
				nd := du + wts[i]
				if nd < dist[v] {
					dist[v] = nd
					sigma[v] = sigma[u]
					h.Push(v, nd)
				} else if nd == dist[v] {
					sigma[v] += sigma[u]
				}
			}
		}
		// Brandes back-propagation in reverse settle order.
		for i := len(settled) - 1; i >= 0; i-- {
			w := settled[i]
			tails, wts := g.InNeighbors(w)
			for j, tt := range tails {
				t := int(tt)
				if dist[t] != graph.Infinity && dist[t]+wts[j] == dist[w] && sigma[w] > 0 {
					delta[t] += sigma[t] / sigma[w] * (1 + delta[w])
				}
			}
			if w != src {
				score[w] += delta[w]
			}
		}
	}
	// Deterministic tie-break: degree, then id (ByDegree semantics).
	for v := 0; v < n; v++ {
		score[v] += float64(g.Degree(v)) * 1e-9
	}
	return byScore(score)
}

// ForGraph picks the paper's default ordering for a graph: approximate
// betweenness for low-degree high-diameter (road-like) graphs, degree for
// everything else. The threshold mirrors the structural gap between the two
// dataset families rather than trying to be a general classifier.
func ForGraph(g *graph.Graph, seed int64) *Order {
	n := g.NumVertices()
	if n == 0 {
		return Identity(0)
	}
	avgDeg := float64(g.NumArcs()) / float64(n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	// Road networks: near-uniform small degrees. Scale-free: max degree far
	// above average.
	if float64(maxDeg) <= 4*avgDeg+8 {
		samples := 16
		if n < 16 {
			samples = n
		}
		return ByApproxBetweenness(g, samples, seed)
	}
	return ByDegree(g)
}

func byScore(score []float64) *Order {
	n := len(score)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool {
		a, b := perm[i], perm[j]
		if score[a] != score[b] {
			return score[a] > score[b]
		}
		return a < b
	})
	return MustFromPerm(perm)
}

package exp

import (
	"fmt"
	"io"
	"time"
)

// RunAll executes every experiment and writes the full text report — the
// regeneration of all tables and figures in the paper's evaluation section.
func RunAll(w io.Writer, cfg Config) {
	cfg = cfg.Defaults()
	fmt.Fprintf(w, "# PLaNT / Canonical Hub Labeling — evaluation report\n")
	fmt.Fprintf(w, "# scale=%.2f seed=%d workers=%d full=%v\n", cfg.Scale, cfg.Seed, cfg.Workers, cfg.Full)
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	fmt.Fprintf(w, "# generated %s\n", time.Now().Format(time.RFC3339))

	step := func(name string, fn func()) {
		//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
		start := time.Now()
		fn()
		//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
		fmt.Fprintf(w, "\n[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	step("Intro baselines", func() { WriteQueryBaselines(w, QueryBaselines(cfg)) })
	step("Table 3", func() { WriteTable3(w, Table3(cfg)) })
	step("Table 4", func() { WriteTable4(w, Table4(cfg)) })
	step("Figure 2", func() { WriteFigure2(w, Figure2(cfg)) })
	step("Figure 3", func() { WriteFigure3(w, Figure3(cfg)) })
	step("Figure 4", func() { WriteFigure4(w, Figure4(cfg)) })
	step("Figure 5", func() { WriteFigure5(w, Figure5(cfg)) })
	step("Figure 6", func() { WriteFigure6(w, Figure6(cfg)) })
	step("Figure 7", func() { WriteFigure7(w, Figure7(cfg)) })
	step("Figure 8", func() { WriteFigure8(w, Figure8(cfg)) })
	step("Figure 9", func() { WriteFigure9(w, Figure9(cfg)) })
	step("Ablation X2", func() { WriteAblationCommonTable(w, AblationCommonTable(cfg)) })
	step("Ablation X3", func() { WriteAblationTwoTables(w, AblationTwoTables(cfg)) })
	step("Ablation X4", func() { WriteAblationPlantFirst(w, AblationPlantFirst(cfg)) })
}

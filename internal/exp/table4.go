package exp

import (
	"io"
	"math/rand"
	"time"

	"repro/internal/dist"
	"repro/internal/query"
)

// Table4Row reports the three query modes on one dataset at q = 16 nodes:
// batch throughput, single-query latency, and cluster-wide label memory —
// the columns of the paper's Table 4.
type Table4Row struct {
	Dataset string
	// Per mode: throughput (million queries/second), latency (µs),
	// memory (MiB total across nodes). A nil entry means the mode is not
	// supported (the paper's "-" for QLSN on graphs whose labels exceed a
	// node's memory).
	Throughput map[query.Mode]float64
	LatencyUS  map[query.Mode]float64
	MemoryMB   map[query.Mode]float64
	Skipped    map[query.Mode]bool
}

// Table4Nodes is the cluster size of the paper's query evaluation.
const Table4Nodes = 16

// qlsnMemoryLimit mirrors Table 4's "-" entries: QLSN is unsupported when
// one node cannot hold the whole labeling. The simulated per-node budget is
// scaled to the laptop-sized datasets.
const qlsnMemoryLimit = int64(64) << 20 // 64 MiB per node

// Table4 runs the query-mode evaluation of §7.4.
func Table4(cfg Config) []Table4Row {
	cfg = cfg.Defaults()
	var rows []Table4Row
	for _, ds := range Suite(cfg.Full) {
		p := cfg.prepare(ds)
		res, err := dist.Hybrid(p.ranked, dist.Options{
			Nodes:          Table4Nodes,
			WorkersPerNode: 1,
			PsiThreshold:   ds.PsiThreshold(),
		})
		if err != nil {
			continue
		}
		row := Table4Row{
			Dataset:    ds.Name,
			Throughput: map[query.Mode]float64{},
			LatencyUS:  map[query.Mode]float64{},
			MemoryMB:   map[query.Mode]float64{},
			Skipped:    map[query.Mode]bool{},
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 17))
		batch := make([]query.Pair, cfg.QueryBatch)
		for i := range batch {
			batch[i] = query.Pair{U: int32(rng.Intn(p.n)), V: int32(rng.Intn(p.n))}
		}
		for _, mode := range []query.Mode{query.QLSN, query.QFDL, query.QDOL} {
			eng, err := query.NewEngine(mode, res.Index, res.PerNode, Table4Nodes, query.DefaultCostModel())
			if err != nil {
				row.Skipped[mode] = true
				continue
			}
			var peak int64
			var total int64
			for _, b := range eng.MemoryPerNode() {
				total += b
				if b > peak {
					peak = b
				}
			}
			if mode == query.QLSN && peak > qlsnMemoryLimit {
				row.Skipped[mode] = true // the paper's "-": labels exceed one node
				continue
			}
			br := eng.Batch(batch)
			row.Throughput[mode] = br.Throughput / 1e6
			// Latency: modeled per-query latency over a separate small
			// sample, matching the paper's one-at-a-time methodology.
			var lat time.Duration
			for i := 0; i < cfg.LatencyQueries; i++ {
				u, v := rng.Intn(p.n), rng.Intn(p.n)
				_, l := eng.Query(u, v)
				lat += l
			}
			row.LatencyUS[mode] = float64(lat.Microseconds()) / float64(cfg.LatencyQueries)
			row.MemoryMB[mode] = float64(total) / (1 << 20)
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteTable4 renders rows like the paper's Table 4.
func WriteTable4(w io.Writer, rows []Table4Row) {
	section(w, "Table 4: query throughput (Mq/s), latency (µs/query) and total label memory (MiB), q=16")
	t := newTable("Dataset",
		"QLSN thr", "QFDL thr", "QDOL thr",
		"QLSN lat", "QFDL lat", "QDOL lat",
		"QLSN MiB", "QFDL MiB", "QDOL MiB")
	modes := []query.Mode{query.QLSN, query.QFDL, query.QDOL}
	cell := func(r Table4Row, m map[query.Mode]float64, mode query.Mode) string {
		if r.Skipped[mode] {
			return "-"
		}
		return formatFloat(m[mode])
	}
	for _, r := range rows {
		cells := []any{r.Dataset}
		for _, m := range modes {
			cells = append(cells, cell(r, r.Throughput, m))
		}
		for _, m := range modes {
			cells = append(cells, cell(r, r.LatencyUS, m))
		}
		for _, m := range modes {
			cells = append(cells, cell(r, r.MemoryMB, m))
		}
		t.row(cells...)
	}
	t.write(w)
}

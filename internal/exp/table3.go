package exp

import (
	"io"
	"time"

	"repro/internal/gll"
	"repro/internal/lcc"
	"repro/internal/pll"
)

// Table3Row is one dataset row of Table 3: shared-memory algorithms
// compared on preprocessing time and average label size.
type Table3Row struct {
	Dataset    string
	N, M       int
	SparaALS   float64 // SparaPLL average label size
	SparaTime  time.Duration
	CHLALS     float64 // canonical ALS (identical for seqPLL/LCC/GLL)
	SeqTime    time.Duration
	SeqSkipped bool // mirrors the paper's "∞" entries
	LCCTime    time.Duration
	GLLTime    time.Duration
}

// seqPLLVertexLimit mirrors the paper's 2-hour timeout: beyond this size
// the sequential baseline is skipped (Table 3 reports ∞ for USA, ACT, POK).
const seqPLLVertexLimit = 60_000

// Table3 runs the shared-memory comparison of §7.2 on the dataset suite.
func Table3(cfg Config) []Table3Row {
	cfg = cfg.Defaults()
	var rows []Table3Row
	for _, ds := range Suite(cfg.Full) {
		p := cfg.prepare(ds)
		row := Table3Row{Dataset: ds.Name, N: p.n, M: p.g.NumEdges()}

		spIx, spM := pll.SParaPLL(p.ranked, pll.Options{Workers: cfg.Workers})
		row.SparaALS = float64(spIx.TotalLabels()) / float64(p.n)
		row.SparaTime = spM.TotalTime

		if p.n <= seqPLLVertexLimit {
			seqIx, seqM := pll.Sequential(p.ranked, pll.Options{})
			row.SeqTime = seqM.TotalTime
			row.CHLALS = float64(seqIx.TotalLabels()) / float64(p.n)
		} else {
			row.SeqSkipped = true
		}

		lccIx, lccM := lcc.Run(p.ranked, lcc.Options{Workers: cfg.Workers})
		row.LCCTime = lccM.TotalTime

		gllIx, gllM := gll.Run(p.ranked, gll.Options{Workers: cfg.Workers})
		row.GLLTime = gllM.TotalTime
		row.CHLALS = float64(gllIx.TotalLabels()) / float64(p.n)
		if lccIx.TotalLabels() != gllIx.TotalLabels() {
			// The CHL is unique: any discrepancy is a bug, surface loudly.
			panic("exp: LCC and GLL disagree on label count")
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteTable3 renders the rows like the paper's Table 3.
func WriteTable3(w io.Writer, rows []Table3Row) {
	section(w, "Table 3: shared-memory labeling — ALS and construction time")
	t := newTable("Dataset", "n", "m", "SparaPLL ALS", "SparaPLL(s)", "CHL ALS", "seqPLL(s)", "LCC(s)", "GLL(s)")
	for _, r := range rows {
		seq := "inf"
		if !r.SeqSkipped {
			seq = formatFloat(r.SeqTime.Seconds())
		}
		t.row(r.Dataset, r.N, r.M, r.SparaALS, r.SparaTime.Seconds(), r.CHLALS, seq,
			r.LCCTime.Seconds(), r.GLLTime.Seconds())
	}
	t.write(w)
}

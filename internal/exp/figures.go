package exp

import (
	"io"
	"time"

	"repro/internal/dist"
	"repro/internal/gll"
	"repro/internal/lcc"
	"repro/internal/plant"
	"repro/internal/pll"
)

// ---------------------------------------------------------------------------
// Figure 2: labels generated per SPT, by SPT id (= n − R(v); in rank space
// the SPT id is simply the root id). The paper plots CAL and SKIT and the
// point is the exponential decay: early high-ranked trees generate almost
// all labels.

// SeriesPoint is one log-bucket of a per-tree series.
type SeriesPoint struct {
	TreeLo, TreeHi int
	Value          float64
}

// FigureSeries is a named per-dataset series.
type FigureSeries struct {
	Dataset string
	Points  []SeriesPoint
}

// figure2Datasets mirrors the paper's choice of one road and one
// scale-free network.
func figureDatasets() []string { return []string{"CAL", "SKIT"} }

// Figure2 computes labels-per-SPT series.
func Figure2(cfg Config) []FigureSeries {
	cfg = cfg.Defaults()
	var out []FigureSeries
	for _, name := range figureDatasets() {
		ds, _ := ByName(name)
		p := cfg.prepare(ds)
		_, m := pll.Sequential(p.ranked, pll.Options{RecordPerTree: true})
		var pts []SeriesPoint
		for _, b := range bucketSeries(m.LabelsPerTree, 0, "avg") {
			pts = append(pts, SeriesPoint{b.Lo, b.Hi, b.Value})
		}
		out = append(out, FigureSeries{Dataset: name, Points: pts})
	}
	return out
}

// WriteFigure2 renders the series.
func WriteFigure2(w io.Writer, series []FigureSeries) {
	section(w, "Figure 2: labels generated per SPT (avg per log-spaced tree bucket)")
	for _, s := range series {
		t := newTable("SPT id range ("+s.Dataset+")", "avg labels/SPT")
		for _, p := range s.Points {
			t.row(rangeStr(p.TreeLo, p.TreeHi), p.Value)
		}
		t.write(w)
	}
}

// ---------------------------------------------------------------------------
// Figure 3: Ψ (vertices explored per label generated) per PLaNTed SPT.

// Figure3 computes the Ψ-per-tree series for unpruned PLaNT.
func Figure3(cfg Config) []FigureSeries {
	cfg = cfg.Defaults()
	var out []FigureSeries
	for _, name := range figureDatasets() {
		ds, _ := ByName(name)
		p := cfg.prepare(ds)
		_, m := plant.Run(p.ranked, plant.Options{Workers: cfg.Workers, RecordPerTree: true})
		psi := make([]int64, p.n)
		for h := 0; h < p.n; h++ {
			l := m.LabelsPerTree[h]
			if l == 0 {
				l = 1
			}
			psi[h] = m.ExploredPerTree[h] / l
		}
		var pts []SeriesPoint
		for _, b := range bucketSeries(psi, 0, "max") {
			pts = append(pts, SeriesPoint{b.Lo, b.Hi, b.Value})
		}
		out = append(out, FigureSeries{Dataset: name, Points: pts})
	}
	return out
}

// WriteFigure3 renders the series.
func WriteFigure3(w io.Writer, series []FigureSeries) {
	section(w, "Figure 3: Ψ = vertices explored per label, per PLaNTed SPT (max per bucket)")
	for _, s := range series {
		t := newTable("SPT id range ("+s.Dataset+")", "max Ψ")
		for _, p := range s.Points {
			t.row(rangeStr(p.TreeLo, p.TreeHi), p.Value)
		}
		t.write(w)
	}
}

// ---------------------------------------------------------------------------
// Figure 4: labels generated when pruning distance queries may only use the
// x highest-ranked hubs (x = 0 ⇒ rank queries only).

// Figure4Point is one (x, labels) sample.
type Figure4Point struct {
	TopHubs int
	Labels  int64
}

// Figure4Series is the per-dataset curve.
type Figure4Series struct {
	Dataset string
	Points  []Figure4Point
	CHL     int64 // unrestricted label count
}

// Figure4 sweeps the pruning bound.
func Figure4(cfg Config) []Figure4Series {
	cfg = cfg.Defaults()
	var out []Figure4Series
	for _, name := range figureDatasets() {
		ds, _ := ByName(name)
		p := cfg.prepare(ds)
		s := Figure4Series{Dataset: name}
		for _, x := range []int{0, 1, 2, 4, 8, 16, 32, 64} {
			opts := pll.Options{PruneHubBound: uint32(x)}
			if x == 0 {
				opts = pll.Options{DisableDistanceQueries: true}
			}
			ix, _ := pll.Sequential(p.ranked, opts)
			s.Points = append(s.Points, Figure4Point{TopHubs: x, Labels: ix.TotalLabels()})
		}
		full, _ := pll.Sequential(p.ranked, pll.Options{})
		s.CHL = full.TotalLabels()
		out = append(out, s)
	}
	return out
}

// WriteFigure4 renders the curves.
func WriteFigure4(w io.Writer, series []Figure4Series) {
	section(w, "Figure 4: #labels when pruning uses only the x top-ranked hubs (x=0: rank queries only)")
	for _, s := range series {
		t := newTable("x ("+s.Dataset+")", "#labels")
		for _, p := range s.Points {
			t.row(p.TopHubs, p.Labels)
		}
		t.row("all (CHL)", s.CHL)
		t.write(w)
	}
}

// ---------------------------------------------------------------------------
// Figure 5: GLL execution time vs synchronization threshold α.

// Figure5Point is one (α, time) sample for one dataset.
type Figure5Point struct {
	Dataset string
	Alpha   float64
	Time    time.Duration
}

// Figure5Alphas is the sweep grid (the paper sweeps 1..256 and finds the
// time robust for α in [2,32]).
var Figure5Alphas = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Figure5 sweeps α for every (non-large) dataset.
func Figure5(cfg Config) []Figure5Point {
	cfg = cfg.Defaults()
	var out []Figure5Point
	for _, ds := range Suite(false) {
		p := cfg.prepare(ds)
		for _, a := range Figure5Alphas {
			_, m := gll.Run(p.ranked, gll.Options{Workers: cfg.Workers, Alpha: a})
			out = append(out, Figure5Point{Dataset: ds.Name, Alpha: a, Time: m.TotalTime})
		}
	}
	return out
}

// WriteFigure5 renders the sweep.
func WriteFigure5(w io.Writer, pts []Figure5Point) {
	section(w, "Figure 5: GLL execution time (s) vs synchronization threshold α")
	t := newTable("Dataset", "α", "time(s)")
	for _, p := range pts {
		t.row(p.Dataset, p.Alpha, p.Time.Seconds())
	}
	t.write(w)
}

// ---------------------------------------------------------------------------
// Figure 6: Hybrid execution time vs switching threshold Ψth (16 nodes).

// Figure6Point is one (Ψth, modeled time) sample.
type Figure6Point struct {
	Dataset string
	PsiTh   float64
	Modeled float64 // modeled cluster seconds (DESIGN.md §4)
	Bytes   int64
}

// Figure6PsiThresholds is the sweep grid.
var Figure6PsiThresholds = []float64{16, 64, 128, 512, 2048, 8192}

// Figure6Nodes matches the paper's 16-node sweep.
const Figure6Nodes = 16

// Figure6 sweeps Ψth on one road and one scale-free dataset.
func Figure6(cfg Config) []Figure6Point {
	cfg = cfg.Defaults()
	cm := defaultClusterCost()
	var out []Figure6Point
	for _, name := range figureDatasets() {
		ds, _ := ByName(name)
		p := cfg.prepare(ds)
		for _, psi := range Figure6PsiThresholds {
			res, err := dist.Hybrid(p.ranked, dist.Options{Nodes: Figure6Nodes, PsiThreshold: psi})
			if err != nil {
				continue
			}
			out = append(out, Figure6Point{
				Dataset: name,
				PsiTh:   psi,
				Modeled: modeledSeconds(cm, res),
				Bytes:   res.Metrics.BytesSent,
			})
		}
	}
	return out
}

// WriteFigure6 renders the sweep.
func WriteFigure6(w io.Writer, pts []Figure6Point) {
	section(w, "Figure 6: Hybrid modeled time vs switching threshold Ψth (q=16)")
	t := newTable("Dataset", "Ψth", "modeled(s)", "bytes")
	for _, p := range pts {
		t.row(p.Dataset, p.PsiTh, p.Modeled, p.Bytes)
	}
	t.write(w)
}

// ---------------------------------------------------------------------------
// Figure 7: construction vs cleaning time breakdown, LCC against GLL,
// normalized by GLL's total time.

// Figure7Row is one dataset's breakdown.
type Figure7Row struct {
	Dataset                string
	GLLConstruct, GLLClean float64 // fractions of GLL total
	LCCConstruct, LCCClean float64 // normalized by GLL total
	GLLTotal, LCCTotal     time.Duration
	// CleanEntries meter the cleaning work machine-independently: label
	// entries touched by DQ_Clean merge-joins (§4.2's whole argument is
	// that GLL touches far fewer).
	GLLCleanEntries, LCCCleanEntries int64
}

// Figure7 measures the breakdown.
func Figure7(cfg Config) []Figure7Row {
	cfg = cfg.Defaults()
	var rows []Figure7Row
	for _, ds := range Suite(false) {
		p := cfg.prepare(ds)
		_, gm := gll.Run(p.ranked, gll.Options{Workers: cfg.Workers})
		_, lm := lcc.Run(p.ranked, lcc.Options{Workers: cfg.Workers})
		gt := gm.TotalTime.Seconds()
		rows = append(rows, Figure7Row{
			Dataset:         ds.Name,
			GLLConstruct:    gm.ConstructTime.Seconds() / gt,
			GLLClean:        gm.CleanTime.Seconds() / gt,
			LCCConstruct:    lm.ConstructTime.Seconds() / gt,
			LCCClean:        lm.CleanTime.Seconds() / gt,
			GLLTotal:        gm.TotalTime,
			LCCTotal:        lm.TotalTime,
			GLLCleanEntries: gm.CleanEntries,
			LCCCleanEntries: lm.CleanEntries,
		})
	}
	return rows
}

// WriteFigure7 renders the breakdown.
func WriteFigure7(w io.Writer, rows []Figure7Row) {
	section(w, "Figure 7: construction/cleaning breakdown (normalized by GLL total time)")
	t := newTable("Dataset", "GLL constr", "GLL clean", "LCC constr", "LCC clean", "GLL clean entries", "LCC clean entries")
	for _, r := range rows {
		t.row(r.Dataset, r.GLLConstruct, r.GLLClean, r.LCCConstruct, r.LCCClean, r.GLLCleanEntries, r.LCCCleanEntries)
	}
	t.write(w)
}

func rangeStr(lo, hi int) string {
	if hi-lo <= 1 {
		return formatFloat(float64(lo))
	}
	return formatFloat(float64(lo)) + "-" + formatFloat(float64(hi-1))
}

package exp

// These tests assert the *shapes* of the paper's results — who wins, in
// which direction the curves move — at reduced scale, so the full
// experiment binary only has to reproduce them bigger.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/query"
)

// quickCfg keeps the experiment tests to seconds.
func quickCfg() Config {
	return Config{Scale: 0.2, Seed: 1, Workers: 2, QueryBatch: 5_000, LatencyQueries: 500}.Defaults()
}

func TestSuiteShapes(t *testing.T) {
	small := Suite(false)
	full := Suite(true)
	if len(full) != 12 {
		t.Fatalf("full suite has %d datasets, want the paper's 12", len(full))
	}
	if len(small) >= len(full) {
		t.Fatal("quick suite not smaller than full")
	}
	if _, ok := ByName("CAL"); !ok {
		t.Fatal("CAL missing")
	}
	if _, ok := ByName("XXX"); ok {
		t.Fatal("phantom dataset")
	}
	cal, _ := ByName("CAL")
	skit, _ := ByName("SKIT")
	if cal.PsiThreshold() != 500 || skit.PsiThreshold() != 100 {
		t.Fatal("Ψth defaults do not match §7.1")
	}
}

func TestTable3Shape(t *testing.T) {
	rows := Table3(quickCfg())
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		// The headline claim of §7.2: GLL (=CHL) generates fewer labels
		// than SparaPLL ("on average, GLL generates 17% less labels than
		// paraPLL"), and never more.
		if r.CHLALS > r.SparaALS {
			t.Fatalf("%s: CHL ALS %.2f above SparaPLL %.2f", r.Dataset, r.CHLALS, r.SparaALS)
		}
		if !r.SeqSkipped && r.SeqTime <= 0 {
			t.Fatalf("%s: missing seqPLL time", r.Dataset)
		}
		if r.LCCTime <= 0 || r.GLLTime <= 0 {
			t.Fatalf("%s: missing parallel times", r.Dataset)
		}
	}
	var buf bytes.Buffer
	WriteTable3(&buf, rows)
	if !strings.Contains(buf.String(), "CHL ALS") {
		t.Fatal("render missing header")
	}
}

func TestTable4Shape(t *testing.T) {
	rows := Table4(quickCfg())
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Skipped[query.QFDL] || r.Skipped[query.QDOL] {
			t.Fatalf("%s: distributed modes must always run", r.Dataset)
		}
		// §7.4: QFDL uses the least memory; QDOL more (≈5.3× in the
		// paper); QLSN the most (when it fits).
		if !(r.MemoryMB[query.QFDL] < r.MemoryMB[query.QDOL]) {
			t.Fatalf("%s: QFDL mem %.2f not below QDOL %.2f", r.Dataset, r.MemoryMB[query.QFDL], r.MemoryMB[query.QDOL])
		}
		if !r.Skipped[query.QLSN] {
			if !(r.MemoryMB[query.QDOL] < r.MemoryMB[query.QLSN]) {
				t.Fatalf("%s: QDOL mem not below QLSN", r.Dataset)
			}
			// Latency: QLSN (local) < QDOL (P2P) < QFDL (broadcast).
			if !(r.LatencyUS[query.QLSN] < r.LatencyUS[query.QDOL] && r.LatencyUS[query.QDOL] < r.LatencyUS[query.QFDL]) {
				t.Fatalf("%s: latency ordering violated: %v", r.Dataset, r.LatencyUS)
			}
			// Throughput: the distributed modes beat single-node QLSN.
			if !(r.Throughput[query.QDOL] > r.Throughput[query.QLSN]) {
				t.Fatalf("%s: QDOL throughput not above QLSN", r.Dataset)
			}
		}
	}
}

func TestFigure2Decay(t *testing.T) {
	series := Figure2(quickCfg())
	if len(series) != 2 {
		t.Fatalf("want CAL and SKIT, got %d series", len(series))
	}
	for _, s := range series {
		pts := s.Points
		if len(pts) < 4 {
			t.Fatalf("%s: too few buckets", s.Dataset)
		}
		// Exponential decay: the first bucket's average labels per SPT
		// dwarfs the last bucket's.
		if pts[0].Value < 10*pts[len(pts)-1].Value {
			t.Fatalf("%s: labels/SPT not decaying: first %.1f last %.1f",
				s.Dataset, pts[0].Value, pts[len(pts)-1].Value)
		}
	}
}

func TestFigure3PsiGrows(t *testing.T) {
	series := Figure3(quickCfg())
	for _, s := range series {
		pts := s.Points
		first := pts[0].Value
		var maxLate float64
		for _, p := range pts[len(pts)/2:] {
			if p.Value > maxLate {
				maxLate = p.Value
			}
		}
		// Late SPTs explore orders of magnitude more per label.
		if maxLate < 20*first {
			t.Fatalf("%s: Ψ not growing: first %.1f, late max %.1f", s.Dataset, first, maxLate)
		}
	}
}

func TestFigure4Collapse(t *testing.T) {
	for _, s := range Figure4(quickCfg()) {
		// Monotone non-increasing in x, and a handful of top hubs already
		// collapse the label count far below rank-query-only.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Labels > s.Points[i-1].Labels {
				t.Fatalf("%s: labels grew from x=%d to x=%d", s.Dataset, s.Points[i-1].TopHubs, s.Points[i].TopHubs)
			}
		}
		x0 := s.Points[0].Labels
		x16 := int64(0)
		for _, p := range s.Points {
			if p.TopHubs == 16 {
				x16 = p.Labels
			}
		}
		if float64(x16) > 0.6*float64(x0) {
			t.Fatalf("%s: 16 hubs only cut labels from %d to %d", s.Dataset, x0, x16)
		}
		if s.CHL > x16 {
			t.Fatalf("%s: CHL %d above x=16 count %d", s.Dataset, s.CHL, x16)
		}
	}
}

func TestFigure6UShape(t *testing.T) {
	cfg := quickCfg()
	pts := Figure6(cfg)
	byDS := map[string][]Figure6Point{}
	for _, p := range pts {
		byDS[p.Dataset] = append(byDS[p.Dataset], p)
	}
	// Communication falls (weakly) as Ψth rises: later switch = fewer
	// DGLL supersteps broadcasting labels.
	for ds, ps := range byDS {
		for i := 1; i < len(ps); i++ {
			if ps[i].Bytes > ps[i-1].Bytes {
				t.Fatalf("%s: bytes rose from Ψth=%v to Ψth=%v", ds, ps[i-1].PsiTh, ps[i].PsiTh)
			}
		}
	}
}

func TestFigure7GLLCleansLess(t *testing.T) {
	for _, r := range Figure7(quickCfg()) {
		// GLL's cleaning work must undercut LCC's: that is the entire
		// §4.2 argument. Queries counts are equal by construction (each
		// generated label is checked once), so the meter is entries
		// touched by the cleaning merge-joins.
		if r.GLLCleanEntries >= r.LCCCleanEntries {
			t.Fatalf("%s: GLL clean entries %d not below LCC %d", r.Dataset, r.GLLCleanEntries, r.LCCCleanEntries)
		}
	}
}

func TestFigure8Shapes(t *testing.T) {
	// Figure 8 needs graphs big enough that per-node compute dominates the
	// fixed collective overheads; run it at a larger scale than the rest.
	cfg := quickCfg()
	cfg.Scale = 0.5
	pts := Figure8(cfg)
	type key struct{ ds, algo string }
	series := map[key]map[int]Figure8Point{}
	for _, p := range pts {
		k := key{p.Dataset, p.Algorithm}
		if series[k] == nil {
			series[k] = map[int]Figure8Point{}
		}
		series[k][p.Nodes] = p
	}
	qs := ScalingQs(false)
	qMax := qs[len(qs)-1]
	for k, s := range series {
		if k.algo != "PLaNT" {
			continue
		}
		// PLaNT scales near-linearly in the model: modeled time at qMax is
		// far below q=1 (the paper reports 42× at 64 nodes; at this
		// reduced scale and q=16 demand ≥ 4×).
		sp := s[1].Modeled / s[qMax].Modeled
		if sp < 4 {
			t.Fatalf("%s/PLaNT: modeled speedup at q=%d only %.1f×", k.ds, qMax, sp)
		}
	}
	// DGLL must be communication-bound relative to PLaNT at qMax.
	for _, ds := range []string{"CAL", "SKIT"} {
		dgll := series[key{ds, "DGLL"}][qMax]
		plant := series[key{ds, "PLaNT"}][qMax]
		if !dgll.OOM && dgll.Bytes <= plant.Bytes {
			t.Fatalf("%s: DGLL bytes %d not above PLaNT %d at q=%d", ds, dgll.Bytes, plant.Bytes, qMax)
		}
	}
	// Every CHL algorithm reports the identical ALS at every q.
	for k, s := range series {
		if k.algo == "DparaPLL" {
			continue
		}
		var als float64
		for _, q := range qs {
			p := s[q]
			if p.OOM {
				continue
			}
			if als == 0 {
				als = p.ALS
			} else if p.ALS != als {
				t.Fatalf("%s/%s: ALS varies with q (%v vs %v)", k.ds, k.algo, p.ALS, als)
			}
		}
	}
}

func TestFigure9ALSGrowth(t *testing.T) {
	cfg := quickCfg()
	pts := Figure9(cfg)
	byDS := map[string]map[string]map[int]float64{}
	for _, p := range pts {
		if p.OOM {
			continue
		}
		if byDS[p.Dataset] == nil {
			byDS[p.Dataset] = map[string]map[int]float64{}
		}
		if byDS[p.Dataset][p.Algorithm] == nil {
			byDS[p.Dataset][p.Algorithm] = map[int]float64{}
		}
		byDS[p.Dataset][p.Algorithm][p.Nodes] = p.ALS
	}
	qs := ScalingQs(false)
	qMax := qs[len(qs)-1]
	grew := 0
	for ds, algos := range byDS {
		dp := algos["DparaPLL"]
		hy := algos["Hybrid"]
		if hy[1] != hy[qMax] {
			t.Fatalf("%s: Hybrid ALS changed with q", ds)
		}
		if dp[qMax] > dp[1] {
			grew++
		}
		if dp[qMax] < hy[qMax] {
			t.Fatalf("%s: DparaPLL ALS below canonical", ds)
		}
	}
	if grew == 0 {
		t.Fatal("DparaPLL ALS grew on no dataset at all")
	}
}

func TestAblationCommonTable(t *testing.T) {
	rows := AblationCommonTable(quickCfg())
	for _, r := range rows {
		switch r.Algorithm {
		case "PLaNT":
			if r.ExploredWith >= r.ExploredWithout {
				t.Fatalf("%s/PLaNT: η did not cut exploration (%d vs %d)", r.Dataset, r.ExploredWith, r.ExploredWithout)
			}
		case "DGLL":
			if r.GeneratedWith > r.GeneratedWithout {
				t.Fatalf("%s/DGLL: η increased generated labels", r.Dataset)
			}
		}
	}
}

func TestQueryBaselines(t *testing.T) {
	rows := QueryBaselines(quickCfg())
	for _, r := range rows {
		// The motivating claim: hub labels beat the best traversal by a
		// wide margin even at toy scale.
		if r.SpeedupVsBest < 5 {
			t.Fatalf("%s: hub label speedup only %.1f× over the best traversal", r.Dataset, r.SpeedupVsBest)
		}
	}
}

func TestAblationPlantFirst(t *testing.T) {
	for _, r := range AblationPlantFirst(quickCfg()) {
		if r.PlantCleanQs >= r.PlainCleanQs {
			t.Fatalf("%s: PLaNT-first clean queries %d not below plain %d", r.Dataset, r.PlantCleanQs, r.PlainCleanQs)
		}
	}
}

func TestAblationTwoTables(t *testing.T) {
	for _, r := range AblationTwoTables(quickCfg()) {
		if r.GLLLocks >= r.LCCLocks {
			t.Fatalf("%s: GLL locks %d not below LCC %d", r.Dataset, r.GLLLocks, r.LCCLocks)
		}
	}
}

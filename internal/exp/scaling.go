package exp

import (
	"errors"
	"io"

	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/pll"
)

// This file drives the distributed evaluation: Figure 8 (strong scaling of
// DparaPLL, DGLL, PLaNT and Hybrid over q = 1..64 nodes) and Figure 9 (ALS
// of DparaPLL vs Hybrid over q).
//
// Wall-clock time on the one-box simulation reflects the host scheduler,
// not the algorithms, so Figure 8 reports *modeled* time: max-per-node
// compute (explored vertices, distance queries) plus synchronization and
// wire costs under an explicit cost model. All inputs to the model are
// machine-independent counters metered by the cluster simulator; the
// paper's crossovers (PLaNT's near-linear scaling, DGLL/DparaPLL stalling
// on communication, DparaPLL OOM) are decided by exactly these quantities.

// ScalingQs returns the cluster sizes swept (the paper uses 8..512 cores =
// 1..64 nodes).
func ScalingQs(full bool) []int {
	if full {
		return []int{1, 2, 4, 8, 16, 32, 64}
	}
	return []int{1, 2, 4, 8, 16}
}

// Figure8Point is one (dataset, algorithm, q) sample.
type Figure8Point struct {
	Dataset   string
	Algorithm string
	Nodes     int
	Modeled   float64 // modeled seconds; 0 when OOM
	OOM       bool
	Bytes     int64
	Syncs     int64
	ALS       float64
}

// figure8NodeMemory simulates each node's 64GB DRAM, scaled to the
// laptop-sized datasets: a node may hold at most this × the dataset's CHL
// label bytes. DparaPLL replicates the (redundancy-inflated) labeling on
// every node and trips this on scale-free graphs at high q; the
// partitioned algorithms never come close.
const figure8NodeMemoryFactor = 4

// Figure8 runs the strong-scaling sweep.
func Figure8(cfg Config) []Figure8Point {
	cfg = cfg.Defaults()
	cm := defaultClusterCost()
	var out []Figure8Point
	for _, ds := range Suite(cfg.Full) {
		p := cfg.prepare(ds)
		chlIx, _ := pll.Sequential(p.ranked, pll.Options{})
		memLimit := int64(figure8NodeMemoryFactor) * chlIx.TotalLabels() * 12

		for _, q := range ScalingQs(cfg.Full) {
			for _, algo := range []struct {
				name string
				run  func() (*dist.Result, error)
			}{
				{"DparaPLL", func() (*dist.Result, error) {
					return dist.DParaPLL(p.ranked, dist.Options{Nodes: q, MemoryLimitBytes: memLimit})
				}},
				{"DGLL", func() (*dist.Result, error) {
					return dist.DGLL(p.ranked, dist.Options{Nodes: q, MemoryLimitBytes: memLimit})
				}},
				{"PLaNT", func() (*dist.Result, error) {
					return dist.PLaNT(p.ranked, dist.Options{Nodes: q, MemoryLimitBytes: memLimit})
				}},
				{"Hybrid", func() (*dist.Result, error) {
					return dist.Hybrid(p.ranked, dist.Options{
						Nodes: q, MemoryLimitBytes: memLimit, PsiThreshold: p.ds.PsiThreshold(),
					})
				}},
			} {
				res, err := algo.run()
				pt := Figure8Point{Dataset: ds.Name, Algorithm: algo.name, Nodes: q}
				if err != nil {
					if !errors.Is(err, dist.ErrOutOfMemory) {
						panic(err)
					}
					pt.OOM = true
				} else {
					pt.Modeled = modeledSeconds(cm, res)
					pt.Bytes = res.Metrics.BytesSent
					pt.Syncs = res.Metrics.Synchronizations
					pt.ALS = float64(res.Index.TotalLabels()) / float64(p.n)
				}
				out = append(out, pt)
			}
		}
	}
	return out
}

// WriteFigure8 renders the sweep.
func WriteFigure8(w io.Writer, pts []Figure8Point) {
	section(w, "Figure 8: strong scaling — modeled preprocessing time (s) vs cluster size")
	t := newTable("Dataset", "Algorithm", "q", "modeled(s)", "bytes", "syncs", "ALS")
	for _, p := range pts {
		if p.OOM {
			t.row(p.Dataset, p.Algorithm, p.Nodes, "OOM", "-", "-", "-")
			continue
		}
		t.row(p.Dataset, p.Algorithm, p.Nodes, p.Modeled, p.Bytes, p.Syncs, p.ALS)
	}
	t.write(w)
}

// Figure9Point is one (dataset, algorithm, q, ALS) sample.
type Figure9Point struct {
	Dataset   string
	Algorithm string
	Nodes     int
	ALS       float64
	OOM       bool
}

// Figure9 compares DparaPLL's average label size against Hybrid's over q.
func Figure9(cfg Config) []Figure9Point {
	cfg = cfg.Defaults()
	var out []Figure9Point
	for _, ds := range Suite(cfg.Full) {
		p := cfg.prepare(ds)
		for _, q := range ScalingQs(cfg.Full) {
			dres, err := dist.DParaPLL(p.ranked, dist.Options{Nodes: q})
			pt := Figure9Point{Dataset: ds.Name, Algorithm: "DparaPLL", Nodes: q}
			if err != nil {
				pt.OOM = true
			} else {
				pt.ALS = float64(dres.Index.TotalLabels()) / float64(p.n)
			}
			out = append(out, pt)
			hres, err := dist.Hybrid(p.ranked, dist.Options{Nodes: q, PsiThreshold: p.ds.PsiThreshold()})
			if err != nil {
				panic(err)
			}
			out = append(out, Figure9Point{
				Dataset: ds.Name, Algorithm: "Hybrid", Nodes: q,
				ALS: float64(hres.Index.TotalLabels()) / float64(p.n),
			})
		}
	}
	return out
}

// WriteFigure9 renders the sweep.
func WriteFigure9(w io.Writer, pts []Figure9Point) {
	section(w, "Figure 9: average label size vs cluster size — DparaPLL vs Hybrid")
	t := newTable("Dataset", "Algorithm", "q", "ALS")
	for _, p := range pts {
		if p.OOM {
			t.row(p.Dataset, p.Algorithm, p.Nodes, "OOM")
			continue
		}
		t.row(p.Dataset, p.Algorithm, p.Nodes, p.ALS)
	}
	t.write(w)
}

// defaultClusterCost is the cost model for modeled preprocessing times.
func defaultClusterCost() metrics.CostModel { return metrics.DefaultCostModel() }

// modeledSeconds converts a distributed result into modeled cluster time.
// BytesSent counts every replica a collective delivers (an AllGather of B
// bytes to q−1 peers is charged B×(q−1)); a pipelined MPI collective moves
// that payload in ~B wire time, so the model normalizes by q−1.
func modeledSeconds(cm metrics.CostModel, res *dist.Result) float64 {
	m := res.Metrics
	wireBytes := m.BytesSent
	if m.Nodes > 1 {
		wireBytes /= int64(m.Nodes - 1)
	}
	return cm.Modeled(m.MaxNodeExplored, m.MaxNodeQueries, m.Synchronizations, wireBytes)
}

package exp

import (
	"io"

	"repro/internal/dist"
	"repro/internal/gll"
	"repro/internal/lcc"
)

// The ablations quantify two design decisions DESIGN.md calls out:
//
//   - X2, the Common Label Table (§5.3): how much PLaNT exploration it
//     prunes and how much DGLL redundancy it prevents, for its O(η·n)
//     broadcast cost.
//   - X3, GLL's two-table scheme (§4.2): how many per-vertex lock
//     acquisitions the immutable global table avoids relative to LCC's
//     single locked store.

// CommonTableRow compares a distributed algorithm with and without the
// Common Label Table on one dataset.
type CommonTableRow struct {
	Dataset   string
	Algorithm string
	// Without (η disabled) vs With (η = 16).
	ExploredWithout, ExploredWith   int64
	GeneratedWithout, GeneratedWith int64
	BytesWithout, BytesWith         int64
}

// AblationCommonTableNodes is the cluster size used.
const AblationCommonTableNodes = 8

// AblationCommonTable runs the η ablation.
func AblationCommonTable(cfg Config) []CommonTableRow {
	cfg = cfg.Defaults()
	var rows []CommonTableRow
	for _, name := range figureDatasets() {
		ds, _ := ByName(name)
		p := cfg.prepare(ds)
		q := AblationCommonTableNodes

		pWithout, err := dist.PLaNT(p.ranked, dist.Options{Nodes: q, Eta: -1})
		if err != nil {
			panic(err)
		}
		pWith, err := dist.PLaNT(p.ranked, dist.Options{Nodes: q, Eta: dist.DefaultEta})
		if err != nil {
			panic(err)
		}
		rows = append(rows, CommonTableRow{
			Dataset: name, Algorithm: "PLaNT",
			ExploredWithout:  pWithout.Metrics.VerticesExplored,
			ExploredWith:     pWith.Metrics.VerticesExplored,
			GeneratedWithout: pWithout.Metrics.LabelsGenerated,
			GeneratedWith:    pWith.Metrics.LabelsGenerated,
			BytesWithout:     pWithout.Metrics.BytesSent,
			BytesWith:        pWith.Metrics.BytesSent,
		})

		dWithout, err := dist.DGLL(p.ranked, dist.Options{Nodes: q})
		if err != nil {
			panic(err)
		}
		dWith, err := dist.DGLL(p.ranked, dist.Options{Nodes: q, Eta: dist.DefaultEta})
		if err != nil {
			panic(err)
		}
		rows = append(rows, CommonTableRow{
			Dataset: name, Algorithm: "DGLL",
			ExploredWithout:  dWithout.Metrics.VerticesExplored,
			ExploredWith:     dWith.Metrics.VerticesExplored,
			GeneratedWithout: dWithout.Metrics.LabelsGenerated,
			GeneratedWith:    dWith.Metrics.LabelsGenerated,
			BytesWithout:     dWithout.Metrics.BytesSent,
			BytesWith:        dWith.Metrics.BytesSent,
		})
	}
	return rows
}

// WriteAblationCommonTable renders the rows.
func WriteAblationCommonTable(w io.Writer, rows []CommonTableRow) {
	section(w, "Ablation X2: Common Label Table (η=16) — exploration, generated labels and traffic")
	t := newTable("Dataset", "Algorithm", "explored η=0", "explored η=16", "generated η=0", "generated η=16", "bytes η=0", "bytes η=16")
	for _, r := range rows {
		t.row(r.Dataset, r.Algorithm, r.ExploredWithout, r.ExploredWith,
			r.GeneratedWithout, r.GeneratedWith, r.BytesWithout, r.BytesWith)
	}
	t.write(w)
}

// PlantFirstRow compares plain GLL against GLL with a PLaNTed first
// superstep (§5.4): the first superstep's cleaning disappears because
// PLaNT emits only canonical labels.
type PlantFirstRow struct {
	Dataset        string
	PlainCleanQs   int64
	PlantCleanQs   int64
	PlainGenerated int64
	PlantGenerated int64
}

// AblationPlantFirst runs the PLaNT-first GLL ablation.
func AblationPlantFirst(cfg Config) []PlantFirstRow {
	cfg = cfg.Defaults()
	var rows []PlantFirstRow
	for _, ds := range Suite(false) {
		p := cfg.prepare(ds)
		_, plain := gll.Run(p.ranked, gll.Options{Workers: cfg.Workers})
		_, pf := gll.RunPlantFirst(p.ranked, gll.Options{Workers: cfg.Workers})
		rows = append(rows, PlantFirstRow{
			Dataset:        ds.Name,
			PlainCleanQs:   plain.CleanQueries,
			PlantCleanQs:   pf.CleanQueries,
			PlainGenerated: plain.LabelsGenerated,
			PlantGenerated: pf.LabelsGenerated,
		})
	}
	return rows
}

// WriteAblationPlantFirst renders the rows.
func WriteAblationPlantFirst(w io.Writer, rows []PlantFirstRow) {
	section(w, "Ablation X4: GLL vs GLL with PLaNTed first superstep (§5.4)")
	t := newTable("Dataset", "clean queries", "clean queries (PLaNT-first)", "generated", "generated (PLaNT-first)")
	for _, r := range rows {
		t.row(r.Dataset, r.PlainCleanQs, r.PlantCleanQs, r.PlainGenerated, r.PlantGenerated)
	}
	t.write(w)
}

// TwoTableRow compares per-vertex label-store lock acquisitions between
// LCC's single concurrent table and GLL's global/local split.
type TwoTableRow struct {
	Dataset  string
	LCCLocks int64
	GLLLocks int64
}

// AblationTwoTables runs the lock-count ablation.
func AblationTwoTables(cfg Config) []TwoTableRow {
	cfg = cfg.Defaults()
	var rows []TwoTableRow
	for _, ds := range Suite(false) {
		p := cfg.prepare(ds)
		_, lm := lcc.Run(p.ranked, lcc.Options{Workers: cfg.Workers, Profile: true})
		_, gm := gll.Run(p.ranked, gll.Options{Workers: cfg.Workers, Profile: true})
		rows = append(rows, TwoTableRow{Dataset: ds.Name, LCCLocks: lm.LockAcquisitions, GLLLocks: gm.LockAcquisitions})
	}
	return rows
}

// WriteAblationTwoTables renders the rows.
func WriteAblationTwoTables(w io.Writer, rows []TwoTableRow) {
	section(w, "Ablation X3: per-vertex label-store lock acquisitions — LCC vs GLL (two tables)")
	t := newTable("Dataset", "LCC locks", "GLL locks", "reduction")
	for _, r := range rows {
		red := "-"
		if r.LCCLocks > 0 {
			red = formatFloat(1 - float64(r.GLLLocks)/float64(r.LCCLocks))
		}
		t.row(r.Dataset, r.LCCLocks, r.GLLLocks, red)
	}
	t.write(w)
}

package exp

import (
	"io"
	"math/rand"
	"time"

	"repro/internal/gll"
	"repro/internal/sssp"
)

// QueryBaselineRow quantifies the paper's motivating claim (§1): traversal
// algorithms answer PPSD queries orders of magnitude slower than a hub
// label merge-join. All four methods return identical (exact) distances —
// the tests assert it — so the comparison is purely about time per query.
type QueryBaselineRow struct {
	Dataset       string
	HubLabelNS    float64 // mean ns/query, label merge-join
	BidirectNS    float64 // bidirectional Dijkstra
	DijkstraNS    float64 // full single-source Dijkstra
	DeltaStepNS   float64 // delta-stepping
	SpeedupVsBest float64 // best traversal / hub label
}

// QueryBaselines measures per-query times on one road and one scale-free
// dataset (wall-clock is meaningful here: all methods are sequential
// single-query computations on the same box).
func QueryBaselines(cfg Config) []QueryBaselineRow {
	cfg = cfg.Defaults()
	var rows []QueryBaselineRow
	for _, name := range figureDatasets() {
		ds, _ := ByName(name)
		p := cfg.prepare(ds)
		ix, _ := gll.Run(p.ranked, gll.Options{Workers: cfg.Workers})
		rng := rand.New(rand.NewSource(cfg.Seed + 5))
		const queries = 64
		us := make([]int, queries)
		vs := make([]int, queries)
		for i := range us {
			us[i], vs[i] = rng.Intn(p.n), rng.Intn(p.n)
		}

		timeIt := func(fn func(u, v int) float64) float64 {
			//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
			start := time.Now()
			var sink float64
			for i := range us {
				sink += fn(us[i], vs[i])
			}
			_ = sink
			//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
			return float64(time.Since(start).Nanoseconds()) / queries
		}

		row := QueryBaselineRow{Dataset: name}
		row.HubLabelNS = timeIt(func(u, v int) float64 { return ix.Query(u, v) })
		row.BidirectNS = timeIt(func(u, v int) float64 { return sssp.PointToPoint(p.ranked, u, v) })
		row.DijkstraNS = timeIt(func(u, v int) float64 { return sssp.Dijkstra(p.ranked, u)[v] })
		row.DeltaStepNS = timeIt(func(u, v int) float64 { return sssp.DeltaStepping(p.ranked, u, 0)[v] })
		best := row.BidirectNS
		if row.DijkstraNS < best {
			best = row.DijkstraNS
		}
		if row.DeltaStepNS < best {
			best = row.DeltaStepNS
		}
		if row.HubLabelNS > 0 {
			row.SpeedupVsBest = best / row.HubLabelNS
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteQueryBaselines renders the comparison.
func WriteQueryBaselines(w io.Writer, rows []QueryBaselineRow) {
	section(w, "Intro claim: PPSD query cost — hub labels vs traversal algorithms (ns/query)")
	t := newTable("Dataset", "hub labels", "bidir Dijkstra", "Dijkstra", "delta-stepping", "speedup vs best traversal")
	for _, r := range rows {
		t.row(r.Dataset, r.HubLabelNS, r.BidirectNS, r.DijkstraNS, r.DeltaStepNS, r.SpeedupVsBest)
	}
	t.write(w)
}

package exp

import (
	"fmt"
	"io"
	"strings"
)

// table is a minimal fixed-width text table writer used by every
// experiment driver.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) row(cells ...any) {
	r := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			r[i] = v
		case float64:
			r[i] = formatFloat(v)
		case int:
			r[i] = fmt.Sprintf("%d", v)
		case int64:
			r[i] = fmt.Sprintf("%d", v)
		default:
			r[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, r)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6 || v < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n## %s\n\n", title)
}

// mb formats bytes as mebibytes.
func mb(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }

// bucketSeries compresses a per-tree series into log-spaced buckets (the
// figures plot thousands of trees; the text report shows the aggregate per
// bucket). agg is "sum" or "max".
func bucketSeries(series []int64, buckets int, agg string) []struct {
	Lo, Hi int
	Value  float64
} {
	n := len(series)
	if n == 0 {
		return nil
	}
	var out []struct {
		Lo, Hi int
		Value  float64
	}
	lo := 0
	size := 1
	for lo < n {
		hi := lo + size
		if hi > n {
			hi = n
		}
		var v float64
		for i := lo; i < hi; i++ {
			switch agg {
			case "max":
				if f := float64(series[i]); f > v {
					v = f
				}
			default:
				v += float64(series[i])
			}
		}
		if agg == "avg" {
			v /= float64(hi - lo)
		}
		out = append(out, struct {
			Lo, Hi int
			Value  float64
		}{lo, hi, v})
		lo = hi
		size *= 2
	}
	_ = buckets
	return out
}

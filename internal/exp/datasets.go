// Package exp is the evaluation harness: one driver per table and figure of
// the paper's §7, each printing the same rows/series the paper reports.
// Absolute numbers differ (the substrate is a laptop-scale simulation, not
// the authors' 36-core server and 64-node cluster — DESIGN.md §4), but the
// shapes the paper's claims rest on are asserted in exp's tests and
// recorded in EXPERIMENTS.md.
package exp

import (
	"math"

	"repro/internal/graph"
	"repro/internal/order"
)

// Dataset describes one synthetic stand-in for a paper dataset (Table 2).
type Dataset struct {
	// Name is the paper's dataset name (CAL, SKIT, ...).
	Name string
	// Description mirrors Table 2's description column.
	Description string
	// Kind is "road" or "scalefree"; it selects the ranking function and
	// the Ψth setting, as in §7.1.
	Kind string
	// Large marks datasets only included in -full runs (the paper's CTR,
	// USA, POK, LIJ rows, where even the authors' baselines time out).
	Large bool
	// Gen builds the graph at the given scale.
	Gen func(scale float64, seed int64) *graph.Graph
}

// PsiThreshold returns the Hybrid switch threshold for this dataset's
// topology (§7.1: "we set Ψth = 100 for scale-free networks and Ψth = 500
// for road networks").
func (d Dataset) PsiThreshold() float64 {
	if d.Kind == "road" {
		return 500
	}
	return 100
}

// Order computes the paper's ranking for this dataset: approximate
// betweenness for road networks, degree for scale-free networks (§7.1.1).
func (d Dataset) Order(g *graph.Graph, seed int64) *order.Order {
	if d.Kind == "road" {
		samples := 16
		if g.NumVertices() < samples {
			samples = g.NumVertices()
		}
		return order.ByApproxBetweenness(g, samples, seed)
	}
	return order.ByDegree(g)
}

func road(baseSide int) func(scale float64, seed int64) *graph.Graph {
	return func(scale float64, seed int64) *graph.Graph {
		side := int(float64(baseSide) * math.Sqrt(scale))
		if side < 4 {
			side = 4
		}
		return graph.RoadGrid(side, side, seed)
	}
}

func scalefree(baseN, k int) func(scale float64, seed int64) *graph.Graph {
	return func(scale float64, seed int64) *graph.Graph {
		n := int(float64(baseN) * scale)
		if n < 32 {
			n = 32
		}
		return graph.BarabasiAlbert(n, k, seed)
	}
}

// Suite returns the dataset suite in the paper's Table 2 order. The
// directed paper datasets (WND, BDU, POK, LIJ) are represented by
// undirected twins: every §7 experiment treats them through the undirected
// code path (the paper's algorithms are described for undirected graphs;
// directed support is exercised by dedicated tests instead — DESIGN.md §4).
func Suite(full bool) []Dataset {
	all := []Dataset{
		{Name: "CAL", Description: "California road network (twin)", Kind: "road", Gen: road(64)},
		{Name: "EAS", Description: "East USA road network (twin)", Kind: "road", Gen: road(88)},
		{Name: "CTR", Description: "Center USA road network (twin)", Kind: "road", Large: true, Gen: road(120)},
		{Name: "USA", Description: "Full USA road network (twin)", Kind: "road", Large: true, Gen: road(152)},
		{Name: "SKIT", Description: "Skitter AS links (twin)", Kind: "scalefree", Gen: scalefree(2048, 3)},
		{Name: "WND", Description: "Notre Dame web (undirected twin)", Kind: "scalefree", Gen: scalefree(3072, 5)},
		{Name: "AUT", Description: "Citeseer collaboration (twin)", Kind: "scalefree", Gen: scalefree(4096, 4)},
		{Name: "YTB", Description: "Youtube social network (twin)", Kind: "scalefree", Gen: scalefree(8192, 3)},
		{Name: "ACT", Description: "Actor collaboration (twin)", Kind: "scalefree", Gen: scalefree(3072, 12)},
		{Name: "BDU", Description: "Baidu hyperlinks (undirected twin)", Kind: "scalefree", Gen: scalefree(8192, 4)},
		{Name: "POK", Description: "Pokec social network (twin)", Kind: "scalefree", Large: true, Gen: scalefree(10240, 8)},
		{Name: "LIJ", Description: "LiveJournal (undirected twin)", Kind: "scalefree", Large: true, Gen: scalefree(16384, 5)},
	}
	if full {
		return all
	}
	out := all[:0:0]
	for _, d := range all {
		if !d.Large {
			out = append(out, d)
		}
	}
	return out
}

// ByName returns the named dataset from the full suite.
func ByName(name string) (Dataset, bool) {
	for _, d := range Suite(true) {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// Config controls an experiment run.
type Config struct {
	// Scale multiplies every dataset's baseline size (1 targets seconds
	// per experiment on a laptop).
	Scale float64
	// Seed feeds graph generation and rankings.
	Seed int64
	// Workers is the shared-memory thread count (0 = GOMAXPROCS).
	Workers int
	// Full includes the Large datasets and the q=64 scaling points.
	Full bool
	// QueryBatch is the number of queries for Table 4's throughput runs.
	QueryBatch int
	// LatencyQueries is the number of single-query latency samples.
	LatencyQueries int
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.QueryBatch <= 0 {
		c.QueryBatch = 100_000
	}
	if c.LatencyQueries <= 0 {
		c.LatencyQueries = 10_000
	}
	return c
}

// prepared is a dataset instantiated at a scale, in rank space.
type prepared struct {
	ds     Dataset
	g      *graph.Graph // original
	ranked *graph.Graph // permuted so id = rank
	n      int
}

func (c Config) prepare(ds Dataset) prepared {
	g := ds.Gen(c.Scale, c.Seed)
	ord := ds.Order(g, c.Seed)
	rg, _ := g.Permute(ord.Perm)
	return prepared{ds: ds, g: g, ranked: rg, n: g.NumVertices()}
}

// Package delta layers a mutable edge-patch overlay over a frozen hub
// labeling. The frozen index answers exact distances for the graph it
// was built from; the overlay tracks edges inserted, deleted, or
// reweighted since, and corrects queries so every answer is exact for
// the *patched* graph — without rebuilding labels.
//
// The scheme: a patch log of edge operations reduces (against the base
// graph) to a set R of removed edges and a set I of inserted edges; the
// patch vertices P are the endpoints of R ∪ I. Any shortest path in the
// patched graph G' = G − R + I decomposes into inserted edges and
// maximal segments that avoid every patched edge — and each such
// segment runs between members of {u} ∪ P ∪ {v}, so its length is the
// G−R distance between its endpoints. When no G-shortest path between a
// segment's endpoints threads a removed edge (the "safety" test below),
// that G−R distance equals the frozen label distance, and the corrected
// query is a Dijkstra over a tiny graph of |P|+2 nodes whose arcs are
// frozen distances plus inserted edges. When safety cannot be shown the
// overlay falls back to an exact Dijkstra on the materialized patched
// graph. Untouched pairs under an empty overlay never leave the frozen
// path, so their answers stay bit-identical.
//
// Safety test: a frozen value d(a,b) is possibly compromised iff some
// removal (x,y,w) satisfies d(a,x) + w + d(y,b) == d(a,b) (both
// orientations for undirected graphs) — i.e. a G-shortest a→b path may
// cross the removed edge. All the distances the test needs are between
// members of {a} ∪ P ∪ {b}, which are exactly the seeds the correction
// already has. Since a→x→(edge)→y→b is a real G-walk, the sum can never
// be below d(a,b); the test uses <= so float noise errs toward the
// exact fallback, never toward a wrong answer.
package delta

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/sssp"
)

// OpKind discriminates the three patch operations.
type OpKind uint8

const (
	// OpAdd inserts an edge that does not exist in the current state.
	OpAdd OpKind = iota
	// OpDel deletes an existing edge.
	OpDel
	// OpSet reweights an existing edge.
	OpSet
)

// Op is one edge operation in a patch log. U and V are original vertex
// ids; W is the new weight for OpAdd and OpSet (ignored for OpDel).
type Op struct {
	Kind OpKind
	U, V int
	W    float64
}

// String renders the op in patch-log line format.
func (op Op) String() string {
	switch op.Kind {
	case OpDel:
		return fmt.Sprintf("del %d %d", op.U, op.V)
	case OpSet:
		return fmt.Sprintf("set %d %d %s", op.U, op.V, strconv.FormatFloat(op.W, 'g', -1, 64))
	default:
		return fmt.Sprintf("add %d %d %s", op.U, op.V, strconv.FormatFloat(op.W, 'g', -1, 64))
	}
}

// ParsePatchLog parses the text patch-log format: one op per line —
// "add u v w", "del u v", "set u v w" — with blank lines and '#'
// comments ignored. Vertex ids must be non-negative (range checking
// against a concrete graph happens at apply time); weights must be
// positive and finite. The parser is fuzzed; it must never panic on
// hostile input.
func ParsePatchLog(b []byte) ([]Op, error) {
	var ops []Op
	for ln, line := range strings.Split(string(b), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		var (
			op   Op
			want int
		)
		switch f[0] {
		case "add":
			op.Kind, want = OpAdd, 4
		case "del":
			op.Kind, want = OpDel, 3
		case "set":
			op.Kind, want = OpSet, 4
		default:
			return nil, fmt.Errorf("delta: line %d: unknown op %q (want add|del|set)", ln+1, f[0])
		}
		if len(f) != want {
			return nil, fmt.Errorf("delta: line %d: %s takes %d fields, got %d", ln+1, f[0], want-1, len(f)-1)
		}
		u, err1 := strconv.Atoi(f[1])
		v, err2 := strconv.Atoi(f[2])
		if err1 != nil || err2 != nil || u < 0 || v < 0 {
			return nil, fmt.Errorf("delta: line %d: bad vertex ids %q %q", ln+1, f[1], f[2])
		}
		if u == v {
			return nil, fmt.Errorf("delta: line %d: self loop (%d,%d)", ln+1, u, v)
		}
		op.U, op.V = u, v
		if want == 4 {
			w, err := strconv.ParseFloat(f[3], 64)
			if err != nil || !(w > 0) || w > 1e308 {
				return nil, fmt.Errorf("delta: line %d: bad weight %q (want positive finite)", ln+1, f[3])
			}
			op.W = w
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// FormatPatchLog renders ops in the text format ParsePatchLog reads;
// Format∘Parse is the identity on valid logs modulo comments and
// whitespace.
func FormatPatchLog(ops []Op) []byte {
	var b bytes.Buffer
	for _, op := range ops {
		b.WriteString(op.String())
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// LogHash returns a 53-bit, never-zero FNV-1a hash of the canonical
// text rendering of ops — the patch half of a patched snapshot's
// identity. Two processes that replay the same journal over the same
// index file agree on it.
func LogHash(ops []Op) uint64 {
	h := fnv.New64a()
	h.Write(FormatPatchLog(ops))
	s := h.Sum64() & (1<<53 - 1)
	if s == 0 {
		s = 1
	}
	return s
}

// AppendJournal appends ops to the patch journal at path (creating it
// if needed) and syncs, so an accepted /update batch survives a crash.
func AppendJournal(path string, ops []Op) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(FormatPatchLog(ops)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJournal parses the journal at path; a missing file is an empty
// journal, not an error.
func ReadJournal(path string) ([]Op, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return ParsePatchLog(b)
}

// TruncateJournal empties the journal after a compaction folded its ops
// into a fresh snapshot. A missing file is fine.
func TruncateJournal(path string) error {
	err := os.Truncate(path, 0)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// edgeKey identifies one edge: ordered for directed graphs, normalized
// u<v for undirected ones.
type edgeKey struct{ u, v int }

// removal is one edge of R in patch-vertex slot space.
type removal struct {
	x, y int // slots of the removed edge's endpoints
	w    float64
}

// insArc is one inserted arc out of a patch vertex, in slot space.
type insArc struct {
	to int
	w  float64
}

// Reduction is the patch log reduced against a base graph: the final
// edge state of every touched key, the removal/insertion diff, and the
// patch-vertex universe. It is the cheap, shard-free half of overlay
// construction — building the Overlay on top additionally needs frozen
// distances between patch vertices (a PairQuerier).
type Reduction struct {
	base     *graph.Graph
	directed bool
	verts    []int       // sorted patch vertex ids (endpoints of R ∪ I)
	slot     map[int]int // vertex id -> index into verts
	removals []removal
	inserts  [][]insArc          // slot -> inserted arcs out of it
	override map[edgeKey]float64 // final weight of touched keys still present
	touched  map[edgeKey]bool
	nRem     int
	nIns     int
}

func (r *Reduction) key(u, v int) edgeKey {
	if !r.directed && u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// Reduce validates ops in order against base (add requires the edge
// absent, del/set require it present — each judged against the state
// left by the preceding ops) and diffs the final state against base
// into removals and insertions. A reweight is a removal of the old
// weight plus an insertion of the new one; ops that cancel out vanish.
func Reduce(base *graph.Graph, ops []Op) (*Reduction, error) {
	if base == nil {
		return nil, fmt.Errorf("delta: nil base graph")
	}
	n := base.NumVertices()
	r := &Reduction{
		base:     base,
		directed: base.Directed(),
		slot:     map[int]int{},
		override: map[edgeKey]float64{},
		touched:  map[edgeKey]bool{},
	}
	// Final edge state per touched key, carried op to op.
	type state struct {
		w       float64
		present bool
	}
	cur := map[edgeKey]state{}
	lookup := func(k edgeKey) state {
		if st, ok := cur[k]; ok {
			return st
		}
		w, has := base.HasEdge(k.u, k.v)
		return state{w: w, present: has}
	}
	for i, op := range ops {
		if op.U < 0 || op.U >= n || op.V < 0 || op.V >= n {
			return nil, fmt.Errorf("delta: op %d (%s): vertex out of range [0,%d)", i, op.String(), n)
		}
		if op.U == op.V {
			return nil, fmt.Errorf("delta: op %d (%s): self loop", i, op.String())
		}
		k := r.key(op.U, op.V)
		st := lookup(k)
		switch op.Kind {
		case OpAdd:
			if st.present {
				return nil, fmt.Errorf("delta: op %d (%s): edge exists (use set)", i, op.String())
			}
			if !(op.W > 0) {
				return nil, fmt.Errorf("delta: op %d (%s): non-positive weight", i, op.String())
			}
			cur[k] = state{w: op.W, present: true}
		case OpDel:
			if !st.present {
				return nil, fmt.Errorf("delta: op %d (%s): edge does not exist", i, op.String())
			}
			cur[k] = state{present: false}
		case OpSet:
			if !st.present {
				return nil, fmt.Errorf("delta: op %d (%s): edge does not exist (use add)", i, op.String())
			}
			if !(op.W > 0) {
				return nil, fmt.Errorf("delta: op %d (%s): non-positive weight", i, op.String())
			}
			cur[k] = state{w: op.W, present: true}
		default:
			return nil, fmt.Errorf("delta: op %d: unknown kind %d", i, op.Kind)
		}
	}
	// Deterministic order: maps must not leak iteration order into the
	// overlay (its hash, vertex numbering, and journal replay all
	// depend on determinism).
	keys := make([]edgeKey, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].u != keys[j].u {
			return keys[i].u < keys[j].u
		}
		return keys[i].v < keys[j].v
	})
	type diffEdge struct {
		u, v int
		w    float64
	}
	var rem, ins []diffEdge
	seen := map[int]bool{}
	for _, k := range keys {
		st := cur[k]
		r.touched[k] = true
		if st.present {
			r.override[k] = st.w
		}
		bw, bhas := base.HasEdge(k.u, k.v)
		if bhas && (!st.present || st.w != bw) {
			rem = append(rem, diffEdge{k.u, k.v, bw})
			seen[k.u], seen[k.v] = true, true
		}
		if st.present && (!bhas || st.w != bw) {
			ins = append(ins, diffEdge{k.u, k.v, st.w})
			seen[k.u], seen[k.v] = true, true
		}
	}
	for v := range seen {
		r.verts = append(r.verts, v)
	}
	sort.Ints(r.verts)
	for i, v := range r.verts {
		r.slot[v] = i
	}
	r.inserts = make([][]insArc, len(r.verts))
	for _, e := range rem {
		r.removals = append(r.removals, removal{x: r.slot[e.u], y: r.slot[e.v], w: e.w})
	}
	for _, e := range ins {
		su, sv := r.slot[e.u], r.slot[e.v]
		r.inserts[su] = append(r.inserts[su], insArc{to: sv, w: e.w})
		if !r.directed {
			r.inserts[sv] = append(r.inserts[sv], insArc{to: su, w: e.w})
		}
	}
	r.nRem, r.nIns = len(rem), len(ins)
	return r, nil
}

// Verts returns the sorted patch vertex ids.
func (r *Reduction) Verts() []int { return r.verts }

// Empty reports whether the reduction changes nothing: every op
// cancelled out, so queries can stay on the frozen path.
func (r *Reduction) Empty() bool { return r.nRem == 0 && r.nIns == 0 }

// Materialize builds the patched graph G' = base − R + I.
func (r *Reduction) Materialize() (*graph.Graph, error) {
	b := graph.NewBuilder(r.base.NumVertices(), r.directed)
	for u := 0; u < r.base.NumVertices(); u++ {
		heads, wts := r.base.Neighbors(u)
		for i, h := range heads {
			v := int(h)
			if !r.directed && u > v {
				continue // each undirected edge once; the builder mirrors it
			}
			if r.touched[r.key(u, v)] {
				continue
			}
			b.AddEdge(u, v, wts[i])
		}
	}
	for k, w := range r.override {
		b.AddEdge(k.u, k.v, w)
	}
	return b.Finish()
}

// ApplyPatch applies a patch log to a graph and returns the patched
// graph — the reference mutation tests and compaction both build on.
func ApplyPatch(base *graph.Graph, ops []Op) (*graph.Graph, error) {
	red, err := Reduce(base, ops)
	if err != nil {
		return nil, err
	}
	return red.Materialize()
}

// PairQuerier returns the frozen (label) shortest distance between two
// original vertex ids, graph.Infinity when unreachable. The overlay
// build calls it O(|P|²) times to pin inter-patch-vertex distances.
type PairQuerier func(u, v int) float64

// Overlay is one immutable patch generation: a Reduction plus the
// distance tables the seeded correction needs — frozen inter-patch
// distances for the safety test, exact patched inter-patch distances
// (|P| build-time Dijkstras) for the correction graph's arcs. Build a
// new one per accepted batch; queries against an old one stay
// consistent with the snapshot it was built over.
type Overlay struct {
	*Reduction
	ops   []Op
	epoch uint64
	hash  uint64
	dpq   [][]float64 // frozen d_G(verts[i], verts[j]) — safety test only
	dpp   [][]float64 // exact patched d'(verts[i], verts[j]) — correction arcs

	patchedOnce sync.Once
	patched     *graph.Graph
	patchedErr  error
}

// NewOverlay builds the overlay for ops (already reduced to red) with
// frozen distances supplied by q. epoch tags the patch generation for
// cache keying; ops is the full accumulated log (its LogHash becomes
// the overlay's identity contribution). Construction runs one Dijkstra
// per patch vertex on the materialized patched graph — the one-time
// cost that makes per-query corrections exact without any inter-patch
// safety caveat.
func NewOverlay(red *Reduction, ops []Op, epoch uint64, q PairQuerier) (*Overlay, error) {
	o := &Overlay{Reduction: red, ops: ops, epoch: epoch, hash: LogHash(ops)}
	k := len(red.verts)
	o.dpq = make([][]float64, k)
	for i := 0; i < k; i++ {
		o.dpq[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			switch {
			case i == j:
				o.dpq[i][j] = 0
			case !red.directed && j < i:
				o.dpq[i][j] = o.dpq[j][i]
			default:
				o.dpq[i][j] = q(red.verts[i], red.verts[j])
			}
		}
	}
	pg, err := o.Patched()
	if err != nil {
		return nil, err
	}
	o.dpp = make([][]float64, k)
	for i := 0; i < k; i++ {
		row := sssp.Dijkstra(pg, red.verts[i])
		o.dpp[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			o.dpp[i][j] = row[red.verts[j]]
		}
	}
	return o, nil
}

// Epoch returns the patch generation this overlay was applied at.
func (o *Overlay) Epoch() uint64 { return o.epoch }

// Hash returns the 53-bit identity of the accumulated patch log.
func (o *Overlay) Hash() uint64 { return o.hash }

// Ops returns the accumulated patch log the overlay was built from.
func (o *Overlay) Ops() []Op { return o.ops }

// Stats describes the overlay's size for /stats and logs.
type Stats struct {
	Epoch    uint64 `json:"epoch"`
	Ops      int    `json:"ops"`
	Vertices int    `json:"patch_vertices"`
	Removals int    `json:"removed_edges"`
	Inserts  int    `json:"inserted_edges"`
	LogHash  uint64 `json:"log_hash"`
}

// Stat returns the overlay's shape.
func (o *Overlay) Stat() Stats {
	return Stats{
		Epoch:    o.epoch,
		Ops:      len(o.ops),
		Vertices: len(o.verts),
		Removals: o.nRem,
		Inserts:  o.nIns,
		LogHash:  o.hash,
	}
}

// compromised reports whether the frozen value dab for a pair (a,b) may
// count a removed edge: some removal (x,y,w) with d(a,x)+w+d(y,b) <=
// dab means a G-shortest a→b path may thread it, so dab is not provably
// the G−R distance. dax[x] must hold the frozen d(a, verts[x]); dyb(y)
// the frozen d(verts[y], b). Unreachable pairs are always safe —
// removing edges cannot create paths.
func (o *Overlay) compromised(dab float64, dax []float64, dyb func(int) float64) bool {
	if dab >= graph.Infinity {
		return false
	}
	for _, rm := range o.removals {
		if dax[rm.x]+rm.w+dyb(rm.y) <= dab {
			return true
		}
		if !o.directed && dax[rm.y]+rm.w+dyb(rm.x) <= dab {
			return true
		}
	}
	return false
}

// Correct computes the patched distance for one pair from its frozen
// seeds: d0 is the frozen pair distance, du[i] the frozen d(u,
// verts[i]), dv[i] the frozen d(verts[i], v) (all graph.Infinity when
// unreachable). It runs Dijkstra over the |P|+2-node correction graph:
// seed arcs u→p and p→v, the frozen u→v arc, and exact patched
// distances between patch vertices. A patched shortest path decomposes
// at its first and last patch-vertex visit — the prefix and suffix
// cross no patched edge (any patched edge would visit a patch vertex
// first), so safe frozen seeds cover them exactly, and the build-time
// dpp table covers the middle exactly.
//
// The exactness argument runs through a bracket. A frozen seed is
// always d_G ≤ d_{G−R}, so the correction Dijkstra over ALL frozen
// seeds is a lower bound L ≤ d'. A seed that passes the safety test
// equals d_{G−R} and is realizable in G', so the correction Dijkstra
// over only the SAFE seeds is an upper bound C ≥ d'. When L == C the
// answer is pinned exactly; only when a compromised seed actually moves
// the optimum (L < C) does the query fall back — so ubiquitous
// shortest-path ties in small integer-weighted graphs do not force
// everything onto the fallback path.
//
// exact=false means the bracket did not close and the caller must fall
// back to Dist/Row on the materialized patched graph. When exact,
// frozen reports whether the corrected distance equals a safe d0 — the
// license to keep serving the frozen witness hub.
func (o *Overlay) Correct(d0 float64, du, dv []float64) (dist float64, frozen, exact bool) {
	k := len(o.verts)
	d0Bad := o.compromised(d0, du, func(y int) float64 { return dv[y] })
	var duBad, dvBad []bool
	for j := 0; j < k; j++ {
		if o.compromised(du[j], du, func(y int) float64 { return o.dpq[y][j] }) {
			if duBad == nil {
				duBad = make([]bool, k)
			}
			duBad[j] = true
		}
		if o.compromised(dv[j], o.dpq[j], func(y int) float64 { return dv[y] }) {
			if dvBad == nil {
				dvBad = make([]bool, k)
			}
			dvBad[j] = true
		}
	}
	upper := o.correctionDijkstra(d0, du, dv, d0Bad, duBad, dvBad)
	lower := upper
	if d0Bad || duBad != nil || dvBad != nil {
		lower = o.correctionDijkstra(d0, du, dv, false, nil, nil)
	}
	if lower != upper {
		return 0, false, false
	}
	return upper, upper < graph.Infinity && !d0Bad && upper == d0, true
}

// correctionDijkstra runs the dense Dijkstra over nodes {0:u, 1..k:
// patch verts, k+1: v}; skip flags drop the corresponding frozen seed
// arc (nil = keep all).
func (o *Overlay) correctionDijkstra(d0 float64, du, dv []float64, skipD0 bool, skipU, skipV []bool) float64 {
	const inf = graph.Infinity
	k := len(o.verts)
	t := k + 1
	d := make([]float64, k+2)
	done := make([]bool, k+2)
	for i := range d {
		d[i] = inf
	}
	d[0] = 0
	for {
		at, best := -1, inf
		for i, dd := range d {
			if !done[i] && dd < best {
				at, best = i, dd
			}
		}
		if at < 0 || at == t {
			break
		}
		done[at] = true
		relax := func(to int, w float64) {
			if w < inf && best+w < d[to] {
				d[to] = best + w
			}
		}
		switch {
		case at == 0:
			for j := 0; j < k; j++ {
				if skipU == nil || !skipU[j] {
					relax(j+1, du[j])
				}
			}
			if !skipD0 {
				relax(t, d0)
			}
		default:
			i := at - 1
			for j := 0; j < k; j++ {
				relax(j+1, o.dpp[i][j])
			}
			if skipV == nil || !skipV[i] {
				relax(t, dv[i])
			}
		}
	}
	return d[t]
}

// Patched returns the lazily materialized patched graph, shared by
// every fallback path of this overlay.
func (o *Overlay) Patched() (*graph.Graph, error) {
	o.patchedOnce.Do(func() {
		o.patched, o.patchedErr = o.Materialize()
	})
	return o.patched, o.patchedErr
}

// Row returns the full single-source distance row from u on the patched
// graph — the exact fallback when a frozen seed is unsafe, and the
// source of /knn and /matrix rows under an overlay.
func (o *Overlay) Row(u int) ([]float64, error) {
	g, err := o.Patched()
	if err != nil {
		return nil, err
	}
	return sssp.Dijkstra(g, u), nil
}

// Dist returns the exact patched distance for one pair via the fallback
// Dijkstra.
func (o *Overlay) Dist(u, v int) (float64, error) {
	row, err := o.Row(u)
	if err != nil {
		return 0, err
	}
	return row[v], nil
}

// ShortestPath returns an exact shortest u→v vertex walk on the patched
// graph (nil when unreachable) and its length — the /paths workload
// under an overlay, where witness-hub expansion is unavailable.
func (o *Overlay) ShortestPath(u, v int) ([]int, float64, error) {
	g, err := o.Patched()
	if err != nil {
		return nil, 0, err
	}
	dist, pred := dijkstraPred(g, u)
	if dist[v] >= graph.Infinity {
		return nil, graph.Infinity, nil
	}
	var path []int
	for at := v; ; at = pred[at] {
		path = append(path, at)
		if at == u {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[v], nil
}

// dijkstraPred is Dijkstra with predecessor tracking, on a lazy-deletion
// binary heap like the sssp package's kernels.
func dijkstraPred(g *graph.Graph, source int) (dist []float64, pred []int) {
	n := g.NumVertices()
	dist = make([]float64, n)
	pred = make([]int, n)
	for i := range dist {
		dist[i] = graph.Infinity
		pred[i] = -1
	}
	dist[source] = 0
	type qitem struct {
		d float64
		v int
	}
	h := []qitem{{0, source}}
	push := func(it qitem) {
		h = append(h, it)
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if h[p].d <= h[i].d {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
	}
	pop := func() qitem {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && h[l].d < h[small].d {
				small = l
			}
			if r < last && h[r].d < h[small].d {
				small = r
			}
			if small == i {
				break
			}
			h[small], h[i] = h[i], h[small]
			i = small
		}
		return top
	}
	for len(h) > 0 {
		it := pop()
		if it.d > dist[it.v] {
			continue
		}
		heads, wts := g.Neighbors(it.v)
		for i, hd := range heads {
			nd := it.d + wts[i]
			if nd < dist[hd] {
				dist[hd] = nd
				pred[hd] = it.v
				push(qitem{nd, int(hd)})
			}
		}
	}
	return dist, pred
}

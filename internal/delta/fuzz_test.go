package delta

import (
	"testing"
)

// fuzzSeeds is the regression corpus for the patch-log parser: every
// op kind, comments, blank lines, float weights, and a spread of the
// malformed shapes the parser must reject without panicking.
var fuzzSeeds = []string{
	"",
	"add 1 2 3\n",
	"del 4 5\n",
	"set 0 9 7.25\n",
	"# comment only\n\n",
	"add 1 2 3 # trailing\ndel 1 2\n",
	"add 1 2 3.5e2\n",
	"add 0 1 0.0001\nset 0 1 1e9\ndel 0 1\n",
	"frob 1 2 3\n",
	"add 1 2\n",
	"add -1 2 3\n",
	"add 1 1 3\n",
	"add 1 2 -5\n",
	"add 1 2 NaN\n",
	"add 1 2 Inf\n",
	"add 99999999999999999999 2 3\n",
	"set one two three\n",
	"\x00\xff\n",
}

// FuzzParsePatchLog drives the patch-log parser with arbitrary bytes:
// it must never panic, and on accepted input the canonical rendering
// must round-trip to the same ops (parse ∘ format ∘ parse = parse).
func FuzzParsePatchLog(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := ParsePatchLog(data)
		if err != nil {
			return
		}
		for _, op := range ops {
			if op.U < 0 || op.V < 0 || op.U == op.V {
				t.Fatalf("accepted op with bad endpoints: %+v", op)
			}
			if op.Kind != OpDel && !(op.W > 0) {
				t.Fatalf("accepted op with non-positive weight: %+v", op)
			}
		}
		again, err := ParsePatchLog(FormatPatchLog(ops))
		if err != nil {
			t.Fatalf("canonical rendering failed to re-parse: %v", err)
		}
		if len(again) != len(ops) {
			t.Fatalf("round trip changed op count: %d -> %d", len(ops), len(again))
		}
		for i := range ops {
			if again[i] != ops[i] {
				t.Fatalf("round trip changed op %d: %+v -> %+v", i, ops[i], again[i])
			}
		}
	})
}

package delta

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/sssp"
)

func TestParsePatchLog(t *testing.T) {
	ops, err := ParsePatchLog([]byte("# patch\nadd 1 2 3.5\n\ndel 4 5 # trailing comment\nset 0 9 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{{OpAdd, 1, 2, 3.5}, {OpDel, 4, 5, 0}, {OpSet, 0, 9, 7}}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("op %d: got %+v want %+v", i, ops[i], want[i])
		}
	}
	// Round trip through the canonical rendering.
	again, err := ParsePatchLog(FormatPatchLog(ops))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("round trip op %d: got %+v want %+v", i, again[i], want[i])
		}
	}
}

func TestParsePatchLogRejects(t *testing.T) {
	for _, bad := range []string{
		"frob 1 2",     // unknown op
		"add 1 2",      // missing weight
		"add 1 2 3 4",  // extra field
		"del 1",        // missing vertex
		"add -1 2 3",   // negative id
		"add 1 1 3",    // self loop
		"add 1 2 0",    // zero weight
		"add 1 2 -3",   // negative weight
		"add 1 2 +Inf", // non-finite weight
		"add 1 2 NaN",  // NaN weight
		"set one 2 3",  // non-numeric id
	} {
		if _, err := ParsePatchLog([]byte(bad)); err == nil {
			t.Errorf("ParsePatchLog(%q): want error, got none", bad)
		}
	}
}

func line(t *testing.T, s string) []Op {
	t.Helper()
	ops, err := ParsePatchLog([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return ops
}

// pathGraph builds 0-1-2-...-(n-1) with unit weights.
func pathGraph(n int, directed bool) *graph.Graph {
	b := graph.NewBuilder(n, directed)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	return b.MustFinish()
}

func TestReduceValidation(t *testing.T) {
	g := pathGraph(4, false)
	for _, bad := range []string{
		"add 0 1 5",            // exists
		"del 0 2",              // absent
		"set 0 3 2",            // absent
		"add 0 9 1",            // out of range
		"add 0 3 1\nadd 0 3 2", // second add sees the first
		"del 0 1\ndel 0 1",     // second del sees the first
	} {
		if _, err := Reduce(g, line(t, bad)); err == nil {
			t.Errorf("Reduce(%q): want error, got none", bad)
		}
	}
	// Ops judged against accumulated state, and cancelling ops vanish.
	red, err := Reduce(g, line(t, "del 0 1\nadd 0 1 1"))
	if err != nil {
		t.Fatal(err)
	}
	if !red.Empty() {
		t.Fatalf("del+add of the same edge/weight should reduce to empty, got %d verts", len(red.Verts()))
	}
	red, err = Reduce(g, line(t, "set 1 2 9\nset 1 2 1"))
	if err != nil {
		t.Fatal(err)
	}
	if !red.Empty() {
		t.Fatal("set back to the original weight should reduce to empty")
	}
	// A reweight is one removal plus one insertion.
	red, err = Reduce(g, line(t, "set 1 2 9"))
	if err != nil {
		t.Fatal(err)
	}
	if red.nRem != 1 || red.nIns != 1 {
		t.Fatalf("reweight: got %d removals %d inserts, want 1 and 1", red.nRem, red.nIns)
	}
}

func TestLogHashDeterministic(t *testing.T) {
	ops := line(t, "add 1 2 3\ndel 3 4")
	if LogHash(ops) != LogHash(ops) {
		t.Fatal("LogHash not deterministic")
	}
	if LogHash(ops) == LogHash(ops[:1]) {
		t.Fatal("different logs should hash differently")
	}
	if LogHash(nil) == 0 || LogHash(ops)&^(1<<53-1) != 0 {
		t.Fatal("LogHash must be 53-bit and never zero")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "patch.log")
	if ops, err := ReadJournal(path); err != nil || ops != nil {
		t.Fatalf("missing journal: got %v, %v", ops, err)
	}
	first := line(t, "add 1 2 3")
	second := line(t, "del 1 2\nset 4 5 6")
	if err := AppendJournal(path, first); err != nil {
		t.Fatal(err)
	}
	if err := AppendJournal(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Op{}, first...), second...)
	if len(got) != len(want) {
		t.Fatalf("replayed %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if err := TruncateJournal(path); err != nil {
		t.Fatal(err)
	}
	if ops, err := ReadJournal(path); err != nil || len(ops) != 0 {
		t.Fatalf("truncated journal: got %v, %v", ops, err)
	}
}

// oracle memoizes exact Dijkstra rows on one graph.
type oracle struct {
	g    *graph.Graph
	rows map[int][]float64
}

func newOracle(g *graph.Graph) *oracle { return &oracle{g: g, rows: map[int][]float64{}} }

func (o *oracle) row(u int) []float64 {
	r, ok := o.rows[u]
	if !ok {
		r = sssp.Dijkstra(o.g, u)
		o.rows[u] = r
	}
	return r
}

func (o *oracle) dist(u, v int) float64 { return o.row(u)[v] }

// randomOps derives a valid mixed batch (dels and reweights of existing
// edges, adds of absent ones) from g, deterministically per seed.
func randomOps(g *graph.Graph, seed int64, nDel, nSet, nAdd int) []Op {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	type edge struct {
		u, v int
	}
	var edges []edge
	for u := 0; u < n; u++ {
		heads, _ := g.Neighbors(u)
		for _, h := range heads {
			v := int(h)
			if g.Directed() || u < v {
				edges = append(edges, edge{u, v})
			}
		}
	}
	used := map[edge]bool{}
	var ops []Op
	for len(ops) < nDel+nSet && len(used) < len(edges) {
		e := edges[rng.Intn(len(edges))]
		if used[e] {
			continue
		}
		used[e] = true
		if len(ops) < nDel {
			ops = append(ops, Op{Kind: OpDel, U: e.u, V: e.v})
		} else {
			ops = append(ops, Op{Kind: OpSet, U: e.u, V: e.v, W: float64(1 + rng.Intn(9))})
		}
	}
	for added := 0; added < nAdd; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		e := edge{u, v}
		if !g.Directed() && u > v {
			e = edge{v, u}
		}
		if used[e] {
			continue
		}
		if _, has := g.HasEdge(u, v); has {
			continue
		}
		used[e] = true
		ops = append(ops, Op{Kind: OpAdd, U: e.u, V: e.v, W: float64(1 + rng.Intn(9))})
		added++
	}
	return ops
}

// TestOverlayExact is the package's core correctness check: over random
// graphs and random mixed patches, the seeded correction (or, when it
// declines, the fallback) must agree exactly with Dijkstra on the
// patched graph for every vertex pair.
func TestOverlayExact(t *testing.T) {
	for _, tc := range []struct {
		name     string
		directed bool
	}{{"undirected", false}, {"directed", true}} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				var g *graph.Graph
				if tc.directed {
					g = graph.RandomDirected(60, 240, 9, seed)
				} else {
					g = graph.ErdosRenyi(60, 140, 9, seed)
				}
				ops := randomOps(g, seed*101, 3, 3, 4)
				red, err := Reduce(g, ops)
				if err != nil {
					t.Fatal(err)
				}
				frozen := newOracle(g)
				ov, err := NewOverlay(red, ops, 1, frozen.dist)
				if err != nil {
					t.Fatal(err)
				}
				pg, err := ov.Patched()
				if err != nil {
					t.Fatal(err)
				}
				want := newOracle(pg)
				verts := ov.Verts()
				n := g.NumVertices()
				exactCount, fallbackCount := 0, 0
				for u := 0; u < n; u++ {
					du := make([]float64, len(verts))
					for i, p := range verts {
						du[i] = frozen.dist(u, p)
					}
					for v := 0; v < n; v++ {
						dv := make([]float64, len(verts))
						for i, p := range verts {
							dv[i] = frozen.dist(p, v)
						}
						got, _, exact := ov.Correct(frozen.dist(u, v), du, dv)
						if !exact {
							fallbackCount++
							if got, err = ov.Dist(u, v); err != nil {
								t.Fatal(err)
							}
						} else {
							exactCount++
						}
						if w := want.dist(u, v); got != w {
							t.Fatalf("seed %d d'(%d,%d): got %v want %v (exact=%v)", seed, u, v, got, w, exact)
						}
					}
				}
				if exactCount == 0 {
					t.Fatalf("seed %d: every pair fell back — the seeded correction never ran", seed)
				}
				t.Logf("seed %d: %d corrected, %d fell back", seed, exactCount, fallbackCount)
			}
		})
	}
}

// TestOverlayFrozenFlag: when the correction says the frozen answer
// survives, the frozen distance must equal the patched one — that flag
// licenses serving the frozen witness hub.
func TestOverlayFrozenFlag(t *testing.T) {
	g := graph.ErdosRenyi(50, 120, 9, 7)
	ops := randomOps(g, 77, 2, 2, 3)
	red, err := Reduce(g, ops)
	if err != nil {
		t.Fatal(err)
	}
	frozen := newOracle(g)
	ov, err := NewOverlay(red, ops, 1, frozen.dist)
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := ov.Patched()
	want := newOracle(pg)
	verts := ov.Verts()
	for u := 0; u < 50; u++ {
		du := make([]float64, len(verts))
		for i, p := range verts {
			du[i] = frozen.dist(u, p)
		}
		for v := 0; v < 50; v++ {
			dv := make([]float64, len(verts))
			for i, p := range verts {
				dv[i] = frozen.dist(p, v)
			}
			d0 := frozen.dist(u, v)
			got, frozenOK, exact := ov.Correct(d0, du, dv)
			if exact && frozenOK && (got != d0 || got != want.dist(u, v)) {
				t.Fatalf("(%d,%d): frozen flag set but corrected=%v frozen=%v patched=%v",
					u, v, got, d0, want.dist(u, v))
			}
		}
	}
}

func TestShortestPathOnPatched(t *testing.T) {
	g := graph.ErdosRenyi(40, 90, 9, 3)
	ops := randomOps(g, 5, 2, 2, 3)
	red, err := Reduce(g, ops)
	if err != nil {
		t.Fatal(err)
	}
	frozen := newOracle(g)
	ov, err := NewOverlay(red, ops, 1, frozen.dist)
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := ov.Patched()
	want := newOracle(pg)
	for u := 0; u < 40; u += 3 {
		for v := 0; v < 40; v += 7 {
			path, d, err := ov.ShortestPath(u, v)
			if err != nil {
				t.Fatal(err)
			}
			w := want.dist(u, v)
			if w >= graph.Infinity {
				if path != nil {
					t.Fatalf("(%d,%d): unreachable but got path %v", u, v, path)
				}
				continue
			}
			if d != w {
				t.Fatalf("(%d,%d): path length %v, want %v", u, v, d, w)
			}
			if path[0] != u || path[len(path)-1] != v {
				t.Fatalf("(%d,%d): endpoints wrong: %v", u, v, path)
			}
			var sum float64
			for i := 0; i+1 < len(path); i++ {
				ew, has := pg.HasEdge(path[i], path[i+1])
				if !has {
					t.Fatalf("(%d,%d): leg (%d,%d) is not a patched edge", u, v, path[i], path[i+1])
				}
				sum += ew
			}
			if sum != w {
				t.Fatalf("(%d,%d): legs sum to %v, want %v", u, v, sum, w)
			}
		}
	}
}

func TestMaterializeMatchesHandApplied(t *testing.T) {
	g := pathGraph(5, false)
	pg, err := ApplyPatch(g, line(t, "del 1 2\nadd 0 4 2\nset 3 4 5"))
	if err != nil {
		t.Fatal(err)
	}
	if _, has := pg.HasEdge(1, 2); has {
		t.Fatal("deleted edge survived")
	}
	if w, has := pg.HasEdge(0, 4); !has || w != 2 {
		t.Fatalf("inserted edge: got (%v,%v)", w, has)
	}
	if w, has := pg.HasEdge(4, 3); !has || w != 5 {
		t.Fatalf("reweighted edge: got (%v,%v)", w, has)
	}
	if w, has := pg.HasEdge(0, 1); !has || w != 1 {
		t.Fatalf("untouched edge: got (%v,%v)", w, has)
	}
}

func TestFormatParseFuzzSeedCorpus(t *testing.T) {
	// The fuzz seeds must stay parseable — they are the regression corpus.
	for _, seed := range fuzzSeeds {
		if _, err := ParsePatchLog([]byte(seed)); err != nil {
			// Seeds are allowed to be invalid (the fuzzer explores the
			// error paths too) — just never panic.
			continue
		}
	}
	if !bytes.Equal(FormatPatchLog(nil), []byte{}) {
		t.Fatal("empty log must format to empty bytes")
	}
}

// TestOverlayAccessorsAndApplyPatch pins the overlay's identity surface
// — Epoch, Hash, Ops, Stat — against the log it was built from, and
// ApplyPatch (the compaction/oracle entry point) against a hand-built
// Reduce + Materialize, including its validation error path.
func TestOverlayAccessorsAndApplyPatch(t *testing.T) {
	g := graph.ErdosRenyi(40, 90, 9, 3)
	ops := randomOps(g, 9, 2, 1, 2)
	red, err := Reduce(g, ops)
	if err != nil {
		t.Fatal(err)
	}
	frozen := newOracle(g)
	ov, err := NewOverlay(red, ops, 7, frozen.dist)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Epoch() != 7 {
		t.Fatalf("Epoch() = %d, want 7", ov.Epoch())
	}
	if ov.Hash() != LogHash(ops) {
		t.Fatalf("Hash() = %d, want LogHash(ops) = %d", ov.Hash(), LogHash(ops))
	}
	if got := ov.Ops(); len(got) != len(ops) || got[0] != ops[0] {
		t.Fatalf("Ops() = %v, want the accumulated log %v", got, ops)
	}
	st := ov.Stat()
	if st.Epoch != 7 || st.Ops != len(ops) || st.LogHash != ov.Hash() {
		t.Fatalf("Stat() = %+v disagrees with the overlay", st)
	}
	if st.Vertices != len(ov.Verts()) || st.Vertices == 0 {
		t.Fatalf("Stat().Vertices = %d, Verts() has %d", st.Vertices, len(ov.Verts()))
	}
	if st.Removals == 0 || st.Inserts == 0 {
		t.Fatalf("Stat() = %+v: randomOps produced removals and inserts", st)
	}

	patched, err := ApplyPatch(g, ops)
	if err != nil {
		t.Fatal(err)
	}
	want, err := red.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if patched.NumVertices() != want.NumVertices() {
		t.Fatalf("ApplyPatch n = %d, Materialize n = %d", patched.NumVertices(), want.NumVertices())
	}
	wo, po := newOracle(want), newOracle(patched)
	for u := 0; u < patched.NumVertices(); u += 7 {
		for v := 0; v < patched.NumVertices(); v += 5 {
			if po.dist(u, v) != wo.dist(u, v) {
				t.Fatalf("ApplyPatch d(%d,%d) = %v, Materialize says %v", u, v, po.dist(u, v), wo.dist(u, v))
			}
		}
	}
	if _, err := ApplyPatch(g, []Op{{Kind: OpAdd, U: 0, V: 1, W: -3}}); err == nil {
		t.Fatal("ApplyPatch accepted a negative weight")
	}
}

// TestJournalErrorPaths: an unwritable journal path fails AppendJournal
// loudly, an unreadable one fails ReadJournal, a corrupt one fails
// parsing, and TruncateJournal treats a missing file as already empty.
func TestJournalErrorPaths(t *testing.T) {
	dir := t.TempDir()
	if err := AppendJournal(dir, line(t, "add 1 2 3")); err == nil {
		t.Fatal("AppendJournal to a directory path succeeded")
	}
	if _, err := ReadJournal(dir); err == nil {
		t.Fatal("ReadJournal on a directory path succeeded")
	}
	bad := filepath.Join(dir, "corrupt.log")
	if err := os.WriteFile(bad, []byte("add 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(bad); err == nil {
		t.Fatal("ReadJournal parsed a truncated add line")
	}
	if err := TruncateJournal(filepath.Join(dir, "never-written.log")); err != nil {
		t.Fatalf("TruncateJournal on a missing file: %v", err)
	}
}

package shard

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPartitionDeterministicAndTotal(t *testing.T) {
	p1, err := NewPartition(3, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewPartition(3, 64, 7)
	for v := 0; v < 5000; v++ {
		o := p1.Owner(v)
		if o < 0 || o >= 3 {
			t.Fatalf("Owner(%d) = %d out of range", v, o)
		}
		if o != p2.Owner(v) {
			t.Fatalf("partition not deterministic at vertex %d", v)
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	const n, k = 20000, 4
	p, err := NewPartition(k, 96, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := p.Counts(n)
	total := 0
	for s, c := range counts {
		total += c
		// Consistent hashing with ~100 virtual points lands within a
		// loose band of the even split; a shard far outside it means the
		// ring is broken, not merely unlucky.
		if c < n/k/3 || c > n*3/k {
			t.Fatalf("shard %d owns %d of %d vertices (counts %v)", s, c, n, counts)
		}
	}
	if total != n {
		t.Fatalf("counts sum to %d, want %d", total, n)
	}
}

// Regression: ring-point keys must be domain-separated from vertex keys.
// Without the tag, vertex v < replicas hashed identically to shard 0's
// point r=v and the whole low id range collapsed onto shard 0.
func TestPartitionLowIdsNotCollapsed(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		p, err := NewPartition(k, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for v := 0; v < 64; v++ {
			seen[p.Owner(v)] = true
		}
		if len(seen) < 2 {
			t.Fatalf("k=%d: vertices [0,64) all owned by one shard — point/vertex hash collision", k)
		}
	}
}

// Consistent hashing's defining property: growing the cluster reassigns
// roughly 1/(k+1) of the vertices, not a wholesale reshuffle.
func TestPartitionStabilityUnderResize(t *testing.T) {
	const n = 10000
	p3, _ := NewPartition(3, 64, 1)
	p4, _ := NewPartition(4, 64, 1)
	moved := 0
	for v := 0; v < n; v++ {
		a, b := p3.Owner(v), p4.Owner(v)
		if a != b {
			if b != 3 {
				// A vertex that moved between two pre-existing shards is a
				// consistency violation, tolerated only in tiny numbers
				// (point collisions).
				moved++
			}
			continue
		}
	}
	if moved > n/100 {
		t.Fatalf("%d vertices moved between pre-existing shards on resize", moved)
	}
}

func TestZetaFor(t *testing.T) {
	for _, tc := range []struct{ q, zeta int }{
		{1, 2}, {3, 3}, {6, 4}, {10, 5}, {16, 6}, {64, 11},
	} {
		if got := ZetaFor(tc.q); got != tc.zeta {
			t.Errorf("ZetaFor(%d) = %d, want %d", tc.q, got, tc.zeta)
		}
	}
	if ZetaFor(0) != 0 {
		t.Error("ZetaFor(0) should be 0")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m, err := NewManifest(1000, 3, 64, 42, []string{"shard-000.flat", "shard-001.flat", "shard-002.flat"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), ManifestName)
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Vertices != 1000 || got.Shards != 3 || got.Replicas != 64 || got.Seed != 42 || len(got.Files) != 3 {
		t.Fatalf("round trip mangled manifest: %+v", got)
	}
	p, err := got.Partition()
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := m.Partition()
	for v := 0; v < 1000; v++ {
		if p.Owner(v) != orig.Owner(v) {
			t.Fatalf("reconstructed partition differs at vertex %d", v)
		}
	}
}

// A v1 manifest — written before replica addresses existed — must still
// parse, validate, and reconstruct its ring.
func TestManifestV1StillLoads(t *testing.T) {
	v1 := []byte(`{
		"version": 1,
		"vertices": 500,
		"shards": 2,
		"replicas": 64,
		"seed": 7,
		"files": ["shard-000.flat", "shard-001.flat"]
	}`)
	m, err := ParseManifest(v1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 || m.ReplicaAddrs != nil {
		t.Fatalf("v1 manifest parsed as %+v", m)
	}
	if _, err := m.Partition(); err != nil {
		t.Fatal(err)
	}
	// And through the file path.
	path := filepath.Join(t.TempDir(), ManifestName)
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err != nil {
		t.Fatal(err)
	}
}

func TestManifestV2ReplicaAddrs(t *testing.T) {
	m, err := NewManifest(100, 2, 64, 1, []string{"a.flat", "b.flat"})
	if err != nil {
		t.Fatal(err)
	}
	m.ReplicaAddrs = [][]string{
		{"http://a1:8081", "http://a2:8081"},
		{"http://b1:8082", "http://b2:8082"},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), ManifestName)
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ReplicaAddrs) != 2 || got.ReplicaAddrs[1][1] != "http://b2:8082" {
		t.Fatalf("replica addresses mangled: %+v", got.ReplicaAddrs)
	}

	// Replica addresses are a v2 feature; a "v1" manifest carrying them is
	// corrupt, not forward-compatible.
	m.Version = 1
	if err := m.Validate(); err == nil {
		t.Error("v1 manifest with replica addresses accepted")
	}
	m.Version = 2
	m.ReplicaAddrs = [][]string{{"http://a1:8081"}}
	if err := m.Validate(); err == nil {
		t.Error("replica addresses for 1 of 2 shards accepted")
	}
	m.ReplicaAddrs = [][]string{{"http://a1:8081"}, {}}
	if err := m.Validate(); err == nil {
		t.Error("empty replica group accepted")
	}
	m.ReplicaAddrs = [][]string{{"http://a1:8081"}, {""}}
	if err := m.Validate(); err == nil {
		t.Error("empty replica address accepted")
	}
}

// The validation bounds exist so a hostile manifest cannot demand a
// gigantic ring allocation before anything touches it.
func TestManifestRejectsImplausibleRing(t *testing.T) {
	for _, body := range []string{
		`{"version":1,"vertices":1,"shards":1000000,"files":[],"replicas":64,"seed":1}`,
		`{"version":1,"vertices":1,"shards":2,"files":["a","b"],"replicas":1073741824,"seed":1}`,
		// shards*replicas wraps int64 to a small value; the bound must
		// divide, not multiply, or this passes and allocates the ring.
		`{"version":1,"vertices":1,"shards":4,"files":["a","b","c","d"],"replicas":4611686018427387904,"seed":1}`,
	} {
		if _, err := ParseManifest([]byte(body)); err == nil {
			t.Errorf("implausible manifest accepted: %s", body)
		}
	}
}

func TestManifestRejectsBadInputs(t *testing.T) {
	if _, err := NewManifest(10, 2, 64, 1, []string{"only-one.flat"}); err == nil {
		t.Error("file/shard count mismatch accepted")
	}
	if _, err := NewPartition(0, 64, 1); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewPartition(2, 0, 1); err == nil {
		t.Error("zero replicas accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(bad); err == nil {
		t.Error("bad manifest version accepted")
	}
}

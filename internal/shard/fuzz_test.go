package shard

import (
	"encoding/json"
	"testing"
)

// FuzzParseManifest drives the manifest parser with arbitrary bytes. The
// invariants: it never panics, anything it accepts re-validates and
// round-trips through JSON to an equally valid manifest, and the ring an
// accepted manifest describes is actually constructible within the
// validation bounds.
func FuzzParseManifest(f *testing.F) {
	// Seeds: the writer's own output for a v1 and a v2 manifest, plus
	// characteristic corruptions of each.
	m, err := NewManifest(1000, 3, 64, 42, []string{"shard-000.flat", "shard-001.flat", "shard-002.flat"})
	if err != nil {
		f.Fatal(err)
	}
	m.VertexCounts = []int{400, 300, 300}
	v2, _ := json.Marshal(m)
	f.Add(v2)
	m2 := *m
	m2.ReplicaAddrs = [][]string{
		{"http://a:1", "http://a:2"}, {"http://b:1"}, {"http://c:1", "http://c:2"},
	}
	v2r, _ := json.Marshal(&m2)
	f.Add(v2r)
	f.Add([]byte(`{"version":1,"vertices":500,"shards":2,"replicas":64,"seed":7,"files":["a.flat","b.flat"]}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"version":1,"shards":-3}`))
	f.Add([]byte(`{"version":2,"vertices":1,"shards":1,"replicas":1,"seed":0,"files":["x"],"replica_addrs":[[]]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("ParseManifest accepted a manifest Validate rejects: %v", err)
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted manifest does not re-marshal: %v", err)
		}
		m2, err := ParseManifest(b)
		if err != nil {
			t.Fatalf("accepted manifest does not round-trip: %v", err)
		}
		if m2.Shards != m.Shards || m2.Replicas != m.Replicas || m2.Seed != m.Seed || m2.Vertices != m.Vertices {
			t.Fatalf("round trip changed ring parameters: %+v vs %+v", m, m2)
		}
		// Validation bounded the ring, so building it must be cheap and
		// must succeed (keep the big ones out of the fuzz hot loop anyway;
		// divide, not multiply — the product is what overflows).
		if m.Replicas <= (1<<14)/m.Shards {
			if _, err := m.Partition(); err != nil {
				t.Fatalf("accepted manifest has unconstructible ring: %v", err)
			}
		}
	})
}

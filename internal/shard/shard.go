// Package shard partitions the vertex set of a served hub-labeling index
// across N shard servers and describes the resulting cluster.
//
// The partitioner is a consistent-hash ring over vertex ids: each shard
// owns Replicas virtual points on a 64-bit ring, a vertex hashes to a ring
// position, and the next point clockwise names its owner. Ownership is
// therefore a union of hash ranges per shard — balanced to within a few
// percent for realistic replica counts, fully determined by (shards,
// replicas, seed), and stable in the consistent-hashing sense: resizing
// the cluster from k to k+1 shards moves only ~1/(k+1) of the vertices.
//
// This is the serving-tier descendant of the paper's QDOL query mode
// (internal/query): QDOL also routes each query point-to-point to the one
// node owning its vertices, but buys locality by replicating every
// partition pair — Θ(1/√q) of the labeling per node. A shard here stores
// only its own vertices' labels, Θ(1/N) per node, and the router completes
// cross-shard queries with one hub join over two fetched label runs
// instead of pair replication. ZetaFor exposes QDOL's ζ sizing formula for
// comparisons and capacity planning.
//
// A cluster is described on disk by a Manifest (cluster.json next to the
// shard files), written by the shard-index writer (chl.FlatIndex.
// SaveShards) and read by both the shard servers and the router, so every
// process derives the identical ring.
package shard

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Partition maps vertex ids to shard ids via a consistent-hash ring.
// Partitions are immutable and safe for concurrent use.
type Partition struct {
	shards   int
	replicas int
	seed     uint64
	points   []ringPoint // sorted by position
}

type ringPoint struct {
	pos   uint64
	shard int32
}

// ringTag marks ring-point hash inputs; vertex ids are uint32s, so any
// input with this bit set is provably never a vertex key.
const ringTag = uint64(1) << 63

// splitmix64 is the mixing function behind the ring: tiny, dependency-free
// and statistically strong (Steele et al., "Fast splittable pseudorandom
// number generators"). It must never change — manifests persist only
// (shards, replicas, seed) and every process recomputes the same ring.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewPartition builds the ring for a cluster of shards, each holding
// replicas virtual points. Higher replica counts smooth the load split
// (64–128 keeps the imbalance within a few percent); seed varies the ring
// layout without changing its properties.
func NewPartition(shards, replicas int, seed uint64) (*Partition, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", shards)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("shard: need at least 1 replica per shard, got %d", replicas)
	}
	p := &Partition{
		shards:   shards,
		replicas: replicas,
		seed:     seed,
		points:   make([]ringPoint, 0, shards*replicas),
	}
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			// ringTag domain-separates point keys from vertex keys:
			// without it, shard 0's point r and vertex id r hash
			// identically (s<<32|r == r for s=0) and every vertex below
			// the replica count lands exactly on shard 0's points.
			// splitmix64 is a bijection, so tagged inputs can never
			// collide with any vertex hash.
			h := splitmix64(seed ^ splitmix64(ringTag|uint64(s)<<32|uint64(r)))
			p.points = append(p.points, ringPoint{pos: h, shard: int32(s)})
		}
	}
	sort.Slice(p.points, func(i, j int) bool { return p.points[i].pos < p.points[j].pos })
	return p, nil
}

// Shards returns the cluster size the ring was built for.
func (p *Partition) Shards() int { return p.shards }

// Replicas returns the virtual points per shard.
func (p *Partition) Replicas() int { return p.replicas }

// Seed returns the ring seed.
func (p *Partition) Seed() uint64 { return p.seed }

// Owner returns the shard owning vertex v: the first ring point at or
// after v's hash, wrapping around the ring.
func (p *Partition) Owner(v int) int {
	h := splitmix64(p.seed ^ splitmix64(uint64(v)))
	i := sort.Search(len(p.points), func(i int) bool { return p.points[i].pos >= h })
	if i == len(p.points) {
		i = 0
	}
	return int(p.points[i].shard)
}

// Counts tallies how many of the vertices [0,n) each shard owns — the
// balance diagnostic the splitter prints.
func (p *Partition) Counts(n int) []int {
	c := make([]int, p.shards)
	for v := 0; v < n; v++ {
		c[p.Owner(v)]++
	}
	return c
}

// ZetaFor returns QDOL's partition count ζ for a q-node cluster: the
// largest ζ with C(ζ,2) ≤ q (internal/query uses the same formula). Under
// QDOL a q-node cluster serves C(ζ,2) partition pairs with Θ(1/ζ) =
// Θ(1/√q) of the labeling per node; the sharded serving tier's router
// replaces the pair replication with a hub join, so its N shards each
// store Θ(1/N). The formula remains useful to size a shard cluster that
// should match a QDOL deployment's per-node memory.
func ZetaFor(q int) int {
	if q < 1 {
		return 0
	}
	zeta := int((1 + math.Sqrt(1+8*float64(q))) / 2)
	for zeta > 2 && zeta*(zeta-1)/2 > q {
		zeta--
	}
	if zeta < 2 {
		zeta = 2
	}
	return zeta
}

// ManifestName is the file name SaveShards writes the Manifest under,
// next to the shard files.
const ManifestName = "cluster.json"

// Manifest describes a sharded index on disk: the ring parameters (from
// which every process recomputes the identical Partition) and the
// per-shard flat index files, stored relative to the manifest's own
// directory. It is plain JSON so operators can read and audit it.
//
// The schema is versioned. Version 1 describes an unreplicated cluster:
// one file (and, at serving time, one server) per shard. Version 2 adds
// ReplicaAddrs, letting the manifest also record the serving topology —
// the base URLs of every replica of every shard — so a router can be
// pointed at the manifest alone. Version 3 adds Directed, marking a
// cluster whose shard files hold directed (forward + backward) label
// runs; the router then keys its answer cache on ordered pairs and
// fetches backward rows for cross-shard joins. v1 and v2 manifests still
// load; a v3 manifest without replica addresses or directedness is
// equivalent to a v1 one.
type Manifest struct {
	Version  int      `json:"version"`
	Vertices int      `json:"vertices"`
	Shards   int      `json:"shards"`
	Replicas int      `json:"replicas"`
	Seed     uint64   `json:"seed"`
	Files    []string `json:"files"`
	// Directed (v3) marks a cluster over a directed index: every shard
	// file is a CHFX v3 slice carrying both label halves, and serving
	// components must treat (u,v) and (v,u) as distinct queries.
	Directed bool `json:"directed,omitempty"`
	// VertexCounts records how many vertices each shard owns — purely
	// informational (the ring is authoritative), for operators and the
	// splitter's balance report.
	VertexCounts []int `json:"vertex_counts,omitempty"`
	// ReplicaAddrs (v2) optionally records the serving topology: one list
	// of replica base URLs per shard, in shard-id order. Every replica of
	// a shard serves the same slice file; a router load-balances across
	// them and fails over when one dies.
	ReplicaAddrs [][]string `json:"replica_addrs,omitempty"`
}

// Manifest schema versions. manifestVersion is what writers emit;
// readers accept everything down to manifestVersionV1.
// The per-feature constants are pinned: Validate gates each field on
// the version that introduced it, never on the floating writer version
// (which a future bump would turn into "reject every existing file").
const (
	manifestVersionV1 = 1
	manifestVersionV2 = 2
	manifestVersionV3 = 3
	manifestVersion   = manifestVersionV3
)

// Validation bounds: a manifest is a small hand-auditable file, and the
// ring it describes is materialized in memory (shards × replicas points),
// so implausible counts are rejected up front — a corrupt or hostile
// manifest must not demand gigabytes before the first query.
const (
	maxShards     = 1 << 16
	maxRingPoints = 1 << 20
)

// Partition reconstructs the ring the manifest describes.
func (m *Manifest) Partition() (*Partition, error) {
	return NewPartition(m.Shards, m.Replicas, m.Seed)
}

// Validate checks the manifest's internal consistency.
func (m *Manifest) Validate() error {
	if m.Version < manifestVersionV1 || m.Version > manifestVersion {
		return fmt.Errorf("shard: unsupported manifest version %d (want %d..%d)", m.Version, manifestVersionV1, manifestVersion)
	}
	if m.Vertices < 0 {
		return fmt.Errorf("shard: manifest has negative vertex count %d", m.Vertices)
	}
	if m.Shards < 1 || m.Shards > maxShards {
		return fmt.Errorf("shard: manifest has %d shards (want 1..%d)", m.Shards, maxShards)
	}
	// Divide rather than multiply: m.Shards*m.Replicas can overflow int
	// and wrap below the bound, which is exactly the hostile input the
	// bound exists for. m.Shards >= 1 was established above.
	if m.Replicas < 1 || m.Replicas > maxRingPoints/m.Shards {
		return fmt.Errorf("shard: manifest has %d ring replicas per shard (want 1..%d/shards)", m.Replicas, maxRingPoints)
	}
	if len(m.Files) != m.Shards {
		return fmt.Errorf("shard: manifest lists %d files for %d shards", len(m.Files), m.Shards)
	}
	if m.VertexCounts != nil && len(m.VertexCounts) != m.Shards {
		return fmt.Errorf("shard: manifest lists %d vertex counts for %d shards", len(m.VertexCounts), m.Shards)
	}
	if m.Directed && m.Version < manifestVersionV3 {
		return fmt.Errorf("shard: directed clusters need manifest version %d, got %d", manifestVersionV3, m.Version)
	}
	if m.ReplicaAddrs != nil {
		if m.Version < manifestVersionV2 {
			return fmt.Errorf("shard: replica addresses need manifest version %d, got %d", manifestVersionV2, m.Version)
		}
		if len(m.ReplicaAddrs) != m.Shards {
			return fmt.Errorf("shard: manifest lists replica addresses for %d shards, want %d", len(m.ReplicaAddrs), m.Shards)
		}
		for i, reps := range m.ReplicaAddrs {
			if len(reps) < 1 {
				return fmt.Errorf("shard: manifest lists no replica addresses for shard %d", i)
			}
			for j, a := range reps {
				if a == "" {
					return fmt.Errorf("shard: manifest has an empty address for shard %d replica %d", i, j)
				}
			}
		}
	}
	return nil
}

// NewManifest returns a validated manifest for a cluster.
func NewManifest(vertices, shards, replicas int, seed uint64, files []string) (*Manifest, error) {
	m := &Manifest{
		Version:  manifestVersion,
		Vertices: vertices,
		Shards:   shards,
		Replicas: replicas,
		Seed:     seed,
		Files:    files,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteManifest writes m as indented JSON to path.
func WriteManifest(path string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ParseManifest parses and validates a manifest from its JSON bytes —
// the pure core of ReadManifest, shared with anything that carries a
// manifest over a wire instead of a file.
func ParseManifest(b []byte) (*Manifest, error) {
	m := &Manifest{}
	if err := json.Unmarshal(b, m); err != nil {
		return nil, fmt.Errorf("shard: parsing manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadManifest reads and validates a manifest written by WriteManifest.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := ParseManifest(b)
	if err != nil {
		return nil, fmt.Errorf("shard: manifest %s: %w", path, err)
	}
	return m, nil
}

//go:build linux

package label

import (
	"os"
	"syscall"
	"unsafe"
)

// The serving path's access-pattern hints (see adviseFlat). Linux is the
// only target where syscall.Madvise is guaranteed present in the standard
// library without an x/sys dependency, so the hints live behind this build
// tag; every other platform compiles the no-ops in madvise_other.go.
const (
	adviceWillNeed = syscall.MADV_WILLNEED
	adviceRandom   = syscall.MADV_RANDOM
)

// madviseSpan applies advice to the pages covering data[off : off+length].
// data must start on a page boundary (it is an mmap region). The span
// start is aligned down to the owning page — madvise rejects unaligned
// addresses — which may extend the hint over at most one page of the
// neighbouring array; that overlap is harmless for the WILLNEED/RANDOM
// pair used here. Failures are ignored: hints must never break serving.
func madviseSpan(data []byte, off, length int64, advice int) {
	if length <= 0 || off < 0 || off+length > int64(len(data)) {
		return
	}
	page := int64(os.Getpagesize())
	start := off &^ (page - 1)
	_ = syscall.Madvise(data[start:off+length], advice)
}

// madviseAligned applies advice to b from its first page boundary on —
// for byte slices (like a payload inside a mapping) whose start is not
// page-aligned; at most one leading partial page goes unadvised.
// Failures are ignored, as everywhere in this file.
func madviseAligned(b []byte, advice int) {
	if len(b) == 0 {
		return
	}
	page := uintptr(os.Getpagesize())
	skip := int((page - uintptr(unsafe.Pointer(&b[0]))%page) % page)
	if skip >= len(b) {
		return
	}
	_ = syscall.Madvise(b[skip:], advice)
}

package label

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// randomDirectedFlat builds a structurally valid directed flat pair with
// independent forward and backward halves over the same vertex space.
func randomDirectedFlat(t *testing.T, n int, seed int64) (fwd, bwd *FlatIndex) {
	t.Helper()
	return randomFlat(t, n, seed), randomFlat(t, n, seed+1000)
}

func flatEqual(a, b *FlatIndex) bool {
	if a.NumVertices() != b.NumVertices() || len(a.entries) != len(b.entries) {
		return false
	}
	for i := range a.offsets {
		if a.offsets[i] != b.offsets[i] {
			return false
		}
	}
	for i := range a.entries {
		if a.entries[i] != b.entries[i] {
			return false
		}
	}
	return true
}

func TestDirectedFlatRoundTrip(t *testing.T) {
	fwd, bwd := randomDirectedFlat(t, 50, 21)
	var buf bytes.Buffer
	written, err := WriteDirectedFlat(&buf, fwd, bwd)
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(buf.Len()) {
		t.Fatalf("WriteDirectedFlat reported %d bytes, wrote %d", written, buf.Len())
	}
	rf, rb, err := ReadDirectedFlat(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !flatEqual(rf, fwd) || !flatEqual(rb, bwd) {
		t.Fatal("directed flat round trip changed the arrays")
	}
	// The halves join like any two packed runs.
	for u := 0; u < 50; u++ {
		for v := 0; v < 50; v += 7 {
			wd, wh, wok := JoinPacked(fwd.PackedRun(u), bwd.PackedRun(v))
			gd, gh, gok := JoinPacked(rf.PackedRun(u), rb.PackedRun(v))
			if wd != gd || wh != gh || wok != gok {
				t.Fatalf("join(%d,%d) diverged after round trip", u, v)
			}
		}
	}
}

func TestWriteDirectedFlatRejectsMismatchedHalves(t *testing.T) {
	fwd := randomFlat(t, 10, 1)
	bwd := randomFlat(t, 11, 2)
	if _, err := WriteDirectedFlat(&bytes.Buffer{}, fwd, bwd); err == nil {
		t.Fatal("halves over different vertex counts accepted")
	}
}

// dflatAlignSkew returns the payload base offset (mod 8) that aligns a
// CHLD payload over n vertices: offsets on 4 bytes at base+25, both
// entry arrays on 8 at base+25+8(n+1). This is the placement CHFX v3's
// pad byte produces.
func dflatAlignSkew(n int) int {
	for skew := 0; skew < 8; skew++ {
		if (skew+DirectedFlatHeaderBytes)%4 == 0 && (skew+DirectedFlatHeaderBytes+8*(n+1))%8 == 0 {
			return skew
		}
	}
	panic("no aligning skew")
}

func TestMapDirectedFlatParityWithRead(t *testing.T) {
	fwd, bwd := randomDirectedFlat(t, 40, 33)
	var buf bytes.Buffer
	if _, err := WriteDirectedFlat(&buf, fwd, bwd); err != nil {
		t.Fatal(err)
	}
	mf, mb, err := MapDirectedFlat(aligned(buf.Bytes(), dflatAlignSkew(40)))
	if err != nil {
		t.Fatal(err)
	}
	if !flatEqual(mf, fwd) || !flatEqual(mb, bwd) {
		t.Fatal("mapped halves differ from the written ones")
	}
	if len(mf.raw) == 0 {
		t.Fatal("forward half carries no raw region; Prefault would be a no-op")
	}
	if pages := mf.Prefault(); pages == 0 {
		t.Fatal("Prefault walked no pages on a mapped directed payload")
	}
}

func TestMapDirectedFlatRejectsMisaligned(t *testing.T) {
	fwd, bwd := randomDirectedFlat(t, 10, 44)
	var buf bytes.Buffer
	if _, err := WriteDirectedFlat(&buf, fwd, bwd); err != nil {
		t.Fatal(err)
	}
	good := dflatAlignSkew(10)
	for skew := 0; skew < 8; skew++ {
		_, _, err := MapDirectedFlat(aligned(buf.Bytes(), skew))
		switch {
		case skew == good && err != nil:
			t.Errorf("skew %d: aligned payload rejected: %v", skew, err)
		case skew != good && !errors.Is(err, ErrNotMappable):
			t.Errorf("skew %d: want ErrNotMappable, got %v", skew, err)
		}
	}
}

func TestDirectedFlatRejectsGarbage(t *testing.T) {
	fwd, bwd := randomDirectedFlat(t, 12, 55)
	var buf bytes.Buffer
	if _, err := WriteDirectedFlat(&buf, fwd, bwd); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	corruptHub := append([]byte(nil), full...)
	copy(corruptHub[len(corruptHub)-4:], []byte{0xff, 0xff, 0xff, 0x7f})
	cases := map[string][]byte{
		"empty":       nil,
		"short":       full[:10],
		"wrong magic": append([]byte("CHLF"), full[4:]...),
		"bad version": append([]byte("CHLD\x09"), full[5:]...),
		"truncated":   full[:len(full)-8],
		"corrupt hub": corruptHub,
	}
	for name, c := range cases {
		if _, _, err := ReadDirectedFlat(bytes.NewReader(c)); err == nil {
			t.Errorf("read %s: accepted", name)
		}
		if _, _, err := MapDirectedFlat(aligned(c, dflatAlignSkew(12))); err == nil {
			t.Errorf("map %s: accepted", name)
		}
	}
}

func TestMapDirectedFlatFile(t *testing.T) {
	fwd, bwd := randomDirectedFlat(t, 30, 66)
	var payload bytes.Buffer
	if _, err := WriteDirectedFlat(&payload, fwd, bwd); err != nil {
		t.Fatal(err)
	}
	// Bury the payload at an aligning offset, the way CHFX v3 does.
	off := 48 + dflatAlignSkew(30)
	file := make([]byte, off+payload.Len())
	copy(file[off:], payload.Bytes())
	path := filepath.Join(t.TempDir(), "buried.dflat")
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	mf, mb, closer, err := MapDirectedFlatFile(f, int64(off))
	if err != nil {
		if errors.Is(err, ErrNotMappable) {
			t.Skipf("platform cannot mmap: %v", err)
		}
		t.Fatal(err)
	}
	if !flatEqual(mf, fwd) || !flatEqual(mb, bwd) {
		t.Fatal("file-mapped halves differ from the written ones")
	}
	if err := closer(); err != nil {
		t.Fatalf("closer: %v", err)
	}
	if _, _, _, err := MapDirectedFlatFile(f, int64(len(file))+3); err == nil {
		t.Fatal("offset past EOF accepted")
	}
}

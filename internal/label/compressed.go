package label

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"runtime"
)

// Compressed label blocks: the CHFX v4 representation of a packed label
// store. The fixed-width FlatIndex spends 8 bytes on every entry even
// though per-vertex hub ids are sorted (so consecutive ids are close) and
// the synthetic/DIMACS distances are small integers (so 32 distance bits
// are mostly zero). A CompressedIndex splits each vertex's run into
// fixed-count blocks of CompressedBlockEntries entries (the last block of
// a vertex may be shorter) and encodes each block as
//
//	hub plane:  uvarint(hub[i] − hub[i−1] − 1) for i ≥ 1
//	            (hub[0] is the block header's minHub; strict sortedness
//	            makes every delta ≥ 1, so 1 is subtracted before encoding)
//	dist plane: all distances in the block float32-exact small integers →
//	            uvarint(int(dist)) each; otherwise raw float32 bits, 4
//	            bytes each (the block's flag records which)
//
// Every block is headed by four uint32 words — minHub, maxHub, dataOff,
// count|flags|byteLen — kept in one contiguous header array. The
// (minHub, maxHub) summary is what buys query speed back: JoinCompressed
// merge-joins two label runs at block granularity and skips — without
// decoding a single varint — every block whose hub interval cannot
// intersect the other side's current block, the same data-skipping
// principle per-block min/max summaries serve in columnar scan engines.
//
// The arrays are designed for the same zero-copy story as the flat store:
// headers and vertex offsets are uint32 arrays (4-byte alignment), the
// block payloads are raw bytes (no alignment), so MapCompressedFlat can
// alias all of them straight into a memory mapping.
//
// A CompressedIndex is immutable after construction and safe for
// concurrent readers.
type CompressedIndex struct {
	n         int
	blockSize int      // entries per full block (CompressedBlockEntries in files this package writes)
	total     int64    // label count across all blocks
	vertOff   []uint32 // len n+1; blocks of v are heads[4*vertOff[v] : 4*vertOff[v+1]]
	heads     []uint32 // 4 words per block: minHub, maxHub, dataOff, count|flags<<8|byteLen<<16
	data      []byte   // block payloads, contiguous in block order

	// raw is the byte region the arrays alias when the index was
	// constructed by MapCompressedFlat (usually a memory mapping); nil
	// for heap-backed indexes. For a directed payload the forward half's
	// raw covers both halves, as in MapDirectedFlat.
	raw []byte
}

// CompressedBlockEntries is the block size (entries per full block) this
// package writes. Readers accept any block size in [1, CompressedMaxBlockEntries]
// so the constant can change without invalidating existing files.
const CompressedBlockEntries = 64

// CompressedMaxBlockEntries bounds the per-block entry count: it must fit
// the 8-bit count field of the block header, and the join kernels decode
// blocks into stack buffers of this size.
const CompressedMaxBlockEntries = 255

// compFlagIntDists marks a block whose distance plane is uvarint-encoded
// small integers rather than raw float32 bits.
const compFlagIntDists = 1

// maxCompressedBlockBytes is the worst-case payload of one block:
// CompressedMaxBlockEntries−1 hub deltas and CompressedMaxBlockEntries
// distances at ≤ 5 varint bytes each — comfortably inside the header's
// 16-bit byteLen field.
const maxCompressedBlockBytes = (CompressedMaxBlockEntries - 1 + CompressedMaxBlockEntries) * 5

// distSmallInt reports whether the float32 distance bits encode a
// non-negative integer small enough for the uvarint distance plane to
// reproduce the exact same bits (integers below 2^24 are float32-exact;
// −0.0 and NaN fail the bit round-trip and stay on the float plane).
func distSmallInt(bits uint32) (uint32, bool) {
	d := math.Float32frombits(bits)
	if !(d >= 0) || d >= 1<<24 {
		return 0, false
	}
	t := uint32(d)
	if math.Float32bits(float32(t)) != bits {
		return 0, false
	}
	return t, true
}

// Compress packs a flat index into compressed label blocks of the default
// block size. The flat index must satisfy the structural invariants every
// loader establishes (sorted in-range hubs); Freeze output and loaded
// indexes always do.
func Compress(f *FlatIndex) (*CompressedIndex, error) {
	return CompressBlocks(f, CompressedBlockEntries)
}

// CompressBlocks is Compress with an explicit block size in
// [1, CompressedMaxBlockEntries]. Smaller blocks skip more precisely but
// spend more header bytes; 64 is a good default.
func CompressBlocks(f *FlatIndex, blockSize int) (*CompressedIndex, error) {
	if blockSize < 1 || blockSize > CompressedMaxBlockEntries {
		return nil, fmt.Errorf("label: block size %d out of range [1,%d]", blockSize, CompressedMaxBlockEntries)
	}
	n := f.NumVertices()
	c := &CompressedIndex{
		n:         n,
		blockSize: blockSize,
		total:     f.NumLabels(),
		vertOff:   make([]uint32, n+1),
	}
	var scratch [binary.MaxVarintLen64]byte
	for v := 0; v < n; v++ {
		c.vertOff[v] = uint32(len(c.heads) / 4)
		for run := f.PackedRun(v); len(run) > 0; {
			cnt := blockSize
			if cnt > len(run) {
				cnt = len(run)
			}
			blk := run[:cnt]
			run = run[cnt:]
			dataOff := len(c.data)
			if int64(dataOff) > math.MaxUint32-maxCompressedBlockBytes {
				return nil, fmt.Errorf("label: index too large for the compressed format (%d payload bytes)", dataOff)
			}
			for i := 1; i < cnt; i++ {
				m := binary.PutUvarint(scratch[:], (blk[i]>>32)-(blk[i-1]>>32)-1)
				c.data = append(c.data, scratch[:m]...)
			}
			flags := uint32(0)
			intPlane := true
			for _, e := range blk {
				if _, ok := distSmallInt(uint32(e)); !ok {
					intPlane = false
					break
				}
			}
			if intPlane {
				flags = compFlagIntDists
				for _, e := range blk {
					t, _ := distSmallInt(uint32(e))
					m := binary.PutUvarint(scratch[:], uint64(t))
					c.data = append(c.data, scratch[:m]...)
				}
			} else {
				for _, e := range blk {
					var b [4]byte
					binary.LittleEndian.PutUint32(b[:], uint32(e))
					c.data = append(c.data, b[:]...)
				}
			}
			byteLen := len(c.data) - dataOff
			c.heads = append(c.heads,
				uint32(blk[0]>>32), uint32(blk[cnt-1]>>32), uint32(dataOff),
				uint32(cnt)|flags<<8|uint32(byteLen)<<16)
		}
	}
	c.vertOff[n] = uint32(len(c.heads) / 4)
	return c, nil
}

// NumVertices returns the number of vertices the index covers.
func (c *CompressedIndex) NumVertices() int { return c.n }

// NumLabels returns the total number of encoded labels.
func (c *CompressedIndex) NumLabels() int64 { return c.total }

// NumBlocks returns the number of label blocks.
func (c *CompressedIndex) NumBlocks() int { return len(c.heads) / 4 }

// BlockSize returns the entries-per-full-block this index was encoded
// with.
func (c *CompressedIndex) BlockSize() int { return c.blockSize }

// LabelCount returns the number of labels of v by summing its block
// counts — O(blocks of v), no decoding.
func (c *CompressedIndex) LabelCount(v int) int {
	total := 0
	for b := c.vertOff[v]; b < c.vertOff[v+1]; b++ {
		total += int(c.heads[4*b+3] & 0xff)
	}
	return total
}

// TotalMemory returns the exact byte footprint of the compressed arrays:
// vertex offsets, block headers, and the encoded payload.
func (c *CompressedIndex) TotalMemory() int64 {
	return int64(len(c.vertOff))*4 + int64(len(c.heads))*4 + int64(len(c.data))
}

// CRun is the compressed label run of one vertex: its block headers plus
// the (whole) payload array the headers' data offsets point into. A CRun
// aliases the index's arrays; callers must not modify it.
type CRun struct {
	heads []uint32 // 4 words per block
	data  []byte   // the index's full payload array (offsets are absolute)
}

// Run returns the compressed label run of v, aliasing the index's arrays
// (zero-copy on a memory-mapped index).
func (c *CompressedIndex) Run(v int) CRun {
	lo, hi := c.vertOff[v], c.vertOff[v+1]
	return CRun{heads: c.heads[4*lo : 4*hi : 4*hi], data: c.data}
}

// NumBlocks returns the number of blocks in the run.
func (r CRun) NumBlocks() int { return len(r.heads) / 4 }

// compBlockBuf holds one decoded block as packed hub<<32|distbits
// entries — the exact word layout the packed join kernels compare — so
// the within-block merge of JoinCompressed is the same loop as JoinPacked.
type compBlockBuf [CompressedMaxBlockEntries]uint64

// decodeBlock expands block b of the run into buf and returns its entry
// count. It trusts the structural invariants the loaders validate
// (in-bounds offsets, well-formed varints, byteLen consumed exactly).
func (r CRun) decodeBlock(b int, buf *compBlockBuf) int {
	h := r.heads[4*b : 4*b+4 : 4*b+4]
	w3 := h[3]
	count := int(w3 & 0xff)
	p := r.data[h[2] : h[2]+w3>>16]
	hub := uint64(h[0])
	buf[0] = hub << 32
	k := 0
	for i := 1; i < count; i++ {
		d, m := binary.Uvarint(p[k:])
		k += m
		hub += d + 1
		buf[i] = hub << 32
	}
	if w3>>8&0xff&compFlagIntDists != 0 {
		for i := 0; i < count; i++ {
			v, m := binary.Uvarint(p[k:])
			k += m
			buf[i] |= uint64(math.Float32bits(float32(uint32(v))))
		}
	} else {
		for i := 0; i < count; i++ {
			buf[i] |= uint64(binary.LittleEndian.Uint32(p[k:]))
			k += 4
		}
	}
	return count
}

// JoinCompressed merge-joins two compressed label runs, returning the
// best distance, its witness hub (rank space), and reachability — the
// compressed sibling of JoinPacked, and bit-identical to it on the same
// label sets: same float32→float64 summation, same smallest-hub
// tie-break among equal-distance witnesses.
//
// The join walks both runs block by block. A block pair whose
// [minHub, maxHub] intervals do not intersect is resolved from the
// headers alone — the side that ends first advances without decoding a
// single byte of payload, which is where compressed queries win on label
// runs whose hub ranges interleave coarsely (each side's tail of
// low-rank hubs, for instance, is skipped outright). Only overlapping
// blocks are decoded, into stack buffers, and merged with the JoinPacked
// loop.
func JoinCompressed(a, b CRun) (dist float64, hub uint32, ok bool) {
	dist = Infinity
	na, nb := len(a.heads)/4, len(b.heads)/4
	ia, ib := 0, 0
	var ba, bb compBlockBuf
	ca, cb := 0, 0 // decoded entry counts (0: block ia/ib not decoded yet)
	pa, pb := 0, 0 // merge positions within the decoded blocks
	for ia < na && ib < nb {
		if a.heads[4*ia+1] < b.heads[4*ib] { // aMax < bMin: skip a's block
			ia++
			ca, pa = 0, 0
			continue
		}
		if b.heads[4*ib+1] < a.heads[4*ia] { // bMax < aMin: skip b's block
			ib++
			cb, pb = 0, 0
			continue
		}
		if ca == 0 {
			ca = a.decodeBlock(ia, &ba)
		}
		if cb == 0 {
			cb = b.decodeBlock(ib, &bb)
		}
		for pa < ca && pb < cb {
			ea, eb := ba[pa], bb[pb]
			ha, hb := ea>>32, eb>>32
			if ha == hb {
				if d := entryDist(ea) + entryDist(eb); d < dist {
					dist, hub, ok = d, uint32(ha), true
				}
				pa++
				pb++
			} else if ha < hb {
				pa++
			} else {
				pb++
			}
		}
		if pa == ca {
			ia++
			ca, pa = 0, 0
		}
		if pb == cb {
			ib++
			cb, pb = 0, 0
		}
	}
	return dist, hub, ok
}

// ProbeCompressed hub-joins one compressed target run against the
// scattered source run, block by block: the header's (minHub, maxHub)
// summary resolves non-overlapping blocks without decoding a byte —
// blocks entirely below the source's hub range are skipped, blocks
// entirely above it end the scan — and only overlapping blocks are
// decoded (into a stack buffer) and probed with the RunScatter.Probe
// loop. Answers are bit-identical to Probe on the decompressed run.
func (rs RunScatter) ProbeCompressed(r CRun) (dist float64, hub uint32, ok bool) {
	dist = Infinity
	if rs.empty {
		return dist, 0, false
	}
	var buf compBlockBuf
	slot := rs.s.slot
	for b, nb := 0, len(r.heads)/4; b < nb; b++ {
		if r.heads[4*b+1] < rs.minHub { // block entirely below the source's hubs
			continue
		}
		if r.heads[4*b] > rs.maxHub { // blocks are hub-ascending: nothing left can match
			break
		}
		cnt := r.decodeBlock(b, &buf)
		for _, e := range buf[:cnt] {
			h := uint32(e >> 32)
			if h > rs.maxHub {
				break
			}
			w := slot[h]
			if w&^uint64(0xffffffff) == rs.cur {
				if d := float64(math.Float32frombits(uint32(w))) + entryDist(e); d < dist {
					dist, hub, ok = d, h, true
				}
			}
		}
	}
	return dist, hub, ok
}

// AppendPackedRun appends the decoded (fixed-width packed) entries of v to
// dst and returns the extended slice — how a compressed shard server
// materializes the byte-identical packed rows the /shardquery protocol
// carries.
func (c *CompressedIndex) AppendPackedRun(dst []uint64, v int) []uint64 {
	var buf compBlockBuf
	r := c.Run(v)
	for b := 0; b < len(r.heads)/4; b++ {
		cnt := r.decodeBlock(b, &buf)
		dst = append(dst, buf[:cnt]...)
	}
	return dst
}

// Labels reconstructs the label set of v (allocates; query paths use
// JoinCompressed directly).
func (c *CompressedIndex) Labels(v int) Set {
	var buf compBlockBuf
	r := c.Run(v)
	s := make(Set, 0, c.LabelCount(v))
	for b := 0; b < len(r.heads)/4; b++ {
		cnt := r.decodeBlock(b, &buf)
		for _, e := range buf[:cnt] {
			s = append(s, L{Hub: entryHub(e), Dist: entryDist(e)})
		}
	}
	return s
}

// Decompress expands the compressed index back into a fixed-width flat
// index with identical labels.
func (c *CompressedIndex) Decompress() *FlatIndex {
	f := &FlatIndex{
		offsets: make([]uint32, c.n+1),
		entries: make([]uint64, 0, c.total),
	}
	for v := 0; v < c.n; v++ {
		f.offsets[v] = uint32(len(f.entries))
		f.entries = c.AppendPackedRun(f.entries, v)
	}
	f.offsets[c.n] = uint32(len(f.entries))
	return f
}

// Slice returns a new heap-backed CompressedIndex over the same vertex-id
// space that keeps only the label runs of vertices for which keep returns
// true — the compressed sibling of FlatIndex.Slice, and the operation
// shard writers use to carve per-shard files out of one index. Kept
// vertices' blocks are copied verbatim (no re-encoding), with data
// offsets rebased onto the compacted payload.
func (c *CompressedIndex) Slice(keep func(v int) bool) *CompressedIndex {
	out := &CompressedIndex{
		n:         c.n,
		blockSize: c.blockSize,
		vertOff:   make([]uint32, c.n+1),
	}
	for v := 0; v < c.n; v++ {
		out.vertOff[v] = uint32(len(out.heads) / 4)
		if !keep(v) {
			continue
		}
		for b := c.vertOff[v]; b < c.vertOff[v+1]; b++ {
			h := c.heads[4*b : 4*b+4]
			byteLen := h[3] >> 16
			out.heads = append(out.heads, h[0], h[1], uint32(len(out.data)), h[3])
			out.data = append(out.data, c.data[h[2]:h[2]+byteLen]...)
			out.total += int64(h[3] & 0xff)
		}
	}
	out.vertOff[c.n] = uint32(len(out.heads) / 4)
	return out
}

// Prefault touches one byte per page of a mapped payload, as
// FlatIndex.Prefault does; on a heap-backed index it is a no-op
// returning 0.
func (c *CompressedIndex) Prefault() int {
	if len(c.raw) == 0 {
		return 0
	}
	madviseAligned(c.raw, adviceWillNeed)
	defer madviseAligned(c.raw, adviceRandom)
	page := os.Getpagesize()
	var sink byte
	pages := 0
	for i := 0; i < len(c.raw); i += page {
		sink += c.raw[i]
		pages++
	}
	runtime.KeepAlive(sink)
	return pages
}

// validate checks the structural invariants every loader must establish
// before the decoding kernels may trust the arrays: monotone vertex
// offsets spanning the header array, contiguous in-bounds block payloads,
// the canonical block partition (every block of a vertex except its last
// holds exactly blockSize entries), and — by decoding every block once —
// well-formed varints consuming exactly byteLen bytes, strictly ascending
// in-range hubs matching the header's (minHub, maxHub) summary, and
// int-plane distances below 2^24. It also recomputes the label total.
func (c *CompressedIndex) validate() error {
	if c.n < 0 || len(c.vertOff) != c.n+1 {
		return fmt.Errorf("label: compressed index has no vertex offsets")
	}
	if c.blockSize < 1 || c.blockSize > CompressedMaxBlockEntries {
		return fmt.Errorf("label: compressed block size %d out of range [1,%d]", c.blockSize, CompressedMaxBlockEntries)
	}
	nb := len(c.heads) / 4
	if len(c.heads)%4 != 0 {
		return fmt.Errorf("label: compressed header array length %d is not a whole number of blocks", len(c.heads))
	}
	if c.vertOff[0] != 0 || int(c.vertOff[c.n]) != nb {
		return fmt.Errorf("label: compressed vertex offsets do not span the block array")
	}
	for v := 0; v < c.n; v++ {
		if c.vertOff[v] > c.vertOff[v+1] {
			return fmt.Errorf("label: compressed vertex offsets not monotone at vertex %d", v)
		}
	}
	var total int64
	dataOff := uint32(0)
	var buf compBlockBuf
	for v := 0; v < c.n; v++ {
		prevMax := int64(-1)
		for b := c.vertOff[v]; b < c.vertOff[v+1]; b++ {
			h := c.heads[4*b : 4*b+4]
			minHub, maxHub, off, w3 := h[0], h[1], h[2], h[3]
			count := int(w3 & 0xff)
			flags := w3 >> 8 & 0xff
			byteLen := w3 >> 16
			if count < 1 || count > c.blockSize {
				return fmt.Errorf("label: block %d of vertex %d holds %d entries (block size %d)", b, v, count, c.blockSize)
			}
			if b+1 < c.vertOff[v+1] && count != c.blockSize {
				return fmt.Errorf("label: non-final block %d of vertex %d holds %d entries, want %d", b, v, count, c.blockSize)
			}
			if flags&^uint32(compFlagIntDists) != 0 {
				return fmt.Errorf("label: block %d has unknown flags %#x", b, flags)
			}
			if off != dataOff {
				return fmt.Errorf("label: block %d payload at offset %d, want contiguous %d", b, off, dataOff)
			}
			if uint64(off)+uint64(byteLen) > uint64(len(c.data)) {
				return fmt.Errorf("label: block %d payload [%d,%d) outside %d data bytes", b, off, off+byteLen, len(c.data))
			}
			if minHub > maxHub || int64(minHub) <= prevMax {
				return fmt.Errorf("label: block %d hub interval [%d,%d] out of order for vertex %d", b, minHub, maxHub, v)
			}
			if uint64(maxHub) >= uint64(c.n) {
				return fmt.Errorf("label: block %d has out-of-range hub %d (n=%d)", b, maxHub, c.n)
			}
			cnt, decoded, err := decodeBlockChecked(c.data[off:off+byteLen], minHub, maxHub, count, flags, &buf)
			if err != nil {
				return fmt.Errorf("label: block %d of vertex %d: %w", b, v, err)
			}
			if decoded != int(byteLen) {
				return fmt.Errorf("label: block %d of vertex %d encodes %d bytes, header says %d", b, v, decoded, byteLen)
			}
			_ = cnt
			prevMax = int64(maxHub)
			dataOff += byteLen
			total += int64(count)
		}
	}
	if int(dataOff) != len(c.data) {
		return fmt.Errorf("label: compressed blocks cover %d payload bytes, data holds %d", dataOff, len(c.data))
	}
	c.total = total
	return nil
}

// decodeBlockChecked is the untrusting sibling of CRun.decodeBlock: it
// decodes one block payload with every read bounds- and shape-checked,
// for validation and the fuzz target. It returns the entry count and the
// number of payload bytes consumed.
func decodeBlockChecked(p []byte, minHub, maxHub uint32, count int, flags uint32, buf *compBlockBuf) (int, int, error) {
	hub := uint64(minHub)
	buf[0] = hub << 32
	k := 0
	for i := 1; i < count; i++ {
		d, m := binary.Uvarint(p[k:])
		if m <= 0 {
			return 0, 0, fmt.Errorf("bad hub delta varint at entry %d", i)
		}
		k += m
		hub += d + 1
		if hub > uint64(maxHub) {
			return 0, 0, fmt.Errorf("hub %d at entry %d exceeds block maximum %d", hub, i, maxHub)
		}
		buf[i] = hub << 32
	}
	if hub != uint64(maxHub) {
		return 0, 0, fmt.Errorf("last hub %d does not match block maximum %d", hub, maxHub)
	}
	if flags&compFlagIntDists != 0 {
		for i := 0; i < count; i++ {
			v, m := binary.Uvarint(p[k:])
			if m <= 0 {
				return 0, 0, fmt.Errorf("bad distance varint at entry %d", i)
			}
			if v >= 1<<24 {
				return 0, 0, fmt.Errorf("int-plane distance %d at entry %d is not float32-exact", v, i)
			}
			k += m
			buf[i] |= uint64(math.Float32bits(float32(uint32(v))))
		}
	} else {
		if len(p)-k < 4*count {
			return 0, 0, fmt.Errorf("float distance plane truncated: %d bytes for %d entries", len(p)-k, count)
		}
		for i := 0; i < count; i++ {
			buf[i] |= uint64(binary.LittleEndian.Uint32(p[k:]))
			k += 4
		}
	}
	return count, k, nil
}

package label

// HashDist is the "hash of the root's labels" used by the pruning distance
// query of Algorithm 1 (line 1: LR = hash(L_h)). It is a dense array of
// distances indexed by hub id with a version stamp per slot, so loading a
// root's labels, O(1) lookups, and clearing are all cheap and allocation
// free across the thousands of SPTs a worker builds.
//
// A HashDist is owned by a single worker goroutine and must not be shared.
type HashDist struct {
	dist    []float64
	version []uint32
	current uint32
}

// NewHashDist returns a HashDist over hub ids in [0, n).
func NewHashDist(n int) *HashDist {
	return &HashDist{
		dist:    make([]float64, n),
		version: make([]uint32, n),
		// current starts above the zeroed version stamps so a fresh table
		// is empty (version[hub] == current would otherwise hold for
		// every hub with distance 0).
		current: 1,
	}
}

// Load clears the table and inserts every label of s.
func (h *HashDist) Load(s Set) {
	h.Reset()
	for _, l := range s {
		h.dist[l.Hub] = l.Dist
		h.version[l.Hub] = h.current
	}
}

// Add inserts or improves a single entry without clearing.
func (h *HashDist) Add(hub uint32, d float64) {
	if h.version[hub] == h.current {
		if d < h.dist[hub] {
			h.dist[hub] = d
		}
		return
	}
	h.dist[hub] = d
	h.version[hub] = h.current
}

// Get returns the stored distance for hub, if present.
func (h *HashDist) Get(hub uint32) (float64, bool) {
	if h.version[hub] == h.current {
		return h.dist[hub], true
	}
	return Infinity, false
}

// Reset clears the table in O(1) by bumping the version stamp. After 2^32
// resets the stamps are rewound explicitly to stay correct.
func (h *HashDist) Reset() {
	h.current++
	if h.current == 0 { // wrapped: invalidate everything the slow way
		for i := range h.version {
			h.version[i] = 0
		}
		h.current = 1
	}
}

// QueryAgainst answers the pruning distance query DQ(v, h, δ) of Algorithm 1
// lines 11–14: does some hub h' appear in both the loaded root labels LR and
// in lv with d(v,h') + d(h,h') ≤ δ? It returns true if such a witness
// exists (meaning the tree can be pruned at v).
func (h *HashDist) QueryAgainst(lv Set, delta float64) bool {
	for _, l := range lv {
		if h.version[l.Hub] == h.current && l.Dist+h.dist[l.Hub] <= delta {
			return true
		}
	}
	return false
}

// QueryAgainstBounded is QueryAgainst restricted to hubs ranked above bound
// (hub id < bound). Figure 4's restricted-pruning experiment and the common
// label table of §5.3 use it.
func (h *HashDist) QueryAgainstBounded(lv Set, delta float64, bound uint32) bool {
	for _, l := range lv {
		if l.Hub >= bound {
			break // lv is sorted by hub id
		}
		if h.version[l.Hub] == h.current && l.Dist+h.dist[l.Hub] <= delta {
			return true
		}
	}
	return false
}

// BestWitness returns the highest-ranked hub h' common to the loaded set and
// lv with d(v,h') + d(h,h') ≤ δ, for the cleaning query DQ_Clean (Algorithm
// 2 lines 12–16) which needs the witness's rank, not just existence.
func (h *HashDist) BestWitness(lv Set, delta float64) (hub uint32, ok bool) {
	for _, l := range lv { // sorted by hub id = descending rank: first hit is best
		if h.version[l.Hub] == h.current && l.Dist+h.dist[l.Hub] <= delta {
			return l.Hub, true
		}
	}
	return 0, false
}

package label

import "testing"

// The flat-index fixtures come from randomFlat in flatmmap_test.go.

// The router-side join kernels must agree with the in-index query paths
// on every pair: JoinPacked with QueryHub (merge join), JoinPackedWith
// with both (hash join), including witness-hub tie-breaks.
func TestJoinKernelsMatchQueryPaths(t *testing.T) {
	const n = 120
	f := randomFlat(t, n, 3)
	s := NewQueryScratch(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			wantD, wantH, wantOK := f.QueryHub(u, v)
			a, b := f.PackedRun(u), f.PackedRun(v)
			if d, h, ok := JoinPacked(a, b); ok != wantOK || (ok && (d != wantD || h != wantH)) {
				t.Fatalf("JoinPacked(%d,%d) = (%v,%d,%v), want (%v,%d,%v)", u, v, d, h, ok, wantD, wantH, wantOK)
			}
			if d, h, ok := JoinPackedWith(s, a, b); ok != wantOK || (ok && (d != wantD || h != wantH)) {
				t.Fatalf("JoinPackedWith(%d,%d) = (%v,%d,%v), want (%v,%d,%v)", u, v, d, h, ok, wantD, wantH, wantOK)
			}
		}
	}
}

// Cross-index joins — the actual sharded case — must agree with a query
// over the union index, which is what a shard slice plus a foreign row
// reconstitutes.
func TestJoinPackedAcrossSlices(t *testing.T) {
	const n = 150
	f := randomFlat(t, n, 7)
	even := f.Slice(func(v int) bool { return v%2 == 0 })
	odd := f.Slice(func(v int) bool { return v%2 == 1 })
	for u := 0; u < n; u += 3 {
		for v := 1; v < n; v += 3 {
			var a, b []uint64
			if u%2 == 0 {
				a = even.PackedRun(u)
			} else {
				a = odd.PackedRun(u)
			}
			if v%2 == 0 {
				b = even.PackedRun(v)
			} else {
				b = odd.PackedRun(v)
			}
			wantD, wantH, wantOK := f.QueryHub(u, v)
			if d, h, ok := JoinPacked(a, b); ok != wantOK || (ok && (d != wantD || h != wantH)) {
				t.Fatalf("sliced join (%d,%d) = (%v,%d,%v), want (%v,%d,%v)", u, v, d, h, ok, wantD, wantH, wantOK)
			}
		}
	}
}

func TestSliceKeepsOnlyOwnedRuns(t *testing.T) {
	const n = 80
	f := randomFlat(t, n, 11)
	sl := f.Slice(func(v int) bool { return v%3 == 0 })
	if err := sl.validate(); err != nil {
		t.Fatalf("slice not structurally valid: %v", err)
	}
	if sl.NumVertices() != n {
		t.Fatalf("slice covers %d vertices, want %d", sl.NumVertices(), n)
	}
	var kept int64
	for v := 0; v < n; v++ {
		run, orig := sl.PackedRun(v), f.PackedRun(v)
		if v%3 == 0 {
			if len(run) != len(orig) {
				t.Fatalf("kept vertex %d has %d entries, want %d", v, len(run), len(orig))
			}
			for i := range run {
				if run[i] != orig[i] {
					t.Fatalf("kept vertex %d entry %d differs", v, i)
				}
			}
			kept += int64(len(run))
		} else if len(run) != 0 {
			t.Fatalf("dropped vertex %d still has %d entries", v, len(run))
		}
	}
	if sl.NumLabels() != kept {
		t.Fatalf("slice has %d labels, want %d", sl.NumLabels(), kept)
	}
}

// Prefault is a no-op on heap indexes and walks every page of mapped
// payloads (exercised further by the chl-level mmap tests).
func TestPrefaultHeapNoop(t *testing.T) {
	f := randomFlat(t, 50, 1)
	if pages := f.Prefault(); pages != 0 {
		t.Fatalf("heap index prefaulted %d pages", pages)
	}
}

package label

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"unsafe"
)

// Directed flat payload (CHLD, versioned, little endian): the directed
// sibling of the CHLF payload, packing BOTH label halves of a directed
// index — forward runs (hubs reachable from v, d(v→h)) and backward runs
// (hubs that reach v, d(h→v)) — into one contiguous region:
//
//	magic   [4]byte  "CHLD"
//	version uint8    currently dflatVersion (1)
//	n       uint32   vertex count (shared by both halves)
//	totalF  uint64   forward label count
//	totalB  uint64   backward label count
//	fwdOffsets (n+1) × uint32
//	bwdOffsets (n+1) × uint32
//	fwdEntries totalF × uint64 — hub<<32 | float32bits(dist)
//	bwdEntries totalB × uint64
//
// Both halves are ordinary FlatIndex arrays, so every run-level consumer
// (PackedRun, Slice, the join kernels, validate) works on them unchanged;
// a directed query u→v is JoinPacked(fwd.PackedRun(u), bwd.PackedRun(v)).
// The two offset arrays are adjacent and the two entry arrays are
// adjacent, which keeps the alignment story one padding decision: with
// the payload based at a file offset ≡ 7 (mod 8) — arranged by CHFX
// version 3's pad — the offsets land 4-aligned and both entry arrays
// 8-aligned, so MapDirectedFlat serves the whole payload zero-copy.

var dflatMagic = [4]byte{'C', 'H', 'L', 'D'}

// dflatVersion is the current directed flat serialization version;
// readers reject anything newer.
const dflatVersion = 1

// DirectedFlatHeaderBytes is the CHLD header size: magic (4) + version
// (1) + n (4) + totalF (8) + totalB (8). The framing writer (CHFX v3)
// uses it to compute the alignment pad.
const DirectedFlatHeaderBytes = 25

// WriteDirectedFlat serializes the two halves of a directed flat index
// as one CHLD payload. The halves must cover the same vertex count.
func WriteDirectedFlat(w io.Writer, fwd, bwd *FlatIndex) (int64, error) {
	if fwd.NumVertices() != bwd.NumVertices() {
		return 0, fmt.Errorf("label: directed halves cover %d and %d vertices", fwd.NumVertices(), bwd.NumVertices())
	}
	bw := bufio.NewWriter(w)
	var written int64
	emit := func(p []byte) error {
		k, err := bw.Write(p)
		written += int64(k)
		return err
	}
	var hdr [DirectedFlatHeaderBytes]byte
	copy(hdr[:4], dflatMagic[:])
	hdr[4] = dflatVersion
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(fwd.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[9:17], uint64(len(fwd.entries)))
	binary.LittleEndian.PutUint64(hdr[17:25], uint64(len(bwd.entries)))
	if err := emit(hdr[:]); err != nil {
		return written, err
	}
	var buf [4096]byte
	for _, xs := range [][]uint32{fwd.offsets, bwd.offsets} {
		for len(xs) > 0 {
			chunk := len(buf) / 4
			if chunk > len(xs) {
				chunk = len(xs)
			}
			for i := 0; i < chunk; i++ {
				binary.LittleEndian.PutUint32(buf[i*4:], xs[i])
			}
			if err := emit(buf[:chunk*4]); err != nil {
				return written, err
			}
			xs = xs[chunk:]
		}
	}
	for _, es := range [][]uint64{fwd.entries, bwd.entries} {
		for len(es) > 0 {
			chunk := len(buf) / 8
			if chunk > len(es) {
				chunk = len(es)
			}
			for i := 0; i < chunk; i++ {
				binary.LittleEndian.PutUint64(buf[i*8:], es[i])
			}
			if err := emit(buf[:chunk*8]); err != nil {
				return written, err
			}
			es = es[chunk:]
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, nil
}

// ReadDirectedFlat deserializes a CHLD payload written by
// WriteDirectedFlat, validating the magic, version and the structural
// invariants of both halves (monotone offsets spanning the entry arrays,
// strictly sorted in-range hubs).
func ReadDirectedFlat(r io.Reader) (fwd, bwd *FlatIndex, err error) {
	br := bufio.NewReader(r)
	var hdr [DirectedFlatHeaderBytes]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("label: reading directed flat header: %w", err)
	}
	if [4]byte(hdr[:4]) != dflatMagic {
		return nil, nil, fmt.Errorf("label: bad directed flat magic %q", hdr[:4])
	}
	if v := hdr[4]; v != dflatVersion {
		return nil, nil, fmt.Errorf("label: unsupported directed flat version %d (want %d)", v, dflatVersion)
	}
	n := int(binary.LittleEndian.Uint32(hdr[5:9]))
	totalF := binary.LittleEndian.Uint64(hdr[9:17])
	totalB := binary.LittleEndian.Uint64(hdr[17:25])
	if totalF > 1<<32 || totalB > 1<<32 {
		return nil, nil, fmt.Errorf("label: implausible directed label counts %d/%d", totalF, totalB)
	}
	// As in ReadFlat, arrays grow as bytes actually arrive, so a hostile
	// header cannot demand gigabytes before the first short read fails.
	var buf [4096]byte
	readOffsets := func(side string) ([]uint32, error) {
		offsets := make([]uint32, 0)
		for remain := n + 1; remain > 0; {
			chunk := len(buf) / 4
			if chunk > remain {
				chunk = remain
			}
			if _, err := io.ReadFull(br, buf[:chunk*4]); err != nil {
				return nil, fmt.Errorf("label: reading %s flat offsets: %w", side, err)
			}
			for i := 0; i < chunk; i++ {
				offsets = append(offsets, binary.LittleEndian.Uint32(buf[i*4:]))
			}
			remain -= chunk
		}
		return offsets, nil
	}
	readEntries := func(side string, total uint64) ([]uint64, error) {
		entries := make([]uint64, 0)
		for remain := total; remain > 0; {
			chunk := uint64(len(buf) / 8)
			if chunk > remain {
				chunk = remain
			}
			if _, err := io.ReadFull(br, buf[:chunk*8]); err != nil {
				return nil, fmt.Errorf("label: reading %s flat entries: %w", side, err)
			}
			for i := uint64(0); i < chunk; i++ {
				entries = append(entries, binary.LittleEndian.Uint64(buf[i*8:]))
			}
			remain -= chunk
		}
		return entries, nil
	}
	fo, err := readOffsets("forward")
	if err != nil {
		return nil, nil, err
	}
	bo, err := readOffsets("backward")
	if err != nil {
		return nil, nil, err
	}
	// Cheap span fail-fast before the (much larger) entry streams.
	if fo[0] != 0 || uint64(fo[n]) != totalF {
		return nil, nil, fmt.Errorf("label: forward flat offsets do not span the label array")
	}
	if bo[0] != 0 || uint64(bo[n]) != totalB {
		return nil, nil, fmt.Errorf("label: backward flat offsets do not span the label array")
	}
	fe, err := readEntries("forward", totalF)
	if err != nil {
		return nil, nil, err
	}
	be, err := readEntries("backward", totalB)
	if err != nil {
		return nil, nil, err
	}
	fwd = &FlatIndex{offsets: fo, entries: fe}
	bwd = &FlatIndex{offsets: bo, entries: be}
	if err := fwd.validate(); err != nil {
		return nil, nil, fmt.Errorf("label: forward half: %w", err)
	}
	if err := bwd.validate(); err != nil {
		return nil, nil, fmt.Errorf("label: backward half: %w", err)
	}
	return fwd, bwd, nil
}

// MapDirectedFlat constructs the two halves of a directed flat index
// whose arrays alias data, which must hold a CHLD payload starting at
// its first byte (trailing bytes are ignored). The same structural
// validation as ReadDirectedFlat runs on both halves before the indexes
// are returned. The forward half's raw region covers the entire payload,
// so Prefault on it faults both halves in. The caller keeps data alive
// (and mapped) for the lifetime of both returned indexes.
func MapDirectedFlat(data []byte) (fwd, bwd *FlatIndex, err error) {
	if !nativeLittleEndian() {
		return nil, nil, fmt.Errorf("%w: host is big endian", ErrNotMappable)
	}
	if len(data) < DirectedFlatHeaderBytes {
		return nil, nil, fmt.Errorf("label: directed flat payload too short (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != dflatMagic {
		return nil, nil, fmt.Errorf("label: bad directed flat magic %q", data[:4])
	}
	if v := data[4]; v != dflatVersion {
		return nil, nil, fmt.Errorf("label: unsupported directed flat version %d (want %d)", v, dflatVersion)
	}
	n := int(binary.LittleEndian.Uint32(data[5:9]))
	totalF := binary.LittleEndian.Uint64(data[9:17])
	totalB := binary.LittleEndian.Uint64(data[17:25])
	if totalF > 1<<32 || totalB > 1<<32 {
		return nil, nil, fmt.Errorf("label: implausible directed label counts %d/%d", totalF, totalB)
	}
	offBytes := int64(n+1) * 4
	need := int64(DirectedFlatHeaderBytes) + 2*offBytes + int64(totalF)*8 + int64(totalB)*8
	if int64(len(data)) < need {
		return nil, nil, fmt.Errorf("label: directed flat payload truncated: %d bytes, need %d", len(data), need)
	}
	mapOffsets := func(start int64) ([]uint32, error) {
		b := data[start : start+offBytes]
		if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
			return nil, fmt.Errorf("%w: offsets array misaligned within the file", ErrNotMappable)
		}
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n+1), nil
	}
	mapEntries := func(start int64, total uint64) ([]uint64, error) {
		if total == 0 {
			return nil, nil
		}
		b := data[start : start+int64(total)*8]
		if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
			return nil, fmt.Errorf("%w: entries array misaligned within the file", ErrNotMappable)
		}
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), total), nil
	}
	fo, err := mapOffsets(DirectedFlatHeaderBytes)
	if err != nil {
		return nil, nil, err
	}
	bo, err := mapOffsets(DirectedFlatHeaderBytes + offBytes)
	if err != nil {
		return nil, nil, err
	}
	fe, err := mapEntries(DirectedFlatHeaderBytes+2*offBytes, totalF)
	if err != nil {
		return nil, nil, err
	}
	be, err := mapEntries(DirectedFlatHeaderBytes+2*offBytes+int64(totalF)*8, totalB)
	if err != nil {
		return nil, nil, err
	}
	fwd = &FlatIndex{offsets: fo, entries: fe}
	bwd = &FlatIndex{offsets: bo, entries: be}
	if err := fwd.validate(); err != nil {
		return nil, nil, fmt.Errorf("label: forward half: %w", err)
	}
	if err := bwd.validate(); err != nil {
		return nil, nil, fmt.Errorf("label: backward half: %w", err)
	}
	// One raw region on the forward half: Prefault walks the whole
	// payload, both halves included.
	fwd.raw = data[:need]
	return fwd, bwd, nil
}

// MapDirectedFlatFile is MapDirectedFlat over the CHLD payload at byte
// offset off of the already-open file f — the directed sibling of
// MapFlatFile, with the same contract: the mapping is taken from f's
// descriptor (not its path), f may be closed after return, and the
// returned closer releases the mapping once the caller is done with
// both halves.
func MapDirectedFlatFile(f *os.File, off int64) (fwd, bwd *FlatIndex, closer func() error, err error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, nil, err
	}
	size := st.Size()
	if off < 0 || off >= size {
		return nil, nil, nil, fmt.Errorf("label: directed flat payload offset %d outside file of %d bytes", off, size)
	}
	data, err := mmapFile(f, size)
	if err != nil {
		if errors.Is(err, ErrNotMappable) {
			return nil, nil, nil, err
		}
		return nil, nil, nil, fmt.Errorf("%w: mmap %s: %v", ErrNotMappable, f.Name(), err)
	}
	fwd, bwd, err = MapDirectedFlat(data[off:])
	if err != nil {
		munmapBytes(data)
		return nil, nil, nil, err
	}
	adviseDirectedFlat(data, off, fwd, bwd)
	return fwd, bwd, func() error { return munmapBytes(data) }, nil
}

// adviseDirectedFlat mirrors adviseFlat for a CHLD payload at byte
// offset off of the mapping: both offset arrays (adjacent) get
// MADV_WILLNEED, both entry arrays (adjacent) MADV_RANDOM.
func adviseDirectedFlat(data []byte, off int64, fwd, bwd *FlatIndex) {
	offStart := off + DirectedFlatHeaderBytes
	offLen := int64(len(fwd.offsets)+len(bwd.offsets)) * 4
	madviseSpan(data, offStart, offLen, adviceWillNeed)
	madviseSpan(data, offStart+offLen, int64(len(fwd.entries)+len(bwd.entries))*8, adviceRandom)
}

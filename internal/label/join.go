package label

import "math"

// Router-side join kernels: a sharded serving tier answers a cross-shard
// query by fetching the two packed label runs from their owning shards and
// hub-joining them locally. The runs are byte-identical slices of each
// shard's entries array (FlatIndex.PackedRun), so these kernels are the
// same merge- and hash-joins the single-process query paths run — same
// float32→float64 summation, same smallest-rank-hub tie-break — which is
// what makes a routed answer bit-identical to a single-process one.

// PackedRun returns the packed entry run of v, aliasing the index's entry
// array (zero-copy on a memory-mapped index). The run is sorted ascending
// by hub id; callers must not modify it.
func (f *FlatIndex) PackedRun(v int) []uint64 {
	lo, hi := f.offsets[v], f.offsets[v+1]
	return f.entries[lo:hi:hi]
}

// JoinPacked merge-joins two packed label runs, returning the best
// distance, its witness hub (rank space), and reachability. It is
// FlatIndex.QueryHub over runs that need not live in the same index —
// the cross-shard case — and matches it exactly, including the
// smallest-hub (highest-rank) tie-break among equal-distance witnesses.
func JoinPacked(a, b []uint64) (dist float64, hub uint32, ok bool) {
	dist = Infinity
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ei, ej := a[i], b[j]
		hi, hj := ei>>32, ej>>32
		if hi == hj {
			if d := entryDist(ei) + entryDist(ej); d < dist {
				dist, hub, ok = d, uint32(hi), true
			}
			i++
			j++
		} else if hi < hj {
			i++
		} else {
			j++
		}
	}
	return dist, hub, ok
}

// JoinPackedWith is JoinPacked through the hash-join serving kernel: the
// shorter run is scattered into the scratch, the longer one probes it —
// the same branch-predictable loop QueryHubWith runs, worth ~2× when the
// scratch stays cache-resident. The scratch must be sized for the index
// the runs came from (every hub id must be a valid slot); one scratch is
// owned by one goroutine.
func JoinPackedWith(s *QueryScratch, a, b []uint64) (dist float64, hub uint32, ok bool) {
	if len(a) > len(b) {
		a, b = b, a
	}
	dist = Infinity
	if len(a) == 0 || len(b) == 0 {
		return dist, 0, false
	}
	// Truncate both runs past the other side's maximum hub, as in
	// QueryWith: entries beyond it can never match.
	aMax, bMax := a[len(a)-1]|0xffffffff, b[len(b)-1]|0xffffffff
	for len(a) > 0 && a[len(a)-1] > bMax {
		a = a[:len(a)-1]
	}
	s.bump()
	cur := uint64(s.current) << 32
	slot := s.slot
	for _, e := range a {
		slot[e>>32] = cur | e&0xffffffff
	}
	for _, e := range b {
		if e > aMax {
			break
		}
		w := slot[e>>32]
		if w&^uint64(0xffffffff) == cur {
			if d := float64(math.Float32frombits(uint32(w))) + entryDist(e); d < dist {
				dist, hub, ok = d, uint32(e>>32), true
			}
		}
	}
	return dist, hub, ok
}

// Slice returns a new heap-backed FlatIndex over the same vertex-id space
// that keeps only the label runs of vertices for which keep returns true;
// every other vertex gets an empty run. This is how a shard-index writer
// carves one shard's share out of a full index: the sliced index remains a
// structurally valid FlatIndex (hub ids still reference the full vertex
// space), so the existing savers, loaders, and serving stack work on it
// unchanged.
func (f *FlatIndex) Slice(keep func(v int) bool) *FlatIndex {
	n := f.NumVertices()
	out := &FlatIndex{offsets: make([]uint32, n+1)}
	var total int
	for v := 0; v < n; v++ {
		if keep(v) {
			total += f.LabelCount(v)
		}
	}
	out.entries = make([]uint64, 0, total)
	for v := 0; v < n; v++ {
		out.offsets[v] = uint32(len(out.entries))
		if keep(v) {
			out.entries = append(out.entries, f.PackedRun(v)...)
		}
	}
	out.offsets[n] = uint32(len(out.entries))
	return out
}

package label

import "math"

// Router-side join kernels: a sharded serving tier answers a cross-shard
// query by fetching the two packed label runs from their owning shards and
// hub-joining them locally. The runs are byte-identical slices of each
// shard's entries array (FlatIndex.PackedRun), so these kernels are the
// same merge- and hash-joins the single-process query paths run — same
// float32→float64 summation, same smallest-rank-hub tie-break — which is
// what makes a routed answer bit-identical to a single-process one.

// PackedRun returns the packed entry run of v, aliasing the index's entry
// array (zero-copy on a memory-mapped index). The run is sorted ascending
// by hub id; callers must not modify it.
func (f *FlatIndex) PackedRun(v int) []uint64 {
	lo, hi := f.offsets[v], f.offsets[v+1]
	return f.entries[lo:hi:hi]
}

// JoinPacked merge-joins two packed label runs, returning the best
// distance, its witness hub (rank space), and reachability. It is
// FlatIndex.QueryHub over runs that need not live in the same index —
// the cross-shard case — and matches it exactly, including the
// smallest-hub (highest-rank) tie-break among equal-distance witnesses.
func JoinPacked(a, b []uint64) (dist float64, hub uint32, ok bool) {
	dist = Infinity
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ei, ej := a[i], b[j]
		hi, hj := ei>>32, ej>>32
		if hi == hj {
			if d := entryDist(ei) + entryDist(ej); d < dist {
				dist, hub, ok = d, uint32(hi), true
			}
			i++
			j++
		} else if hi < hj {
			i++
		} else {
			j++
		}
	}
	return dist, hub, ok
}

// JoinPackedWith is JoinPacked through the hash-join serving kernel: the
// shorter run is scattered into the scratch, the longer one probes it —
// the same branch-predictable loop QueryHubWith runs, worth ~2× when the
// scratch stays cache-resident. The scratch must be sized for the index
// the runs came from (every hub id must be a valid slot); one scratch is
// owned by one goroutine.
func JoinPackedWith(s *QueryScratch, a, b []uint64) (dist float64, hub uint32, ok bool) {
	if len(a) > len(b) {
		a, b = b, a
	}
	dist = Infinity
	if len(a) == 0 || len(b) == 0 {
		return dist, 0, false
	}
	// Truncate both runs past the other side's maximum hub, as in
	// QueryWith: entries beyond it can never match.
	aMax, bMax := a[len(a)-1]|0xffffffff, b[len(b)-1]|0xffffffff
	for len(a) > 0 && a[len(a)-1] > bMax {
		a = a[:len(a)-1]
	}
	s.bump()
	cur := uint64(s.current) << 32
	slot := s.slot
	for _, e := range a {
		slot[e>>32] = cur | e&0xffffffff
	}
	for _, e := range b {
		if e > aMax {
			break
		}
		w := slot[e>>32]
		if w&^uint64(0xffffffff) == cur {
			if d := float64(math.Float32frombits(uint32(w))) + entryDist(e); d < dist {
				dist, hub, ok = d, uint32(e>>32), true
			}
		}
	}
	return dist, hub, ok
}

// RunScatter is one packed label run scattered into a QueryScratch so
// that many probes can reuse the single scatter — the kernel behind
// one-to-many and many-to-many (/matrix) queries, which pay one label
// scan per source row instead of re-scattering for every target pair.
// The scatter stays valid until the scratch is used by anything else
// (another scatter or a hash-join query); one scratch is owned by one
// goroutine.
type RunScatter struct {
	s      *QueryScratch
	cur    uint64 // version stamp of this scatter, pre-shifted
	minHub uint32 // hub range of the scattered run (skip bounds for probes)
	maxHub uint32
	empty  bool
}

// ScatterRun scatters run (hub-sorted, as every packed run is) into s.
func ScatterRun(s *QueryScratch, run []uint64) RunScatter {
	if len(run) == 0 {
		return RunScatter{s: s, empty: true}
	}
	s.bump()
	cur := uint64(s.current) << 32
	slot := s.slot
	for _, e := range run {
		slot[e>>32] = cur | e&0xffffffff
	}
	return RunScatter{
		s:      s,
		cur:    cur,
		minHub: uint32(run[0] >> 32),
		maxHub: uint32(run[len(run)-1] >> 32),
	}
}

// Probe hub-joins one target run against the scattered source run —
// the same float64 summation and smallest-hub tie-break as
// QueryHubWith, so the answer is bit-identical to the pairwise
// kernels on the same label sets. Entries past the source's maximum
// hub can never match and end the scan early.
func (rs RunScatter) Probe(run []uint64) (dist float64, hub uint32, ok bool) {
	dist = Infinity
	if rs.empty {
		return dist, 0, false
	}
	maxEntry := uint64(rs.maxHub)<<32 | 0xffffffff
	slot := rs.s.slot
	for _, e := range run {
		if e > maxEntry {
			break
		}
		w := slot[e>>32]
		if w&^uint64(0xffffffff) == rs.cur {
			if d := float64(math.Float32frombits(uint32(w))) + entryDist(e); d < dist {
				dist, hub, ok = d, uint32(e>>32), true
			}
		}
	}
	return dist, hub, ok
}

// Slice returns a new heap-backed FlatIndex over the same vertex-id space
// that keeps only the label runs of vertices for which keep returns true;
// every other vertex gets an empty run. This is how a shard-index writer
// carves one shard's share out of a full index: the sliced index remains a
// structurally valid FlatIndex (hub ids still reference the full vertex
// space), so the existing savers, loaders, and serving stack work on it
// unchanged.
func (f *FlatIndex) Slice(keep func(v int) bool) *FlatIndex {
	n := f.NumVertices()
	out := &FlatIndex{offsets: make([]uint32, n+1)}
	var total int
	for v := 0; v < n; v++ {
		if keep(v) {
			total += f.LabelCount(v)
		}
	}
	out.entries = make([]uint64, 0, total)
	for v := 0; v < n; v++ {
		out.offsets[v] = uint32(len(out.entries))
		if keep(v) {
			out.entries = append(out.entries, f.PackedRun(v)...)
		}
	}
	out.offsets[n] = uint32(len(out.entries))
	return out
}

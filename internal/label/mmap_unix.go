//go:build unix

package label

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared. The mapping outlives
// the file descriptor, so callers may close f immediately afterwards.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapBytes(b []byte) error { return syscall.Munmap(b) }

// Package label defines hub labels and the data structures that hold them:
// per-vertex label vectors, a queryable Index, a hash-join accelerator for
// the distance queries performed during label construction (the LR =
// hash(L_h) of Algorithm 1), a lock-striped concurrent store for parallel
// construction, and binary (de)serialization.
//
// Everything in this package operates in rank space: vertex ids have been
// permuted so that id 0 is the highest-ranked vertex and R(u) > R(v) ⇔
// u < v. Label vectors are kept sorted by hub id, which is therefore also
// sorted by descending rank — the order both the merge-join query and the
// cleaning queries need.
package label

import (
	"fmt"
	"math"
	"sort"
)

// Infinity mirrors graph.Infinity for query results on disconnected pairs.
const Infinity = math.MaxFloat64

// Bytes is the accounted size of one label: a 4-byte hub id plus an 8-byte
// distance. All communication-volume and memory numbers in the experiment
// harness are multiples of this.
const Bytes = 12

// L is a single hub label (h, d(v,h)) as defined in Table 1 of the paper.
type L struct {
	Hub  uint32
	Dist float64
}

// Set is the label vector of one vertex, sorted ascending by Hub
// (descending by rank).
type Set []L

// Sort orders the set ascending by hub id; ties (which appear only
// transiently in construction) keep the smaller distance first.
func (s Set) Sort() {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Hub != s[j].Hub {
			return s[i].Hub < s[j].Hub
		}
		return s[i].Dist < s[j].Dist
	})
}

// IsSorted reports whether the set is sorted ascending by hub id with no
// duplicate hubs.
func (s Set) IsSorted() bool {
	for i := 1; i < len(s); i++ {
		if s[i-1].Hub >= s[i].Hub {
			return false
		}
	}
	return true
}

// Find returns the distance to hub h, if present.
func (s Set) Find(h uint32) (float64, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Hub >= h })
	if i < len(s) && s[i].Hub == h {
		return s[i].Dist, true
	}
	return Infinity, false
}

// Clone returns a copy of the set.
func (s Set) Clone() Set { return append(Set(nil), s...) }

// Merge merges the sorted set other into s (both sorted, disjoint hubs are
// the common case; on a duplicate hub the smaller distance wins) and returns
// the merged sorted set.
func (s Set) Merge(other Set) Set {
	if len(other) == 0 {
		return s
	}
	if len(s) == 0 {
		return other.Clone()
	}
	out := make(Set, 0, len(s)+len(other))
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i].Hub < other[j].Hub:
			out = append(out, s[i])
			i++
		case s[i].Hub > other[j].Hub:
			out = append(out, other[j])
			j++
		default:
			l := s[i]
			if other[j].Dist < l.Dist {
				l.Dist = other[j].Dist
			}
			out = append(out, l)
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, other[j:]...)
	return out
}

// QueryMerge answers a PPSD query by merge-joining two sorted label sets.
// It returns the minimum d(u,h)+d(h,v) over common hubs h, the hub achieving
// it, and ok=false if the sets share no hub. Among equal-distance witnesses
// the highest-ranked (smallest id) hub is returned, the "rank priority" used
// by Lemma 2.
func QueryMerge(a, b Set) (dist float64, hub uint32, ok bool) {
	dist = Infinity
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Hub < b[j].Hub:
			i++
		case a[i].Hub > b[j].Hub:
			j++
		default:
			if d := a[i].Dist + b[j].Dist; d < dist {
				dist, hub, ok = d, a[i].Hub, true
			}
			i++
			j++
		}
	}
	return dist, hub, ok
}

// QueryMergeBounded is QueryMerge restricted to hubs ranked strictly higher
// than (id strictly less than) bound. It implements the restricted pruning
// experiment of Figure 4 and the common-label-table queries of §5.3.
func QueryMergeBounded(a, b Set, bound uint32) (dist float64, hub uint32, ok bool) {
	dist = Infinity
	i, j := 0, 0
	for i < len(a) && j < len(b) && a[i].Hub < bound && b[j].Hub < bound {
		switch {
		case a[i].Hub < b[j].Hub:
			i++
		case a[i].Hub > b[j].Hub:
			j++
		default:
			if d := a[i].Dist + b[j].Dist; d < dist {
				dist, hub, ok = d, a[i].Hub, true
			}
			i++
			j++
		}
	}
	return dist, hub, ok
}

// Validate checks structural invariants (sortedness, finite positive
// distances except the self label, hub ids < n) and returns a descriptive
// error on the first violation. Tests call it on every produced labeling.
func (s Set) Validate(owner int, n int) error {
	for i, l := range s {
		if int(l.Hub) >= n {
			return fmt.Errorf("label: vertex %d has out-of-range hub %d (n=%d)", owner, l.Hub, n)
		}
		if i > 0 && s[i-1].Hub >= l.Hub {
			return fmt.Errorf("label: vertex %d labels not strictly sorted at %d", owner, i)
		}
		if math.IsNaN(l.Dist) || l.Dist < 0 || math.IsInf(l.Dist, 0) {
			return fmt.Errorf("label: vertex %d hub %d has bad distance %v", owner, l.Hub, l.Dist)
		}
		if int(l.Hub) == owner && l.Dist != 0 {
			return fmt.Errorf("label: vertex %d self label has distance %v", owner, l.Dist)
		}
	}
	return nil
}

package label

import "math"

// FlatIndex is a frozen, read-only hub labeling packed into two contiguous
// arrays: a CSR-style offsets vector and one packed entry stream,
// hub-sorted per vertex. Each entry is a single uint64 with the hub id in
// the high 32 bits and the IEEE-754 bits of the float32 distance in the
// low 32 — so a merge-join step issues exactly one load per side, the hub
// comparison is a shift, and the distance comes for free from the word
// already in a register. Compared with Index's per-vertex Go slices this
// removes two pointer chases per query side, halves the entry size (8
// bytes vs 16), and keeps both sides of the join on sequential cache
// lines. Because hubs occupy the high bits, entries are monotonically
// increasing per vertex, and the in-memory arrays are byte-identical to
// the serialized CHLF payload.
//
// Distances are narrowed to float32. The synthetic datasets and DIMACS
// road graphs use small integer edge weights, for which float32 is exact
// (integers below 2^24 round-trip); graphs with arbitrary fractional
// weights lose precision beyond ~7 significant digits.
//
// A FlatIndex is immutable after construction and safe for concurrent
// readers.
type FlatIndex struct {
	offsets []uint32 // len n+1; labels of v are entries [offsets[v], offsets[v+1])
	entries []uint64 // hub<<32 | float32bits(dist), ascending per vertex

	// raw is the byte region the arrays alias when the index was
	// constructed by MapFlat (usually a memory mapping); nil for
	// heap-backed indexes. Prefault walks it to fault pages in eagerly.
	raw []byte
}

func packEntry(hub uint32, dist float64) uint64 {
	return uint64(hub)<<32 | uint64(math.Float32bits(float32(dist)))
}

func entryHub(e uint64) uint32 { return uint32(e >> 32) }

func entryDist(e uint64) float64 { return float64(math.Float32frombits(uint32(e))) }

// Freeze packs an Index into a FlatIndex. The source sets must be sorted
// (they always are outside of construction phases).
func Freeze(ix *Index) *FlatIndex {
	n := ix.NumVertices()
	total := ix.TotalLabels()
	f := &FlatIndex{
		offsets: make([]uint32, n+1),
		entries: make([]uint64, total),
	}
	k := 0
	for v := 0; v < n; v++ {
		f.offsets[v] = uint32(k)
		for _, l := range ix.Labels(v) {
			f.entries[k] = packEntry(l.Hub, l.Dist)
			k++
		}
	}
	f.offsets[n] = uint32(k)
	return f
}

// NumVertices returns the number of vertices the index covers.
func (f *FlatIndex) NumVertices() int { return len(f.offsets) - 1 }

// NumLabels returns the total number of packed labels.
func (f *FlatIndex) NumLabels() int64 { return int64(len(f.entries)) }

// LabelCount returns the number of labels of v.
func (f *FlatIndex) LabelCount(v int) int {
	return int(f.offsets[v+1] - f.offsets[v])
}

// TotalMemory returns the exact byte footprint of the packed arrays: 8
// bytes per label plus 4 bytes per vertex of offsets — versus 16 bytes per
// label plus a slice header per vertex for the slice-based Index.
func (f *FlatIndex) TotalMemory() int64 {
	return int64(len(f.offsets))*4 + int64(len(f.entries))*8
}

// Query answers the PPSD query between u and v by merge-joining the two
// packed label runs: the minimum d(u,h)+d(h,v) over common hubs h, or
// Infinity if the pair shares no hub. Distance sums are computed in
// float64, matching Index.Query exactly whenever the stored distances are
// float32-exact.
func (f *FlatIndex) Query(u, v int) float64 {
	i, iEnd := f.offsets[u], f.offsets[u+1]
	j, jEnd := f.offsets[v], f.offsets[v+1]
	best := Infinity
	for i < iEnd && j < jEnd {
		ei, ej := f.entries[i], f.entries[j]
		hi, hj := ei>>32, ej>>32
		if hi == hj {
			if d := entryDist(ei) + entryDist(ej); d < best {
				best = d
			}
			i++
			j++
		} else if hi < hj {
			i++
		} else {
			j++
		}
	}
	return best
}

// QueryScratch is a per-worker probe buffer for QueryWith: one uint64 slot
// per vertex packing a version stamp (high 32 bits, the O(1)-reset trick
// of the construction-time HashDist) with the float32 distance bits (low
// 32), so scatter and probe each touch a single word. One scratch weighs 8
// bytes per vertex and must not be shared between goroutines.
type QueryScratch struct {
	slot    []uint64
	current uint32
}

// NewQueryScratch returns a scratch for indexes over n vertices.
func NewQueryScratch(n int) *QueryScratch {
	return &QueryScratch{slot: make([]uint64, n), current: 1}
}

func (s *QueryScratch) bump() {
	s.current++
	if s.current == 0 { // wrapped: invalidate everything the slow way
		for i := range s.slot {
			s.slot[i] = 0
		}
		s.current = 1
	}
}

// QueryWith answers the PPSD query via hash-join instead of merge-join:
// the shorter label run is scattered into the scratch, the longer one
// probes it. The merge-join's three-way branch is decided by the
// unpredictable interleaving of two hub sequences and mispredicts
// constantly; the probe loop's only branch (slot occupied?) is rarely
// taken and predicts well, which is worth ~2× on indexes whose scratch
// stays cache-resident. Serving loops keep one scratch per worker — no
// allocation per query.
func (f *FlatIndex) QueryWith(s *QueryScratch, u, v int) float64 {
	i, iEnd := f.offsets[u], f.offsets[u+1]
	j, jEnd := f.offsets[v], f.offsets[v+1]
	if iEnd-i > jEnd-j {
		i, iEnd, j, jEnd = j, jEnd, i, iEnd
	}
	if i == iEnd || j == jEnd {
		return Infinity
	}
	// Common hubs live below both runs' maxima: entries past the other
	// side's last hub (the tail — typically the vertex's own low-rank
	// hubs and self label) can never match, so truncate both runs.
	// Comparing packed words compares hubs first; OR-ing the low word
	// makes the cut inclusive of equal hubs at any distance.
	iMax, jMax := f.entries[iEnd-1]|0xffffffff, f.entries[jEnd-1]|0xffffffff
	for iEnd > i && f.entries[iEnd-1] > jMax {
		iEnd--
	}
	s.bump()
	cur := uint64(s.current) << 32
	slot := s.slot
	// Range over subslices: the slice expressions bound-check once, the
	// loops not at all; scratch probes stay checked (hub ids come from
	// input data).
	for _, e := range f.entries[i:iEnd] {
		// Slot = version | distbits; entry low word is already distbits.
		slot[e>>32] = cur | e&0xffffffff
	}
	best := Infinity
	for _, e := range f.entries[j:jEnd] {
		if e > iMax {
			break
		}
		w := slot[e>>32]
		if w&^uint64(0xffffffff) == cur {
			if d := float64(math.Float32frombits(uint32(w))) + entryDist(e); d < best {
				best = d
			}
		}
	}
	return best
}

// QueryHubWith is QueryWith plus the witness hub: the hash-join serving
// kernel for cached engines, whose cache entries store the full answer.
// The probe run is hub-sorted, so the strict improvement test selects the
// highest-ranked (smallest id) hub among equal-distance witnesses —
// exactly QueryHub's tie-break.
func (f *FlatIndex) QueryHubWith(s *QueryScratch, u, v int) (dist float64, hub uint32, ok bool) {
	i, iEnd := f.offsets[u], f.offsets[u+1]
	j, jEnd := f.offsets[v], f.offsets[v+1]
	if iEnd-i > jEnd-j {
		i, iEnd, j, jEnd = j, jEnd, i, iEnd
	}
	dist = Infinity
	if i == iEnd || j == jEnd {
		return dist, 0, false
	}
	iMax, jMax := f.entries[iEnd-1]|0xffffffff, f.entries[jEnd-1]|0xffffffff
	for iEnd > i && f.entries[iEnd-1] > jMax {
		iEnd--
	}
	s.bump()
	cur := uint64(s.current) << 32
	slot := s.slot
	for _, e := range f.entries[i:iEnd] {
		slot[e>>32] = cur | e&0xffffffff
	}
	for _, e := range f.entries[j:jEnd] {
		if e > iMax {
			break
		}
		w := slot[e>>32]
		if w&^uint64(0xffffffff) == cur {
			if d := float64(math.Float32frombits(uint32(w))) + entryDist(e); d < dist {
				dist, hub, ok = d, uint32(e>>32), true
			}
		}
	}
	return dist, hub, ok
}

// QueryHub answers the PPSD query and also reports the witness hub. Among
// equal-distance witnesses the highest-ranked (smallest id) hub wins, as
// in QueryMerge.
func (f *FlatIndex) QueryHub(u, v int) (dist float64, hub uint32, ok bool) {
	i, iEnd := f.offsets[u], f.offsets[u+1]
	j, jEnd := f.offsets[v], f.offsets[v+1]
	dist = Infinity
	for i < iEnd && j < jEnd {
		ei, ej := f.entries[i], f.entries[j]
		hi, hj := ei>>32, ej>>32
		if hi == hj {
			if d := entryDist(ei) + entryDist(ej); d < dist {
				dist, hub, ok = d, uint32(hi), true
			}
			i++
			j++
		} else if hi < hj {
			i++
		} else {
			j++
		}
	}
	return dist, hub, ok
}

// QueryCounted is Query plus the number of entries the merge-join touched,
// for the metered distributed query engines.
func (f *FlatIndex) QueryCounted(u, v int) (float64, int64) {
	i, iEnd := f.offsets[u], f.offsets[u+1]
	j, jEnd := f.offsets[v], f.offsets[v+1]
	i0, j0 := i, j
	best := Infinity
	for i < iEnd && j < jEnd {
		ei, ej := f.entries[i], f.entries[j]
		hi, hj := ei>>32, ej>>32
		if hi == hj {
			if d := entryDist(ei) + entryDist(ej); d < best {
				best = d
			}
			i++
			j++
		} else if hi < hj {
			i++
		} else {
			j++
		}
	}
	return best, int64(i-i0) + int64(j-j0)
}

// Labels reconstructs the label set of v (allocates; query paths should
// use Query/QueryHub directly).
func (f *FlatIndex) Labels(v int) Set {
	lo, hi := f.offsets[v], f.offsets[v+1]
	s := make(Set, 0, hi-lo)
	for k := lo; k < hi; k++ {
		e := f.entries[k]
		s = append(s, L{Hub: entryHub(e), Dist: entryDist(e)})
	}
	return s
}

// ToIndex unpacks the flat store back into a slice-based Index.
func (f *FlatIndex) ToIndex() *Index {
	n := f.NumVertices()
	ix := NewIndex(n)
	for v := 0; v < n; v++ {
		ix.SetLabels(v, f.Labels(v))
	}
	return ix
}

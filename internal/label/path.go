package label

// PathIndex augments an Index with per-label parent pointers, enabling full
// shortest-path retrieval — the §5.4 extension: "by storing the parent of
// each vertex in an SPT along with the corresponding hub label, CHL can
// also be used to compute shortest paths in time linear to the number of
// edges in the paths".
//
// parents[v][i] is the predecessor of v in the SPT rooted at
// Labels(v)[i].Hub, on the tree path the label's distance was achieved
// through; the root's own label has itself as parent. Walking parents from
// both query endpoints to their common hub reconstructs the path: the
// canonical labeling guarantees every vertex on the hub-to-endpoint path
// also carries that hub (the max-rank property is closed under subpaths).
type PathIndex struct {
	ix      *Index
	parents [][]uint32
}

// NewPathIndex wraps an index whose labels are being built alongside parent
// records. Parents must be registered with SetParents in the same order as
// the index's label sets.
func NewPathIndex(ix *Index) *PathIndex {
	return &PathIndex{ix: ix, parents: make([][]uint32, ix.NumVertices())}
}

// Index returns the underlying label index.
func (px *PathIndex) Index() *Index { return px.ix }

// SetParents installs the parent array of v, aligned with ix.Labels(v).
func (px *PathIndex) SetParents(v int, parents []uint32) { px.parents[v] = parents }

// Parent returns v's predecessor in the SPT rooted at hub, if v carries
// that hub.
func (px *PathIndex) Parent(v int, hub uint32) (uint32, bool) {
	s := px.ix.Labels(v)
	for i, l := range s {
		if l.Hub == hub {
			return px.parents[v][i], true
		}
	}
	return 0, false
}

// Path returns the vertices of a shortest u–v path (inclusive) and its
// length, or ok=false if v is unreachable from u. Cost is linear in the
// path's edge count plus two label merge-joins.
func (px *PathIndex) Path(u, v int) (path []int, dist float64, ok bool) {
	if u == v {
		return []int{u}, 0, true
	}
	dist, hub, ok := QueryMerge(px.ix.Labels(u), px.ix.Labels(v))
	if !ok {
		return nil, Infinity, false
	}
	// Walk u → hub.
	left := []int{u}
	for cur := uint32(u); cur != hub; {
		p, found := px.Parent(int(cur), hub)
		if !found || p == cur {
			return nil, dist, false // corrupted parent chain
		}
		cur = p
		left = append(left, int(cur))
	}
	// Walk v → hub, then reverse onto the left half.
	var right []int
	for cur := uint32(v); cur != hub; {
		p, found := px.Parent(int(cur), hub)
		if !found || p == cur {
			return nil, dist, false
		}
		right = append(right, int(cur))
		cur = p
	}
	for i := len(right) - 1; i >= 0; i-- {
		left = append(left, right[i])
	}
	return left, dist, true
}

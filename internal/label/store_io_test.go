package label

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestConcurrentStoreParallelAppend(t *testing.T) {
	const n, workers, per = 50, 8, 200
	cs := NewConcurrentStore(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				v := rng.Intn(n)
				cs.Append(v, L{Hub: uint32(w*per + i), Dist: 1})
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for v := 0; v < n; v++ {
		total += cs.Len(v)
	}
	if total != workers*per {
		t.Fatalf("stored %d labels, want %d", total, workers*per)
	}
	ix := cs.Seal()
	if err := ix.Validate(); err == nil {
		// Hubs were synthetic and > n, so Validate must fail — this
		// asserts Seal sorted the sets but kept contents.
		t.Fatal("Validate accepted out-of-range hubs")
	}
	for v := 0; v < n; v++ {
		if !ix.Labels(v).IsSorted() {
			t.Fatalf("vertex %d not sorted after Seal", v)
		}
	}
}

func TestConcurrentStoreQueryAgainst(t *testing.T) {
	cs := NewConcurrentStore(3)
	cs.Append(1, L{Hub: 2, Dist: 3})
	hd := NewHashDist(5)
	hd.Add(2, 4)
	if !cs.QueryAgainst(hd, 1, 7) {
		t.Fatal("witness 3+4 ≤ 7 missed")
	}
	if cs.QueryAgainst(hd, 1, 6.5) {
		t.Fatal("phantom witness")
	}
	if cs.QueryAgainst(hd, 0, 100) {
		t.Fatal("empty vertex matched")
	}
}

func TestConcurrentStoreDrain(t *testing.T) {
	cs := NewConcurrentStore(2)
	cs.Append(0, L{Hub: 1, Dist: 2})
	out := cs.Drain()
	if len(out[0]) != 1 || cs.Len(0) != 0 {
		t.Fatal("Drain did not move labels")
	}
	cs.Append(0, L{Hub: 2, Dist: 1}) // reusable after Drain
	if cs.Len(0) != 1 {
		t.Fatal("store unusable after Drain")
	}
}

func TestConcurrentStoreProfiling(t *testing.T) {
	cs := NewConcurrentStore(2)
	cs.Append(0, L{Hub: 1, Dist: 1})
	if cs.LockCount() != 0 {
		t.Fatal("profiling counted while disabled")
	}
	cs.EnableProfiling()
	cs.Append(0, L{Hub: 2, Dist: 1})
	cs.Len(0)
	if cs.LockCount() != 2 {
		t.Fatalf("lock count = %d, want 2", cs.LockCount())
	}
}

func TestIndexSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := NewIndex(40)
	for v := 0; v < 40; v++ {
		for h := 0; h <= v; h++ {
			if rng.Float64() < 0.3 {
				d := float64(rng.Intn(100)) / 4
				if h == v {
					d = 0
				}
				ix.Append(v, L{Hub: uint32(h), Dist: d})
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ix.Diff(back); diff != "" {
		t.Fatalf("round trip changed index: %s", diff)
	}
}

func TestReadIndexErrors(t *testing.T) {
	// Bad magic.
	if _, err := ReadIndex(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated stream.
	ix := NewIndex(3)
	ix.Append(1, L{Hub: 0, Dist: 2})
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 5, 9, len(full) - 1} {
		if _, err := ReadIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestPermSerialization(t *testing.T) {
	perm := []int{3, 1, 4, 0, 2}
	var buf bytes.Buffer
	if err := WritePerm(&buf, perm); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPerm(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range perm {
		if perm[i] != back[i] {
			t.Fatalf("perm mismatch at %d", i)
		}
	}
	// Non-permutation payloads are rejected.
	var bad bytes.Buffer
	if err := WritePerm(&bad, []int{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPerm(&bad); err == nil {
		t.Fatal("duplicate perm entries accepted")
	}
}

package label

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"unsafe"
)

// Compressed flat payload (CHLC, versioned, little endian): the on-disk
// form of one or two CompressedIndex halves — one for an undirected
// index, two (forward then backward) for a directed one, mirroring how
// CHLD carries both halves of a directed fixed-width index:
//
//	magic     [4]byte  "CHLC"
//	version   uint8    currently cflatVersion (1)
//	halves    uint8    1 (undirected) or 2 (directed: forward + backward)
//	blockSize uint16   entries per full block, in [1, CompressedMaxBlockEntries]
//	n         uint32   vertex count (shared by both halves)
//	nb1       uint32   block count, first half
//	nb2       uint32   block count, second half (0 when halves == 1)
//	dl1       uint64   payload byte length, first half
//	dl2       uint64   payload byte length, second half
//	vertOff1  (n+1) × uint32
//	vertOff2  (n+1) × uint32        (only when halves == 2)
//	heads1    4·nb1 × uint32
//	heads2    4·nb2 × uint32        (only when halves == 2)
//	data1     dl1 bytes
//	data2     dl2 bytes             (only when halves == 2)
//
// Every fixed-width array is uint32 and the variable-width payload is
// plain bytes, so the whole payload needs only 4-byte alignment to be
// served zero-copy — the header is 36 bytes (a multiple of 4) and all
// uint32 arrays precede the byte payloads, so basing the payload at a
// 4-aligned file offset (arranged by CHFX version 4's pad) aligns
// everything. MapCompressedFlat aliases the arrays straight into the
// mapping, exactly as MapFlat does for CHLF.

var cflatMagic = [4]byte{'C', 'H', 'L', 'C'}

// cflatVersion is the current compressed flat serialization version;
// readers reject anything newer.
const cflatVersion = 1

// CompressedFlatHeaderBytes is the CHLC header size: magic (4) + version
// (1) + halves (1) + blockSize (2) + n (4) + nb1 (4) + nb2 (4) + dl1 (8)
// + dl2 (8). The framing writer (CHFX v4) uses it to compute the
// alignment pad.
const CompressedFlatHeaderBytes = 36

// WriteCompressedFlat serializes one or two compressed index halves as a
// CHLC payload. bwd is nil for an undirected index; when present it must
// cover the same vertex count and use the same block size as fwd.
func WriteCompressedFlat(w io.Writer, fwd, bwd *CompressedIndex) (int64, error) {
	if bwd != nil {
		if bwd.n != fwd.n {
			return 0, fmt.Errorf("label: compressed halves cover %d and %d vertices", fwd.n, bwd.n)
		}
		if bwd.blockSize != fwd.blockSize {
			return 0, fmt.Errorf("label: compressed halves use block sizes %d and %d", fwd.blockSize, bwd.blockSize)
		}
	}
	bw := bufio.NewWriter(w)
	var written int64
	emit := func(p []byte) error {
		k, err := bw.Write(p)
		written += int64(k)
		return err
	}
	halves := uint8(1)
	nb2, dl2 := 0, 0
	if bwd != nil {
		halves = 2
		nb2, dl2 = bwd.NumBlocks(), len(bwd.data)
	}
	var hdr [CompressedFlatHeaderBytes]byte
	copy(hdr[:4], cflatMagic[:])
	hdr[4] = cflatVersion
	hdr[5] = halves
	binary.LittleEndian.PutUint16(hdr[6:8], uint16(fwd.blockSize))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(fwd.n))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(fwd.NumBlocks()))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(nb2))
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(len(fwd.data)))
	binary.LittleEndian.PutUint64(hdr[28:36], uint64(dl2))
	if err := emit(hdr[:]); err != nil {
		return written, err
	}
	words := [][]uint32{fwd.vertOff}
	if bwd != nil {
		words = append(words, bwd.vertOff)
	}
	words = append(words, fwd.heads)
	if bwd != nil {
		words = append(words, bwd.heads)
	}
	var buf [4096]byte
	for _, xs := range words {
		for len(xs) > 0 {
			chunk := len(buf) / 4
			if chunk > len(xs) {
				chunk = len(xs)
			}
			for i := 0; i < chunk; i++ {
				binary.LittleEndian.PutUint32(buf[i*4:], xs[i])
			}
			if err := emit(buf[:chunk*4]); err != nil {
				return written, err
			}
			xs = xs[chunk:]
		}
	}
	if err := emit(fwd.data); err != nil {
		return written, err
	}
	if bwd != nil {
		if err := emit(bwd.data); err != nil {
			return written, err
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, nil
}

// ReadCompressedFlat deserializes a CHLC payload written by
// WriteCompressedFlat into heap-backed indexes, validating the header
// and the full structural invariants of every half (which decodes each
// block once). bwd is nil when the payload holds one half.
func ReadCompressedFlat(r io.Reader) (fwd, bwd *CompressedIndex, err error) {
	br := bufio.NewReader(r)
	var hdr [CompressedFlatHeaderBytes]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("label: reading compressed flat header: %w", err)
	}
	halves, blockSize, n, nb1, nb2, dl1, dl2, err := parseCompressedHeader(hdr[:])
	if err != nil {
		return nil, nil, err
	}
	// As in ReadFlat, arrays grow as bytes actually arrive, so a hostile
	// header cannot demand gigabytes before the first short read fails.
	var buf [4096]byte
	readWords := func(what string, count int) ([]uint32, error) {
		words := make([]uint32, 0)
		for remain := count; remain > 0; {
			chunk := len(buf) / 4
			if chunk > remain {
				chunk = remain
			}
			if _, err := io.ReadFull(br, buf[:chunk*4]); err != nil {
				return nil, fmt.Errorf("label: reading compressed %s: %w", what, err)
			}
			for i := 0; i < chunk; i++ {
				words = append(words, binary.LittleEndian.Uint32(buf[i*4:]))
			}
			remain -= chunk
		}
		return words, nil
	}
	readBytes := func(what string, count uint64) ([]byte, error) {
		data := make([]byte, 0)
		for remain := count; remain > 0; {
			chunk := uint64(len(buf))
			if chunk > remain {
				chunk = remain
			}
			if _, err := io.ReadFull(br, buf[:chunk]); err != nil {
				return nil, fmt.Errorf("label: reading compressed %s: %w", what, err)
			}
			data = append(data, buf[:chunk]...)
			remain -= chunk
		}
		return data, nil
	}
	fwd = &CompressedIndex{n: n, blockSize: blockSize}
	if halves == 2 {
		bwd = &CompressedIndex{n: n, blockSize: blockSize}
	}
	if fwd.vertOff, err = readWords("forward vertex offsets", n+1); err != nil {
		return nil, nil, err
	}
	if bwd != nil {
		if bwd.vertOff, err = readWords("backward vertex offsets", n+1); err != nil {
			return nil, nil, err
		}
	}
	if fwd.heads, err = readWords("forward block headers", 4*nb1); err != nil {
		return nil, nil, err
	}
	if bwd != nil {
		if bwd.heads, err = readWords("backward block headers", 4*nb2); err != nil {
			return nil, nil, err
		}
	}
	if fwd.data, err = readBytes("forward block payload", dl1); err != nil {
		return nil, nil, err
	}
	if bwd != nil {
		if bwd.data, err = readBytes("backward block payload", dl2); err != nil {
			return nil, nil, err
		}
	}
	if err := fwd.validate(); err != nil {
		return nil, nil, fmt.Errorf("label: forward half: %w", err)
	}
	if bwd != nil {
		if err := bwd.validate(); err != nil {
			return nil, nil, fmt.Errorf("label: backward half: %w", err)
		}
	}
	return fwd, bwd, nil
}

// parseCompressedHeader decodes and range-checks the fixed CHLC header.
func parseCompressedHeader(hdr []byte) (halves, blockSize, n, nb1, nb2 int, dl1, dl2 uint64, err error) {
	if [4]byte(hdr[:4]) != cflatMagic {
		return 0, 0, 0, 0, 0, 0, 0, fmt.Errorf("label: bad compressed flat magic %q", hdr[:4])
	}
	if v := hdr[4]; v != cflatVersion {
		return 0, 0, 0, 0, 0, 0, 0, fmt.Errorf("label: unsupported compressed flat version %d (want %d)", v, cflatVersion)
	}
	halves = int(hdr[5])
	if halves != 1 && halves != 2 {
		return 0, 0, 0, 0, 0, 0, 0, fmt.Errorf("label: compressed flat payload declares %d halves (want 1 or 2)", halves)
	}
	blockSize = int(binary.LittleEndian.Uint16(hdr[6:8]))
	if blockSize < 1 || blockSize > CompressedMaxBlockEntries {
		return 0, 0, 0, 0, 0, 0, 0, fmt.Errorf("label: compressed block size %d out of range [1,%d]", blockSize, CompressedMaxBlockEntries)
	}
	n = int(binary.LittleEndian.Uint32(hdr[8:12]))
	nb1 = int(binary.LittleEndian.Uint32(hdr[12:16]))
	nb2 = int(binary.LittleEndian.Uint32(hdr[16:20]))
	dl1 = binary.LittleEndian.Uint64(hdr[20:28])
	dl2 = binary.LittleEndian.Uint64(hdr[28:36])
	if halves == 1 && (nb2 != 0 || dl2 != 0) {
		return 0, 0, 0, 0, 0, 0, 0, fmt.Errorf("label: single-half compressed payload declares a second half")
	}
	// The same plausibility ceiling the flat readers apply before
	// trusting header-sized reads.
	if uint64(nb1) > 1<<32 || uint64(nb2) > 1<<32 || dl1 > 1<<33 || dl2 > 1<<33 {
		return 0, 0, 0, 0, 0, 0, 0, fmt.Errorf("label: implausible compressed payload sizes (%d/%d blocks, %d/%d bytes)", nb1, nb2, dl1, dl2)
	}
	return halves, blockSize, n, nb1, nb2, dl1, dl2, nil
}

// MapCompressedFlat constructs compressed index halves whose arrays alias
// data, which must hold a CHLC payload starting at its first byte
// (trailing bytes are ignored). The same structural validation as
// ReadCompressedFlat runs before the indexes are returned. The first
// half's raw region covers the entire payload, so Prefault on it faults
// both halves in. The caller keeps data alive (and mapped) for the
// lifetime of the returned indexes.
func MapCompressedFlat(data []byte) (fwd, bwd *CompressedIndex, err error) {
	if !nativeLittleEndian() {
		return nil, nil, fmt.Errorf("%w: host is big endian", ErrNotMappable)
	}
	if len(data) < CompressedFlatHeaderBytes {
		return nil, nil, fmt.Errorf("label: compressed flat payload too short (%d bytes)", len(data))
	}
	halves, blockSize, n, nb1, nb2, dl1, dl2, err := parseCompressedHeader(data[:CompressedFlatHeaderBytes])
	if err != nil {
		return nil, nil, err
	}
	offWords := int64(n + 1)
	words1 := offWords + int64(nb1)*4
	words2 := int64(0)
	if halves == 2 {
		words2 = offWords + int64(nb2)*4
	}
	need := int64(CompressedFlatHeaderBytes) + (words1+words2)*4 + int64(dl1) + int64(dl2)
	if int64(len(data)) < need {
		return nil, nil, fmt.Errorf("label: compressed flat payload truncated: %d bytes, need %d", len(data), need)
	}
	pos := int64(CompressedFlatHeaderBytes)
	mapWords := func(count int64) ([]uint32, error) {
		if count == 0 {
			return nil, nil
		}
		b := data[pos : pos+count*4]
		if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
			return nil, fmt.Errorf("%w: compressed arrays misaligned within the file", ErrNotMappable)
		}
		pos += count * 4
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), count), nil
	}
	fwd = &CompressedIndex{n: n, blockSize: blockSize}
	if halves == 2 {
		bwd = &CompressedIndex{n: n, blockSize: blockSize}
	}
	if fwd.vertOff, err = mapWords(offWords); err != nil {
		return nil, nil, err
	}
	if bwd != nil {
		if bwd.vertOff, err = mapWords(offWords); err != nil {
			return nil, nil, err
		}
	}
	if fwd.heads, err = mapWords(int64(nb1) * 4); err != nil {
		return nil, nil, err
	}
	if bwd != nil {
		if bwd.heads, err = mapWords(int64(nb2) * 4); err != nil {
			return nil, nil, err
		}
	}
	fwd.data = data[pos : pos+int64(dl1) : pos+int64(dl1)]
	pos += int64(dl1)
	if bwd != nil {
		bwd.data = data[pos : pos+int64(dl2) : pos+int64(dl2)]
	}
	if err := fwd.validate(); err != nil {
		return nil, nil, fmt.Errorf("label: forward half: %w", err)
	}
	if bwd != nil {
		if err := bwd.validate(); err != nil {
			return nil, nil, fmt.Errorf("label: backward half: %w", err)
		}
	}
	// One raw region on the first half: Prefault walks the whole payload,
	// both halves included.
	fwd.raw = data[:need]
	return fwd, bwd, nil
}

// MapCompressedFlatFile is MapCompressedFlat over the CHLC payload at
// byte offset off of the already-open file f — same contract as
// MapFlatFile: the mapping is taken from f's descriptor (not its path),
// f may be closed after return, and the returned closer releases the
// mapping once the caller is done with the indexes.
func MapCompressedFlatFile(f *os.File, off int64) (fwd, bwd *CompressedIndex, closer func() error, err error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, nil, err
	}
	size := st.Size()
	if off < 0 || off >= size {
		return nil, nil, nil, fmt.Errorf("label: compressed flat payload offset %d outside file of %d bytes", off, size)
	}
	data, err := mmapFile(f, size)
	if err != nil {
		if errors.Is(err, ErrNotMappable) {
			return nil, nil, nil, err
		}
		return nil, nil, nil, fmt.Errorf("%w: mmap %s: %v", ErrNotMappable, f.Name(), err)
	}
	fwd, bwd, err = MapCompressedFlat(data[off:])
	if err != nil {
		munmapBytes(data)
		return nil, nil, nil, err
	}
	adviseCompressedFlat(data, off, fwd, bwd)
	return fwd, bwd, func() error { return munmapBytes(data) }, nil
}

// adviseCompressedFlat mirrors adviseFlat for a CHLC payload at byte
// offset off of the mapping: the vertex offsets and block headers
// (adjacent uint32 arrays touched by every query) get MADV_WILLNEED, the
// block payloads MADV_RANDOM.
func adviseCompressedFlat(data []byte, off int64, fwd, bwd *CompressedIndex) {
	offStart := off + CompressedFlatHeaderBytes
	words := int64(len(fwd.vertOff) + len(fwd.heads))
	bytes := int64(len(fwd.data))
	if bwd != nil {
		words += int64(len(bwd.vertOff) + len(bwd.heads))
		bytes += int64(len(bwd.data))
	}
	madviseSpan(data, offStart, words*4, adviceWillNeed)
	madviseSpan(data, offStart+words*4, bytes, adviceRandom)
}

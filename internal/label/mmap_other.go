//go:build !unix

package label

import (
	"fmt"
	"os"
)

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("%w: no mmap on this platform", ErrNotMappable)
}

func munmapBytes(b []byte) error { return nil }

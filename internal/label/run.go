package label

import (
	"encoding/binary"
	"fmt"
)

// Wire codec for one packed label run — the payload of the sharded
// serving tier's /shardquery protocol. A run crosses the wire as the
// little-endian bytes of its uint64 entries, exactly as they sit in the
// owning shard's (usually memory-mapped) entries array; the router
// re-validates the structure before the bytes reach the join kernels,
// whose scratch indexing trusts hub ids.

// PackedRunBytes serializes a packed label run (FlatIndex.PackedRun) as
// its little-endian bytes.
func PackedRunBytes(run []uint64) []byte {
	b := make([]byte, 8*len(run))
	for i, e := range run {
		binary.LittleEndian.PutUint64(b[i*8:], e)
	}
	return b
}

// ParsePackedRun reverses PackedRunBytes, validating that the bytes are a
// structurally sound label run for an n-vertex index: a whole number of
// 8-byte entries, strictly ascending packed words (hubs live in the high
// 32 bits, so word order is exactly hub order), and every hub < n.
// Nothing a hostile or corrupted peer sends past this check can make a
// join kernel index out of range.
func ParsePackedRun(b []byte, n int) ([]uint64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("label: packed run of %d bytes is not a whole number of entries", len(b))
	}
	run := make([]uint64, len(b)/8)
	for i := range run {
		run[i] = binary.LittleEndian.Uint64(b[i*8:])
		if hub := run[i] >> 32; hub >= uint64(n) {
			return nil, fmt.Errorf("label: packed run entry %d has out-of-range hub %d (n=%d)", i, hub, n)
		}
		if i > 0 && run[i-1]>>32 >= run[i]>>32 {
			return nil, fmt.Errorf("label: packed run hubs not strictly sorted at entry %d", i)
		}
	}
	return run, nil
}

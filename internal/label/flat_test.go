package label

import (
	"bytes"
	"math/rand"
	"testing"
)

// randomIndex builds a structurally valid index with sorted per-vertex
// sets and float32-exact (integer) distances.
func randomIndex(n int, seed int64) *Index {
	rng := rand.New(rand.NewSource(seed))
	ix := NewIndex(n)
	for v := 0; v < n; v++ {
		used := map[uint32]bool{}
		s := Set{}
		for k := 0; k < rng.Intn(8); k++ {
			h := uint32(rng.Intn(n))
			if used[h] {
				continue
			}
			used[h] = true
			d := float64(rng.Intn(1000))
			if int(h) == v {
				d = 0
			}
			s = append(s, L{Hub: h, Dist: d})
		}
		if !used[uint32(v)] {
			s = append(s, L{Hub: uint32(v), Dist: 0})
		}
		s.Sort()
		ix.SetLabels(v, s)
	}
	return ix
}

func TestFreezeQueryParity(t *testing.T) {
	ix := randomIndex(200, 1)
	f := Freeze(ix)
	if f.NumVertices() != 200 || f.NumLabels() != ix.TotalLabels() {
		t.Fatalf("shape mismatch: %d vertices, %d labels", f.NumVertices(), f.NumLabels())
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		u, v := rng.Intn(200), rng.Intn(200)
		want, wantHub, wantOK := ix.QueryHub(u, v)
		got, gotHub, gotOK := f.QueryHub(u, v)
		if want != got || wantOK != gotOK || (wantOK && wantHub != gotHub) {
			t.Fatalf("QueryHub(%d,%d): flat (%v,%d,%v) vs slice (%v,%d,%v)",
				u, v, got, gotHub, gotOK, want, wantHub, wantOK)
		}
		if f.Query(u, v) != ix.Query(u, v) {
			t.Fatalf("Query(%d,%d) mismatch", u, v)
		}
	}
}

func TestFlatRoundTrip(t *testing.T) {
	ix := randomIndex(150, 3)
	f := Freeze(ix)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Len()
	if want := 17 + 4*(150+1) + 8*int(f.NumLabels()); wire != want {
		t.Fatalf("serialized size %d, want %d", wire, want)
	}
	back, err := ReadFlat(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.ToIndex().Equal(f.ToIndex()) {
		t.Fatal("round trip changed the labels")
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		u, v := rng.Intn(150), rng.Intn(150)
		if back.Query(u, v) != f.Query(u, v) {
			t.Fatalf("reloaded index disagrees at (%d,%d)", u, v)
		}
	}
	// ReadFrom (io.ReaderFrom) path.
	var g FlatIndex
	if _, err := g.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if g.NumLabels() != f.NumLabels() {
		t.Fatal("ReadFrom lost labels")
	}
}

func TestReadFlatRejectsGarbage(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		if _, err := Freeze(randomIndex(20, 5)).WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	cases := map[string][]byte{
		"empty":       nil,
		"short magic": []byte("CHL"),
		"bad magic":   append([]byte("NOPE"), good[4:]...),
		"bad version": append([]byte("CHLF\x09"), good[5:]...),
		"truncated":   good[:len(good)/2],
	}
	for name, c := range cases {
		if _, err := ReadFlat(bytes.NewReader(c)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Corrupt a hub id to point past the vertex range: the hub occupies
	// the high 4 bytes of the first little-endian entry word.
	var f0 FlatIndex
	if _, err := f0.ReadFrom(bytes.NewReader(good)); err != nil {
		t.Fatal(err)
	}
	hubOff := 17 + 4*(f0.NumVertices()+1) + 4
	oor := append([]byte(nil), good...)
	oor[hubOff] = 0xff
	oor[hubOff+1] = 0xff
	if _, err := ReadFlat(bytes.NewReader(oor)); err == nil {
		t.Error("out-of-range hub accepted")
	}
	// Corrupt the hub ordering of some vertex with ≥2 labels: swap the two
	// 4-byte hub cells right after the offsets block.
	var f FlatIndex
	if _, err := f.ReadFrom(bytes.NewReader(good)); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < f.NumVertices(); v++ {
		if f.LabelCount(v) >= 2 {
			off := 17 + 4*(f.NumVertices()+1) + 8*int(f.offsets[v])
			bad := append([]byte(nil), good...)
			copy(bad[off:off+8], good[off+8:off+16])
			copy(bad[off+8:off+16], good[off:off+8])
			if _, err := ReadFlat(bytes.NewReader(bad)); err == nil {
				t.Error("unsorted hubs accepted")
			}
			return
		}
	}
}

func TestFlatMemoryAccounting(t *testing.T) {
	ix := randomIndex(100, 6)
	f := Freeze(ix)
	want := int64(101)*4 + f.NumLabels()*8
	if f.TotalMemory() != want {
		t.Fatalf("TotalMemory = %d, want %d", f.TotalMemory(), want)
	}
	if f.TotalMemory() >= ix.TotalLabels()*16 {
		t.Fatal("flat store not smaller than slice entries alone")
	}
}

func TestQueryCountedFlatMatchesSlices(t *testing.T) {
	ix := randomIndex(80, 7)
	f := Freeze(ix)
	for u := 0; u < 80; u += 3 {
		for v := 0; v < 80; v += 5 {
			fd, fe := f.QueryCounted(u, v)
			d, _, _ := QueryMerge(ix.Labels(u), ix.Labels(v))
			if fd != d {
				t.Fatalf("dist mismatch at (%d,%d)", u, v)
			}
			if fe < 0 || fe > int64(len(ix.Labels(u))+len(ix.Labels(v))) {
				t.Fatalf("entries %d out of range", fe)
			}
		}
	}
}

package label

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"unsafe"
)

// Zero-copy serving: the CHLF payload was designed so that its two arrays
// are byte-identical to the in-memory representation on a little-endian
// machine. MapFlat exploits that by pointing a FlatIndex's offsets and
// entries slices directly at a memory-mapped file region — the kernel
// pages label data in on demand and shares one physical copy between
// every serving process of the same file. Nothing is decoded or copied;
// loading is one sequential validation scan of the mapping (which does
// fault the file in, so cold-load time is bounded by sequential read
// bandwidth, not by allocation and decode), and resident memory for the
// arrays is shared page cache rather than per-process heap.
//
// Mapping has preconditions a generic reader does not: the host must be
// little endian, and the arrays must be properly aligned within the file
// (uint32 offsets on a 4-byte boundary, uint64 entries on an 8-byte
// boundary — guaranteed by CHFX version 2's pad byte, not by version 1).
// When any precondition fails, MapFlat reports ErrNotMappable and callers
// fall back to the copying ReadFlat loader, which handles every file the
// format allows.

// ErrNotMappable reports that a flat payload cannot be served zero-copy
// on this host — the platform has no mmap, the host is big endian, or the
// payload's arrays are misaligned within the file (CHFX version 1 files).
// It never indicates corruption; the heap loader remains a sound
// fallback.
var ErrNotMappable = errors.New("label: flat payload cannot be memory-mapped")

// nativeLittleEndian reports whether the host stores integers little
// endian, the byte order the CHLF arrays are written in.
func nativeLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// MapFlat constructs a FlatIndex whose arrays alias data, which must hold
// a CHLF payload starting at its first byte (trailing bytes are ignored).
// The same structural validation as ReadFlat runs before the index is
// returned — corrupt payloads are rejected, not served. The caller keeps
// data alive (and, for a memory mapping, mapped) for the lifetime of the
// returned index; the index is read-only and safe for concurrent readers.
func MapFlat(data []byte) (*FlatIndex, error) {
	if !nativeLittleEndian() {
		return nil, fmt.Errorf("%w: host is big endian", ErrNotMappable)
	}
	if len(data) < 17 {
		return nil, fmt.Errorf("label: flat payload too short (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != flatMagic {
		return nil, fmt.Errorf("label: bad flat magic %q", data[:4])
	}
	if v := data[4]; v != flatVersion {
		return nil, fmt.Errorf("label: unsupported flat version %d (want %d)", v, flatVersion)
	}
	n := int(binary.LittleEndian.Uint32(data[5:9]))
	total := binary.LittleEndian.Uint64(data[9:17])
	if total > 1<<32 {
		return nil, fmt.Errorf("label: implausible label count %d", total)
	}
	offBytes := int64(n+1) * 4
	need := 17 + offBytes + int64(total)*8
	if int64(len(data)) < need {
		return nil, fmt.Errorf("label: flat payload truncated: %d bytes, need %d", len(data), need)
	}
	offB := data[17 : 17+offBytes]
	if uintptr(unsafe.Pointer(&offB[0]))%4 != 0 {
		return nil, fmt.Errorf("%w: offsets array misaligned (file written by an old CHFX version?)", ErrNotMappable)
	}
	f := &FlatIndex{
		offsets: unsafe.Slice((*uint32)(unsafe.Pointer(&offB[0])), n+1),
	}
	if total > 0 {
		entB := data[17+offBytes : need]
		if uintptr(unsafe.Pointer(&entB[0]))%8 != 0 {
			return nil, fmt.Errorf("%w: entries array misaligned (file written by an old CHFX version?)", ErrNotMappable)
		}
		f.entries = unsafe.Slice((*uint64)(unsafe.Pointer(&entB[0])), total)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// MapFlatAt memory-maps the file at path and serves the CHLF payload
// beginning at byte offset off zero-copy. It returns the index and a
// closer that releases the mapping; the caller must not use the index
// after calling the closer, and must keep the file unmodified while
// mapped (truncating a mapped file faults readers). Errors wrapping
// ErrNotMappable mean "use ReadFlat instead"; other errors mean the file
// is unreadable or corrupt.
func MapFlatAt(path string, off int64) (*FlatIndex, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	// The mapping (if any) is independent of the descriptor.
	defer f.Close()
	return MapFlatFile(f, off)
}

// MapFlatFile is MapFlatAt over an already-open file, for callers that
// parsed framing from f and must map the same inode — re-opening by path
// would let an atomic-rename deploy swap the file between the reads and
// the mapping. f's read position is ignored (the mapping is absolute)
// and f may be closed as soon as MapFlatFile returns.
func MapFlatFile(f *os.File, off int64) (*FlatIndex, func() error, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if off < 0 || off >= size {
		return nil, nil, fmt.Errorf("label: flat payload offset %d outside file of %d bytes", off, size)
	}
	data, err := mmapFile(f, size)
	if err != nil {
		if errors.Is(err, ErrNotMappable) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("%w: mmap %s: %v", ErrNotMappable, f.Name(), err)
	}
	fx, err := MapFlat(data[off:])
	if err != nil {
		munmapBytes(data)
		return nil, nil, err
	}
	return fx, func() error { return munmapBytes(data) }, nil
}

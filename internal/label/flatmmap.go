package label

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"runtime"
	"unsafe"
)

// Zero-copy serving: the CHLF payload was designed so that its two arrays
// are byte-identical to the in-memory representation on a little-endian
// machine. MapFlat exploits that by pointing a FlatIndex's offsets and
// entries slices directly at a memory-mapped file region — the kernel
// pages label data in on demand and shares one physical copy between
// every serving process of the same file. Nothing is decoded or copied;
// loading is one sequential validation scan of the mapping (which does
// fault the file in, so cold-load time is bounded by sequential read
// bandwidth, not by allocation and decode), and resident memory for the
// arrays is shared page cache rather than per-process heap.
//
// Mapping has preconditions a generic reader does not: the host must be
// little endian, and the arrays must be properly aligned within the file
// (uint32 offsets on a 4-byte boundary, uint64 entries on an 8-byte
// boundary — guaranteed by CHFX version 2's pad byte, not by version 1).
// When any precondition fails, MapFlat reports ErrNotMappable and callers
// fall back to the copying ReadFlat loader, which handles every file the
// format allows.

// ErrNotMappable reports that a flat payload cannot be served zero-copy
// on this host — the platform has no mmap, the host is big endian, or the
// payload's arrays are misaligned within the file (CHFX version 1 files).
// It never indicates corruption; the heap loader remains a sound
// fallback.
var ErrNotMappable = errors.New("label: flat payload cannot be memory-mapped")

// flatHeaderBytes is the CHLF header size: magic (4) + version (1) +
// n (4) + total (8). The arrays follow immediately.
const flatHeaderBytes = 17

// nativeLittleEndian reports whether the host stores integers little
// endian, the byte order the CHLF arrays are written in.
func nativeLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// MapFlat constructs a FlatIndex whose arrays alias data, which must hold
// a CHLF payload starting at its first byte (trailing bytes are ignored).
// The same structural validation as ReadFlat runs before the index is
// returned — corrupt payloads are rejected, not served. The caller keeps
// data alive (and, for a memory mapping, mapped) for the lifetime of the
// returned index; the index is read-only and safe for concurrent readers.
func MapFlat(data []byte) (*FlatIndex, error) {
	if !nativeLittleEndian() {
		return nil, fmt.Errorf("%w: host is big endian", ErrNotMappable)
	}
	if len(data) < flatHeaderBytes {
		return nil, fmt.Errorf("label: flat payload too short (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != flatMagic {
		return nil, fmt.Errorf("label: bad flat magic %q", data[:4])
	}
	if v := data[4]; v != flatVersion {
		return nil, fmt.Errorf("label: unsupported flat version %d (want %d)", v, flatVersion)
	}
	n := int(binary.LittleEndian.Uint32(data[5:9]))
	total := binary.LittleEndian.Uint64(data[9:17])
	if total > 1<<32 {
		return nil, fmt.Errorf("label: implausible label count %d", total)
	}
	offBytes := int64(n+1) * 4
	need := flatHeaderBytes + offBytes + int64(total)*8
	if int64(len(data)) < need {
		return nil, fmt.Errorf("label: flat payload truncated: %d bytes, need %d", len(data), need)
	}
	offB := data[flatHeaderBytes : flatHeaderBytes+offBytes]
	if uintptr(unsafe.Pointer(&offB[0]))%4 != 0 {
		return nil, fmt.Errorf("%w: offsets array misaligned (file written by an old CHFX version?)", ErrNotMappable)
	}
	f := &FlatIndex{
		offsets: unsafe.Slice((*uint32)(unsafe.Pointer(&offB[0])), n+1),
	}
	if total > 0 {
		entB := data[flatHeaderBytes+offBytes : need]
		if uintptr(unsafe.Pointer(&entB[0]))%8 != 0 {
			return nil, fmt.Errorf("%w: entries array misaligned (file written by an old CHFX version?)", ErrNotMappable)
		}
		f.entries = unsafe.Slice((*uint64)(unsafe.Pointer(&entB[0])), total)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	f.raw = data[:need]
	return f, nil
}

// Prefault touches one byte per page of the mapped payload, forcing the
// kernel to fault the whole index in before the first query lands on it —
// the serving tier calls this before swapping a fresh snapshot in so the
// first seconds of traffic don't pay major-fault latency. It returns the
// number of pages walked; on a heap-backed index it is a no-op returning 0.
func (f *FlatIndex) Prefault() int {
	if len(f.raw) == 0 {
		return 0
	}
	// The entries region carries MADV_RANDOM (readahead off), which
	// would turn the sequential walk below into one synchronous
	// single-page fault per page. Ask for the whole payload eagerly
	// first — the kernel then reads ahead of the walk — and restore the
	// random-access hint once everything is resident.
	madviseAligned(f.raw, adviceWillNeed)
	defer madviseAligned(f.raw, adviceRandom)
	page := os.Getpagesize()
	var sink byte
	pages := 0
	for i := 0; i < len(f.raw); i += page {
		sink += f.raw[i]
		pages++
	}
	runtime.KeepAlive(sink)
	return pages
}

// MapFlatAt memory-maps the file at path and serves the CHLF payload
// beginning at byte offset off zero-copy. It returns the index and a
// closer that releases the mapping; the caller must not use the index
// after calling the closer, and must keep the file unmodified while
// mapped (truncating a mapped file faults readers). Errors wrapping
// ErrNotMappable mean "use ReadFlat instead"; other errors mean the file
// is unreadable or corrupt.
func MapFlatAt(path string, off int64) (*FlatIndex, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	// The mapping (if any) is independent of the descriptor.
	defer f.Close()
	return MapFlatFile(f, off)
}

// MapFlatFile is MapFlatAt over an already-open file, for callers that
// parsed framing from f and must map the same inode — re-opening by path
// would let an atomic-rename deploy swap the file between the reads and
// the mapping. f's read position is ignored (the mapping is absolute)
// and f may be closed as soon as MapFlatFile returns.
func MapFlatFile(f *os.File, off int64) (*FlatIndex, func() error, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if off < 0 || off >= size {
		return nil, nil, fmt.Errorf("label: flat payload offset %d outside file of %d bytes", off, size)
	}
	data, err := mmapFile(f, size)
	if err != nil {
		if errors.Is(err, ErrNotMappable) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("%w: mmap %s: %v", ErrNotMappable, f.Name(), err)
	}
	fx, err := MapFlat(data[off:])
	if err != nil {
		munmapBytes(data)
		return nil, nil, err
	}
	adviseFlat(data, off, fx)
	return fx, func() error { return munmapBytes(data) }, nil
}

// adviseFlat hands the kernel access-pattern hints for a freshly mapped
// CHLF payload at byte offset off of the mapping: the offsets array is
// touched by every query and read near-sequentially during validation, so
// it gets MADV_WILLNEED (prefetch now, keep resident); the entries array
// is probed at two random vertices per query, so it gets MADV_RANDOM
// (don't waste readahead on neighbours that won't be asked for). The
// spans come from the index MapFlat just built over this payload, not
// from re-parsing the header. Both are hints — madviseSpan is a no-op
// off Linux (see madvise_other.go) and errors are ignored, so serving is
// identical everywhere, just slower to warm where the hints don't apply.
func adviseFlat(data []byte, off int64, fx *FlatIndex) {
	offStart := off + flatHeaderBytes
	offLen := int64(len(fx.offsets)) * 4
	madviseSpan(data, offStart, offLen, adviceWillNeed)
	madviseSpan(data, offStart+offLen, int64(len(fx.entries))*8, adviceRandom)
}

package label

import (
	"bytes"
	"testing"
)

// fuzzFixtureDirected freezes a small directed pair (independent forward
// and backward halves over one vertex space) for the CHLD fuzzer's seed
// corpus.
func fuzzFixtureDirected() (fwd, bwd *FlatIndex) {
	const n = 24
	mk := func(stride int) *FlatIndex {
		ix := NewIndex(n)
		for v := 0; v < n; v++ {
			s := Set{}
			for h := uint32(0); int(h) <= v; h += uint32(stride) {
				s = append(s, L{Hub: h, Dist: float64(v-int(h)) + 1})
			}
			ix.SetLabels(v, s)
		}
		return Freeze(ix)
	}
	return mk(2), mk(3)
}

// FuzzReadDirectedFlat drives the CHLD payload decoder — the directed
// packed-run format a shard file or a hostile peer could hand the
// serving tier — with arbitrary bytes. Invariants: no panic; anything
// accepted yields two structurally valid halves over one vertex space
// whose re-serialization is byte-identical to the accepted prefix.
func FuzzReadDirectedFlat(f *testing.F) {
	fwd, bwd := fuzzFixtureDirected()
	var valid bytes.Buffer
	if _, err := WriteDirectedFlat(&valid, fwd, bwd); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Characteristic corruptions: truncation, header-count lies, a hub
	// smashed out of range, swapped magic.
	vb := valid.Bytes()
	f.Add(vb[:len(vb)-5])
	f.Add(vb[:DirectedFlatHeaderBytes])
	lied := append([]byte(nil), vb...)
	lied[9] = 0xff // totalF low byte
	f.Add(lied)
	smashed := append([]byte(nil), vb...)
	copy(smashed[len(smashed)-4:], []byte{0xff, 0xff, 0xff, 0x7f})
	f.Add(smashed)
	f.Add(append([]byte("CHLF"), vb[4:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		rf, rb, err := ReadDirectedFlat(bytes.NewReader(data))
		if err != nil {
			return
		}
		if rf.NumVertices() != rb.NumVertices() {
			t.Fatalf("accepted halves over %d and %d vertices", rf.NumVertices(), rb.NumVertices())
		}
		if err := rf.validate(); err != nil {
			t.Fatalf("accepted forward half fails validation: %v", err)
		}
		if err := rb.validate(); err != nil {
			t.Fatalf("accepted backward half fails validation: %v", err)
		}
		var out bytes.Buffer
		if _, err := WriteDirectedFlat(&out, rf, rb); err != nil {
			t.Fatalf("accepted payload does not re-serialize: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("accepted payload does not round-trip byte-identically")
		}
	})
}

// fuzzFixtureCompressed compresses the directed fixture pair for the
// CHLC fuzzer's seed corpus.
func fuzzFixtureCompressed() (fwd, bwd *CompressedIndex) {
	ff, fb := fuzzFixtureDirected()
	fwd, err := CompressBlocks(ff, 4)
	if err != nil {
		panic(err)
	}
	bwd, err = CompressBlocks(fb, 4)
	if err != nil {
		panic(err)
	}
	return fwd, bwd
}

// FuzzReadCompressedFlat drives the CHLC block decoder — the compressed
// label payload a v4 index file or shard slice carries — with arbitrary
// bytes. Invariants: no panic; anything accepted yields structurally
// valid halves (every block decodes cleanly, hubs sorted and in range,
// header summaries true) whose re-serialization is byte-identical to the
// accepted prefix; and the decoded labels of an accepted half join
// identically through JoinCompressed and JoinPacked.
func FuzzReadCompressedFlat(f *testing.F) {
	cf, cb := fuzzFixtureCompressed()
	var single, double bytes.Buffer
	if _, err := WriteCompressedFlat(&single, cf, nil); err != nil {
		f.Fatal(err)
	}
	if _, err := WriteCompressedFlat(&double, cf, cb); err != nil {
		f.Fatal(err)
	}
	f.Add(single.Bytes())
	f.Add(double.Bytes())
	// Characteristic corruptions: truncation (header-only and mid-payload),
	// a block-count lie, a smashed block header word (misaligns every
	// following payload offset), a garbled varint region, wrong magic.
	vb := double.Bytes()
	f.Add(vb[:CompressedFlatHeaderBytes])
	f.Add(vb[:len(vb)-3])
	lied := append([]byte(nil), vb...)
	lied[12] = 0xff // nb1 low byte
	f.Add(lied)
	smashed := append([]byte(nil), vb...)
	copy(smashed[CompressedFlatHeaderBytes+64:], []byte{0xff, 0xff, 0xff, 0xff})
	f.Add(smashed)
	garbled := append([]byte(nil), vb...)
	copy(garbled[len(garbled)-8:], []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	f.Add(garbled)
	f.Add(append([]byte("CHLD"), vb[4:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		rf, rb, err := ReadCompressedFlat(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := rf.validate(); err != nil {
			t.Fatalf("accepted forward half fails validation: %v", err)
		}
		if rb != nil {
			if rb.NumVertices() != rf.NumVertices() {
				t.Fatalf("accepted halves over %d and %d vertices", rf.NumVertices(), rb.NumVertices())
			}
			if err := rb.validate(); err != nil {
				t.Fatalf("accepted backward half fails validation: %v", err)
			}
		}
		var out bytes.Buffer
		if _, err := WriteCompressedFlat(&out, rf, rb); err != nil {
			t.Fatalf("accepted payload does not re-serialize: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("accepted payload does not round-trip byte-identically")
		}
		// The decoded store must join exactly like its fixed-width
		// expansion — the invariant every serving path relies on.
		flat := rf.Decompress()
		if err := flat.validate(); err != nil {
			t.Fatalf("accepted half decompresses to an invalid flat index: %v", err)
		}
		n := rf.NumVertices()
		for _, u := range []int{0, n / 2, n - 1} {
			if u < 0 {
				continue
			}
			gd, gh, gok := JoinCompressed(rf.Run(u), rf.Run(n-1-u))
			wd, wh, wok := JoinPacked(flat.PackedRun(u), flat.PackedRun(n-1-u))
			if gok != wok || gh != wh || gd != wd {
				t.Fatalf("pair (%d,%d): JoinCompressed = (%v,%d,%v), JoinPacked = (%v,%d,%v)",
					u, n-1-u, gd, gh, gok, wd, wh, wok)
			}
		}
	})
}

// fuzzFixtureRuns builds the seed corpus the packed-run fuzzer starts
// from: real runs frozen out of a small index, the same shape the label
// tests use, so the fuzzer begins at valid inputs and mutates outward.
func fuzzFixtureRuns() (*FlatIndex, int) {
	const n = 32
	ix := NewIndex(n)
	for v := 0; v < n; v++ {
		s := Set{}
		for h := uint32(0); int(h) <= v; h += 3 {
			s = append(s, L{Hub: h, Dist: float64(v-int(h)) + 0.5})
		}
		ix.SetLabels(v, s)
	}
	return Freeze(ix), n
}

// FuzzParsePackedRun drives the wire decoder for packed label runs with
// arbitrary bytes and vertex-space sizes. Invariants: no panic, anything
// accepted satisfies the structural guarantees the join kernels rely on
// (strictly ascending hubs, all below n), and accepted runs round-trip
// byte-identically through PackedRunBytes.
func FuzzParsePackedRun(f *testing.F) {
	fx, n := fuzzFixtureRuns()
	for v := 0; v < n; v += 5 {
		f.Add(PackedRunBytes(fx.PackedRun(v)), uint32(n))
	}
	// Characteristic corruptions: truncation, duplicate hubs, hub == n.
	valid := PackedRunBytes(fx.PackedRun(n - 1))
	f.Add(valid[:len(valid)-3], uint32(n))
	f.Add(append(append([]byte{}, valid[:8]...), valid[:8]...), uint32(n))
	f.Add(PackedRunBytes([]uint64{uint64(n) << 32}), uint32(n))
	f.Add([]byte{}, uint32(0))

	f.Fuzz(func(t *testing.T, data []byte, n32 uint32) {
		n := int(n32 % (1 << 24)) // keep hub bounds in a sane range
		run, err := ParsePackedRun(data, n)
		if err != nil {
			return
		}
		if len(run) != len(data)/8 {
			t.Fatalf("accepted %d bytes as %d entries", len(data), len(run))
		}
		for i, e := range run {
			if hub := e >> 32; hub >= uint64(n) {
				t.Fatalf("accepted entry %d with hub %d >= n=%d", i, hub, n)
			}
			if i > 0 && run[i-1]>>32 >= e>>32 {
				t.Fatalf("accepted unsorted hubs at entry %d", i)
			}
		}
		if !bytes.Equal(PackedRunBytes(run), data) {
			t.Fatal("accepted run does not round-trip byte-identically")
		}
	})
}

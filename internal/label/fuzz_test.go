package label

import (
	"bytes"
	"testing"
)

// fuzzFixtureDirected freezes a small directed pair (independent forward
// and backward halves over one vertex space) for the CHLD fuzzer's seed
// corpus.
func fuzzFixtureDirected() (fwd, bwd *FlatIndex) {
	const n = 24
	mk := func(stride int) *FlatIndex {
		ix := NewIndex(n)
		for v := 0; v < n; v++ {
			s := Set{}
			for h := uint32(0); int(h) <= v; h += uint32(stride) {
				s = append(s, L{Hub: h, Dist: float64(v-int(h)) + 1})
			}
			ix.SetLabels(v, s)
		}
		return Freeze(ix)
	}
	return mk(2), mk(3)
}

// FuzzReadDirectedFlat drives the CHLD payload decoder — the directed
// packed-run format a shard file or a hostile peer could hand the
// serving tier — with arbitrary bytes. Invariants: no panic; anything
// accepted yields two structurally valid halves over one vertex space
// whose re-serialization is byte-identical to the accepted prefix.
func FuzzReadDirectedFlat(f *testing.F) {
	fwd, bwd := fuzzFixtureDirected()
	var valid bytes.Buffer
	if _, err := WriteDirectedFlat(&valid, fwd, bwd); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Characteristic corruptions: truncation, header-count lies, a hub
	// smashed out of range, swapped magic.
	vb := valid.Bytes()
	f.Add(vb[:len(vb)-5])
	f.Add(vb[:DirectedFlatHeaderBytes])
	lied := append([]byte(nil), vb...)
	lied[9] = 0xff // totalF low byte
	f.Add(lied)
	smashed := append([]byte(nil), vb...)
	copy(smashed[len(smashed)-4:], []byte{0xff, 0xff, 0xff, 0x7f})
	f.Add(smashed)
	f.Add(append([]byte("CHLF"), vb[4:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		rf, rb, err := ReadDirectedFlat(bytes.NewReader(data))
		if err != nil {
			return
		}
		if rf.NumVertices() != rb.NumVertices() {
			t.Fatalf("accepted halves over %d and %d vertices", rf.NumVertices(), rb.NumVertices())
		}
		if err := rf.validate(); err != nil {
			t.Fatalf("accepted forward half fails validation: %v", err)
		}
		if err := rb.validate(); err != nil {
			t.Fatalf("accepted backward half fails validation: %v", err)
		}
		var out bytes.Buffer
		if _, err := WriteDirectedFlat(&out, rf, rb); err != nil {
			t.Fatalf("accepted payload does not re-serialize: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("accepted payload does not round-trip byte-identically")
		}
	})
}

// fuzzFixtureRuns builds the seed corpus the packed-run fuzzer starts
// from: real runs frozen out of a small index, the same shape the label
// tests use, so the fuzzer begins at valid inputs and mutates outward.
func fuzzFixtureRuns() (*FlatIndex, int) {
	const n = 32
	ix := NewIndex(n)
	for v := 0; v < n; v++ {
		s := Set{}
		for h := uint32(0); int(h) <= v; h += 3 {
			s = append(s, L{Hub: h, Dist: float64(v-int(h)) + 0.5})
		}
		ix.SetLabels(v, s)
	}
	return Freeze(ix), n
}

// FuzzParsePackedRun drives the wire decoder for packed label runs with
// arbitrary bytes and vertex-space sizes. Invariants: no panic, anything
// accepted satisfies the structural guarantees the join kernels rely on
// (strictly ascending hubs, all below n), and accepted runs round-trip
// byte-identically through PackedRunBytes.
func FuzzParsePackedRun(f *testing.F) {
	fx, n := fuzzFixtureRuns()
	for v := 0; v < n; v += 5 {
		f.Add(PackedRunBytes(fx.PackedRun(v)), uint32(n))
	}
	// Characteristic corruptions: truncation, duplicate hubs, hub == n.
	valid := PackedRunBytes(fx.PackedRun(n - 1))
	f.Add(valid[:len(valid)-3], uint32(n))
	f.Add(append(append([]byte{}, valid[:8]...), valid[:8]...), uint32(n))
	f.Add(PackedRunBytes([]uint64{uint64(n) << 32}), uint32(n))
	f.Add([]byte{}, uint32(0))

	f.Fuzz(func(t *testing.T, data []byte, n32 uint32) {
		n := int(n32 % (1 << 24)) // keep hub bounds in a sane range
		run, err := ParsePackedRun(data, n)
		if err != nil {
			return
		}
		if len(run) != len(data)/8 {
			t.Fatalf("accepted %d bytes as %d entries", len(data), len(run))
		}
		for i, e := range run {
			if hub := e >> 32; hub >= uint64(n) {
				t.Fatalf("accepted entry %d with hub %d >= n=%d", i, hub, n)
			}
			if i > 0 && run[i-1]>>32 >= e>>32 {
				t.Fatalf("accepted unsorted hubs at entry %d", i)
			}
		}
		if !bytes.Equal(PackedRunBytes(run), data) {
			t.Fatal("accepted run does not round-trip byte-identically")
		}
	})
}

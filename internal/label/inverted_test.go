package label

import (
	"math/rand"
	"sort"
	"testing"
)

// TestInvertTranspose: the inverted index is the exact transpose of the
// flat store — every (v, h, d) label appears as posting (h → v, d) and
// nothing else, with every posting list sorted by (distance, vertex).
func TestInvertTranspose(t *testing.T) {
	ix := randomIndex(150, 21)
	f := Freeze(ix)
	iv := Invert(f)
	if iv.NumPostings() != f.NumLabels() {
		t.Fatalf("inverted index has %d postings, store has %d labels", iv.NumPostings(), f.NumLabels())
	}
	if want := int64(len(iv.offsets))*4 + int64(len(iv.entries))*8; iv.TotalMemory() != want {
		t.Fatalf("TotalMemory() = %d, posting arrays hold %d bytes", iv.TotalMemory(), want)
	}
	n := f.NumVertices()
	want := make(map[uint32][]uint64, n) // hub -> expected postings
	for v := 0; v < n; v++ {
		for _, e := range f.PackedRun(v) {
			h := uint32(e >> 32)
			want[h] = append(want[h], invEntry(uint32(e), v))
		}
	}
	for h := uint32(0); int(h) < n; h++ {
		exp := want[h]
		sort.Slice(exp, func(i, j int) bool { return exp[i] < exp[j] })
		got := iv.Postings(h)
		if len(got) != len(exp) {
			t.Fatalf("hub %d has %d postings, want %d", h, len(got), len(exp))
		}
		for i := range exp {
			if got[i] != exp[i] {
				t.Fatalf("hub %d posting[%d] = %x, want %x", h, i, got[i], exp[i])
			}
		}
	}
}

// TestInvertCompressedParity: inverting a compressed store yields the
// identical Inverted, word for word — the rich workloads must not care
// which format backs the index.
func TestInvertCompressedParity(t *testing.T) {
	f := Freeze(randomIndex(120, 22))
	c, err := Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	a, b := Invert(f), InvertCompressed(c)
	if len(a.offsets) != len(b.offsets) || len(a.entries) != len(b.entries) {
		t.Fatalf("shape mismatch: %d/%d offsets, %d/%d entries",
			len(a.offsets), len(b.offsets), len(a.entries), len(b.entries))
	}
	for i := range a.offsets {
		if a.offsets[i] != b.offsets[i] {
			t.Fatalf("offsets[%d] = %d vs %d", i, a.offsets[i], b.offsets[i])
		}
	}
	for i := range a.entries {
		if a.entries[i] != b.entries[i] {
			t.Fatalf("entries[%d] = %x vs %x", i, a.entries[i], b.entries[i])
		}
	}
}

// TestTopKMatchesBruteForce: TopK's k-way merge returns exactly the k
// nearest targets under the (distance, vertex) order, each with the
// same witness hub QueryHub picks (smallest among equal-distance
// witnesses) — on a fixture dense with distance ties.
func TestTopKMatchesBruteForce(t *testing.T) {
	ix := randomIndex(130, 23)
	f := Freeze(ix)
	iv := Invert(f)
	n := f.NumVertices()
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 50; trial++ {
		u := rng.Intn(n)
		k := 1 + rng.Intn(n)
		type cand struct {
			v   int
			d   float64
			hub uint32
		}
		var all []cand
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			if d, hub, ok := f.QueryHub(u, v); ok {
				all = append(all, cand{v, d, hub})
			}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].d != all[j].d {
				return all[i].d < all[j].d
			}
			return all[i].v < all[j].v
		})
		if len(all) > k {
			all = all[:k]
		}
		got := iv.TopK(f.PackedRun(u), k, u)
		if len(got) != len(all) {
			t.Fatalf("TopK(%d,%d) returned %d, brute force says %d", u, k, len(got), len(all))
		}
		for i, nb := range got {
			if nb.V != all[i].v || nb.Dist != all[i].d || nb.Hub != all[i].hub {
				t.Fatalf("TopK(%d,%d)[%d] = (%d,%v,hub %d), brute force says (%d,%v,hub %d)",
					u, k, i, nb.V, nb.Dist, nb.Hub, all[i].v, all[i].d, all[i].hub)
			}
		}
	}
	if iv.TopK(nil, 5, -1) != nil {
		t.Fatal("TopK of an empty run must be empty")
	}
	if iv.TopK(f.PackedRun(0), 0, -1) != nil {
		t.Fatal("TopK with k=0 must be empty")
	}
}

// TestScatterProbeMatchesJoin: the scatter-once/probe-many matrix
// kernel answers bit-identically to the pairwise join kernels on both
// storage formats, smallest-hub tie-break included.
func TestScatterProbeMatchesJoin(t *testing.T) {
	f := Freeze(randomIndex(140, 25))
	c, err := Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	n := f.NumVertices()
	s := NewQueryScratch(n)
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 60; trial++ {
		u := rng.Intn(n)
		rs := ScatterRun(s, f.PackedRun(u))
		for i := 0; i < 40; i++ {
			v := rng.Intn(n)
			wd, wh, wok := JoinPacked(f.PackedRun(u), f.PackedRun(v))
			gd, gh, gok := rs.Probe(f.PackedRun(v))
			if gd != wd || gok != wok || (wok && gh != wh) {
				t.Fatalf("Probe(%d,%d) = (%v,%d,%v), JoinPacked says (%v,%d,%v)", u, v, gd, gh, gok, wd, wh, wok)
			}
			cd, ch, cok := rs.ProbeCompressed(c.Run(v))
			if cd != wd || cok != wok || (wok && ch != wh) {
				t.Fatalf("ProbeCompressed(%d,%d) = (%v,%d,%v), JoinPacked says (%v,%d,%v)", u, v, cd, ch, cok, wd, wh, wok)
			}
		}
	}
}

package label

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary index format:
//
//	magic   [4]byte  "CHL1"
//	n       uint32   vertex count
//	perVertex:
//	  count uint32
//	  count × { hub uint32, dist float64 }  (little endian)
//
// The format stores the index in rank space; callers that need to persist
// the rank permutation (the public API does) write it alongside via
// WritePerm/ReadPerm.

var magic = [4]byte{'C', 'H', 'L', '1'}

// WriteIndex serializes ix to w.
func WriteIndex(w io.Writer, ix *Index) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(ix.NumVertices()))
	if _, err := bw.Write(buf[:4]); err != nil {
		return err
	}
	for v := 0; v < ix.NumVertices(); v++ {
		s := ix.Labels(v)
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(s)))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
		for _, l := range s {
			binary.LittleEndian.PutUint32(buf[:4], l.Hub)
			binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(l.Dist))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadIndex deserializes an index written by WriteIndex.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("label: reading magic: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("label: bad magic %q", hdr[:])
	}
	var buf [12]byte
	if _, err := io.ReadFull(br, buf[:4]); err != nil {
		return nil, fmt.Errorf("label: reading vertex count: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	ix := NewIndex(n)
	for v := 0; v < n; v++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("label: reading count of vertex %d: %w", v, err)
		}
		c := int(binary.LittleEndian.Uint32(buf[:4]))
		s := make(Set, c)
		for i := 0; i < c; i++ {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, fmt.Errorf("label: reading label %d of vertex %d: %w", i, v, err)
			}
			s[i].Hub = binary.LittleEndian.Uint32(buf[:4])
			s[i].Dist = math.Float64frombits(binary.LittleEndian.Uint64(buf[4:]))
		}
		if !s.IsSorted() {
			return nil, fmt.Errorf("label: vertex %d labels not sorted in input", v)
		}
		ix.SetLabels(v, s)
	}
	return ix, nil
}

// Flat index format (versioned, little endian):
//
//	magic   [4]byte  "CHLF"
//	version uint8    currently flatVersion (1)
//	n       uint32   vertex count
//	total   uint64   label count
//	offsets (n+1) × uint32
//	entries total × uint64 — hub<<32 | float32bits(dist)
//
// The arrays are written verbatim in index order and match the in-memory
// layout byte for byte, so a reader can reconstruct — or, on a
// little-endian machine, memory-map — the packed store without touching
// individual labels.

var flatMagic = [4]byte{'C', 'H', 'L', 'F'}

// flatVersion is the current flat serialization version; readers reject
// anything newer.
const flatVersion = 1

// WriteTo serializes the flat index to w in the CHLF format, implementing
// io.WriterTo.
func (f *FlatIndex) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	emit := func(p []byte) error {
		k, err := bw.Write(p)
		written += int64(k)
		return err
	}
	var hdr [17]byte
	copy(hdr[:4], flatMagic[:])
	hdr[4] = flatVersion
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(f.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[9:17], uint64(len(f.entries)))
	if err := emit(hdr[:]); err != nil {
		return written, err
	}
	var buf [4096]byte
	for xs := f.offsets; len(xs) > 0; {
		chunk := len(buf) / 4
		if chunk > len(xs) {
			chunk = len(xs)
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], xs[i])
		}
		if err := emit(buf[:chunk*4]); err != nil {
			return written, err
		}
		xs = xs[chunk:]
	}
	for es := f.entries; len(es) > 0; {
		chunk := len(buf) / 8
		if chunk > len(es) {
			chunk = len(es)
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], es[i])
		}
		if err := emit(buf[:chunk*8]); err != nil {
			return written, err
		}
		es = es[chunk:]
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, nil
}

// ReadFlat deserializes a flat index written by WriteTo, validating the
// magic, version and structural invariants (monotone offsets, per-vertex
// hub sortedness).
func ReadFlat(r io.Reader) (*FlatIndex, error) {
	br := bufio.NewReader(r)
	var hdr [17]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("label: reading flat header: %w", err)
	}
	if [4]byte(hdr[:4]) != flatMagic {
		return nil, fmt.Errorf("label: bad flat magic %q", hdr[:4])
	}
	if v := hdr[4]; v != flatVersion {
		return nil, fmt.Errorf("label: unsupported flat version %d (want %d)", v, flatVersion)
	}
	n := int(binary.LittleEndian.Uint32(hdr[5:9]))
	total := binary.LittleEndian.Uint64(hdr[9:17])
	if total > 1<<32 {
		return nil, fmt.Errorf("label: implausible label count %d", total)
	}
	// The arrays are appended to as bytes actually arrive rather than
	// allocated from the header counts, so a truncated or hostile header
	// cannot demand gigabytes before the first short read fails.
	var buf [4096]byte
	offsets := make([]uint32, 0)
	for remain := n + 1; remain > 0; {
		chunk := len(buf) / 4
		if chunk > remain {
			chunk = remain
		}
		if _, err := io.ReadFull(br, buf[:chunk*4]); err != nil {
			return nil, fmt.Errorf("label: reading flat offsets: %w", err)
		}
		for i := 0; i < chunk; i++ {
			offsets = append(offsets, binary.LittleEndian.Uint32(buf[i*4:]))
		}
		remain -= chunk
	}
	f := &FlatIndex{offsets: offsets}
	// Cheap span fail-fast before reading the (much larger) entry
	// stream; validate() below re-checks it in O(1) along with the full
	// structural invariants.
	if f.offsets[0] != 0 || uint64(f.offsets[n]) != total {
		return nil, fmt.Errorf("label: flat offsets do not span the label array")
	}
	f.entries = make([]uint64, 0)
	for remain := total; remain > 0; {
		chunk := uint64(len(buf) / 8)
		if chunk > remain {
			chunk = remain
		}
		if _, err := io.ReadFull(br, buf[:chunk*8]); err != nil {
			return nil, fmt.Errorf("label: reading flat entries: %w", err)
		}
		for i := uint64(0); i < chunk; i++ {
			f.entries = append(f.entries, binary.LittleEndian.Uint64(buf[i*8:]))
		}
		remain -= chunk
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// validate checks the structural invariants every loader (copying or
// memory-mapped) must establish before the query paths may trust the
// arrays: the offsets span the entry array monotonically, per-vertex hubs
// are strictly sorted (entries are ordered by hub in the high bits, so
// monotonicity of the packed words is exactly hub sortedness), and every
// hub names a vertex of this index — otherwise the scratch and witness
// lookups would index out of range.
func (f *FlatIndex) validate() error {
	n := f.NumVertices()
	if n < 0 {
		return fmt.Errorf("label: flat index has no offsets")
	}
	if f.offsets[0] != 0 || int64(f.offsets[n]) != int64(len(f.entries)) {
		return fmt.Errorf("label: flat offsets do not span the label array")
	}
	for v := 0; v < n; v++ {
		if f.offsets[v] > f.offsets[v+1] {
			return fmt.Errorf("label: flat offsets not monotone at vertex %d", v)
		}
	}
	for v := 0; v < n; v++ {
		for k := f.offsets[v] + 1; k < f.offsets[v+1]; k++ {
			if f.entries[k-1]>>32 >= f.entries[k]>>32 {
				return fmt.Errorf("label: flat hubs of vertex %d not strictly sorted", v)
			}
		}
	}
	for k, e := range f.entries {
		if e>>32 >= uint64(n) {
			return fmt.Errorf("label: flat entry %d has out-of-range hub %d (n=%d)", k, e>>32, n)
		}
	}
	return nil
}

// ReadFrom replaces f's contents with a flat index read from r,
// implementing io.ReaderFrom. The byte count is approximate on error.
func (f *FlatIndex) ReadFrom(r io.Reader) (int64, error) {
	g, err := ReadFlat(r)
	if err != nil {
		return 0, err
	}
	*f = *g
	return 17 + int64(len(g.offsets))*4 + int64(len(g.entries))*8, nil
}

// WritePerm serializes a permutation (rank → original id).
func WritePerm(w io.Writer, perm []int) error {
	bw := bufio.NewWriter(w)
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(len(perm)))
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	for _, p := range perm {
		binary.LittleEndian.PutUint32(buf[:], uint32(p))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPerm deserializes a permutation written by WritePerm.
func ReadPerm(r io.Reader) ([]int, error) {
	br := bufio.NewReader(r)
	var buf [4]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, fmt.Errorf("label: reading perm length: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(buf[:]))
	perm := make([]int, n)
	seen := make([]bool, n)
	for i := range perm {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("label: reading perm entry %d: %w", i, err)
		}
		p := int(binary.LittleEndian.Uint32(buf[:]))
		if p >= n || seen[p] {
			return nil, fmt.Errorf("label: perm entry %d=%d is not a permutation", i, p)
		}
		seen[p] = true
		perm[i] = p
	}
	return perm, nil
}

package label

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary index format:
//
//	magic   [4]byte  "CHL1"
//	n       uint32   vertex count
//	perVertex:
//	  count uint32
//	  count × { hub uint32, dist float64 }  (little endian)
//
// The format stores the index in rank space; callers that need to persist
// the rank permutation (the public API does) write it alongside via
// WritePerm/ReadPerm.

var magic = [4]byte{'C', 'H', 'L', '1'}

// WriteIndex serializes ix to w.
func WriteIndex(w io.Writer, ix *Index) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(ix.NumVertices()))
	if _, err := bw.Write(buf[:4]); err != nil {
		return err
	}
	for v := 0; v < ix.NumVertices(); v++ {
		s := ix.Labels(v)
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(s)))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
		for _, l := range s {
			binary.LittleEndian.PutUint32(buf[:4], l.Hub)
			binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(l.Dist))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadIndex deserializes an index written by WriteIndex.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("label: reading magic: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("label: bad magic %q", hdr[:])
	}
	var buf [12]byte
	if _, err := io.ReadFull(br, buf[:4]); err != nil {
		return nil, fmt.Errorf("label: reading vertex count: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	ix := NewIndex(n)
	for v := 0; v < n; v++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("label: reading count of vertex %d: %w", v, err)
		}
		c := int(binary.LittleEndian.Uint32(buf[:4]))
		s := make(Set, c)
		for i := 0; i < c; i++ {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, fmt.Errorf("label: reading label %d of vertex %d: %w", i, v, err)
			}
			s[i].Hub = binary.LittleEndian.Uint32(buf[:4])
			s[i].Dist = math.Float64frombits(binary.LittleEndian.Uint64(buf[4:]))
		}
		if !s.IsSorted() {
			return nil, fmt.Errorf("label: vertex %d labels not sorted in input", v)
		}
		ix.SetLabels(v, s)
	}
	return ix, nil
}

// WritePerm serializes a permutation (rank → original id).
func WritePerm(w io.Writer, perm []int) error {
	bw := bufio.NewWriter(w)
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(len(perm)))
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	for _, p := range perm {
		binary.LittleEndian.PutUint32(buf[:], uint32(p))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPerm deserializes a permutation written by WritePerm.
func ReadPerm(r io.Reader) ([]int, error) {
	br := bufio.NewReader(r)
	var buf [4]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, fmt.Errorf("label: reading perm length: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(buf[:]))
	perm := make([]int, n)
	seen := make([]bool, n)
	for i := range perm {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("label: reading perm entry %d: %w", i, err)
		}
		p := int(binary.LittleEndian.Uint32(buf[:]))
		if p >= n || seen[p] {
			return nil, fmt.Errorf("label: perm entry %d=%d is not a permutation", i, p)
		}
		seen[p] = true
		perm[i] = p
	}
	return perm, nil
}

//go:build !linux

package label

// No madvise outside Linux (the standard library only exposes it there);
// the mapped serving path works identically, minus the paging hints.
const (
	adviceWillNeed = 0
	adviceRandom   = 0
)

func madviseSpan(data []byte, off, length int64, advice int) {}

func madviseAligned(b []byte, advice int) {}

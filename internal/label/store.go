package label

import "sync"

// ConcurrentStore is a label table that many construction workers append to
// and query concurrently, with one lock per vertex. This is the locking
// regime the paper ascribes to paraPLL and LCC ("have to lock label sets
// before reading because label sets are dynamic arrays that can undergo
// memory (de)allocation when a label is appended", §4.2) — and the cost GLL
// avoids with its immutable global table.
type ConcurrentStore struct {
	mu    []sync.Mutex
	sets  []Set
	locks int64 // lock acquisitions, counted when profiling is enabled
	prof  bool
	pmu   sync.Mutex
}

// NewConcurrentStore returns an empty store over n vertices.
func NewConcurrentStore(n int) *ConcurrentStore {
	return &ConcurrentStore{mu: make([]sync.Mutex, n), sets: make([]Set, n)}
}

// EnableProfiling turns on lock-acquisition counting (used by the two-table
// ablation experiment).
func (cs *ConcurrentStore) EnableProfiling() { cs.prof = true }

// LockCount returns the number of per-vertex lock acquisitions observed
// since profiling was enabled.
func (cs *ConcurrentStore) LockCount() int64 {
	cs.pmu.Lock()
	defer cs.pmu.Unlock()
	return cs.locks
}

func (cs *ConcurrentStore) countLock() {
	if cs.prof {
		cs.pmu.Lock()
		cs.locks++
		cs.pmu.Unlock()
	}
}

// NumVertices returns the vertex count.
func (cs *ConcurrentStore) NumVertices() int { return len(cs.sets) }

// Append adds a label to v's set (unsorted; callers sort when sealing).
func (cs *ConcurrentStore) Append(v int, l L) {
	cs.countLock()
	cs.mu[v].Lock()
	cs.sets[v] = append(cs.sets[v], l)
	cs.mu[v].Unlock()
}

// QueryAgainst runs hd.QueryAgainst(labels of v) under v's lock.
func (cs *ConcurrentStore) QueryAgainst(hd *HashDist, v int, delta float64) bool {
	cs.countLock()
	cs.mu[v].Lock()
	r := hd.QueryAgainst(cs.sets[v], delta)
	cs.mu[v].Unlock()
	return r
}

// CopyLabels returns a snapshot copy of v's current labels.
func (cs *ConcurrentStore) CopyLabels(v int) Set {
	cs.countLock()
	cs.mu[v].Lock()
	s := cs.sets[v].Clone()
	cs.mu[v].Unlock()
	return s
}

// Len returns the current number of labels of v.
func (cs *ConcurrentStore) Len(v int) int {
	cs.countLock()
	cs.mu[v].Lock()
	n := len(cs.sets[v])
	cs.mu[v].Unlock()
	return n
}

// Seal sorts every set and hands the storage over as an Index. The store
// must not be used afterwards. Seal is called once construction workers have
// quiesced, so it takes no locks.
func (cs *ConcurrentStore) Seal() *Index {
	for _, s := range cs.sets {
		s.Sort()
	}
	ix := &Index{sets: cs.sets}
	cs.sets = nil
	return ix
}

// Drain moves every vertex's pending labels out of the store (leaving it
// empty but reusable) without sorting. GLL's superstep commit uses it to
// move the local table into the cleaning pass.
func (cs *ConcurrentStore) Drain() []Set {
	out := make([]Set, len(cs.sets))
	for v := range cs.sets {
		cs.mu[v].Lock()
		out[v] = cs.sets[v]
		cs.sets[v] = nil
		cs.mu[v].Unlock()
	}
	return out
}

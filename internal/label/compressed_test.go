package label

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// randomLabelIndex builds a random label index over n vertices whose
// per-vertex hub sets are drawn from [0, n) with the given density.
// Distances mix small integers (the uvarint plane), fractional values
// and huge values (the float plane), plus the occasional -0.0 — the bit
// pattern the int plane must refuse so parity stays exact.
func randomLabelIndex(rng *rand.Rand, n int, density float64) *Index {
	ix := NewIndex(n)
	for v := 0; v < n; v++ {
		s := Set{}
		for h := 0; h < n; h++ {
			if rng.Float64() >= density {
				continue
			}
			var d float64
			switch rng.Intn(6) {
			case 0, 1, 2:
				d = float64(rng.Intn(1 << 10)) // small int: varint plane
			case 3:
				d = float64(rng.Intn(1<<10)) + 0.5 // fractional: float plane
			case 4:
				d = float64(1<<24 + rng.Intn(1<<10)) // too big for the int plane
			default:
				d = math.Copysign(0, -1) // -0.0: must stay on the float plane
			}
			s = append(s, L{Hub: uint32(h), Dist: d})
		}
		ix.SetLabels(v, s)
	}
	return ix
}

// joinParity asserts that JoinCompressed is bit-identical to JoinPacked
// on every vertex pair of the frozen index, at the given block size.
func joinParity(t *testing.T, f *FlatIndex, blockSize int) {
	t.Helper()
	c, err := CompressBlocks(f, blockSize)
	if err != nil {
		t.Fatalf("CompressBlocks(%d): %v", blockSize, err)
	}
	if err := c.validate(); err != nil {
		t.Fatalf("compressed index fails validation: %v", err)
	}
	if c.NumLabels() != f.NumLabels() {
		t.Fatalf("compressed index holds %d labels, flat holds %d", c.NumLabels(), f.NumLabels())
	}
	n := f.NumVertices()
	for u := 0; u < n; u++ {
		if got, want := c.LabelCount(u), f.LabelCount(u); got != want {
			t.Fatalf("LabelCount(%d) = %d, want %d", u, got, want)
		}
		for v := 0; v < n; v++ {
			wd, wh, wok := JoinPacked(f.PackedRun(u), f.PackedRun(v))
			gd, gh, gok := JoinCompressed(c.Run(u), c.Run(v))
			if gok != wok || gh != wh || math.Float64bits(gd) != math.Float64bits(wd) {
				t.Fatalf("blockSize %d, pair (%d,%d): JoinCompressed = (%v, %d, %v), JoinPacked = (%v, %d, %v)",
					blockSize, u, v, gd, gh, gok, wd, wh, wok)
			}
		}
	}
}

// TestJoinCompressedParityRandom is the property test of the compressed
// kernel: over randomized label sets of varying density — including
// vertices with empty label sets — JoinCompressed returns bit-identical
// (dist, hub, ok) to JoinPacked for every pair, at block sizes that
// exercise single-entry blocks, partial final blocks, and the default.
func TestJoinCompressedParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, density := range []float64{0.02, 0.2, 0.7} {
		f := Freeze(randomLabelIndex(rng, 48, density))
		for _, bs := range []int{1, 3, CompressedBlockEntries, CompressedMaxBlockEntries} {
			joinParity(t, f, bs)
		}
	}
}

// TestJoinCompressedParityEdgeCases pins the degenerate shapes the
// property test may not hit densely: all-empty label sets, a single
// shared hub, and full overlap (every vertex labels every hub).
func TestJoinCompressedParityEdgeCases(t *testing.T) {
	const n = 8
	cases := map[string]func(v int) Set{
		"empty":     func(v int) Set { return nil },
		"singleHub": func(v int) Set { return Set{{Hub: 0, Dist: float64(v)}} },
		"allOverlap": func(v int) Set {
			s := make(Set, n)
			for h := range s {
				s[h] = L{Hub: uint32(h), Dist: float64(v*n + h)}
			}
			return s
		},
		"disjointHalves": func(v int) Set {
			lo, hi := 0, n/2
			if v%2 == 1 {
				lo, hi = n/2, n
			}
			s := Set{}
			for h := lo; h < hi; h++ {
				s = append(s, L{Hub: uint32(h), Dist: float64(v + h)})
			}
			return s
		},
	}
	for name, labels := range cases {
		t.Run(name, func(t *testing.T) {
			ix := NewIndex(n)
			for v := 0; v < n; v++ {
				ix.SetLabels(v, labels(v))
			}
			f := Freeze(ix)
			for _, bs := range []int{1, 2, CompressedBlockEntries} {
				joinParity(t, f, bs)
			}
		})
	}
}

// TestCompressedAccessors covers the decoding accessors against their
// flat counterparts: AppendPackedRun, Labels, Decompress, and Slice.
func TestCompressedAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := Freeze(randomLabelIndex(rng, 40, 0.3))
	c, err := CompressBlocks(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < f.NumVertices(); v++ {
		got := c.AppendPackedRun(nil, v)
		want := f.PackedRun(v)
		if len(got) != len(want) {
			t.Fatalf("AppendPackedRun(%d): %d entries, want %d", v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("AppendPackedRun(%d) entry %d = %#x, want %#x", v, i, got[i], want[i])
			}
		}
		gl, wl := c.Labels(v), f.Labels(v)
		if len(gl) != len(wl) {
			t.Fatalf("Labels(%d): %d labels, want %d", v, len(gl), len(wl))
		}
		for i := range gl {
			if gl[i] != wl[i] {
				t.Fatalf("Labels(%d)[%d] = %+v, want %+v", v, i, gl[i], wl[i])
			}
		}
	}
	d := c.Decompress()
	if err := d.validate(); err != nil {
		t.Fatalf("decompressed index fails validation: %v", err)
	}
	for v := 0; v < f.NumVertices(); v++ {
		got, want := d.PackedRun(v), f.PackedRun(v)
		if len(got) != len(want) {
			t.Fatalf("decompressed run %d: %d entries, want %d", v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("decompressed run %d entry %d differs", v, i)
			}
		}
	}
	keep := func(v int) bool { return v%3 == 0 }
	cs, fs := c.Slice(keep), f.Slice(keep)
	if err := cs.validate(); err != nil {
		t.Fatalf("sliced compressed index fails validation: %v", err)
	}
	if cs.NumLabels() != fs.NumLabels() {
		t.Fatalf("sliced compressed index holds %d labels, flat slice holds %d", cs.NumLabels(), fs.NumLabels())
	}
	for v := 0; v < f.NumVertices(); v++ {
		got, want := cs.AppendPackedRun(nil, v), fs.PackedRun(v)
		if len(got) != len(want) {
			t.Fatalf("sliced run %d: %d entries, want %d", v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("sliced run %d entry %d differs", v, i)
			}
		}
	}
}

// compressedEqual asserts two compressed indexes hold identical arrays.
func compressedEqual(t *testing.T, got, want *CompressedIndex) {
	t.Helper()
	if got.n != want.n || got.blockSize != want.blockSize || got.total != want.total {
		t.Fatalf("header mismatch: (%d,%d,%d) vs (%d,%d,%d)",
			got.n, got.blockSize, got.total, want.n, want.blockSize, want.total)
	}
	for i := range want.vertOff {
		if got.vertOff[i] != want.vertOff[i] {
			t.Fatalf("vertOff[%d] = %d, want %d", i, got.vertOff[i], want.vertOff[i])
		}
	}
	if len(got.heads) != len(want.heads) {
		t.Fatalf("%d header words, want %d", len(got.heads), len(want.heads))
	}
	for i := range want.heads {
		if got.heads[i] != want.heads[i] {
			t.Fatalf("heads[%d] = %#x, want %#x", i, got.heads[i], want.heads[i])
		}
	}
	if !bytes.Equal(got.data, want.data) {
		t.Fatal("payload bytes differ")
	}
}

// TestCompressedFlatRoundTrip writes CHLC payloads (single- and
// two-half) and reads them back through both the copying reader and the
// mmap loader, asserting array-exact equality.
func TestCompressedFlatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fwd, err := Compress(Freeze(randomLabelIndex(rng, 60, 0.25)))
	if err != nil {
		t.Fatal(err)
	}
	bwd, err := Compress(Freeze(randomLabelIndex(rng, 60, 0.15)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		bwd  *CompressedIndex
	}{{"single", nil}, {"directed", bwd}} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			written, err := WriteCompressedFlat(&buf, fwd, tc.bwd)
			if err != nil {
				t.Fatal(err)
			}
			if written != int64(buf.Len()) {
				t.Fatalf("WriteCompressedFlat reported %d bytes, wrote %d", written, buf.Len())
			}
			rf, rb, err := ReadCompressedFlat(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			compressedEqual(t, rf, fwd)
			if tc.bwd == nil {
				if rb != nil {
					t.Fatal("single-half payload decoded a second half")
				}
			} else {
				compressedEqual(t, rb, tc.bwd)
			}

			path := filepath.Join(t.TempDir(), "c.chlc")
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			fl, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer fl.Close()
			mf, mb, closer, err := MapCompressedFlatFile(fl, 0)
			if err != nil {
				t.Skipf("mmap unavailable: %v", err)
			}
			defer closer()
			compressedEqual(t, mf, fwd)
			if tc.bwd != nil {
				compressedEqual(t, mb, tc.bwd)
			}
			if mf.Prefault() == 0 {
				t.Error("Prefault walked 0 pages on a mapped index")
			}
		})
	}
}

// TestCompressedSavings pins the acceptance bar from ROADMAP item 4 at
// the package level: on integer-weighted label sets (what the graph
// generators emit), the compressed arrays are at least 25% smaller than
// the fixed-width flat arrays.
func TestCompressedSavings(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := NewIndex(200)
	for v := 0; v < 200; v++ {
		s := Set{}
		for h := 0; h < 200; h++ {
			if rng.Float64() < 0.15 {
				s = append(s, L{Hub: uint32(h), Dist: float64(rng.Intn(512))})
			}
		}
		ix.SetLabels(v, s)
	}
	f := Freeze(ix)
	c, err := Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	flat := f.TotalMemory()
	comp := c.TotalMemory()
	if comp > flat*3/4 {
		t.Fatalf("compressed arrays take %d bytes, flat %d — less than 25%% saved", comp, flat)
	}
}

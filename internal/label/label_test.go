package label

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func set(pairs ...L) Set { return Set(pairs) }

func TestSetSortFindClone(t *testing.T) {
	s := set(L{5, 2}, L{1, 3}, L{9, 0.5})
	s.Sort()
	if !s.IsSorted() {
		t.Fatalf("not sorted: %v", s)
	}
	if d, ok := s.Find(5); !ok || d != 2 {
		t.Fatalf("Find(5) = %v,%v", d, ok)
	}
	if _, ok := s.Find(4); ok {
		t.Fatal("phantom hub 4")
	}
	c := s.Clone()
	c[0].Dist = 99
	if s[0].Dist == 99 {
		t.Fatal("Clone aliases storage")
	}
}

func TestMerge(t *testing.T) {
	a := set(L{1, 5}, L{3, 2}, L{7, 1})
	b := set(L{2, 4}, L{3, 9}, L{8, 3})
	m := a.Merge(b)
	if !m.IsSorted() || len(m) != 5 {
		t.Fatalf("merge = %v", m)
	}
	if d, _ := m.Find(3); d != 2 {
		t.Fatalf("duplicate hub kept dist %v, want min 2", d)
	}
	if got := Set(nil).Merge(a); len(got) != 3 {
		t.Fatal("merge into empty broken")
	}
	if got := a.Merge(nil); len(got) != 3 {
		t.Fatal("merge of empty broken")
	}
}

func TestQueryMerge(t *testing.T) {
	a := set(L{0, 10}, L{2, 1}, L{5, 7})
	b := set(L{1, 1}, L{2, 2}, L{5, 1})
	d, hub, ok := QueryMerge(a, b)
	if !ok || d != 3 || hub != 2 {
		t.Fatalf("QueryMerge = %v,%d,%v want 3,2,true", d, hub, ok)
	}
	// Tie: highest-ranked (smallest id) witness wins.
	a2 := set(L{1, 2}, L{4, 1})
	b2 := set(L{1, 2}, L{4, 3})
	d2, hub2, _ := QueryMerge(a2, b2)
	if d2 != 4 || hub2 != 1 {
		t.Fatalf("tie broke to hub %d at %v, want hub 1 at 4", hub2, d2)
	}
	if _, _, ok := QueryMerge(set(L{1, 1}), set(L{2, 1})); ok {
		t.Fatal("disjoint sets reported a hub")
	}
	if d, _, _ := QueryMerge(nil, nil); d != Infinity {
		t.Fatal("empty query not Infinity")
	}
}

func TestQueryMergeBounded(t *testing.T) {
	a := set(L{0, 10}, L{3, 1})
	b := set(L{0, 10}, L{3, 1})
	if d, _, ok := QueryMergeBounded(a, b, 4); !ok || d != 2 {
		t.Fatalf("bounded(4) = %v,%v", d, ok)
	}
	if _, _, ok := QueryMergeBounded(a, b, 3); ok && false {
		t.Fatal("unreachable")
	}
	d, hub, ok := QueryMergeBounded(a, b, 3)
	if !ok || hub != 0 || d != 20 {
		t.Fatalf("bounded(3) = %v,%d,%v want 20,0,true", d, hub, ok)
	}
	if _, _, ok := QueryMergeBounded(a, b, 0); ok {
		t.Fatal("bound 0 must see nothing")
	}
}

// Property: QueryMerge equals a brute-force intersection minimum.
func TestQueryMergeProperty(t *testing.T) {
	mk := func(seed int64) Set {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		m := map[uint32]float64{}
		for i := 0; i < n; i++ {
			m[uint32(rng.Intn(30))] = float64(rng.Intn(50)) / 2
		}
		s := make(Set, 0, len(m))
		for h, d := range m {
			s = append(s, L{h, d})
		}
		sort.Slice(s, func(i, j int) bool { return s[i].Hub < s[j].Hub })
		return s
	}
	prop := func(sa, sb int64) bool {
		a, b := mk(sa), mk(sb)
		want := Infinity
		for _, la := range a {
			for _, lb := range b {
				if la.Hub == lb.Hub && la.Dist+lb.Dist < want {
					want = la.Dist + lb.Dist
				}
			}
		}
		got, _, _ := QueryMerge(a, b)
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	good := set(L{1, 2}, L{3, 0.5}, L{4, 0})
	if err := good.Validate(4, 10); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		s     Set
		owner int
	}{
		{set(L{3, 1}, L{1, 1}), 0}, // unsorted
		{set(L{1, 1}, L{1, 2}), 0}, // duplicate hub
		{set(L{12, 1}), 0},         // out of range
		{set(L{1, -1}), 0},         // negative distance
		{set(L{2, 5}), 2},          // self label nonzero
	}
	for i, c := range bad {
		if err := c.s.Validate(c.owner, 10); err == nil {
			t.Errorf("case %d accepted: %v", i, c.s)
		}
	}
}

func TestIndexAppendKeepsSorted(t *testing.T) {
	ix := NewIndex(3)
	ix.Append(0, L{5, 1})
	ix.Append(0, L{2, 3})
	ix.Append(0, L{7, 2})
	ix.Append(0, L{2, 1}) // duplicate hub: min dist kept
	s := ix.Labels(0)
	if !s.IsSorted() || len(s) != 3 {
		t.Fatalf("labels = %v", s)
	}
	if d, _ := s.Find(2); d != 1 {
		t.Fatalf("dup hub dist %v", d)
	}
}

func TestIndexEqualAndDiff(t *testing.T) {
	a := NewIndex(2)
	a.Append(0, L{0, 0})
	a.Append(1, L{0, 2})
	b := a.Clone()
	if !a.Equal(b) || a.Diff(b) != "" {
		t.Fatal("clone not equal")
	}
	b.Append(1, L{1, 0})
	if a.Equal(b) || a.Diff(b) == "" {
		t.Fatal("difference not detected")
	}
}

func TestIndexStats(t *testing.T) {
	ix := NewIndex(4)
	ix.Append(0, L{0, 0})
	ix.Append(1, L{0, 1})
	ix.Append(1, L{1, 0})
	st := ix.Stats()
	if st.TotalLabels != 3 || st.ALS != 0.75 || st.MaxLabels != 2 || st.Bytes != 36 {
		t.Fatalf("stats = %+v", st)
	}
	per := ix.LabelsPerHub()
	if per[0] != 2 || per[1] != 1 {
		t.Fatalf("labels per hub = %v", per)
	}
}

func TestHashDist(t *testing.T) {
	hd := NewHashDist(10)
	hd.Load(set(L{1, 5}, L{4, 2}))
	if d, ok := hd.Get(1); !ok || d != 5 {
		t.Fatalf("Get(1) = %v,%v", d, ok)
	}
	if _, ok := hd.Get(2); ok {
		t.Fatal("phantom entry")
	}
	hd.Add(1, 7) // worse: ignored
	if d, _ := hd.Get(1); d != 5 {
		t.Fatalf("Add worsened entry to %v", d)
	}
	hd.Add(1, 3)
	if d, _ := hd.Get(1); d != 3 {
		t.Fatalf("Add did not improve entry: %v", d)
	}
	hd.Reset()
	if _, ok := hd.Get(1); ok {
		t.Fatal("Reset did not clear")
	}
}

func TestHashDistQueries(t *testing.T) {
	hd := NewHashDist(10)
	hd.Load(set(L{1, 5}, L{4, 2}))
	lv := set(L{1, 4}, L{3, 1}, L{4, 9})
	if !hd.QueryAgainst(lv, 9) { // 4+5 = 9 ≤ 9
		t.Fatal("witness at exactly δ missed")
	}
	if hd.QueryAgainst(lv, 8.5) {
		t.Fatal("phantom witness below 9") // 4+5=9 > 8.5; 9+2=11 > 8.5
	}
	if hd.QueryAgainstBounded(lv, 100, 1) {
		t.Fatal("bounded(1) must exclude hub 1 and above")
	}
	if !hd.QueryAgainstBounded(lv, 100, 2) {
		t.Fatal("bounded(2) must include hub 1")
	}
	if hub, ok := hd.BestWitness(lv, 11); !ok || hub != 1 {
		t.Fatalf("BestWitness = %d,%v want 1", hub, ok)
	}
}

func TestHashDistVersionWrap(t *testing.T) {
	hd := NewHashDist(4)
	hd.current = ^uint32(0) - 1
	hd.Load(set(L{2, 1}))
	hd.Reset() // wraps to 0 → explicit rewind path
	if _, ok := hd.Get(2); ok {
		t.Fatal("stale entry visible after version wrap")
	}
	hd.Add(2, 4)
	if d, ok := hd.Get(2); !ok || d != 4 {
		t.Fatalf("entry lost after wrap: %v %v", d, ok)
	}
}

package label

import (
	"container/heap"
	"math"
	"sort"
)

// Label-inverted index: the transpose of the label store's vertex→hubs
// CSR. Where a label run answers "which hubs does v carry?", the
// inverted index answers "which vertices carry hub h?" — the access
// pattern of top-k nearest-target queries, where the source's label run
// names the hubs and every vertex reachable through one of those hubs
// is a candidate target.
//
// Each posting is a single uint64 with the IEEE-754 bits of the float32
// distance d(h,v) in the high 32 bits and the vertex id in the low 32.
// Non-negative float32 bit patterns order like the floats they encode,
// so sorting the packed words ascending sorts each hub's posting list
// by (distance, vertex) — which is what lets TopK's k-way merge pop
// candidates in globally nondecreasing distance order and settle each
// vertex the first time it surfaces.
//
// The index is derived: it is rebuilt from the label arrays whenever a
// store is loaded or sliced, never serialized (the CHFX formats are
// pinned byte-identical by golden tests). Inverting a per-shard slice —
// whose label arrays hold only the shard's owned vertices — yields
// posting lists that name only owned vertices, so a shard's inverted
// index is automatically the shard's slice of the full one.
//
// An Inverted is immutable after construction and safe for concurrent
// readers.
type Inverted struct {
	offsets []uint32 // len n+1; postings of hub h are entries [offsets[h], offsets[h+1])
	entries []uint64 // float32bits(dist)<<32 | vertex, ascending per hub
}

func invEntry(distBits uint32, v int) uint64 { return uint64(distBits)<<32 | uint64(uint32(v)) }

func invEntryVertex(e uint64) int { return int(uint32(e)) }

func invEntryDist(e uint64) float64 { return float64(math.Float32frombits(uint32(e >> 32))) }

// invert transposes n label runs into an Inverted via two counting-sort
// passes plus a per-bucket sort.
func invert(n int, run func(v int) []uint64) *Inverted {
	iv := &Inverted{offsets: make([]uint32, n+1)}
	var total int
	for v := 0; v < n; v++ {
		for _, e := range run(v) {
			iv.offsets[e>>32+1]++
		}
		total += len(run(v))
	}
	for h := 0; h < n; h++ {
		iv.offsets[h+1] += iv.offsets[h]
	}
	iv.entries = make([]uint64, total)
	next := make([]uint32, n)
	copy(next, iv.offsets[:n])
	for v := 0; v < n; v++ {
		for _, e := range run(v) {
			h := e >> 32
			iv.entries[next[h]] = invEntry(uint32(e), v)
			next[h]++
		}
	}
	for h := 0; h < n; h++ {
		bucket := iv.entries[iv.offsets[h]:iv.offsets[h+1]]
		sort.Slice(bucket, func(i, j int) bool { return bucket[i] < bucket[j] })
	}
	return iv
}

// Invert builds the inverted index of a flat store.
func Invert(f *FlatIndex) *Inverted {
	return invert(f.NumVertices(), f.PackedRun)
}

// InvertCompressed builds the inverted index of a compressed store,
// decoding each run once.
func InvertCompressed(c *CompressedIndex) *Inverted {
	var buf []uint64
	return invert(c.NumVertices(), func(v int) []uint64 {
		buf = c.AppendPackedRun(buf[:0], v)
		return buf
	})
}

// Postings returns hub h's posting list, sorted by (distance, vertex).
func (iv *Inverted) Postings(h uint32) []uint64 {
	lo, hi := iv.offsets[h], iv.offsets[h+1]
	return iv.entries[lo:hi:hi]
}

// NumPostings returns the total posting count (equal to the label count
// of the inverted store).
func (iv *Inverted) NumPostings() int64 { return int64(len(iv.entries)) }

// TotalMemory returns the exact byte footprint of the posting arrays.
func (iv *Inverted) TotalMemory() int64 {
	return int64(len(iv.offsets))*4 + int64(len(iv.entries))*8
}

// Neighbor is one top-k result in rank space: a target vertex, its
// exact distance from the source, and the witness hub that proved it.
type Neighbor struct {
	V    int
	Dist float64
	Hub  uint32
}

// knnCursor is one hub's position in the k-way merge: the source's
// distance to the hub, the hub's posting list, and how far the merge
// has consumed it.
type knnCursor struct {
	srcDist  float64 // d(source, hub), float64 of the stored float32
	hub      uint32
	postings []uint64
	pos      int
}

// knnHeap orders cursors by their current candidate key
// (d(src,h)+d(h,v), v, hub) ascending — the same float64 summation and
// smallest-hub tie-break as the pairwise query kernels, so the first
// time a vertex is popped its (distance, hub) is exactly QueryHub's
// answer for that pair.
type knnHeap []knnCursor

func (h knnHeap) key(i int) (float64, int, uint32) {
	c := &h[i]
	e := c.postings[c.pos]
	return c.srcDist + invEntryDist(e), invEntryVertex(e), c.hub
}

func (h knnHeap) Len() int { return len(h) }
func (h knnHeap) Less(i, j int) bool {
	di, vi, hi := h.key(i)
	dj, vj, hj := h.key(j)
	if di != dj {
		return di < dj
	}
	if vi != vj {
		return vi < vj
	}
	return hi < hj
}
func (h knnHeap) Swap(i, j int)             { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x any)               { *h = append(*h, x.(knnCursor)) }
func (h *knnHeap) Pop() any                 { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h *knnHeap) fix(i int)                { heap.Fix(h, i) }
func (h *knnHeap) popCursor() (c knnCursor) { return heap.Pop(h).(knnCursor) }

// TopK returns up to k nearest targets of the source whose label run is
// run (the source's forward run), joined against this inverted index
// (built over the target-side store: the backward half on directed
// indexes). exclude names a vertex to omit — the source itself — or -1.
//
// The merge is exact, not approximate: each cursor's keys are
// nondecreasing (posting lists are distance-sorted and the hub distance
// is a per-cursor constant), so the heap pops candidates in globally
// nondecreasing (distance, vertex, hub) order. The first pop of a
// vertex therefore carries its minimum distance and, among
// equal-distance witnesses, the smallest hub — bit-identical to
// QueryHub on the same pair. Results are sorted by (distance, vertex).
func (iv *Inverted) TopK(run []uint64, k int, exclude int) []Neighbor {
	if k <= 0 || len(run) == 0 {
		return nil
	}
	h := make(knnHeap, 0, len(run))
	for _, e := range run {
		p := iv.Postings(uint32(e >> 32))
		if len(p) == 0 {
			continue
		}
		h = append(h, knnCursor{srcDist: entryDist(e), hub: uint32(e >> 32), postings: p})
	}
	heap.Init(&h)
	out := make([]Neighbor, 0, k)
	seen := make(map[int]struct{}, k)
	for len(h) > 0 && len(out) < k {
		d, v, hub := h.key(0)
		if _, dup := seen[v]; !dup && v != exclude {
			seen[v] = struct{}{}
			out = append(out, Neighbor{V: v, Dist: d, Hub: hub})
		} else if !dup {
			seen[v] = struct{}{} // the excluded vertex: settle it once, skip it
		}
		c := &h[0]
		c.pos++
		if c.pos == len(c.postings) {
			h.popCursor()
		} else {
			h.fix(0)
		}
	}
	return out
}

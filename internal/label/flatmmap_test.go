package label

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"unsafe"
)

// randomFlat builds a structurally valid flat index with pseudo-random
// label runs (strictly increasing hubs, integer distances).
func randomFlat(t *testing.T, n int, seed int64) *FlatIndex {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ix := NewIndex(n)
	for v := 0; v < n; v++ {
		k := 1 + rng.Intn(6)
		if k > n {
			k = n
		}
		hubs := rng.Perm(n)[:k]
		s := make(Set, 0, k)
		for _, h := range hubs {
			s = append(s, L{Hub: uint32(h), Dist: float64(rng.Intn(1000))})
		}
		s.Sort()
		ix.SetLabels(v, s)
	}
	return Freeze(ix)
}

// The core zero-copy contract: a payload mapped in place answers
// byte-identically to the same payload decoded by the copying reader.
func TestMapFlatParityWithReadFlat(t *testing.T) {
	f := randomFlat(t, 60, 3)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	heap, err := ReadFlat(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Place the payload base so the arrays land aligned, as CHFX v2's
	// pad byte arranges in real files.
	mapped, err := MapFlat(aligned(buf.Bytes(), alignSkew(60)))
	if err != nil {
		t.Fatal(err)
	}
	if mapped.NumVertices() != heap.NumVertices() || mapped.NumLabels() != heap.NumLabels() {
		t.Fatalf("shape mismatch: mapped %d/%d, heap %d/%d",
			mapped.NumVertices(), mapped.NumLabels(), heap.NumVertices(), heap.NumLabels())
	}
	for u := 0; u < 60; u++ {
		for v := 0; v < 60; v++ {
			if got, want := mapped.Query(u, v), heap.Query(u, v); got != want {
				t.Fatalf("mapped query(%d,%d) = %v, heap says %v", u, v, got, want)
			}
		}
	}
	s := NewQueryScratch(mapped.NumVertices())
	for u := 0; u < 60; u++ {
		if got, want := mapped.QueryWith(s, u, 59-u%60), heap.Query(u, 59-u%60); got != want {
			t.Fatalf("mapped hash-join query(%d,%d) = %v, want %v", u, 59-u%60, got, want)
		}
	}
}

// alignSkew returns the payload base offset (mod 8) that aligns a CHLF
// payload over n vertices: offsets on 4 bytes at base+17, entries on 8 at
// base+17+4(n+1). This is the placement CHFX v2's pad byte produces.
func alignSkew(n int) int {
	for skew := 0; skew < 8; skew++ {
		if (skew+17)%4 == 0 && (skew+17+4*(n+1))%8 == 0 {
			return skew
		}
	}
	panic("no aligning skew")
}

// aligned copies b into a buffer whose start is 8-byte aligned plus skew
// (skew > 0 deliberately misaligns the payload).
func aligned(b []byte, skew int) []byte {
	buf := make([]byte, len(b)+16)
	off := 0
	for uintptr(unsafe.Pointer(&buf[off]))%8 != 0 {
		off++
	}
	off += skew
	copy(buf[off:], b)
	return buf[off : off+len(b)]
}

func TestMapFlatRejectsMisaligned(t *testing.T) {
	f := randomFlat(t, 10, 5)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// What matters is the placement of the arrays, not of the payload
	// base: with n=10 the offsets sit 17 bytes and the entries 61 bytes
	// past the base, so a base at (8k+skew) aligns both exactly when
	// skew+17 ≡ 0 (mod 4) and skew+61 ≡ 0 (mod 8), i.e. skew = 3.
	for skew := 0; skew < 8; skew++ {
		_, err := MapFlat(aligned(buf.Bytes(), skew))
		wantOK := (skew+17)%4 == 0 && (skew+61)%8 == 0
		switch {
		case wantOK && err != nil:
			t.Errorf("skew %d: aligned payload rejected: %v", skew, err)
		case !wantOK && !errors.Is(err, ErrNotMappable):
			t.Errorf("skew %d: want ErrNotMappable, got %v", skew, err)
		}
	}
}

func TestMapFlatRejectsGarbage(t *testing.T) {
	f := randomFlat(t, 10, 7)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	corruptHub := append([]byte(nil), full...)
	// Smash a hub id in the last entry to an out-of-range value.
	copy(corruptHub[len(corruptHub)-4:], []byte{0xff, 0xff, 0xff, 0x7f})
	cases := map[string][]byte{
		"empty":       nil,
		"short":       full[:10],
		"wrong magic": append([]byte("CHL1"), full[4:]...),
		"bad version": append([]byte("CHLF\x09"), full[5:]...),
		"truncated":   full[:len(full)-8],
		"corrupt hub": corruptHub,
	}
	for name, c := range cases {
		if _, err := MapFlat(aligned(c, alignSkew(10))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMapFlatAt(t *testing.T) {
	f := randomFlat(t, 40, 11)
	var payload bytes.Buffer
	if _, err := f.WriteTo(&payload); err != nil {
		t.Fatal(err)
	}
	// Bury the payload behind a fake prefix at an offset that aligns its
	// arrays, the way CHFX v2 does (mappings start page-aligned, so the
	// file offset alone decides alignment).
	off := 56 + alignSkew(40)
	file := make([]byte, off+payload.Len())
	copy(file[off:], payload.Bytes())
	path := filepath.Join(t.TempDir(), "buried.flat")
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}
	mapped, closer, err := MapFlatAt(path, int64(off))
	if err != nil {
		if errors.Is(err, ErrNotMappable) {
			t.Skipf("platform cannot mmap: %v", err)
		}
		t.Fatal(err)
	}
	for u := 0; u < 40; u++ {
		for v := 0; v < 40; v++ {
			if got, want := mapped.Query(u, v), f.Query(u, v); got != want {
				t.Fatalf("mapped-at query(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
	if err := closer(); err != nil {
		t.Fatalf("closer: %v", err)
	}

	if _, _, err := MapFlatAt(path, int64(len(file))+5); err == nil {
		t.Fatal("offset past EOF accepted")
	}
	if _, _, err := MapFlatAt(filepath.Join(t.TempDir(), "missing"), 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

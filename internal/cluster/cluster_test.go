package cluster

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestBarrierSynchronizes(t *testing.T) {
	c := New(8)
	var phase int64
	c.Run(func(n *Node) {
		for round := 0; round < 50; round++ {
			// Before the barrier every node agrees on the phase value.
			if got := atomic.LoadInt64(&phase); got != int64(round) {
				t.Errorf("node %d saw phase %d in round %d", n.Rank(), got, round)
			}
			n.Barrier()
			if n.Rank() == 0 {
				atomic.AddInt64(&phase, 1)
			}
			n.Barrier()
		}
	})
}

func TestAllGather(t *testing.T) {
	c := New(5)
	st := c.Run(func(n *Node) {
		got := n.AllGather(n.Rank()*10, 8)
		for r, v := range got {
			if v.(int) != r*10 {
				t.Errorf("node %d: slot %d = %v", n.Rank(), r, v)
			}
		}
	})
	// Each of 5 nodes sends 8 bytes to 4 peers.
	if st.BytesSent != 5*8*4 {
		t.Fatalf("bytes = %d, want %d", st.BytesSent, 5*8*4)
	}
	if st.MessagesSent != 5*4 {
		t.Fatalf("messages = %d", st.MessagesSent)
	}
}

func TestAllGatherSingleNodeFree(t *testing.T) {
	c := New(1)
	st := c.Run(func(n *Node) {
		v := n.AllGather("x", 100)
		if v[0].(string) != "x" {
			t.Error("self gather broken")
		}
	})
	if st.BytesSent != 0 || st.MessagesSent != 0 {
		t.Fatalf("single-node traffic charged: %+v", st)
	}
}

func TestBroadcast(t *testing.T) {
	c := New(4)
	st := c.Run(func(n *Node) {
		var payload []int
		if n.Rank() == 2 {
			payload = []int{1, 2, 3}
		}
		got := n.Broadcast(2, payload, 24).([]int)
		if len(got) != 3 || got[2] != 3 {
			t.Errorf("node %d received %v", n.Rank(), got)
		}
	})
	if st.BytesSent != 24*3 { // root pays (q-1)×bytes
		t.Fatalf("broadcast bytes = %d", st.BytesSent)
	}
}

func TestAllReduce(t *testing.T) {
	c := New(6)
	c.Run(func(n *Node) {
		sum := n.AllReduceInt64(int64(n.Rank()), func(a, b int64) int64 { return a + b })
		if sum != 15 {
			t.Errorf("sum = %d", sum)
		}
		max := n.AllReduceInt64(int64(n.Rank()), func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
		if max != 5 {
			t.Errorf("max = %d", max)
		}
		minf := n.AllReduceFloat64(float64(10-n.Rank()), func(a, b float64) float64 {
			if a < b {
				return a
			}
			return b
		})
		if minf != 5 {
			t.Errorf("min = %v", minf)
		}
	})
}

func TestAllReduceBits(t *testing.T) {
	c := New(3)
	c.Run(func(n *Node) {
		bits := make([]uint64, 2)
		bits[0] = 1 << uint(n.Rank())
		bits[1] = 1 << uint(63-n.Rank())
		out := n.AllReduceBits(bits)
		if out[0] != 0b111 {
			t.Errorf("node %d: word0 = %b", n.Rank(), out[0])
		}
		if out[1] != (1<<63)|(1<<62)|(1<<61) {
			t.Errorf("node %d: word1 = %x", n.Rank(), out[1])
		}
	})
}

func TestSendRecv(t *testing.T) {
	c := New(4)
	c.Run(func(n *Node) {
		// Ring: each node sends its rank to the next.
		next := (n.Rank() + 1) % 4
		n.Send(next, 7, n.Rank(), 8)
		from, payload := n.Recv(7)
		want := (n.Rank() + 3) % 4
		if from != want || payload.(int) != want {
			t.Errorf("node %d received %v from %d, want %d", n.Rank(), payload, from, want)
		}
	})
}

func TestSendRecvTagFiltering(t *testing.T) {
	c := New(2)
	c.Run(func(n *Node) {
		if n.Rank() == 0 {
			n.Send(1, 1, "one", 3)
			n.Send(1, 2, "two", 3)
		} else {
			// Receive tag 2 first even though tag 1 arrived first.
			if _, p := n.Recv(2); p.(string) != "two" {
				t.Errorf("tag 2 got %v", p)
			}
			if _, p := n.Recv(1); p.(string) != "one" {
				t.Errorf("tag 1 got %v", p)
			}
		}
	})
}

func TestLocalSendIsFree(t *testing.T) {
	c := New(2)
	st := c.Run(func(n *Node) {
		n.Send(n.Rank(), 9, "self", 1000)
		if _, p := n.Recv(9); p.(string) != "self" {
			t.Error("self message lost")
		}
	})
	if st.BytesSent != 0 {
		t.Fatalf("local delivery charged %d bytes", st.BytesSent)
	}
}

func TestNodePanicPropagates(t *testing.T) {
	c := New(3)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic swallowed")
		}
		if !strings.Contains(p.(string), "boom") {
			t.Fatalf("unexpected panic payload %v", p)
		}
	}()
	c.Run(func(n *Node) {
		if n.Rank() == 1 {
			panic("boom")
		}
		// Other nodes block on a barrier; the abort must release them
		// instead of deadlocking the test.
		n.Barrier()
	})
}

func TestStatsPerNode(t *testing.T) {
	c := New(3)
	st := c.Run(func(n *Node) {
		var payload []byte
		if n.Rank() == 0 {
			payload = make([]byte, 10)
		}
		n.Broadcast(0, payload, 10)
	})
	if st.BytesPerNode[0] != 20 || st.BytesPerNode[1] != 0 {
		t.Fatalf("per-node bytes %v", st.BytesPerNode)
	}
	if st.PeakNodeBytes != 20 {
		t.Fatalf("peak %d", st.PeakNodeBytes)
	}
	if st.Barriers == 0 {
		t.Fatal("no barriers counted")
	}
}

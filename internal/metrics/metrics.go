// Package metrics defines the instrumentation record shared by every
// labeling algorithm in this repository. The experiment harness turns these
// counters into the tables and figures of the paper; they are also what
// makes the evaluation machine-independent (see DESIGN.md §4): label counts,
// vertices explored, distance queries, communication volume and
// synchronization counts do not depend on core counts or clock speed.
package metrics

import (
	"fmt"
	"time"
)

// Build captures everything one labeling run reports.
type Build struct {
	Algorithm string // "seqPLL", "SparaPLL", "LCC", "GLL", "PLaNT", ...
	Workers   int    // shared-memory threads (p)
	Nodes     int    // cluster nodes (q), 0 for shared-memory runs

	Trees           int64 // SPTs constructed
	Labels          int64 // labels in the final output
	LabelsGenerated int64 // labels generated before cleaning
	LabelsCleaned   int64 // redundant labels removed by cleaning

	VerticesExplored int64 // priority-queue pops across all SPTs
	EdgesRelaxed     int64
	DistanceQueries  int64 // pruning DQs during construction
	RankPrunes       int64 // prunes by rank query
	DistPrunes       int64 // prunes by distance query
	CleanQueries     int64 // DQ_Clean evaluations
	CleanEntries     int64 // label entries touched by cleaning merge-joins

	ConstructTime time.Duration
	CleanTime     time.Duration
	TotalTime     time.Duration

	// LockAcquisitions counts per-vertex label-table lock operations when
	// profiling is enabled (the §4.2 two-table locking ablation).
	LockAcquisitions int64

	// Per-tree series, recorded only when Options request them
	// (Figures 2 and 3). Index = root id in rank space.
	LabelsPerTree   []int64
	ExploredPerTree []int64

	// Distributed-only counters.
	BytesSent        int64 // total label/query traffic between nodes
	MessagesSent     int64
	Synchronizations int64 // barriers / collective rounds
	MaxNodeBytes     int64 // peak label storage on any single node
	MaxNodeExplored  int64 // per-node maximum of vertices explored
	MaxNodeQueries   int64 // per-node maximum of distance queries
	PlantTrees       int64 // trees built by PLaNT before a Hybrid switch
	SwitchedAtTree   int64 // tree index at which Hybrid switched to DGLL, -1 if never
}

// Psi returns the overall Ψ ratio — vertices explored per label generated —
// the quantity Figure 3 plots per tree and the Hybrid algorithm thresholds
// on.
func (b *Build) Psi() float64 {
	if b.LabelsGenerated == 0 {
		return float64(b.VerticesExplored)
	}
	return float64(b.VerticesExplored) / float64(b.LabelsGenerated)
}

// ALS returns the average label size given the vertex count.
func (b *Build) ALS(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(b.Labels) / float64(n)
}

// String summarises the record in one line (used by the CLIs).
func (b *Build) String() string {
	s := fmt.Sprintf("%s: trees=%d labels=%d explored=%d dq=%d time=%v",
		b.Algorithm, b.Trees, b.Labels, b.VerticesExplored, b.DistanceQueries, b.TotalTime.Round(time.Millisecond))
	if b.LabelsCleaned > 0 {
		s += fmt.Sprintf(" cleaned=%d", b.LabelsCleaned)
	}
	if b.Nodes > 0 {
		s += fmt.Sprintf(" nodes=%d bytes=%d syncs=%d", b.Nodes, b.BytesSent, b.Synchronizations)
	}
	return s
}

// ModeledSeconds converts the machine-independent counters into a modeled
// execution time for an idealized cluster, used to plot the *shape* of the
// strong-scaling Figure 8 on a single box. The model charges each node its
// own computation (explored vertices + distance queries at perVertexCost),
// latency per synchronization, and wire time per byte broadcast; the run
// time is the maximum over nodes of compute plus the shared communication
// cost. maxNodeExplored/maxNodeDQ are per-node maxima.
type CostModel struct {
	SecPerVertex float64 // cost of one priority-queue pop + relaxations
	SecPerQuery  float64 // cost of one pruning distance query
	SecPerSync   float64 // barrier / collective latency
	SecPerByte   float64 // broadcast bandwidth (inverse)
}

// DefaultCostModel reflects commodity-cluster constants: ~25ns per explored
// vertex, ~40ns per distance query, 20µs per synchronization, 1ns per wire
// byte (≈1 GB/s effective collective bandwidth).
func DefaultCostModel() CostModel {
	return CostModel{SecPerVertex: 25e-9, SecPerQuery: 40e-9, SecPerSync: 20e-6, SecPerByte: 1e-9}
}

// Modeled computes the modeled runtime in seconds.
func (cm CostModel) Modeled(maxNodeExplored, maxNodeDQ, syncs, bytes int64) float64 {
	return float64(maxNodeExplored)*cm.SecPerVertex +
		float64(maxNodeDQ)*cm.SecPerQuery +
		float64(syncs)*cm.SecPerSync +
		float64(bytes)*cm.SecPerByte
}

package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestPsi(t *testing.T) {
	b := &Build{VerticesExplored: 100, LabelsGenerated: 20}
	if b.Psi() != 5 {
		t.Fatalf("Ψ = %v", b.Psi())
	}
	empty := &Build{VerticesExplored: 42}
	if empty.Psi() != 42 {
		t.Fatalf("label-free Ψ = %v, want explored count", empty.Psi())
	}
}

func TestALS(t *testing.T) {
	b := &Build{Labels: 300}
	if b.ALS(100) != 3 {
		t.Fatalf("ALS = %v", b.ALS(100))
	}
	if b.ALS(0) != 0 {
		t.Fatal("ALS of empty graph must be 0")
	}
}

func TestString(t *testing.T) {
	b := &Build{
		Algorithm: "GLL", Trees: 10, Labels: 50, LabelsCleaned: 5,
		TotalTime: 1500 * time.Millisecond,
	}
	s := b.String()
	for _, want := range []string{"GLL", "trees=10", "labels=50", "cleaned=5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	d := &Build{Algorithm: "PLaNT", Nodes: 4, BytesSent: 99}
	if !strings.Contains(d.String(), "nodes=4") {
		t.Fatalf("distributed String() = %q", d.String())
	}
}

func TestCostModel(t *testing.T) {
	cm := CostModel{SecPerVertex: 1, SecPerQuery: 2, SecPerSync: 3, SecPerByte: 4}
	got := cm.Modeled(10, 20, 30, 40)
	want := 10.0 + 40 + 90 + 160
	if got != want {
		t.Fatalf("Modeled = %v, want %v", got, want)
	}
	def := DefaultCostModel()
	if def.SecPerVertex <= 0 || def.SecPerSync <= 0 {
		t.Fatal("default cost model has zero constants")
	}
	// Sanity: a synchronization costs more than exploring one vertex.
	if def.SecPerSync < def.SecPerVertex {
		t.Fatal("synchronization cheaper than a vertex pop")
	}
}

// Package query implements the paper's three distributed PPSD query modes
// (§6):
//
//   - QLSN — Querying with Labels on a Single Node: the full labeling is
//     replicated on every node and each query is answered entirely by the
//     node where it emerges. Lowest latency (no network), highest memory,
//     and batch throughput limited to the emitting node's compute.
//   - QFDL — Querying with Fully Distributed Labels: every vertex's label
//     set is partitioned across all q nodes (by generating node, as the
//     distributed builders leave them). A query is broadcast, every node
//     computes the best distance over its partial labels, and a MIN
//     reduction produces the answer. Minimum memory per node, but every
//     query pays a broadcast + reduction.
//   - QDOL — Querying with Distributed Overlapping Labels: the vertex set
//     is split into ζ partitions with C(ζ,2) = q, one node per partition
//     pair storing the complete label sets of both partitions. A query is
//     routed point-to-point to the unique owning node, which answers it
//     alone. Memory per node is Θ(1/√q) of the labeling; batches spread
//     across nodes with only two small messages per query.
//
// NewEngine freezes the deployed labelings into flat packed stores
// (label.FlatIndex) — build once, serve many — and Batch fans the queries
// out over a GOMAXPROCS-sized worker pool with per-worker accumulators, so
// the real merge-join work runs at memory-bandwidth speed while staying
// deterministic.
//
// The engines run the real merge-join computations (answers are exact for
// the integer-weight datasets and verified against Dijkstra by the tests;
// the frozen stores narrow distances to float32, so graphs with fractional
// edge weights answer to ~7 significant digits) and meter per-node work (label
// entries scanned, queries handled) and traffic (bytes, messages). Latency
// and throughput are then derived via an explicit CostModel, which keeps
// the numbers machine-independent — on this one-box simulation, wall-clock
// time would reflect the host scheduler rather than the algorithms
// (DESIGN.md §4). Table 4's orderings (QLSN lowest latency; QDOL ≈ 1.8×
// QFDL throughput; QFDL smallest memory, QDOL ≈ √q/2-fold more, QLSN most)
// come out of exactly these meters.
package query

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/label"
)

// Mode names a query distribution strategy.
type Mode string

// The three modes of §6.
const (
	QLSN Mode = "QLSN"
	QFDL Mode = "QFDL"
	QDOL Mode = "QDOL"
)

// Pair is one PPSD query (vertex ids in rank space).
type Pair struct {
	U, V int32
}

// CostModel holds the network constants used to convert metered work into
// latency and throughput figures. The defaults mirror commodity-cluster
// MPI: ~20µs broadcast latency, ~7µs point-to-point latency, ~2GB/s
// effective bandwidth, and 2ns per label entry scanned during a
// merge-join. Bandwidth is charged with pipelined-collective semantics: a
// broadcast of B bytes costs ~2B on the wire regardless of q
// (scatter/allgather implementation), not B×(q−1).
type CostModel struct {
	BroadcastLatency time.Duration
	P2PLatency       time.Duration
	SecPerByte       float64
	SecPerEntry      float64
}

// DefaultCostModel returns the constants described above.
func DefaultCostModel() CostModel {
	return CostModel{
		BroadcastLatency: 20 * time.Microsecond,
		P2PLatency:       7 * time.Microsecond,
		SecPerByte:       0.5e-9,
		SecPerEntry:      2e-9,
	}
}

// Engine answers queries under one mode over a fixed deployment of labels
// to q simulated nodes. The labelings are frozen into flat packed stores
// at construction.
type Engine struct {
	mode    Mode
	q       int
	cm      CostModel
	workers int

	// Per-node label storage; layout depends on the mode.
	full     *label.FlatIndex   // QLSN (shared instance; accounted q times) and QDOL source
	perNode  []*label.FlatIndex // QFDL partitions
	zeta     int                // QDOL partition count
	pairNode [][]int            // QDOL: pairNode[a][b] = node owning partition pair (a≤b)

	memPerNode []int64
}

// NewEngine deploys labels for the chosen mode. full is the complete
// labeling; perNode are the per-node partitions produced by the distributed
// builders (required for QFDL, ignored otherwise — QDOL redistributes from
// full by vertex partition).
func NewEngine(mode Mode, full *label.Index, perNode []*label.Index, q int, cm CostModel) (*Engine, error) {
	if q < 1 {
		return nil, fmt.Errorf("query: need q ≥ 1, got %d", q)
	}
	e := &Engine{
		mode: mode, q: q, cm: cm,
		workers:    runtime.GOMAXPROCS(0),
		memPerNode: make([]int64, q),
	}
	if mode != QFDL {
		e.full = label.Freeze(full) // QFDL only ever scans its partitions
	}
	fullBytes := full.TotalLabels() * label.Bytes
	switch mode {
	case QLSN:
		for i := range e.memPerNode {
			e.memPerNode[i] = fullBytes
		}
	case QFDL:
		if len(perNode) != q {
			return nil, fmt.Errorf("query: QFDL needs %d per-node partitions, got %d", q, len(perNode))
		}
		e.perNode = make([]*label.FlatIndex, q)
		for i, p := range perNode {
			e.perNode[i] = label.Freeze(p)
			e.memPerNode[i] = p.TotalLabels() * label.Bytes
		}
	case QDOL:
		// ζ = (1 + √(1+8q)) / 2 rounded down to keep C(ζ,2) ≤ q.
		zeta := int((1 + math.Sqrt(1+8*float64(q))) / 2)
		for zeta > 2 && zeta*(zeta-1)/2 > q {
			zeta--
		}
		if zeta < 2 {
			zeta = 2
			if q < 1 {
				return nil, fmt.Errorf("query: QDOL needs at least 1 node")
			}
		}
		e.zeta = zeta
		e.pairNode = make([][]int, zeta)
		node := 0
		for a := 0; a < zeta; a++ {
			e.pairNode[a] = make([]int, zeta)
			for b := range e.pairNode[a] {
				e.pairNode[a][b] = -1
			}
		}
		for a := 0; a < zeta; a++ {
			for b := a + 1; b < zeta; b++ {
				e.pairNode[a][b] = node % q
				e.pairNode[b][a] = node % q
				node++
			}
		}
		// Same-partition queries go to the first node holding that
		// partition.
		for a := 0; a < zeta; a++ {
			b := (a + 1) % zeta
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			e.pairNode[a][a] = e.pairNode[lo][hi]
		}
		// Memory: each node stores the complete label sets of its two
		// partitions.
		partBytes := make([]int64, zeta)
		for v := 0; v < full.NumVertices(); v++ {
			partBytes[v%zeta] += int64(len(full.Labels(v))) * label.Bytes
		}
		for a := 0; a < zeta; a++ {
			for b := a + 1; b < zeta; b++ {
				n := e.pairNode[a][b]
				e.memPerNode[n] += partBytes[a] + partBytes[b]
			}
		}
	default:
		return nil, fmt.Errorf("query: unknown mode %q", mode)
	}
	return e, nil
}

// Mode returns the engine's mode.
func (e *Engine) Mode() Mode { return e.mode }

// MemoryPerNode returns the label bytes stored on each node.
func (e *Engine) MemoryPerNode() []int64 { return e.memPerNode }

// TotalMemory returns the summed label storage across nodes (the "Memory
// Usage" column of Table 4).
func (e *Engine) TotalMemory() int64 {
	var t int64
	for _, b := range e.memPerNode {
		t += b
	}
	return t
}

// Query answers one PPSD query and reports its modeled latency.
func (e *Engine) Query(u, v int) (float64, time.Duration) {
	switch e.mode {
	case QLSN:
		d, entries := e.full.QueryCounted(u, v)
		return d, time.Duration(float64(entries) * e.cm.SecPerEntry * float64(time.Second))
	case QFDL:
		// Broadcast query; all nodes scan their partitions concurrently;
		// MIN-reduce. Latency = broadcast + slowest node + reduction
		// (folded into BroadcastLatency, as in MPI_Bcast+MPI_Reduce).
		best := label.Infinity
		maxEntries := int64(0)
		for _, p := range e.perNode {
			d, entries := p.QueryCounted(u, v)
			if d < best {
				best = d
			}
			if entries > maxEntries {
				maxEntries = entries
			}
		}
		lat := 2*e.cm.BroadcastLatency + time.Duration(float64(maxEntries)*e.cm.SecPerEntry*float64(time.Second))
		return best, lat
	case QDOL:
		// Route to the owning node (P2P out and back), answered there
		// against complete label sets.
		d, entries := e.full.QueryCounted(u, v)
		lat := 2*e.cm.P2PLatency + time.Duration(float64(entries)*e.cm.SecPerEntry*float64(time.Second))
		return d, lat
	}
	panic("query: unreachable")
}

// BatchResult reports a batch run.
type BatchResult struct {
	Dists []float64
	// ModeledSeconds is the modeled wall time of the batch on the
	// simulated cluster (max per-node compute + traffic).
	ModeledSeconds float64
	// Throughput is queries per modeled second.
	Throughput float64
	// MeanLatency is the modeled per-query latency.
	MeanLatency time.Duration
	// BytesSent / MessagesSent meter the batch's traffic.
	BytesSent    int64
	MessagesSent int64
	// EntriesScanned sums label entries touched across nodes.
	EntriesScanned int64
}

const queryWireBytes = 16 // two vertex ids + routing
const replyWireBytes = 8  // one distance

// batchAcc is one batch worker's private accumulator; folding the workers'
// accumulators in rank order keeps every metered figure identical to the
// sequential computation.
type batchAcc struct {
	perNodeEntries []int64
	latSum         time.Duration
	bytes, msgs    int64
}

// Batch answers a batch of queries. Queries emerge at node 0 (the paper's
// application host): under QLSN node 0 must answer everything itself, QFDL
// fans every query out to all nodes, QDOL scatters queries across owner
// nodes — reproducing Table 4's throughput ordering. The merge-join work
// is fanned out over a GOMAXPROCS-sized worker pool; each worker owns a
// contiguous slice of the batch and a private accumulator, so the hot loop
// allocates nothing and the modeled figures stay deterministic.
func (e *Engine) Batch(pairs []Pair) *BatchResult {
	res := &BatchResult{Dists: make([]float64, len(pairs))}
	workers := e.workers
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers < 1 {
		workers = 1
	}
	accs := make([]batchAcc, workers)
	chunk := (len(pairs) + workers - 1) / workers
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		lo, hi := t*chunk, (t+1)*chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			acc := &accs[t]
			acc.perNodeEntries = make([]int64, e.q)
			e.batchRange(pairs, lo, hi, res.Dists, acc)
		}(t, lo, hi)
	}
	wg.Wait()

	perNodeEntries := make([]int64, e.q)
	var latSum time.Duration
	for _, a := range accs {
		for r, c := range a.perNodeEntries {
			perNodeEntries[r] += c
		}
		latSum += a.latSum
		res.BytesSent += a.bytes
		res.MessagesSent += a.msgs
	}
	if e.mode == QFDL {
		// Pipelined broadcast + reduce: ~2× the payload each way.
		res.BytesSent = int64(len(pairs)) * 2 * (queryWireBytes + replyWireBytes)
		res.MessagesSent = int64(len(pairs)) * 2 * int64(e.q-1)
	}

	var maxEntries int64
	for _, c := range perNodeEntries {
		res.EntriesScanned += c
		if c > maxEntries {
			maxEntries = c
		}
	}
	res.ModeledSeconds = float64(maxEntries)*e.cm.SecPerEntry + float64(res.BytesSent)*e.cm.SecPerByte
	if len(pairs) > 0 {
		if res.ModeledSeconds > 0 {
			res.Throughput = float64(len(pairs)) / res.ModeledSeconds
		}
		res.MeanLatency = latSum / time.Duration(len(pairs))
	}
	return res
}

// batchRange answers pairs[lo:hi] into dists, metering into acc.
func (e *Engine) batchRange(pairs []Pair, lo, hi int, dists []float64, acc *batchAcc) {
	switch e.mode {
	case QLSN:
		for i := lo; i < hi; i++ {
			p := pairs[i]
			d, entries := e.full.QueryCounted(int(p.U), int(p.V))
			dists[i] = d
			acc.perNodeEntries[0] += entries
			acc.latSum += time.Duration(float64(entries) * e.cm.SecPerEntry * float64(time.Second))
		}
	case QFDL:
		// Every node scans its partition for every query.
		for i := lo; i < hi; i++ {
			p := pairs[i]
			best := label.Infinity
			var maxE int64
			for r, part := range e.perNode {
				d, entries := part.QueryCounted(int(p.U), int(p.V))
				if d < best {
					best = d
				}
				acc.perNodeEntries[r] += entries
				if entries > maxE {
					maxE = entries
				}
			}
			dists[i] = best
			acc.latSum += 2*e.cm.BroadcastLatency + time.Duration(float64(maxE)*e.cm.SecPerEntry*float64(time.Second))
		}
	case QDOL:
		// Queries are sorted to their owner nodes (the paper sorts the
		// batch by destination; the reported throughput includes that
		// cost, which is linear and folded into SecPerEntry here).
		for i := lo; i < hi; i++ {
			p := pairs[i]
			owner := e.ownerOf(int(p.U), int(p.V))
			d, entries := e.full.QueryCounted(int(p.U), int(p.V))
			dists[i] = d
			acc.perNodeEntries[owner] += entries
			acc.latSum += 2*e.cm.P2PLatency + time.Duration(float64(entries)*e.cm.SecPerEntry*float64(time.Second))
			if owner != 0 {
				acc.bytes += queryWireBytes + replyWireBytes
				acc.msgs += 2
			}
		}
	}
}

// ownerOf returns the QDOL node owning the partition pair of (u,v).
func (e *Engine) ownerOf(u, v int) int {
	return e.pairNode[u%e.zeta][v%e.zeta]
}

// queryCounted merge-joins two sorted label sets, returning the best
// distance and the number of entries touched (the slice-based reference
// for the flat path; the tests cross-check the two).
func queryCounted(a, b label.Set) (float64, int64) {
	best := label.Infinity
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Hub < b[j].Hub:
			i++
		case a[i].Hub > b[j].Hub:
			j++
		default:
			if d := a[i].Dist + b[j].Dist; d < best {
				best = d
			}
			i++
			j++
		}
	}
	return best, int64(i + j)
}

package query

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/pll"
	"repro/internal/sssp"
)

func TestModesReturnExactDistances(t *testing.T) {
	g := graph.BarabasiAlbert(150, 3, 1)
	res, err := dist.Hybrid(g, dist.Options{Nodes: 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var pairs []Pair
	var want []float64
	for i := 0; i < 400; i++ {
		u, v := rng.Intn(150), rng.Intn(150)
		pairs = append(pairs, Pair{U: int32(u), V: int32(v)})
		want = append(want, sssp.Dijkstra(g, u)[v])
	}
	for _, mode := range []Mode{QLSN, QFDL, QDOL} {
		eng, err := NewEngine(mode, res.Index, res.PerNode, 6, DefaultCostModel())
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		br := eng.Batch(pairs)
		for i := range pairs {
			if br.Dists[i] != want[i] {
				t.Fatalf("%s: query %d = %v, want %v", mode, i, br.Dists[i], want[i])
			}
		}
		for i, p := range pairs[:50] {
			d, lat := eng.Query(int(p.U), int(p.V))
			if d != want[i] {
				t.Fatalf("%s: single query %d = %v, want %v", mode, i, d, want[i])
			}
			if lat < 0 {
				t.Fatalf("%s: negative latency", mode)
			}
		}
	}
}

func TestMemoryOrdering(t *testing.T) {
	// Table 4: per-node memory QLSN ≥ QDOL ≥ QFDL; QLSN total = q × full.
	g := graph.BarabasiAlbert(200, 4, 2)
	q := 16
	res, err := dist.Hybrid(g, dist.Options{Nodes: q})
	if err != nil {
		t.Fatal(err)
	}
	mem := map[Mode]int64{}
	for _, mode := range []Mode{QLSN, QFDL, QDOL} {
		eng, err := NewEngine(mode, res.Index, res.PerNode, q, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		var peak int64
		for _, b := range eng.MemoryPerNode() {
			if b > peak {
				peak = b
			}
		}
		mem[mode] = peak
	}
	if !(mem[QLSN] >= mem[QDOL] && mem[QDOL] >= mem[QFDL]) {
		t.Fatalf("memory ordering violated: QLSN=%d QDOL=%d QFDL=%d", mem[QLSN], mem[QDOL], mem[QFDL])
	}
	fullBytes := res.Index.TotalLabels() * 12
	if mem[QLSN] != fullBytes {
		t.Fatalf("QLSN per-node = %d, want full %d", mem[QLSN], fullBytes)
	}
}

func TestQFDLPartitionMemorySums(t *testing.T) {
	// QFDL stores each label exactly once across the cluster.
	g := graph.BarabasiAlbert(120, 3, 3)
	q := 5
	res, err := dist.DGLL(g, dist.Options{Nodes: q})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(QFDL, res.Index, res.PerNode, q, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if eng.TotalMemory() != res.Index.TotalLabels()*12 {
		t.Fatalf("QFDL total memory %d != label bytes %d", eng.TotalMemory(), res.Index.TotalLabels()*12)
	}
}

func TestThroughputOrdering(t *testing.T) {
	// Table 4: multi-node parallelism gives QDOL > QFDL > QLSN on batch
	// throughput for label-heavy workloads.
	g := graph.BarabasiAlbert(250, 4, 4)
	q := 16
	res, err := dist.Hybrid(g, dist.Options{Nodes: q})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var pairs []Pair
	for i := 0; i < 3000; i++ {
		pairs = append(pairs, Pair{U: int32(rng.Intn(250)), V: int32(rng.Intn(250))})
	}
	thr := map[Mode]float64{}
	for _, mode := range []Mode{QLSN, QFDL, QDOL} {
		eng, err := NewEngine(mode, res.Index, res.PerNode, q, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		thr[mode] = eng.Batch(pairs).Throughput
	}
	if !(thr[QDOL] > thr[QLSN]) {
		t.Fatalf("QDOL %v not above QLSN %v", thr[QDOL], thr[QLSN])
	}
	if !(thr[QFDL] > thr[QLSN]) {
		t.Fatalf("QFDL %v not above QLSN %v", thr[QFDL], thr[QLSN])
	}
}

func TestLatencyOrdering(t *testing.T) {
	// Table 4: QLSN has by far the lowest latency (no network); QDOL sits
	// below QFDL (P2P vs broadcast).
	g := graph.BarabasiAlbert(150, 3, 5)
	q := 16
	res, err := dist.Hybrid(g, dist.Options{Nodes: q})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var pairs []Pair
	for i := 0; i < 500; i++ {
		pairs = append(pairs, Pair{U: int32(rng.Intn(150)), V: int32(rng.Intn(150))})
	}
	lat := map[Mode]float64{}
	for _, mode := range []Mode{QLSN, QFDL, QDOL} {
		eng, err := NewEngine(mode, res.Index, res.PerNode, q, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		lat[mode] = eng.Batch(pairs).MeanLatency.Seconds()
	}
	if !(lat[QLSN] < lat[QDOL] && lat[QDOL] < lat[QFDL]) {
		t.Fatalf("latency ordering violated: QLSN=%v QDOL=%v QFDL=%v", lat[QLSN], lat[QDOL], lat[QFDL])
	}
}

func TestQDOLRouting(t *testing.T) {
	g := graph.BarabasiAlbert(100, 3, 6)
	res, err := dist.Hybrid(g, dist.Options{Nodes: 6}) // ζ = 4, C(4,2)=6
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(QDOL, res.Index, nil, 6, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if eng.zeta != 4 {
		t.Fatalf("ζ = %d, want 4", eng.zeta)
	}
	// Every partition pair maps to a valid node; symmetric.
	for a := 0; a < eng.zeta; a++ {
		for b := 0; b < eng.zeta; b++ {
			n := eng.pairNode[a][b]
			if n < 0 || n >= 6 {
				t.Fatalf("pair (%d,%d) unrouted: %d", a, b, n)
			}
			if n != eng.pairNode[b][a] {
				t.Fatalf("asymmetric routing (%d,%d)", a, b)
			}
		}
	}
	// ownerOf is consistent with the table.
	if o := eng.ownerOf(5, 10); o != eng.pairNode[5%4][10%4] {
		t.Fatal("ownerOf inconsistent")
	}
}

func TestEngineErrors(t *testing.T) {
	g := graph.Path(10, 1)
	ix, _ := pll.Sequential(g, pll.Options{})
	if _, err := NewEngine(QFDL, ix, nil, 3, DefaultCostModel()); err == nil {
		t.Fatal("QFDL without partitions accepted")
	}
	if _, err := NewEngine(Mode("bogus"), ix, nil, 2, DefaultCostModel()); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if _, err := NewEngine(QLSN, ix, nil, 0, DefaultCostModel()); err == nil {
		t.Fatal("q=0 accepted")
	}
}

func TestQueryCounted(t *testing.T) {
	ix, _ := pll.Sequential(graph.Figure1(), pll.Options{})
	d, entries := queryCounted(ix.Labels(1), ix.Labels(4))
	if d != 12 {
		t.Fatalf("d(v2,v5) = %v, want 12", d)
	}
	if entries <= 0 || entries > int64(len(ix.Labels(1))+len(ix.Labels(4))) {
		t.Fatalf("entries = %d out of range", entries)
	}
}

func TestEmptyBatchAndSingleNode(t *testing.T) {
	g := graph.Path(10, 2)
	ix, _ := pll.Sequential(g, pll.Options{})
	for _, mode := range []Mode{QLSN, QDOL} {
		eng, err := NewEngine(mode, ix, nil, 1, DefaultCostModel())
		if err != nil {
			t.Fatalf("%s at q=1: %v", mode, err)
		}
		br := eng.Batch(nil)
		if len(br.Dists) != 0 || br.Throughput != 0 {
			t.Fatalf("%s: empty batch produced %+v", mode, br)
		}
		if d, _ := eng.Query(0, 9); d != 18 {
			t.Fatalf("%s: d(0,9) = %v", mode, d)
		}
	}
	// QFDL at q=1 with a single trivial partition.
	eng, err := NewEngine(QFDL, ix, []*label.Index{ix}, 1, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := eng.Query(3, 7); d != 8 {
		t.Fatalf("QFDL q=1: %v", d)
	}
}

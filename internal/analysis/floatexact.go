package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatexact polices the bit-exactness contract in the parity-critical
// packages (the root package, internal/label, internal/delta): every
// tier — flat, compressed, sharded, replicated, patched — must answer
// queries bit-identically, and the parity harness asserts it with ==.
// Two patterns erode that contract:
//
//  1. epsilon comparisons, math.Abs(a-b) < eps: tolerance windows paper
//     over real divergence until it grows past the window, and they make
//     "equal" transitive-ish instead of exact. The approved idiom is ==
//     on float64 answers or math.Float32bits equality on stored label
//     distances.
//
//  2. silent float32→float64 widening, float64(x) where x is a
//     float32: label distances live as float32 bit patterns; the one
//     sanctioned decode is float64(math.Float32frombits(bits)) at the
//     storage boundary, which is lossless and greppable. Any other
//     widening site is a second decode path that can disagree with the
//     first.
var Floatexact = &Analyzer{
	Name: "floatexact",
	Doc: "distance answers are bit-exact: no epsilon-tolerance comparisons, no float32→float64 " +
		"widening outside the float64(math.Float32frombits(bits)) decode idiom; compare with == or math.Float32bits",
	AppliesTo: func(rel string) bool {
		return rel == "" || rel == "internal/label" || rel == "internal/delta"
	},
	Run: runFloatexact,
}

func runFloatexact(pass *Pass) error {
	for _, f := range pass.AllFiles() {
		isTest := pass.IsTest(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				// math.Abs(a-b) OP x, or x OP math.Abs(a-b): an epsilon
				// tolerance whichever side the threshold sits on. This check
				// is syntactic so it covers _test.go files too — parity
				// tests are exactly where tolerances try to sneak in.
				switch n.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ:
				default:
					return true
				}
				if pass.isAbsOfDiff(f, n.X) || pass.isAbsOfDiff(f, n.Y) {
					pass.Reportf(n.Pos(),
						"the contract is bit-exact: compare answers with == (or math.Float32bits equality on label distances)",
						"epsilon-tolerance comparison (math.Abs of a difference against a threshold)")
				}
			case *ast.CallExpr:
				// float64(x) where x: float32 — needs type info, so
				// non-test files only.
				if isTest || len(n.Args) != 1 {
					return true
				}
				fun, ok := unparen(n.Fun).(*ast.Ident)
				if !ok || fun.Name != "float64" {
					return true
				}
				if obj := pass.TypesInfo.Uses[fun]; obj == nil || obj != types.Universe.Lookup("float64") {
					return true // shadowed float64, or no type info
				}
				arg := unparen(n.Args[0])
				tv, ok := pass.TypesInfo.Types[arg]
				if !ok {
					return true
				}
				basic, ok := tv.Type.Underlying().(*types.Basic)
				if !ok || basic.Kind() != types.Float32 {
					return true
				}
				if call, ok := arg.(*ast.CallExpr); ok {
					if name, ok := pass.pkgCall(f, call, "math"); ok && name == "Float32frombits" {
						return true // the sanctioned decode idiom
					}
				}
				pass.Reportf(n.Pos(),
					"decode stored distances as float64(math.Float32frombits(bits)) at the storage boundary, or stay in float32 and compare bits",
					"float32 value widened to float64 outside the Float32frombits decode idiom")
			}
			return true
		})
	}
	return nil
}

// isAbsOfDiff matches math.Abs(expr) where expr contains a subtraction
// at its top level (possibly parenthesized).
func (p *Pass) isAbsOfDiff(f *ast.File, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	name, ok := p.pkgCall(f, call, "math")
	if !ok || name != "Abs" {
		return false
	}
	diff, ok := unparen(call.Args[0]).(*ast.BinaryExpr)
	return ok && diff.Op == token.SUB
}

// Package analysis is chlvet's engine: a small, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis surface (the
// container this repository builds in has no module proxy, so the real
// framework is out of reach) plus the five repo-specific analyzers that
// mechanically enforce invariants nine PRs of serving work established
// by convention:
//
//   - clockcheck: all time-driven machinery in library packages reads
//     the injectable Clock, never package time directly (PR 7 deleted
//     every sleep-based wait; this keeps them deleted).
//   - pairkey: vertex-pair cache and singleflight keys flow through
//     Cache.pairKey / flightKeyFor, so the PR 5 (u,v)/(v,u) directed
//     aliasing bug class cannot reappear as a hand-rolled u<<32|v.
//   - errcontract: handler files emit errors through the JSON helpers
//     (httpError/writeJSON/writeShed/routeError) with documented status
//     codes only — no naked http.Error or WriteHeader(4xx/5xx).
//   - floatexact: distance answers are bit-exact; epsilon comparisons
//     and silent float32→float64 widening are flagged in the
//     parity-critical packages.
//   - snapshotref: every snapshot acquire is matched by a deferred (or
//     provably-ordered) release or an explicit ownership transfer — the
//     ref-counted drain rule that keeps hot-swap unmap safe.
//
// A finding is suppressed by annotating the offending line (or the line
// above it) with
//
//	//chlvet:allow <analyzer> -- <justification>
//
// The justification is mandatory: an allow without one is itself a
// diagnostic. cmd/chlvet composes the analyzers into a multichecker run
// over package patterns; the analysistest-style harness in this package
// (RunTest) drives each analyzer over testdata fixtures with // want
// comments.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check, mirroring the shape of
// golang.org/x/tools/go/analysis.Analyzer so the analyzers read (and
// could some day become) standard ones.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //chlvet:allow annotations.
	Name string

	// Doc states the invariant the analyzer enforces and which PR's
	// bug class it pins.
	Doc string

	// AppliesTo reports whether the analyzer runs on a package, given
	// its import path relative to the module root ("" for the root
	// package, "internal/label", "cmd/chlquery", ...). nil means every
	// package. The driver consults it; RunTest bypasses it so fixtures
	// can live under any path.
	AppliesTo func(relPath string) bool

	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet

	// Files are the package's non-test files, fully type-checked.
	Files []*ast.File

	// TestFiles are the package's _test.go files, parsed but not
	// type-checked (Pass.TypesInfo has no entries for them). Analyzers
	// with purely syntactic checks may inspect them; the rest skip
	// them.
	TestFiles []*ast.File

	// Pkg and TypesInfo hold the type-checked package. TypesInfo is
	// never nil, but lookups for TestFiles nodes miss.
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding: a position, the analyzer that produced it,
// the defect, and a one-line fix hint.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Hint     string
}

// String renders the diagnostic the way chlvet prints it:
// file:line:col: [analyzer] message (fix: hint).
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	if d.Hint != "" {
		s += " (fix: " + d.Hint + ")"
	}
	return s
}

// Reportf records a finding at pos with a fix hint.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
	})
}

// AllFiles returns Files followed by TestFiles.
func (p *Pass) AllFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	out = append(out, p.Files...)
	return append(out, p.TestFiles...)
}

// IsTest reports whether f is one of the pass's test files.
func (p *Pass) IsTest(f *ast.File) bool {
	for _, tf := range p.TestFiles {
		if tf == f {
			return true
		}
	}
	return false
}

// Filename returns the base name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	name := p.Fset.Position(pos).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// pkgCall resolves a call of the form pkg.Fn(...) against an imported
// package path, alias-aware: it returns Fn's name when call's callee is
// a selector on the local name file imports importPath under. When type
// information is available for the selector's base identifier it is
// consulted too, so a local variable shadowing the package name does
// not count.
func (p *Pass) pkgCall(f *ast.File, call *ast.CallExpr, importPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	// Prefer types: the identifier must denote the imported package.
	if obj := p.TypesInfo.Uses[base]; obj != nil {
		pn, ok := obj.(*types.PkgName)
		if !ok || pn.Imported().Path() != importPath {
			return "", false
		}
		return sel.Sel.Name, true
	}
	// Syntactic fallback (test files): match the file's import spec.
	if localImportName(f, importPath) != base.Name {
		return "", false
	}
	return sel.Sel.Name, true
}

// localImportName returns the name importPath is bound to in f: its
// alias when one is given, the path's base name otherwise, "" when the
// file does not import it.
func localImportName(f *ast.File, importPath string) string {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path != importPath {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

// enclosingFunc returns the innermost function declaration containing
// pos ("" at package scope). Function literals report their enclosing
// declaration — an invariant that holds for a handler helper holds for
// the closures it spawns.
func enclosingFunc(f *ast.File, pos token.Pos) string {
	name := ""
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Pos() <= pos && pos <= fd.End() {
			name = fd.Name.Name
		}
	}
	return name
}

// Run applies analyzers to pkg, honoring AppliesTo against the
// package's module-relative path and filtering //chlvet:allow
// suppressions, and returns the surviving diagnostics sorted by
// position. Malformed allow annotations (no justification, unknown
// analyzer name) are reported under the pseudo-analyzer "chlvet".
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return run(pkg, analyzers, false)
}

func run(pkg *Package, analyzers []*Analyzer, bypassAppliesTo bool) []Diagnostic {
	var diags []Diagnostic
	// Allow annotations validate against the full registry, not just
	// the analyzers selected for this run: -only pairkey must not
	// report every //chlvet:allow clockcheck as an unknown name.
	known := map[string]bool{}
	for _, a := range Analyzers {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows := collectAllows(pkg, known, &diags)
	for _, a := range analyzers {
		if !bypassAppliesTo && a.AppliesTo != nil && !a.AppliesTo(pkg.RelPath) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			TestFiles: pkg.TestFiles,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("analyzer failed: %v", err),
			})
		}
	}
	diags = allows.filter(diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

package analysis

import (
	"go/ast"
	"strings"
)

// forbiddenTimeFuncs are the package-time entry points that read or act
// on the wall clock. PR 7 moved every time-driven behavior in the
// serving stack onto the injectable Clock; these are the ways drift
// creeps back in. time.Since is included even though the issue class is
// usually stated as time.Now — Since *is* Now with the subtraction
// inlined, and it was exactly the prom.go shape that motivated this
// analyzer.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Clockcheck forbids wall-clock time in library packages: the root
// package and internal/... must read the injectable Clock (clock.go)
// so every time-driven behavior — ejection, probation, hedging,
// quotas, request-latency metrics — is deterministic under a
// FakeClock. Only clock.go itself (the Clock implementations), cmd/,
// and examples/ may touch package time. In _test.go files, time.Sleep
// specifically is flagged: PR 7 deleted every sleep-based wait, and a
// new one is either a flake or a slow test waiting to happen.
var Clockcheck = &Analyzer{
	Name: "clockcheck",
	Doc: "forbid time.Now/Since/Sleep/After/Tick/AfterFunc/NewTimer/NewTicker in library packages; " +
		"time-driven machinery runs on the injectable Clock (PR 7), and tests step a FakeClock instead of sleeping",
	AppliesTo: func(rel string) bool {
		return rel == "" || strings.HasPrefix(rel, "internal/")
	},
	Run: runClockcheck,
}

func runClockcheck(pass *Pass) error {
	for _, f := range pass.AllFiles() {
		if pass.Filename(f.Pos()) == "clock.go" {
			// The Clock implementations are the one sanctioned bridge to
			// package time.
			continue
		}
		isTest := pass.IsTest(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := pass.pkgCall(f, call, "time")
			if !ok || !forbiddenTimeFuncs[name] {
				return true
			}
			if isTest {
				if name != "Sleep" {
					return true // tests may read wall time; they must not wait on it
				}
				pass.Reportf(call.Pos(),
					"synchronize on observable state or step a FakeClock (clock.go); sleeps are flakes with a latency budget",
					"time.Sleep in a test")
				return true
			}
			pass.Reportf(call.Pos(),
				"thread the injectable Clock here (Server/Router clock, FakeClock in tests); see clock.go",
				"time.%s outside the Clock discipline", name)
			return true
		})
	}
	return nil
}

package analysis

import (
	"go/ast"
	"go/token"
)

// pairkeyApproved are the functions allowed to pack two 32-bit values
// into one word: Cache.pairKey is the single canonicalization point for
// cache keys (ordered for directed indexes, unordered otherwise), and
// flightKeyFor is the single constructor for singleflight keys, built
// on the same discipline.
var pairkeyApproved = map[string]bool{
	"pairKey":      true,
	"flightKeyFor": true,
}

// Pairkey flags hand-rolled vertex-pair packing in the root package:
// any u<<32|v-style shift-or outside Cache.pairKey/flightKeyFor, and
// ad-hoc map key types shaped like a vertex pair ([2]int arrays,
// two-integer-field structs). PR 5's latent bug was exactly this — an
// unordered cache key in front of a directed index served d(v→u) for
// d(u→v) — and the fix centralized key construction so ordering is
// decided in one place. A second packing site is a second place for
// the (u,v)/(v,u) decision to silently diverge.
var Pairkey = &Analyzer{
	Name: "pairkey",
	Doc: "vertex-pair cache and singleflight keys must flow through Cache.pairKey/flightKeyFor; " +
		"manual u<<32|v packing reintroduces the PR 5 directed (u,v)/(v,u) aliasing bug class",
	AppliesTo: func(rel string) bool { return rel == "" },
	Run:       runPairkey,
}

func runPairkey(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.OR {
					return true
				}
				if !isShift32(n.X) && !isShift32(n.Y) {
					return true
				}
				if pairkeyApproved[enclosingFunc(f, n.Pos())] {
					return true
				}
				pass.Reportf(n.Pos(),
					"build cache keys with Cache.pairKey and singleflight keys with flightKeyFor; ordering is decided there, once",
					"manual 64-bit pair packing (x<<32|y) outside pairKey/flightKeyFor")
			case *ast.MapType:
				if !isPairShapedKey(n.Key) {
					return true
				}
				pass.Reportf(n.Pos(),
					"key the map on Cache.pairKey/flightKeyFor output (uint64) so (u,v) ordering stays centralized",
					"ad-hoc map key over a vertex pair")
			}
			return true
		})
	}
	return nil
}

// isShift32 matches x<<32 (a half of the manual pair-packing idiom).
func isShift32(e ast.Expr) bool {
	sh, ok := unparen(e).(*ast.BinaryExpr)
	if !ok || sh.Op != token.SHL {
		return false
	}
	lit, ok := unparen(sh.Y).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "32"
}

// isPairShapedKey matches map key types that smell like a vertex pair:
// a 2-element integer array, or a struct of exactly two integer fields.
// The sanctioned flightKey struct does not match — it carries the kind
// and patch-epoch discriminants precisely so it is more than a bare
// pair.
func isPairShapedKey(e ast.Expr) bool {
	switch t := unparen(e).(type) {
	case *ast.ArrayType:
		lit, ok := t.Len.(*ast.BasicLit)
		return ok && lit.Kind == token.INT && lit.Value == "2" && isIntIdent(t.Elt)
	case *ast.StructType:
		fields := 0
		for _, fl := range t.Fields.List {
			n := len(fl.Names)
			if n == 0 {
				n = 1 // embedded
			}
			if !isIntIdent(fl.Type) {
				return false
			}
			fields += n
		}
		return fields == 2
	}
	return false
}

func isIntIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	switch id.Name {
	case "int", "int32", "int64", "uint", "uint32", "uint64":
		return true
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

package analysis

import (
	"go/ast"
	"go/constant"
	"sort"
	"strconv"
	"strings"
)

// handlerFiles are the root package's handler-bearing files: the files
// where HTTP responses are written and the JSON error contract
// therefore applies.
var handlerFiles = map[string]bool{
	"serve.go":           true,
	"router.go":          true,
	"routerupdate.go":    true,
	"routerworkloads.go": true,
	"shaping.go":         true,
}

// errHelpers are the sanctioned response writers. httpError and
// writeJSON take the status as their second argument; writeShed is the
// 429 contract (status fixed inside); routeError maps routing failures.
// Their own bodies are the one place WriteHeader may be called.
var errHelpers = map[string]bool{
	"httpError":  true,
	"writeJSON":  true,
	"writeShed":  true,
	"routeError": true,
}

// documentedStatuses is the per-endpoint error vocabulary README.md and
// ARCHITECTURE.md document for the whole stack: 400 (bad request), 404
// (endpoint not served in this deployment shape), 405 (method), 409
// (update conflict), 413 (body too large), 421 (misrouted vertex), 429
// (shed, via writeShed), 500 (internal expansion failure), 502 (cluster
// partial failure), 503 (no live replica). An error status outside this
// set is an undocumented contract change, not a new feature.
var documentedStatuses = map[int64]bool{
	400: true, 404: true, 405: true, 409: true, 413: true,
	421: true, 429: true, 500: true, 502: true, 503: true,
}

// Errcontract enforces the JSON error contract in handler-bearing
// files: no naked http.Error (it writes text/plain, breaking every
// client that decodes the documented {"error": ...} body), no direct
// WriteHeader with an error status outside the helpers, and no error
// status outside the documented per-endpoint sets.
var Errcontract = &Analyzer{
	Name: "errcontract",
	Doc: "handler files must emit errors through httpError/writeJSON/writeShed/routeError with " +
		"documented status codes (400/404/405/409/413/421/429/500/502/503); naked http.Error and " +
		"WriteHeader(4xx/5xx) bypass the JSON error contract",
	AppliesTo: func(rel string) bool { return rel == "" },
	Run:       runErrcontract,
}

func runErrcontract(pass *Pass) error {
	for _, f := range pass.Files {
		if !handlerFiles[pass.Filename(f.Pos())] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pass.pkgCall(f, call, "net/http"); ok && name == "Error" {
				pass.Reportf(call.Pos(),
					"use httpError(w, code, msg) — clients decode the documented JSON {\"error\": ...} body",
					"naked http.Error bypasses the JSON error contract")
				return true
			}
			switch callee := calleeName(call); {
			case callee == "WriteHeader":
				if errHelpers[enclosingFunc(f, call.Pos())] {
					return true
				}
				if code, ok := pass.constStatus(call, 0); ok && code >= 400 {
					pass.Reportf(call.Pos(),
						"route the error through httpError/writeJSON so the body follows the JSON contract",
						"direct WriteHeader(%d) outside the error helpers", code)
				}
			case callee == "httpError" || callee == "writeJSON":
				if code, ok := pass.constStatus(call, 1); ok && code >= 400 && !documentedStatuses[code] {
					pass.Reportf(call.Pos(),
						"document the new status in README.md/ARCHITECTURE.md and add it to errcontract's set, or use a documented one",
						"undocumented error status %d", code)
				}
			}
			return true
		})
	}
	return nil
}

// calleeName returns the called function's bare name for plain and
// selector calls.
func calleeName(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// constStatus evaluates call argument arg as a constant int when type
// information can prove it one, with a syntactic fallback for integer
// literals and http.StatusXxx selectors.
func (p *Pass) constStatus(call *ast.CallExpr, arg int) (int64, bool) {
	if arg >= len(call.Args) {
		return 0, false
	}
	e := unparen(call.Args[arg])
	if tv, ok := p.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, ok := constant.Int64Val(tv.Value); ok {
			return v, true
		}
	}
	switch e := e.(type) {
	case *ast.BasicLit:
		if v, err := strconv.ParseInt(e.Value, 10, 64); err == nil {
			return v, true
		}
	case *ast.SelectorExpr:
		if base, ok := e.X.(*ast.Ident); ok && base.Name == "http" {
			if v, ok := httpStatusByName[e.Sel.Name]; ok {
				return v, true
			}
		}
	}
	return 0, false
}

// httpStatusByName resolves the net/http status constants used without
// type information (test-file fixtures). Only the ones that can appear
// in this codebase's responses are listed; an unknown name simply
// fails constant evaluation.
var httpStatusByName = map[string]int64{
	"StatusOK":                    200,
	"StatusBadRequest":            400,
	"StatusUnauthorized":          401,
	"StatusForbidden":             403,
	"StatusNotFound":              404,
	"StatusMethodNotAllowed":      405,
	"StatusConflict":              409,
	"StatusGone":                  410,
	"StatusRequestEntityTooLarge": 413,
	"StatusTeapot":                418,
	"StatusMisdirectedRequest":    421,
	"StatusTooManyRequests":       429,
	"StatusInternalServerError":   500,
	"StatusNotImplemented":        501,
	"StatusBadGateway":            502,
	"StatusServiceUnavailable":    503,
}

// DocumentedStatusList renders the contract set for docs and tests.
func DocumentedStatusList() string {
	codes := make([]int, 0, len(documentedStatuses))
	for c := range documentedStatuses {
		codes = append(codes, int(c))
	}
	sort.Ints(codes)
	parts := make([]string, len(codes))
	for i, c := range codes {
		parts[i] = strconv.Itoa(c)
	}
	return strings.Join(parts, "/")
}

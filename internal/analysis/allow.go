package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression annotation:
//
//	//chlvet:allow clockcheck -- build-phase wall-clock metric
//	//chlvet:allow pairkey,floatexact -- reason covering both
//
// The annotation suppresses the named analyzers' findings on its own
// line and on the line immediately below, so it works both as a
// trailing comment and as a line of its own above the code. The
// justification after " -- " is mandatory.
const allowPrefix = "chlvet:allow"

// allowSet maps file → line → analyzer names suppressed there.
type allowSet map[string]map[int]map[string]bool

// collectAllows parses every //chlvet:allow annotation in pkg,
// reporting malformed ones (missing justification, unknown analyzer
// name) under the pseudo-analyzer "chlvet" so a typo cannot silently
// disable nothing.
func collectAllows(pkg *Package, known map[string]bool, diags *[]Diagnostic) allowSet {
	set := allowSet{}
	files := make([]*ast.File, 0, len(pkg.Files)+len(pkg.TestFiles))
	files = append(files, pkg.Files...)
	files = append(files, pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				parseAllow(pkg.Fset, c, known, set, diags)
			}
		}
	}
	return set
}

func parseAllow(fset *token.FileSet, c *ast.Comment, known map[string]bool, set allowSet, diags *[]Diagnostic) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, allowPrefix) {
		return
	}
	pos := fset.Position(c.Pos())
	bad := func(format string, args ...any) {
		*diags = append(*diags, Diagnostic{
			Pos:      pos,
			Analyzer: "chlvet",
			Message:  fmt.Sprintf(format, args...),
			Hint:     "write //chlvet:allow <analyzer> -- <justification>",
		})
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	names, justification, ok := strings.Cut(rest, "--")
	if !ok || strings.TrimSpace(justification) == "" {
		bad("chlvet:allow without a justification (want \"-- <why this line is exempt>\")")
		return
	}
	sawName := false
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		sawName = true
		if !known[name] {
			bad("chlvet:allow names unknown analyzer %q", name)
			continue
		}
		for _, line := range []int{pos.Line, pos.Line + 1} {
			byLine := set[pos.Filename]
			if byLine == nil {
				byLine = map[int]map[string]bool{}
				set[pos.Filename] = byLine
			}
			if byLine[line] == nil {
				byLine[line] = map[string]bool{}
			}
			byLine[line][name] = true
		}
	}
	if !sawName {
		bad("chlvet:allow names no analyzer")
	}
}

func (s allowSet) filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if byLine, ok := s[d.Pos.Filename]; ok {
			if names, ok := byLine[d.Pos.Line]; ok && names[d.Analyzer] {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

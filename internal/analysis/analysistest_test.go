package analysis

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunTest drives one analyzer over a fixture package and compares its
// diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest (which this container
// cannot fetch). The fixture lives at testdata/src/<pkgname> under
// testdata's parent; every expected finding is annotated on its line:
//
//	start := time.Now() // want "time.Now outside the Clock discipline"
//
// Each quoted string is a regexp matched against the diagnostic
// message; several on one line expect several findings there. The
// comparison is exact both ways: an unmatched diagnostic and an
// unsatisfied want are both test failures. AppliesTo is bypassed so
// fixtures can live under any import path; //chlvet:allow filtering
// runs exactly as in production, so fixtures exercise the escape hatch
// too (malformed allows surface as "chlvet" diagnostics, matchable
// with want comments like any other).
func RunTest(t *testing.T, testdata string, a *Analyzer, pkgname string) {
	t.Helper()
	loader := NewFixtureLoader(filepath.Join(testdata, "src"))
	pkg, err := loader.Load(pkgname)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgname, err)
	}
	diags := run(pkg, []*Analyzer{a}, true)

	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := posKey{d.Pos.Filename, d.Pos.Line}
		if !wants.match(key, d.Message) {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	wants.reportUnmatched(t)
}

type posKey struct {
	file string
	line int
}

type wantExp struct {
	re      *regexp.Regexp
	matched bool
}

type wantSet map[posKey][]*wantExp

// match consumes one unmatched expectation at key whose regexp matches
// the message.
func (w wantSet) match(key posKey, message string) bool {
	for _, exp := range w[key] {
		if !exp.matched && exp.re.MatchString(message) {
			exp.matched = true
			return true
		}
	}
	return false
}

func (w wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for key, exps := range w {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("no diagnostic at %s:%d matching %q", key.file, key.line, exp.re)
			}
		}
	}
}

// collectWants parses the // want comments from every fixture file,
// test files included.
func collectWants(t *testing.T, pkg *Package) wantSet {
	t.Helper()
	set := wantSet{}
	files := make([]*ast.File, 0, len(pkg.Files)+len(pkg.TestFiles))
	files = append(files, pkg.Files...)
	files = append(files, pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok, err := parseWant(c.Text)
				if err != nil {
					pos := pkg.Fset.Position(c.Pos())
					t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey{pos.Filename, pos.Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					set[key] = append(set[key], &wantExp{re: re})
				}
			}
		}
	}
	return set
}

// parseWant extracts the quoted regexps from a `// want "re" "re"`
// comment; ok is false for any other comment.
func parseWant(text string) (patterns []string, ok bool, err error) {
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	rest, isWant := strings.CutPrefix(body, "want ")
	if !isWant {
		return nil, false, nil
	}
	rest = strings.TrimSpace(rest)
	for rest != "" {
		q, qerr := strconv.QuotedPrefix(rest)
		if qerr != nil {
			return nil, true, fmt.Errorf("malformed want comment (expected quoted regexps): %q", text)
		}
		s, _ := strconv.Unquote(q)
		patterns = append(patterns, s)
		rest = strings.TrimSpace(rest[len(q):])
	}
	if len(patterns) == 0 {
		return nil, true, fmt.Errorf("want comment with no expectations: %q", text)
	}
	return patterns, true, nil
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path    string // import path ("repro/internal/label", or the fixture name under a source root)
	RelPath string // path relative to the module root: "" for the root package, "internal/label", ...
	Dir     string
	Fset    *token.FileSet

	Files     []*ast.File // non-test files, type-checked
	TestFiles []*ast.File // _test.go files, parsed only

	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages with no tooling dependencies:
// module-local import paths resolve against the module directory, the
// rest (the standard library) through go/importer's source importer,
// which compiles from GOROOT/src — no compiled export data, no module
// proxy, no network. Build-constrained files are filtered for the host
// GOOS/GOARCH, matching what `go build` would compile here.
//
// One Loader shares a FileSet, a type-checker cache, and a stdlib
// importer across every Load, so a whole-module run type-checks each
// package exactly once.
type Loader struct {
	ModPath string // module path from go.mod ("" when loading from SrcRoot only)
	ModDir  string
	SrcRoot string // GOPATH-style fallback root for fixture imports (testdata/src)

	Fset  *token.FileSet
	std   types.ImporterFrom
	cache map[string]*Package
}

// NewLoader returns a loader rooted at the module containing dir,
// reading the module path from its go.mod.
func NewLoader(dir string) (*Loader, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader()
	l.ModPath, l.ModDir = modPath, modDir
	return l, nil
}

// NewFixtureLoader returns a loader that resolves import paths under a
// GOPATH-style source root (testdata/src): import path "x" loads
// root/x. Used by the analysistest harness.
func NewFixtureLoader(root string) *Loader {
	l := newLoader()
	l.SrcRoot = root
	return l
}

func newLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache: map[string]*Package{},
	}
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (modDir, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("chlvet: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("chlvet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) { return l.ImportFrom(path, "", 0) }

// ImportFrom implements types.ImporterFrom: module-local and
// source-root paths load through the Loader itself (cached), the rest
// through the stdlib source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if dir, ok := l.resolve(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// resolve maps an import path to a directory when the loader owns it.
func (l *Loader) resolve(path string) (string, bool) {
	if l.ModPath != "" {
		if path == l.ModPath {
			return l.ModDir, true
		}
		if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
			return filepath.Join(l.ModDir, filepath.FromSlash(rest)), true
		}
	}
	if l.SrcRoot != "" {
		dir := filepath.Join(l.SrcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// Load loads, parses, and type-checks the package at importPath.
func (l *Loader) Load(importPath string) (*Package, error) {
	dir, ok := l.resolve(importPath)
	if !ok {
		return nil, fmt.Errorf("chlvet: %s is not under this module", importPath)
	}
	return l.load(importPath, dir)
}

func (l *Loader) load(importPath, dir string) (*Package, error) {
	if pkg, ok := l.cache[importPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("chlvet: import cycle through %s", importPath)
		}
		return pkg, nil
	}
	l.cache[importPath] = nil // cycle guard
	pkg, err := l.check(importPath, dir)
	if err != nil {
		delete(l.cache, importPath)
		return nil, err
	}
	l.cache[importPath] = pkg
	return pkg, nil
}

func (l *Loader) check(importPath, dir string) (*Package, error) {
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	var files, testFiles []*ast.File
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if !buildTagOK(name, src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, f)
		} else {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("chlvet: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("chlvet: type-checking %s: %w", importPath, err)
	}
	rel := ""
	if l.ModPath != "" && importPath != l.ModPath {
		rel = strings.TrimPrefix(importPath, l.ModPath+"/")
	}
	return &Package{
		Path:      importPath,
		RelPath:   rel,
		Dir:       dir,
		Fset:      l.Fset,
		Files:     files,
		TestFiles: testFiles,
		Types:     tpkg,
		Info:      info,
	}, nil
}

// goFilesIn lists the .go files in dir, sorted for determinism.
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// buildTagOK reports whether a file would be compiled on the host
// platform: filename GOOS/GOARCH suffixes plus the //go:build
// expression, evaluated against the host GOOS, GOARCH, and go1.N
// version tags (release tags up to the toolchain's own version all
// hold). Legacy // +build lines are ignored — the repository uses
// //go:build throughout, which gofmt keeps in sync.
func buildTagOK(name string, src []byte) bool {
	base := strings.TrimSuffix(strings.TrimSuffix(name, ".go"), "_test")
	if i := strings.LastIndexByte(base, '_'); i >= 0 {
		if suf := base[i+1:]; knownOS[suf] && suf != runtime.GOOS {
			return false
		} else if knownArch[suf] && suf != runtime.GOARCH {
			return false
		}
		// A file like label_linux_amd64.go carries two suffix tags.
		if rest := base[:i]; true {
			if j := strings.LastIndexByte(rest, '_'); j >= 0 {
				if suf := rest[j+1:]; knownOS[suf] && suf != runtime.GOOS {
					return false
				}
			}
		}
	}
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			if expr, err := constraint.Parse(trimmed); err == nil {
				return expr.Eval(func(tag string) bool {
					if tag == runtime.GOOS || tag == runtime.GOARCH {
						return true
					}
					if strings.HasPrefix(tag, "go1.") {
						return true // the toolchain building chlvet satisfies the repo's go directive
					}
					return tag == "unix" && unixOS[runtime.GOOS]
				})
			}
			continue
		}
		break // past the header: no build constraint
	}
	return true
}

var knownOS = map[string]bool{
	"linux": true, "darwin": true, "windows": true, "freebsd": true,
	"netbsd": true, "openbsd": true, "dragonfly": true, "solaris": true,
	"aix": true, "js": true, "wasip1": true, "plan9": true, "android": true, "ios": true,
}

var knownArch = map[string]bool{
	"amd64": true, "arm64": true, "386": true, "arm": true, "wasm": true,
	"ppc64": true, "ppc64le": true, "mips": true, "mipsle": true,
	"mips64": true, "mips64le": true, "riscv64": true, "s390x": true, "loong64": true,
}

var unixOS = map[string]bool{
	"linux": true, "darwin": true, "freebsd": true, "netbsd": true, "openbsd": true,
	"dragonfly": true, "solaris": true, "aix": true, "android": true, "ios": true,
}

// ExpandPatterns resolves package patterns ("./...", "./internal/label")
// against the module tree into import paths, in sorted order. Vendored
// trees, testdata, hidden directories, and nested modules (a directory
// with its own go.mod, like chlvet's own test fixtures) are skipped,
// matching the go tool's ./... semantics.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	if l.ModPath == "" {
		return nil, fmt.Errorf("chlvet: pattern expansion needs a module root")
	}
	seen := map[string]bool{}
	var out []string
	add := func(rel string) {
		path := l.ModPath
		if rel != "" && rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || pat == "./..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		pat = strings.TrimPrefix(pat, "./")
		root := filepath.Join(l.ModDir, filepath.FromSlash(pat))
		if !recursive {
			if ok, err := hasGoFiles(root); err != nil {
				return nil, err
			} else if !ok {
				return nil, fmt.Errorf("chlvet: no Go files in %s", root)
			}
			rel, _ := filepath.Rel(l.ModDir, root)
			add(rel)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if path != root {
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir // nested module
				}
			}
			if ok, err := hasGoFiles(path); err != nil {
				return err
			} else if ok {
				rel, _ := filepath.Rel(l.ModDir, path)
				add(rel)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true, nil
		}
	}
	return false, nil
}

// Package errcontract exercises the errcontract analyzer. This file is
// named serve.go because the contract binds handler-bearing files by
// name; other.go in the same package shows the scoping.
package errcontract

import "net/http"

type errBody struct {
	Error string `json:"error"`
}

// httpError is the sanctioned JSON error writer: its body is the one
// place WriteHeader may run.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write([]byte(`{"error":"` + msg + `"}`))
}

// writeJSON is the sanctioned success/error body writer.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.WriteHeader(code)
	_ = v
}

func handle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "nope", http.StatusMethodNotAllowed) // want "naked http.Error"
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable) // want "direct WriteHeader"
	w.WriteHeader(http.StatusOK)                 // success statuses are not the contract's business
}

func statuses(w http.ResponseWriter) {
	httpError(w, http.StatusNotFound, "documented")
	httpError(w, http.StatusTeapot, "undocumented") // want "undocumented error status 418"
	writeJSON(w, 502, errBody{})
	writeJSON(w, 451, errBody{}) // want "undocumented error status 451"
}

package errcontract

import "net/http"

// other.go is not a handler-bearing file: the JSON error contract does
// not apply here, so nothing below is flagged.
func elsewhere(w http.ResponseWriter) {
	http.Error(w, "plain text is fine outside handler files", 500)
}

// Package clockcheck exercises the clockcheck analyzer: wall-clock
// reads in a library package, the clock.go exemption, the test-file
// Sleep rule, and the //chlvet:allow escape hatch.
package clockcheck

import "time"

func timed() time.Duration {
	start := time.Now() // want "time.Now outside the Clock discipline"
	work()
	return time.Since(start) // want "time.Since outside the Clock discipline"
}

func waits() {
	time.Sleep(time.Millisecond) // want "time.Sleep outside the Clock discipline"
	t := time.NewTimer(0)        // want "time.NewTimer outside the Clock discipline"
	t.Stop()
	select {
	case <-time.After(time.Second): // want "time.After outside the Clock discipline"
	default:
	}
}

func allowed() time.Time {
	//chlvet:allow clockcheck -- fixture: epoch-identity style exemption
	return time.Now()
}

// Durations and time arithmetic are fine: only the wall-clock entry
// points are forbidden.
func harmless(t time.Time) time.Time { return t.Add(time.Millisecond) }

func work() {}

package clockcheck

import "time"

// clock.go is the one sanctioned bridge to package time: nothing in a
// file by this name is flagged.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

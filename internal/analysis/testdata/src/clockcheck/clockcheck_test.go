package clockcheck

import (
	"testing"
	"time"
)

func TestSleepFlagged(t *testing.T) {
	time.Sleep(time.Millisecond) // want "time.Sleep in a test"

	// Tests may read wall time (deadlines, timestamps in fixtures);
	// they just must not wait on it.
	deadline := time.Now().Add(time.Second)
	_ = deadline
}

// Package snapshotref exercises the snapshotref analyzer: the deferred
// and straight-line release shapes, the three ownership transfers, and
// the leak/early-return/discard defects.
package snapshotref

type Snap struct{}

func (s *Snap) Release() {}
func (s *Snap) use() int { return 0 }

type Server struct {
	cur *Snap
}

func (s *Server) Acquire() *Snap { return &Snap{} }

// deferred is the idiom.
func deferred(s *Server) int {
	sn := s.Acquire()
	defer sn.Release()
	return sn.use()
}

// straightLine releases without defer but with no return in between.
func straightLine(s *Server) {
	sn := s.Acquire()
	sn.use()
	sn.Release()
}

func earlyReturn(s *Server, bad bool) int {
	sn := s.Acquire() // want "can return before its release"
	if bad {
		return -1
	}
	n := sn.use()
	sn.Release()
	return n
}

func leaked(s *Server) {
	sn := s.Acquire() // want "never released in this function"
	sn.use()
}

func discarded(s *Server) {
	s.Acquire() // want "discarded"
}

func unbound(s *Server) int {
	return s.Acquire().use() // want "without being bound"
}

// chained is the one balanced acquire-chain: release immediately.
func chained(s *Server) {
	s.Acquire().Release()
}

// The three transfer shapes: the consumer owns the reference.
func transferReturn(s *Server) *Snap {
	return s.Acquire()
}

func consume(sn *Snap) {}

func transferArg(s *Server) {
	consume(s.Acquire())
}

func transferField(s *Server) {
	s.cur = s.Acquire()
}

func transferStore(s *Server, m map[int]*Snap) {
	sn := s.Acquire()
	m[0] = sn
}

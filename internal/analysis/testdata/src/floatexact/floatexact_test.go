package floatexact

import (
	"math"
	"testing"
)

// Parity tests are exactly where tolerances try to sneak in: the
// epsilon check is syntactic so it reaches _test.go files too.
func TestTolerant(t *testing.T) {
	a, b := 1.0, 1.0
	if math.Abs(a-b) <= 1e-6 { // want "epsilon-tolerance comparison"
		t.Log("close enough is not a thing here")
	}
}

// Package floatexact exercises the floatexact analyzer: epsilon
// comparisons, float32 widening, and the two approved idioms.
package floatexact

import "math"

func epsilon(a, b float64) bool {
	return math.Abs(a-b) < 1e-9 // want "epsilon-tolerance comparison"
}

func epsilonFlipped(a, b, eps float64) bool {
	return eps > math.Abs(a-b) // want "epsilon-tolerance comparison"
}

func widen(f float32) float64 {
	return float64(f) // want "float32 value widened to float64"
}

// decode is the one sanctioned widening: lossless, at the storage
// boundary, greppable.
func decode(bits uint32) float64 {
	return float64(math.Float32frombits(bits))
}

// exact is the approved comparison on stored label distances.
func exact(a, b float32) bool {
	return math.Float32bits(a) == math.Float32bits(b)
}

// Abs without a difference inside is magnitude math, not a tolerance.
func magnitude(a, b float64) bool {
	return math.Abs(a) < math.Abs(b)
}

// Widening from float64 expressions or integers is not the pattern.
func harmless(n int) float64 { return float64(n) }

// Package allowbad holds deliberately malformed //chlvet:allow
// annotations. It is driven directly by TestAllowAnnotations rather
// than through RunTest: the chlvet pseudo-diagnostics land on the
// annotation's own line, where a // want comment cannot ride.
package allowbad

import "time"

func noJustification() time.Time {
	//chlvet:allow clockcheck
	return time.Now()
}

func unknownAnalyzer() time.Time {
	//chlvet:allow clokcheck -- typo in the analyzer name
	return time.Now()
}

func valid() time.Time {
	//chlvet:allow clockcheck -- fixture: justified exemption
	return time.Now()
}

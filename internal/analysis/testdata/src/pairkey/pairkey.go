// Package pairkey exercises the pairkey analyzer: manual pair packing,
// pair-shaped map keys, the approved constructors, and the PR 5
// directed-aliasing regression shape.
package pairkey

// Cache mirrors the real answer cache's key discipline: pairKey is the
// single canonicalization point, so its own packing is approved.
type Cache struct {
	directed bool
	m        map[uint64]float64
}

func (c *Cache) pairKey(u, v int) uint64 {
	if !c.directed && u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// flightKeyFor is the other approved constructor.
func flightKeyFor(u, v int) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// aliasing is the PR 5 regression shape: a hand-rolled key in front of
// a directed cache, sorted unconditionally where pairKey would have
// preserved order — d(v→u) silently served for d(u→v). The analyzer
// must flag the packing site so the bug class cannot be reintroduced.
func aliasing(c *Cache, u, v int) float64 {
	if u > v {
		u, v = v, u // unconditional sort: wrong when c.directed
	}
	key := uint64(uint32(u))<<32 | uint64(uint32(v)) // want "manual 64-bit pair packing"
	return c.m[key]
}

// Ad-hoc pair-shaped map keys sidestep the discipline entirely.
var adhocArray map[[2]int]float64 // want "ad-hoc map key over a vertex pair"

var adhocStruct map[struct{ u, v int }]bool // want "ad-hoc map key over a vertex pair"

// A key carrying discriminants beyond the bare pair (the real
// flightKey shape) is more than a pair and is not flagged.
var keyed map[struct {
	kind   uint8
	pair   uint64
	hub    bool
	pepoch uint64
}]bool

// Shifts that are not the 32-bit pair idiom are untouched.
func mix(a, b uint64) uint64 { return a<<16 | b }

package analysis

import (
	"strings"
	"testing"
)

func TestClockcheck(t *testing.T) { RunTest(t, "testdata", Clockcheck, "clockcheck") }

func TestPairkey(t *testing.T) { RunTest(t, "testdata", Pairkey, "pairkey") }

func TestErrcontract(t *testing.T) { RunTest(t, "testdata", Errcontract, "errcontract") }

func TestFloatexact(t *testing.T) { RunTest(t, "testdata", Floatexact, "floatexact") }

func TestSnapshotref(t *testing.T) { RunTest(t, "testdata", Snapshotref, "snapshotref") }

// TestAllowAnnotations drives the allowbad fixture directly: malformed
// annotations must surface as chlvet pseudo-diagnostics, must not
// suppress the finding beneath them, and a well-formed one must.
func TestAllowAnnotations(t *testing.T) {
	loader := NewFixtureLoader("testdata/src")
	pkg, err := loader.Load("allowbad")
	if err != nil {
		t.Fatalf("loading allowbad: %v", err)
	}
	diags := run(pkg, []*Analyzer{Clockcheck}, true)

	var got []string
	for _, d := range diags {
		got = append(got, "["+d.Analyzer+"] "+d.Message)
	}
	wants := []string{
		"[chlvet] chlvet:allow without a justification",
		"[chlvet] chlvet:allow names unknown analyzer \"clokcheck\"",
		// Neither malformed annotation suppresses anything: the two
		// time.Now calls under them still surface.
		"[clockcheck] time.Now outside the Clock discipline",
		"[clockcheck] time.Now outside the Clock discipline",
	}
	if len(got) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(wants), strings.Join(got, "\n"))
	}
	matched := make([]bool, len(got))
	for _, want := range wants {
		found := false
		for i, g := range got {
			if !matched[i] && strings.Contains(g, want) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q in:\n%s", want, strings.Join(got, "\n"))
		}
	}
}

// TestAppliesTo pins each analyzer's package scope.
func TestAppliesTo(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		rel      string
		want     bool
	}{
		{Clockcheck, "", true},
		{Clockcheck, "internal/label", true},
		{Clockcheck, "cmd/chlquery", false},
		{Clockcheck, "examples/quickstart", false},
		{Pairkey, "", true},
		{Pairkey, "internal/shard", false},
		{Errcontract, "", true},
		{Errcontract, "cmd/chlrouter", false},
		{Floatexact, "", true},
		{Floatexact, "internal/label", true},
		{Floatexact, "internal/delta", true},
		{Floatexact, "internal/graph", false},
		{Snapshotref, "", true},
		{Snapshotref, "internal/dist", false},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.rel); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.rel, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(Analyzers) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(Analyzers))
	}
	two, err := ByName("clockcheck, pairkey")
	if err != nil || len(two) != 2 || two[0] != Clockcheck || two[1] != Pairkey {
		t.Fatalf("ByName subset = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

func TestDocumentedStatusList(t *testing.T) {
	if got, want := DocumentedStatusList(), "400/404/405/409/413/421/429/500/502/503"; got != want {
		t.Fatalf("DocumentedStatusList() = %q, want %q", got, want)
	}
}

func TestParseWant(t *testing.T) {
	pats, ok, err := parseWant(`// want "a b" "c(d)?"`)
	if err != nil || !ok || len(pats) != 2 || pats[0] != "a b" || pats[1] != "c(d)?" {
		t.Fatalf("parseWant = %v, %v, %v", pats, ok, err)
	}
	if _, ok, _ := parseWant("// a plain comment"); ok {
		t.Fatal("plain comment parsed as want")
	}
	if _, ok, err := parseWant(`// want unquoted`); !ok || err == nil {
		t.Fatal("malformed want not rejected")
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Snapshotref enforces the ref-counted drain rule from PR 2: every
// snapshot reference taken with Server.Acquire (or the internal
// fxHandle.acquire) must be released on every return path, or its
// ownership explicitly handed off. A leaked reference keeps a retired
// snapshot's mmap pinned forever after a hot swap — the file never
// unmaps, and under churn the process accretes dead mappings; a missing
// release on just one early-return error path is how that starts.
//
// The check is deliberately flow-insensitive (it pairs syntax, not
// paths) with three sanctioned shapes:
//
//  1. defer sn.Release() anywhere in the function — the idiom;
//  2. a plain sn.Release() with no return statement between the
//     acquire and the release (short straight-line sections like
//     SetPrefault);
//  3. ownership transfer: the acquired value is returned, passed to a
//     call, stored into a field/composite, or the acquire expression
//     itself is an argument or return operand.
var Snapshotref = &Analyzer{
	Name: "snapshotref",
	Doc: "every snapshot acquire (Server.Acquire / fxHandle.acquire) must be matched by a deferred " +
		"or provably-ordered release, or an explicit ownership transfer — the ref-counted drain rule " +
		"that keeps hot-swap unmap safe (PR 2)",
	AppliesTo: func(rel string) bool { return rel == "" },
	Run:       runSnapshotref,
}

// acquireNames / releaseNames pair the two refcount APIs: the exported
// Snapshot one and the internal fxHandle one.
func isAcquireName(s string) bool { return s == "Acquire" || s == "acquire" }
func isReleaseName(s string) bool { return s == "Release" || s == "release" }

func runSnapshotref(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isAcquireName(fd.Name.Name) || isReleaseName(fd.Name.Name) {
				continue // the refcount primitives themselves
			}
			checkFuncRefs(pass, fd)
		}
	}
	return nil
}

func checkFuncRefs(pass *Pass, fd *ast.FuncDecl) {
	parents := parentMap(fd)
	var acquires []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if ok && isAcquireName(sel.Sel.Name) && len(call.Args) == 0 {
			acquires = append(acquires, call)
		}
		return true
	})
	for _, call := range acquires {
		checkAcquireSite(pass, fd, call, parents)
	}
}

func checkAcquireSite(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, parents map[ast.Node]ast.Node) {
	const hint = "defer sn.Release() on the next line, or transfer ownership explicitly (return it, pass it on, or store it)"

	// Walk up from the call: an acquire used directly as a call argument
	// or return operand transfers its reference to the consumer.
	child := ast.Node(call)
	for n := parents[call]; n != nil; child, n = n, parents[n] {
		switch p := n.(type) {
		case *ast.SelectorExpr:
			// s.Acquire().X: the only balanced chain is an immediate
			// release; anything else uses a reference nobody can drop.
			if isReleaseName(p.Sel.Name) {
				return
			}
			pass.Reportf(call.Pos(), hint,
				"result of acquire is used without being bound — the reference can never be released")
			return
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if arg == child {
					return // argument of another call: ownership handed off
				}
			}
			continue // receiver chain; keep walking
		case *ast.ReturnStmt:
			return // returned: caller owns it
		case *ast.AssignStmt:
			name := assignedName(p, call)
			if name == "" {
				// Stored into a field/index/composite: transferred.
				return
			}
			checkTrackedRef(pass, fd, call, name, hint)
			return
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), hint,
				"acquired snapshot reference is discarded (refcount can never drop)")
			return
		case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.CaseClause, *ast.CommClause, *ast.LabeledStmt:
			// Hit a statement boundary without a recognized consumer.
			pass.Reportf(call.Pos(), hint,
				"acquired snapshot reference is not assigned, released, or transferred")
			return
		}
	}
}

// assignedName returns the identifier the acquire's result is bound to
// when the assignment is the simple x := recv.Acquire() shape, "" when
// the destination is a field/index expression (a transfer).
func assignedName(as *ast.AssignStmt, call *ast.CallExpr) string {
	for i, rhs := range as.Rhs {
		if unparen(rhs) != call || i >= len(as.Lhs) {
			continue
		}
		if id, ok := unparen(as.Lhs[i]).(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// checkTrackedRef verifies the lifecycle of a named snapshot reference.
func checkTrackedRef(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, name, hint string) {
	if name == "_" {
		pass.Reportf(call.Pos(), hint,
			"acquired snapshot reference is discarded (refcount can never drop)")
		return
	}
	var (
		deferred     bool
		firstRelease token.Pos
		transferred  bool
		returns      []token.Pos
	)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if releaseOn(n.Call, name) {
				deferred = true
			}
		case *ast.CallExpr:
			if releaseOn(n, name) && n.Pos() > call.End() && (firstRelease == token.NoPos || n.Pos() < firstRelease) {
				firstRelease = n.Pos()
			}
			for _, arg := range n.Args {
				if id, ok := unparen(arg).(*ast.Ident); ok && id.Name == name {
					transferred = true
				}
			}
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
			for _, res := range n.Results {
				if identInExpr(res, name) {
					transferred = true
				}
			}
		case *ast.AssignStmt:
			// sn stored somewhere (s.cur = sn, m[k] = sn, x.f = sn):
			// ownership moved to the destination's lifecycle.
			for i, rhs := range n.Rhs {
				if id, ok := unparen(rhs).(*ast.Ident); ok && id.Name == name && i < len(n.Lhs) {
					if _, isIdent := unparen(n.Lhs[i]).(*ast.Ident); !isIdent {
						transferred = true
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if id, ok := unparen(e).(*ast.Ident); ok && id.Name == name {
					transferred = true
				}
			}
		}
		return true
	})
	switch {
	case deferred || transferred:
		return
	case firstRelease == token.NoPos:
		pass.Reportf(call.Pos(), hint,
			"snapshot reference %q is acquired but never released in this function", name)
	default:
		for _, ret := range returns {
			if ret > call.End() && ret < firstRelease {
				pass.Reportf(call.Pos(), hint,
					"snapshot reference %q can return before its release (non-deferred release at a later line)", name)
				return
			}
		}
	}
}

// releaseOn matches name.Release() / name.release().
func releaseOn(call *ast.CallExpr, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !isReleaseName(sel.Sel.Name) {
		return false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	return ok && id.Name == name
}

// identInExpr reports whether name occurs as an identifier anywhere in e.
func identInExpr(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// parentMap builds child→parent links for every node under fd.
func parentMap(fd *ast.FuncDecl) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// Analyzers is the chlvet suite in its canonical order.
var Analyzers = []*Analyzer{Clockcheck, Pairkey, Errcontract, Floatexact, Snapshotref}

// ByName returns the analyzers matching a comma-separated name list
// (every analyzer for ""), or an error naming the first unknown one.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range Analyzers {
			if a.Name == name {
				out = append(out, a)
				found = true
			}
		}
		if !found {
			return nil, errUnknownAnalyzer(name)
		}
	}
	return out, nil
}

type errUnknownAnalyzer string

func (e errUnknownAnalyzer) Error() string {
	known := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		known[i] = a.Name
	}
	return "unknown analyzer " + string(e) + " (have " + strings.Join(known, ", ") + ")"
}

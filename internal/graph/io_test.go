package graph

import (
	"bytes"
	"strings"
	"testing"
)

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() || a.Directed() != b.Directed() {
		return false
	}
	for u := 0; u < a.NumVertices(); u++ {
		ha, wa := a.Neighbors(u)
		hb, wb := b.Neighbors(u)
		if len(ha) != len(hb) {
			return false
		}
		for i := range ha {
			if ha[i] != hb[i] || wa[i] != wb[i] {
				return false
			}
		}
	}
	return true
}

func TestDIMACSRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		RoadGrid(6, 7, 1),
		BarabasiAlbert(50, 3, 2),
		RandomDirected(40, 120, 9, 3),
	} {
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadDIMACS(&buf, g.Directed())
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, back) {
			t.Fatal("DIMACS round trip changed the graph")
		}
	}
}

func TestDIMACSParsing(t *testing.T) {
	in := `c a comment
p sp 3 2
a 1 2 5
a 2 3 2.5
`
	g, err := ReadDIMACS(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if w, ok := g.HasEdge(1, 2); !ok || w != 2.5 {
		t.Fatalf("edge 2-3: %v %v", w, ok)
	}
}

func TestDIMACSErrors(t *testing.T) {
	cases := []string{
		"",                      // no problem line
		"p sp x 1\n",            // bad n
		"a 1 2 3\n",             // arc before problem
		"p sp 2 1\nz 1 2 3\n",   // unknown record
		"p sp 2 1\na 1 2\n",     // short arc
		"p sp 2 1\na 1 2 -4\n",  // negative weight
		"p sp 2 1\na 1 9 1\n",   // endpoint out of range
		"p nope 2 1\na 1 2 1\n", // wrong problem kind
		"p sp 2 1\na one 2 1\n", // unparseable
	}
	for _, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in), false); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := ErdosRenyi(30, 80, 6, 4)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex count can shrink if trailing vertices are isolated; compare
	// edges only when counts match.
	if back.NumVertices() == g.NumVertices() && !graphsEqual(g, back) {
		t.Fatal("edge list round trip changed the graph")
	}
}

func TestEdgeListParsing(t *testing.T) {
	in := "# comment\n% another\n0 1\n1 2 4.5\n\n"
	g, err := ReadEdgeList(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if w, _ := g.HasEdge(0, 1); w != 1 {
		t.Fatalf("default weight %v, want 1", w)
	}
	for _, bad := range []string{"0\n", "a b\n", "0 1 x\n", "-1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(bad), false); err == nil {
			t.Errorf("edge list %q accepted", bad)
		}
	}
}

func TestWeightFormatting(t *testing.T) {
	b := NewBuilder(2, false)
	b.AddEdge(0, 1, 2.25)
	g := b.MustFinish()
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2.25") {
		t.Fatalf("fractional weight lost: %q", buf.String())
	}
	back, err := ReadDIMACS(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := back.HasEdge(0, 1); w != 2.25 {
		t.Fatalf("weight %v after round trip", w)
	}
}

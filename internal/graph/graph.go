// Package graph provides the weighted-graph substrate used by every hub
// labeling algorithm in this repository: a compact CSR (compressed sparse
// row) representation, a mutable builder, generators for the topology
// families evaluated in the paper (road-like lattices and scale-free
// networks), DIMACS and edge-list I/O, and basic structural utilities
// (transpose, permutation, connected components).
//
// Vertices are dense integers in [0, N). Edge weights are strictly positive
// float64 values; every constructor rejects non-positive weights because the
// labeling algorithms (and the exactness of PLaNT's ancestor propagation,
// see DESIGN.md §3) rely on them.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Infinity is the distance assigned to unreachable vertices.
const Infinity = math.MaxFloat64

// Graph is an immutable weighted graph in CSR form. For undirected graphs
// every edge {u,v} is stored as the two arcs u→v and v→u. Use a Builder to
// construct one.
type Graph struct {
	n        int
	directed bool
	off      []int64   // len n+1; arcs of u are adj[off[u]:off[u+1]]
	adj      []uint32  // arc heads
	wts      []float64 // arc weights, parallel to adj

	// reverse CSR, present only for directed graphs (lazily built by
	// Builder.Finish so that Graph itself stays immutable).
	roff []int64
	radj []uint32
	rwts []float64
}

// NumVertices returns the number of vertices |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumArcs returns the number of stored arcs. For an undirected graph this is
// twice the number of edges.
func (g *Graph) NumArcs() int { return len(g.adj) }

// NumEdges returns |E|: the number of undirected edges, or the number of
// directed arcs for a directed graph.
func (g *Graph) NumEdges() int {
	if g.directed {
		return len(g.adj)
	}
	return len(g.adj) / 2
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Degree returns the out-degree of u.
func (g *Graph) Degree(u int) int { return int(g.off[u+1] - g.off[u]) }

// InDegree returns the in-degree of u (equal to Degree for undirected graphs).
func (g *Graph) InDegree(u int) int {
	if !g.directed {
		return g.Degree(u)
	}
	return int(g.roff[u+1] - g.roff[u])
}

// Neighbors returns the arc heads and weights of u's outgoing arcs. The
// returned slices alias the graph's internal storage and must not be
// modified.
func (g *Graph) Neighbors(u int) ([]uint32, []float64) {
	lo, hi := g.off[u], g.off[u+1]
	return g.adj[lo:hi], g.wts[lo:hi]
}

// InNeighbors returns the arc tails and weights of u's incoming arcs. For an
// undirected graph this is identical to Neighbors.
func (g *Graph) InNeighbors(u int) ([]uint32, []float64) {
	if !g.directed {
		return g.Neighbors(u)
	}
	lo, hi := g.roff[u], g.roff[u+1]
	return g.radj[lo:hi], g.rwts[lo:hi]
}

// HasEdge reports whether an arc u→v exists, and returns its weight. If
// parallel arcs exist the minimum weight is returned.
func (g *Graph) HasEdge(u, v int) (float64, bool) {
	w, found := Infinity, false
	heads, wts := g.Neighbors(u)
	for i, h := range heads {
		if int(h) == v && wts[i] < w {
			w, found = wts[i], true
		}
	}
	return w, found
}

// MaxWeight returns the largest arc weight, or 0 for an edgeless graph.
func (g *Graph) MaxWeight() float64 {
	maxw := 0.0
	for _, w := range g.wts {
		if w > maxw {
			maxw = w
		}
	}
	return maxw
}

// TotalWeight returns the sum of all arc weights (each undirected edge
// counted twice).
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for _, w := range g.wts {
		s += w
	}
	return s
}

// Transpose returns the reverse graph (arcs flipped). For undirected graphs
// it returns the receiver itself.
func (g *Graph) Transpose() *Graph {
	if !g.directed {
		return g
	}
	return &Graph{
		n: g.n, directed: true,
		off: g.roff, adj: g.radj, wts: g.rwts,
		roff: g.off, radj: g.adj, rwts: g.wts,
	}
}

// Permute relabels the vertices of g so that new vertex i corresponds to old
// vertex perm[i]. In other words perm lists the old ids in their new order,
// which is exactly how ranking functions are expressed (perm[0] = the
// highest-ranked vertex). The inverse mapping newID[old] is also returned.
func (g *Graph) Permute(perm []int) (*Graph, []int) {
	if len(perm) != g.n {
		panic(fmt.Sprintf("graph: Permute with %d ids on %d vertices", len(perm), g.n))
	}
	newID := make([]int, g.n)
	for i := range newID {
		newID[i] = -1
	}
	for newV, oldV := range perm {
		if oldV < 0 || oldV >= g.n || newID[oldV] != -1 {
			panic(fmt.Sprintf("graph: Permute: perm is not a permutation (entry %d=%d)", newV, oldV))
		}
		newID[oldV] = newV
	}
	b := NewBuilder(g.n, g.directed)
	for newU, oldU := range perm {
		heads, wts := g.Neighbors(oldU)
		for i, h := range heads {
			newV := newID[h]
			if g.directed || newU < newV {
				b.AddEdge(newU, newV, wts[i])
			}
		}
	}
	ng, err := b.Finish()
	if err != nil {
		panic("graph: Permute: " + err.Error()) // cannot happen: weights already validated
	}
	return ng, newID
}

// Clone returns a deep copy of g. Algorithms never mutate a Graph, but the
// cluster simulator clones graphs to model per-node private copies.
func (g *Graph) Clone() *Graph {
	ng := &Graph{n: g.n, directed: g.directed}
	ng.off = append([]int64(nil), g.off...)
	ng.adj = append([]uint32(nil), g.adj...)
	ng.wts = append([]float64(nil), g.wts...)
	ng.roff = append([]int64(nil), g.roff...)
	ng.radj = append([]uint32(nil), g.radj...)
	ng.rwts = append([]float64(nil), g.rwts...)
	return ng
}

// MemoryBytes estimates the CSR storage footprint in bytes. It is used by
// the experiment harness when reporting per-node memory (Lemma 5: O(n+m)).
func (g *Graph) MemoryBytes() int64 {
	b := int64(len(g.off)+len(g.roff)) * 8
	b += int64(len(g.adj)+len(g.radj)) * 4
	b += int64(len(g.wts)+len(g.rwts)) * 8
	return b
}

// DegreeHistogram returns counts[d] = number of vertices with out-degree d.
func (g *Graph) DegreeHistogram() []int {
	maxd := 0
	for u := 0; u < g.n; u++ {
		if d := g.Degree(u); d > maxd {
			maxd = d
		}
	}
	counts := make([]int, maxd+1)
	for u := 0; u < g.n; u++ {
		counts[g.Degree(u)]++
	}
	return counts
}

// Builder accumulates edges and produces an immutable Graph. The zero value
// is not usable; call NewBuilder.
type Builder struct {
	n        int
	directed bool
	tails    []uint32
	heads    []uint32
	wts      []float64
	err      error
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int, directed bool) *Builder {
	if n < 0 {
		panic("graph: NewBuilder with negative vertex count")
	}
	return &Builder{n: n, directed: directed}
}

// AddEdge records an edge (arc, for a directed builder) u→v with weight w.
// Self loops are ignored: they can never lie on a shortest path with
// positive weights. Errors (bad endpoints, non-positive weight) are sticky
// and reported by Finish.
func (b *Builder) AddEdge(u, v int, w float64) {
	if b.err != nil {
		return
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.err = fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
		return
	}
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		b.err = fmt.Errorf("graph: edge (%d,%d) has non-positive weight %v", u, v, w)
		return
	}
	if u == v {
		return
	}
	b.tails = append(b.tails, uint32(u))
	b.heads = append(b.heads, uint32(v))
	b.wts = append(b.wts, w)
	if !b.directed {
		b.tails = append(b.tails, uint32(v))
		b.heads = append(b.heads, uint32(u))
		b.wts = append(b.wts, w)
	}
}

// NumPending returns the number of arcs recorded so far.
func (b *Builder) NumPending() int { return len(b.tails) }

// Finish sorts the accumulated arcs into CSR form, deduplicates parallel
// arcs (keeping the minimum weight), and returns the immutable Graph.
func (b *Builder) Finish() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{n: b.n, directed: b.directed}
	g.off, g.adj, g.wts = buildCSR(b.n, b.tails, b.heads, b.wts)
	if b.directed {
		g.roff, g.radj, g.rwts = buildCSR(b.n, b.heads, b.tails, b.wts)
	}
	return g, nil
}

// MustFinish is Finish for callers (generators, tests) whose input is
// correct by construction.
func (b *Builder) MustFinish() *Graph {
	g, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return g
}

// buildCSR counting-sorts the arc list by tail, then sorts each adjacency
// row by head and removes parallel duplicates keeping the lightest arc.
func buildCSR(n int, tails, heads []uint32, wts []float64) ([]int64, []uint32, []float64) {
	off := make([]int64, n+1)
	for _, t := range tails {
		off[t+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	adj := make([]uint32, len(heads))
	w := make([]float64, len(heads))
	next := make([]int64, n)
	copy(next, off[:n])
	for i, t := range tails {
		p := next[t]
		adj[p] = heads[i]
		w[p] = wts[i]
		next[t] = p + 1
	}
	// Sort each row and deduplicate in place.
	out := int64(0)
	newOff := make([]int64, n+1)
	for u := 0; u < n; u++ {
		lo, hi := off[u], off[u+1]
		row := arcRow{adj[lo:hi], w[lo:hi]}
		sort.Sort(row)
		newOff[u] = out
		for i := lo; i < hi; i++ {
			if i > lo && adj[i] == adj[out-1] {
				if w[i] < w[out-1] {
					w[out-1] = w[i]
				}
				continue
			}
			adj[out] = adj[i]
			w[out] = w[i]
			out++
		}
	}
	newOff[n] = out
	return newOff, adj[:out:out], w[:out:out]
}

type arcRow struct {
	adj []uint32
	wts []float64
}

func (r arcRow) Len() int           { return len(r.adj) }
func (r arcRow) Less(i, j int) bool { return r.adj[i] < r.adj[j] }
func (r arcRow) Swap(i, j int) {
	r.adj[i], r.adj[j] = r.adj[j], r.adj[i]
	r.wts[i], r.wts[j] = r.wts[j], r.wts[i]
}

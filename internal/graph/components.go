package graph

// Components labels the (weakly) connected components of g. It returns a
// component id per vertex in [0, count) — ids are assigned in order of the
// lowest vertex id in each component — and the component count. For directed
// graphs edges are treated as bidirectional (weak connectivity), which is
// what the cover property needs: two vertices can only require a common hub
// if some path connects them.
func Components(g *Graph) (comp []int, count int) {
	n := g.NumVertices()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			heads, _ := g.Neighbors(u)
			for _, h := range heads {
				if comp[h] == -1 {
					comp[h] = count
					queue = append(queue, int(h))
				}
			}
			if g.Directed() {
				tails, _ := g.InNeighbors(u)
				for _, t := range tails {
					if comp[t] == -1 {
						comp[t] = count
						queue = append(queue, int(t))
					}
				}
			}
		}
		count++
	}
	return comp, count
}

// LargestComponent returns the subgraph induced by the largest weakly
// connected component of g, along with the mapping from new ids to original
// ids. The experiment harness uses it so that every generated query pair is
// connected, as in the paper's evaluation.
func LargestComponent(g *Graph) (*Graph, []int) {
	comp, count := Components(g)
	if count <= 1 {
		ids := make([]int, g.NumVertices())
		for i := range ids {
			ids[i] = i
		}
		return g, ids
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	toOld := make([]int, 0, sizes[best])
	toNew := make([]int, g.NumVertices())
	for i := range toNew {
		toNew[i] = -1
	}
	for v, c := range comp {
		if c == best {
			toNew[v] = len(toOld)
			toOld = append(toOld, v)
		}
	}
	b := NewBuilder(len(toOld), g.Directed())
	for newU, oldU := range toOld {
		heads, wts := g.Neighbors(oldU)
		for i, h := range heads {
			newV := toNew[h]
			if newV < 0 {
				continue
			}
			if g.Directed() || newU < newV {
				b.AddEdge(newU, newV, wts[i])
			}
		}
	}
	return b.MustFinish(), toOld
}

// IsConnected reports whether g is (weakly) connected.
func IsConnected(g *Graph) bool {
	if g.NumVertices() == 0 {
		return true
	}
	_, count := Components(g)
	return count == 1
}

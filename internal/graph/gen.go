package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// This file contains the synthetic dataset generators. The paper evaluates
// on two topology families whose behaviour under hub labeling is radically
// different (§7.3 "Graph Topologies"):
//
//   - road networks: high diameter, near-uniform low degree, low tree-width;
//     betweenness ranking. PLaNT alone is both scalable and efficient here.
//   - scale-free networks: low diameter, power-law degree, dense core /
//     sparse fringe; degree ranking. PLaNT pays a large exploration overhead
//     on the fringe, so the Hybrid algorithm wins.
//
// RoadGrid and BarabasiAlbert reproduce those regimes (see DESIGN.md §4 for
// the dataset substitution table).

// RoadGrid generates a road-network-like graph: a rows×cols lattice where
// every vertex connects to its right and down neighbours, a fraction of
// cells gain a diagonal "shortcut" street, and a small number of random long
// "highway" edges are added. Weights are integers drawn uniformly from
// [minW, maxW], mimicking travel times. The result is connected, has high
// diameter and low tree-width — the regime where the DIMACS road networks
// (CAL, EAS, CTR, USA) live.
func RoadGrid(rows, cols int, seed int64) *Graph {
	if rows < 1 || cols < 1 {
		panic("graph: RoadGrid needs positive dimensions")
	}
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	b := NewBuilder(n, false)
	const minW, maxW = 1, 10
	weight := func() float64 { return float64(minW + rng.Intn(maxW-minW+1)) }
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1), weight())
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c), weight())
			}
			// ~20% of cells get a diagonal street, breaking the pure
			// lattice structure the way real road grids do.
			if c+1 < cols && r+1 < rows && rng.Float64() < 0.20 {
				b.AddEdge(id(r, c), id(r+1, c+1), weight())
			}
		}
	}
	// A few long-range "highways": cheap per unit distance, rare.
	highways := n / 200
	for i := 0; i < highways; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v, float64(maxW+rng.Intn(4*maxW)))
		}
	}
	return b.MustFinish()
}

// BarabasiAlbert generates a scale-free graph with n vertices by preferential
// attachment: each new vertex attaches k edges to existing vertices chosen
// proportionally to their degree. Edge weights are integers drawn uniformly
// from [1, √n) as in §7.1.1 of the paper ("scale-free networks do not have
// edge weights from the download sources... we assign edge weights between
// [1,√n) uniformly at random"). The result has the dense-core/sparse-fringe
// structure of SKIT, AUT, YTB, ACT, BDU, POK and LIJ.
func BarabasiAlbert(n, k int, seed int64) *Graph {
	if n < 1 || k < 1 {
		panic("graph: BarabasiAlbert needs n ≥ 1, k ≥ 1")
	}
	if k >= n {
		k = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	maxW := int(math.Sqrt(float64(n)))
	if maxW < 2 {
		maxW = 2
	}
	weight := func() float64 { return float64(1 + rng.Intn(maxW-1)) }

	b := NewBuilder(n, false)
	// targets holds one entry per edge endpoint; sampling uniformly from it
	// implements preferential attachment in O(1).
	targets := make([]int, 0, 2*n*k)
	// Seed clique over the first k+1 vertices.
	seedSize := k + 1
	if seedSize > n {
		seedSize = n
	}
	for u := 0; u < seedSize; u++ {
		for v := u + 1; v < seedSize; v++ {
			b.AddEdge(u, v, weight())
			targets = append(targets, u, v)
		}
	}
	chosen := make(map[int]bool, k)
	order := make([]int, 0, k)
	for u := seedSize; u < n; u++ {
		clear(chosen)
		order = order[:0]
		for len(order) < k {
			var v int
			if len(targets) == 0 {
				v = rng.Intn(u)
			} else {
				v = targets[rng.Intn(len(targets))]
			}
			if v != u && !chosen[v] {
				chosen[v] = true
				order = append(order, v) // deterministic insertion order
			}
		}
		for _, v := range order {
			b.AddEdge(u, v, weight())
			targets = append(targets, u, v)
		}
	}
	return b.MustFinish()
}

// ErdosRenyi generates a G(n, m) random graph with m undirected edges and
// integer weights in [1, maxW]. Used by the property-based tests as a source
// of unstructured topologies (possibly disconnected).
func ErdosRenyi(n, m, maxW int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	if maxW < 1 {
		maxW = 1
	}
	b := NewBuilder(n, false)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v, float64(1+rng.Intn(maxW)))
		}
	}
	return b.MustFinish()
}

// RandomDirected generates a directed G(n, m) random graph with integer
// weights in [1, maxW]. Arcs are independent, so reachability is typically
// asymmetric — used to exercise the forward/backward label machinery.
func RandomDirected(n, m, maxW int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	if maxW < 1 {
		maxW = 1
	}
	b := NewBuilder(n, true)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v, float64(1+rng.Intn(maxW)))
		}
	}
	return b.MustFinish()
}

// SmallWorld generates a Watts–Strogatz style ring lattice with n vertices,
// each joined to its k nearest neighbours on each side, with a fraction p of
// edges rewired randomly. Weights are integers in [1, 10]. It sits between
// the road and scale-free regimes and is used in tests and ablations.
func SmallWorld(n, k int, p float64, seed int64) *Graph {
	if n < 3 || k < 1 {
		panic("graph: SmallWorld needs n ≥ 3, k ≥ 1")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if rng.Float64() < p {
				for {
					v = rng.Intn(n)
					if v != u {
						break
					}
				}
			}
			b.AddEdge(u, v, float64(1+rng.Intn(10)))
		}
	}
	return b.MustFinish()
}

// Path returns the path graph 0–1–…–(n-1) with the given uniform weight.
func Path(n int, w float64) *Graph {
	b := NewBuilder(n, false)
	for u := 0; u+1 < n; u++ {
		b.AddEdge(u, u+1, w)
	}
	return b.MustFinish()
}

// Cycle returns the cycle graph on n vertices with the given uniform weight.
func Cycle(n int, w float64) *Graph {
	if n < 3 {
		panic("graph: Cycle needs n ≥ 3")
	}
	b := NewBuilder(n, false)
	for u := 0; u < n; u++ {
		b.AddEdge(u, (u+1)%n, w)
	}
	return b.MustFinish()
}

// Star returns the star graph with vertex 0 at the centre.
func Star(n int, w float64) *Graph {
	b := NewBuilder(n, false)
	for u := 1; u < n; u++ {
		b.AddEdge(0, u, w)
	}
	return b.MustFinish()
}

// Complete returns the complete graph K_n with uniform weight w.
func Complete(n int, w float64) *Graph {
	b := NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v, w)
		}
	}
	return b.MustFinish()
}

// Figure1 returns the 5-vertex weighted graph of Figure 1 in the paper,
// with vertices v1..v5 mapped to ids 0..4 (so that id order equals rank
// order: R(v1) > R(v2) > R(v3) > R(v4) > R(v5)). It is the golden fixture
// for the step-by-step PLL and PLaNT tests.
//
//	v1–v2: 3   v1–v4: 5   v1–v5: ...   (see paper Fig. 1a)
func Figure1() *Graph {
	b := NewBuilder(5, false)
	// Edges as drawn in Figure 1a: weights 5 (v1–v4), 3 (v1–v2), 10 (v2–v3),
	// 2 (v3–v5 is 2? no — v3–v5 edge weight 2), 4 (v4–v5), 14 (v2–v5).
	// From the traces in Fig. 1b/1c: d(v2,v1)=3, d(v2,v3)=10, d(v2,v5)=12
	// via v1–v4–v5 (3+5+4) and also =12 via v3 (10+2), d(v2,v4)=8 (3+5).
	b.AddEdge(0, 1, 3)  // v1–v2
	b.AddEdge(0, 3, 5)  // v1–v4
	b.AddEdge(1, 2, 10) // v2–v3
	b.AddEdge(1, 4, 14) // v2–v5
	b.AddEdge(2, 4, 2)  // v3–v5
	b.AddEdge(3, 4, 4)  // v4–v5
	return b.MustFinish()
}

// GenerateByName builds one of the named synthetic datasets used by the
// experiment harness and the CLI tools. Names are case-sensitive. The scale
// parameter multiplies the baseline vertex count (scale=1 targets seconds of
// preprocessing on a laptop).
func GenerateByName(name string, scale float64, seed int64) (*Graph, error) {
	if scale <= 0 {
		scale = 1
	}
	s := func(base int) int {
		v := int(float64(base) * scale)
		if v < 16 {
			v = 16
		}
		return v
	}
	switch name {
	case "road-small", "CAL":
		side := int(math.Sqrt(float64(s(4096))))
		return RoadGrid(side, side, seed), nil
	case "road-medium", "EAS":
		side := int(math.Sqrt(float64(s(9216))))
		return RoadGrid(side, side, seed), nil
	case "road-large", "CTR":
		side := int(math.Sqrt(float64(s(16384))))
		return RoadGrid(side, side, seed), nil
	case "road-xlarge", "USA":
		side := int(math.Sqrt(float64(s(25600))))
		return RoadGrid(side, side, seed), nil
	case "scalefree-small", "SKIT":
		return BarabasiAlbert(s(2048), 3, seed), nil
	case "scalefree-medium", "AUT":
		return BarabasiAlbert(s(4096), 4, seed), nil
	case "scalefree-large", "YTB":
		return BarabasiAlbert(s(8192), 3, seed), nil
	case "scalefree-dense", "ACT":
		return BarabasiAlbert(s(3072), 12, seed), nil
	case "scalefree-xlarge", "BDU":
		return BarabasiAlbert(s(12288), 4, seed), nil
	case "scalefree-huge", "POK":
		return BarabasiAlbert(s(16384), 6, seed), nil
	case "scalefree-max", "LIJ":
		return BarabasiAlbert(s(24576), 5, seed), nil
	case "web-directed", "WND":
		return RandomDirected(s(4096), s(4096)*5, 64, seed), nil
	case "smallworld":
		return SmallWorld(s(4096), 4, 0.1, seed), nil
	default:
		return nil, fmt.Errorf("graph: unknown dataset %q", name)
	}
}

// DatasetNames lists the canonical names accepted by GenerateByName, in the
// order the paper's tables present them.
func DatasetNames() []string {
	return []string{
		"CAL", "EAS", "CTR", "USA",
		"SKIT", "WND", "AUT", "YTB", "ACT", "BDU", "POK", "LIJ",
	}
}

package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	b.AddEdge(2, 2, 9) // self loop: dropped
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 2 || g.NumArcs() != 4 {
		t.Fatalf("n=%d m=%d arcs=%d", g.NumVertices(), g.NumEdges(), g.NumArcs())
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees: %d %d", g.Degree(1), g.Degree(3))
	}
	if w, ok := g.HasEdge(1, 0); !ok || w != 2 {
		t.Fatalf("HasEdge(1,0) = %v,%v", w, ok)
	}
	if _, ok := g.HasEdge(0, 3); ok {
		t.Fatal("phantom edge 0-3")
	}
}

func TestBuilderRejectsBadInput(t *testing.T) {
	cases := []struct {
		u, v int
		w    float64
	}{
		{-1, 0, 1}, {0, 5, 1}, {0, 1, 0}, {0, 1, -2},
		{0, 1, math.Inf(1)}, {0, 1, math.NaN()},
	}
	for _, c := range cases {
		b := NewBuilder(3, false)
		b.AddEdge(c.u, c.v, c.w)
		if _, err := b.Finish(); err == nil {
			t.Errorf("edge (%d,%d,%v) accepted, want error", c.u, c.v, c.w)
		}
	}
}

func TestParallelEdgeDeduplication(t *testing.T) {
	b := NewBuilder(2, false)
	b.AddEdge(0, 1, 5)
	b.AddEdge(0, 1, 3)
	b.AddEdge(1, 0, 7)
	g := b.MustFinish()
	if g.NumArcs() != 2 {
		t.Fatalf("arcs = %d, want 2 after dedup", g.NumArcs())
	}
	if w, _ := g.HasEdge(0, 1); w != 3 {
		t.Fatalf("kept weight %v, want the minimum 3", w)
	}
}

func TestAdjacencySorted(t *testing.T) {
	g := ErdosRenyi(50, 200, 9, 7)
	for u := 0; u < g.NumVertices(); u++ {
		heads, _ := g.Neighbors(u)
		for i := 1; i < len(heads); i++ {
			if heads[i-1] >= heads[i] {
				t.Fatalf("row %d not strictly sorted at %d", u, i)
			}
		}
	}
}

func TestDirectedTranspose(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	g := b.MustFinish()
	if g.Degree(1) != 1 || g.InDegree(1) != 1 {
		t.Fatalf("deg(1)=%d in(1)=%d", g.Degree(1), g.InDegree(1))
	}
	gt := g.Transpose()
	if w, ok := gt.HasEdge(1, 0); !ok || w != 1 {
		t.Fatalf("transpose missing arc 1→0: %v %v", w, ok)
	}
	if _, ok := gt.HasEdge(0, 1); ok {
		t.Fatal("transpose kept forward arc 0→1")
	}
	if gt.Transpose() == nil || gt.Transpose().NumArcs() != g.NumArcs() {
		t.Fatal("double transpose broken")
	}
}

func TestUndirectedTransposeIsSelf(t *testing.T) {
	g := Path(5, 1)
	if g.Transpose() != g {
		t.Fatal("undirected transpose should return the receiver")
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	g := ErdosRenyi(40, 120, 5, 3)
	perm := make([]int, 40)
	for i := range perm {
		perm[i] = (i*17 + 5) % 40 // a fixed permutation
	}
	pg, newID := g.Permute(perm)
	if pg.NumArcs() != g.NumArcs() {
		t.Fatalf("arcs %d → %d after permute", g.NumArcs(), pg.NumArcs())
	}
	for u := 0; u < g.NumVertices(); u++ {
		heads, wts := g.Neighbors(u)
		for i, h := range heads {
			w, ok := pg.HasEdge(newID[u], newID[h])
			if !ok || w != wts[i] {
				t.Fatalf("edge (%d,%d,w=%v) lost after permute: got %v,%v", u, h, wts[i], w, ok)
			}
		}
	}
}

func TestPermutePanicsOnBadPerm(t *testing.T) {
	g := Path(3, 1)
	for _, perm := range [][]int{{0, 1}, {0, 0, 1}, {0, 1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Permute(%v) did not panic", perm)
				}
			}()
			g.Permute(perm)
		}()
	}
}

func TestGeneratorShapes(t *testing.T) {
	road := RoadGrid(10, 12, 1)
	if road.NumVertices() != 120 {
		t.Fatalf("road n=%d", road.NumVertices())
	}
	if !IsConnected(road) {
		t.Fatal("road grid must be connected")
	}
	ba := BarabasiAlbert(300, 3, 2)
	if ba.NumVertices() != 300 {
		t.Fatalf("ba n=%d", ba.NumVertices())
	}
	if !IsConnected(ba) {
		t.Fatal("preferential-attachment graph must be connected")
	}
	// Scale-free: max degree far above average.
	maxd, sum := 0, 0
	for v := 0; v < ba.NumVertices(); v++ {
		d := ba.Degree(v)
		sum += d
		if d > maxd {
			maxd = d
		}
	}
	avg := float64(sum) / 300
	if float64(maxd) < 3*avg {
		t.Fatalf("BA max degree %d not scale-free vs avg %.1f", maxd, avg)
	}
	// §7.1.1 weight law: integer weights in [1, √n).
	if w := ba.MaxWeight(); w >= math.Sqrt(300)+1 {
		t.Fatalf("BA max weight %v exceeds √n", w)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := BarabasiAlbert(200, 3, 99)
	b := BarabasiAlbert(200, 3, 99)
	if a.NumArcs() != b.NumArcs() {
		t.Fatal("same seed produced different graphs")
	}
	for u := 0; u < a.NumVertices(); u++ {
		ha, wa := a.Neighbors(u)
		hb, wb := b.Neighbors(u)
		if len(ha) != len(hb) {
			t.Fatalf("vertex %d degree differs", u)
		}
		for i := range ha {
			if ha[i] != hb[i] || wa[i] != wb[i] {
				t.Fatalf("vertex %d arc %d differs", u, i)
			}
		}
	}
	if c := BarabasiAlbert(200, 3, 100); c.NumArcs() == a.NumArcs() {
		// Different seeds may coincide in arc count; compare rows too.
		same := true
		for u := 0; u < a.NumVertices() && same; u++ {
			ha, _ := a.Neighbors(u)
			hc, _ := c.Neighbors(u)
			if len(ha) != len(hc) {
				same = false
				break
			}
			for i := range ha {
				if ha[i] != hc[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestFigure1Distances(t *testing.T) {
	g := Figure1()
	// Distances asserted from the worked example in Figures 1b/1c.
	checks := []struct {
		u, v int
		w    float64
	}{
		{0, 1, 3}, {0, 3, 5}, {1, 2, 10}, {1, 4, 14}, {2, 4, 2}, {3, 4, 4},
	}
	for _, c := range checks {
		if w, ok := g.HasEdge(c.u, c.v); !ok || w != c.w {
			t.Fatalf("edge v%d–v%d = %v,%v want %v", c.u+1, c.v+1, w, ok, c.w)
		}
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(7, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	g := b.MustFinish() // components {0,1,2}, {3,4}, {5}, {6}
	comp, count := Components(g)
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] || comp[5] == comp[6] {
		t.Fatalf("bad component labels %v", comp)
	}
	lc, ids := LargestComponent(g)
	if lc.NumVertices() != 3 || len(ids) != 3 {
		t.Fatalf("largest component has %d vertices, want 3", lc.NumVertices())
	}
}

func TestDirectedWeakComponents(t *testing.T) {
	b := NewBuilder(4, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 1, 1) // weakly connects 2 despite direction
	g := b.MustFinish()
	_, count := Components(g)
	if count != 2 {
		t.Fatalf("weak components = %d, want 2 ({0,1,2},{3})", count)
	}
}

func TestGenerateByName(t *testing.T) {
	for _, name := range DatasetNames() {
		g, err := GenerateByName(name, 0.1, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumVertices() < 16 {
			t.Fatalf("%s: tiny graph %d", name, g.NumVertices())
		}
	}
	if _, err := GenerateByName("nope", 1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

// Property: for any generated random graph, CSR round-trips through
// Clone/Permute(identity) unchanged.
func TestCSRInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g := ErdosRenyi(30, 60, 7, seed)
		c := g.Clone()
		if c.NumArcs() != g.NumArcs() || c.NumVertices() != g.NumVertices() {
			return false
		}
		id := make([]int, g.NumVertices())
		for i := range id {
			id[i] = i
		}
		p, _ := g.Permute(id)
		for u := 0; u < g.NumVertices(); u++ {
			h1, w1 := g.Neighbors(u)
			h2, w2 := p.Neighbors(u)
			if len(h1) != len(h2) {
				return false
			}
			for i := range h1 {
				if h1[i] != h2[i] || w1[i] != w2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryBytesAndHistogram(t *testing.T) {
	g := Star(11, 1)
	if g.MemoryBytes() <= 0 {
		t.Fatal("non-positive memory estimate")
	}
	h := g.DegreeHistogram()
	if h[1] != 10 || h[10] != 1 {
		t.Fatalf("star histogram wrong: %v", h)
	}
	if g.TotalWeight() != 20 { // 10 edges × weight 1 × 2 arcs
		t.Fatalf("total weight %v", g.TotalWeight())
	}
}

package verify_test

// Negative tests: each first-principles check must actually catch the
// violation it is specified to catch. A verifier that accepts everything
// would silently validate broken algorithms.

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/pll"
	"repro/internal/verify"
)

func fixture(t *testing.T) (*graph.Graph, *label.Index) {
	t.Helper()
	g := graph.ErdosRenyi(40, 90, 6, 7)
	ix, _ := pll.Sequential(g, pll.Options{})
	if err := verify.IsCHL(g, ix); err != nil {
		t.Fatalf("fixture is not a CHL: %v", err)
	}
	return g, ix
}

func TestCoverDetectsMissingLabel(t *testing.T) {
	g, ix := fixture(t)
	bad := ix.Clone()
	// Remove a non-self label: some pair previously covered through it
	// must now answer a larger distance (or the canonical witness is gone
	// and RespectsR fails; cover fails whenever the removed label was the
	// unique witness for some pair — take the highest-ranked non-self
	// label of the lowest-ranked vertex, which covers (v, hub)).
	v := g.NumVertices() - 1
	s := bad.Labels(v).Clone()
	if len(s) < 2 {
		t.Skip("degenerate fixture")
	}
	removed := s[0]
	bad.SetLabels(v, s[1:])
	if err := verify.Cover(g, bad, 0); err == nil {
		// The pair (v, removed.Hub) may still be covered via another
		// common hub only if removed was redundant — impossible in a CHL.
		t.Fatalf("cover check missed the removal of label (hub %d) at vertex %d", removed.Hub, v)
	}
}

func TestCoverDetectsWrongDistance(t *testing.T) {
	g, ix := fixture(t)
	bad := ix.Clone()
	for v := 0; v < g.NumVertices(); v++ {
		s := bad.Labels(v).Clone()
		for i := range s {
			if int(s[i].Hub) != v {
				s[i].Dist += 0.5 // inflate one label
				bad.SetLabels(v, s)
				if err := verify.Cover(g, bad, 0); err == nil {
					t.Fatalf("cover check accepted an inflated distance at vertex %d hub %d", v, s[i].Hub)
				}
				return
			}
		}
	}
	t.Skip("no non-self label found")
}

func TestRespectsRDetectsMissingCanonicalHub(t *testing.T) {
	g, ix := fixture(t)
	bad := ix.Clone()
	// Drop the top-ranked hub from some vertex's labels: if that hub was
	// the max on any shortest path to the vertex, respects-R must fail.
	for v := g.NumVertices() - 1; v > 0; v-- {
		s := bad.Labels(v)
		if len(s) >= 2 && s[0].Hub != uint32(v) {
			bad.SetLabels(v, s[1:].Clone())
			if err := verify.RespectsR(g, bad, 0); err == nil {
				t.Fatalf("respects-R missed the dropped hub %d at vertex %d", s[0].Hub, v)
			}
			return
		}
	}
	t.Skip("no suitable label found")
}

func TestMinimalDetectsRedundantLabel(t *testing.T) {
	g, ix := fixture(t)
	bad := ix.Clone()
	// Add a redundant label with its true distance: any (v,h) pair not in
	// the CHL is by definition redundant.
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		for h := 0; h < n; h++ {
			if h == v {
				continue
			}
			if _, ok := bad.Labels(v).Find(uint32(h)); ok {
				continue
			}
			d := ix.Query(v, h)
			if d == label.Infinity {
				continue
			}
			bad.Append(v, label.L{Hub: uint32(h), Dist: d})
			if err := verify.Minimal(bad); err == nil {
				t.Fatalf("minimality check accepted redundant label (v=%d h=%d)", v, h)
			}
			return
		}
	}
	t.Skip("graph too small to inject redundancy")
}

func TestCanonicalDistancesDetectsCorruption(t *testing.T) {
	g, ix := fixture(t)
	bad := ix.Clone()
	s := bad.Labels(3).Clone()
	if len(s) == 0 {
		t.Skip("no labels")
	}
	s[len(s)-1].Dist += 1
	bad.SetLabels(3, s)
	if err := verify.CanonicalDistances(g, bad, 0); err == nil {
		t.Fatal("distance corruption not detected")
	}
}

func TestIsCHLAcceptsTheRealThing(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := graph.SmallWorld(30, 2, 0.3, seed)
		ix, _ := pll.Sequential(g, pll.Options{})
		if err := verify.IsCHL(g, ix); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCoverSampledMatchesCover(t *testing.T) {
	g, ix := fixture(t)
	if err := verify.CoverSampled(g, ix, 10, 3); err != nil {
		t.Fatal(err)
	}
	// And on an empty graph both are vacuous.
	empty := graph.Path(0, 1)
	eix := label.NewIndex(0)
	if err := verify.Cover(empty, eix, 0); err != nil {
		t.Fatal(err)
	}
	if err := verify.CoverSampled(empty, eix, 5, 1); err != nil {
		t.Fatal(err)
	}
}

// Package verify checks hub labelings against first principles. It is the
// test suite's ground truth: every algorithm in this repository is asserted
// to emit (a) a labeling satisfying the cover property — PPSD queries equal
// Dijkstra distances; (b) for the CHL algorithms, a labeling that respects
// the rank order R and is minimal (Definitions 1–3 of the paper), which
// together pin down the Canonical Hub Labeling uniquely.
//
// Everything operates in rank space (vertex 0 = highest rank).
package verify

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/sssp"
)

// Cover checks the cover property exhaustively for sources in [0,
// maxSources) (all sources if maxSources ≤ 0): for every vertex pair (s,v),
// the labeling's query must equal the true shortest-path distance
// (Infinity for disconnected pairs — hub labelings answer those correctly
// too, by finding no common hub... note a common hub cannot exist across
// components). Returns a descriptive error on the first mismatch.
func Cover(g *graph.Graph, ix *label.Index, maxSources int) error {
	n := g.NumVertices()
	if maxSources <= 0 || maxSources > n {
		maxSources = n
	}
	for s := 0; s < maxSources; s++ {
		dist := sssp.Dijkstra(g, s)
		for v := 0; v < n; v++ {
			got := ix.Query(s, v)
			if got != dist[v] {
				return fmt.Errorf("verify: query(%d,%d) = %v, want %v", s, v, got, dist[v])
			}
		}
	}
	return nil
}

// CoverSampled checks the cover property from `samples` random sources
// (each against all targets).
func CoverSampled(g *graph.Graph, ix *label.Index, samples int, seed int64) error {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < samples; i++ {
		s := rng.Intn(n)
		dist := sssp.Dijkstra(g, s)
		for v := 0; v < n; v++ {
			got := ix.Query(s, v)
			if got != dist[v] {
				return fmt.Errorf("verify: query(%d,%d) = %v, want %v", s, v, got, dist[v])
			}
		}
	}
	return nil
}

// RespectsR checks Definition 3 from `sources` roots (all if ≤ 0): for
// every vertex v connected to s, the highest-ranked vertex w on any
// shortest s–v path must be a hub of both s and v, at its true distances.
func RespectsR(g *graph.Graph, ix *label.Index, sources int) error {
	n := g.NumVertices()
	if sources <= 0 || sources > n {
		sources = n
	}
	for s := 0; s < sources; s++ {
		best, dist := sssp.MaxRankOnPath(g, s)
		ls := ix.Labels(s)
		for v := 0; v < n; v++ {
			if dist[v] == graph.Infinity {
				continue
			}
			w := uint32(best[v])
			dw, ok := ls.Find(w)
			if !ok || dw != dist[best[v]] {
				return fmt.Errorf("verify: pair (%d,%d): max-rank hub %d missing from L_%d (or wrong distance %v, want %v)",
					s, v, w, s, dw, dist[best[v]])
			}
			dv, ok := ix.Labels(v).Find(w)
			if !ok || dv != dist[v]-dist[best[v]] {
				return fmt.Errorf("verify: pair (%d,%d): max-rank hub %d missing from L_%d (or wrong distance %v, want %v)",
					s, v, w, v, dv, dist[v]-dist[best[v]])
			}
		}
	}
	return nil
}

// Minimal checks Definition 2 via Lemma 2: no label may have a witness —
// a common hub ranked strictly above it covering the pair at no greater
// distance. For a labeling that respects R this is exactly canonical
// minimality.
func Minimal(ix *label.Index) error {
	n := ix.NumVertices()
	for v := 0; v < n; v++ {
		for _, l := range ix.Labels(v) {
			if int(l.Hub) == v {
				continue
			}
			if hub, bad := witnessAbove(ix.Labels(v), ix.Labels(int(l.Hub)), l.Hub, l.Dist); bad {
				return fmt.Errorf("verify: redundant label (hub %d, d=%v) at vertex %d: witnessed by higher-ranked hub %d",
					l.Hub, l.Dist, v, hub)
			}
		}
	}
	return nil
}

// CanonicalDistances checks that every label stores the exact shortest-path
// distance to its hub (labelings respecting R must; redundant labels in
// paraPLL output may legitimately be inflated, so this is only asserted for
// CHL outputs). Cost: one Dijkstra per distinct hub in use.
func CanonicalDistances(g *graph.Graph, ix *label.Index, maxHubs int) error {
	n := g.NumVertices()
	if maxHubs <= 0 || maxHubs > n {
		maxHubs = n
	}
	for h := 0; h < maxHubs; h++ {
		dist := sssp.Dijkstra(g, h)
		for v := 0; v < n; v++ {
			if d, ok := ix.Labels(v).Find(uint32(h)); ok && d != dist[v] {
				return fmt.Errorf("verify: label (hub %d) at vertex %d stores %v, true distance %v", h, v, d, dist[v])
			}
		}
	}
	return nil
}

// IsCHL asserts the full Canonical Hub Labeling contract on small graphs:
// structural validity, exact cover, respects-R, minimality and exact label
// distances. The CHL for a given (G, R) is unique, so any two labelings
// passing IsCHL are identical — which the tests also assert directly via
// Index.Equal.
func IsCHL(g *graph.Graph, ix *label.Index) error {
	if err := ix.Validate(); err != nil {
		return err
	}
	if err := Cover(g, ix, 0); err != nil {
		return err
	}
	if err := RespectsR(g, ix, 0); err != nil {
		return err
	}
	if err := Minimal(ix); err != nil {
		return err
	}
	return CanonicalDistances(g, ix, 0)
}

// witnessAbove reports the first satisfying common hub if it is ranked
// strictly above h.
func witnessAbove(lv, lh label.Set, h uint32, delta float64) (uint32, bool) {
	i, j := 0, 0
	for i < len(lv) && j < len(lh) {
		a, b := lv[i], lh[j]
		switch {
		case a.Hub < b.Hub:
			i++
		case a.Hub > b.Hub:
			j++
		default:
			if a.Dist+b.Dist <= delta {
				return a.Hub, a.Hub < h
			}
			i++
			j++
		}
	}
	return 0, false
}

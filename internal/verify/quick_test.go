package verify_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gll"
	"repro/internal/graph"
	"repro/internal/lcc"
	"repro/internal/plant"
	"repro/internal/pll"
	"repro/internal/verify"
)

// TestQuickCHLContract is the property-based core invariant: for an
// arbitrary random graph under an arbitrary random hierarchy, sequential
// PLL emits a labeling satisfying the full CHL contract, and LCC / GLL /
// PLaNT emit the bit-identical labeling. testing/quick drives the seeds.
func TestQuickCHLContract(t *testing.T) {
	prop := func(gseed, oseed int64, dense bool) bool {
		n := 24 + int(uint64(gseed)%17)
		m := n * 2
		if dense {
			m = n * 5
		}
		g := graph.ErdosRenyi(n, m, 6, gseed)
		// Random hierarchy: permute the graph by it so rank = id.
		perm := rand.New(rand.NewSource(oseed)).Perm(n)
		rg, _ := g.Permute(perm)

		want, _ := pll.Sequential(rg, pll.Options{})
		if err := verify.IsCHL(rg, want); err != nil {
			t.Logf("seed (%d,%d): %v", gseed, oseed, err)
			return false
		}
		for name, run := range map[string]func() bool{
			"lcc": func() bool {
				ix, _ := lcc.Run(rg, lcc.Options{Workers: 3})
				return want.Equal(ix)
			},
			"gll": func() bool {
				ix, _ := gll.Run(rg, gll.Options{Workers: 3, Alpha: 1.5})
				return want.Equal(ix)
			},
			"plant": func() bool {
				ix, _ := plant.Run(rg, plant.Options{Workers: 3})
				return want.Equal(ix)
			},
		} {
			if !run() {
				t.Logf("seed (%d,%d): %s diverged from the CHL", gseed, oseed, name)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickQueryEqualsDijkstra: the cover property as a quick property —
// arbitrary graph, arbitrary pair, label query == Dijkstra.
func TestQuickQueryEqualsDijkstra(t *testing.T) {
	type fixture struct {
		g  *graph.Graph
		ix interface{ Query(u, v int) float64 }
	}
	cache := map[int64]fixture{}
	prop := func(seed int64, a, b uint8) bool {
		s := seed % 7
		fx, ok := cache[s]
		if !ok {
			g := graph.SmallWorld(40, 2, 0.25, s)
			ix, _ := pll.Sequential(g, pll.Options{})
			fx = fixture{g, ix}
			cache[s] = fx
		}
		u := int(a) % 40
		v := int(b) % 40
		want := dijkstraDist(fx.g, u, v)
		return fx.ix.Query(u, v) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func dijkstraDist(g *graph.Graph, u, v int) float64 {
	// Tiny local memo-free reference; graphs are 40 vertices.
	type qi struct {
		v int
		d float64
	}
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = graph.Infinity
	}
	dist[u] = 0
	queue := []qi{{u, 0}}
	for len(queue) > 0 {
		best := 0
		for i := range queue {
			if queue[i].d < queue[best].d {
				best = i
			}
		}
		cur := queue[best]
		queue = append(queue[:best], queue[best+1:]...)
		if cur.d > dist[cur.v] {
			continue
		}
		heads, wts := g.Neighbors(cur.v)
		for i, h := range heads {
			if nd := cur.d + wts[i]; nd < dist[h] {
				dist[h] = nd
				queue = append(queue, qi{int(h), nd})
			}
		}
	}
	return dist[v]
}

package verify_test

// The X1 experiment of DESIGN.md: seqPLL, LCC, GLL, shared-memory PLaNT and
// the distributed algorithms (DGLL, PLaNT, Hybrid at several cluster sizes)
// must all emit the *identical* Canonical Hub Labeling, which in turn must
// pass the first-principles CHL contract. This is the strongest single
// correctness statement in the paper ("the same CHL ... irrespective of q",
// §7.3) and the backbone of this test suite.

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/gll"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/lcc"
	"repro/internal/plant"
	"repro/internal/pll"
	"repro/internal/verify"
)

// testGraphs returns the topology zoo used across the agreement tests.
func testGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	return map[string]*graph.Graph{
		"figure1":    graph.Figure1(),
		"path":       graph.Path(17, 2),
		"cycle":      graph.Cycle(12, 3),
		"star":       graph.Star(9, 1),
		"complete":   graph.Complete(8, 5),
		"grid":       graph.RoadGrid(7, 9, 1),
		"ba":         graph.BarabasiAlbert(80, 3, 2),
		"er-sparse":  graph.ErdosRenyi(60, 90, 8, 3),
		"er-dense":   graph.ErdosRenyi(40, 300, 4, 4),
		"er-discon":  graph.ErdosRenyi(50, 30, 6, 5), // almost surely disconnected
		"smallworld": graph.SmallWorld(48, 2, 0.2, 6),
		"single":     graph.Path(1, 1),
		"two":        graph.Path(2, 7),
	}
}

func chlReference(tb testing.TB, g *graph.Graph) *label.Index {
	tb.Helper()
	ix, _ := pll.Sequential(g, pll.Options{})
	return ix
}

func TestSequentialPLLIsCHL(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			ix := chlReference(t, g)
			if err := verify.IsCHL(g, ix); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCanonicalAgreementSharedMemory(t *testing.T) {
	algos := map[string]func(*graph.Graph) *label.Index{
		"LCC": func(g *graph.Graph) *label.Index {
			ix, _ := lcc.Run(g, lcc.Options{Workers: 4})
			return ix
		},
		"GLL": func(g *graph.Graph) *label.Index {
			ix, _ := gll.Run(g, gll.Options{Workers: 4, Alpha: 2})
			return ix
		},
		"PLaNT": func(g *graph.Graph) *label.Index {
			ix, _ := plant.Run(g, plant.Options{Workers: 4})
			return ix
		},
		"PLaNT-common": func(g *graph.Graph) *label.Index {
			ix, _ := plant.Run(g, plant.Options{Workers: 4, CommonHubs: 8})
			return ix
		},
	}
	for gname, g := range testGraphs(t) {
		want := chlReference(t, g)
		for aname, run := range algos {
			t.Run(fmt.Sprintf("%s/%s", aname, gname), func(t *testing.T) {
				got := run(g)
				if diff := want.Diff(got); diff != "" {
					t.Fatalf("%s output differs from CHL: %s", aname, diff)
				}
			})
		}
	}
}

func TestCanonicalAgreementDistributed(t *testing.T) {
	type distAlgo func(*graph.Graph, dist.Options) (*dist.Result, error)
	algos := map[string]distAlgo{
		"DGLL":        dist.DGLL,
		"DGLL-common": func(g *graph.Graph, o dist.Options) (*dist.Result, error) { o.Eta = 8; return dist.DGLL(g, o) },
		"PLaNT":       dist.PLaNT,
		"PLaNT-noCommon": func(g *graph.Graph, o dist.Options) (*dist.Result, error) {
			o.Eta = -1
			return dist.PLaNT(g, o)
		},
		"Hybrid": dist.Hybrid,
		"Hybrid-psiSmall": func(g *graph.Graph, o dist.Options) (*dist.Result, error) {
			o.PsiThreshold = 1.01
			return dist.Hybrid(g, o)
		},
	}
	for gname, g := range testGraphs(t) {
		want := chlReference(t, g)
		for aname, run := range algos {
			for _, q := range []int{1, 2, 5} {
				t.Run(fmt.Sprintf("%s/%s/q=%d", aname, gname, q), func(t *testing.T) {
					res, err := run(g, dist.Options{Nodes: q, WorkersPerNode: 2})
					if err != nil {
						t.Fatal(err)
					}
					if diff := want.Diff(res.Index); diff != "" {
						t.Fatalf("%s (q=%d) differs from CHL: %s", aname, q, diff)
					}
				})
			}
		}
	}
}

// TestSparaPLLCoversButMayBeRedundant: the baseline must satisfy the cover
// property (exact distances) even though its labeling need not be minimal.
func TestSparaPLLCoversButMayBeRedundant(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			ix, _ := pll.SParaPLL(g, pll.Options{Workers: 4})
			if err := ix.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := verify.Cover(g, ix, 0); err != nil {
				t.Fatal(err)
			}
			want := chlReference(t, g)
			if ix.TotalLabels() < want.TotalLabels() {
				t.Fatalf("SparaPLL produced fewer labels (%d) than the CHL (%d) — impossible for a covering labeling that was not cleaned",
					ix.TotalLabels(), want.TotalLabels())
			}
		})
	}
}

// TestDParaPLLCovers: the distributed baseline keeps the cover property at
// any q, with label counts ≥ CHL.
func TestDParaPLLCovers(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, q := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/q=%d", name, q), func(t *testing.T) {
				res, err := dist.DParaPLL(g, dist.Options{Nodes: q, WorkersPerNode: 2})
				if err != nil {
					t.Fatal(err)
				}
				if err := verify.Cover(g, res.Index, 0); err != nil {
					t.Fatal(err)
				}
				want := chlReference(t, g)
				if res.Index.TotalLabels() < want.TotalLabels() {
					t.Fatalf("DparaPLL label count %d below CHL %d", res.Index.TotalLabels(), want.TotalLabels())
				}
			})
		}
	}
}

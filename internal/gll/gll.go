// Package gll implements the Global Local Labeling algorithm of §4.2 — the
// paper's fastest shared-memory CHL constructor.
//
// GLL runs LCC-style construction (rank + distance query pruned Dijkstras)
// but interleaves cleaning: whenever roughly α·n new labels have
// accumulated in a Local Label Table, the threads synchronize, clean *only
// the local labels* (everything in the Global Label Table was cleaned in an
// earlier superstep and, because roots are processed in rank order, can
// never become redundant later), and commit the survivors to the Global
// Table. Two benefits over LCC follow directly:
//
//   - cleaning work drops from O(n·w²·log²n) to O(n·α·w·logn) because each
//     cleaning query scans label sets of size O(α) instead of the full sets;
//   - the global table is immutable during construction, so the (majority
//     of) pruning queries that it answers need no locks; only the small
//     local table is locked.
//
// The package operates in rank space (vertex 0 = highest rank).
package gll

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/vheap"
)

// DefaultAlpha is the synchronization threshold the paper settles on after
// the Figure 5 sweep ("we set α = 4 for further experiments").
const DefaultAlpha = 4.0

// Options configures a GLL run.
type Options struct {
	// Workers is the number of goroutines. Zero means GOMAXPROCS.
	Workers int
	// Alpha is the synchronization threshold: a superstep's construction
	// phase ends once α·n labels sit in the local table. Zero means
	// DefaultAlpha.
	Alpha float64
	// Profile enables lock-acquisition counting on the local table (the
	// two-table ablation).
	Profile bool
}

func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Alpha <= 0 {
		o.Alpha = DefaultAlpha
	}
	return o
}

// Run executes GLL and returns the CHL for the identity rank order of g.
func Run(g *graph.Graph, opts Options) (*label.Index, *metrics.Build) {
	opts = opts.normalize()
	n := g.NumVertices()
	m := &metrics.Build{Algorithm: "GLL", Workers: opts.Workers}
	st := NewState(g, opts)
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	start := time.Now()
	for !st.Done() {
		st.Superstep(m)
	}
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.TotalTime = time.Since(start)
	m.Trees = int64(n)
	m.LockAcquisitions = st.LockCount()
	ix := st.Index()
	m.Labels = ix.TotalLabels()
	return ix, m
}

// State is the shared state of a GLL run, split out so that the distributed
// algorithms (DGLL) and the GPU-style extension of §5.4 can drive supersteps
// themselves, and so tests can observe intermediate tables.
type State struct {
	g      *graph.Graph
	opts   Options
	global []label.Set // Global Label Table: immutable during construction
	local  *label.ConcurrentStore
	next   int64 // next root (atomic)
	done   int64 // roots fully processed
	steps  int
}

// NewState prepares a GLL run over g.
func NewState(g *graph.Graph, opts Options) *State {
	opts = opts.normalize()
	st := &State{
		g:      g,
		opts:   opts,
		global: make([]label.Set, g.NumVertices()),
		local:  label.NewConcurrentStore(g.NumVertices()),
	}
	if opts.Profile {
		st.local.EnableProfiling()
	}
	return st
}

// Done reports whether every root's SPT has been constructed.
func (st *State) Done() bool { return atomic.LoadInt64(&st.next) >= int64(st.g.NumVertices()) }

// Steps returns the number of supersteps executed so far.
func (st *State) Steps() int { return st.steps }

// LockCount returns local-table lock acquisitions (Profile option).
func (st *State) LockCount() int64 { return st.local.LockCount() }

// GlobalLabels returns the current label set of v in the global table.
func (st *State) GlobalLabels(v int) label.Set { return st.global[v] }

// Index seals the run into a queryable index. Call only after Done.
func (st *State) Index() *label.Index {
	return label.FromSets(st.global)
}

// Superstep runs one Label Construction phase (until the local table holds
// ≥ α·n labels or roots are exhausted) followed by one Label Cleaning +
// commit phase.
func (st *State) Superstep(m *metrics.Build) {
	st.steps++
	budget := int64(st.opts.Alpha * float64(st.g.NumVertices()))
	if budget < 1 {
		budget = 1
	}
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	t0 := time.Now()
	st.construct(budget, m)
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.ConstructTime += time.Since(t0)

	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	t1 := time.Now()
	st.cleanAndCommit(m)
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.CleanTime += time.Since(t1)
	m.Synchronizations++
}

// construct pulls roots in rank order and builds pruned SPTs until the
// generated-label budget for this superstep is exhausted (threads finish the
// tree they are on, so every root below the high-water mark is complete at
// the barrier — the property the cleaning correctness argument needs).
func (st *State) construct(budget int64, m *metrics.Build) {
	n := st.g.NumVertices()
	var generated int64
	var explored, relaxed, dqs, dprunes, rprunes int64
	var wg sync.WaitGroup
	for t := 0; t < st.opts.Workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newWorker(n)
			var ex, rx, dq, dp, rp int64
			for atomic.LoadInt64(&generated) < budget {
				h := int(atomic.AddInt64(&st.next, 1)) - 1
				if h >= n {
					atomic.AddInt64(&st.next, -1) // keep next == n
					break
				}
				g := w.tree(st, h, &ex, &rx, &dq, &dp, &rp)
				atomic.AddInt64(&generated, g)
			}
			atomic.AddInt64(&explored, ex)
			atomic.AddInt64(&relaxed, rx)
			atomic.AddInt64(&dqs, dq)
			atomic.AddInt64(&dprunes, dp)
			atomic.AddInt64(&rprunes, rp)
		}()
	}
	wg.Wait()
	m.VerticesExplored += explored
	m.EdgesRelaxed += relaxed
	m.DistanceQueries += dqs
	m.DistPrunes += dprunes
	m.RankPrunes += rprunes
	m.LabelsGenerated += atomic.LoadInt64(&generated)
}

type worker struct {
	dist  []float64
	dirty []int32
	heap  *vheap.Heap
	hd    *label.HashDist
}

func newWorker(n int) *worker {
	w := &worker{
		dist: make([]float64, n),
		heap: vheap.New(n),
		hd:   label.NewHashDist(n),
	}
	for i := range w.dist {
		w.dist[i] = graph.Infinity
	}
	return w
}

func (w *worker) reset() {
	for _, v := range w.dirty {
		w.dist[v] = graph.Infinity
	}
	w.dirty = w.dirty[:0]
	w.heap.Clear()
}

// tree builds the pruned SPT rooted at h. Pruning distance queries consult
// the lock-free global table first and fall back to the locked local table
// (footnote 4: "the Label Construction step uses both global and local
// table to answer distance queries").
func (w *worker) tree(st *State, h int, explored, relaxed, dqs, dprunes, rprunes *int64) int64 {
	w.reset()
	w.hd.Reset()
	for _, l := range st.global[h] { // global table: immutable, no lock
		w.hd.Add(l.Hub, l.Dist)
	}
	for _, l := range st.local.CopyLabels(h) {
		w.hd.Add(l.Hub, l.Dist)
	}
	var generated int64
	w.dist[h] = 0
	w.dirty = append(w.dirty, int32(h))
	w.heap.Push(h, 0)
	for !w.heap.Empty() {
		v, dv := w.heap.Pop()
		*explored++
		if v < h { // rank query
			*rprunes++
			continue
		}
		if v != h { // distance query: global (lock-free) then local (locked)
			*dqs++
			if w.hd.QueryAgainst(st.global[v], dv) || st.local.QueryAgainst(w.hd, v, dv) {
				*dprunes++
				continue
			}
		}
		st.local.Append(v, label.L{Hub: uint32(h), Dist: dv})
		generated++
		heads, wts := st.g.Neighbors(v)
		for i, uu := range heads {
			u := int(uu)
			nd := dv + wts[i]
			*relaxed++
			if nd < w.dist[u] {
				if w.dist[u] == graph.Infinity {
					w.dirty = append(w.dirty, int32(uu))
				}
				w.dist[u] = nd
				w.heap.Push(u, nd)
			}
		}
	}
	return generated
}

// cleanAndCommit drains the local table, sorts it, marks redundant local
// labels with DQ_Clean, and merges the survivors into the global table.
//
// This is where GLL's cleaning advantage comes from (§4.2: "the label
// cleaning only needs to query for redundant labels on the local table").
// A witness pair ((w,v), (w,h)) proving a label redundant is emitted by a
// single tree, SPT_w, so both its labels land in the same superstep's
// table. If that superstep were an earlier one, both labels sat in the
// global tables when (h, δ) was generated — and the construction-time
// distance query, which sees the global tables in full, would have pruned
// the label. Hence every possible witness for a local label is itself
// local×local, the cleaning query joins only the two local sets, and a
// cleaning step performs O(n·α²) work (the paper's bound) no matter how
// large the committed global tables have grown — LCC, by contrast, rescans
// the full final sets for every label.
func (st *State) cleanAndCommit(m *metrics.Build) {
	n := st.g.NumVertices()
	locals := st.local.Drain()

	parallelFor(st.opts.Workers, n, func(v int) {
		locals[v].Sort()
	})

	var cleaned, queries, entries int64
	keep := make([]label.Set, n)
	parallelFor(st.opts.Workers, n, func(v int) {
		lv := locals[v]
		if len(lv) == 0 {
			return
		}
		var qs, es, cl int64
		out := lv[:0]
		for _, l := range lv {
			if int(l.Hub) != v {
				qs++
				h := int(l.Hub)
				redundant, e1 := firstWitness(locals[v], locals[h], l.Hub, l.Dist)
				es += e1
				if redundant {
					cl++
					continue
				}
			}
			out = append(out, l)
		}
		keep[v] = out
		atomic.AddInt64(&queries, qs)
		atomic.AddInt64(&entries, es)
		atomic.AddInt64(&cleaned, cl)
	})

	parallelFor(st.opts.Workers, n, func(v int) {
		if len(keep[v]) > 0 {
			st.global[v] = st.global[v].Merge(keep[v])
		}
	})
	m.CleanQueries += queries
	m.CleanEntries += entries
	m.LabelsCleaned += cleaned
}

// firstWitness merge-joins two sorted label sets looking for a common hub
// ranked strictly above bound (hub id < bound) whose distance sum is ≤
// delta — a redundancy witness. Only hubs outranking the label's own hub
// qualify, so the scan stops at the bound. Returns whether a witness was
// found and the number of entries touched.
func firstWitness(a, b label.Set, bound uint32, delta float64) (found bool, entries int64) {
	i, j := 0, 0
	for i < len(a) && j < len(b) && a[i].Hub < bound && b[j].Hub < bound {
		entries++
		switch {
		case a[i].Hub < b[j].Hub:
			i++
		case a[i].Hub > b[j].Hub:
			j++
		default:
			if a[i].Dist+b[j].Dist <= delta {
				return true, entries
			}
			i++
			j++
		}
	}
	return false, entries
}

// parallelFor runs fn(i) for i in [0,n) across the given workers using a
// shared atomic counter (the same dynamic scheduling as the label loops).
func parallelFor(workers, n int, fn func(int)) {
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

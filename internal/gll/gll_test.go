package gll

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/pll"
	"repro/internal/verify"
)

func TestRunProducesCHL(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.ErdosRenyi(55, 130, 6, seed)
		want, _ := pll.Sequential(g, pll.Options{})
		for _, workers := range []int{1, 2, 8} {
			for _, alpha := range []float64{0.5, 2, 4, 32} {
				ix, _ := Run(g, Options{Workers: workers, Alpha: alpha})
				if diff := want.Diff(ix); diff != "" {
					t.Fatalf("seed %d workers %d α=%v: %s", seed, workers, alpha, diff)
				}
			}
		}
	}
}

func TestSuperstepsScaleWithAlpha(t *testing.T) {
	g := graph.RoadGrid(10, 10, 1)
	m1 := &metrics.Build{}
	st1 := NewState(g, Options{Workers: 2, Alpha: 0.5})
	for !st1.Done() {
		st1.Superstep(m1)
	}
	m2 := &metrics.Build{}
	st2 := NewState(g, Options{Workers: 2, Alpha: 64})
	for !st2.Done() {
		st2.Superstep(m2)
	}
	if st1.Steps() <= st2.Steps() {
		t.Fatalf("α=0.5 took %d supersteps, α=64 took %d — smaller α must sync more",
			st1.Steps(), st2.Steps())
	}
	if m1.Synchronizations != int64(st1.Steps()) {
		t.Fatalf("synchronization counter %d != steps %d", m1.Synchronizations, st1.Steps())
	}
	// Both end at the same CHL.
	if diff := st1.Index().Diff(st2.Index()); diff != "" {
		t.Fatal(diff)
	}
}

func TestGlobalTableGrowsMonotonically(t *testing.T) {
	g := graph.BarabasiAlbert(120, 3, 3)
	st := NewState(g, Options{Workers: 2, Alpha: 1})
	m := &metrics.Build{}
	prev := int64(0)
	for !st.Done() {
		st.Superstep(m)
		var total int64
		for v := 0; v < g.NumVertices(); v++ {
			s := st.GlobalLabels(v)
			if !s.IsSorted() {
				t.Fatalf("global table of %d unsorted mid-run", v)
			}
			total += int64(len(s))
		}
		if total < prev {
			t.Fatalf("global table shrank: %d → %d", prev, total)
		}
		prev = total
	}
	if err := verify.IsCHL(g, st.Index()); err != nil {
		t.Fatal(err)
	}
}

func TestCleaningCheaperThanLCCWouldBe(t *testing.T) {
	// GLL's whole point (§4.2): cleaning queries only run against local
	// labels, so their count is bounded by labels *generated*, not by
	// (labels × supersteps).
	g := graph.BarabasiAlbert(150, 4, 5)
	_, m := Run(g, Options{Workers: 2, Alpha: 4})
	if m.CleanQueries > m.LabelsGenerated {
		t.Fatalf("clean queries %d exceed generated labels %d", m.CleanQueries, m.LabelsGenerated)
	}
	if m.CleanQueries == 0 {
		t.Fatal("no cleaning queries at all")
	}
}

func TestProfilingCountsLocks(t *testing.T) {
	g := graph.RoadGrid(6, 6, 1)
	st := NewState(g, Options{Workers: 2, Alpha: 4, Profile: true})
	m := &metrics.Build{}
	for !st.Done() {
		st.Superstep(m)
	}
	if st.LockCount() == 0 {
		t.Fatal("profiling recorded no local-table locks")
	}
}

func TestDegenerateBudget(t *testing.T) {
	// α so small the budget is < 1 label per superstep must still
	// terminate (budget clamps to 1).
	g := graph.Path(12, 1)
	ix, m := Run(g, Options{Workers: 1, Alpha: 1e-9})
	want, _ := pll.Sequential(g, pll.Options{})
	if diff := want.Diff(ix); diff != "" {
		t.Fatal(diff)
	}
	if m.Synchronizations < 2 {
		t.Fatalf("expected many supersteps, got %d", m.Synchronizations)
	}
}

package gll

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/plant"
)

// This file implements the §5.4 / §7.2 extension: "using PLaNT for the
// first superstep in shared-memory implementation as well". The first GLL
// superstep is pathological for cleaning — no labels exist yet, p trees run
// concurrently with no pruning information, and the local table collects
// far more than α·n labels, over 30% of CAL's GLL time per Figure 7. A
// PLaNTed first superstep emits only canonical labels (no distance queries,
// no cleaning needed at all) and commits them straight to the global table.

// RunPlantFirst executes GLL with a PLaNTed first superstep. Output is the
// identical CHL.
func RunPlantFirst(g *graph.Graph, opts Options) (*label.Index, *metrics.Build) {
	opts = opts.normalize()
	n := g.NumVertices()
	m := &metrics.Build{Algorithm: "GLL+PLaNT-first", Workers: opts.Workers}
	st := NewState(g, opts)
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	start := time.Now()
	st.plantFirstSuperstep(m)
	for !st.Done() {
		st.Superstep(m)
	}
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.TotalTime = time.Since(start)
	m.Trees = int64(n)
	m.LockAcquisitions = st.LockCount()
	ix := st.Index()
	m.Labels = ix.TotalLabels()
	return ix, m
}

// plantFirstSuperstep PLaNTs roots in rank order until the superstep's
// label budget is reached, then commits the (canonical, clean) labels
// directly to the global table.
func (st *State) plantFirstSuperstep(m *metrics.Build) {
	st.steps++
	n := st.g.NumVertices()
	budget := int64(st.opts.Alpha * float64(n))
	if budget < 1 {
		budget = 1
	}
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	t0 := time.Now()

	type treeOut struct {
		root   int
		labels []plantLabel
	}
	var mu sync.Mutex
	var outs []treeOut
	var generated, explored, relaxed int64
	var wg sync.WaitGroup
	for t := 0; t < st.opts.Workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := plant.NewScratch(n)
			for atomic.LoadInt64(&generated) < budget {
				h := int(atomic.AddInt64(&st.next, 1)) - 1
				if h >= n {
					atomic.AddInt64(&st.next, -1)
					break
				}
				var out []plantLabel
				ts := plant.Tree(st.g, h, s, nil, 0, func(v int, d float64) {
					out = append(out, plantLabel{v: uint32(v), dist: d})
				})
				atomic.AddInt64(&generated, ts.Labels)
				atomic.AddInt64(&explored, ts.Explored)
				atomic.AddInt64(&relaxed, ts.Relaxed)
				mu.Lock()
				outs = append(outs, treeOut{root: h, labels: out})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Commit: group by vertex, sort by hub, merge into the (empty or
	// small) global table. No cleaning: PLaNT output is canonical.
	perVertex := make([]label.Set, n)
	for _, o := range outs {
		for _, pl := range o.labels {
			perVertex[pl.v] = append(perVertex[pl.v], label.L{Hub: uint32(o.root), Dist: pl.dist})
		}
	}
	parallelFor(st.opts.Workers, n, func(v int) {
		if len(perVertex[v]) == 0 {
			return
		}
		perVertex[v].Sort()
		st.global[v] = st.global[v].Merge(perVertex[v])
	})

	m.VerticesExplored += explored
	m.EdgesRelaxed += relaxed
	m.LabelsGenerated += atomic.LoadInt64(&generated)
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.ConstructTime += time.Since(t0)
	m.Synchronizations++
}

type plantLabel struct {
	v    uint32
	dist float64
}

package gll

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/pll"
	"repro/internal/verify"
)

func TestRunPlantFirstProducesCHL(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.ErdosRenyi(60, 140, 6, seed)
		want, _ := pll.Sequential(g, pll.Options{})
		for _, workers := range []int{1, 4} {
			ix, m := RunPlantFirst(g, Options{Workers: workers, Alpha: 2})
			if diff := want.Diff(ix); diff != "" {
				t.Fatalf("seed %d workers %d: %s", seed, workers, diff)
			}
			if err := verify.IsCHL(g, ix); err != nil {
				t.Fatal(err)
			}
			if m.Synchronizations < 1 {
				t.Fatal("no supersteps recorded")
			}
		}
	}
}

func TestRunPlantFirstSkipsFirstCleaning(t *testing.T) {
	g := graph.RoadGrid(9, 9, 1)
	_, plain := Run(g, Options{Workers: 2, Alpha: 2})
	_, pf := RunPlantFirst(g, Options{Workers: 2, Alpha: 2})
	// The PLaNTed superstep contributes zero cleaning queries; the rest of
	// the run cleans as usual, so the total must drop.
	if pf.CleanQueries >= plain.CleanQueries {
		t.Fatalf("PLaNT-first clean queries %d not below plain GLL %d", pf.CleanQueries, plain.CleanQueries)
	}
	// And no labels are ever cleaned out of the first superstep's commit:
	// generated == final + cleaned must still hold.
	if pf.LabelsGenerated != pf.Labels+pf.LabelsCleaned {
		t.Fatalf("label accounting broken: %d != %d + %d", pf.LabelsGenerated, pf.Labels, pf.LabelsCleaned)
	}
}

func TestRunPlantFirstTinyGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(1, 1),
		graph.Path(2, 3),
		graph.Star(5, 1),
	} {
		want, _ := pll.Sequential(g, pll.Options{})
		ix, _ := RunPlantFirst(g, Options{Workers: 2})
		if diff := want.Diff(ix); diff != "" {
			t.Fatal(diff)
		}
	}
}

package lcc

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/pll"
	"repro/internal/verify"
)

func TestRunProducesCHL(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.ErdosRenyi(50, 120, 6, seed)
		for _, workers := range []int{1, 2, 8} {
			ix, m := Run(g, Options{Workers: workers})
			if err := verify.IsCHL(g, ix); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if m.LabelsGenerated < m.Labels {
				t.Fatalf("generated %d < final %d", m.LabelsGenerated, m.Labels)
			}
			if m.LabelsCleaned != m.LabelsGenerated-m.Labels {
				t.Fatalf("cleaned accounting off: %d != %d-%d", m.LabelsCleaned, m.LabelsGenerated, m.Labels)
			}
		}
	}
}

func TestCleanRemovesInjectedRedundancy(t *testing.T) {
	// Take the CHL and inject labels that a labeling respecting R could
	// legitimately contain (true distances, hub not the path max): Clean
	// must delete exactly those.
	g := graph.RoadGrid(6, 6, 3)
	chl, _ := pll.Sequential(g, pll.Options{})
	dirty := chl.Clone()
	injected := 0
	// For every vertex, add a label for a hub h reachable but ranked
	// below the path max: its true distance via Dijkstra-free trick —
	// query the CHL itself (exact by cover property).
	n := g.NumVertices()
	for v := 0; v < n; v += 3 {
		for h := 1; h < n; h += 7 {
			if h == v {
				continue
			}
			if _, ok := dirty.Labels(v).Find(uint32(h)); ok {
				continue
			}
			d := chl.Query(v, h)
			if d == label.Infinity {
				continue
			}
			dirty.Append(v, label.L{Hub: uint32(h), Dist: d})
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("test vacuous: nothing injected")
	}
	m := &metrics.Build{}
	deleted := Clean(dirty, 4, m)
	if deleted != int64(injected) {
		t.Fatalf("cleaned %d, injected %d", deleted, injected)
	}
	if diff := chl.Diff(dirty); diff != "" {
		t.Fatalf("cleaning did not restore the CHL: %s", diff)
	}
	if m.CleanQueries == 0 {
		t.Fatal("no cleaning queries recorded")
	}
}

func TestCleanKeepsCHLIntact(t *testing.T) {
	g := graph.BarabasiAlbert(80, 3, 2)
	chl, _ := pll.Sequential(g, pll.Options{})
	copyIx := chl.Clone()
	if deleted := Clean(copyIx, 4, nil); deleted != 0 {
		t.Fatalf("Clean deleted %d labels from a minimal labeling", deleted)
	}
	if diff := chl.Diff(copyIx); diff != "" {
		t.Fatal(diff)
	}
}

func TestConstructRespectsR(t *testing.T) {
	// Before cleaning, the labeling must already respect R (Claim 1) and
	// satisfy the cover property.
	g := graph.ErdosRenyi(45, 100, 5, 9)
	store := label.NewConcurrentStore(g.NumVertices())
	m := &metrics.Build{}
	Construct(g, store, 4, m)
	ix := store.Seal()
	if err := verify.Cover(g, ix, 0); err != nil {
		t.Fatal(err)
	}
	if err := verify.RespectsR(g, ix, 0); err != nil {
		t.Fatal(err)
	}
	if m.RankPrunes == 0 && m.DistPrunes == 0 {
		t.Fatal("no pruning recorded at all")
	}
}

func TestFigure7Breakdown(t *testing.T) {
	g := graph.RoadGrid(8, 8, 1)
	_, m := Run(g, Options{Workers: 2})
	if m.ConstructTime <= 0 || m.CleanTime <= 0 {
		t.Fatalf("phase timers empty: construct=%v clean=%v", m.ConstructTime, m.CleanTime)
	}
	if m.TotalTime < m.ConstructTime {
		t.Fatal("total < construct")
	}
}

// Package lcc implements the Label Construction and Cleaning algorithm of
// §4.1 — the paper's first shared-memory parallel algorithm whose final
// output is exactly the Canonical Hub Labeling.
//
// LCC treats concurrent SPT construction as an optimistic parallelization of
// sequential PLL: racy pruning may generate labels that are not in the CHL,
// but — thanks to Rank Queries — only mistakes that are *redundant* (Claim
// 1: the labeling after construction respects R), and Lemma 2 guarantees a
// cleaning pass of PPSD queries can find and delete all of them (Claim 2).
//
// The package operates in rank space (vertex 0 = highest rank).
package lcc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/vheap"
)

// Options configures an LCC run.
type Options struct {
	// Workers is the number of construction/cleaning goroutines.
	// Zero means GOMAXPROCS.
	Workers int
	// Profile enables lock-acquisition counting on the shared label store
	// (the two-table ablation of §4.2 compares this against GLL).
	Profile bool
}

func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Run executes LCC and returns the CHL for the identity rank order of g.
func Run(g *graph.Graph, opts Options) (*label.Index, *metrics.Build) {
	opts = opts.normalize()
	n := g.NumVertices()
	m := &metrics.Build{Algorithm: "LCC", Workers: opts.Workers}

	// ---- LCC-I: parallel label construction (Algorithm 2 lines 2–5).
	store := label.NewConcurrentStore(n)
	if opts.Profile {
		store.EnableProfiling()
	}
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	start := time.Now()
	Construct(g, store, opts.Workers, m)
	m.LockAcquisitions = store.LockCount()
	ix := store.Seal() // sort labels by hub rank (Algorithm 2 lines 6–7)
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.ConstructTime = time.Since(start)
	m.LabelsGenerated = ix.TotalLabels()

	// ---- LCC-II: parallel label cleaning (Algorithm 2 lines 8–11).
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	cleanStart := time.Now()
	deleted := Clean(ix, opts.Workers, m)
	//chlvet:allow clockcheck -- construction/experiment wall time is the reported measurement itself, not control flow; a fake clock would report fake results
	m.CleanTime = time.Since(cleanStart)
	m.LabelsCleaned = deleted
	m.Labels = ix.TotalLabels()
	m.TotalTime = m.ConstructTime + m.CleanTime
	m.Trees = int64(n)
	return ix, m
}

// Construct runs the parallel rank-and-distance-query pruned Dijkstras of
// LCC-I into store. It is exported because DGLL reuses it per superstep.
func Construct(g *graph.Graph, store *label.ConcurrentStore, workers int, m *metrics.Build) {
	n := g.NumVertices()
	var next int64 = -1
	var explored, relaxed, dqs, dprunes, rprunes int64
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newWorker(n)
			var ex, rx, dq, dp, rp int64
			for {
				h := int(atomic.AddInt64(&next, 1))
				if h >= n {
					break
				}
				w.pruneDijRQ(g, store, h, &ex, &rx, &dq, &dp, &rp)
			}
			atomic.AddInt64(&explored, ex)
			atomic.AddInt64(&relaxed, rx)
			atomic.AddInt64(&dqs, dq)
			atomic.AddInt64(&dprunes, dp)
			atomic.AddInt64(&rprunes, rp)
		}()
	}
	wg.Wait()
	atomic.AddInt64(&m.VerticesExplored, explored)
	atomic.AddInt64(&m.EdgesRelaxed, relaxed)
	atomic.AddInt64(&m.DistanceQueries, dqs)
	atomic.AddInt64(&m.DistPrunes, dprunes)
	atomic.AddInt64(&m.RankPrunes, rprunes)
}

type worker struct {
	dist  []float64
	dirty []int32
	heap  *vheap.Heap
	hd    *label.HashDist
}

func newWorker(n int) *worker {
	w := &worker{
		dist: make([]float64, n),
		heap: vheap.New(n),
		hd:   label.NewHashDist(n),
	}
	for i := range w.dist {
		w.dist[i] = graph.Infinity
	}
	return w
}

func (w *worker) reset() {
	for _, v := range w.dirty {
		w.dist[v] = graph.Infinity
	}
	w.dirty = w.dirty[:0]
	w.heap.Clear()
}

// pruneDijRQ is Algorithm 1: pruned Dijkstra with Rank Queries. Crucially,
// when a vertex ranked above the root is popped it is pruned AND no label is
// inserted, even though the distance query might have returned false — this
// is what makes the constructed labeling respect R (Claim 1) and therefore
// cleanable.
func (w *worker) pruneDijRQ(g *graph.Graph, store *label.ConcurrentStore, h int, explored, relaxed, dqs, dprunes, rprunes *int64) {
	w.reset()
	// LR = hash(L_h): snapshot of the root's current labels (Alg. 1 line 1).
	w.hd.Reset()
	for _, l := range store.CopyLabels(h) {
		w.hd.Add(l.Hub, l.Dist)
	}
	w.dist[h] = 0
	w.dirty = append(w.dirty, int32(h))
	w.heap.Push(h, 0)
	for !w.heap.Empty() {
		v, dv := w.heap.Pop()
		*explored++
		if v < h { // Rank Query (Alg. 1 line 5)
			*rprunes++
			continue
		}
		if v != h { // Distance Query (Alg. 1 line 6)
			*dqs++
			if store.QueryAgainst(w.hd, v, dv) {
				*dprunes++
				continue
			}
		}
		store.Append(v, label.L{Hub: uint32(h), Dist: dv})
		heads, wts := g.Neighbors(v)
		for i, uu := range heads {
			u := int(uu)
			nd := dv + wts[i]
			*relaxed++
			if nd < w.dist[u] {
				if w.dist[u] == graph.Infinity {
					w.dirty = append(w.dirty, int32(uu))
				}
				w.dist[u] = nd
				w.heap.Push(u, nd)
			}
		}
	}
}

// Clean is LCC-II: it marks every redundant label with parallel DQ_Clean
// queries (read-only, so no locking is needed on the sorted sets) and then
// deletes them. It returns the number of labels removed. Exported because
// tests use it to clean externally constructed labelings (e.g. the output of
// Dong et al.'s inter-tree algorithm, which the paper notes is cleanable).
func Clean(ix *label.Index, workers int, m *metrics.Build) int64 {
	n := ix.NumVertices()
	redundant := make([][]bool, n)
	var next int64 = -1
	var deleted, queries, entries int64
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var del, qs, es int64
			for {
				v := int(atomic.AddInt64(&next, 1))
				if v >= n {
					break
				}
				lv := ix.Labels(v)
				var marks []bool
				for i, l := range lv {
					if int(l.Hub) == v {
						continue // self label is never redundant
					}
					qs++
					red, touched := dqClean(lv, ix.Labels(int(l.Hub)), l.Hub, l.Dist)
					es += touched
					if red {
						if marks == nil {
							marks = make([]bool, len(lv))
						}
						marks[i] = true
						del++
					}
				}
				redundant[v] = marks
			}
			atomic.AddInt64(&deleted, del)
			atomic.AddInt64(&queries, qs)
			atomic.AddInt64(&entries, es)
		}()
	}
	wg.Wait()
	if m != nil {
		atomic.AddInt64(&m.CleanQueries, queries)
		atomic.AddInt64(&m.CleanEntries, entries)
	}

	// Deletion pass: compact each vertex's set in place.
	next = -1
	var wg2 sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for {
				v := int(atomic.AddInt64(&next, 1))
				if v >= n {
					break
				}
				marks := redundant[v]
				if marks == nil {
					continue
				}
				lv := ix.Labels(v)
				out := lv[:0]
				for i, l := range lv {
					if !marks[i] {
						out = append(out, l)
					}
				}
				ix.SetLabels(v, out)
			}
		}()
	}
	wg2.Wait()
	return deleted
}

// dqClean is the Cleaning Query of Algorithm 2 (lines 12–16): label (h, δ)
// of v is redundant iff the highest-ranked common hub u of L_v and L_h with
// d(u,v)+d(u,h) ≤ δ is ranked strictly above h. Per footnote 3, the
// merge-join stops at the first satisfying common hub, which — the sets
// being sorted by rank — is also the highest ranked.
func dqClean(lv, lh label.Set, h uint32, delta float64) (redundant bool, entries int64) {
	i, j := 0, 0
	for i < len(lv) && j < len(lh) {
		entries++
		a, b := lv[i], lh[j]
		switch {
		case a.Hub < b.Hub:
			i++
		case a.Hub > b.Hub:
			j++
		default:
			if a.Dist+b.Dist <= delta {
				return a.Hub < h, entries // first satisfying witness; redundant iff ranked above h
			}
			i++
			j++
		}
	}
	return false, entries
}

package chl

import (
	"errors"

	"repro/internal/label"
	"repro/internal/order"
	"repro/internal/pll"
)

// PathIndex is an Index that additionally stores, for every label, the
// labeled vertex's parent in the hub's shortest path tree — enabling full
// shortest-path retrieval in time linear to the path length (the §5.4
// extension of the paper).
type PathIndex struct {
	px   *label.PathIndex
	perm []int
	rank []int
}

// BuildWithPaths constructs a path-retrieving CHL index. Only sequential
// PLL records parents (the distance-only algorithms are lighter; build with
// them when paths are not needed). Undirected graphs only.
func BuildWithPaths(g *Graph, opt Options) (*PathIndex, error) {
	if g == nil {
		return nil, errors.New("chl: nil graph")
	}
	if g.Directed() {
		return nil, errors.New("chl: BuildWithPaths supports undirected graphs only")
	}
	ord := opt.Order
	if ord == nil {
		ord = order.ForGraph(g, opt.Seed)
	}
	rg, newID := g.Permute(ord.Perm)
	px, _ := pll.SequentialWithPaths(rg, pll.Options{})
	return &PathIndex{px: px, perm: append([]int(nil), ord.Perm...), rank: newID}, nil
}

// Query returns the exact shortest-path distance between original ids.
func (p *PathIndex) Query(u, v int) float64 {
	return p.px.Index().Query(p.rank[u], p.rank[v])
}

// Path returns the vertices of a shortest u–v path (inclusive, original
// ids) and its length; ok is false when v is unreachable from u.
func (p *PathIndex) Path(u, v int) (path []int, dist float64, ok bool) {
	rp, d, ok := p.px.Path(p.rank[u], p.rank[v])
	if !ok {
		return nil, d, false
	}
	out := make([]int, len(rp))
	for i, x := range rp {
		out[i] = p.perm[x]
	}
	return out, d, true
}

// Stats reports the underlying label statistics.
func (p *PathIndex) Stats() Stats {
	st := p.px.Index().Stats()
	return Stats{Vertices: st.Vertices, TotalLabels: st.TotalLabels, ALS: st.ALS, MaxLabels: st.MaxLabels, Bytes: st.Bytes}
}

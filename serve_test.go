package chl_test

// Tests for the production serving tier: the mmap-backed loader's parity
// with the heap loader, the snapshot hot swap under concurrent load, the
// per-snapshot cache (no stale answers across a swap), and the HTTP
// API's status codes and JSON error bodies.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	chl "repro"
)

// saveFlat builds an index over g and writes its flat form to a temp
// file, returning the path and the in-memory original for parity checks.
func saveFlat(t *testing.T, g *chl.Graph, name string) (string, *chl.Index) {
	t.Helper()
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fx, err := ix.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := fx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path, ix
}

// The mmap loader must agree byte-for-byte with the heap loader and the
// original build on the same agreement fixtures the flat store is tested
// on.
func TestMappedLoaderParityWithHeapLoader(t *testing.T) {
	for name, g := range map[string]*chl.Graph{
		"scalefree": chl.GenerateScaleFree(600, 3, 1),
		"road":      chl.GenerateRoadGrid(24, 24, 2),
		"sparse":    chl.GenerateRandom(300, 200, 9, 3), // disconnected pairs exercise Infinity
	} {
		t.Run(name, func(t *testing.T) {
			path, ix := saveFlat(t, g, "parity.flat")
			heap, err := chl.LoadFlatFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mapped, err := chl.OpenFlat(path)
			if err != nil {
				t.Fatal(err)
			}
			defer mapped.Close()
			if mapped.NumVertices() != heap.NumVertices() || mapped.TotalLabels() != heap.TotalLabels() {
				t.Fatalf("shape: mapped %d/%d, heap %d/%d",
					mapped.NumVertices(), mapped.TotalLabels(), heap.NumVertices(), heap.TotalLabels())
			}
			n := g.NumVertices()
			rng := rand.New(rand.NewSource(17))
			for i := 0; i < 2000; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				hm, hh, hw := mapped.Query(u, v), heap.Query(u, v), ix.Query(u, v)
				if hm != hh || hm != hw {
					t.Fatalf("query(%d,%d): mapped %v, heap %v, build %v", u, v, hm, hh, hw)
				}
				md, mh, mok := mapped.QueryHub(u, v)
				hd, hhub, hok := heap.QueryHub(u, v)
				if md != hd || mok != hok || (mok && mh != hhub) {
					t.Fatalf("QueryHub(%d,%d): mapped (%v,%d,%v), heap (%v,%d,%v)", u, v, md, mh, mok, hd, hhub, hok)
				}
			}
		})
	}
}

// On unix hosts OpenFlat must actually take the zero-copy path for a
// version-2 file; everywhere it must load version-1 (unpadded legacy)
// files through the heap fallback.
func TestOpenFlatVersions(t *testing.T) {
	g := chl.GenerateScaleFree(200, 3, 5)
	path, ix := saveFlat(t, g, "v2.flat")

	v2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v2[4] != 2 {
		t.Fatalf("Save wrote version %d, want 2", v2[4])
	}
	fx, err := chl.OpenFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fx.Close()
	if !fx.Mapped() {
		t.Log("OpenFlat fell back to the heap loader on this platform")
	}

	// A version-1 file is the same bytes without the pad framing.
	pad := int(v2[5])
	v1 := append([]byte("CHFX\x01"), v2[6+pad:]...)
	v1Path := filepath.Join(t.TempDir(), "v1.flat")
	if err := os.WriteFile(v1Path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	legacy, err := chl.OpenFlat(v1Path)
	if err != nil {
		t.Fatalf("OpenFlat on a version-1 file: %v", err)
	}
	defer legacy.Close()
	if legacy.Mapped() {
		t.Fatal("version-1 file claims to be mapped; its arrays are unpadded")
	}
	for i := 0; i < 500; i++ {
		u, v := (i*7)%200, (i*13)%200
		if legacy.Query(u, v) != ix.Query(u, v) || fx.Query(u, v) != ix.Query(u, v) {
			t.Fatalf("version disagreement at (%d,%d)", u, v)
		}
	}
}

func TestServerQueryAndCache(t *testing.T) {
	g := chl.GenerateScaleFree(300, 3, 2)
	path, ix := saveFlat(t, g, "srv.flat")
	s, err := chl.NewServer(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 100; i++ {
		u, v := (i*3)%300, (i*11)%300
		if got, want := s.Query(u, v), ix.Query(u, v); got != want {
			t.Fatalf("server query(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
	// Re-ask the same pairs: all hits now.
	before := s.Stats().Cache.Hits
	for i := 0; i < 100; i++ {
		u, v := (i*3)%300, (i*11)%300
		s.Query(u, v)
	}
	st := s.Stats()
	if st.Cache.Hits < before+100 {
		t.Fatalf("expected 100 more cache hits, got %d -> %d", before, st.Cache.Hits)
	}
	if st.Generation != 1 || st.Queries < 200 {
		t.Fatalf("stats: %+v", st)
	}
}

// The heart of the tentpole: queries racing reloads across two different
// index files, with -race watching. No query may error, block, or see a
// mixture of the two generations' state, and each answer must be correct
// for one of the two indexes.
func TestServerReloadUnderLoad(t *testing.T) {
	gA := chl.GenerateScaleFree(250, 3, 1)
	gB := chl.GenerateRoadGrid(20, 20, 2) // different size: 400 vertices
	pathA, ixA := saveFlat(t, gA, "a.flat")
	pathB, ixB := saveFlat(t, gB, "b.flat")

	s, err := chl.NewServer(pathA, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const nA = 250 // query only ids valid in both graphs
	var stop atomic.Bool
	var wrong atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			pairs := make([]chl.QueryPair, 32)
			for !stop.Load() {
				u, v := rng.Intn(nA), rng.Intn(nA)
				d := s.Query(u, v)
				if d != ixA.Query(u, v) && d != ixB.Query(u, v) {
					wrong.Add(1)
				}
				for i := range pairs {
					pairs[i] = chl.QueryPair{U: rng.Intn(nA), V: rng.Intn(nA)}
				}
				for i, bd := range s.Batch(pairs) {
					p := pairs[i]
					if bd != ixA.Query(p.U, p.V) && bd != ixB.Query(p.U, p.V) {
						wrong.Add(1)
					}
				}
			}
		}(w)
	}
	for i := 0; i < 30; i++ {
		path := pathA
		if i%2 == 0 {
			path = pathB
		}
		if _, err := s.Reload(path); err != nil {
			t.Errorf("reload %d: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if n := wrong.Load(); n > 0 {
		t.Fatalf("%d answers matched neither generation", n)
	}
	if st := s.Stats(); st.Reloads != 30 || st.Generation != 31 {
		t.Fatalf("after 30 reloads: %+v", st)
	}
	// A failed reload must leave the current snapshot serving.
	if _, err := s.Reload(filepath.Join(t.TempDir(), "missing.flat")); err == nil {
		t.Fatal("reload of a missing file succeeded")
	}
	if d := s.Query(0, 1); d != ixA.Query(0, 1) && d != ixB.Query(0, 1) {
		t.Fatal("server broken after failed reload")
	}
}

// The cache is born and dies with its snapshot: after a swap to an index
// with different distances, no stale answer may survive.
func TestCacheNoStaleAnswersAfterSwap(t *testing.T) {
	// Same vertex count, different edge weights ⇒ different distances.
	pathA, ixA := saveFlat(t, chl.GenerateRoadGrid(12, 12, 3), "wa.flat")
	pathB, ixB := saveFlat(t, chl.GenerateRoadGrid(12, 12, 8), "wb.flat")

	s, err := chl.NewServer(pathA, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	diff := 0
	for u := 0; u < 144; u++ {
		for v := u + 1; v < 144; v += 7 {
			if got, want := s.Query(u, v), ixA.Query(u, v); got != want {
				t.Fatalf("gen 1 query(%d,%d) = %v, want %v", u, v, got, want)
			}
			if ixA.Query(u, v) != ixB.Query(u, v) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("fixtures answer identically; the staleness check would be vacuous")
	}
	if _, err := s.Reload(pathB); err != nil {
		t.Fatal(err)
	}
	if hits := s.Stats().Cache.Hits; hits != 0 {
		t.Fatalf("fresh snapshot's cache reports %d hits", hits)
	}
	for u := 0; u < 144; u++ {
		for v := u + 1; v < 144; v += 7 {
			if got, want := s.Query(u, v), ixB.Query(u, v); got != want {
				t.Fatalf("stale answer after swap: query(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

// The cached batch path computes misses with the hash-join kernel
// (QueryHubWith); its distances and witness-hub tie-breaks must match
// the merge-join and the original build exactly.
func TestCachedBatchHubParity(t *testing.T) {
	g := chl.GenerateScaleFree(400, 3, 6)
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chl.NewBatchEngine(ix)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetCache(chl.NewCache(1 << 16))
	rng := rand.New(rand.NewSource(23))
	pairs := make([]chl.QueryPair, 3000)
	for i := range pairs {
		pairs[i] = chl.QueryPair{U: rng.Intn(400), V: rng.Intn(400)}
	}
	dists := eng.Batch(pairs)
	for i, p := range pairs {
		if want := ix.Query(p.U, p.V); dists[i] != want {
			t.Fatalf("cached batch (%d,%d) = %v, want %v", p.U, p.V, dists[i], want)
		}
		// Every pair is now a cache hit whose entry the hash-join wrote.
		d, h, ok := eng.QueryHub(p.U, p.V)
		wd, wh, wok := ix.QueryHub(p.U, p.V)
		if d != wd || ok != wok || (ok && h != wh) {
			t.Fatalf("cached QueryHub(%d,%d) = (%v,%d,%v), want (%v,%d,%v)", p.U, p.V, d, h, ok, wd, wh, wok)
		}
	}
	if st := eng.Cache().Stats(); st.Hits < int64(len(pairs)) {
		t.Fatalf("expected ≥%d hits on the re-query pass, got %d", len(pairs), st.Hits)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	g := chl.GenerateScaleFree(200, 3, 4)
	path, ix := saveFlat(t, g, "http.flat")
	s, err := chl.NewServer(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(t *testing.T, url string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return decodeJSON(t, resp)
	}
	post := func(t *testing.T, url, body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+url, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return decodeJSON(t, resp)
	}

	t.Run("dist ok", func(t *testing.T) {
		code, m := get(t, "/dist?u=3&v=77")
		if code != http.StatusOK {
			t.Fatalf("status %d: %v", code, m)
		}
		if m["reachable"] == true && m["dist"].(float64) != ix.Query(3, 77) {
			t.Fatalf("dist %v, want %v", m["dist"], ix.Query(3, 77))
		}
	})
	t.Run("dist errors", func(t *testing.T) {
		for _, url := range []string{"/dist", "/dist?u=a&v=2", "/dist?u=1", "/dist?u=-1&v=2", "/dist?u=1&v=200"} {
			code, m := get(t, url)
			if code != http.StatusBadRequest {
				t.Errorf("%s: status %d, want 400", url, code)
			}
			if m["error"] == nil {
				t.Errorf("%s: no JSON error body: %v", url, m)
			}
		}
	})
	t.Run("batch ok", func(t *testing.T) {
		code, m := post(t, "/batch", "[[3,77],[0,1]]")
		if code != http.StatusOK {
			t.Fatalf("status %d: %v", code, m)
		}
		dists := m["dists"].([]any)
		if len(dists) != 2 || dists[0].(float64) != ix.Query(3, 77) {
			t.Fatalf("dists %v", dists)
		}
	})
	t.Run("batch malformed", func(t *testing.T) {
		for body, want := range map[string]int{
			`{"not":"pairs"}`: http.StatusBadRequest,
			`[[1,2,3]]`:       http.StatusBadRequest, // wrong arity
			`[[1`:             http.StatusBadRequest,
			`[[5,1000]]`:      http.StatusBadRequest, // out of range
			`[[-3,5]]`:        http.StatusBadRequest,
		} {
			code, m := post(t, "/batch", body)
			if code != want {
				t.Errorf("%q: status %d, want %d (%v)", body, code, want, m)
			}
			if m["error"] == nil {
				t.Errorf("%q: no JSON error body", body)
			}
		}
	})
	t.Run("method checks", func(t *testing.T) {
		if code, m := get(t, "/batch"); code != http.StatusMethodNotAllowed || m["error"] == nil {
			t.Errorf("GET /batch: %d %v", code, m)
		}
		if code, m := get(t, "/reload"); code != http.StatusMethodNotAllowed || m["error"] == nil {
			t.Errorf("GET /reload: %d %v", code, m)
		}
		if code, _ := post(t, "/stats", ""); code != http.StatusMethodNotAllowed {
			t.Errorf("POST /stats: %d", code)
		}
	})
	t.Run("stats", func(t *testing.T) {
		code, m := get(t, "/stats")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if m["vertices"].(float64) != 200 || m["generation"].(float64) != 1 {
			t.Fatalf("stats %v", m)
		}
		cache, ok := m["cache"].(map[string]any)
		if !ok {
			t.Fatalf("no cache block in %v", m)
		}
		for _, k := range []string{"hits", "misses", "capacity", "entries"} {
			if _, ok := cache[k]; !ok {
				t.Errorf("cache stats missing %q: %v", k, cache)
			}
		}
	})
	t.Run("reload", func(t *testing.T) {
		path2, _ := saveFlat(t, chl.GenerateScaleFree(150, 3, 9), "http2.flat")
		code, m := post(t, "/reload?path="+path2, "")
		if code != http.StatusOK || m["generation"].(float64) != 2 {
			t.Fatalf("reload: %d %v", code, m)
		}
		if code, m := get(t, "/stats"); code != http.StatusOK || m["vertices"].(float64) != 150 {
			t.Fatalf("stats after reload: %d %v", code, m)
		}
		// Bad reloads are 400 with a JSON error and keep serving.
		if code, m := post(t, "/reload?path=/nonexistent.flat", ""); code != http.StatusBadRequest || m["error"] == nil {
			t.Fatalf("bad reload: %d %v", code, m)
		}
		// A malformed body must not silently reload the current file.
		gen := s.Stats().Generation
		if code, m := post(t, "/reload", "path=whoops.flat"); code != http.StatusBadRequest || m["error"] == nil {
			t.Fatalf("malformed reload body: %d %v", code, m)
		}
		if got := s.Stats().Generation; got != gen {
			t.Fatalf("malformed reload body still swapped: generation %d -> %d", gen, got)
		}
		if code, _ := get(t, "/dist?u=0&v=5"); code != http.StatusOK {
			t.Fatalf("server down after failed reload: %d", code)
		}
	})
	t.Run("healthz", func(t *testing.T) {
		code, m := get(t, "/healthz")
		if code != http.StatusOK || m["ok"] != true {
			t.Fatalf("healthz: %d %v", code, m)
		}
	})
	t.Run("unreachable is -1 in batch", func(t *testing.T) {
		// A disconnected fixture: the sparse random graph has isolated
		// pairs; find one via the index.
		gs := chl.GenerateRandom(100, 40, 9, 3)
		ps, ixs := saveFlat(t, gs, "sparse.flat")
		var u, v int
		found := false
	scan:
		for u = 0; u < 100; u++ {
			for v = u + 1; v < 100; v++ {
				if ixs.Query(u, v) == chl.Infinity {
					found = true
					break scan
				}
			}
		}
		if !found {
			t.Skip("fixture fully connected")
		}
		if _, err := s.Reload(ps); err != nil {
			t.Fatal(err)
		}
		code, m := post(t, "/batch", fmt.Sprintf("[[%d,%d]]", u, v))
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if d := m["dists"].([]any)[0].(float64); d != -1 {
			t.Fatalf("unreachable pair encoded as %v, want -1", d)
		}
	})
}

func decodeJSON(t *testing.T, resp *http.Response) (int, map[string]any) {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q, want application/json", ct)
	}
	var buf bytes.Buffer
	m := map[string]any{}
	if err := json.NewDecoder(io.TeeReader(resp.Body, &buf)).Decode(&m); err != nil {
		t.Fatalf("non-JSON body %q: %v", buf.String(), err)
	}
	return resp.StatusCode, m
}

// BenchmarkServerCachedQuery measures the repeated-pair serving path: a
// working set small enough to live in the cache, answered without
// touching the label arrays.
func BenchmarkServerCachedQuery(b *testing.B) {
	s := benchServer(b, 1<<16)
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(i%64, (i*7)%512)
	}
}

// BenchmarkServerUncachedQuery is the same traffic with the cache off:
// every query runs a join over the (mmap-backed) label arrays.
func BenchmarkServerUncachedQuery(b *testing.B) {
	s := benchServer(b, 0)
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(i%64, (i*7)%512)
	}
}

// BenchmarkMappedColdLoad measures the open-validate-first-query cost of
// the mmap path — the "cold start" a reload pays.
func BenchmarkMappedColdLoad(b *testing.B) {
	path := benchFlatFile(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fx, err := chl.OpenFlat(path)
		if err != nil {
			b.Fatal(err)
		}
		fx.Query(i%512, (i*13)%512)
		fx.Close()
	}
}

var (
	benchFlatOnce sync.Once
	benchFlatPath string
)

func benchFlatFile(b *testing.B) string {
	b.Helper()
	benchFlatOnce.Do(func() {
		g := chl.GenerateScaleFree(512, 4, 1)
		ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		fx, err := ix.Freeze()
		if err != nil {
			b.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "chlbench")
		if err != nil {
			b.Fatal(err)
		}
		benchFlatPath = filepath.Join(dir, "bench.flat")
		if err := fx.SaveFile(benchFlatPath); err != nil {
			b.Fatal(err)
		}
	})
	return benchFlatPath
}

func benchServer(b *testing.B, cacheCap int) *chl.Server {
	b.Helper()
	s, err := chl.NewServer(benchFlatFile(b), cacheCap)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

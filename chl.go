package chl

import (
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/gll"
	"repro/internal/label"
	"repro/internal/lcc"
	"repro/internal/metrics"
	"repro/internal/order"
	"repro/internal/plant"
	"repro/internal/pll"
)

// Algorithm selects a label-construction algorithm.
type Algorithm string

// The construction algorithms (see the package documentation).
const (
	AlgoSeqPLL   Algorithm = "seqpll"
	AlgoSParaPLL Algorithm = "sparapll"
	AlgoLCC      Algorithm = "lcc"
	AlgoGLL      Algorithm = "gll"
	AlgoPLaNT    Algorithm = "plant"
	AlgoDParaPLL Algorithm = "dparapll"
	AlgoDGLL     Algorithm = "dgll"
	AlgoDPLaNT   Algorithm = "dplant"
	AlgoHybrid   Algorithm = "hybrid"
)

// Algorithms lists every supported algorithm name.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgoSeqPLL, AlgoSParaPLL, AlgoLCC, AlgoGLL, AlgoPLaNT,
		AlgoDParaPLL, AlgoDGLL, AlgoDPLaNT, AlgoHybrid,
	}
}

// Canonical reports whether the algorithm's output is guaranteed to be the
// Canonical Hub Labeling (minimal for the given ranking). The paraPLL
// baselines only guarantee the cover property.
func (a Algorithm) Canonical() bool {
	return a != AlgoSParaPLL && a != AlgoDParaPLL
}

// Distributed reports whether the algorithm runs on the simulated cluster.
func (a Algorithm) Distributed() bool {
	switch a {
	case AlgoDParaPLL, AlgoDGLL, AlgoDPLaNT, AlgoHybrid:
		return true
	}
	return false
}

// Metrics re-exports the instrumentation record attached to every build.
type Metrics = metrics.Build

// Options configures Build.
type Options struct {
	// Algorithm selects the constructor. Default: AlgoGLL for
	// shared-memory builds (the paper's best single-node algorithm).
	Algorithm Algorithm

	// Order is the network hierarchy R. Nil means RankAuto(g, Seed):
	// degree order for scale-free graphs, sampled betweenness for
	// road-like graphs (§7.1.1).
	Order *Order

	// Workers is the shared-memory thread count (0 = GOMAXPROCS).
	Workers int

	// Alpha is GLL's synchronization threshold (0 = 4, per Figure 5).
	Alpha float64

	// CommonHubs is η for shared-memory PLaNT (0 = off).
	CommonHubs int

	// PlantFirstSuperstep makes AlgoGLL build its first superstep with
	// PLaNTed trees (§5.4): the pathological first cleaning phase
	// disappears because PLaNT output is canonical by construction.
	PlantFirstSuperstep bool

	// Nodes is the simulated cluster size q for distributed algorithms
	// (0 or 1 = single node).
	Nodes int
	// WorkersPerNode is the intra-node thread count (0 = 1).
	WorkersPerNode int
	// Beta is the DGLL superstep growth factor (0 = 8).
	Beta float64
	// Supersteps fixes the synchronization count (0 = ceil(log_β n)).
	Supersteps int
	// Eta is the Common Label Table size for the distributed algorithms
	// (0 = paper default 16 for PLaNT/Hybrid, off for DGLL; negative =
	// off).
	Eta int
	// PsiThreshold is the Hybrid switch threshold Ψth (0 = 100).
	PsiThreshold float64
	// MemoryLimitBytes caps per-node label storage for distributed builds
	// (0 = unlimited). Exceeding it returns ErrOutOfMemory, simulating the
	// OOM failures of Figure 8.
	MemoryLimitBytes int64

	// RecordPerTree keeps per-tree label and exploration counts (Figures
	// 2 and 3) in the build metrics.
	RecordPerTree bool

	// Seed feeds the automatic ranking.
	Seed int64
}

// ErrOutOfMemory mirrors dist.ErrOutOfMemory for public consumption.
var ErrOutOfMemory = dist.ErrOutOfMemory

// Index is a queryable hub labeling over the original vertex ids.
type Index struct {
	n        int
	ranked   *label.Index // labels in rank space
	perm     []int        // rank -> original id
	rank     []int        // original id -> rank
	perNode  []*label.Index
	common   *label.Index
	metrics  *Metrics
	directed *label.DirectedIndex // non-nil for directed graphs
}

// Build constructs a hub labeling for g.
//
// Directed graphs are supported by AlgoSeqPLL and AlgoPLaNT (forward and
// backward label sets, cf. footnote 1 of the paper); the remaining
// algorithms require an undirected graph.
func Build(g *Graph, opt Options) (*Index, error) {
	if g == nil {
		return nil, errors.New("chl: nil graph")
	}
	if opt.Algorithm == "" {
		opt.Algorithm = AlgoGLL
	}
	ord := opt.Order
	if ord == nil {
		ord = order.ForGraph(g, opt.Seed)
	}
	if len(ord.Perm) != g.NumVertices() {
		return nil, fmt.Errorf("chl: order covers %d vertices, graph has %d", len(ord.Perm), g.NumVertices())
	}
	rg, newID := g.Permute(ord.Perm)

	if g.Directed() {
		return buildDirected(rg, ord, newID, opt)
	}

	ix := &Index{n: g.NumVertices(), perm: append([]int(nil), ord.Perm...), rank: newID}
	var err error
	switch opt.Algorithm {
	case AlgoSeqPLL:
		ix.ranked, ix.metrics = pll.Sequential(rg, pll.Options{RecordPerTree: opt.RecordPerTree})
	case AlgoSParaPLL:
		ix.ranked, ix.metrics = pll.SParaPLL(rg, pll.Options{Workers: opt.Workers})
	case AlgoLCC:
		ix.ranked, ix.metrics = lcc.Run(rg, lcc.Options{Workers: opt.Workers})
	case AlgoGLL:
		gopts := gll.Options{Workers: opt.Workers, Alpha: opt.Alpha}
		if opt.PlantFirstSuperstep {
			ix.ranked, ix.metrics = gll.RunPlantFirst(rg, gopts)
		} else {
			ix.ranked, ix.metrics = gll.Run(rg, gopts)
		}
	case AlgoPLaNT:
		ix.ranked, ix.metrics = plant.Run(rg, plant.Options{
			Workers: opt.Workers, CommonHubs: opt.CommonHubs, RecordPerTree: opt.RecordPerTree,
		})
	case AlgoDParaPLL, AlgoDGLL, AlgoDPLaNT, AlgoHybrid:
		var res *dist.Result
		res, err = buildDistributed(rg, opt)
		if err != nil {
			return nil, err
		}
		ix.ranked = res.Index
		ix.perNode = res.PerNode
		ix.common = res.Common
		ix.metrics = res.Metrics
	default:
		return nil, fmt.Errorf("chl: unknown algorithm %q", opt.Algorithm)
	}
	return ix, err
}

func buildDistributed(rg *Graph, opt Options) (*dist.Result, error) {
	dopts := dist.Options{
		Nodes:            opt.Nodes,
		WorkersPerNode:   opt.WorkersPerNode,
		Beta:             opt.Beta,
		Supersteps:       opt.Supersteps,
		Eta:              opt.Eta,
		PsiThreshold:     opt.PsiThreshold,
		MemoryLimitBytes: opt.MemoryLimitBytes,
		RecordPerTree:    opt.RecordPerTree,
	}
	switch opt.Algorithm {
	case AlgoDParaPLL:
		return dist.DParaPLL(rg, dopts)
	case AlgoDGLL:
		return dist.DGLL(rg, dopts)
	case AlgoDPLaNT:
		return dist.PLaNT(rg, dopts)
	case AlgoHybrid:
		return dist.Hybrid(rg, dopts)
	}
	panic("chl: unreachable")
}

func buildDirected(rg *Graph, ord *Order, newID []int, opt Options) (*Index, error) {
	ix := &Index{n: rg.NumVertices(), perm: append([]int(nil), ord.Perm...), rank: newID}
	switch opt.Algorithm {
	case AlgoSeqPLL, "":
		dx, m := pll.SequentialDirected(rg, pll.Options{RecordPerTree: opt.RecordPerTree})
		ix.directed = dx
		ix.metrics = m
	case AlgoPLaNT:
		dx, m := plant.RunDirected(rg, plant.Options{Workers: opt.Workers, RecordPerTree: opt.RecordPerTree})
		ix.directed = dx
		ix.metrics = m
	default:
		return nil, fmt.Errorf("chl: algorithm %q supports undirected graphs only (use AlgoSeqPLL or AlgoPLaNT for directed graphs)", opt.Algorithm)
	}
	return ix, nil
}

// NumVertices returns the number of vertices the index covers.
func (ix *Index) NumVertices() int { return ix.n }

// Directed reports whether the index holds directed (forward/backward)
// labels.
func (ix *Index) Directed() bool { return ix.directed != nil }

// Query returns the exact shortest-path distance between the original
// vertex ids u and v, or Infinity if v is unreachable from u.
func (ix *Index) Query(u, v int) float64 {
	ru, rv := ix.rank[u], ix.rank[v]
	if ix.directed != nil {
		return ix.directed.Query(ru, rv)
	}
	return ix.ranked.Query(ru, rv)
}

// QueryHub additionally reports the witness hub (as an original vertex id).
func (ix *Index) QueryHub(u, v int) (dist float64, hub int, ok bool) {
	if ix.directed != nil {
		d, h, k := label.QueryMerge(ix.directed.Forward.Labels(ix.rank[u]), ix.directed.Backward.Labels(ix.rank[v]))
		if !k {
			return d, 0, false
		}
		return d, ix.perm[h], true
	}
	d, h, k := ix.ranked.QueryHub(ix.rank[u], ix.rank[v])
	if !k {
		return d, 0, false
	}
	return d, ix.perm[h], true
}

// Labels returns vertex u's hub labels as (original hub id, distance)
// pairs, ordered from highest-ranked hub to lowest. For directed indexes it
// returns the forward (out-) labels.
func (ix *Index) Labels(u int) []HubLabel {
	var s label.Set
	if ix.directed != nil {
		s = ix.directed.Forward.Labels(ix.rank[u])
	} else {
		s = ix.ranked.Labels(ix.rank[u])
	}
	out := make([]HubLabel, len(s))
	for i, l := range s {
		out[i] = HubLabel{Hub: ix.perm[l.Hub], Dist: l.Dist}
	}
	return out
}

// HubLabel is one (hub, distance) pair in original-id space.
type HubLabel struct {
	Hub  int
	Dist float64
}

// Stats summarises the index.
type Stats struct {
	Vertices    int
	TotalLabels int64
	ALS         float64
	MaxLabels   int
	Bytes       int64
}

// Stats computes label statistics (ALS is the paper's "average label
// size").
func (ix *Index) Stats() Stats {
	var st label.Stats
	if ix.directed != nil {
		f := ix.directed.Forward.Stats()
		b := ix.directed.Backward.Stats()
		st = label.Stats{
			Vertices:    f.Vertices,
			TotalLabels: f.TotalLabels + b.TotalLabels,
			ALS:         f.ALS + b.ALS,
			Bytes:       f.Bytes + b.Bytes,
		}
		if b.MaxLabels > f.MaxLabels {
			st.MaxLabels = b.MaxLabels
		} else {
			st.MaxLabels = f.MaxLabels
		}
	} else {
		st = ix.ranked.Stats()
	}
	return Stats{
		Vertices:    st.Vertices,
		TotalLabels: st.TotalLabels,
		ALS:         st.ALS,
		MaxLabels:   st.MaxLabels,
		Bytes:       st.Bytes,
	}
}

// Metrics returns the build instrumentation, or nil for loaded indexes.
func (ix *Index) Metrics() *Metrics { return ix.metrics }

// Rank returns the rank position of an original vertex id (0 = highest).
func (ix *Index) Rank(v int) int { return ix.rank[v] }

// VertexAtRank returns the original id of the vertex at the given rank.
func (ix *Index) VertexAtRank(r int) int { return ix.perm[r] }
